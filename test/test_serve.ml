(* The serving layer must be invisible to each tenant: N sessions
   interleaved round-robin on one engine produce bit-identical results
   to each session running alone on a dedicated engine, per-session
   stats attribute the shared device's work, and closing a session
   releases everything it held in the memory cache. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Engine = Qdpjit.Engine

let geom = Geometry.create [| 4; 4; 4; 2 |]
let fm = Shape.lattice_fermion Shape.F64
let nsteps = 5

(* One tenant's workload: a seeded axpy/shift chain with a running norm
   accumulator — enough evals per step to give the fusion planner work. *)
let fill seed i f = Field.fill_gaussian ~site_key:(fun site -> site + (i * 1_000_003)) f (Prng.create ~seed)

let workload_step eng (x, y, z) k acc =
  Engine.eval eng z (Expr.add (Expr.mul (Expr.const_real (0.5 +. float_of_int k)) (Expr.field x)) (Expr.field y));
  Engine.eval eng x (Expr.shift (Expr.field z) ~dim:(k mod 4) ~dir:(if k mod 2 = 0 then 1 else -1));
  Engine.eval eng y (Expr.sub (Expr.field x) (Expr.field z));
  acc +. Engine.norm2 eng (Expr.field y)

let serial_run seed =
  let eng = Engine.create () in
  let x = Field.create fm geom and y = Field.create fm geom and z = Field.create fm geom in
  fill seed 0 x;
  fill seed 1 y;
  let acc = ref 0.0 in
  for k = 0 to nsteps - 1 do
    acc := workload_step eng (x, y, z) k !acc
  done;
  Engine.flush eng;
  (!acc, Field.get_site y ~site:0)

let test_sessions_bit_identical () =
  let srv = Serve.create () in
  let nsessions = 4 in
  let seeds = Array.init nsessions (fun i -> Int64.of_int (100 + i)) in
  let accs = Array.make nsessions 0.0 in
  let ys = Array.make nsessions None in
  let sessions =
    Array.init nsessions (fun i ->
        let sess = Serve.open_session ~name:(Printf.sprintf "tenant%d" i) srv in
        let x = Serve.create_field sess fm geom
        and y = Serve.create_field sess fm geom
        and z = Serve.create_field sess fm geom in
        Serve.submit ~label:"setup" sess (fun () ->
            fill seeds.(i) 0 x;
            fill seeds.(i) 1 y);
        for k = 0 to nsteps - 1 do
          Serve.submit ~label:(Printf.sprintf "step%d" k) sess (fun () ->
              accs.(i) <- workload_step (Serve.engine srv) (x, y, z) k accs.(i))
        done;
        Serve.submit ~label:"collect" sess (fun () -> ys.(i) <- Some (Field.get_site y ~site:0));
        sess)
  in
  Alcotest.(check int) "active" nsessions (Serve.active_sessions srv);
  let executed = Serve.run srv in
  Alcotest.(check int) "all tasks ran" (nsessions * (nsteps + 2)) executed;
  Array.iteri
    (fun i sess ->
      let serial_acc, serial_site = serial_run seeds.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "tenant%d norm bits" i)
        true
        (Int64.bits_of_float accs.(i) = Int64.bits_of_float serial_acc);
      let site = Option.get ys.(i) in
      Array.iteri
        (fun j v ->
          Alcotest.(check bool)
            (Printf.sprintf "tenant%d site word %d" i j)
            true
            (Int64.bits_of_float v = Int64.bits_of_float serial_site.(j)))
        site;
      let st = Serve.stats sess in
      Alcotest.(check int) "tasks counted" (nsteps + 2) st.Serve.s_tasks;
      Alcotest.(check bool) "launches attributed" true (st.Serve.s_launches > 0);
      Alcotest.(check bool) "sim time attributed" true (st.Serve.s_sim_ms > 0.0);
      Alcotest.(check bool) "bytes attributed" true (st.Serve.s_kernel_bytes > 0);
      Alcotest.(check bool) "queue wait nonneg" true (st.Serve.s_queue_wait_s >= 0.0))
    sessions;
  (* Sessions share the engine's kernel pool: far fewer compiles than
     running each tenant on its own engine. *)
  Alcotest.(check bool) "shared kernel pool" true
    (Engine.kernels_built (Serve.engine srv) < nsessions * 8)

let serial_close_reference () =
  let eng = Engine.create () in
  let x = Field.create fm geom and y = Field.create fm geom in
  fill 42L 0 x;
  Engine.eval eng y (Expr.mul (Expr.const_real 2.0) (Expr.field x));
  Engine.flush eng;
  Field.get_site y ~site:0

let test_close_session_releases () =
  let srv = Serve.create () in
  let mc = Engine.memcache (Serve.engine srv) in
  let sess = Serve.open_session ~name:"ephemeral" srv in
  let x = Serve.create_field sess fm geom and y = Serve.create_field sess fm geom in
  Serve.submit sess (fun () ->
      fill 42L 0 x;
      Engine.eval (Serve.engine srv) y (Expr.mul (Expr.const_real 2.0) (Expr.field x)));
  ignore (Serve.run srv);
  Alcotest.(check bool) "fields resident" true (Memcache.resident_count mc > 0);
  Serve.close_session sess;
  Alcotest.(check int) "arena released" 0 (Memcache.resident_count mc);
  Alcotest.(check int) "no longer active" 0 (Serve.active_sessions srv);
  (* Teardown paged dirty results out: the host copy is current. *)
  let expected = serial_close_reference () in
  Array.iteri
    (fun j v ->
      Alcotest.(check bool)
        (Printf.sprintf "paged-out word %d" j)
        true
        (Int64.bits_of_float v = Int64.bits_of_float expected.(j)))
    (Field.get_site y ~site:0);
  Alcotest.check_raises "submit after close"
    (Invalid_argument "Serve.submit: session is closed")
    (fun () -> Serve.submit sess (fun () -> ()))

let test_close_drains_queue () =
  let srv = Serve.create () in
  let sess = Serve.open_session srv in
  let hit = ref 0 in
  Serve.submit sess (fun () -> incr hit);
  Serve.submit sess (fun () -> incr hit);
  Alcotest.(check int) "pending" 2 (Serve.pending sess);
  Serve.close_session sess;
  Alcotest.(check int) "drained" 2 !hit;
  Alcotest.(check int) "empty" 0 (Serve.pending sess);
  (* Idempotent. *)
  Serve.close_session sess

let () =
  Alcotest.run "serve"
    [
      ( "multi-tenant",
        [
          Alcotest.test_case "sessions bit-identical to serial" `Quick
            test_sessions_bit_identical;
          Alcotest.test_case "close releases arena, results survive" `Quick
            test_close_session_releases;
          Alcotest.test_case "close drains pending tasks" `Quick test_close_drains_queue;
        ] );
    ]
