module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Device = Gpusim.Device

let geom = Geometry.create [| 4; 4; 4; 4 |]

let small_device () =
  (* Room for only ~3 fermion fields: forces spilling. *)
  let machine = { Gpusim.Machine.k20x_ecc_off with Gpusim.Machine.memory_bytes = 160_000 } in
  Device.create machine

let fresh_cache ?(small = false) () =
  let dev = if small then small_device () else Device.create Gpusim.Machine.k20x_ecc_off in
  Memcache.create dev

let test_upload_and_hit () =
  let cache = fresh_cache () in
  let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian f (Prng.create ~seed:1L);
  let _ = Memcache.ensure_resident cache f in
  Alcotest.(check int) "one upload" 1 (Memcache.stats cache).Memcache.uploads;
  let _ = Memcache.ensure_resident cache f in
  Alcotest.(check int) "no second upload" 1 (Memcache.stats cache).Memcache.uploads;
  Alcotest.(check bool) "hit counted" true ((Memcache.stats cache).Memcache.hits >= 1)

let test_layout_change_on_upload () =
  let cache = fresh_cache () in
  let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian f (Prng.create ~seed:2L);
  let buf = Memcache.ensure_resident cache f in
  (* Device holds SoA: component (0,0,0) of site s is at word s. *)
  match buf.Gpusim.Buffer.data with
  | Gpusim.Buffer.F64 dev ->
      for site = 0 to 7 do
        Alcotest.(check (float 0.0)) "soa word"
          (Field.get f ~site ~spin:0 ~color:0 ~reality:0)
          dev.{site}
      done
  | _ -> Alcotest.fail "expected f64 buffer"

let test_host_write_invalidates () =
  let cache = fresh_cache () in
  let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_constant f 1.0;
  let _ = Memcache.ensure_resident cache f in
  Field.set f ~site:0 ~spin:0 ~color:0 ~reality:0 42.0;
  let buf = Memcache.ensure_resident cache f in
  Alcotest.(check int) "re-uploaded" 2 (Memcache.stats cache).Memcache.uploads;
  match buf.Gpusim.Buffer.data with
  | Gpusim.Buffer.F64 dev -> Alcotest.(check (float 0.0)) "new value on device" 42.0 dev.{0}
  | _ -> Alcotest.fail "expected f64 buffer"

let test_device_dirty_pages_out_on_read () =
  let cache = fresh_cache () in
  let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
  let buf = Memcache.ensure_resident cache f in
  Memcache.mark_device_dirty cache f;
  (* Scribble on the device copy, then read through the host API: the hook
     must page the device data back first. *)
  (match buf.Gpusim.Buffer.data with
  | Gpusim.Buffer.F64 dev -> dev.{0} <- 7.5 (* SoA word 0 = site 0, comp (0,0,0) *)
  | _ -> Alcotest.fail "expected f64");
  let v = Field.get f ~site:0 ~spin:0 ~color:0 ~reality:0 in
  Alcotest.(check (float 0.0)) "device value visible on host" 7.5 v;
  Alcotest.(check int) "pageout counted" 1 (Memcache.stats cache).Memcache.pageouts;
  Alcotest.(check bool) "no longer dirty" false (Memcache.is_device_dirty cache f)

let test_lru_spill () =
  let cache = fresh_cache ~small:true () in
  let make i =
    let f = Field.create ~name:(Printf.sprintf "f%d" i) (Shape.lattice_fermion Shape.F64) geom in
    Field.fill_constant f (float_of_int i);
    f
  in
  (* Each fermion field: 256 sites * 192 B = 49 KB; device capacity 160 KB. *)
  let fields = Array.init 5 make in
  Array.iter (fun f -> ignore (Memcache.ensure_resident cache f)) fields;
  Alcotest.(check bool) "spills happened" true ((Memcache.stats cache).Memcache.spills > 0);
  Alcotest.(check bool) "early field evicted" false (Memcache.is_resident cache fields.(0));
  Alcotest.(check bool) "recent field resident" true (Memcache.is_resident cache fields.(4));
  (* Spilled dirty data must round-trip intact. *)
  let f0 = fields.(0) in
  Alcotest.(check (float 0.0)) "content intact" 0.0 (Field.get f0 ~site:3 ~spin:1 ~color:2 ~reality:1)

let test_spill_preserves_dirty_data () =
  let cache = fresh_cache ~small:true () in
  let a = Field.create (Shape.lattice_fermion Shape.F64) geom in
  let buf = Memcache.ensure_resident cache a in
  (* Write device-side, mark dirty, then force its eviction. *)
  (match buf.Gpusim.Buffer.data with
  | Gpusim.Buffer.F64 dev -> dev.{5} <- 123.0
  | _ -> assert false);
  Memcache.mark_device_dirty cache a;
  for i = 0 to 4 do
    let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
    Field.fill_constant f (float_of_int i);
    ignore (Memcache.ensure_resident cache f)
  done;
  Alcotest.(check bool) "a evicted" false (Memcache.is_resident cache a);
  (* SoA word 5 = site 5, component (0,0,0). *)
  Alcotest.(check (float 0.0)) "dirty data survived eviction" 123.0
    (Field.get a ~site:5 ~spin:0 ~color:0 ~reality:0)

let test_pinned_not_spilled () =
  let cache = fresh_cache ~small:true () in
  let a = Field.create (Shape.lattice_fermion Shape.F64) geom in
  ignore (Memcache.ensure_resident ~pin:true cache a);
  for i = 0 to 3 do
    let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
    ignore (Memcache.ensure_resident cache f);
    ignore i
  done;
  Alcotest.(check bool) "pinned stays" true (Memcache.is_resident cache a);
  Memcache.unpin_all cache

let test_oom_when_all_pinned () =
  let cache = fresh_cache ~small:true () in
  let pin () =
    let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
    ignore (Memcache.ensure_resident ~pin:true cache f)
  in
  match
    for _ = 1 to 10 do
      pin ()
    done
  with
  | exception Device.Out_of_device_memory -> ()
  | () -> Alcotest.fail "pinning more than device memory should fail"

let test_drop () =
  let cache = fresh_cache () in
  let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
  ignore (Memcache.ensure_resident cache f);
  Alcotest.(check bool) "resident" true (Memcache.is_resident cache f);
  Memcache.drop cache f;
  Alcotest.(check bool) "gone" false (Memcache.is_resident cache f)

let test_fresh_zero_field_skips_upload () =
  let cache = fresh_cache () in
  let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
  ignore (Memcache.ensure_resident cache f);
  Alcotest.(check int) "no upload for never-written field" 0
    (Memcache.stats cache).Memcache.uploads

let test_cross_cache_migration () =
  (* A field written on one device, paged out, must re-upload on another
     cache instead of being treated as never-written zeros. *)
  let cache1 = fresh_cache () and cache2 = fresh_cache () in
  let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
  let buf1 = Memcache.ensure_resident cache1 f in
  (match buf1.Gpusim.Buffer.data with
  | Gpusim.Buffer.F64 dev -> dev.{0} <- 3.25
  | _ -> assert false);
  Memcache.mark_device_dirty cache1 f;
  (* Host access pages out of cache1 (hooks) and bumps the version. *)
  Alcotest.(check (float 0.0)) "host sees device write" 3.25
    (Field.get f ~site:0 ~spin:0 ~color:0 ~reality:0);
  let buf2 = Memcache.ensure_resident cache2 f in
  match buf2.Gpusim.Buffer.data with
  | Gpusim.Buffer.F64 dev ->
      Alcotest.(check (float 0.0)) "second device has the data" 3.25 dev.{0}
  | _ -> assert false

let test_inflight_not_spilled () =
  (* Allocation pressure arriving while an async upload is still in flight
     must not evict the entry under the copy engine: the transfer stream's
     completion event pins it until the host can observe the copy done. *)
  let dev = small_device () in
  let ctx = Streams.create dev in
  let cache = Memcache.create ~sched:ctx dev in
  let mk i =
    let f = Field.create ~name:(Printf.sprintf "g%d" i) (Shape.lattice_fermion Shape.F64) geom in
    f
  in
  let a = mk 0 in
  Field.fill_constant a 4.5;
  ignore (Memcache.ensure_resident cache a);
  (* The upload was issued asynchronously and the host never synchronized:
     [a] is mid-transfer. *)
  Alcotest.(check bool) "upload in flight" true (Memcache.is_inflight cache a);
  (* Fresh zero fields are resident without an upload (no event): they are
     the only legal spill victims while [a] is in flight. *)
  let b = mk 1 and c = mk 2 and d = mk 3 in
  ignore (Memcache.ensure_resident cache b);
  ignore (Memcache.ensure_resident cache c);
  ignore (Memcache.ensure_resident cache d);
  Alcotest.(check bool) "spill happened" true ((Memcache.stats cache).Memcache.spills > 0);
  Alcotest.(check bool) "in-flight candidates skipped" true
    ((Memcache.stats cache).Memcache.inflight_skips > 0);
  Alcotest.(check bool) "in-flight entry survived" true (Memcache.is_resident cache a);
  Alcotest.(check bool) "LRU fell on a settled entry" false (Memcache.is_resident cache b);
  (* Once the host synchronizes, the completion event fires and [a] becomes
     an ordinary (and oldest) LRU candidate. *)
  ignore (Streams.synchronize ctx);
  Alcotest.(check bool) "transfer settled" false (Memcache.is_inflight cache a);
  let e = mk 4 and f = mk 5 in
  ignore (Memcache.ensure_resident cache e);
  ignore (Memcache.ensure_resident cache f);
  Alcotest.(check bool) "settled entry now spillable" false (Memcache.is_resident cache a);
  (* The spill paged [a] out through the transfer stream: its content must
     round-trip. *)
  Alcotest.(check (float 0.0)) "content intact" 4.5
    (Field.get a ~site:7 ~spin:2 ~color:1 ~reality:0)

let () =
  Alcotest.run "memcache"
    [
      ( "residency",
        [
          Alcotest.test_case "upload then hit" `Quick test_upload_and_hit;
          Alcotest.test_case "layout change" `Quick test_layout_change_on_upload;
          Alcotest.test_case "host write invalidates" `Quick test_host_write_invalidates;
          Alcotest.test_case "read pages out" `Quick test_device_dirty_pages_out_on_read;
          Alcotest.test_case "fresh zero field" `Quick test_fresh_zero_field_skips_upload;
          Alcotest.test_case "drop" `Quick test_drop;
          Alcotest.test_case "cross-cache migration" `Quick test_cross_cache_migration;
        ] );
      ( "spilling",
        [
          Alcotest.test_case "LRU eviction" `Quick test_lru_spill;
          Alcotest.test_case "dirty data survives" `Quick test_spill_preserves_dirty_data;
          Alcotest.test_case "pinned protected" `Quick test_pinned_not_spilled;
          Alcotest.test_case "oom when pinned" `Quick test_oom_when_all_pinned;
          Alcotest.test_case "in-flight transfer pinned" `Quick test_inflight_not_spilled;
        ] );
    ]
