(* The stream/event execution engine: CUDA-semantics ordering rules,
   engine contention, host synchronization, Chrome-trace export, and the
   Multi overlap engine built on top of it. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Device = Gpusim.Device
module Multi = Qdpjit.Multi

let fresh_ctx () = Streams.create (Device.create Gpusim.Machine.k20x_ecc_off)

let check_ns = Alcotest.(check (float 1e-9))

(* ---------------------------------------------------------------- *)
(* Events *)

let test_wait_before_record () =
  let t = fresh_ctx () in
  let s1 = Streams.create_stream ~name:"s1" t in
  let s2 = Streams.create_stream ~name:"s2" t in
  let e = Streams.Event.create ~name:"e" () in
  (* cuStreamWaitEvent on a never-recorded event is a no-op. *)
  Streams.wait_event t s2 e;
  Streams.busy t s2 ~engine:Streams.Copy_h2d ~name:"copy" ~ns:10.0;
  check_ns "unrecorded wait ignored" 10.0 (Streams.cursor_ns s2);
  Streams.busy t s1 ~engine:Streams.Compute ~name:"k" ~ns:100.0;
  Streams.record_event t s1 e;
  Streams.wait_event t s2 e;
  Streams.busy t s2 ~engine:Streams.Copy_h2d ~name:"copy" ~ns:10.0;
  check_ns "recorded wait ordered" 110.0 (Streams.cursor_ns s2)

let test_cross_stream_chain () =
  let t = fresh_ctx () in
  let s1 = Streams.create_stream t and s2 = Streams.create_stream t in
  let s3 = Streams.create_stream t in
  Streams.busy t s1 ~engine:Streams.Compute ~name:"a" ~ns:100.0;
  let e1 = Streams.Event.create () in
  Streams.record_event t s1 e1;
  Streams.wait_event t s2 e1;
  Streams.busy t s2 ~engine:Streams.Copy_d2h ~name:"b" ~ns:50.0;
  let e2 = Streams.Event.create () in
  Streams.record_event t s2 e2;
  Streams.wait_event t s3 e2;
  Streams.busy t s3 ~engine:Streams.Copy_h2d ~name:"c" ~ns:10.0;
  check_ns "chain a->b" 150.0 (Streams.cursor_ns s2);
  check_ns "chain b->c" 160.0 (Streams.cursor_ns s3)

let test_event_query_and_sync () =
  let t = fresh_ctx () in
  let s = Streams.create_stream t in
  Streams.busy t s ~engine:Streams.Compute ~name:"k" ~ns:100.0;
  let e = Streams.Event.create () in
  Streams.record_event t s e;
  (* The host has not synchronized: the work is not provably complete. *)
  Alcotest.(check bool) "query before sync" false (Streams.event_query t e);
  Streams.event_synchronize t e;
  Alcotest.(check bool) "query after sync" true (Streams.event_query t e);
  check_ns "clock at event" 100.0 (Device.clock_ns (Streams.device t))

let test_event_elapsed () =
  let t = fresh_ctx () in
  let s = Streams.create_stream t in
  Streams.busy t s ~engine:Streams.Compute ~name:"k1" ~ns:100.0;
  let e1 = Streams.Event.create () in
  Streams.record_event t s e1;
  Streams.busy t s ~engine:Streams.Compute ~name:"k2" ~ns:50.0;
  let e2 = Streams.Event.create () in
  Streams.record_event t s e2;
  check_ns "elapsed" 50.0 (Streams.Event.elapsed_ns e1 e2)

let test_external_record () =
  let t = fresh_ctx () in
  let s = Streams.create_stream t in
  let arrival = Streams.Event.create ~name:"msg" () in
  Streams.record_event_at arrival ~ns:777.0;
  Streams.wait_event t s arrival;
  Streams.busy t s ~engine:Streams.Copy_h2d ~name:"import" ~ns:1.0;
  check_ns "waits for external completion" 778.0 (Streams.cursor_ns s)

(* ---------------------------------------------------------------- *)
(* Engine contention *)

let test_kernels_serialize () =
  let t = fresh_ctx () in
  let s1 = Streams.create_stream t and s2 = Streams.create_stream t in
  Streams.busy t s1 ~engine:Streams.Compute ~name:"k1" ~ns:100.0;
  Streams.busy t s2 ~engine:Streams.Compute ~name:"k2" ~ns:50.0;
  (* One compute engine: the second kernel queues behind the first even on
     a different stream. *)
  check_ns "second kernel queued" 150.0 (Streams.cursor_ns s2)

let test_copy_overlaps_compute () =
  let t = fresh_ctx () in
  let s1 = Streams.create_stream t and s2 = Streams.create_stream t in
  Streams.busy t s1 ~engine:Streams.Compute ~name:"k" ~ns:100.0;
  Streams.busy t s2 ~engine:Streams.Copy_h2d ~name:"h2d" ~ns:40.0;
  Streams.busy t s2 ~engine:Streams.Copy_d2h ~name:"d2h" ~ns:5.0;
  (* Independent copy engines: both copies fit under the kernel. *)
  check_ns "copies ran concurrently" 45.0 (Streams.cursor_ns s2)

let test_same_stream_serializes () =
  let t = fresh_ctx () in
  let s = Streams.create_stream t in
  Streams.busy t s ~engine:Streams.Copy_h2d ~name:"h2d" ~ns:40.0;
  Streams.busy t s ~engine:Streams.Compute ~name:"k" ~ns:100.0;
  (* Program order within one stream holds across engines. *)
  check_ns "stream order kept" 140.0 (Streams.cursor_ns s)

(* ---------------------------------------------------------------- *)
(* Host synchronization *)

let test_synchronize_max_of_streams () =
  let t = fresh_ctx () in
  let s1 = Streams.create_stream t and s2 = Streams.create_stream t in
  let s3 = Streams.create_stream t in
  Streams.busy t s1 ~engine:Streams.Compute ~name:"k" ~ns:100.0;
  Streams.busy t s2 ~engine:Streams.Copy_h2d ~name:"c" ~ns:250.0;
  Streams.busy t s3 ~engine:Streams.Copy_d2h ~name:"c" ~ns:30.0;
  check_ns "clock still at zero" 0.0 (Device.clock_ns (Streams.device t));
  let clk = Streams.synchronize t in
  check_ns "clock = slowest stream" 250.0 clk

let test_stream_synchronize () =
  let t = fresh_ctx () in
  let s1 = Streams.create_stream t and s2 = Streams.create_stream t in
  Streams.busy t s1 ~engine:Streams.Compute ~name:"k" ~ns:100.0;
  Streams.busy t s2 ~engine:Streams.Copy_h2d ~name:"c" ~ns:250.0;
  let clk = Streams.stream_synchronize t s1 in
  check_ns "only s1 drained" 100.0 clk;
  (* Synchronizing a stream that already completed does not rewind. *)
  let clk2 = Streams.stream_synchronize t s1 in
  check_ns "monotonic" 100.0 clk2

let test_reset () =
  let t = fresh_ctx () in
  let s = Streams.create_stream t in
  Streams.busy t s ~engine:Streams.Compute ~name:"k" ~ns:100.0;
  ignore (Streams.synchronize t);
  Streams.reset t;
  check_ns "cursor rewound" 0.0 (Streams.cursor_ns s);
  check_ns "clock rewound" 0.0 (Device.clock_ns (Streams.device t));
  Alcotest.(check int) "spans cleared" 0 (Streams.span_count t)

(* ---------------------------------------------------------------- *)
(* Chrome trace export *)

let test_trace_json () =
  let t = fresh_ctx () in
  let s1 = Streams.create_stream ~name:"compute" t in
  let s2 = Streams.create_stream ~name:"copies" t in
  Streams.busy t s1 ~engine:Streams.Compute ~name:"dslash" ~ns:1000.0;
  Streams.busy t s2 ~engine:Streams.Copy_h2d ~name:"face \"import\"" ~ns:100.0;
  let e = Streams.Event.create ~name:"face ready" () in
  Streams.record_event t s2 e;
  let json = Streams.Trace.chrome_json [ ("rank0", t) ] in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "traceEvents array" true (contains "{\"traceEvents\":[");
  Alcotest.(check bool) "process metadata" true (contains "\"process_name\"");
  Alcotest.(check bool) "thread metadata" true (contains "\"name\":\"copies\"");
  Alcotest.(check bool) "complete event" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "instant event" true (contains "\"ph\":\"i\"");
  Alcotest.(check bool) "quotes escaped" true (contains "face \\\"import\\\"");
  Alcotest.(check int) "three spans" 3 (Streams.span_count t)

let test_engine_records_spans () =
  let eng = Qdpjit.Engine.create () in
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian f (Prng.create ~seed:5L);
  let out = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Qdpjit.Engine.eval eng out (Expr.add (Expr.field f) (Expr.field f));
  Qdpjit.Engine.flush eng;
  let ctx = Qdpjit.Engine.streams eng in
  Alcotest.(check bool) "spans recorded" true (Streams.span_count ctx > 0);
  let cats = List.map (fun sp -> sp.Streams.cat) (Streams.spans ctx) in
  Alcotest.(check bool) "kernel span present" true (List.mem "kernel" cats);
  Alcotest.(check bool) "memcpy span present" true (List.mem "memcpy" cats)

(* ---------------------------------------------------------------- *)
(* The Multi overlap engine on top of streams *)

let dslash u psi = Lqcd.Wilson.hopping_expr u psi

let multi_dslash_run ~overlap ~mode ~global_dims ~rank_dims ~evals =
  let m = Multi.create ~mode ~global_dims ~rank_dims () in
  Multi.set_overlap m overlap;
  let u = Array.init 4 (fun _ -> Multi.create_field m (Shape.lattice_color_matrix Shape.F64)) in
  let psi = Multi.create_field m (Shape.lattice_fermion Shape.F64) in
  let out = Multi.create_field m (Shape.lattice_fermion Shape.F64) in
  let mk rank =
    dslash (Array.map (fun (df : Multi.dfield) -> df.Multi.locals.(rank)) u)
      psi.Multi.locals.(rank)
  in
  for _ = 1 to evals do
    ignore (Multi.eval m out mk)
  done;
  Multi.reset_clocks m;
  (m, (Multi.eval m out mk).Multi.total_ns)

let test_overlap_strictly_shorter () =
  (* The Fig. 6 situation: real wire time to hide.  Overlap must win
     strictly, not just tie. *)
  let run overlap =
    snd
      (multi_dslash_run ~overlap ~mode:Gpusim.Device.Model_only
         ~global_dims:[| 8; 8; 8; 8 |] ~rank_dims:[| 1; 1; 1; 2 |] ~evals:6)
  in
  let t_on = run true and t_off = run false in
  Alcotest.(check bool)
    (Printf.sprintf "overlap %.0f < sync %.0f" t_on t_off)
    true
    (t_on < t_off)

let test_multi_bit_exact_overlap_toggle () =
  (* Functional execution is eager and in issue order: the stream engine
     must not change a single bit when overlap is toggled. *)
  let global_dims = [| 8; 4; 4; 4 |] in
  let geom = Geometry.create global_dims in
  let u = Lqcd.Gauge.create_links geom in
  Lqcd.Gauge.random_gauge ~epsilon:0.4 u (Prng.create ~seed:21L);
  let psi = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian psi (Prng.create ~seed:22L);
  let run overlap =
    let m = Multi.create ~global_dims ~rank_dims:[| 2; 1; 1; 1 |] () in
    Multi.set_overlap m overlap;
    let du =
      Array.map
        (fun uf ->
          let df = Multi.create_field m (Shape.lattice_color_matrix Shape.F64) in
          Multi.scatter m ~global:uf df;
          df)
        u
    in
    let dpsi = Multi.create_field m (Shape.lattice_fermion Shape.F64) in
    Multi.scatter m ~global:psi dpsi;
    let dout = Multi.create_field m (Shape.lattice_fermion Shape.F64) in
    ignore
      (Multi.eval m dout (fun rank ->
           dslash (Array.map (fun (df : Multi.dfield) -> df.Multi.locals.(rank)) du)
             dpsi.Multi.locals.(rank)));
    let got = Field.create (Shape.lattice_fermion Shape.F64) geom in
    Multi.gather m dout ~global:got;
    got
  in
  let on_result = run true and off_result = run false in
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field on_result) (Expr.field off_result)) in
  Alcotest.(check (float 0.0)) "bit-identical" 0.0 d

let test_multi_trace_two_streams () =
  (* The rank timeline must show work on both the compute and the comm
     stream, with face traffic concurrent to the inner kernel. *)
  let m, _ =
    multi_dslash_run ~overlap:true ~mode:Gpusim.Device.Model_only
      ~global_dims:[| 8; 8; 8; 8 |] ~rank_dims:[| 1; 1; 1; 2 |] ~evals:4
  in
  let ctx = Qdpjit.Engine.streams (Multi.engine m 0) in
  let sids =
    List.sort_uniq compare (List.map (fun sp -> sp.Streams.span_sid) (Streams.spans ctx))
  in
  Alcotest.(check bool) "spans on >= 2 streams" true (List.length sids >= 2)

let () =
  Alcotest.run "streams"
    [
      ( "events",
        [
          Alcotest.test_case "wait before record" `Quick test_wait_before_record;
          Alcotest.test_case "cross-stream chain" `Quick test_cross_stream_chain;
          Alcotest.test_case "query and sync" `Quick test_event_query_and_sync;
          Alcotest.test_case "elapsed" `Quick test_event_elapsed;
          Alcotest.test_case "external completion" `Quick test_external_record;
        ] );
      ( "engines",
        [
          Alcotest.test_case "kernels serialize" `Quick test_kernels_serialize;
          Alcotest.test_case "copies overlap compute" `Quick test_copy_overlaps_compute;
          Alcotest.test_case "stream order" `Quick test_same_stream_serializes;
        ] );
      ( "sync",
        [
          Alcotest.test_case "device sync = max" `Quick test_synchronize_max_of_streams;
          Alcotest.test_case "stream sync" `Quick test_stream_synchronize;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome json" `Quick test_trace_json;
          Alcotest.test_case "engine records spans" `Quick test_engine_records_spans;
        ] );
      ( "multi",
        [
          Alcotest.test_case "overlap strictly shorter" `Quick test_overlap_strictly_shorter;
          Alcotest.test_case "bit-exact toggle" `Quick test_multi_bit_exact_overlap_toggle;
          Alcotest.test_case "two-stream trace" `Quick test_multi_trace_two_streams;
        ] );
    ]
