module Device = Gpusim.Device
module Buffer_ = Gpusim.Buffer
module Machine = Gpusim.Machine
module Jit = Gpusim.Jit

(* y[i] = a * x[i] + y[i] with a thread guard — hand-written PTX text, as a
   user of the raw driver interface would submit. *)
let daxpy_text =
  {|
.version 3.1
.target sm_35
.address_size 64

.visible .entry daxpy(
	.param .u64 daxpy_param_0,
	.param .u64 daxpy_param_1,
	.param .f64 daxpy_param_2,
	.param .s32 daxpy_param_3
)
{
	ld.param.u64 	%rd1, [daxpy_param_0];
	ld.param.u64 	%rd2, [daxpy_param_1];
	ld.param.f64 	%fd1, [daxpy_param_2];
	ld.param.s32 	%r1, [daxpy_param_3];
	mov.u32 	%r2, %tid.x;
	mov.u32 	%r3, %ntid.x;
	mov.u32 	%r4, %ctaid.x;
	mad.lo.s32 	%r5, %r4, %r3, %r2;
	setp.ge.s32 	%p1, %r5, %r1;
	@%p1 bra 	EXIT;
	mul.lo.s32 	%r6, %r5, 8;
	cvt.s64.s32 	%rs1, %r6;
	cvt.u64.s64 	%rd3, %rs1;
	add.u64 	%rd4, %rd1, %rd3;
	add.u64 	%rd5, %rd2, %rd3;
	ld.global.f64 	%fd2, [%rd4+0];
	ld.global.f64 	%fd3, [%rd5+0];
	fma.rn.f64 	%fd4, %fd1, %fd2, %fd3;
	st.global.f64 	[%rd5+0], %fd4;
EXIT:
	ret;
}
|}

let with_device f =
  let dev = Device.create Machine.k20x_ecc_off in
  f dev

let test_daxpy_executes () =
  with_device (fun dev ->
      let n = 1000 in
      let x = Device.alloc_f64 dev n and y = Device.alloc_f64 dev n in
      (match (x.Buffer_.data, y.Buffer_.data) with
      | Buffer_.F64 xa, Buffer_.F64 ya ->
          for i = 0 to n - 1 do
            xa.{i} <- float_of_int i;
            ya.{i} <- 1.0
          done
      | _ -> assert false);
      let compiled = Jit.compile daxpy_text in
      let _ns =
        Device.launch dev compiled ~nthreads:n ~block:128
          ~params:[| Gpusim.Vm.Ptr x; Gpusim.Vm.Ptr y; Gpusim.Vm.Float 2.0; Gpusim.Vm.Int n |]
      in
      match y.Buffer_.data with
      | Buffer_.F64 ya ->
          for i = 0 to n - 1 do
            let expect = (2.0 *. float_of_int i) +. 1.0 in
            if ya.{i} <> expect then Alcotest.failf "y[%d] = %g, expected %g" i ya.{i} expect
          done
      | _ -> assert false)

let test_guard_respected () =
  with_device (fun dev ->
      let n = 100 in
      let x = Device.alloc_f64 dev n and y = Device.alloc_f64 dev n in
      let compiled = Jit.compile daxpy_text in
      (* launch a full grid but n_work = 10: elements >= 10 must stay 0 *)
      (match x.Buffer_.data with
      | Buffer_.F64 xa -> Bigarray.Array1.fill xa 1.0
      | _ -> assert false);
      ignore
        (Device.launch dev compiled ~nthreads:64 ~block:64
           ~params:[| Gpusim.Vm.Ptr x; Gpusim.Vm.Ptr y; Gpusim.Vm.Float 1.0; Gpusim.Vm.Int 10 |]);
      match y.Buffer_.data with
      | Buffer_.F64 ya ->
          for i = 0 to 9 do
            Alcotest.(check (float 0.0)) "written" 1.0 ya.{i}
          done;
          for i = 10 to n - 1 do
            Alcotest.(check (float 0.0)) "guarded" 0.0 ya.{i}
          done
      | _ -> assert false)

let test_launch_failure_block_too_big () =
  with_device (fun dev ->
      let compiled = Jit.compile daxpy_text in
      let x = Device.alloc_f64 dev 8 and y = Device.alloc_f64 dev 8 in
      match
        Device.launch dev compiled ~nthreads:8 ~block:2048
          ~params:[| Gpusim.Vm.Ptr x; Gpusim.Vm.Ptr y; Gpusim.Vm.Float 1.0; Gpusim.Vm.Int 8 |]
      with
      | exception Device.Launch_failure _ -> ()
      | _ -> Alcotest.fail "block 2048 should fail on a 1024-thread machine")

let test_out_of_memory () =
  with_device (fun dev ->
      match Device.alloc_f64 dev (2 * 1024 * 1024 * 1024) with
      | exception Device.Out_of_device_memory -> ()
      | _ -> Alcotest.fail "16 GB allocation should not fit in 6 GB")

let test_buffer_accounting () =
  with_device (fun dev ->
      let before = Device.used_bytes dev in
      let b = Device.alloc_f32 dev 1000 in
      Alcotest.(check int) "alloc accounted" (before + 4000) (Device.used_bytes dev);
      Device.free dev b;
      Alcotest.(check int) "free accounted" before (Device.used_bytes dev);
      match Device.free dev b with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "double free accepted")

let test_freed_buffer_faults () =
  with_device (fun dev ->
      let x = Device.alloc_f64 dev 8 in
      let y = Device.alloc_f64 dev 8 in
      Device.free dev x;
      let compiled = Jit.compile daxpy_text in
      match
        Device.launch dev compiled ~nthreads:8 ~block:8
          ~params:[| Gpusim.Vm.Ptr x; Gpusim.Vm.Ptr y; Gpusim.Vm.Float 1.0; Gpusim.Vm.Int 8 |]
      with
      | exception Gpusim.Vm.Fault _ -> ()
      | _ -> Alcotest.fail "use-after-free executed")

let test_type_mismatch_faults () =
  with_device (fun dev ->
      (* f64 kernel on f32 buffers must fault, not reinterpret. *)
      let x = Device.alloc_f32 dev 8 and y = Device.alloc_f32 dev 8 in
      let compiled = Jit.compile daxpy_text in
      match
        Device.launch dev compiled ~nthreads:8 ~block:8
          ~params:[| Gpusim.Vm.Ptr x; Gpusim.Vm.Ptr y; Gpusim.Vm.Float 1.0; Gpusim.Vm.Int 8 |]
      with
      | exception Gpusim.Vm.Fault _ -> ()
      | _ -> Alcotest.fail "typed load from wrong buffer kind executed")

let test_clock_and_stats () =
  with_device (fun dev ->
      let compiled = Jit.compile daxpy_text in
      let x = Device.alloc_f64 dev 4096 and y = Device.alloc_f64 dev 4096 in
      let t0 = Device.clock_ns dev in
      let ns =
        Device.launch dev compiled ~nthreads:4096 ~block:128
          ~params:[| Gpusim.Vm.Ptr x; Gpusim.Vm.Ptr y; Gpusim.Vm.Float 1.0; Gpusim.Vm.Int 4096 |]
      in
      Alcotest.(check bool) "time positive" true (ns > 0.0);
      Alcotest.(check (float 1e-6)) "clock advanced" (t0 +. ns) (Device.clock_ns dev);
      Alcotest.(check int) "launch counted" 1 (Device.stats dev).Device.launches)

let test_timing_monotone_in_volume () =
  let m = Machine.k20x_ecc_off in
  let compiled = Jit.compile daxpy_text in
  let time n =
    Gpusim.Timing.kernel_time_ns m ~analysis:compiled.Jit.analysis
      ~regs_per_thread:compiled.Jit.regs_per_thread ~prec:Gpusim.Timing.Dp ~nthreads:n ~block:128
  in
  let prev = ref 0.0 in
  List.iter
    (fun n ->
      let t = time n in
      if t < !prev then Alcotest.failf "time decreased at n=%d" n;
      prev := t)
    [ 16; 256; 4096; 65536; 1_000_000 ]

let test_bandwidth_plateau_bounded () =
  let m = Machine.k20x_ecc_off in
  let compiled = Jit.compile daxpy_text in
  let bw =
    Gpusim.Timing.sustained_bandwidth m ~analysis:compiled.Jit.analysis
      ~regs_per_thread:compiled.Jit.regs_per_thread ~prec:Gpusim.Timing.Dp ~nthreads:10_000_000
      ~block:256
  in
  Alcotest.(check bool) "never exceeds efficiency ceiling" true
    (bw <= m.Machine.bw_efficiency *. m.Machine.peak_bw *. 1.0001)

let test_small_block_slower () =
  let m = Machine.k20x_ecc_off in
  let compiled = Jit.compile daxpy_text in
  let time block =
    Gpusim.Timing.kernel_time_ns m ~analysis:compiled.Jit.analysis
      ~regs_per_thread:compiled.Jit.regs_per_thread ~prec:Gpusim.Timing.Dp ~nthreads:1_000_000
      ~block
  in
  Alcotest.(check bool) "block 32 slower than 256" true (time 32 > time 256 *. 1.2)

let test_compile_time_range () =
  let compiled = Jit.compile daxpy_text in
  Alcotest.(check bool) "paper's range" true
    (compiled.Jit.compile_time >= 0.04 && compiled.Jit.compile_time <= 0.25)

let test_transfer_time () =
  let m = Machine.k20x_ecc_off in
  let t_small = Gpusim.Timing.transfer_time_ns m ~bytes:8 in
  let t_big = Gpusim.Timing.transfer_time_ns m ~bytes:(1024 * 1024 * 64) in
  Alcotest.(check bool) "latency floor" true (t_small >= m.Machine.pcie_latency_ns);
  Alcotest.(check bool) "bandwidth term" true (t_big > 100.0 *. t_small)

let test_math_subroutine () =
  (* A kernel calling the sin subroutine. *)
  let text =
    {|
.version 3.1
.target sm_35
.address_size 64

.visible .entry sintest(
	.param .u64 sintest_param_0,
	.param .s32 sintest_param_1
)
{
	ld.param.u64 	%rd1, [sintest_param_0];
	ld.param.s32 	%r1, [sintest_param_1];
	mov.u32 	%r2, %tid.x;
	setp.ge.s32 	%p1, %r2, %r1;
	@%p1 bra 	EXIT;
	mul.lo.s32 	%r3, %r2, 8;
	cvt.s64.s32 	%rs1, %r3;
	cvt.u64.s64 	%rd2, %rs1;
	add.u64 	%rd3, %rd1, %rd2;
	ld.global.f64 	%fd1, [%rd3+0];
	call.uni 	(%fd2), qdpjit_sin_f64, (%fd1);
	st.global.f64 	[%rd3+0], %fd2;
EXIT:
	ret;
}
|}
  in
  with_device (fun dev ->
      let n = 16 in
      let x = Device.alloc_f64 dev n in
      (match x.Buffer_.data with
      | Buffer_.F64 xa ->
          for i = 0 to n - 1 do
            xa.{i} <- 0.1 *. float_of_int i
          done
      | _ -> assert false);
      let compiled = Jit.compile text in
      ignore
        (Device.launch dev compiled ~nthreads:n ~block:n
           ~params:[| Gpusim.Vm.Ptr x; Gpusim.Vm.Int n |]);
      match x.Buffer_.data with
      | Buffer_.F64 xa ->
          for i = 0 to n - 1 do
            Alcotest.(check (float 1e-15)) "sin" (sin (0.1 *. float_of_int i)) xa.{i}
          done
      | _ -> assert false)

(* REPRO_VM_DOMAINS parsing: a malformed override (zero, negative,
   non-numeric, empty) must fall back to the hardware count instead of
   serializing or crashing every launch; a valid one is trimmed,
   parsed and clamped; an explicit argument always wins. *)
let test_host_domains_env () =
  let avail = Gpusim.Vm_backend.available_domains () in
  let orig = Sys.getenv_opt "REPRO_VM_DOMAINS" in
  let with_env v = Unix.putenv "REPRO_VM_DOMAINS" v; Machine.host_domains () in
  Fun.protect
    ~finally:(fun () ->
      (* putenv cannot unset: restore the original pin, or re-pin the
         hardware count (the same value an unset variable resolves to). *)
      Unix.putenv "REPRO_VM_DOMAINS"
        (match orig with Some v -> v | None -> string_of_int avail))
    (fun () ->
      Alcotest.(check int) "valid" 3 (with_env "3");
      Alcotest.(check int) "trimmed" 8 (with_env " 8 ");
      Alcotest.(check int) "clamped to 64" 64 (with_env "999");
      Alcotest.(check int) "zero falls back" avail (with_env "0");
      Alcotest.(check int) "negative falls back" avail (with_env "-3");
      Alcotest.(check int) "non-numeric falls back" avail (with_env "nope");
      Alcotest.(check int) "empty falls back" avail (with_env "");
      Alcotest.(check int) "explicit argument wins" 2
        (Unix.putenv "REPRO_VM_DOMAINS" "7";
         Machine.host_domains ~vm_domains:2 ()))

(* REPRO_VM_SUPERINSN parsing: the executor switches off for exactly
   the off/0/none/disabled spellings REPRO_JIT_CACHE accepts, case- and
   whitespace-insensitively; everything else — unset, empty, and
   notably the no-longer-special "false" — leaves it on.  The pure
   parser is tested directly because the ref it feeds is initialized
   once at module load. *)
let test_superinsn_env () =
  let parse v = Gpusim.Vm.superinsn_of_env (Some v) in
  List.iter
    (fun v -> Alcotest.(check bool) (Printf.sprintf "%S disables" v) false (parse v))
    [ "off"; "OFF"; " Off\t"; "0"; " 0 "; "none"; "NoNe"; "disabled"; "  DISABLED" ];
  List.iter
    (fun v -> Alcotest.(check bool) (Printf.sprintf "%S stays on" v) true (parse v))
    [ "on"; "1"; ""; "   "; "yes"; "offf"; "false" ];
  Alcotest.(check bool) "unset stays on" true (Gpusim.Vm.superinsn_of_env None)

let () =
  Alcotest.run "gpusim"
    [
      ( "vm",
        [
          Alcotest.test_case "daxpy executes" `Quick test_daxpy_executes;
          Alcotest.test_case "thread guard" `Quick test_guard_respected;
          Alcotest.test_case "math subroutine" `Quick test_math_subroutine;
          Alcotest.test_case "REPRO_VM_SUPERINSN parse" `Quick test_superinsn_env;
        ] );
      ( "device",
        [
          Alcotest.test_case "launch failure" `Quick test_launch_failure_block_too_big;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          Alcotest.test_case "buffer accounting" `Quick test_buffer_accounting;
          Alcotest.test_case "use after free" `Quick test_freed_buffer_faults;
          Alcotest.test_case "typed buffers" `Quick test_type_mismatch_faults;
          Alcotest.test_case "clock and stats" `Quick test_clock_and_stats;
        ] );
      ( "machine",
        [ Alcotest.test_case "REPRO_VM_DOMAINS parse" `Quick test_host_domains_env ] );
      ( "timing",
        [
          Alcotest.test_case "monotone in volume" `Quick test_timing_monotone_in_volume;
          Alcotest.test_case "bandwidth ceiling" `Quick test_bandwidth_plateau_bounded;
          Alcotest.test_case "small blocks slower" `Quick test_small_block_slower;
          Alcotest.test_case "compile time range" `Quick test_compile_time_range;
          Alcotest.test_case "transfer time" `Quick test_transfer_time;
        ] );
    ]
