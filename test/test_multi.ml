(* Multi-rank SPMD execution: results must be identical to the single-rank
   global-lattice CPU reference for every decomposition, and identical with
   communication overlap on or off. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Multi = Qdpjit.Multi

let rng = Prng.create ~seed:404L

let global_reference global_dims build =
  let geom = Geometry.create global_dims in
  let u = Lqcd.Gauge.create_links geom in
  Lqcd.Gauge.random_gauge ~epsilon:0.4 u (Prng.create ~seed:9L);
  let psi = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian psi (Prng.create ~seed:10L);
  let expr = build u psi in
  let out = Field.create (Expr.shape expr) geom in
  Qdp.Eval_cpu.eval out expr;
  (u, psi, out)

let distributed_run ?(overlap = true) ~global_dims ~rank_dims (u, psi, _ref_out) build =
  let m = Multi.create ~global_dims ~rank_dims () in
  Multi.set_overlap m overlap;
  let du =
    Array.map
      (fun uf ->
        let df = Multi.create_field m (Shape.lattice_color_matrix Shape.F64) in
        Multi.scatter m ~global:uf df;
        df)
      u
  in
  let dpsi = Multi.create_field m (Shape.lattice_fermion Shape.F64) in
  Multi.scatter m ~global:psi dpsi;
  let shape =
    Expr.shape (build (Array.map (fun (df : Multi.dfield) -> df.Multi.locals.(0)) du)
        dpsi.Multi.locals.(0))
  in
  let dout = Multi.create_field m shape in
  let timing =
    Multi.eval m dout (fun rank ->
        build (Array.map (fun (df : Multi.dfield) -> df.Multi.locals.(rank)) du)
          dpsi.Multi.locals.(rank))
  in
  let got = Field.create shape (Geometry.create global_dims) in
  Multi.gather m dout ~global:got;
  (m, got, timing)

let check_against_reference ~global_dims ~rank_dims build =
  let ((_, _, ref_out) as setup) = global_reference global_dims build in
  let _, got, _ = distributed_run ~global_dims ~rank_dims setup build in
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field got) (Expr.field ref_out)) in
  if d <> 0.0 then Alcotest.failf "distributed differs from reference: %g" d

let dslash u psi = Lqcd.Wilson.hopping_expr u psi

(* Parallel rank sweep: dealing ranks to OCaml domains must be invisible
   in results — the gathered field and the cross-rank reductions are
   bit-identical to the sequential rank sweep, and drop_temps (which
   releases the per-domain shift-pool arena slices) must leave later
   evals unchanged. *)
let test_rank_domains_bit_identical () =
  let global_dims = [| 8; 8; 4; 4 |] and rank_dims = [| 2; 2; 1; 1 |] in
  let u, psi, _ = global_reference global_dims dslash in
  let fm = Shape.lattice_fermion Shape.F64 in
  let run rank_domains =
    let m = Multi.create ~rank_domains ~global_dims ~rank_dims () in
    let du =
      Array.map
        (fun uf ->
          let df = Multi.create_field m (Shape.lattice_color_matrix Shape.F64) in
          Multi.scatter m ~global:uf df;
          df)
        u
    in
    let dpsi = Multi.create_field m fm in
    Multi.scatter m ~global:psi dpsi;
    let dout = Multi.create_field m fm in
    let mk rank =
      dslash (Array.map (fun (df : Multi.dfield) -> df.Multi.locals.(rank)) du)
        dpsi.Multi.locals.(rank)
    in
    ignore (Multi.eval m dout mk);
    let n2 = Multi.norm2 m (fun rank -> Expr.field dout.Multi.locals.(rank)) in
    Multi.drop_temps m;
    ignore (Multi.eval m dout mk);
    let n2' = Multi.norm2 m (fun rank -> Expr.field dout.Multi.locals.(rank)) in
    let got = Field.create fm (Geometry.create global_dims) in
    Multi.gather m dout ~global:got;
    (m, got, n2, n2')
  in
  let m1, got1, n1, n1' = run 1 in
  let m4, got4, n4, n4' = run 4 in
  Alcotest.(check int) "sequential sweep" 1 (Multi.rank_domains m1);
  Alcotest.(check int) "parallel sweep" 4 (Multi.rank_domains m4);
  if Int64.bits_of_float n1 <> Int64.bits_of_float n4 then
    Alcotest.failf "norm2 differs: %h vs %h" n1 n4;
  if Int64.bits_of_float n1 <> Int64.bits_of_float n1' then
    Alcotest.failf "norm2 changed across drop_temps (sequential): %h vs %h" n1 n1';
  if Int64.bits_of_float n4 <> Int64.bits_of_float n4' then
    Alcotest.failf "norm2 changed across drop_temps (parallel): %h vs %h" n4 n4';
  for site = 0 to Field.volume got1 - 1 do
    let a = Field.get_site got1 ~site and b = Field.get_site got4 ~site in
    Array.iteri
      (fun c x ->
        if Int64.bits_of_float x <> Int64.bits_of_float b.(c) then
          Alcotest.failf "site %d comp %d: %h (1 worker) vs %h (4 workers)" site c x b.(c))
      a
  done

let test_dslash_2ranks_dim0 () =
  check_against_reference ~global_dims:[| 8; 4; 4; 4 |] ~rank_dims:[| 2; 1; 1; 1 |] dslash

let test_dslash_2ranks_dim3 () =
  check_against_reference ~global_dims:[| 4; 4; 4; 8 |] ~rank_dims:[| 1; 1; 1; 2 |] dslash

let test_dslash_4ranks_2x2 () =
  check_against_reference ~global_dims:[| 8; 8; 4; 4 |] ~rank_dims:[| 2; 2; 1; 1 |] dslash

let test_dslash_8ranks () =
  check_against_reference ~global_dims:[| 8; 8; 8; 2 |] ~rank_dims:[| 2; 2; 2; 1 |] dslash

let test_staple_shift_of_shift () =
  (* The staple contains shift(shift(...)) patterns: the nested exchange
     path (non-overlapping, as the paper notes) must still be exact. *)
  check_against_reference ~global_dims:[| 8; 4; 4; 4 |] ~rank_dims:[| 2; 1; 1; 1 |]
    (fun u _psi -> Lqcd.Gauge.clover_leaf_sum_expr u ~mu:0 ~nu:1)

let test_plaquette_distributed () =
  let global_dims = [| 8; 4; 4; 4 |] in
  let geom = Geometry.create global_dims in
  let u = Lqcd.Gauge.create_links geom in
  Lqcd.Gauge.random_gauge ~epsilon:0.4 u rng;
  let reference =
    Lqcd.Gauge.mean_plaquette ~sum_real:(fun e -> (Qdp.Eval_cpu.sum_components e).(0)) u
  in
  let m = Multi.create ~global_dims ~rank_dims:[| 2; 1; 1; 1 |] () in
  let du =
    Array.map
      (fun uf ->
        let df = Multi.create_field m (Shape.lattice_color_matrix Shape.F64) in
        Multi.scatter m ~global:uf df;
        df)
      u
  in
  (* Build the plaquette sum by materialising each plaquette expression into
     a distributed field and reducing. *)
  let acc = ref 0.0 and pairs = ref 0 in
  for mu = 0 to 3 do
    for nu = mu + 1 to 3 do
      let dest = Multi.create_field m (Shape.real_scalar Shape.F64) in
      ignore
        (Multi.eval m dest (fun rank ->
             let ul = Array.map (fun (df : Multi.dfield) -> df.Multi.locals.(rank)) du in
             Lqcd.Gauge.plaquette_trace_expr ul ~mu ~nu));
      acc := !acc +. Multi.sum_real m (fun rank -> Expr.field dest.Multi.locals.(rank));
      incr pairs
    done
  done;
  let got = !acc /. float_of_int (Geometry.volume geom * !pairs) in
  Alcotest.(check (float 1e-13)) "plaquette" reference got

let test_overlap_off_same_result () =
  let setup = global_reference [| 8; 4; 4; 4 |] dslash in
  let _, on_result, _ =
    distributed_run ~overlap:true ~global_dims:[| 8; 4; 4; 4 |] ~rank_dims:[| 2; 1; 1; 1 |] setup dslash
  in
  let _, off_result, _ =
    distributed_run ~overlap:false ~global_dims:[| 8; 4; 4; 4 |] ~rank_dims:[| 2; 1; 1; 1 |] setup
      dslash
  in
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field on_result) (Expr.field off_result)) in
  Alcotest.(check (float 0.0)) "overlap toggles timing only" 0.0 d

let test_overlap_not_slower () =
  (* On a warmed-up engine the overlap timeline is never slower than the
     non-overlapped one (same work, comm hidden). *)
  let global_dims = [| 8; 8; 8; 8 |] in
  let run overlap =
    let m = Multi.create ~mode:Gpusim.Device.Model_only ~global_dims ~rank_dims:[| 1; 1; 1; 2 |] () in
    Multi.set_overlap m overlap;
    let u = Array.init 4 (fun _ -> Multi.create_field m (Shape.lattice_color_matrix Shape.F64)) in
    let psi = Multi.create_field m (Shape.lattice_fermion Shape.F64) in
    let out = Multi.create_field m (Shape.lattice_fermion Shape.F64) in
    let mk rank =
      dslash (Array.map (fun (df : Multi.dfield) -> df.Multi.locals.(rank)) u)
        psi.Multi.locals.(rank)
    in
    for _ = 1 to 6 do
      ignore (Multi.eval m out mk)
    done;
    Multi.reset_clocks m;
    (Multi.eval m out mk).Multi.total_ns
  in
  let t_on = run true and t_off = run false in
  Alcotest.(check bool)
    (Printf.sprintf "overlap %.0f <= non-overlap %.0f" t_on t_off)
    true (t_on <= t_off *. 1.0001)

let test_scatter_gather_roundtrip () =
  let global_dims = [| 4; 4; 4; 4 |] in
  let geom = Geometry.create global_dims in
  let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian f rng;
  let m = Multi.create ~global_dims ~rank_dims:[| 2; 2; 1; 1 |] () in
  let df = Multi.create_field m (Shape.lattice_fermion Shape.F64) in
  Multi.scatter m ~global:f df;
  let back = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Multi.gather m df ~global:back;
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field f) (Expr.field back)) in
  Alcotest.(check (float 0.0)) "roundtrip" 0.0 d

let test_reductions_across_ranks () =
  let global_dims = [| 8; 4; 4; 4 |] in
  let geom = Geometry.create global_dims in
  let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian f rng;
  let reference = Qdp.Eval_cpu.norm2 (Expr.field f) in
  let m = Multi.create ~global_dims ~rank_dims:[| 2; 1; 1; 1 |] () in
  let df = Multi.create_field m (Shape.lattice_fermion Shape.F64) in
  Multi.scatter m ~global:f df;
  let got = Multi.norm2 m (fun rank -> Expr.field df.Multi.locals.(rank)) in
  Alcotest.(check (float (1e-12 *. reference))) "norm2 across ranks" reference got

let test_comm_stats () =
  let setup = global_reference [| 8; 4; 4; 4 |] dslash in
  let m, _, _ =
    distributed_run ~global_dims:[| 8; 4; 4; 4 |] ~rank_dims:[| 2; 1; 1; 1 |] setup dslash
  in
  let stats = Multi.fabric_stats m in
  (* Two dim-0 shifts * 2 ranks = 4 messages, each a 64-site fermion face. *)
  Alcotest.(check int) "messages" 4 stats.Comms.Fabric.messages;
  Alcotest.(check int) "bytes" (4 * 64 * 192) stats.Comms.Fabric.bytes

let () =
  Alcotest.run "multi"
    [
      ( "correctness",
        [
          Alcotest.test_case "dslash 2 ranks dim0" `Quick test_dslash_2ranks_dim0;
          Alcotest.test_case "dslash 2 ranks dim3" `Quick test_dslash_2ranks_dim3;
          Alcotest.test_case "dslash 2x2 ranks" `Quick test_dslash_4ranks_2x2;
          Alcotest.test_case "dslash 8 ranks" `Slow test_dslash_8ranks;
          Alcotest.test_case "shift of shift" `Quick test_staple_shift_of_shift;
          Alcotest.test_case "plaquette" `Quick test_plaquette_distributed;
          Alcotest.test_case "scatter/gather" `Quick test_scatter_gather_roundtrip;
          Alcotest.test_case "reductions" `Quick test_reductions_across_ranks;
          Alcotest.test_case "rank domains bit-identical" `Quick
            test_rank_domains_bit_identical;
        ] );
      ( "overlap",
        [
          Alcotest.test_case "same result" `Quick test_overlap_off_same_result;
          Alcotest.test_case "never slower" `Quick test_overlap_not_slower;
          Alcotest.test_case "comm accounting" `Quick test_comm_stats;
        ] );
    ]
