module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr

let geom = Geometry.create [| 4; 4; 4; 2 |]
let rng = Prng.create ~seed:808L
let shape = Shape.lattice_fermion Shape.F64

(* Shared problem setup: a warm gauge field and the Wilson operator. *)
let u = Lqcd.Gauge.create_links geom
let () = Lqcd.Gauge.random_gauge ~epsilon:0.3 u rng
let kappa = 0.115
let eng = Qdpjit.Engine.create ()
let ops = Solvers.Ops.jit eng shape geom
let apply_m src = Lqcd.Wilson.wilson_expr ~kappa u src
let nop = Solvers.Ops.normal_op ops ~apply_m

let mop =
  { Solvers.Ops.apply = (fun dest src -> Qdpjit.Engine.eval eng dest (apply_m src)); tag = "M" }

let rhs () =
  let b = Field.create shape geom in
  Field.fill_gaussian b rng;
  b

let true_residual op b x =
  let tmp = Field.create shape geom in
  op.Solvers.Ops.apply tmp x;
  sqrt
    (Qdpjit.Engine.norm2 eng (Expr.sub (Expr.field tmp) (Expr.field b))
    /. Qdpjit.Engine.norm2 eng (Expr.field b))

let test_cg_converges () =
  let b = rhs () in
  let x = Field.create shape geom in
  let r = Solvers.Cg.solve ops nop ~b ~x ~tol:1e-10 () in
  Alcotest.(check bool) "converged" true r.Solvers.Cg.converged;
  Alcotest.(check bool) "claimed residual" true (r.Solvers.Cg.residual <= 1e-10);
  Alcotest.(check bool) "true residual" true (true_residual nop b x <= 1e-9)

let test_cg_zero_rhs () =
  let b = Field.create shape geom in
  let x = Field.create shape geom in
  let r = Solvers.Cg.solve ops nop ~b ~x ~tol:1e-10 () in
  Alcotest.(check bool) "converged without iterating" true
    (r.Solvers.Cg.converged && r.Solvers.Cg.iterations = 0)

let test_cg_max_iter () =
  let b = rhs () in
  let x = Field.create shape geom in
  let r = Solvers.Cg.solve ops nop ~b ~x ~tol:1e-14 ~max_iter:2 () in
  Alcotest.(check bool) "honest failure" true
    ((not r.Solvers.Cg.converged) && r.Solvers.Cg.iterations = 2)

let test_bicgstab_converges () =
  let b = rhs () in
  let x = Field.create shape geom in
  let r = Solvers.Bicgstab.solve ops mop ~b ~x ~tol:1e-10 () in
  Alcotest.(check bool) "converged" true r.Solvers.Bicgstab.converged;
  Alcotest.(check bool) "true residual" true (true_residual mop b x <= 1e-9)

let test_gcr_converges () =
  let b = rhs () in
  let x = Field.create shape geom in
  let r = Solvers.Gcr.solve ops mop ~b ~x ~tol:1e-10 ~restart:12 () in
  Alcotest.(check bool) "converged" true r.Solvers.Gcr.converged;
  Alcotest.(check bool) "true residual" true (true_residual mop b x <= 1e-9)

let test_solvers_agree () =
  let b = rhs () in
  let x1 = Field.create shape geom and x2 = Field.create shape geom in
  ignore (Solvers.Bicgstab.solve ops mop ~b ~x:x1 ~tol:1e-11 ());
  ignore (Solvers.Gcr.solve ops mop ~b ~x:x2 ~tol:1e-11 ());
  let d = Qdpjit.Engine.norm2 eng (Expr.sub (Expr.field x1) (Expr.field x2)) in
  let n = Qdpjit.Engine.norm2 eng (Expr.field x1) in
  Alcotest.(check bool) "same solution" true (sqrt (d /. n) < 1e-8)

let test_multishift_matches_direct () =
  let b = rhs () in
  let shifts = [| 0.1; 0.7; 2.5 |] in
  let xs = Array.init 3 (fun _ -> Field.create shape geom) in
  let r = Solvers.Multishift_cg.solve ops nop ~b ~shifts ~xs ~tol:1e-10 () in
  Alcotest.(check bool) "converged" true r.Solvers.Multishift_cg.converged;
  Array.iteri
    (fun i sigma ->
      let shifted =
        {
          Solvers.Ops.apply =
            (fun dest src ->
              nop.Solvers.Ops.apply dest src;
              Qdpjit.Engine.eval eng dest
                (Expr.add (Expr.field dest) (Expr.mul (Expr.const_real sigma) (Expr.field src))));
          tag = "A+sigma";
        }
      in
      let xd = Field.create shape geom in
      ignore (Solvers.Cg.solve ops shifted ~b ~x:xd ~tol:1e-11 ());
      let d = Qdpjit.Engine.norm2 eng (Expr.sub (Expr.field xd) (Expr.field xs.(i))) in
      let n = Qdpjit.Engine.norm2 eng (Expr.field xd) in
      if sqrt (d /. n) > 1e-7 then Alcotest.failf "shift %g mismatch: %g" sigma (sqrt (d /. n)))
    shifts

let test_multishift_larger_shifts_converge_faster () =
  let b = rhs () in
  let shifts = [| 0.01; 10.0 |] in
  let xs = Array.init 2 (fun _ -> Field.create shape geom) in
  let r = Solvers.Multishift_cg.solve ops nop ~b ~shifts ~xs ~tol:1e-10 () in
  Alcotest.(check bool) "big shift residual smaller" true
    (r.Solvers.Multishift_cg.residuals.(1) <= r.Solvers.Multishift_cg.residuals.(0) +. 1e-12)

let test_mixed_precision () =
  let shape32 = Shape.lattice_fermion Shape.F32 in
  let u32 = Array.map (fun _ -> Field.create (Shape.lattice_color_matrix Shape.F32) geom) u in
  Array.iteri (fun mu d -> Qdpjit.Engine.eval eng d (Expr.field u.(mu))) u32;
  let ops32 = Solvers.Ops.jit eng shape32 geom in
  let apply32 src = Lqcd.Wilson.wilson_expr ~kappa u32 src in
  let nop32 = Solvers.Ops.normal_op ops32 ~apply_m:apply32 in
  let b = rhs () in
  let x = Field.create shape geom in
  let r = Solvers.Mixed.solve ops nop ops32 nop32 ~b ~x ~tol:1e-9 () in
  Alcotest.(check bool) "converged" true r.Solvers.Mixed.converged;
  Alcotest.(check bool) "dp residual from sp inner solves" true (true_residual nop b x <= 1e-8);
  Alcotest.(check bool) "took more than one outer" true (r.Solvers.Mixed.outer_iterations >= 2)

let test_reliable_half () =
  (* Half-precision storage for every Krylov vector and the gauge links;
     the reliable updates must still reach the full f64 tolerance. *)
  let shape16 = Shape.lattice_fermion Shape.F16 in
  let u16 = Array.map (fun _ -> Field.create (Shape.lattice_color_matrix Shape.F16) geom) u in
  Array.iteri (fun mu d -> Qdpjit.Engine.eval eng d (Expr.field u.(mu))) u16;
  let ops16 = Solvers.Ops.jit eng shape16 geom in
  let apply16 src = Lqcd.Wilson.wilson_expr ~kappa u16 src in
  let nop16 = Solvers.Ops.normal_op ops16 ~apply_m:apply16 in
  let b = rhs () in
  let x = Field.create shape geom in
  let r = Solvers.Mixed.solve_reliable ops nop ops16 nop16 ~b ~x ~tol:1e-10 () in
  Alcotest.(check bool) "converged" true r.Solvers.Mixed.converged;
  Alcotest.(check bool)
    (Printf.sprintf "claimed residual %.2e" r.Solvers.Mixed.residual)
    true
    (r.Solvers.Mixed.residual <= 1e-10);
  Alcotest.(check bool) "true dp residual from hp iterations" true (true_residual nop b x <= 1e-9);
  Alcotest.(check bool) "took several reliable updates" true (r.Solvers.Mixed.reliable_updates >= 2)

let test_reliable_half_rejects_f32 () =
  let shape32 = Shape.lattice_fermion Shape.F32 in
  let ops32 = Solvers.Ops.jit eng shape32 geom in
  let b = rhs () in
  let x = Field.create shape geom in
  Alcotest.check_raises "guards inner precision"
    (Invalid_argument "Mixed.solve_reliable: inner ops must be half precision") (fun () ->
      ignore (Solvers.Mixed.solve_reliable ops nop ops32 nop ~b ~x ()))

let test_eo_preconditioned_matches_full () =
  let b = rhs () in
  let x_eo = Field.create shape geom in
  let r = Solvers.Eo_wilson.solve ops ~kappa u ~b ~x:x_eo ~tol:1e-10 () in
  Alcotest.(check bool) "converged" true r.Solvers.Eo_wilson.converged;
  Alcotest.(check bool)
    (Printf.sprintf "full-operator residual %.2e" r.Solvers.Eo_wilson.residual)
    true
    (r.Solvers.Eo_wilson.residual <= 1e-8);
  (* Same solution as an unpreconditioned solve of M x = b. *)
  let x_full = Field.create shape geom in
  ignore (Solvers.Bicgstab.solve ops mop ~b ~x:x_full ~tol:1e-11 ());
  let d = Qdpjit.Engine.norm2 eng (Expr.sub (Expr.field x_eo) (Expr.field x_full)) in
  let n = Qdpjit.Engine.norm2 eng (Expr.field x_full) in
  Alcotest.(check bool) "matches full solve" true (sqrt (d /. n) < 1e-7)

let test_eo_fewer_iterations () =
  let b = rhs () in
  let x_eo = Field.create shape geom in
  let r_eo = Solvers.Eo_wilson.solve ops ~kappa u ~b ~x:x_eo ~tol:1e-10 () in
  let x_full = Field.create shape geom in
  let r_full = Solvers.Cg.solve ops nop ~b ~x:x_full ~tol:1e-10 () in
  Alcotest.(check bool)
    (Printf.sprintf "eo %d < full %d iterations" r_eo.Solvers.Eo_wilson.iterations
       r_full.Solvers.Cg.iterations)
    true
    (r_eo.Solvers.Eo_wilson.iterations < r_full.Solvers.Cg.iterations)

let test_quda_headroom_numbers () =
  Alcotest.(check (float 1e-9)) "sp" 1.76 (Solvers.Quda_like.headroom Solvers.Quda_like.Sp);
  Alcotest.(check (float 1e-9)) "dp" 1.9 (Solvers.Quda_like.headroom Solvers.Quda_like.Dp);
  Alcotest.(check (float 0.5)) "generated sp" 196.6
    (Solvers.Quda_like.generated_dslash_gflops Solvers.Quda_like.Sp);
  Alcotest.(check (float 0.5)) "generated dp" 90.0
    (Solvers.Quda_like.generated_dslash_gflops Solvers.Quda_like.Dp)

let test_cpu_and_jit_ops_agree () =
  (* The same CG on the CPU backend lands on the same solution. *)
  let cpu_ops = Solvers.Ops.cpu shape geom in
  let cpu_nop = Solvers.Ops.normal_op cpu_ops ~apply_m in
  let b = rhs () in
  let x_cpu = Field.create shape geom and x_jit = Field.create shape geom in
  ignore (Solvers.Cg.solve cpu_ops cpu_nop ~b ~x:x_cpu ~tol:1e-11 ());
  ignore (Solvers.Cg.solve ops nop ~b ~x:x_jit ~tol:1e-11 ());
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field x_cpu) (Expr.field x_jit)) in
  let n = Qdp.Eval_cpu.norm2 (Expr.field x_cpu) in
  Alcotest.(check bool) "backends agree" true (sqrt (d /. n) < 1e-9)

let () =
  Alcotest.run "solvers"
    [
      ( "cg",
        [
          Alcotest.test_case "converges" `Quick test_cg_converges;
          Alcotest.test_case "zero rhs" `Quick test_cg_zero_rhs;
          Alcotest.test_case "max_iter honest" `Quick test_cg_max_iter;
          Alcotest.test_case "cpu/jit backends" `Quick test_cpu_and_jit_ops_agree;
        ] );
      ( "krylov",
        [
          Alcotest.test_case "bicgstab" `Quick test_bicgstab_converges;
          Alcotest.test_case "gcr" `Quick test_gcr_converges;
          Alcotest.test_case "solutions agree" `Quick test_solvers_agree;
        ] );
      ( "multishift",
        [
          Alcotest.test_case "matches direct" `Quick test_multishift_matches_direct;
          Alcotest.test_case "shift ordering" `Quick test_multishift_larger_shifts_converge_faster;
        ] );
      ( "mixed",
        [
          Alcotest.test_case "sp-inner dp-outer" `Quick test_mixed_precision;
          Alcotest.test_case "hp reliable-update" `Quick test_reliable_half;
          Alcotest.test_case "hp guard" `Quick test_reliable_half_rejects_f32;
        ] );
      ( "even-odd",
        [
          Alcotest.test_case "matches full solve" `Quick test_eo_preconditioned_matches_full;
          Alcotest.test_case "better conditioning" `Quick test_eo_fewer_iterations;
        ] );
      ("quda", [ Alcotest.test_case "headroom" `Quick test_quda_headroom_numbers ]);
    ]
