(* Cross-eval kernel fusion: the deferred launch queue + PTX body
   splicing must be invisible to results.  Every test runs the same eval
   sequence through a fused engine, a [~fuse:false] engine and the CPU
   reference, and demands bit-identical field contents — while the stats
   confirm the fused engine really launched fewer kernels and moved
   fewer bytes. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Engine = Qdpjit.Engine

let geom = Geometry.create [| 4; 4; 2; 2 |]
let fm = Shape.lattice_fermion Shape.F64

(* The CPU reference accumulates products through [c_fma] starting from
   +0.0, which turns a -0.0 product into +0.0; the VM multiplies
   directly and keeps the sign.  Both are correct real arithmetic, so
   comparisons against the CPU canonicalize signed zeros.  Fused vs
   unfused stays strictly bit-exact: fusion must change nothing. *)
let bits ~canon_zero v =
  if canon_zero && v = 0.0 then 0L else Int64.bits_of_float v

let fields_bit_equal ?(canon_zero = false) name a b =
  let ok = ref true in
  for site = 0 to Field.volume a - 1 do
    let sa = Field.get_site a ~site and sb = Field.get_site b ~site in
    Array.iteri
      (fun i va -> if bits ~canon_zero va <> bits ~canon_zero sb.(i) then ok := false)
      sa
  done;
  Alcotest.(check bool) name true !ok

(* A tiny straight-line program over a pool of fields, interpretable by
   any backend.  Indices are pool slots. *)
type op =
  | Scale of int * float * int  (* dest = c * src *)
  | Axpy of int * float * int * int  (* dest = c * a + b *)
  | Sub of int * int * int  (* dest = a - b *)
  | Shift of int * int * int * int  (* dest = shift(src, dim, dir) *)

let op_expr pool = function
  | Scale (_, c, s) -> Expr.mul (Expr.const_real c) (Expr.field pool.(s))
  | Axpy (_, c, a, b) ->
      Expr.add (Expr.mul (Expr.const_real c) (Expr.field pool.(a))) (Expr.field pool.(b))
  | Sub (_, a, b) -> Expr.sub (Expr.field pool.(a)) (Expr.field pool.(b))
  | Shift (_, s, dim, dir) -> Expr.shift (Expr.field pool.(s)) ~dim ~dir

let op_dest = function Scale (d, _, _) | Axpy (d, _, _, _) | Sub (d, _, _) | Shift (d, _, _, _) -> d

(* [fill_gaussian] keys its draws by site, so two fields filled from the
   same seed would be identical; offset the key per pool slot so every
   field carries distinct content. *)
let fresh_pool seed n =
  let rng = Prng.create ~seed in
  Array.init n (fun i ->
      let f = Field.create fm geom in
      Field.fill_gaussian ~site_key:(fun site -> site + (i * 1_000_003)) f rng;
      f)

(* Shared engines: kernel and fused-kernel caches warm up across cases,
   like a long-running Chroma process.  [fused_eng] has reduction fusion
   on (the default); [fused_nored_eng] runs the identical reduction
   kernels but launches every payload standalone. *)
let fused_eng = Engine.create ~fuse:true ()
let fused_nored_eng = Engine.create ~fuse:true ~fuse_reductions:false ()
let unfused_eng = Engine.create ~fuse:false ()

let run_jit ~fuse seed prog =
  let eng = if fuse then fused_eng else unfused_eng in
  let pool = fresh_pool seed 4 in
  List.iter (fun op -> Engine.eval eng pool.(op_dest op) (op_expr pool op)) prog;
  Engine.flush eng;
  (eng, pool)

let run_cpu seed prog =
  let pool = fresh_pool seed 4 in
  List.iter (fun op -> Qdp.Eval_cpu.eval pool.(op_dest op) (op_expr pool op)) prog;
  pool

let check_program ?(name = "program") ?(seed = 91L) prog =
  let ef, pf = run_jit ~fuse:true seed prog in
  let eu, pu = run_jit ~fuse:false seed prog in
  let pc = run_cpu seed prog in
  Array.iteri
    (fun i f ->
      fields_bit_equal (Printf.sprintf "%s: pool.%d fused = unfused" name i) f pu.(i);
      fields_bit_equal ~canon_zero:true (Printf.sprintf "%s: pool.%d fused = cpu" name i) f
        pc.(i))
    pf;
  (ef, eu)

(* ------------------------------------------------------------------ *)
(* Deterministic hazard regressions *)

let launches eng = (Gpusim.Device.stats (Engine.device eng)).Gpusim.Device.launches

let test_zero_times_negative () =
  (* p2 = p0 - p0 is exactly zero; -0.5 * (+0) is -0 on the VM but +0
     through the CPU's fma-accumulated multiply.  The fused and unfused
     engines must still agree bit-for-bit, signed zeros included. *)
  ignore
    (check_program ~name:"signed zero" [ Sub (2, 0, 0); Scale (3, -0.5, 2); Shift (1, 3, 3, 1) ])

let test_chain_fuses () =
  (* Producer -> consumer -> consumer at the same site: one fused launch,
     loads of the intermediates replaced by register moves.  The engines
     are shared, so all stats are deltas. *)
  let s0 = Engine.fusion_stats fused_eng in
  let lf0 = launches fused_eng and lu0 = launches unfused_eng in
  let prog = [ Scale (1, 2.0, 0); Axpy (2, -0.5, 1, 0); Sub (3, 2, 1) ] in
  let ef, eu = check_program ~name:"chain" prog in
  let sf = Engine.fusion_stats ef in
  Alcotest.(check bool) "a group fused" true (sf.Engine.fused_groups > s0.Engine.fused_groups);
  Alcotest.(check bool) "launches saved" true (sf.Engine.launches_saved > s0.Engine.launches_saved);
  Alcotest.(check bool) "loads eliminated" true
    (sf.Engine.eliminated_load_bytes > s0.Engine.eliminated_load_bytes);
  let lf = launches ef - lf0 and lu = launches eu - lu0 in
  Alcotest.(check bool) "fewer launches than eval-at-a-time" true (lf < lu)

let test_dead_intermediate_store_dropped () =
  (* pool.1 is overwritten later in the same flush and its only reader is
     fused: its first store is dead and must be dropped — without
     changing any result. *)
  let s0 = Engine.fusion_stats fused_eng in
  let prog = [ Scale (1, 2.0, 0); Axpy (2, 1.0, 1, 0); Scale (1, 3.0, 0) ] in
  let ef, _ = check_program ~name:"dead store" prog in
  let sf = Engine.fusion_stats ef in
  Alcotest.(check bool) "stores eliminated" true
    (sf.Engine.eliminated_store_bytes > s0.Engine.eliminated_store_bytes)

let test_waw_order () =
  (* Two writes to the same field in one flush: the later one wins. *)
  ignore (check_program ~name:"waw" [ Scale (1, 2.0, 0); Scale (1, 3.0, 0) ])

let test_war_shifted () =
  (* pool.2 reads a *shifted* pool.1, then pool.1 is overwritten.  The
     shifted read crosses thread lanes, so the overwrite must not be
     hoisted into the same kernel: pool.2 sees the old pool.1. *)
  ignore (check_program ~name:"war-shift" [ Shift (2, 1, 0, 1); Scale (1, 5.0, 0) ])

let test_raw_shifted () =
  (* pool.1 is produced, then read through a shift.  Cross-lane RAW: the
     consumer must observe the completed producer, i.e. a group break. *)
  ignore (check_program ~name:"raw-shift" [ Scale (1, 2.0, 0); Shift (2, 1, 0, -1) ])

let test_in_place_update () =
  (* Aliased dest (x = x + y) inside a fused window. *)
  ignore
    (check_program ~name:"in-place" [ Axpy (1, 1.0, 1, 0); Axpy (1, 2.0, 1, 0); Sub (2, 1, 0) ])

let test_in_place_shift_store_kept () =
  (* p0 = shift(p0) reads its own destination across lanes: later sites
     observe earlier in-place stores at the wrap-around.  Its store must
     survive dead-store analysis even when the only downstream reader is
     register-substituted in-group and p0 is rewritten later in the same
     flush (distilled from a QCheck counterexample). *)
  ignore
    (check_program ~name:"in-place shift"
       [ Axpy (3, 2.0, 3, 1); Shift (0, 0, 0, -1); Axpy (1, 3.0, 3, 0); Axpy (0, -1.0, 2, 1) ])

let test_f32_chain () =
  (* F32 producers keep their stores (registers hold unrounded doubles);
     the fused kernel must still be bit-exact against both references. *)
  let pool_f32 seed =
    let rng = Prng.create ~seed in
    Array.init 3 (fun i ->
        let f = Field.create (Shape.lattice_fermion Shape.F32) geom in
        Field.fill_gaussian ~site_key:(fun site -> site + (i * 1_000_003)) f rng;
        f)
  in
  let prog pool eval =
    eval pool.(1) (Expr.mul (Expr.const_real 1.5) (Expr.field pool.(0)));
    eval pool.(2) (Expr.add (Expr.field pool.(1)) (Expr.field pool.(0)))
  in
  let ef = fused_eng and eu = unfused_eng in
  let pf = pool_f32 7L and pu = pool_f32 7L and pc = pool_f32 7L in
  prog pf (Engine.eval ?subset:None ?stream:None ef);
  Engine.flush ef;
  prog pu (Engine.eval ?subset:None ?stream:None eu);
  prog pc (fun d e -> Qdp.Eval_cpu.eval d e);
  Array.iteri (fun i f -> fields_bit_equal (Printf.sprintf "f32 pool.%d vs unfused" i) f pu.(i)) pf;
  Array.iteri
    (fun i f -> fields_bit_equal ~canon_zero:true (Printf.sprintf "f32 pool.%d vs cpu" i) f pc.(i))
    pf

(* ------------------------------------------------------------------ *)
(* Reduction fusion: a trailing norm2/inner payload splices into the
   pending group; values stay bit-identical across every configuration
   because all of them run the same balanced radix-8 tree. *)

let beq a b = Int64.bits_of_float a = Int64.bits_of_float b
let ceq a b = bits ~canon_zero:true a = bits ~canon_zero:true b

let test_reduction_fuses () =
  let run eng =
    let l0 = launches eng in
    let pool = fresh_pool 17L 2 in
    Engine.eval eng pool.(1) (op_expr pool (Axpy (1, 2.0, 0, 1)));
    let n = Engine.norm2 eng (Expr.field pool.(1)) in
    (n, launches eng - l0)
  in
  let nr, lr = run fused_eng in
  let nn, ln = run fused_nored_eng in
  let nu, lu = run unfused_eng in
  Alcotest.(check bool) "norm2 bits: fused-reduction = fused" true (beq nr nn);
  Alcotest.(check bool) "norm2 bits: fused-reduction = unfused" true (beq nr nu);
  let pc = fresh_pool 17L 2 in
  Qdp.Eval_cpu.eval pc.(1) (op_expr pc (Axpy (1, 2.0, 0, 1)));
  let nc = Qdp.Eval_cpu.norm2 (Expr.field pc.(1)) in
  Alcotest.(check bool) "norm2 bits: engine = cpu" true (ceq nr nc);
  (* The spliced payload saves exactly the standalone payload launch. *)
  Alcotest.(check bool) "reduction fusion saves a launch" true (lr < ln);
  Alcotest.(check bool) "no extra launches vs eval-at-a-time" true (ln <= lu)

let test_subset_reduction () =
  (* An even-subset eval followed by an even-subset norm2: payload and
     eval share a (subset, geometry) run, so they fuse; the partials use
     compact work-item addressing, so the odd half never contaminates
     the sum. *)
  let run eng =
    let pool = fresh_pool 19L 2 in
    Engine.eval ~subset:Qdp.Subset.Even eng pool.(1) (op_expr pool (Scale (1, 2.0, 0)));
    Engine.norm2 ~subset:Qdp.Subset.Even eng (Expr.field pool.(1))
  in
  let nr = run fused_eng and nn = run fused_nored_eng and nu = run unfused_eng in
  Alcotest.(check bool) "even norm2 bits: engines agree" true (beq nr nn && beq nr nu);
  let pc = fresh_pool 19L 2 in
  Qdp.Eval_cpu.eval ~subset:Qdp.Subset.Even pc.(1) (op_expr pc (Scale (1, 2.0, 0)));
  let nc = Qdp.Eval_cpu.norm2 ~subset:Qdp.Subset.Even (Expr.field pc.(1)) in
  Alcotest.(check bool) "even norm2 bits: engine = cpu" true (ceq nr nc)

(* ------------------------------------------------------------------ *)
(* Cross-subset grouping: interleaved checkerboard evals fuse within
   their own (subset, geometry) runs and never across them. *)

let eo_prog eval (pool : Field.t array) =
  (* A cross-lane (shifted) RAW on p1: the odd eval reads even sites of
     p1 written one eval earlier, and p1's even half is then overwritten
     (WAR with the shifted read).  Runs are consecutive partitions, so
     the two even evals must not merge across the odd one. *)
  let module S = Qdp.Subset in
  eval ~subset:S.Even pool.(1) (Expr.mul (Expr.const_real 2.0) (Expr.field pool.(0)));
  eval ~subset:S.Odd pool.(2) (Expr.shift (Expr.field pool.(1)) ~dim:0 ~dir:1);
  eval ~subset:S.Even pool.(1) (Expr.mul (Expr.const_real 3.0) (Expr.field pool.(0)));
  eval ~subset:S.Odd pool.(0) (Expr.sub (Expr.field pool.(1)) (Expr.field pool.(2)));
  eval ~subset:S.Even pool.(2) (Expr.add (Expr.field pool.(1)) (Expr.field pool.(0)))

let test_eo_interleave_hazard () =
  let run_eng eng =
    let pool = fresh_pool 23L 3 in
    eo_prog (fun ~subset d e -> Engine.eval ~subset eng d e) pool;
    Engine.flush eng;
    pool
  in
  let pf = run_eng fused_eng and pu = run_eng unfused_eng in
  let pc = fresh_pool 23L 3 in
  eo_prog (fun ~subset d e -> Qdp.Eval_cpu.eval ~subset d e) pc;
  Array.iteri
    (fun i f ->
      fields_bit_equal (Printf.sprintf "eo-hazard: pool.%d fused = unfused" i) f pu.(i);
      fields_bit_equal ~canon_zero:true (Printf.sprintf "eo-hazard: pool.%d fused = cpu" i) f
        pc.(i))
    pf

let test_eo_runs_fuse () =
  (* Two even evals then two odd evals in one flush: each checkerboard
     run forms its own fused group. *)
  let module S = Qdp.Subset in
  let prog eval (pool : Field.t array) =
    eval ~subset:S.Even pool.(1) (Expr.mul (Expr.const_real 2.0) (Expr.field pool.(0)));
    eval ~subset:S.Even pool.(2) (Expr.sub (Expr.field pool.(1)) (Expr.field pool.(0)));
    eval ~subset:S.Odd pool.(1) (Expr.mul (Expr.const_real 3.0) (Expr.field pool.(0)));
    eval ~subset:S.Odd pool.(3) (Expr.add (Expr.field pool.(1)) (Expr.field pool.(0)))
  in
  let s0 = Engine.fusion_stats fused_eng in
  let pf = fresh_pool 29L 4 in
  prog (fun ~subset d e -> Engine.eval ~subset fused_eng d e) pf;
  Engine.flush fused_eng;
  let sf = Engine.fusion_stats fused_eng in
  Alcotest.(check int) "both checkerboard runs fused" 2
    (sf.Engine.fused_groups - s0.Engine.fused_groups);
  let pu = fresh_pool 29L 4 in
  prog (fun ~subset d e -> Engine.eval ~subset unfused_eng d e) pu;
  let pc = fresh_pool 29L 4 in
  prog (fun ~subset d e -> Qdp.Eval_cpu.eval ~subset d e) pc;
  Array.iteri
    (fun i f ->
      fields_bit_equal (Printf.sprintf "eo-runs: pool.%d fused = unfused" i) f pu.(i);
      fields_bit_equal ~canon_zero:true (Printf.sprintf "eo-runs: pool.%d fused = cpu" i) f pc.(i))
    pf

(* ------------------------------------------------------------------ *)
(* QCheck: random eval chains *)

let gen_op =
  QCheck.Gen.(
    let idx = int_range 0 3 in
    let coeff = oneofl [ 2.0; -0.5; 1.25; 3.0; -1.0 ] in
    oneof
      [
        map3 (fun d c s -> Scale (d, c, s)) idx coeff idx;
        (fun st -> Axpy (idx st, coeff st, idx st, idx st));
        map3 (fun d a b -> Sub (d, a, b)) idx idx idx;
        (fun st ->
          Shift (idx st, idx st, int_range 0 3 st, if bool st then 1 else -1));
      ])

let show_op = function
  | Scale (d, c, s) -> Printf.sprintf "p%d = %g * p%d" d c s
  | Axpy (d, c, a, b) -> Printf.sprintf "p%d = %g * p%d + p%d" d c a b
  | Sub (d, a, b) -> Printf.sprintf "p%d = p%d - p%d" d a b
  | Shift (d, s, dim, dir) -> Printf.sprintf "p%d = shift(p%d, dim %d, dir %+d)" d s dim dir

let arb_prog =
  QCheck.make
    ~print:(fun p -> String.concat "; " (List.map show_op p))
    QCheck.Gen.(list_size (int_range 2 8) gen_op)

let qcheck_random_chains =
  QCheck.Test.make ~count:30 ~name:"random eval chains: fused = unfused = cpu (bit)" arb_prog
    (fun prog ->
      let ef, pf = run_jit ~fuse:true 5L prog in
      let _, pu = run_jit ~fuse:false 5L prog in
      let pc = run_cpu 5L prog in
      ignore (Engine.fusion_stats ef);
      let equal ~canon_zero a b =
        let ok = ref true in
        for site = 0 to Field.volume a - 1 do
          let sa = Field.get_site a ~site and sb = Field.get_site b ~site in
          Array.iteri (fun i v -> if bits ~canon_zero v <> bits ~canon_zero sb.(i) then ok := false) sa
        done;
        !ok
      in
      Array.for_all2 (equal ~canon_zero:false) pf pu
      && Array.for_all2 (equal ~canon_zero:true) pf pc)

let qcheck_reduction_chains =
  (* A random chain *ending in a reduction*: the norm2/inner payload is
     eligible for splicing into whatever group the chain left pending.
     Values must agree bitwise across fused-reduction / fused / unfused
     engines, and (modulo signed zeros in the per-site values) with the
     CPU reference's shared radix-8 tree. *)
  QCheck.Test.make ~count:25 ~name:"random chains ending in norm2/inner: all configs bit-equal"
    arb_prog (fun prog ->
      let reduce_exprs pool =
        ( Expr.sub (Expr.field pool.(0)) (Expr.field pool.(1)),
          Expr.field pool.(2),
          Expr.field pool.(3) )
      in
      let run eng =
        let pool = fresh_pool 11L 4 in
        List.iter (fun op -> Engine.eval eng pool.(op_dest op) (op_expr pool op)) prog;
        let en, ea, eb = reduce_exprs pool in
        let n = Engine.norm2 eng en in
        let re, im = Engine.inner eng ea eb in
        (n, re, im)
      in
      let nr, rr, ir = run fused_eng in
      let nn, rn, im_n = run fused_nored_eng in
      let nu, ru, iu = run unfused_eng in
      let pc = fresh_pool 11L 4 in
      List.iter (fun op -> Qdp.Eval_cpu.eval pc.(op_dest op) (op_expr pc op)) prog;
      let cn, ca, cb = reduce_exprs pc in
      let nc = Qdp.Eval_cpu.norm2 cn in
      let rc, ic = Qdp.Eval_cpu.inner ca cb in
      beq nr nn && beq nr nu && beq rr rn && beq rr ru && beq ir im_n && beq ir iu && ceq nr nc
      && ceq rr rc && ceq ir ic)

(* ------------------------------------------------------------------ *)
(* Solvers: fusion must not change a single iteration *)

let solver_geom = Geometry.create [| 4; 4; 4; 2 |]
let shape = Shape.lattice_fermion Shape.F64
let kappa = 0.115

let solver_setup fuse =
  let eng = if fuse then fused_eng else unfused_eng in
  let ops = Solvers.Ops.jit eng shape solver_geom in
  let u = Lqcd.Gauge.create_links solver_geom in
  Lqcd.Gauge.random_gauge ~epsilon:0.3 u (Prng.create ~seed:21L);
  let b = Field.create shape solver_geom in
  Field.fill_gaussian b (Prng.create ~seed:22L);
  let x = Field.create shape solver_geom in
  (eng, ops, u, b, x)

let test_cg_identical () =
  let s0 = Engine.fusion_stats fused_eng in
  let solve fuse =
    let eng, ops, u, b, x = solver_setup fuse in
    let nop = Solvers.Ops.normal_op ops ~apply_m:(Lqcd.Wilson.wilson_expr ~kappa u) in
    let r = Solvers.Cg.solve ops nop ~b ~x ~tol:1e-8 () in
    (eng, r, x)
  in
  let ef, rf, xf = solve true and _, ru, xu = solve false in
  Alcotest.(check bool) "converged" true rf.Solvers.Cg.converged;
  Alcotest.(check int) "iterations" ru.Solvers.Cg.iterations rf.Solvers.Cg.iterations;
  Alcotest.(check bool) "residual bits" true
    (Int64.bits_of_float rf.Solvers.Cg.residual = Int64.bits_of_float ru.Solvers.Cg.residual);
  fields_bit_equal "solution" xf xu;
  let sf = Engine.fusion_stats ef in
  Alcotest.(check bool) "cg fused groups" true (sf.Engine.fused_groups > s0.Engine.fused_groups);
  Alcotest.(check bool) "cg launches saved" true
    (sf.Engine.launches_saved > s0.Engine.launches_saved)

let test_bicgstab_identical () =
  let solve fuse =
    let eng, ops, u, b, x = solver_setup fuse in
    let mop =
      {
        Solvers.Ops.apply = (fun dest src -> Engine.eval eng dest (Lqcd.Wilson.wilson_expr ~kappa u src));
        tag = "M";
      }
    in
    let r = Solvers.Bicgstab.solve ops mop ~b ~x ~tol:1e-8 () in
    (r, x)
  in
  let rf, xf = solve true and ru, xu = solve false in
  Alcotest.(check bool) "converged" true rf.Solvers.Bicgstab.converged;
  Alcotest.(check int) "iterations" ru.Solvers.Bicgstab.iterations rf.Solvers.Bicgstab.iterations;
  fields_bit_equal "solution" xf xu

let test_eo_wilson_identical () =
  let solve fuse =
    let eng, ops, u, b, x = solver_setup fuse in
    ignore eng;
    let r = Solvers.Eo_wilson.solve ops ~kappa u ~b ~x ~tol:1e-8 () in
    (r, x)
  in
  let rf, xf = solve true and ru, xu = solve false in
  Alcotest.(check bool) "converged" true rf.Solvers.Eo_wilson.converged;
  Alcotest.(check int) "iterations" ru.Solvers.Eo_wilson.iterations rf.Solvers.Eo_wilson.iterations;
  fields_bit_equal "solution" xf xu

let () =
  Alcotest.run "fusion"
    [
      ( "hazards",
        [
          Alcotest.test_case "signed zero" `Quick test_zero_times_negative;
          Alcotest.test_case "chain fuses" `Quick test_chain_fuses;
          Alcotest.test_case "dead store dropped" `Quick test_dead_intermediate_store_dropped;
          Alcotest.test_case "waw order" `Quick test_waw_order;
          Alcotest.test_case "war shifted" `Quick test_war_shifted;
          Alcotest.test_case "raw shifted" `Quick test_raw_shifted;
          Alcotest.test_case "in-place update" `Quick test_in_place_update;
          Alcotest.test_case "in-place shift" `Quick test_in_place_shift_store_kept;
          Alcotest.test_case "f32 chain" `Quick test_f32_chain;
        ] );
      ( "reductions",
        [
          Alcotest.test_case "reduction fuses" `Quick test_reduction_fuses;
          Alcotest.test_case "subset reduction" `Quick test_subset_reduction;
        ] );
      ( "even-odd",
        [
          Alcotest.test_case "interleave hazard" `Quick test_eo_interleave_hazard;
          Alcotest.test_case "checkerboard runs fuse" `Quick test_eo_runs_fuse;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_random_chains;
          QCheck_alcotest.to_alcotest qcheck_reduction_chains;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "cg identical" `Quick test_cg_identical;
          Alcotest.test_case "bicgstab identical" `Quick test_bicgstab_identical;
          Alcotest.test_case "even-odd identical" `Quick test_eo_wilson_identical;
        ] );
    ]
