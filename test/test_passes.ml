(* The optimizing middle-end: per-pass unit tests on hand-built kernels,
   the dataflow validator, the acceptance properties on the real Table II
   kernels, and a three-way qcheck property — the full pipeline
   (codegen -> passes -> print -> parse -> regalloc -> VM) must stay
   bit-exact against [~optimize:false] and against the CPU evaluator. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Engine = Qdpjit.Engine
module D = Ptx.Dataflow
module P = Ptx.Passes
open Ptx.Types

let r t id = { rtype = t; id }

let kern ?(params = [ { pname = "dest"; ptype = U64 } ]) body =
  { kname = "test_kernel"; params; body }

let len k = List.length k.body

let index_of pred k =
  let rec go i = function
    | [] -> Alcotest.fail "expected instruction not found"
    | x :: tl -> if pred x then i else go (i + 1) tl
  in
  go 0 k.body

(* ------------------------------------------------------------------ *)
(* Constant folding + copy propagation *)

let test_const_fold () =
  let a = r S32 0 and b = r S32 1 and c = r S32 2 and d = r S32 3 in
  let addr = r U64 0 in
  let k =
    kern
      [
        Ld_param { dst = addr; param_index = 0 };
        Mov { dst = a; src = Imm_int 4 };
        Mov { dst = b; src = Imm_int 6 };
        Add { dtype = S32; dst = c; a = Reg a; b = Reg b };
        Mov { dst = d; src = Reg c };
        St_global { dtype = S32; addr; offset = 0; src = Reg d };
        Ret;
      ]
  in
  let k' = P.constant_fold k in
  (* a + b folds to 10, and the store reads the constant through the copy. *)
  ignore (index_of (function Mov { dst; src = Imm_int 10 } -> dst = c | _ -> false) k');
  ignore
    (index_of (function St_global { src = Imm_int 10; _ } -> true | _ -> false) k');
  (* DCE then strips the now-unread defs. *)
  let k'' = P.dce k' in
  Alcotest.(check int) "only store, param load and ret survive" 3 (len k'')

let test_strength_reduce () =
  let a = r S64 0 and b = r S64 1 and c = r S64 2 in
  let k =
    kern
      [
        Mul { dtype = S64; dst = b; a = Reg a; b = Imm_int 8 };
        Mul { dtype = S64; dst = c; a = Reg a; b = Imm_int 3 };
        Ret;
      ]
  in
  let k' = P.strength_reduce k in
  ignore
    (index_of (function Shl { dst; amount = 3; _ } -> dst = b | _ -> false) k');
  (* x3 is not a power of two: untouched. *)
  ignore (index_of (function Mul { dst; _ } -> dst = c | _ -> false) k')

let test_shl_print_parse_roundtrip () =
  let addr = r U64 0 and v = r S64 0 and sh = r S64 1 in
  let k =
    kern
      [
        Ld_param { dst = addr; param_index = 0 };
        Ld_global { dtype = S64; dst = v; addr; offset = 0 };
        Shl { dtype = S64; dst = sh; a = Reg v; amount = 3 };
        St_global { dtype = S64; addr; offset = 8; src = Reg sh };
        Ret;
      ]
  in
  let parsed = Ptx.Parse.kernel (Ptx.Print.kernel k) in
  Ptx.Validate.kernel parsed;
  ignore
    (index_of
       (function
         | Shl { dtype = S64; dst; a = Reg src; amount = 3 } -> dst = sh && src = v
         | _ -> false)
       parsed)

(* ------------------------------------------------------------------ *)
(* CSE *)

let test_cse_dedupes_loads () =
  let addr = r U64 0 in
  let x1 = r F64 0 and x2 = r F64 1 and s = r F64 2 in
  let k =
    kern
      [
        Ld_param { dst = addr; param_index = 0 };
        Ld_global { dtype = F64; dst = x1; addr; offset = 0 };
        Ld_global { dtype = F64; dst = x2; addr; offset = 0 };
        Add { dtype = F64; dst = s; a = Reg x1; b = Reg x2 };
        St_global { dtype = F64; addr; offset = 8; src = Reg s };
        Ret;
      ]
  in
  let k' = P.cse k in
  Alcotest.(check int) "duplicate load dropped" (len k - 1) (len k');
  ignore
    (index_of
       (function Add { a = Reg a; b = Reg b; _ } -> a = x1 && b = x1 | _ -> false)
       k')

let test_cse_store_invalidates_loads () =
  let addr = r U64 0 in
  let x1 = r F64 0 and x2 = r F64 1 and s = r F64 2 in
  let k =
    kern
      [
        Ld_param { dst = addr; param_index = 0 };
        Ld_global { dtype = F64; dst = x1; addr; offset = 0 };
        St_global { dtype = F64; addr; offset = 0; src = Imm_float 3.0 };
        (* Reloads the stored-over location: must NOT reuse x1. *)
        Ld_global { dtype = F64; dst = x2; addr; offset = 0 };
        Add { dtype = F64; dst = s; a = Reg x1; b = Reg x2 };
        St_global { dtype = F64; addr; offset = 8; src = Reg s };
        Ret;
      ]
  in
  let k' = P.cse k in
  Alcotest.(check int) "nothing deduped across the store" (len k) (len k')

let test_cse_requires_single_def () =
  let b = r S32 0 and c = r S32 1 and d = r S32 2 in
  let addr = r U64 0 in
  let k =
    kern
      [
        Ld_param { dst = addr; param_index = 0 };
        Mov { dst = b; src = Imm_int 1 };
        Add { dtype = S32; dst = c; a = Reg b; b = Imm_int 5 };
        Mov { dst = b; src = Imm_int 2 };
        (* Textually identical to the first add, but b changed in between:
           the multi-def operand blocks value numbering. *)
        Add { dtype = S32; dst = d; a = Reg b; b = Imm_int 5 };
        St_global { dtype = S32; addr; offset = 0; src = Reg c };
        St_global { dtype = S32; addr; offset = 4; src = Reg d };
        Ret;
      ]
  in
  let k' = P.cse k in
  Alcotest.(check int) "multi-def operand not deduped" (len k) (len k')

let test_cse_leaves_float_arith_alone () =
  (* Policy: float arithmetic is rematerialized rather than deduped, so
     repeated negations do not stretch a register's live range across the
     whole site computation. *)
  let addr = r U64 0 in
  let x = r F64 0 and n1 = r F64 1 and n2 = r F64 2 in
  let k =
    kern
      [
        Ld_param { dst = addr; param_index = 0 };
        Ld_global { dtype = F64; dst = x; addr; offset = 0 };
        Neg { dtype = F64; dst = n1; a = Reg x };
        Neg { dtype = F64; dst = n2; a = Reg x };
        St_global { dtype = F64; addr; offset = 8; src = Reg n1 };
        St_global { dtype = F64; addr; offset = 16; src = Reg n2 };
        Ret;
      ]
  in
  let k' = P.cse k in
  Alcotest.(check int) "both negations kept" (len k) (len k')

(* ------------------------------------------------------------------ *)
(* fma contraction *)

let test_fma_contract () =
  let addr = r U64 0 in
  let x = r F64 0 and y = r F64 1 and w = r F64 2 and t = r F64 3 and z = r F64 4 in
  let k =
    kern
      [
        Ld_param { dst = addr; param_index = 0 };
        Ld_global { dtype = F64; dst = x; addr; offset = 0 };
        Ld_global { dtype = F64; dst = y; addr; offset = 8 };
        Ld_global { dtype = F64; dst = w; addr; offset = 16 };
        Mul { dtype = F64; dst = t; a = Reg x; b = Reg y };
        Add { dtype = F64; dst = z; a = Reg t; b = Reg w };
        St_global { dtype = F64; addr; offset = 24; src = Reg z };
        Ret;
      ]
  in
  let k' = P.dce (P.fma_contract k) in
  ignore
    (index_of
       (function
         | Fma { dst; a = Reg a; b = Reg b; c = Reg c; _ } ->
             dst = z && a = x && b = y && c = w
         | _ -> false)
       k');
  Alcotest.(check int) "mul deleted after contraction" (len k - 1) (len k')

let test_fma_not_contracted_when_reused () =
  let addr = r U64 0 in
  let x = r F64 0 and y = r F64 1 and t = r F64 2 and z1 = r F64 3 and z2 = r F64 4 in
  let k =
    kern
      [
        Ld_param { dst = addr; param_index = 0 };
        Ld_global { dtype = F64; dst = x; addr; offset = 0 };
        Ld_global { dtype = F64; dst = y; addr; offset = 8 };
        Mul { dtype = F64; dst = t; a = Reg x; b = Reg y };
        Add { dtype = F64; dst = z1; a = Reg t; b = Imm_float 1.0 };
        Add { dtype = F64; dst = z2; a = Reg t; b = Imm_float 2.0 };
        St_global { dtype = F64; addr; offset = 16; src = Reg z1 };
        St_global { dtype = F64; addr; offset = 24; src = Reg z2 };
        Ret;
      ]
  in
  let k' = P.dce (P.fma_contract k) in
  Alcotest.(check int) "multi-use product stays a mul" (len k) (len k');
  ignore (index_of (function Mul { dst; _ } -> dst = t | _ -> false) k')

(* ------------------------------------------------------------------ *)
(* DCE *)

let test_dce () =
  let addr = r U64 0 in
  let live = r F64 0 and dead1 = r F64 1 and dead2 = r F64 2 in
  let k =
    kern
      [
        Ld_param { dst = addr; param_index = 0 };
        Ld_global { dtype = F64; dst = live; addr; offset = 0 };
        Ld_global { dtype = F64; dst = dead1; addr; offset = 8 };
        Add { dtype = F64; dst = dead2; a = Reg dead1; b = Imm_float 1.0 };
        St_global { dtype = F64; addr; offset = 16; src = Reg live };
        Ret;
      ]
  in
  let k' = P.dce k in
  Alcotest.(check int) "dead chain removed" (len k - 2) (len k')

(* ------------------------------------------------------------------ *)
(* Code sinking *)

let test_sink_moves_load_to_first_use () =
  let addr = r U64 0 in
  let x = r F64 0 and y = r F64 1 and z = r F64 2 and s1 = r F64 3 and s2 = r F64 4 in
  let k =
    kern
      [
        Ld_param { dst = addr; param_index = 0 };
        Ld_global { dtype = F64; dst = x; addr; offset = 0 };
        Ld_global { dtype = F64; dst = y; addr; offset = 8 };
        Ld_global { dtype = F64; dst = z; addr; offset = 16 };
        Add { dtype = F64; dst = s1; a = Reg y; b = Reg z };
        Add { dtype = F64; dst = s2; a = Reg s1; b = Reg x };
        St_global { dtype = F64; addr; offset = 24; src = Reg s2 };
        Ret;
      ]
  in
  let k' = P.sink k in
  let load_x = index_of (function Ld_global { dst; _ } -> dst = x | _ -> false) k' in
  let use_x = index_of (function Add { dst; _ } -> dst = s2 | _ -> false) k' in
  Alcotest.(check int) "x loaded just before its use" (use_x - 1) load_x;
  Alcotest.(check bool) "pressure not increased" true
    (D.register_demand k' <= D.register_demand k)

let test_sink_load_never_crosses_store () =
  let addr = r U64 0 in
  let x = r F64 0 and s = r F64 1 in
  let k =
    kern
      [
        Ld_param { dst = addr; param_index = 0 };
        Ld_global { dtype = F64; dst = x; addr; offset = 0 };
        St_global { dtype = F64; addr; offset = 0; src = Imm_float 9.0 };
        Add { dtype = F64; dst = s; a = Reg x; b = Reg x };
        St_global { dtype = F64; addr; offset = 8; src = Reg s };
        Ret;
      ]
  in
  let k' = P.sink k in
  let load = index_of (function Ld_global _ -> true | _ -> false) k' in
  let store = index_of (function St_global { offset = 0; _ } -> true | _ -> false) k' in
  Alcotest.(check bool) "load stays above the aliasing store" true (load < store)

let test_sink_is_pressure_aware () =
  (* Moving this add would drag two dying f64 inputs (4 units) down to
     save one f64 def (2 units): the pass must leave it alone. *)
  let addr = r U64 0 in
  let x = r F64 0 and y = r F64 1 and w = r F64 2 and s = r F64 3 and s2 = r F64 4 in
  let k =
    kern
      [
        Ld_param { dst = addr; param_index = 0 };
        Ld_global { dtype = F64; dst = x; addr; offset = 0 };
        Ld_global { dtype = F64; dst = y; addr; offset = 8 };
        Add { dtype = F64; dst = s; a = Reg x; b = Reg y };
        Ld_global { dtype = F64; dst = w; addr; offset = 16 };
        Add { dtype = F64; dst = s2; a = Reg w; b = Reg s };
        St_global { dtype = F64; addr; offset = 24; src = Reg s2 };
        Ret;
      ]
  in
  let k' = P.sink k in
  Alcotest.(check int) "add with dying inputs not moved" 3
    (index_of (function Add { dst; _ } -> dst = s | _ -> false) k')

(* ------------------------------------------------------------------ *)
(* Dataflow validation *)

let diamond ~def_before_branch =
  let n = r S32 0 and addr = r U64 0 and p = r Pred 0 in
  let x = r F64 0 and y = r F64 1 in
  kern
    ~params:[ { pname = "n"; ptype = S32 }; { pname = "out"; ptype = U64 } ]
    ([
       Ld_param { dst = n; param_index = 0 };
       Ld_param { dst = addr; param_index = 1 };
     ]
    @ (if def_before_branch then [ Mov { dst = x; src = Imm_float 2.0 } ] else [])
    @ [
        Setp { cmp = Ge; dtype = S32; dst = p; a = Reg n; b = Imm_int 0 };
        Bra { label = "L"; pred = Some p };
        Mov { dst = x; src = Imm_float 3.0 };
        Label "L";
        Add { dtype = F64; dst = y; a = Reg x; b = Imm_float 1.0 };
        St_global { dtype = F64; addr; offset = 0; src = Reg y };
        Ret;
      ])

let test_validate_dataflow_catches_branch_undef () =
  let k = diamond ~def_before_branch:false in
  (* The textual written-before-read rule is satisfied... *)
  Ptx.Validate.kernel k;
  (* ...but on the taken branch x is never assigned. *)
  match Ptx.Validate.dataflow k with
  | exception Ptx.Validate.Invalid _ -> ()
  | () -> Alcotest.fail "use of a maybe-unassigned register accepted"

let test_validate_dataflow_accepts_dominating_def () =
  let k = diamond ~def_before_branch:true in
  Ptx.Validate.kernel k;
  Ptx.Validate.dataflow k

(* ------------------------------------------------------------------ *)
(* Acceptance on the real Table II kernels *)

let geom = Geometry.create [| 4; 4; 4; 2 |]
let rng = Prng.create ~seed:4242L

let fresh shape =
  let f = Field.create shape geom in
  Field.fill_gaussian f rng;
  f

let cm = Shape.lattice_color_matrix Shape.F64
let fm = Shape.lattice_fermion Shape.F64
let sm = Shape.lattice_spin_matrix Shape.F64
let u = fresh cm
let u2 = fresh cm
let u3 = fresh cm
let psi = fresh fm
let phi = fresh fm
let g1 = fresh sm
let g2 = fresh sm

let table2_cases () =
  let ad = fresh (Shape.clover_diag Shape.F64) and at = fresh (Shape.clover_tri Shape.F64) in
  let f = Expr.field in
  [
    ("lcm", Expr.mul (f u2) (f u3), cm);
    ("upsi", Expr.mul (f u) (f psi), fm);
    ("spmat", Expr.mul (f g1) (f g2), sm);
    ("matvec", Expr.add (Expr.mul (f u) (f psi)) (Expr.mul (f u) (f phi)), fm);
    ("clover", Expr.clover ~diag:(f ad) ~tri:(f at) (f psi), fm);
  ]

let test_pipeline_improves_table2_kernels () =
  List.iter
    (fun (name, expr, dest_shape) ->
      let b =
        Qdpjit.Codegen.build ~kname:("acc_" ^ name) ~dest_shape ~expr
          ~nsites:(Geometry.volume geom) ~use_sitelist:false ()
      in
      let raw = b.Qdpjit.Codegen.raw and opt = b.Qdpjit.Codegen.kernel in
      let ri = List.length raw.body and oi = List.length opt.body in
      let rr = D.register_demand raw and orr = D.register_demand opt in
      let strict = List.mem name [ "spmat"; "matvec"; "clover" ] in
      if oi > ri || (strict && oi >= ri) then
        Alcotest.failf "%s: instructions raw %d -> opt %d" name ri oi;
      if orr > rr || (strict && orr >= rr) then
        Alcotest.failf "%s: register demand raw %d -> opt %d" name rr orr;
      let rb = (Ptx.Analysis.kernel raw).Ptx.Analysis.load_bytes in
      let ob = (Ptx.Analysis.kernel opt).Ptx.Analysis.load_bytes in
      if ob > rb then Alcotest.failf "%s: load bytes raw %d -> opt %d" name rb ob;
      (* matvec reads U once per AST occurrence in the raw stream; the
         middle-end dedupes it (the global-load-bytes criterion). *)
      if name = "matvec" && ob >= rb then
        Alcotest.failf "matvec: load bytes not reduced (raw %d, opt %d)" rb ob)
    (table2_cases ())

let test_optimize_false_escape_hatch () =
  let b =
    Qdpjit.Codegen.build ~optimize:false ~kname:"raw_path" ~dest_shape:fm
      ~expr:(Expr.mul (Expr.field u) (Expr.field psi))
      ~nsites:(Geometry.volume geom) ~use_sitelist:false ()
  in
  Alcotest.(check bool) "kernel is the raw stream" true
    (compare b.Qdpjit.Codegen.kernel b.Qdpjit.Codegen.raw = 0);
  Alcotest.(check int) "no passes applied" 0 (List.length b.Qdpjit.Codegen.passes)

let test_engine_records_jit_stats () =
  let eng = Engine.create () in
  let dest = Field.create fm geom in
  Engine.eval eng dest (Expr.mul (Expr.field u) (Expr.field psi));
  Engine.eval eng dest (Expr.mul (Expr.field u2) (Expr.field psi));
  (* Second eval hits the kernel cache: still exactly one scorecard. *)
  match Engine.jit_stats eng with
  | [ s ] ->
      Alcotest.(check bool) "optimization shrank the kernel" true
        (s.Engine.opt_instructions < s.Engine.raw_instructions);
      Alcotest.(check bool) "passes recorded" true (s.Engine.passes <> [])
  | l -> Alcotest.failf "expected one scorecard, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* QCheck: optimized JIT = raw JIT = CPU, bit-exact *)

let eng_opt = Engine.create ()
let eng_raw = Engine.create ~optimize:false ()

let rec gen_matrix_expr rng depth =
  if depth = 0 then
    match Prng.int_below rng 3 with
    | 0 -> Expr.field u
    | 1 -> Expr.field u2
    | _ -> Expr.adj (Expr.field u)
  else
    match Prng.int_below rng 7 with
    | 0 -> Expr.add (gen_matrix_expr rng (depth - 1)) (gen_matrix_expr rng (depth - 1))
    | 1 -> Expr.sub (gen_matrix_expr rng (depth - 1)) (gen_matrix_expr rng (depth - 1))
    | 2 -> Expr.mul (gen_matrix_expr rng (depth - 1)) (gen_matrix_expr rng (depth - 1))
    | 3 -> Expr.adj (gen_matrix_expr rng (depth - 1))
    | 4 ->
        Expr.shift (gen_matrix_expr rng (depth - 1)) ~dim:(Prng.int_below rng 4)
          ~dir:(if Prng.int_below rng 2 = 0 then 1 else -1)
    | 5 -> Expr.times_i (gen_matrix_expr rng (depth - 1))
    | _ ->
        Expr.mul
          (Expr.const_real (Prng.uniform rng ~lo:(-2.0) ~hi:2.0))
          (gen_matrix_expr rng (depth - 1))

let gen_expr rng =
  let m = gen_matrix_expr rng 3 in
  match Prng.int_below rng 4 with
  | 0 -> m
  | 1 -> Expr.mul m (Expr.field psi)
  | 2 -> Expr.real (Expr.trace_color m)
  | _ -> Expr.norm2_local (Expr.mul m (Expr.field psi))

let qcheck_pipeline_bit_exact =
  QCheck.Test.make ~name:"random expressions: optimized = raw = CPU (bit exact)" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create ~seed:(Int64.of_int seed) in
      let expr = gen_expr rng in
      let shape = Expr.shape expr in
      let cpu = Field.create shape geom in
      let opt = Field.create shape geom in
      let raw = Field.create shape geom in
      Qdp.Eval_cpu.eval cpu expr;
      Engine.eval eng_opt opt expr;
      Engine.eval eng_raw raw expr;
      Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field cpu) (Expr.field opt)) = 0.0
      && Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field raw) (Expr.field opt)) = 0.0)

let () =
  Alcotest.run "passes"
    [
      ( "const-fold",
        [
          Alcotest.test_case "fold + copy propagation" `Quick test_const_fold;
          Alcotest.test_case "strength reduction" `Quick test_strength_reduce;
          Alcotest.test_case "shl print/parse roundtrip" `Quick test_shl_print_parse_roundtrip;
        ] );
      ( "cse",
        [
          Alcotest.test_case "dedupes repeated loads" `Quick test_cse_dedupes_loads;
          Alcotest.test_case "store invalidates loads" `Quick test_cse_store_invalidates_loads;
          Alcotest.test_case "multi-def blocks dedup" `Quick test_cse_requires_single_def;
          Alcotest.test_case "float arith left alone" `Quick test_cse_leaves_float_arith_alone;
        ] );
      ( "fma",
        [
          Alcotest.test_case "mul+add contracts" `Quick test_fma_contract;
          Alcotest.test_case "reused mul stays" `Quick test_fma_not_contracted_when_reused;
        ] );
      ("dce", [ Alcotest.test_case "dead chains removed" `Quick test_dce ]);
      ( "sink",
        [
          Alcotest.test_case "load sinks to first use" `Quick test_sink_moves_load_to_first_use;
          Alcotest.test_case "load never crosses store" `Quick test_sink_load_never_crosses_store;
          Alcotest.test_case "pressure-aware" `Quick test_sink_is_pressure_aware;
        ] );
      ( "validate",
        [
          Alcotest.test_case "branch-path undef caught" `Quick
            test_validate_dataflow_catches_branch_undef;
          Alcotest.test_case "dominating def accepted" `Quick
            test_validate_dataflow_accepts_dominating_def;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "table II kernels improve" `Quick
            test_pipeline_improves_table2_kernels;
          Alcotest.test_case "optimize:false escape hatch" `Quick
            test_optimize_false_escape_hatch;
          Alcotest.test_case "engine jit stats" `Quick test_engine_records_jit_stats;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_pipeline_bit_exact ]);
    ]
