(* Binary16: the Half codec and the f16 storage path.  The codec is the
   single rounding point every backend shares — Eval_cpu rounds at
   [Field.raw_set], the VM rounds in the f16 store opcode — so CPU
   evaluation and the VM at any worker count must agree bit for bit on
   f16 fields, including NaN payloads, infinities and subnormals. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Engine = Qdpjit.Engine

(* ------------------------- codec properties ------------------------ *)

let test_roundtrip_exhaustive () =
  (* Every 16-bit pattern decodes to a double that encodes back to the
     same pattern: zeros, subnormals, normals, infinities and all NaN
     payloads.  This is the "payloads survive the convert" guarantee. *)
  for h = 0 to 0xffff do
    let h' = Half.bits_of_float (Half.float_of_bits h) in
    if h' <> h then Alcotest.failf "pattern %#x re-encoded as %#x" h h'
  done

let test_special_values () =
  Alcotest.(check int) "+inf" 0x7c00 (Half.bits_of_float infinity);
  Alcotest.(check int) "-inf" 0xfc00 (Half.bits_of_float neg_infinity);
  Alcotest.(check int) "+0" 0x0000 (Half.bits_of_float 0.0);
  Alcotest.(check int) "-0" 0x8000 (Half.bits_of_float (-0.0));
  Alcotest.(check int) "one" 0x3c00 (Half.bits_of_float 1.0);
  Alcotest.(check int) "max normal" 0x7bff (Half.bits_of_float 65504.0);
  Alcotest.(check int) "overflow threshold" 0x7c00 (Half.bits_of_float 65520.0);
  Alcotest.(check int) "just under the threshold" 0x7bff (Half.bits_of_float 65519.999);
  Alcotest.(check int) "min subnormal" 0x0001 (Half.bits_of_float (ldexp 1.0 (-24)));
  Alcotest.(check int) "tie below min subnormal is even" 0x0000 (Half.bits_of_float (ldexp 1.0 (-25)));
  Alcotest.(check int) "underflow" 0x0000 (Half.bits_of_float (ldexp 1.0 (-26)));
  Alcotest.(check bool) "nan stays nan" true (Float.is_nan (Half.round nan));
  Alcotest.(check bool) "0.5 exact" true (Half.is_exact 0.5);
  Alcotest.(check bool) "0.1 inexact" true (not (Half.is_exact 0.1))

(* f64 -> f16 -> f64 is the identity on every representable double;
   subsumed by the exhaustive sweep above but stated as the property the
   solvers lean on. *)
let qcheck_exact_representable =
  QCheck.Test.make ~name:"f64 -> f16 -> f64 is the identity on representables" ~count:300
    QCheck.(int_bound 0xffff)
    (fun h ->
      let x = Half.float_of_bits h in
      QCheck.assume (not (Float.is_nan x));
      Half.is_exact x
      && Int64.bits_of_float (Half.round x) = Int64.bits_of_float x)

(* Round-to-nearest-even, checked against the two bracketing
   representables: pick consecutive finite encodings, a point between
   them, and demand the encoder lands on the nearer one (either on an
   exact tie, which must then be the even encoding). *)
let qcheck_nearest_even =
  QCheck.Test.make ~name:"encode rounds to nearest, ties to even" ~count:500
    QCheck.(pair (int_bound 0x7bfe) (float_bound_inclusive 1.0))
    (fun (h, t) ->
      let lo = Half.float_of_bits h and hi = Half.float_of_bits (h + 1) in
      let x = lo +. (t *. (hi -. lo)) in
      let r = Half.bits_of_float x in
      let dlo = x -. lo and dhi = hi -. x in
      if dlo < dhi then r = h
      else if dhi < dlo then r = h + 1
      else (r = h || r = h + 1) && r land 1 = 0)

(* --------------------- f16 fields on the backends ------------------- *)

(* Same scheme as test_vm: random op chains over a field pool, run on
   the CPU evaluator and on engines with 1 / 2 / 4 VM workers, compared
   bit for bit.  The pool mixes f16 and f64 fields and the ops include
   both cross-precision directions, so the convert-on-load (exact) and
   convert-on-store (RNE) paths are exercised along with plain f16
   arithmetic.  The coefficient menu forces f16 subnormals (1e-6 times
   O(1) data) and overflow to infinity (1e6), whose NaN fallout from
   subtraction must also match. *)

let geom = Geometry.create [| 8; 8; 4; 4 |]
let fm16 = Shape.lattice_fermion Shape.F16
let fm64 = Shape.lattice_fermion Shape.F64

type op =
  | Scale of int * float * int  (* f16 = c * f16 *)
  | Axpy of int * float * int * int  (* f16 = c * f16 + f16 *)
  | Sub of int * int * int  (* f16 = f16 - f16 *)
  | Shift of int * int * int * int  (* f16 = shift f16 *)
  | Promote of int * int  (* f64 = f16 *)
  | Truncate of int * int  (* f16 = f64 *)

let n16 = 4
let n64 = 2

let op_dest_expr pool16 pool64 = function
  | Scale (d, c, s) -> (pool16.(d), Expr.mul (Expr.const_real c) (Expr.field pool16.(s)))
  | Axpy (d, c, a, b) ->
      ( pool16.(d),
        Expr.add (Expr.mul (Expr.const_real c) (Expr.field pool16.(a))) (Expr.field pool16.(b)) )
  | Sub (d, a, b) -> (pool16.(d), Expr.sub (Expr.field pool16.(a)) (Expr.field pool16.(b)))
  | Shift (d, s, dim, dir) -> (pool16.(d), Expr.shift (Expr.field pool16.(s)) ~dim ~dir)
  | Promote (d, s) -> (pool64.(d), Expr.field pool16.(s))
  | Truncate (d, s) -> (pool16.(d), Expr.field pool64.(s))

let fresh_pools seed =
  let rng = Prng.create ~seed in
  let p16 =
    Array.init n16 (fun i ->
        let f = Field.create fm16 geom in
        Field.fill_gaussian ~site_key:(fun site -> site + (i * 1_000_003)) f rng;
        f)
  in
  let p64 =
    Array.init n64 (fun i ->
        let f = Field.create fm64 geom in
        Field.fill_gaussian ~site_key:(fun site -> site + ((n16 + i) * 1_000_003)) f rng;
        f)
  in
  (p16, p64)

let run_jit eng seed prog =
  let p16, p64 = fresh_pools seed in
  List.iter
    (fun op ->
      let dest, expr = op_dest_expr p16 p64 op in
      Engine.eval eng dest expr)
    prog;
  Engine.flush eng;
  (p16, p64)

let run_cpu seed prog =
  let p16, p64 = fresh_pools seed in
  List.iter
    (fun op ->
      let dest, expr = op_dest_expr p16 p64 op in
      Qdp.Eval_cpu.eval dest expr)
    prog;
  (p16, p64)

let gen_op =
  QCheck.Gen.(
    let i16 = int_range 0 (n16 - 1) and i64 = int_range 0 (n64 - 1) in
    let coeff = oneofl [ 2.0; -0.5; 1.25; 1e-6; 1e6; -1.0 ] in
    oneof
      [
        map3 (fun d c s -> Scale (d, c, s)) i16 coeff i16;
        (fun st -> Axpy (i16 st, coeff st, i16 st, i16 st));
        map3 (fun d a b -> Sub (d, a, b)) i16 i16 i16;
        (fun st -> Shift (i16 st, i16 st, int_range 0 3 st, if bool st then 1 else -1));
        map2 (fun d s -> Promote (d, s)) i64 i16;
        map2 (fun d s -> Truncate (d, s)) i16 i64;
      ])

let show_op = function
  | Scale (d, c, s) -> Printf.sprintf "h%d = %g * h%d" d c s
  | Axpy (d, c, a, b) -> Printf.sprintf "h%d = %g * h%d + h%d" d c a b
  | Sub (d, a, b) -> Printf.sprintf "h%d = h%d - h%d" d a b
  | Shift (d, s, dim, dir) -> Printf.sprintf "h%d = shift(h%d, dim %d, dir %+d)" d s dim dir
  | Promote (d, s) -> Printf.sprintf "d%d = h%d" d s
  | Truncate (d, s) -> Printf.sprintf "h%d = d%d" d s

let arb_prog =
  QCheck.make
    ~print:(fun p -> String.concat "; " (List.map show_op p))
    QCheck.Gen.(list_size (int_range 2 8) gen_op)

let bits ~canon_zero v = if canon_zero && v = 0.0 then 0L else Int64.bits_of_float v

let fields_equal ~canon_zero a b =
  let ok = ref true in
  for site = 0 to Field.volume a - 1 do
    let sa = Field.get_site a ~site and sb = Field.get_site b ~site in
    Array.iteri (fun i v -> if bits ~canon_zero v <> bits ~canon_zero sb.(i) then ok := false) sa
  done;
  !ok

let pools_equal ~canon_zero (a16, a64) (b16, b64) =
  Array.for_all2 (fields_equal ~canon_zero) a16 b16
  && Array.for_all2 (fields_equal ~canon_zero) a64 b64

(* Shared engines, one per worker count; w=1 is the sequential sweep the
   others must match bit for bit.  The 1024-site lattice reaches the
   VM's small-launch threshold, so the multi-worker engines really do
   split launches across domains. *)
let engines =
  [ (1, Engine.create ~vm_domains:1 ()); (2, Engine.create ~vm_domains:2 ()); (4, Engine.create ~vm_domains:4 ()) ]

let qcheck_f16_worker_counts =
  QCheck.Test.make ~count:15 ~name:"f16 chains: 1 = 2 = 4 workers = cpu (bit)" arb_prog
    (fun prog ->
      let p1 = run_jit (List.assoc 1 engines) 7L prog in
      let p2 = run_jit (List.assoc 2 engines) 7L prog in
      let p4 = run_jit (List.assoc 4 engines) 7L prog in
      let pc = run_cpu 7L prog in
      pools_equal ~canon_zero:false p1 p2
      && pools_equal ~canon_zero:false p1 p4
      && pools_equal ~canon_zero:true p1 pc)

let qcheck_f16_reductions =
  QCheck.Test.make ~count:10 ~name:"f16 chains + norm2/inner: all worker counts bit-equal"
    arb_prog (fun prog ->
      (* Reductions read the f16 payloads through the exact decode; the
         accumulation itself is promoted to f64 by the engine. *)
      let run eng =
        let p16, _ = run_jit eng 13L prog in
        let n = Engine.norm2 eng (Expr.sub (Expr.field p16.(0)) (Expr.field p16.(1))) in
        let re, im = Engine.inner eng (Expr.field p16.(2)) (Expr.field p16.(3)) in
        (n, re, im)
      in
      let n1, r1, i1 = run (List.assoc 1 engines) in
      let n2, r2, i2 = run (List.assoc 2 engines) in
      let n4, r4, i4 = run (List.assoc 4 engines) in
      let pc16, _ = run_cpu 13L prog in
      let nc = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field pc16.(0)) (Expr.field pc16.(1))) in
      let rc, ic = Qdp.Eval_cpu.inner (Expr.field pc16.(2)) (Expr.field pc16.(3)) in
      let beq a b = Int64.bits_of_float a = Int64.bits_of_float b in
      let ceq a b = bits ~canon_zero:true a = bits ~canon_zero:true b in
      QCheck.assume (not (Float.is_nan n1 || Float.is_nan r1 || Float.is_nan i1));
      beq n1 n2 && beq n1 n4 && beq r1 r2 && beq r1 r4 && beq i1 i2 && beq i1 i4 && ceq n1 nc
      && ceq r1 rc && ceq i1 ic)

let () =
  Alcotest.run "half"
    [
      ( "codec",
        [
          Alcotest.test_case "exhaustive roundtrip" `Quick test_roundtrip_exhaustive;
          Alcotest.test_case "special values" `Quick test_special_values;
          QCheck_alcotest.to_alcotest qcheck_exact_representable;
          QCheck_alcotest.to_alcotest qcheck_nearest_even;
        ] );
      ( "backends",
        [
          QCheck_alcotest.to_alcotest qcheck_f16_worker_counts;
          QCheck_alcotest.to_alcotest qcheck_f16_reductions;
        ] );
    ]
