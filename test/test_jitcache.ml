(* The persistent JIT cache must be invisible except in compile counts:
   a second engine against a warm cache directory replays every kernel
   bit-identically while compiling nothing, any damaged entry silently
   degrades to a recompile, concurrent engines sharing one directory
   never deliver torn bytes (atomic write-then-rename), and
   REPRO_JIT_CACHE=off bypasses the whole mechanism. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Engine = Qdpjit.Engine

let geom = Geometry.create [| 8; 8; 4; 4 |]
let fm = Shape.lattice_fermion Shape.F64

let fresh_dir =
  let n = ref 0 in
  fun tag ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "qdpjit-cache-test-%d-%s-%d" (Unix.getpid ()) tag !n)
    in
    let c = Jitcache.create d in
    Jitcache.clear c;
    d

(* ------------------------------------------------------------------ *)
(* The blob store itself *)

let test_store_roundtrip () =
  let c = Jitcache.create (fresh_dir "blob") in
  Alcotest.(check (option string)) "miss" None (Jitcache.find c ~key:"absent");
  Jitcache.store c ~key:"k1" ~data:"payload one";
  Jitcache.store c ~key:"k2" ~data:(String.make 4096 '\x00');
  Alcotest.(check (option string)) "hit" (Some "payload one") (Jitcache.find c ~key:"k1");
  Alcotest.(check (option string))
    "binary hit" (Some (String.make 4096 '\x00')) (Jitcache.find c ~key:"k2");
  (* Last writer wins. *)
  Jitcache.store c ~key:"k1" ~data:"payload two";
  Alcotest.(check (option string)) "rewrite" (Some "payload two") (Jitcache.find c ~key:"k1");
  let s = Jitcache.stats c in
  Alcotest.(check int) "hits" 3 s.Jitcache.hits;
  Alcotest.(check int) "misses" 1 s.Jitcache.misses;
  Alcotest.(check int) "stores" 3 s.Jitcache.stores;
  Alcotest.(check int) "entries" 2 (Jitcache.entry_count c);
  Jitcache.clear c;
  Alcotest.(check int) "cleared" 0 (Jitcache.entry_count c)

let test_store_corruption () =
  let dir = fresh_dir "corrupt" in
  let c = Jitcache.create dir in
  Jitcache.store c ~key:"victim" ~data:(String.make 512 'x');
  (* Truncate the entry mid-payload: the checksum must reject it. *)
  let path =
    match Sys.readdir dir |> Array.to_list |> List.filter (fun n -> Filename.check_suffix n ".jc") with
    | [ n ] -> Filename.concat dir n
    | _ -> Alcotest.fail "expected exactly one entry"
  in
  let raw = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub raw 0 (String.length raw / 2)));
  Alcotest.(check (option string)) "rejected" None (Jitcache.find c ~key:"victim");
  Alcotest.(check int) "corrupt counted" 1 (Jitcache.stats c).Jitcache.corrupt;
  Alcotest.(check bool) "corrupt file deleted" false (Sys.file_exists path);
  (* Garbage that was never a cache entry is rejected the same way. *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a cache entry");
  Alcotest.(check (option string)) "garbage rejected" None (Jitcache.find c ~key:"victim");
  (* A republish recovers. *)
  Jitcache.store c ~key:"victim" ~data:"fresh";
  Alcotest.(check (option string)) "recovered" (Some "fresh") (Jitcache.find c ~key:"victim")

let test_store_eviction () =
  let c = Jitcache.create ~max_bytes:4096 (fresh_dir "evict") in
  for i = 0 to 9 do
    Jitcache.store c ~key:(Printf.sprintf "k%d" i) ~data:(String.make 1024 'e')
  done;
  Alcotest.(check bool) "bounded" true (Jitcache.entry_bytes c <= 4096);
  Alcotest.(check bool) "evicted" true ((Jitcache.stats c).Jitcache.evictions > 0);
  (* The newest entry survives the bound. *)
  Alcotest.(check bool) "newest survives" true (Jitcache.find c ~key:"k9" <> None)

(* ------------------------------------------------------------------ *)
(* Engine round trips: cached compile = fresh compile, bit for bit *)

type op =
  | Scale of int * float * int
  | Axpy of int * float * int * int
  | Sub of int * int * int
  | Shift of int * int * int * int

let op_expr pool = function
  | Scale (_, c, s) -> Expr.mul (Expr.const_real c) (Expr.field pool.(s))
  | Axpy (_, c, a, b) ->
      Expr.add (Expr.mul (Expr.const_real c) (Expr.field pool.(a))) (Expr.field pool.(b))
  | Sub (_, a, b) -> Expr.sub (Expr.field pool.(a)) (Expr.field pool.(b))
  | Shift (_, s, dim, dir) -> Expr.shift (Expr.field pool.(s)) ~dim ~dir

let op_dest = function Scale (d, _, _) | Axpy (d, _, _, _) | Sub (d, _, _) | Shift (d, _, _, _) -> d

let fresh_pool seed n =
  let rng = Prng.create ~seed in
  Array.init n (fun i ->
      let f = Field.create fm geom in
      Field.fill_gaussian ~site_key:(fun site -> site + (i * 1_000_003)) f rng;
      f)

(* Run the program plus a norm2 tail, so singleton, raw-member, fused and
   fold-kernel cache entries all get exercised. *)
let run_program eng prog =
  let pool = fresh_pool 7L 4 in
  List.iter (fun op -> Engine.eval eng pool.(op_dest op) (op_expr pool op)) prog;
  let n = Engine.norm2 eng (Expr.sub (Expr.field pool.(0)) (Expr.field pool.(1))) in
  Engine.flush eng;
  (pool, n)

let fields_bit_equal a b =
  let ok = ref true in
  for site = 0 to Field.volume a - 1 do
    let sa = Field.get_site a ~site and sb = Field.get_site b ~site in
    Array.iteri
      (fun i v -> if Int64.bits_of_float v <> Int64.bits_of_float sb.(i) then ok := false)
      sa
  done;
  !ok

let gen_op =
  QCheck.Gen.(
    let idx = int_range 0 3 in
    let coeff = oneofl [ 2.0; -0.5; 1.25; 3.0; -1.0 ] in
    oneof
      [
        map3 (fun d c s -> Scale (d, c, s)) idx coeff idx;
        (fun st -> Axpy (idx st, coeff st, idx st, idx st));
        map3 (fun d a b -> Sub (d, a, b)) idx idx idx;
        (fun st -> Shift (idx st, idx st, int_range 0 3 st, if bool st then 1 else -1));
      ])

let show_op = function
  | Scale (d, c, s) -> Printf.sprintf "p%d = %g * p%d" d c s
  | Axpy (d, c, a, b) -> Printf.sprintf "p%d = %g * p%d + p%d" d c a b
  | Sub (d, a, b) -> Printf.sprintf "p%d = p%d - p%d" d a b
  | Shift (d, s, dim, dir) -> Printf.sprintf "p%d = shift(p%d, dim %d, dir %+d)" d s dim dir

let arb_prog =
  QCheck.make
    ~print:(fun p -> String.concat "; " (List.map show_op p))
    QCheck.Gen.(list_size (int_range 2 8) gen_op)

let qcheck_warm_engine_bit_exact =
  QCheck.Test.make ~count:10
    ~name:"random kernels: warm-cache engine = fresh compile (bit), zero compiles" arb_prog
    (fun prog ->
      let dir = fresh_dir "qcheck" in
      let cold = Engine.create ~jit_cache:(Jitcache.create dir) () in
      let pc, nc = run_program cold prog in
      let warm = Engine.create ~jit_cache:(Jitcache.create dir) () in
      let pw, nw = run_program warm prog in
      let stats = Option.get (Engine.jit_cache_stats warm) in
      Array.for_all2 fields_bit_equal pc pw
      && Int64.bits_of_float nc = Int64.bits_of_float nw
      && Engine.kernels_built warm = 0
      && stats.Jitcache.hits > 0)

let test_corrupt_entries_recompile () =
  let dir = fresh_dir "damage" in
  let prog = [ Axpy (2, 1.25, 0, 1); Shift (3, 2, 1, 1); Sub (0, 3, 2) ] in
  let cold = Engine.create ~jit_cache:(Jitcache.create dir) () in
  let pc, nc = run_program cold prog in
  (* Damage every entry on disk: truncations and header scribbles. *)
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".jc")
  |> List.iteri (fun i n ->
         let path = Filename.concat dir n in
         let raw = In_channel.with_open_bin path In_channel.input_all in
         let damaged =
           if i mod 2 = 0 then String.sub raw 0 (String.length raw / 3)
           else "XXXX" ^ String.sub raw 4 (String.length raw - 4)
         in
         Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc damaged));
  let warm = Engine.create ~jit_cache:(Jitcache.create dir) () in
  let pw, nw = run_program warm prog in
  Alcotest.(check bool) "results still bit-equal" true (Array.for_all2 fields_bit_equal pc pw);
  Alcotest.(check bool) "norm bit-equal" true (Int64.bits_of_float nc = Int64.bits_of_float nw);
  Alcotest.(check bool) "recompiled" true (Engine.kernels_built warm > 0);
  let s = Option.get (Engine.jit_cache_stats warm) in
  Alcotest.(check bool) "corruption detected" true (s.Jitcache.corrupt > 0)

(* Every entry file stores its full key (magic 4 | version 4 | key_len 4
   | key ...); read them back so the test can re-key entries the way an
   older release would have written them. *)
let entry_keys dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".jc")
  |> List.map (fun n ->
         let raw = In_channel.with_open_bin (Filename.concat dir n) In_channel.input_all in
         let key_len = Int32.to_int (String.get_int32_be raw 8) in
         String.sub raw 12 key_len)

let is_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let test_version_bump_misses () =
  (* The cache tag is the version fence: it must spell out the current
     component versions, and every key must carry it as a prefix. *)
  Alcotest.(check string) "tag embeds every component version"
    (Printf.sprintf "qdpjit|ml%s|cg%d|ps%d|fu%d|vm%d" Sys.ocaml_version Qdpjit.Codegen.version
       Ptx.Passes.version Ptx.Fuse.version Gpusim.Vm.decoder_version)
    Engine.cache_tag;
  let dir = fresh_dir "stale" in
  let prog = [ Axpy (2, 1.25, 0, 1); Shift (3, 2, 1, 1); Sub (0, 3, 2) ] in
  let cold = Engine.create ~jit_cache:(Jitcache.create dir) () in
  let pc, nc = run_program cold prog in
  let keys = entry_keys dir in
  Alcotest.(check bool) "captured warm keys" true (keys <> []);
  List.iter
    (fun k -> Alcotest.(check bool) "key is version-fenced" true (is_prefix Engine.cache_tag k))
    keys;
  (* Rebuild the directory as the previous release would have left it:
     the same key structure under the decremented version tag, with
     payloads the current formats could not deserialize.  A correct
     engine never even opens them — they must be plain misses, not
     corruption fallbacks or crashes. *)
  let old_tag =
    Printf.sprintf "qdpjit|ml%s|cg%d|ps%d|fu%d|vm%d" Sys.ocaml_version
      (Qdpjit.Codegen.version - 1) (Ptx.Passes.version - 1) (Ptx.Fuse.version - 1)
      (Gpusim.Vm.decoder_version - 1)
  in
  let stale_key k =
    old_tag ^ String.sub k (String.length Engine.cache_tag) (String.length k - String.length Engine.cache_tag)
  in
  let c = Jitcache.create dir in
  Jitcache.clear c;
  List.iter (fun k -> Jitcache.store c ~key:(stale_key k) ~data:"pre-bump marshal format") keys;
  let warm = Engine.create ~jit_cache:(Jitcache.create dir) () in
  let pw, nw = run_program warm prog in
  Alcotest.(check bool) "results bit-equal after full recompile" true
    (Array.for_all2 fields_bit_equal pc pw && Int64.bits_of_float nc = Int64.bits_of_float nw);
  Alcotest.(check bool) "recompiled everything" true (Engine.kernels_built warm > 0);
  let s = Option.get (Engine.jit_cache_stats warm) in
  Alcotest.(check int) "zero hits on pre-bump entries" 0 s.Jitcache.hits;
  Alcotest.(check int) "pre-bump entries never deserialized" 0 s.Jitcache.corrupt

let test_concurrent_engines_share_dir () =
  let dir = fresh_dir "shared" in
  let prog = [ Scale (1, 2.0, 0); Axpy (2, -0.5, 1, 0); Sub (3, 2, 1); Shift (0, 3, 0, -1) ] in
  (* Two engines interleaving on one directory: each eval may publish or
     hit concurrently with the other engine's accesses.  (In-process
     interleaving exercises the same rename-vs-read window two processes
     would race on.) *)
  let a = Engine.create ~jit_cache:(Jitcache.create dir) () in
  let b = Engine.create ~jit_cache:(Jitcache.create dir) () in
  let pa = fresh_pool 7L 4 and pb = fresh_pool 7L 4 in
  List.iter
    (fun op ->
      Engine.eval a pa.(op_dest op) (op_expr pa op);
      Engine.flush a;
      Engine.eval b pb.(op_dest op) (op_expr pb op);
      Engine.flush b)
    prog;
  Alcotest.(check bool) "bit-equal across engines" true (Array.for_all2 fields_bit_equal pa pb);
  (* The second engine rides the first one's stores. *)
  let sb = Option.get (Engine.jit_cache_stats b) in
  Alcotest.(check bool) "follower hits" true (sb.Jitcache.hits > 0);
  Alcotest.(check int) "follower compiles nothing" 0 (Engine.kernels_built b);
  (* No stray scratch files survive the atomic publishes. *)
  let stray =
    Sys.readdir dir |> Array.to_list |> List.filter (fun n -> Filename.check_suffix n ".tmp")
  in
  Alcotest.(check (list string)) "no temp residue" [] stray

(* ------------------------------------------------------------------ *)
(* Environment resolution *)

let with_env value f =
  let prev = Sys.getenv_opt Jitcache.env_var in
  Unix.putenv Jitcache.env_var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv Jitcache.env_var (Option.value prev ~default:""))
    f

let test_env_off_bypasses () =
  with_env "off" (fun () ->
      let dir = fresh_dir "off" in
      (* Even an explicit cache argument is overridden by off. *)
      let eng = Engine.create ~jit_cache:(Jitcache.create dir) () in
      let _, n = run_program eng [ Axpy (2, 1.25, 0, 1); Sub (3, 2, 0) ] in
      Alcotest.(check bool) "finite result" true (Float.is_finite n);
      Alcotest.(check bool) "cache disabled" true (Engine.jit_cache_stats eng = None);
      Alcotest.(check int) "nothing written" 0 (Jitcache.entry_count (Jitcache.create dir)))

let test_env_path_overrides () =
  let dir = fresh_dir "envpath" in
  with_env dir (fun () ->
      let eng = Engine.create () in
      let _ = run_program eng [ Scale (1, 2.0, 0) ] in
      let s = Option.get (Engine.jit_cache_stats eng) in
      Alcotest.(check bool) "stored under env path" true (s.Jitcache.stores > 0);
      Alcotest.(check bool) "entries on disk" true (Jitcache.entry_count (Jitcache.create dir) > 0))

let () =
  Alcotest.run "jitcache"
    [
      ( "blob store",
        [
          Alcotest.test_case "store/find round trip" `Quick test_store_roundtrip;
          Alcotest.test_case "corrupt entries rejected and deleted" `Quick test_store_corruption;
          Alcotest.test_case "size bound evicts oldest" `Quick test_store_eviction;
        ] );
      ( "engine round trips",
        [
          QCheck_alcotest.to_alcotest qcheck_warm_engine_bit_exact;
          Alcotest.test_case "damaged cache falls back to recompile" `Quick
            test_corrupt_entries_recompile;
          Alcotest.test_case "pre-bump entries miss, not deserialize" `Quick
            test_version_bump_misses;
          Alcotest.test_case "concurrent engines share a directory" `Quick
            test_concurrent_engines_share_dir;
        ] );
      ( "environment",
        [
          Alcotest.test_case "REPRO_JIT_CACHE=off bypasses" `Quick test_env_off_bypasses;
          Alcotest.test_case "REPRO_JIT_CACHE path overrides" `Quick test_env_path_overrides;
        ] );
    ]
