module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Index = Layout.Index

(* ------------------------------ Shape ------------------------------- *)

let test_table1_dofs () =
  (* Table I: real degrees of freedom per site of the standard types. *)
  Alcotest.(check int) "fermion" 24 (Shape.dof (Shape.lattice_fermion Shape.F64));
  Alcotest.(check int) "color matrix" 18 (Shape.dof (Shape.lattice_color_matrix Shape.F64));
  Alcotest.(check int) "spin matrix" 32 (Shape.dof (Shape.lattice_spin_matrix Shape.F64));
  Alcotest.(check int) "clover diag" 12 (Shape.dof (Shape.clover_diag Shape.F64));
  Alcotest.(check int) "clover tri" 60 (Shape.dof (Shape.clover_tri Shape.F64));
  Alcotest.(check int) "real scalar" 1 (Shape.dof (Shape.real_scalar Shape.F32));
  Alcotest.(check int) "complex scalar" 2 (Shape.dof (Shape.complex_scalar Shape.F32))

let test_bytes_per_site () =
  Alcotest.(check int) "fermion DP" 192 (Shape.bytes_per_site (Shape.lattice_fermion Shape.F64));
  Alcotest.(check int) "fermion SP" 96 (Shape.bytes_per_site (Shape.lattice_fermion Shape.F32))

let test_promote () =
  Alcotest.(check bool) "f32+f32" true (Shape.promote_prec Shape.F32 Shape.F32 = Shape.F32);
  Alcotest.(check bool) "f32+f64" true (Shape.promote_prec Shape.F32 Shape.F64 = Shape.F64);
  Alcotest.(check bool) "f16+f32" true (Shape.promote_prec Shape.F16 Shape.F32 = Shape.F32);
  Alcotest.(check bool) "f64+f16" true (Shape.promote_prec Shape.F64 Shape.F16 = Shape.F64);
  Alcotest.(check bool) "f16+f16" true (Shape.promote_prec Shape.F16 Shape.F16 = Shape.F16)

(* qcheck: promotion is the join of the total order F64 > F32 > F16 —
   commutative, associative, idempotent and monotone in either argument. *)
let arb_prec =
  QCheck.oneofl
    ~print:(function Shape.F16 -> "f16" | Shape.F32 -> "f32" | Shape.F64 -> "f64")
    [ Shape.F16; Shape.F32; Shape.F64 ]

let rank = function Shape.F16 -> 0 | Shape.F32 -> 1 | Shape.F64 -> 2

let qcheck_promote =
  QCheck.Test.make ~name:"promote_prec is a commutative monotone join" ~count:200
    QCheck.(triple arb_prec arb_prec arb_prec)
    (fun (a, b, c) ->
      let ( + ) = Shape.promote_prec in
      a + b = b + a
      && a + (b + c) = a + b + c
      && a + a = a
      && rank (a + b) >= rank a
      && rank (a + b) >= rank b
      && (rank a <= rank b) = (a + b = b))

let test_validate () =
  Alcotest.check_raises "negative extent" (Invalid_argument "Shape.validate: non-positive spin extent")
    (fun () ->
      Shape.validate
        { Shape.spin = Shape.Spin_vector (-1); color = Shape.Color_scalar; reality = Shape.Real; prec = Shape.F64 })

(* ----------------------------- Geometry ----------------------------- *)

let test_coord_roundtrip () =
  let g = Geometry.create [| 3; 4; 5; 2 |] in
  for s = 0 to Geometry.volume g - 1 do
    let c = Geometry.coord_of_site g s in
    Alcotest.(check int) "roundtrip" s (Geometry.site_of_coord g c)
  done

let test_neighbor_inverse () =
  let g = Geometry.create [| 4; 4; 4; 4 |] in
  for s = 0 to Geometry.volume g - 1 do
    for dim = 0 to 3 do
      let fwd = Geometry.neighbor g s ~dim ~dir:1 in
      Alcotest.(check int) "fwd then bwd" s (Geometry.neighbor g fwd ~dim ~dir:(-1))
    done
  done

let test_neighbor_wraps () =
  let g = Geometry.create [| 4; 4 |] in
  (* site (3,0): +x neighbour wraps to (0,0). *)
  let s = Geometry.site_of_coord g [| 3; 0 |] in
  Alcotest.(check int) "wraps" (Geometry.site_of_coord g [| 0; 0 |]) (Geometry.neighbor g s ~dim:0 ~dir:1)

let test_parity_counts () =
  let g = Geometry.create [| 4; 4; 4; 4 |] in
  let even = Geometry.sites_of_parity g 0 and odd = Geometry.sites_of_parity g 1 in
  Alcotest.(check int) "even half" 128 (Array.length even);
  Alcotest.(check int) "odd half" 128 (Array.length odd);
  (* A site and its neighbour have opposite parity. *)
  Array.iter
    (fun s ->
      Alcotest.(check int) "opposite parity" 1 (Geometry.parity g (Geometry.neighbor g s ~dim:2 ~dir:1)))
    even

let test_face_inner_partition () =
  let g = Geometry.create [| 4; 3; 2; 5 |] in
  for dim = 0 to 3 do
    List.iter
      (fun dir ->
        let face = Geometry.face_sites g ~dim ~dir in
        let inner = Geometry.inner_sites g ~dim ~dir in
        Alcotest.(check int) "partition size" (Geometry.volume g)
          (Array.length face + Array.length inner);
        Alcotest.(check int) "face is a slice" (Geometry.volume g / (Geometry.dims g).(dim))
          (Array.length face);
        (* Faces are exactly the sites whose neighbour wraps. *)
        Array.iter
          (fun s ->
            let c = Geometry.coord_of_site g s in
            let edge = if dir = 1 then (Geometry.dims g).(dim) - 1 else 0 in
            Alcotest.(check int) "face coordinate" edge c.(dim))
          face)
      [ 1; -1 ]
  done

let test_fold_coords_order () =
  let g = Geometry.create [| 2; 3 |] in
  let seen = Geometry.fold_coords g ~init:[] ~f:(fun acc c -> Array.copy c :: acc) in
  let seen = List.rev seen in
  Alcotest.(check int) "count" 6 (List.length seen);
  (* x fastest: second coordinate is (1,0). *)
  Alcotest.(check bool) "x fastest" true (List.nth seen 1 = [| 1; 0 |])

(* ------------------------------ Index ------------------------------- *)

let all_components shape =
  let out = ref [] in
  for s = 0 to Shape.spin_extent shape.Shape.spin - 1 do
    for c = 0 to Shape.color_extent shape.Shape.color - 1 do
      for r = 0 to Shape.reality_extent shape.Shape.reality - 1 do
        out := (s, c, r) :: !out
      done
    done
  done;
  List.rev !out

let test_offsets_bijective scheme () =
  let shape = Shape.lattice_fermion Shape.F64 in
  let nsites = 6 in
  let seen = Hashtbl.create 64 in
  for site = 0 to nsites - 1 do
    List.iter
      (fun (spin, color, reality) ->
        let o = Index.offset scheme shape ~nsites ~site ~spin ~color ~reality in
        if o < 0 || o >= nsites * Shape.dof shape then Alcotest.failf "offset out of range: %d" o;
        if Hashtbl.mem seen o then Alcotest.failf "offset collision at %d" o;
        Hashtbl.replace seen o ())
      (all_components shape)
  done;
  Alcotest.(check int) "covers all words" (nsites * Shape.dof shape) (Hashtbl.length seen)

let test_soa_coalescing () =
  (* The paper's layout: adjacent sites are adjacent words for a fixed
     component — the coalescing property. *)
  let shape = Shape.lattice_fermion Shape.F32 in
  let nsites = 8 in
  for site = 0 to nsites - 2 do
    let a = Index.offset Index.Soa shape ~nsites ~site ~spin:2 ~color:1 ~reality:1 in
    let b = Index.offset Index.Soa shape ~nsites ~site:(site + 1) ~spin:2 ~color:1 ~reality:1 in
    Alcotest.(check int) "adjacent" (a + 1) b
  done

let test_aos_site_contiguous () =
  let shape = Shape.lattice_color_matrix Shape.F64 in
  let nsites = 5 in
  (* In AoS a site's dof words are contiguous. *)
  let offsets =
    List.map
      (fun (spin, color, reality) -> Index.offset Index.Aos shape ~nsites ~site:2 ~spin ~color ~reality)
      (all_components shape)
  in
  let lo = List.fold_left min max_int offsets and hi = List.fold_left max 0 offsets in
  Alcotest.(check int) "span" (Shape.dof shape - 1) (hi - lo);
  Alcotest.(check int) "start" (2 * Shape.dof shape) lo

let test_linear_component_roundtrip () =
  let shape = Shape.clover_tri Shape.F64 in
  for lin = 0 to Shape.dof shape - 1 do
    let s, c, r = Index.component_of_linear shape lin in
    Alcotest.(check int) "roundtrip" lin (Index.linear_component shape ~spin:s ~color:c ~reality:r)
  done

let test_convert_roundtrip () =
  let shape = Shape.lattice_fermion Shape.F64 in
  let nsites = 16 in
  let n = nsites * Shape.dof shape in
  let src = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  let dst = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  let back = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  for i = 0 to n - 1 do
    src.{i} <- float_of_int i
  done;
  Index.convert ~src ~dst ~from_scheme:Index.Aos ~to_scheme:Index.Soa shape ~nsites;
  Index.convert ~src:dst ~dst:back ~from_scheme:Index.Soa ~to_scheme:Index.Aos shape ~nsites;
  for i = 0 to n - 1 do
    if back.{i} <> src.{i} then Alcotest.failf "roundtrip mismatch at %d" i
  done;
  (* And the conversion is not the identity. *)
  let differs = ref false in
  for i = 0 to n - 1 do
    if dst.{i} <> src.{i} then differs := true
  done;
  Alcotest.(check bool) "non-trivial" true !differs

(* qcheck: random geometry site/coordinate roundtrip *)
let qcheck_geometry =
  QCheck.Test.make ~name:"coord_of_site is a bijection" ~count:200
    QCheck.(
      pair (list_of_size (Gen.int_range 1 4) (int_range 1 6)) (int_bound 10_000))
    (fun (dims, seed) ->
      QCheck.assume (dims <> []);
      let g = Geometry.create (Array.of_list dims) in
      let s = seed mod Geometry.volume g in
      Geometry.site_of_coord g (Geometry.coord_of_site g s) = s)

let () =
  Alcotest.run "layout"
    [
      ( "shape",
        [
          Alcotest.test_case "Table I dof" `Quick test_table1_dofs;
          Alcotest.test_case "bytes per site" `Quick test_bytes_per_site;
          Alcotest.test_case "precision promotion" `Quick test_promote;
          QCheck_alcotest.to_alcotest qcheck_promote;
          Alcotest.test_case "validation" `Quick test_validate;
        ] );
      ( "geometry",
        [
          Alcotest.test_case "coord roundtrip" `Quick test_coord_roundtrip;
          Alcotest.test_case "neighbor inverse" `Quick test_neighbor_inverse;
          Alcotest.test_case "wrap-around" `Quick test_neighbor_wraps;
          Alcotest.test_case "parity halves" `Quick test_parity_counts;
          Alcotest.test_case "face/inner partition" `Quick test_face_inner_partition;
          Alcotest.test_case "fold order" `Quick test_fold_coords_order;
          QCheck_alcotest.to_alcotest qcheck_geometry;
        ] );
      ( "index",
        [
          Alcotest.test_case "AoS offsets bijective" `Quick (test_offsets_bijective Index.Aos);
          Alcotest.test_case "SoA offsets bijective" `Quick (test_offsets_bijective Index.Soa);
          Alcotest.test_case "SoA coalescing" `Quick test_soa_coalescing;
          Alcotest.test_case "AoS contiguity" `Quick test_aos_site_contiguous;
          Alcotest.test_case "linear component roundtrip" `Quick test_linear_component_roundtrip;
          Alcotest.test_case "layout conversion roundtrip" `Quick test_convert_roundtrip;
        ] );
    ]
