(* The central suite: the whole QDP-JIT pipeline (codegen -> PTX text ->
   parse -> validate -> register allocation -> VM -> memory cache ->
   auto-tuner) must produce results identical to the CPU reference
   evaluator, for every operation the interface supports. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Subset = Qdp.Subset
module Engine = Qdpjit.Engine

let geom = Geometry.create [| 4; 4; 4; 2 |]
let rng = Prng.create ~seed:1234L

let fresh shape =
  let f = Field.create shape geom in
  Field.fill_gaussian f rng;
  f

let cm = Shape.lattice_color_matrix Shape.F64
let fm = Shape.lattice_fermion Shape.F64
let sm = Shape.lattice_spin_matrix Shape.F64

(* Evaluate on CPU and JIT; require exact equality. *)
let assert_equivalent ?(subset = Subset.All) ?engine name expr =
  let eng = match engine with Some e -> e | None -> Engine.create () in
  let shape = Expr.shape expr in
  let cpu = Field.create shape geom and jit = Field.create shape geom in
  Qdp.Eval_cpu.eval ~subset cpu expr;
  Engine.eval ~subset eng jit expr;
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field cpu) (Expr.field jit)) in
  if d <> 0.0 then Alcotest.failf "%s: CPU and JIT differ, |d|^2 = %g" name d

let u = fresh cm
let u2 = fresh cm
let psi = fresh fm
let phi = fresh fm
let g1 = fresh sm
let g2 = fresh sm

let equivalence_cases =
  [
    ("add", Expr.add (Expr.field psi) (Expr.field phi));
    ("sub", Expr.sub (Expr.field psi) (Expr.field phi));
    ("neg", Expr.neg (Expr.field psi));
    ("conj", Expr.conj (Expr.field u));
    ("adj", Expr.adj (Expr.field u));
    ("transpose", Expr.transpose (Expr.field u));
    ("times_i", Expr.times_i (Expr.field psi));
    ("lcm", Expr.mul (Expr.field u) (Expr.field u2));
    ("upsi", Expr.mul (Expr.field u) (Expr.field psi));
    ("spmat", Expr.mul (Expr.field g1) (Expr.field g2));
    ("gamma_psi", Expr.mul (Expr.field g1) (Expr.field psi));
    ( "matvec",
      Expr.add (Expr.mul (Expr.field u) (Expr.field psi)) (Expr.mul (Expr.field u) (Expr.field phi))
    );
    ("adj_mul", Expr.mul (Expr.adj (Expr.field u)) (Expr.field psi));
    ("trace_color", Expr.trace_color (Expr.mul (Expr.field u) (Expr.field u2)));
    ("trace_spin", Expr.trace_spin (Expr.field g1));
    ("real", Expr.real (Expr.trace_color (Expr.field u)));
    ("imag", Expr.imag (Expr.trace_color (Expr.field u)));
    ("outer_color", Expr.outer_color (Expr.field psi) (Expr.field phi));
    ("scalar_param", Expr.mul (Expr.const_real 1.7) (Expr.field psi));
    ("complex_param", Expr.mul (Expr.const_complex 0.3 (-1.2)) (Expr.field psi));
    ("norm2_local", Expr.norm2_local (Expr.field psi));
    ("inner_local", Expr.inner_local (Expr.field psi) (Expr.field phi));
    ("shift_fwd", Expr.shift (Expr.field psi) ~dim:0 ~dir:1);
    ("shift_bwd", Expr.shift (Expr.field psi) ~dim:2 ~dir:(-1));
    ( "shift_of_shift",
      Expr.shift (Expr.shift (Expr.field psi) ~dim:0 ~dir:1) ~dim:1 ~dir:(-1) );
    ( "stencil",
      Expr.add
        (Expr.mul (Expr.field u) (Expr.shift (Expr.field psi) ~dim:0 ~dir:1))
        (Expr.shift (Expr.mul (Expr.adj (Expr.field u)) (Expr.field psi)) ~dim:0 ~dir:(-1)) );
  ]

let test_equivalence (name, expr) () = assert_equivalent name expr

let test_gauge_compression () =
  (* compress/reconstruct round-trips SU(3) links and runs identically on
     both backends, including inside a dslash-like product. *)
  let su3 = Field.create cm geom in
  let rng2 = Prng.create ~seed:77L in
  for site = 0 to Geometry.volume geom - 1 do
    Field.set_site su3 ~site (Linalg.Su3.random_su3 rng2)
  done;
  let eng = Engine.create () in
  (* round trip *)
  let packed = Field.create (Shape.compressed_color_matrix Shape.F64) geom in
  Engine.eval eng packed (Expr.compress (Expr.field su3));
  let back = Field.create cm geom in
  Engine.eval eng back (Expr.reconstruct (Expr.field packed));
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field back) (Expr.field su3)) in
  if d > 1e-24 then Alcotest.failf "reconstruct(compress u) <> u: %g" d;
  (* compressed links inside a product, CPU vs JIT *)
  assert_equivalent "reconstruct*psi"
    (Expr.mul (Expr.reconstruct (Expr.field packed)) (Expr.field psi));
  (* compression only claims SU(3): storage is 12 reals vs 18 *)
  Alcotest.(check int) "12 reals" 12 (Shape.dof packed.Field.shape)

let test_compression_rejects_non_matrix () =
  match Expr.compress (Expr.field psi) with
  | exception Linalg.Algebra.Type_error _ -> ()
  | _ -> Alcotest.fail "compress of a fermion accepted"

let test_clover_equivalence () =
  let diag = fresh (Shape.clover_diag Shape.F64) in
  let tri = fresh (Shape.clover_tri Shape.F64) in
  assert_equivalent "clover"
    (Expr.clover ~diag:(Expr.field diag) ~tri:(Expr.field tri) (Expr.field psi))

let test_compressed_dslash_matches () =
  (* The 12-real dslash must reproduce the full-gauge dslash exactly on
     SU(3) links (reconstruction is exact there). *)
  let rng2 = Prng.create ~seed:7070L in
  let links = Array.init 4 (fun _ -> Field.create cm geom) in
  Array.iter
    (fun uf ->
      for site = 0 to Geometry.volume geom - 1 do
        Field.set_site uf ~site (Linalg.Su3.random_su3 rng2)
      done)
    links;
  let eng = Engine.create () in
  let packed =
    Array.map
      (fun uf ->
        let p = Field.create (Shape.compressed_color_matrix Shape.F64) geom in
        Engine.eval eng p (Expr.compress (Expr.field uf));
        p)
      links
  in
  let full = Field.create fm geom and comp = Field.create fm geom in
  Engine.eval eng full (Lqcd.Wilson.hopping_expr links psi);
  Engine.eval eng comp (Lqcd.Wilson.hopping_expr_compressed packed psi);
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field full) (Expr.field comp)) in
  if d > 1e-22 then Alcotest.failf "compressed dslash differs: %g" d;
  (* And it moves fewer bytes: 12 vs 18 reals per link. *)
  let bytes expr =
    let b =
      Qdpjit.Codegen.build ~kname:"abl" ~dest_shape:fm ~expr ~nsites:(Geometry.volume geom)
        ~use_sitelist:false ()
    in
    let a = Ptx.Analysis.kernel b.Qdpjit.Codegen.kernel in
    a.Ptx.Analysis.load_bytes + a.Ptx.Analysis.store_bytes
  in
  let b_full = bytes (Lqcd.Wilson.hopping_expr links psi) in
  let b_comp = bytes (Lqcd.Wilson.hopping_expr_compressed packed psi) in
  Alcotest.(check int) "saves 8 links x 6 reals x 8 bytes" (b_full - (8 * 6 * 8)) b_comp

let test_dslash_equivalence () =
  let links = Array.init 4 (fun _ -> fresh cm) in
  assert_equivalent "dslash" (Lqcd.Wilson.hopping_expr links psi)

let test_f32_equivalence () =
  let u32 = fresh (Shape.lattice_color_matrix Shape.F32) in
  let p32 = fresh (Shape.lattice_fermion Shape.F32) in
  assert_equivalent "f32 upsi" (Expr.mul (Expr.field u32) (Expr.field p32))

let test_mixed_precision () =
  (* f32 gauge times f64 fermion: implicit promotion inside the kernel. *)
  let u32 = fresh (Shape.lattice_color_matrix Shape.F32) in
  assert_equivalent "mixed precision" (Expr.mul (Expr.field u32) (Expr.field psi))

let test_store_rounding () =
  (* f64 expression stored to an f32 destination rounds identically. *)
  let eng = Engine.create () in
  let expr = Expr.mul (Expr.field u) (Expr.field psi) in
  let cpu = Field.create (Shape.lattice_fermion Shape.F32) geom in
  let jit = Field.create (Shape.lattice_fermion Shape.F32) geom in
  Qdp.Eval_cpu.eval cpu expr;
  Engine.eval eng jit expr;
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field cpu) (Expr.field jit)) in
  Alcotest.(check (float 0.0)) "rounded stores equal" 0.0 d

let test_subsets () =
  let expr = Expr.mul (Expr.field u) (Expr.field psi) in
  assert_equivalent ~subset:Subset.Even "even" expr;
  assert_equivalent ~subset:Subset.Odd "odd" expr;
  assert_equivalent ~subset:(Subset.Custom [| 0; 3; 17; 100 |]) "custom" expr

let test_reductions_match_cpu () =
  let eng = Engine.create () in
  let expr = Expr.mul (Expr.field u) (Expr.field psi) in
  let n_cpu = Qdp.Eval_cpu.norm2 expr and n_jit = Engine.norm2 eng expr in
  Alcotest.(check (float (1e-12 *. n_cpu))) "norm2" n_cpu n_jit;
  let (re_c, im_c) = Qdp.Eval_cpu.inner (Expr.field psi) (Expr.field phi) in
  let (re_j, im_j) = Engine.inner eng (Expr.field psi) (Expr.field phi) in
  Alcotest.(check (float (1e-12 *. abs_float re_c))) "inner re" re_c re_j;
  Alcotest.(check (float (1e-12 *. (abs_float im_c +. 1.0)))) "inner im" im_c im_j;
  let s_cpu = (Qdp.Eval_cpu.sum_components (Expr.real (Expr.trace_color (Expr.field u)))).(0) in
  let s_jit = Engine.sum_real eng (Expr.real (Expr.trace_color (Expr.field u))) in
  Alcotest.(check (float (1e-12 *. (abs_float s_cpu +. 1.0)))) "sum_real" s_cpu s_jit

let test_subset_reductions () =
  let eng = Engine.create () in
  let e = Expr.field psi in
  let n_cpu = Qdp.Eval_cpu.norm2 ~subset:Subset.Even e in
  let n_jit = Engine.norm2 ~subset:Subset.Even eng e in
  Alcotest.(check (float (1e-12 *. n_cpu))) "even norm2" n_cpu n_jit

let test_kernel_cache_reuse () =
  let eng = Engine.create () in
  let dest = Field.create fm geom in
  Engine.eval eng dest (Expr.mul (Expr.field u) (Expr.field psi));
  let built = Engine.kernels_built eng in
  (* Same structure with different fields and scalar values: no new kernel. *)
  Engine.eval eng dest (Expr.mul (Expr.field u2) (Expr.field phi));
  Alcotest.(check int) "structure reused" built (Engine.kernels_built eng);
  (* Different structure: one more kernel. *)
  Engine.eval eng dest (Expr.mul (Expr.adj (Expr.field u)) (Expr.field psi));
  Alcotest.(check int) "new structure compiles" (built + 1) (Engine.kernels_built eng)

let test_scalar_params_no_recompile () =
  let eng = Engine.create () in
  let dest = Field.create fm geom in
  Engine.eval eng dest (Expr.mul (Expr.const_real 0.5) (Expr.field psi));
  let built = Engine.kernels_built eng in
  for i = 1 to 20 do
    Engine.eval eng dest (Expr.mul (Expr.const_real (float_of_int i)) (Expr.field psi))
  done;
  Alcotest.(check int) "twenty scalars, zero recompiles" built (Engine.kernels_built eng)

let test_leaf_aliasing_distinct_kernels () =
  (* Regression: `b + 0.1 D b` and `b + 0.1 D x` have identical trees but
     different leaf-aliasing patterns; sharing one kernel mis-binds the
     pointers (this broke the even-odd reconstruction once). *)
  let eng = Engine.create () in
  let links = Array.init 4 (fun _ -> fresh cm) in
  let e leaf =
    Expr.add (Expr.field psi)
      (Expr.mul (Expr.const_real 0.1) (Lqcd.Wilson.hopping_expr links leaf))
  in
  let dest = Field.create fm geom in
  Engine.eval eng dest (e psi);
  (* aliased: hopping reads psi itself *)
  let cpu = Field.create fm geom in
  Qdp.Eval_cpu.eval cpu (e psi);
  let d1 = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field cpu) (Expr.field dest)) in
  Alcotest.(check (float 0.0)) "aliased form" 0.0 d1;
  (* non-aliased: hopping reads phi *)
  Engine.eval eng dest (e phi);
  Qdp.Eval_cpu.eval cpu (e phi);
  let d2 = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field cpu) (Expr.field dest)) in
  Alcotest.(check (float 0.0)) "non-aliased form" 0.0 d2

let test_jit_time_accumulates () =
  let eng = Engine.create () in
  let dest = Field.create fm geom in
  Engine.eval eng dest (Expr.mul (Expr.field u) (Expr.field psi));
  Alcotest.(check bool) "compile time in paper range" true
    (Engine.jit_seconds eng >= 0.04 && Engine.jit_seconds eng <= 0.5)

let test_spilling_preserves_results () =
  (* A device with room for only a few fields: the LRU cache spills
     mid-computation and results must not change. *)
  let machine = { Gpusim.Machine.k20x_ecc_off with Gpusim.Machine.memory_bytes = 120_000 } in
  let eng = Engine.create ~machine () in
  let a = fresh fm and b = fresh fm and c = fresh fm in
  let out1 = Field.create fm geom and out2 = Field.create fm geom in
  Engine.eval eng out1 (Expr.add (Expr.field a) (Expr.field b));
  Engine.eval eng out2 (Expr.add (Expr.field out1) (Expr.field c));
  let cache = Engine.memcache eng in
  Alcotest.(check bool) "spills occurred" true ((Memcache.stats cache).Memcache.spills > 0);
  let cpu = Field.create fm geom in
  Qdp.Eval_cpu.eval cpu
    (Expr.add (Expr.add (Expr.field a) (Expr.field b)) (Expr.field c));
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field cpu) (Expr.field out2)) in
  Alcotest.(check (float 0.0)) "results survive spilling" 0.0 d

let test_dest_aliasing () =
  (* x = a*x + y with the destination among the leaves (the solver axpy
     pattern) must work in place. *)
  let eng = Engine.create () in
  let x_cpu = Field.create fm geom and x_jit = Field.create fm geom in
  Field.copy_from ~dst:x_cpu ~src:psi;
  Field.copy_from ~dst:x_jit ~src:psi;
  let e x = Expr.add (Expr.mul (Expr.const_real 0.5) (Expr.field x)) (Expr.field phi) in
  Qdp.Eval_cpu.eval x_cpu (e x_cpu);
  Engine.eval eng x_jit (e x_jit);
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field x_cpu) (Expr.field x_jit)) in
  Alcotest.(check (float 0.0)) "in-place axpy" 0.0 d

let test_autotuner_state () =
  let tuner = Qdpjit.Autotune.create ~max_block:1024 () in
  Alcotest.(check int) "starts at max" 1024 (Qdpjit.Autotune.next_block tuner);
  (* Two launch failures halve twice. *)
  Qdpjit.Autotune.on_failure tuner ~block:1024;
  Alcotest.(check int) "halved" 512 (Qdpjit.Autotune.next_block tuner);
  Qdpjit.Autotune.on_failure tuner ~block:512;
  Alcotest.(check int) "halved again" 256 (Qdpjit.Autotune.next_block tuner);
  (* Success at 256: probe 128 next. *)
  Qdpjit.Autotune.report tuner ~block:256 ~ns:1000.0;
  Alcotest.(check int) "probes smaller" 128 (Qdpjit.Autotune.next_block tuner);
  (* 128 is faster: keep probing; 64 is 34% slower: settle on 128. *)
  Qdpjit.Autotune.report tuner ~block:128 ~ns:900.0;
  Alcotest.(check int) "probes 64" 64 (Qdpjit.Autotune.next_block tuner);
  Qdpjit.Autotune.report tuner ~block:64 ~ns:(900.0 *. 1.34);
  Alcotest.(check bool) "settled" true (Qdpjit.Autotune.settled tuner);
  Alcotest.(check int) "best block" 128 (Qdpjit.Autotune.next_block tuner)

let test_autotuner_settles_in_engine () =
  (* Eval-at-a-time launches: the deferred queue would (correctly) collapse
     fifteen same-dest writes with no reader in between into one launch. *)
  let eng = Engine.create ~mode:Gpusim.Device.Model_only ~fuse:false () in
  let big = Geometry.create [| 8; 8; 8; 8 |] in
  let a = Field.create fm big and b = Field.create fm big in
  for _ = 1 to 15 do
    Engine.eval eng a (Expr.mul (Expr.const_real 2.0) (Expr.field b))
  done;
  (* After enough payload launches the tuner must have settled somewhere
     sane (>= 64 threads for streaming kernels). *)
  Alcotest.(check bool) "launch count" true
    ((Gpusim.Device.stats (Engine.device eng)).Gpusim.Device.launches >= 15)

let test_ntable_shared () =
  let eng = Engine.create () in
  let dest = Field.create fm geom in
  (* Warm up: both leaves resident, the (dim 0, +1) neighbour table built. *)
  Engine.eval eng dest (Expr.shift (Expr.field psi) ~dim:0 ~dir:1);
  Engine.eval eng dest (Expr.shift (Expr.field phi) ~dim:0 ~dir:1);
  let allocs0 = (Gpusim.Device.stats (Engine.device eng)).Gpusim.Device.allocs in
  Engine.eval eng dest (Expr.shift (Expr.field psi) ~dim:0 ~dir:1);
  Engine.eval eng dest (Expr.shift (Expr.field phi) ~dim:0 ~dir:1);
  let allocs1 = (Gpusim.Device.stats (Engine.device eng)).Gpusim.Device.allocs in
  (* Re-running shifted evals allocates nothing: tables, leaves and the
     destination are all shared/resident. *)
  Alcotest.(check int) "no new allocations" allocs0 allocs1

(* ------------------------------------------------------------------ *)
(* QCheck: random well-typed expressions must evaluate identically on the
   CPU reference and through the whole JIT pipeline. *)

let qcheck_engine = Engine.create ()

(* A small recursive generator over the color-matrix algebra (adding
   fermion branches where types permit). *)
let rec gen_matrix_expr rng depth =
  if depth = 0 then
    match Prng.int_below rng 3 with
    | 0 -> Expr.field u
    | 1 -> Expr.field u2
    | _ -> Expr.adj (Expr.field u)
  else
    match Prng.int_below rng 7 with
    | 0 -> Expr.add (gen_matrix_expr rng (depth - 1)) (gen_matrix_expr rng (depth - 1))
    | 1 -> Expr.sub (gen_matrix_expr rng (depth - 1)) (gen_matrix_expr rng (depth - 1))
    | 2 -> Expr.mul (gen_matrix_expr rng (depth - 1)) (gen_matrix_expr rng (depth - 1))
    | 3 -> Expr.adj (gen_matrix_expr rng (depth - 1))
    | 4 ->
        Expr.shift (gen_matrix_expr rng (depth - 1)) ~dim:(Prng.int_below rng 4)
          ~dir:(if Prng.int_below rng 2 = 0 then 1 else -1)
    | 5 -> Expr.times_i (gen_matrix_expr rng (depth - 1))
    | _ -> Expr.mul (Expr.const_real (Prng.uniform rng ~lo:(-2.0) ~hi:2.0)) (gen_matrix_expr rng (depth - 1))

let gen_expr rng =
  let m = gen_matrix_expr rng 3 in
  (* Half the time, turn it into a fermion or scalar form. *)
  match Prng.int_below rng 4 with
  | 0 -> m
  | 1 -> Expr.mul m (Expr.field psi)
  | 2 -> Expr.real (Expr.trace_color m)
  | _ -> Expr.norm2_local (Expr.mul m (Expr.field psi))

let qcheck_equivalence =
  QCheck.Test.make ~name:"random expressions: CPU = JIT (bit exact)" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create ~seed:(Int64.of_int seed) in
      let expr = gen_expr rng in
      let shape = Expr.shape expr in
      let cpu = Field.create shape geom and jit = Field.create shape geom in
      Qdp.Eval_cpu.eval cpu expr;
      Engine.eval qcheck_engine jit expr;
      Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field cpu) (Expr.field jit)) = 0.0)

let qcheck_reductions =
  QCheck.Test.make ~name:"random expressions: reductions agree" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create ~seed:(Int64.of_int seed) in
      let expr = gen_matrix_expr rng 2 in
      let n_cpu = Qdp.Eval_cpu.norm2 expr in
      let n_jit = Engine.norm2 qcheck_engine expr in
      abs_float (n_cpu -. n_jit) <= 1e-11 *. (n_cpu +. 1.0))

let () =
  Alcotest.run "qdpjit"
    [
      ( "equivalence",
        List.map
          (fun (name, expr) -> Alcotest.test_case name `Quick (test_equivalence (name, expr)))
          equivalence_cases
        @ [
            Alcotest.test_case "clover" `Quick test_clover_equivalence;
            Alcotest.test_case "gauge compression" `Quick test_gauge_compression;
            Alcotest.test_case "compressed dslash" `Quick test_compressed_dslash_matches;
            Alcotest.test_case "compression typing" `Quick test_compression_rejects_non_matrix;
            Alcotest.test_case "dslash" `Quick test_dslash_equivalence;
            Alcotest.test_case "f32" `Quick test_f32_equivalence;
            Alcotest.test_case "mixed precision" `Quick test_mixed_precision;
            Alcotest.test_case "store rounding" `Quick test_store_rounding;
            Alcotest.test_case "subsets" `Quick test_subsets;
            Alcotest.test_case "dest aliasing" `Quick test_dest_aliasing;
          ] );
      ( "reductions",
        [
          Alcotest.test_case "norm2/inner/sum" `Quick test_reductions_match_cpu;
          Alcotest.test_case "subset reductions" `Quick test_subset_reductions;
        ] );
      ( "kernel-cache",
        [
          Alcotest.test_case "structure reuse" `Quick test_kernel_cache_reuse;
          Alcotest.test_case "scalar params" `Quick test_scalar_params_no_recompile;
          Alcotest.test_case "leaf aliasing" `Quick test_leaf_aliasing_distinct_kernels;
          Alcotest.test_case "jit time" `Quick test_jit_time_accumulates;
          Alcotest.test_case "ntable shared" `Quick test_ntable_shared;
        ] );
      ( "memory",
        [ Alcotest.test_case "spilling mid-computation" `Quick test_spilling_preserves_results ] );
      ( "autotune",
        [
          Alcotest.test_case "state machine" `Quick test_autotuner_state;
          Alcotest.test_case "engine integration" `Quick test_autotuner_settles_in_engine;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_equivalence;
          QCheck_alcotest.to_alcotest qcheck_reductions;
        ] );
    ]
