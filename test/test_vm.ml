(* The parallel pre-decoded VM must be invisible to results: any worker
   count (including the sequential w=1 sweep and the OCaml 4.x fallback
   back-end) has to produce bit-identical fields and reductions, and
   faults raised inside worker domains must surface deterministically on
   the launching thread, enriched with kernel name, ctaid and tid.

   The lattice here is 8x8x4x4 = 1024 sites, on purpose: launches reach
   the VM's small-launch threshold (1024 threads), so multi-worker
   engines really execute across domains instead of quietly running
   sequentially. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Engine = Qdpjit.Engine
module Device = Gpusim.Device
module Machine = Gpusim.Machine
module Jit = Gpusim.Jit
module Buffer_ = Gpusim.Buffer

let geom = Geometry.create [| 8; 8; 4; 4 |]
let fm = Shape.lattice_fermion Shape.F64

(* Signed zeros: same convention as test_fusion — the CPU reference
   accumulates through fma from +0.0, the VM multiplies directly, both
   are correct real arithmetic.  VM-vs-VM comparisons stay strict. *)
let bits ~canon_zero v = if canon_zero && v = 0.0 then 0L else Int64.bits_of_float v

type op =
  | Scale of int * float * int
  | Axpy of int * float * int * int
  | Sub of int * int * int
  | Shift of int * int * int * int

let op_expr pool = function
  | Scale (_, c, s) -> Expr.mul (Expr.const_real c) (Expr.field pool.(s))
  | Axpy (_, c, a, b) ->
      Expr.add (Expr.mul (Expr.const_real c) (Expr.field pool.(a))) (Expr.field pool.(b))
  | Sub (_, a, b) -> Expr.sub (Expr.field pool.(a)) (Expr.field pool.(b))
  | Shift (_, s, dim, dir) -> Expr.shift (Expr.field pool.(s)) ~dim ~dir

let op_dest = function Scale (d, _, _) | Axpy (d, _, _, _) | Sub (d, _, _) | Shift (d, _, _, _) -> d

let fresh_pool seed n =
  let rng = Prng.create ~seed in
  Array.init n (fun i ->
      let f = Field.create fm geom in
      Field.fill_gaussian ~site_key:(fun site -> site + (i * 1_000_003)) f rng;
      f)

(* Shared engines, one per worker count.  w=1 is the sequential sweep
   the others must match bit-for-bit. *)
let engines =
  [
    (1, Engine.create ~vm_domains:1 ());
    (2, Engine.create ~vm_domains:2 ());
    (4, Engine.create ~vm_domains:4 ());
    (8, Engine.create ~vm_domains:8 ());
  ]

let run_jit eng seed prog =
  let pool = fresh_pool seed 4 in
  List.iter (fun op -> Engine.eval eng pool.(op_dest op) (op_expr pool op)) prog;
  Engine.flush eng;
  pool

let run_cpu seed prog =
  let pool = fresh_pool seed 4 in
  List.iter (fun op -> Qdp.Eval_cpu.eval pool.(op_dest op) (op_expr pool op)) prog;
  pool

let gen_op =
  QCheck.Gen.(
    let idx = int_range 0 3 in
    let coeff = oneofl [ 2.0; -0.5; 1.25; 3.0; -1.0 ] in
    oneof
      [
        map3 (fun d c s -> Scale (d, c, s)) idx coeff idx;
        (fun st -> Axpy (idx st, coeff st, idx st, idx st));
        map3 (fun d a b -> Sub (d, a, b)) idx idx idx;
        (fun st -> Shift (idx st, idx st, int_range 0 3 st, if bool st then 1 else -1));
      ])

let show_op = function
  | Scale (d, c, s) -> Printf.sprintf "p%d = %g * p%d" d c s
  | Axpy (d, c, a, b) -> Printf.sprintf "p%d = %g * p%d + p%d" d c a b
  | Sub (d, a, b) -> Printf.sprintf "p%d = p%d - p%d" d a b
  | Shift (d, s, dim, dir) -> Printf.sprintf "p%d = shift(p%d, dim %d, dir %+d)" d s dim dir

let arb_prog =
  QCheck.make
    ~print:(fun p -> String.concat "; " (List.map show_op p))
    QCheck.Gen.(list_size (int_range 2 8) gen_op)

let beq a b = Int64.bits_of_float a = Int64.bits_of_float b
let ceq a b = bits ~canon_zero:true a = bits ~canon_zero:true b

let qcheck_worker_counts =
  QCheck.Test.make ~count:20 ~name:"random kernels: 1 = 2 = 4 = 8 workers = cpu (bit)" arb_prog
    (fun prog ->
      let p1 = run_jit (List.assoc 1 engines) 7L prog in
      let p2 = run_jit (List.assoc 2 engines) 7L prog in
      let p4 = run_jit (List.assoc 4 engines) 7L prog in
      let p8 = run_jit (List.assoc 8 engines) 7L prog in
      let pc = run_cpu 7L prog in
      let equal ~canon_zero a b =
        let ok = ref true in
        for site = 0 to Field.volume a - 1 do
          let sa = Field.get_site a ~site and sb = Field.get_site b ~site in
          Array.iteri
            (fun i v -> if bits ~canon_zero v <> bits ~canon_zero sb.(i) then ok := false)
            sa
        done;
        !ok
      in
      Array.for_all2 (equal ~canon_zero:false) p1 p2
      && Array.for_all2 (equal ~canon_zero:false) p1 p4
      && Array.for_all2 (equal ~canon_zero:false) p1 p8
      && Array.for_all2 (equal ~canon_zero:true) p1 pc)

let qcheck_reductions =
  QCheck.Test.make ~count:15 ~name:"random chains + norm2/inner: all worker counts bit-equal"
    arb_prog (fun prog ->
      let run eng =
        let pool = run_jit eng 13L prog in
        let n = Engine.norm2 eng (Expr.sub (Expr.field pool.(0)) (Expr.field pool.(1))) in
        let re, im = Engine.inner eng (Expr.field pool.(2)) (Expr.field pool.(3)) in
        (n, re, im)
      in
      let n1, r1, i1 = run (List.assoc 1 engines) in
      let n2, r2, i2 = run (List.assoc 2 engines) in
      let n4, r4, i4 = run (List.assoc 4 engines) in
      let pc = run_cpu 13L prog in
      let nc = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field pc.(0)) (Expr.field pc.(1))) in
      let rc, ic = Qdp.Eval_cpu.inner (Expr.field pc.(2)) (Expr.field pc.(3)) in
      beq n1 n2 && beq n1 n4 && beq r1 r2 && beq r1 r4 && beq i1 i2 && beq i1 i4 && ceq n1 nc
      && ceq r1 rc && ceq i1 ic)

(* ------------------------------------------------------------------ *)
(* Superinstruction (SoA) dispatch: toggling the executor must be
   invisible — same bits, same faults — at every worker count. *)

let with_superinsn b f =
  let prev = Gpusim.Vm.superinstructions_enabled () in
  Gpusim.Vm.set_superinstructions b;
  Fun.protect ~finally:(fun () -> Gpusim.Vm.set_superinstructions prev) f

let qcheck_superinsn_onoff =
  QCheck.Test.make ~count:15
    ~name:"superinstructions on/off: bit-identical at 1/2/4/8 workers" arb_prog (fun prog ->
      let off = with_superinsn false (fun () -> run_jit (List.assoc 1 engines) 29L prog) in
      let equal a b =
        let ok = ref true in
        for site = 0 to Field.volume a - 1 do
          let sa = Field.get_site a ~site and sb = Field.get_site b ~site in
          Array.iteri
            (fun i v ->
              if Int64.bits_of_float v <> Int64.bits_of_float sb.(i) then ok := false)
            sa
        done;
        !ok
      in
      List.for_all
        (fun w ->
          let on = with_superinsn true (fun () -> run_jit (List.assoc w engines) 29L prog) in
          Array.for_all2 equal off on)
        [ 1; 2; 4; 8 ])

(* ------------------------------------------------------------------ *)
(* Faults: raised in worker domains, reported on the launching thread *)

(* Same shape as test_gpusim's daxpy, but an integer divide whose
   divisor is loaded per thread: planting zeros in chosen sites faults
   chosen (ctaid, tid) pairs only. *)
let divk_text =
  {|
.version 3.1
.target sm_35
.address_size 64

.visible .entry divk(
	.param .u64 divk_param_0,
	.param .u64 divk_param_1,
	.param .s32 divk_param_2
)
{
	ld.param.u64 	%rd1, [divk_param_0];
	ld.param.u64 	%rd2, [divk_param_1];
	ld.param.s32 	%r1, [divk_param_2];
	mov.u32 	%r2, %tid.x;
	mov.u32 	%r3, %ntid.x;
	mov.u32 	%r4, %ctaid.x;
	mad.lo.s32 	%r5, %r4, %r3, %r2;
	setp.ge.s32 	%p1, %r5, %r1;
	@%p1 bra 	EXIT;
	mul.lo.s32 	%r6, %r5, 4;
	cvt.s64.s32 	%rs1, %r6;
	cvt.u64.s64 	%rd3, %rs1;
	add.u64 	%rd4, %rd1, %rd3;
	add.u64 	%rd5, %rd2, %rd3;
	ld.global.s32 	%r7, [%rd4+0];
	div.s32 	%r8, %r1, %r7;
	st.global.s32 	[%rd5+0], %r8;
EXIT:
	ret;
}
|}

let n_threads = 2048
let block = 128

(* Fill x with 1 except zeros at [sites]; launch and return the fault. *)
let launch_divk ~vm_domains ~zero_sites =
  let dev = Device.create ~vm_domains Machine.k20x_ecc_off in
  let x = Device.alloc_i32 dev n_threads and y = Device.alloc_i32 dev n_threads in
  (match x.Buffer_.data with
  | Buffer_.I32 xa ->
      Bigarray.Array1.fill xa 1l;
      List.iter (fun s -> xa.{s} <- 0l) zero_sites
  | _ -> assert false);
  let compiled = Jit.compile divk_text in
  match
    Device.launch dev compiled ~nthreads:n_threads ~block
      ~params:[| Gpusim.Vm.Ptr x; Gpusim.Vm.Ptr y; Gpusim.Vm.Int n_threads |]
  with
  | exception Gpusim.Vm.Fault msg -> Some msg
  | _ -> None

let contains msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

let check_fault what msg_opt =
  match msg_opt with
  | None -> Alcotest.failf "%s: launch did not fault" what
  | Some msg ->
      List.iter
        (fun sub ->
          if not (contains msg sub) then
            Alcotest.failf "%s: fault %S does not mention %S" what msg sub)
        [ "integer division by zero"; "kernel divk"; "ctaid 4"; "tid 88" ];
      msg |> ignore

(* Sites 600 and 1600 sit in different worker spans at 4 workers (ctas
   4-7 and 12-15 of 16); neither belongs to worker 0, which runs on the
   calling thread.  The fault must still surface here, and the lower
   (ctaid, tid) — site 600 = (4, 88) — must win, exactly as the
   sequential sweep reports it. *)
let test_fault_from_worker_domain () =
  check_fault "parallel" (launch_divk ~vm_domains:4 ~zero_sites:[ 1600; 600 ])

let test_fault_deterministic_across_workers () =
  let seq = launch_divk ~vm_domains:1 ~zero_sites:[ 1600; 600 ] in
  let par = launch_divk ~vm_domains:4 ~zero_sites:[ 1600; 600 ] in
  check_fault "sequential" seq;
  match (seq, par) with
  | Some a, Some b -> Alcotest.(check string) "same fault either way" a b
  | _ -> Alcotest.fail "expected faults from both launches"

let test_fault_names_first_thread () =
  (* Every thread faults: the report must still be the deterministic
     (ctaid 0, tid 0), kernel name included. *)
  match launch_divk ~vm_domains:4 ~zero_sites:(List.init n_threads Fun.id) with
  | None -> Alcotest.fail "all-zero divisors did not fault"
  | Some msg ->
      List.iter
        (fun sub ->
          if not (contains msg sub) then
            Alcotest.failf "fault %S does not mention %S" msg sub)
        [ "kernel divk"; "ctaid 0"; "tid 0" ]

(* ------------------------------------------------------------------ *)
(* Batched launch sweeps: random chains of dependent and independent
   launches queued through Device.begin_batch/end_batch must match the
   unbatched sequential schedule bit-for-bit at every worker count, and
   a faulting batch must report the lowest (launch index, ctaid, tid)
   with the exact message the sequential sweep raises. *)

(* y[i] = x[i] + c — the streaming sibling of divk; chaining adds over
   the buffer pool manufactures RAW/WAW/WAR edges between launches, and
   an add that lands on 0 plants a divisor for a later divk fault. *)
let addk_text =
  {|
.version 3.1
.target sm_35
.address_size 64

.visible .entry addk(
	.param .u64 addk_param_0,
	.param .u64 addk_param_1,
	.param .s32 addk_param_2,
	.param .s32 addk_param_3
)
{
	ld.param.u64 	%rd1, [addk_param_0];
	ld.param.u64 	%rd2, [addk_param_1];
	ld.param.s32 	%r1, [addk_param_2];
	ld.param.s32 	%r9, [addk_param_3];
	mov.u32 	%r2, %tid.x;
	mov.u32 	%r3, %ntid.x;
	mov.u32 	%r4, %ctaid.x;
	mad.lo.s32 	%r5, %r4, %r3, %r2;
	setp.ge.s32 	%p1, %r5, %r1;
	@%p1 bra 	EXIT;
	mul.lo.s32 	%r6, %r5, 4;
	cvt.s64.s32 	%rs1, %r6;
	cvt.u64.s64 	%rd3, %rs1;
	add.u64 	%rd4, %rd1, %rd3;
	add.u64 	%rd5, %rd2, %rd3;
	ld.global.s32 	%r7, [%rd4+0];
	add.s32 	%r8, %r7, %r9;
	st.global.s32 	[%rd5+0], %r8;
EXIT:
	ret;
}
|}

let addk_compiled = lazy (Jit.compile addk_text)
let divk_compiled = lazy (Jit.compile divk_text)

type bkind = Badd of int | Bdiv
type blaunch = { bl_dst : int; bl_src : int; bl_kind : bkind }

let npool = 4

(* Zero-free seed data in [-11, -3]; only add-chains can manufacture a
   zero divisor, so random programs mix faulting and clean sweeps. *)
let fill_pool bufs =
  Array.iteri
    (fun b buf ->
      match buf.Buffer_.data with
      | Buffer_.I32 a ->
          for i = 0 to n_threads - 1 do
            a.{i} <- Int32.of_int ((i * (b + 3) mod 9) - 11)
          done
      | _ -> assert false)
    bufs

let snapshot buf =
  match buf.Buffer_.data with
  | Buffer_.I32 a -> Array.init n_threads (fun i -> a.{i})
  | _ -> assert false

let run_batch_prog ~vm_domains ~batched prog =
  let dev = Device.create ~vm_domains Machine.k20x_ecc_off in
  let bufs = Array.init npool (fun _ -> Device.alloc_i32 dev n_threads) in
  fill_pool bufs;
  let go l =
    let x = Gpusim.Vm.Ptr bufs.(l.bl_src) and y = Gpusim.Vm.Ptr bufs.(l.bl_dst) in
    ignore
      (match l.bl_kind with
      | Badd c ->
          Device.execute dev (Lazy.force addk_compiled) ~nthreads:n_threads ~block
            ~params:[| x; y; Gpusim.Vm.Int n_threads; Gpusim.Vm.Int c |]
      | Bdiv ->
          Device.execute dev (Lazy.force divk_compiled) ~nthreads:n_threads ~block
            ~params:[| x; y; Gpusim.Vm.Int n_threads |])
  in
  match
    if batched then begin
      Device.begin_batch dev;
      List.iter go prog;
      Device.end_batch dev
    end
    else List.iter go prog
  with
  | () -> (None, Some (Array.map snapshot bufs))
  | exception Gpusim.Vm.Fault m ->
      (* After a fault only the fault identity is specified (launches
         past the faulting index may or may not have run). *)
      (Some m, None)

let show_blaunch l =
  match l.bl_kind with
  | Badd c -> Printf.sprintf "b%d = b%d + %d" l.bl_dst l.bl_src c
  | Bdiv -> Printf.sprintf "b%d = n / b%d" l.bl_dst l.bl_src

let arb_batch_prog =
  let gen =
    QCheck.Gen.(
      let idx = int_range 0 (npool - 1) in
      let kind =
        oneof [ map (fun c -> Badd c) (oneofl [ 3; 5; -4; 11; 0 ]); return Bdiv ]
      in
      list_size (int_range 2 10)
        (map3 (fun d s k -> { bl_dst = d; bl_src = s; bl_kind = k }) idx idx kind))
  in
  QCheck.make ~print:(fun p -> String.concat "; " (List.map show_blaunch p)) gen

let qcheck_batched_sweeps =
  QCheck.Test.make ~count:30
    ~name:"batched sweeps: 1 = 2 = 4 = 8 workers = unbatched (contents and faults)"
    arb_batch_prog (fun prog ->
      let ref_fault, ref_bufs = run_batch_prog ~vm_domains:1 ~batched:false prog in
      List.for_all
        (fun w ->
          let fault, bufs = run_batch_prog ~vm_domains:w ~batched:true prog in
          match ((ref_fault, ref_bufs), (fault, bufs)) with
          | (None, Some rb), (None, Some b) ->
              Array.for_all2 (fun ra a -> ra = a) rb b
          | (Some rm, None), (Some m, None) -> rm = m
          | _ -> false)
        [ 1; 2; 4; 8 ])

(* The same random launch chains, scalar interpreter vs superinstruction
   executor: buffer contents must match bit-for-bit and a faulting chain
   must report the exact same message — kernel name, ctaid and tid — at
   every worker count.  divk/addk are SoA-eligible (straight-line bodies
   with one forward exit branch), so the SoA executor really runs here. *)
let qcheck_superinsn_faults =
  QCheck.Test.make ~count:20
    ~name:"superinstructions on/off: identical contents and fault reports at 1/2/4/8 workers"
    arb_batch_prog (fun prog ->
      let ref_fault, ref_bufs =
        with_superinsn false (fun () -> run_batch_prog ~vm_domains:1 ~batched:false prog)
      in
      List.for_all
        (fun w ->
          let fault, bufs =
            with_superinsn true (fun () -> run_batch_prog ~vm_domains:w ~batched:true prog)
          in
          match ((ref_fault, ref_bufs), (fault, bufs)) with
          | (None, Some rb), (None, Some b) -> Array.for_all2 (fun ra a -> ra = a) rb b
          | (Some rm, None), (Some m, None) -> rm = m
          | _ -> false)
        [ 1; 2; 4; 8 ])

(* Two independent faulting launches (disjoint buffer pairs, so the
   sweep may genuinely overlap them): the batch must report launch 0's
   own lowest site — (ctaid 12, tid 64) — even though launch 1 faults
   at a lower (ctaid, tid), because the launch index dominates the
   batch-wide order.  The message must equal the sequential one. *)
let run_two_faults ~vm_domains ~batched =
  let dev = Device.create ~vm_domains Machine.k20x_ecc_off in
  let mkx zero =
    let b = Device.alloc_i32 dev n_threads in
    (match b.Buffer_.data with
    | Buffer_.I32 a ->
        Bigarray.Array1.fill a 1l;
        a.{zero} <- 0l
    | _ -> assert false);
    b
  in
  let x0 = mkx 1600 and x1 = mkx 600 in
  let y0 = Device.alloc_i32 dev n_threads and y1 = Device.alloc_i32 dev n_threads in
  let go x y =
    ignore
      (Device.execute dev (Lazy.force divk_compiled) ~nthreads:n_threads ~block
         ~params:[| Gpusim.Vm.Ptr x; Gpusim.Vm.Ptr y; Gpusim.Vm.Int n_threads |])
  in
  match
    if batched then begin
      Device.begin_batch dev;
      go x0 y0;
      go x1 y1;
      Device.end_batch dev
    end
    else begin
      go x0 y0;
      go x1 y1
    end
  with
  | () -> None
  | exception Gpusim.Vm.Fault m -> Some m

let test_batched_two_faults () =
  match run_two_faults ~vm_domains:1 ~batched:false with
  | None -> Alcotest.fail "sequential reference did not fault"
  | Some seq ->
      List.iter
        (fun sub ->
          if not (contains seq sub) then
            Alcotest.failf "fault %S does not mention %S" seq sub)
        [ "kernel divk"; "ctaid 12"; "tid 64" ];
      List.iter
        (fun w ->
          match run_two_faults ~vm_domains:w ~batched:true with
          | None -> Alcotest.failf "batched sweep at %d workers did not fault" w
          | Some m -> Alcotest.(check string) (Printf.sprintf "fault at w=%d" w) seq m)
        [ 1; 2; 4; 8 ]

let test_divk_parallelizable () =
  (* The safety analysis must recognize the streaming access pattern —
     otherwise the fault tests above never leave the calling thread. *)
  let dev = Device.create Machine.k20x_ecc_off in
  let x = Device.alloc_i32 dev 8 and y = Device.alloc_i32 dev 8 in
  let compiled = Jit.compile divk_text in
  let params = [| Gpusim.Vm.Ptr x; Gpusim.Vm.Ptr y; Gpusim.Vm.Int 8 |] in
  Alcotest.(check bool) "parallelizable" true
    (Gpusim.Vm.parallelizable compiled.Jit.program ~params);
  Alcotest.(check bool) "decoded" true
    (Gpusim.Vm.decoded_instructions compiled.Jit.program > 0)

(* ------------------------------------------------------------------ *)
(* Planner edge cases.  One hand-written kernel hits the unit-partition
   corners at once: single-instruction float ladder runs (a lone
   add.f64 / mul.f64 between heterogeneous neighbours), a mixed
   int/float chain truncated by a *data-dependent* exit branch (so
   lanes retire in scattered, non-prefix patterns), address arithmetic
   fused into memory-terminated units, and the chain straddling the
   two spans the second branch creates.  Per lane i:
     t = x[i]*c + i;  if t > thr then exit else y[i] = (t + x[i])^2 *)

let mixk_text =
  {|
.version 3.1
.target sm_35
.address_size 64

.visible .entry mixk(
	.param .u64 mixk_param_0,
	.param .u64 mixk_param_1,
	.param .s32 mixk_param_2,
	.param .f64 mixk_param_3,
	.param .f64 mixk_param_4
)
{
	ld.param.u64 	%rd1, [mixk_param_0];
	ld.param.u64 	%rd2, [mixk_param_1];
	ld.param.s32 	%r1, [mixk_param_2];
	ld.param.f64 	%fd1, [mixk_param_3];
	ld.param.f64 	%fd2, [mixk_param_4];
	mov.u32 	%r2, %tid.x;
	mov.u32 	%r3, %ntid.x;
	mov.u32 	%r4, %ctaid.x;
	mad.lo.s32 	%r5, %r4, %r3, %r2;
	setp.ge.s32 	%p1, %r5, %r1;
	@%p1 bra 	EXIT;
	mul.lo.s32 	%r6, %r5, 8;
	cvt.s64.s32 	%rs1, %r6;
	cvt.u64.s64 	%rd3, %rs1;
	add.u64 	%rd4, %rd1, %rd3;
	ld.global.f64 	%fd3, [%rd4+0];
	cvt.rn.f64.s32 	%fd4, %r5;
	fma.rn.f64 	%fd5, %fd3, %fd1, %fd4;
	setp.gt.f64 	%p2, %fd5, %fd2;
	@%p2 bra 	EXIT;
	add.f64 	%fd6, %fd5, %fd3;
	mul.f64 	%fd7, %fd6, %fd6;
	add.u64 	%rd5, %rd2, %rd3;
	st.global.f64 	[%rd5+0], %fd7;
EXIT:
	ret;
}
|}

let mixk_compiled = lazy (Jit.compile mixk_text)

let run_mixk ~vm_domains ~superinsn ~c ~thr =
  with_superinsn superinsn (fun () ->
      let dev = Device.create ~vm_domains Machine.k20x_ecc_off in
      let x = Device.alloc_f64 dev n_threads and y = Device.alloc_f64 dev n_threads in
      (match (x.Buffer_.data, y.Buffer_.data) with
      | Buffer_.F64 xa, Buffer_.F64 ya ->
          for i = 0 to n_threads - 1 do
            xa.{i} <- float_of_int ((i * 7 mod 23) - 11) *. 0.5;
            ya.{i} <- -1.0
          done
      | _ -> assert false);
      ignore
        (Device.launch dev (Lazy.force mixk_compiled) ~nthreads:n_threads ~block
           ~params:
             [|
               Gpusim.Vm.Ptr x;
               Gpusim.Vm.Ptr y;
               Gpusim.Vm.Int n_threads;
               Gpusim.Vm.Float c;
               Gpusim.Vm.Float thr;
             |]);
      match y.Buffer_.data with
      | Buffer_.F64 ya -> Array.init n_threads (fun i -> Int64.bits_of_float ya.{i})
      | _ -> assert false)

let arb_mixk =
  QCheck.make
    ~print:(fun (c, thr) -> Printf.sprintf "c=%g thr=%g" c thr)
    QCheck.Gen.(
      pair
        (oneofl [ 2.0; -0.75; 0.0; 13.5 ])
        (* neg_infinity retires every lane at the second branch,
           infinity none; the mid values leave scattered survivors *)
        (oneofl [ neg_infinity; 0.0; 64.0; 512.0; 1500.0; infinity ]))

let qcheck_mixk_bit_identity =
  QCheck.Test.make ~count:12
    ~name:"mixed-chain kernel: 1/2/4/8 workers x executor on/off bit-identical" arb_mixk
    (fun (c, thr) ->
      let reference = run_mixk ~vm_domains:1 ~superinsn:false ~c ~thr in
      List.for_all
        (fun w ->
          run_mixk ~vm_domains:w ~superinsn:false ~c ~thr = reference
          && run_mixk ~vm_domains:w ~superinsn:true ~c ~thr = reference)
        [ 1; 2; 4; 8 ])

let test_mixk_plan_shape () =
  let s = Gpusim.Vm.superinsn_stats (Lazy.force mixk_compiled).Jit.program in
  Alcotest.(check int) "decoded" 25 s.Gpusim.Vm.total;
  Alcotest.(check int) "spans" 3 s.Gpusim.Vm.spans;
  Alcotest.(check int) "covered" 22 s.Gpusim.Vm.covered;
  (* prologue chain | address chain + ld.g.f64 | cvt/fma/setp chain cut
     by the data-dependent exit branch | add/mul/add chain + st.g.f64 *)
  Alcotest.(check int) "units" 4 s.Gpusim.Vm.units

let () =
  Alcotest.run "vm"
    [
      ( "bit-exactness",
        [
          QCheck_alcotest.to_alcotest qcheck_worker_counts;
          QCheck_alcotest.to_alcotest qcheck_reductions;
        ] );
      ( "batched sweeps",
        [
          QCheck_alcotest.to_alcotest qcheck_batched_sweeps;
          Alcotest.test_case "independent faults: lowest launch index wins" `Quick
            test_batched_two_faults;
        ] );
      ( "superinstructions",
        [
          QCheck_alcotest.to_alcotest qcheck_superinsn_onoff;
          QCheck_alcotest.to_alcotest qcheck_superinsn_faults;
          QCheck_alcotest.to_alcotest qcheck_mixk_bit_identity;
          Alcotest.test_case "mixed-chain kernel: plan shape" `Quick test_mixk_plan_shape;
        ] );
      ( "faults",
        [
          Alcotest.test_case "worker-domain fault surfaces" `Quick test_fault_from_worker_domain;
          Alcotest.test_case "deterministic across worker counts" `Quick
            test_fault_deterministic_across_workers;
          Alcotest.test_case "all-threads fault reports (0,0)" `Quick
            test_fault_names_first_thread;
          Alcotest.test_case "divk passes safety analysis" `Quick test_divk_parallelizable;
        ] );
    ]
