open Ptx.Types

(* A hand-written kernel exercising every instruction form:
   daxpy-with-guard  y[i] = a * x[i] + y[i]. *)
let daxpy_kernel =
  let reg t id = { rtype = t; id } in
  {
    kname = "daxpy";
    params =
      [
        { pname = "x"; ptype = U64 };
        { pname = "y"; ptype = U64 };
        { pname = "a"; ptype = F64 };
        { pname = "n"; ptype = S32 };
      ];
    body =
      [
        Ld_param { dst = reg U64 0; param_index = 0 };
        Ld_param { dst = reg U64 1; param_index = 1 };
        Ld_param { dst = reg F64 0; param_index = 2 };
        Ld_param { dst = reg S32 0; param_index = 3 };
        Mov_sreg { dst = reg S32 1; src = Tid_x };
        Mov_sreg { dst = reg S32 2; src = Ntid_x };
        Mov_sreg { dst = reg S32 3; src = Ctaid_x };
        Fma { dtype = S32; dst = reg S32 4; a = Reg (reg S32 3); b = Reg (reg S32 2); c = Reg (reg S32 1) };
        Setp { cmp = Ge; dtype = S32; dst = reg Pred 0; a = Reg (reg S32 4); b = Reg (reg S32 0) };
        Bra { label = "EXIT"; pred = Some (reg Pred 0) };
        Mul { dtype = S32; dst = reg S32 5; a = Reg (reg S32 4); b = Imm_int 8 };
        Cvt { dst = reg S64 0; src = reg S32 5 };
        Cvt { dst = reg U64 2; src = reg S64 0 };
        Add { dtype = U64; dst = reg U64 3; a = Reg (reg U64 0); b = Reg (reg U64 2) };
        Add { dtype = U64; dst = reg U64 4; a = Reg (reg U64 1); b = Reg (reg U64 2) };
        Ld_global { dtype = F64; dst = reg F64 1; addr = reg U64 3; offset = 0 };
        Ld_global { dtype = F64; dst = reg F64 2; addr = reg U64 4; offset = 0 };
        Fma { dtype = F64; dst = reg F64 3; a = Reg (reg F64 0); b = Reg (reg F64 1); c = Reg (reg F64 2) };
        St_global { dtype = F64; addr = reg U64 4; offset = 0; src = Reg (reg F64 3) };
        Label "EXIT";
        Ret;
      ];
  }

let test_print_parse_roundtrip () =
  let text = Ptx.Print.kernel daxpy_kernel in
  let parsed = Ptx.Parse.kernel text in
  Alcotest.(check string) "name" daxpy_kernel.kname parsed.kname;
  Alcotest.(check int) "params" (List.length daxpy_kernel.params) (List.length parsed.params);
  Alcotest.(check bool) "body identical" true (parsed.body = daxpy_kernel.body)

let test_roundtrip_idempotent () =
  let text = Ptx.Print.kernel daxpy_kernel in
  let text2 = Ptx.Print.kernel (Ptx.Parse.kernel text) in
  Alcotest.(check string) "print.parse.print fixed point" text text2

let test_float_immediates_bit_exact () =
  let vals = [ 1.0; -0.5; 3.141592653589793; 1e-300; -0.0; 0.1 ] in
  List.iter
    (fun v ->
      let k =
        {
          kname = "imm";
          params = [ { pname = "p"; ptype = U64 } ];
          body =
            [
              Ld_param { dst = { rtype = U64; id = 0 }; param_index = 0 };
              Mov { dst = { rtype = F64; id = 0 }; src = Imm_float v };
              St_global
                { dtype = F64; addr = { rtype = U64; id = 0 }; offset = 0; src = Reg { rtype = F64; id = 0 } };
              Ret;
            ];
        }
      in
      let parsed = Ptx.Parse.kernel (Ptx.Print.kernel k) in
      match parsed.body with
      | _ :: Mov { src = Imm_float v'; _ } :: _ ->
          Alcotest.(check bool) "bit exact" true (Int64.bits_of_float v = Int64.bits_of_float v')
      | _ -> Alcotest.fail "unexpected body shape")
    vals

let test_header_format () =
  let text = Ptx.Print.kernel daxpy_kernel in
  List.iter
    (fun needle ->
      if not (String.length text > 0) then Alcotest.fail "empty";
      let found =
        let nl = String.length needle in
        let rec go i = i + nl <= String.length text && (String.sub text i nl = needle || go (i + 1)) in
        go 0
      in
      if not found then Alcotest.failf "missing %S in PTX text" needle)
    [ ".version 3.1"; ".target sm_35"; ".address_size 64"; ".visible .entry daxpy"; ".reg .f64"; "fma.rn.f64" ]

let test_validate_accepts () = Ptx.Validate.kernel daxpy_kernel

let test_validate_use_before_def () =
  let k =
    {
      kname = "bad";
      params = [];
      body =
        [
          Add
            {
              dtype = F64;
              dst = { rtype = F64; id = 0 };
              a = Reg { rtype = F64; id = 1 };
              b = Imm_float 1.0;
            };
          Ret;
        ];
    }
  in
  match Ptx.Validate.kernel k with
  | exception Ptx.Validate.Invalid _ -> ()
  | () -> Alcotest.fail "use before def accepted"

let test_validate_missing_label () =
  let k = { kname = "bad"; params = []; body = [ Bra { label = "NOWHERE"; pred = None }; Ret ] } in
  match Ptx.Validate.kernel k with
  | exception Ptx.Validate.Invalid _ -> ()
  | () -> Alcotest.fail "missing label accepted"

let test_validate_type_mismatch () =
  let k =
    {
      kname = "bad";
      params = [];
      body =
        [
          Mov { dst = { rtype = F32; id = 0 }; src = Imm_float 1.0 };
          Add
            {
              dtype = F64;
              dst = { rtype = F64; id = 0 };
              a = Reg { rtype = F32; id = 0 };
              b = Imm_float 1.0;
            };
          Ret;
        ];
    }
  in
  match Ptx.Validate.kernel k with
  | exception Ptx.Validate.Invalid _ -> ()
  | () -> Alcotest.fail "class mismatch accepted"

let test_validate_int_float_immediate () =
  let k =
    {
      kname = "bad";
      params = [];
      body =
        [
          Mov { dst = { rtype = S32; id = 0 }; src = Imm_float 1.5 };
          Ret;
        ];
    }
  in
  match Ptx.Validate.kernel k with
  | exception Ptx.Validate.Invalid _ -> ()
  | () -> Alcotest.fail "float immediate in integer mov accepted"

let test_analysis_counts () =
  let a = Ptx.Analysis.kernel daxpy_kernel in
  Alcotest.(check int) "loads" 16 a.Ptx.Analysis.load_bytes;
  Alcotest.(check int) "stores" 8 a.Ptx.Analysis.store_bytes;
  (* one f64 fma = 2 flops; integer fma/mul are int ops *)
  Alcotest.(check int) "flops" 2 a.Ptx.Analysis.flops;
  Alcotest.(check bool) "int ops counted" true (a.Ptx.Analysis.int_ops >= 3);
  Alcotest.(check (float 1e-9)) "flop/byte" (2.0 /. 24.0) (Ptx.Analysis.flop_per_byte a)

let test_parse_errors () =
  (match Ptx.Parse.kernel "garbage" with
  | exception Ptx.Parse.Error _ -> ()
  | _ -> Alcotest.fail "garbage accepted");
  let bad_op =
    ".version 3.1\n.target sm_35\n.address_size 64\n.visible .entry k()\n{\n\tfrobnicate.f64 %fd1, %fd2;\n}\n"
  in
  match Ptx.Parse.kernel bad_op with
  | exception Ptx.Parse.Error _ -> ()
  | _ -> Alcotest.fail "unknown opcode accepted"

(* Generated-kernel roundtrips: every codegen output must parse back to an
   identical kernel (this is the boundary the simulated driver consumes). *)
let test_generated_roundtrip () =
  let module Shape = Layout.Shape in
  let geom = Layout.Geometry.create [| 2; 2; 2; 2 |] in
  let u = Qdp.Field.create (Shape.lattice_color_matrix Shape.F64) geom in
  let psi = Qdp.Field.create (Shape.lattice_fermion Shape.F64) geom in
  let exprs =
    [
      Qdp.Expr.mul (Qdp.Expr.field u) (Qdp.Expr.field psi);
      Lqcd.Wilson.hopping_expr [| u; u; u; u |] psi;
      Qdp.Expr.norm2_local (Qdp.Expr.field psi);
    ]
  in
  List.iter
    (fun expr ->
      let b =
        Qdpjit.Codegen.build ~kname:"rt" ~dest_shape:(Qdp.Expr.shape expr) ~expr
          ~nsites:(Layout.Geometry.volume geom) ~use_sitelist:true ()
      in
      let parsed = Ptx.Parse.kernel b.Qdpjit.Codegen.text in
      Alcotest.(check bool) "roundtrip equal" true (parsed = b.Qdpjit.Codegen.kernel))
    exprs

let () =
  Alcotest.run "ptx"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "print/parse" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "idempotent" `Quick test_roundtrip_idempotent;
          Alcotest.test_case "float immediates" `Quick test_float_immediates_bit_exact;
          Alcotest.test_case "header format" `Quick test_header_format;
        ] );
      ( "validate",
        [
          Alcotest.test_case "accepts daxpy" `Quick test_validate_accepts;
          Alcotest.test_case "use before def" `Quick test_validate_use_before_def;
          Alcotest.test_case "missing label" `Quick test_validate_missing_label;
          Alcotest.test_case "type mismatch" `Quick test_validate_type_mismatch;
          Alcotest.test_case "immediate class" `Quick test_validate_int_float_immediate;
        ] );
      ( "analysis",
        [ Alcotest.test_case "daxpy counts" `Quick test_analysis_counts ] );
      ("parse", [ Alcotest.test_case "errors" `Quick test_parse_errors ]);
      ( "generated",
        [ Alcotest.test_case "codegen roundtrip" `Quick test_generated_roundtrip ] );
    ]
