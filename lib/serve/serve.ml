(** Multi-tenant serving front-end.  See the interface for the model;
    the implementation notes here cover the two invariants the tests
    lean on.

    Bit-exactness: tasks execute one at a time, to completion, on the
    engine's default stream, with an {!Qdpjit.Engine.flush} at every
    task boundary.  Within a task the deferred-eval queue and fusion
    planner see exactly the eval sequence a dedicated engine would see,
    and sessions never interleave {e inside} a task — so each session's
    results are bit-identical to running its workload alone, while the
    sessions still share every compiled kernel, autotune state and the
    persistent JIT cache.

    Attribution: the boundary flushes also make the device counters
    (launches, kernel_ns) and the engine's byte counter well-defined per
    task; deltas across one task belong to exactly one session.  Queue
    wait is wall time from submission to execution start — under
    round-robin it is the fairness signal the bench reports. *)

module Engine = Qdpjit.Engine
module Device = Gpusim.Device
module Field = Qdp.Field

type task = { label : string; fn : unit -> unit; submitted_at : float }

type session = {
  server : server;
  s_id : int;
  name : string;
  stream : Streams.stream;
  arena : Memcache.arena;
  queue : task Queue.t;
  mutable closed : bool;
  mutable tasks : int;
  mutable launches : int;
  mutable kernel_bytes : int;
  mutable kernel_bytes_f16 : int;
  mutable kernel_bytes_f32 : int;
  mutable kernel_bytes_f64 : int;
  mutable sim_ns : float;
  mutable queue_wait_s : float;
  mutable run_s : float;
}

and server = {
  eng : Engine.t;
  mutable sessions_rev : session list;  (** open order, newest first *)
  mutable next_session : int;
  mutable running : bool;
}

type t = server

type session_stats = {
  s_name : string;
  s_tasks : int;
  s_launches : int;
  s_kernel_bytes : int;
  s_kernel_bytes_f16 : int;
  s_kernel_bytes_f32 : int;
  s_kernel_bytes_f64 : int;
  s_sim_ms : float;
  s_queue_wait_s : float;
  s_run_s : float;
}

let create ?machine ?mode ?vm_domains ?optimize ?fuse ?fuse_reductions ?jit_cache () =
  let eng = Engine.create ?machine ?mode ?vm_domains ?optimize ?fuse ?fuse_reductions ?jit_cache () in
  { eng; sessions_rev = []; next_session = 0; running = false }

let engine t = t.eng

let active_sessions t =
  List.fold_left (fun acc s -> if s.closed then acc else acc + 1) 0 t.sessions_rev

let open_session ?name t =
  let s_id = t.next_session in
  t.next_session <- s_id + 1;
  let name = match name with Some n -> n | None -> Printf.sprintf "session%d" s_id in
  let sess =
    {
      server = t;
      s_id;
      name;
      stream = Streams.create_stream ~name (Engine.streams t.eng);
      arena = Memcache.create_arena (Engine.memcache t.eng) ~name;
      queue = Queue.create ();
      closed = false;
      tasks = 0;
      launches = 0;
      kernel_bytes = 0;
      kernel_bytes_f16 = 0;
      kernel_bytes_f32 = 0;
      kernel_bytes_f64 = 0;
      sim_ns = 0.0;
      queue_wait_s = 0.0;
      run_s = 0.0;
    }
  in
  t.sessions_rev <- sess :: t.sessions_rev;
  sess

let session_name s = s.name
let session_stream s = s.stream

let create_field sess ?name shape geom =
  let name = match name with Some n -> n | None -> Printf.sprintf "%s:field" sess.name in
  let f = Field.create ~name shape geom in
  Memcache.arena_register sess.arena f;
  f

let adopt_field sess f = Memcache.arena_register sess.arena f

let submit ?(label = "task") sess fn =
  if sess.closed then invalid_arg "Serve.submit: session is closed";
  Queue.add { label; fn; submitted_at = Unix.gettimeofday () } sess.queue

let pending sess = Queue.length sess.queue

(* Run one task to completion with exact attribution: flush the engine
   on both sides so the device-counter deltas cover exactly this task,
   then chain the session's stream to the completed work and drop a
   marker span on it. *)
let run_task sess task =
  let eng = sess.server.eng in
  let t0 = Unix.gettimeofday () in
  sess.queue_wait_s <- sess.queue_wait_s +. (t0 -. task.submitted_at);
  Engine.flush eng;
  let dstats = Device.stats (Engine.device eng) in
  let launches0 = dstats.Device.launches in
  let kns0 = dstats.Device.kernel_ns in
  let bytes0 = Engine.kernel_bytes_moved eng in
  let f16_0, f32_0, f64_0 = Engine.kernel_bytes_by_prec eng in
  task.fn ();
  Engine.flush eng;
  let ctx = Engine.streams eng in
  let done_ev = Streams.Event.create ~name:(sess.name ^ ":" ^ task.label ^ " done") () in
  Streams.record_event ctx (Engine.default_stream eng) done_ev;
  Streams.wait_event ctx sess.stream done_ev;
  Streams.note ctx sess.stream
    ~name:(Printf.sprintf "%s:%s" sess.name task.label)
    ~args:[ ("session", sess.name); ("task", task.label) ];
  sess.tasks <- sess.tasks + 1;
  sess.launches <- sess.launches + (dstats.Device.launches - launches0);
  sess.sim_ns <- sess.sim_ns +. (dstats.Device.kernel_ns -. kns0);
  sess.kernel_bytes <- sess.kernel_bytes + (Engine.kernel_bytes_moved eng - bytes0);
  let f16_1, f32_1, f64_1 = Engine.kernel_bytes_by_prec eng in
  sess.kernel_bytes_f16 <- sess.kernel_bytes_f16 + (f16_1 - f16_0);
  sess.kernel_bytes_f32 <- sess.kernel_bytes_f32 + (f32_1 - f32_0);
  sess.kernel_bytes_f64 <- sess.kernel_bytes_f64 + (f64_1 - f64_0);
  sess.run_s <- sess.run_s +. (Unix.gettimeofday () -. t0)

let run t =
  if t.running then invalid_arg "Serve.run: already running";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let executed = ref 0 in
      let progressed = ref true in
      (* Sweep sessions in open order, at most one task each per sweep:
         with equal queues every tenant advances at the same rate, and a
         tenant that drains early simply drops out of later sweeps. *)
      while !progressed do
        progressed := false;
        List.iter
          (fun sess ->
            if not sess.closed then
              match Queue.take_opt sess.queue with
              | Some task ->
                  run_task sess task;
                  incr executed;
                  progressed := true
              | None -> ())
          (List.rev t.sessions_rev)
      done;
      !executed)

let stats sess =
  {
    s_name = sess.name;
    s_tasks = sess.tasks;
    s_launches = sess.launches;
    s_kernel_bytes = sess.kernel_bytes;
    s_kernel_bytes_f16 = sess.kernel_bytes_f16;
    s_kernel_bytes_f32 = sess.kernel_bytes_f32;
    s_kernel_bytes_f64 = sess.kernel_bytes_f64;
    s_sim_ms = sess.sim_ns /. 1e6;
    s_queue_wait_s = sess.queue_wait_s;
    s_run_s = sess.run_s;
  }

let close_session sess =
  if not sess.closed then begin
    (* Drain rather than drop: submitted work completes (and its results
       survive the arena page-out below). *)
    let rec drain () =
      match Queue.take_opt sess.queue with
      | Some task ->
          run_task sess task;
          drain ()
      | None -> ()
    in
    drain ();
    Engine.flush sess.server.eng;
    Memcache.release_arena (Engine.memcache sess.server.eng) sess.arena;
    sess.closed <- true
  end
