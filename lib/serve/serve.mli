(** Multi-tenant serving front-end: N independent solver sessions over
    one engine.

    The Chroma/QDP-JIT stack multiplexes many independent physics tasks
    over one compiled-kernel pool; this layer is that shape for the
    simulated engine.  A {!t} owns a single {!Qdpjit.Engine.t} — one
    device, one stream context, one in-memory kernel cache and one
    (optionally persistent) JIT cache — and each {!session} gets its own
    fields (grouped in a {!Memcache.arena}), its own stream for timeline
    attribution, and its own stats.

    Scheduling is cooperative, fair round-robin: sessions submit tasks
    (closures over their own fields) and {!run} repeatedly sweeps the
    sessions in open order, executing at most one task per session per
    sweep.  Tasks run to completion on the engine's default stream —
    the fusion planner keeps working across each task exactly as in a
    dedicated engine, which is what makes per-session results
    bit-identical to a serial run — and the engine is flushed at task
    boundaries so device-counter deltas attribute exactly.  Each
    session's stream is chained to its tasks' completions via events and
    annotated with zero-duration markers, so a Chrome trace shows one
    timeline per session.

    {!close_session} is the graceful teardown: it drains the session's
    remaining tasks, pages out dirty results, and releases every
    memcache entry the session pinned or retained. *)

type t
type session

(** Per-session accounting, maintained at task granularity. *)
type session_stats = {
  s_name : string;
  s_tasks : int;  (** tasks executed *)
  s_launches : int;  (** kernel launches attributed to this session *)
  s_kernel_bytes : int;  (** modeled global bytes its kernels moved *)
  s_kernel_bytes_f16 : int;  (** the f16 portion of [s_kernel_bytes] *)
  s_kernel_bytes_f32 : int;  (** the f32 portion *)
  s_kernel_bytes_f64 : int;
      (** the f64 portion (integer index traffic appears only in the total) *)
  s_sim_ms : float;  (** modeled device time of its kernels, ms *)
  s_queue_wait_s : float;  (** wall time tasks sat queued before starting *)
  s_run_s : float;  (** wall time spent executing its tasks *)
}

val create :
  ?machine:Gpusim.Machine.t ->
  ?mode:Gpusim.Device.mode ->
  ?vm_domains:int ->
  ?optimize:bool ->
  ?fuse:bool ->
  ?fuse_reductions:bool ->
  ?jit_cache:Jitcache.t ->
  unit ->
  t
(** A fresh server over its own engine; the options forward to
    {!Qdpjit.Engine.create} (in particular [jit_cache], the shared
    persistent kernel cache). *)

val engine : t -> Qdpjit.Engine.t
val active_sessions : t -> int

val open_session : ?name:string -> t -> session
(** Register a tenant: allocates its stream and memcache arena. *)

val session_name : session -> string
val session_stream : session -> Streams.stream

val create_field : session -> ?name:string -> Layout.Shape.t -> Layout.Geometry.t -> Qdp.Field.t
(** A field owned by the session (registered in its arena, so
    {!close_session} releases it). *)

val adopt_field : session -> Qdp.Field.t -> unit
(** Register an externally created field (e.g. a temporary) as
    session-owned. *)

val submit : ?label:string -> session -> (unit -> unit) -> unit
(** Enqueue a task.  The closure runs on the server's engine; it must
    only touch the session's own fields.  Raises [Invalid_argument] on a
    closed session. *)

val pending : session -> int

val run : t -> int
(** Drain every session's queue under fair round-robin (at most one task
    per session per sweep, sessions in open order); returns the number
    of tasks executed.  Re-entrant calls are rejected. *)

val stats : session -> session_stats
(** Valid after {!close_session} too. *)

val close_session : session -> unit
(** Graceful teardown: drain the session's remaining tasks, then release
    its arena — dirty results page out to the host, pins and retain
    counts clear, device allocations free.  Idempotent; the session no
    longer participates in {!run}. *)
