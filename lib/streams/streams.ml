(** CUDA-style streams and events on the simulated device (the machinery
    behind the paper's Sec. V comm/compute overlap).

    A context owns a set of stream timelines over one {!Gpusim.Device.t}.
    Work is issued to a stream and scheduled by a small discrete-event
    scheduler: each operation starts at the later of its stream's cursor
    (program order within the stream) and the free time of the device
    engine it occupies — kernels share the SMs (one compute engine, as on
    Kepler where bandwidth-bound kernels serialize), while H2D and D2H
    copies each have their own copy engine, which is what lets a face
    export overlap an inner kernel.  Functional execution stays eager and
    in host-issue order, so results are bit-exact regardless of how the
    modeled timelines interleave.

    Events capture a stream's cursor when recorded ([Event.record]) or an
    externally computed completion time ([Event.record_at], used for
    message arrivals from the simulated fabric); [wait_event] makes a
    stream's next operation start no earlier than the event.  Waiting on a
    never-recorded event is a no-op, as in CUDA.

    The device's [clock_ns] remains the {e host-visible} synchronized
    time: it only advances when a synchronize runs, and it never delays
    stream work (asynchronous issue is free).  Every operation records a
    span (name, stream, start/end, bytes or grid) into the context's
    timeline, exportable as Chrome [trace_event] JSON via {!Trace}. *)

module Device = Gpusim.Device
module Machine = Gpusim.Machine

type engine = Compute | Copy_h2d | Copy_d2h

let engine_index = function Compute -> 0 | Copy_h2d -> 1 | Copy_d2h -> 2
let engine_name = function Compute -> "compute" | Copy_h2d -> "copyH2D" | Copy_d2h -> "copyD2H"

type stream = {
  sid : int;
  sname : string;
  mutable cursor_ns : float;
      (** all work issued to this stream so far completes by here *)
}

type span = {
  span_name : string;
  cat : string;  (** "kernel" | "memcpy" | ... — the Chrome trace category *)
  span_sid : int;
  start_ns : float;
  end_ns : float;
  args : (string * string) list;
}

type t = {
  device : Device.t;
  mutable streams : stream list;  (** newest first *)
  default : stream;
  mutable next_sid : int;
  engine_free_ns : float array;  (** per-engine timeline: free-at time *)
  mutable spans : span list;  (** newest first *)
}

let create_stream ?name t =
  let sid = t.next_sid in
  let s =
    { sid; sname = (match name with Some n -> n | None -> Printf.sprintf "stream%d" sid);
      cursor_ns = 0.0 }
  in
  t.next_sid <- sid + 1;
  t.streams <- s :: t.streams;
  s

let create device =
  let default = { sid = 0; sname = "stream0"; cursor_ns = 0.0 } in
  {
    device;
    streams = [ default ];
    default;
    next_sid = 1;
    engine_free_ns = Array.make 3 0.0;
    spans = [];
  }

let device t = t.device
let default_stream t = t.default
let stream_id s = s.sid
let stream_name s = s.sname
let cursor_ns s = s.cursor_ns
let spans t = List.rev t.spans
let span_count t = List.length t.spans

(* The discrete-event core: one operation of duration [dur_ns] on [s],
   occupying [engine].  Start = max(stream cursor, engine free); both
   timelines advance to the end. *)
let issue t s ~engine ~name ~cat ~dur_ns ~args =
  let e = engine_index engine in
  let start_ns = Float.max s.cursor_ns t.engine_free_ns.(e) in
  let end_ns = start_ns +. dur_ns in
  s.cursor_ns <- end_ns;
  t.engine_free_ns.(e) <- end_ns;
  t.spans <- { span_name = name; cat; span_sid = s.sid; start_ns; end_ns; args } :: t.spans;
  end_ns

let busy ?(cat = "op") t s ~engine ~name ~ns =
  ignore (issue t s ~engine ~name ~cat ~dur_ns:ns ~args: [ ("engine", engine_name engine) ])

(* A zero-duration annotation at the stream's cursor: unlike [busy] it
   occupies no engine and moves no timeline, so schedulers (the serving
   layer's per-session task markers) can label a trace without
   perturbing the model. *)
let note ?(cat = "marker") t s ~name ~args =
  t.spans <-
    { span_name = name; cat; span_sid = s.sid; start_ns = s.cursor_ns; end_ns = s.cursor_ns;
      args }
    :: t.spans

(* Asynchronous kernel launch: functional execution is immediate (issue
   order = program order, so results are exact); the modeled duration is
   scheduled on the compute engine.  Returns the kernel duration (what the
   auto-tuner probes — queueing delay is not the kernel's fault). *)
let launch ?(name = "kernel") t s (c : Gpusim.Jit.compiled) ~nthreads ~block ~params =
  let ns = Device.execute t.device c ~nthreads ~block ~params in
  ignore
    (issue t s ~engine:Compute ~name ~cat:"kernel" ~dur_ns:ns
       ~args:
         [
           ("grid", string_of_int ((nthreads + block - 1) / max 1 block));
           ("block", string_of_int block);
           ("nthreads", string_of_int nthreads);
         ]);
  ns

(* Asynchronous host<->device copy of [bytes]: the data blit itself is the
   caller's eager host-side operation (host and device memory are both
   process memory here); the copy engine models the PCIe time. *)
let memcpy ?name t s ~bytes ~to_device =
  let ns = Device.transfer_cost t.device ~bytes ~to_device in
  let engine = if to_device then Copy_h2d else Copy_d2h in
  let name =
    match name with Some n -> n | None -> if to_device then "memcpy H2D" else "memcpy D2H"
  in
  ignore (issue t s ~engine ~name ~cat:"memcpy" ~dur_ns:ns ~args:[ ("bytes", string_of_int bytes) ]);
  ns

let memcpy_h2d ?name t s ~bytes = memcpy ?name t s ~bytes ~to_device:true
let memcpy_d2h ?name t s ~bytes = memcpy ?name t s ~bytes ~to_device:false

module Event = struct
  type t = { ename : string; mutable at_ns : float option }

  let create ?(name = "event") () = { ename = name; at_ns = None }
  let name e = e.ename
  let is_recorded e = e.at_ns <> None
  let time_ns e = e.at_ns

  let elapsed_ns a b =
    match (a.at_ns, b.at_ns) with
    | Some x, Some y -> y -. x
    | _ -> invalid_arg "Streams.Event.elapsed_ns: event not recorded"
end

(* cudaEventRecord: capture the stream's work issued so far. *)
let record_event t s (e : Event.t) =
  e.Event.at_ns <- Some s.cursor_ns;
  t.spans <-
    { span_name = e.Event.ename; cat = "event"; span_sid = s.sid; start_ns = s.cursor_ns;
      end_ns = s.cursor_ns; args = [] }
    :: t.spans

(* An event completed by the outside world (a message arrival computed by
   the simulated fabric) at an explicit timestamp. *)
let record_event_at (e : Event.t) ~ns = e.Event.at_ns <- Some ns

(* cuStreamWaitEvent: subsequent work on [s] starts no earlier than the
   event.  A never-recorded event is a no-op (CUDA semantics). *)
let wait_event _t s (e : Event.t) =
  match e.Event.at_ns with
  | None -> ()
  | Some ns -> if ns > s.cursor_ns then s.cursor_ns <- ns

(* cudaEventQuery relative to the host-visible synchronized clock: has the
   captured work provably completed?  Unrecorded events are not complete. *)
let event_query t (e : Event.t) =
  match e.Event.at_ns with None -> false | Some ns -> ns <= Device.clock_ns t.device

(* cudaEventSynchronize: block the host until the event's work completes. *)
let event_synchronize t (e : Event.t) =
  match e.Event.at_ns with
  | None -> ()
  | Some ns -> if ns > Device.clock_ns t.device then Device.set_clock_ns t.device ns

(* cudaStreamSynchronize: the host blocks until the stream drains, which
   advances the host-visible clock to the stream's cursor. *)
let stream_synchronize t s =
  if s.cursor_ns > Device.clock_ns t.device then Device.set_clock_ns t.device s.cursor_ns;
  Device.clock_ns t.device

(* Latest completion time across every timeline, without advancing the
   clock (a pure observation). *)
let horizon t =
  List.fold_left (fun acc s -> Float.max acc s.cursor_ns) (Device.clock_ns t.device) t.streams

(* cudaDeviceSynchronize: drain every stream. *)
let synchronize t =
  Device.set_clock_ns t.device (horizon t);
  Device.clock_ns t.device

(* Rewind every timeline to zero and clear the recorded spans — benchmarks
   call this after warm-up so the trace holds only the measured work.
   Outstanding events keep their (now stale) timestamps; drop them. *)
let reset t =
  Device.set_clock_ns t.device 0.0;
  Array.fill t.engine_free_ns 0 (Array.length t.engine_free_ns) 0.0;
  List.iter (fun s -> s.cursor_ns <- 0.0) t.streams;
  t.spans <- []

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export: a JSON object loadable by chrome://tracing
   or https://ui.perfetto.dev.  One process per context (a device / MPI
   rank), one thread per stream, complete ("X") events with microsecond
   timestamps. *)

module Trace = struct
  let escape s =
    let b = Stdlib.Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Stdlib.Buffer.add_string b "\\\""
        | '\\' -> Stdlib.Buffer.add_string b "\\\\"
        | '\n' -> Stdlib.Buffer.add_string b "\\n"
        | '\t' -> Stdlib.Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 -> Stdlib.Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Stdlib.Buffer.add_char b c)
      s;
    Stdlib.Buffer.contents b

  let add_args b args =
    Stdlib.Buffer.add_string b "{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Stdlib.Buffer.add_string b ",";
        Stdlib.Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
      args;
    Stdlib.Buffer.add_string b "}"

  (* Emit one context's spans plus process/thread naming metadata.
     [first] tracks whether a comma is needed before the next record. *)
  let add_context b ~pid ~pname ~first t =
    let sep () = if !first then first := false else Stdlib.Buffer.add_string b ",\n" in
    sep ();
    Stdlib.Buffer.add_string b
      (Printf.sprintf "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
         pid (escape pname));
    List.iter
      (fun s ->
        sep ();
        Stdlib.Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             pid s.sid (escape s.sname)))
      (List.rev t.streams);
    List.iter
      (fun sp ->
        sep ();
        let ts = sp.start_ns /. 1000.0 and dur = (sp.end_ns -. sp.start_ns) /. 1000.0 in
        if sp.cat = "event" then
          Stdlib.Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,\"s\":\"t\"}"
               (escape sp.span_name) ts pid sp.span_sid)
        else begin
          Stdlib.Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":"
               (escape sp.span_name) (escape sp.cat) ts dur pid sp.span_sid);
          add_args b sp.args;
          Stdlib.Buffer.add_string b "}"
        end)
      (spans t)

  (* [chrome_json ctxs] with one (process-name, context) pair per device. *)
  let chrome_json ctxs =
    let b = Stdlib.Buffer.create 4096 in
    Stdlib.Buffer.add_string b "{\"traceEvents\":[\n";
    let first = ref true in
    List.iteri (fun pid (pname, ctx) -> add_context b ~pid ~pname ~first ctx) ctxs;
    Stdlib.Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
    Stdlib.Buffer.contents b

  let write_file path ctxs =
    let oc = open_out path in
    output_string oc (chrome_json ctxs);
    close_out oc
end
