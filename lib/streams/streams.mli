(** CUDA-style streams and events on the simulated device (the machinery
    behind the paper's Sec. V comm/compute overlap).

    A context owns a set of stream timelines over one {!Gpusim.Device.t},
    advanced by a small discrete-event scheduler: an operation starts at
    the later of its stream's cursor (program order within the stream) and
    the free time of the device engine it occupies — one compute engine
    shared by kernels, plus independent H2D and D2H copy engines, so
    copies overlap kernels but kernels serialize with each other.
    Functional execution stays eager and in host-issue order, keeping
    results bit-exact regardless of how the modeled timelines interleave.

    The device's [clock_ns] remains the {e host-visible} synchronized
    time: it advances only on a synchronize and never delays stream work.
    Every operation records a span into a per-device timeline exportable
    as Chrome [trace_event] JSON via {!Trace}. *)

type engine = Compute | Copy_h2d | Copy_d2h

val engine_name : engine -> string

type stream

type span = {
  span_name : string;
  cat : string;
  span_sid : int;
  start_ns : float;
  end_ns : float;
  args : (string * string) list;
}

type t

val create : Gpusim.Device.t -> t
(** A fresh context with a default stream ("stream0"). *)

val create_stream : ?name:string -> t -> stream
val device : t -> Gpusim.Device.t
val default_stream : t -> stream
val stream_id : stream -> int
val stream_name : stream -> string

val cursor_ns : stream -> float
(** The time by which all work issued to the stream so far completes. *)

val spans : t -> span list
(** Recorded spans in issue order. *)

val span_count : t -> int

val launch :
  ?name:string ->
  t ->
  stream ->
  Gpusim.Jit.compiled ->
  nthreads:int ->
  block:int ->
  params:Gpusim.Vm.param_value array ->
  float
(** Asynchronous kernel launch on a stream: executes functionally at issue
    (results are exact), schedules the modeled duration on the compute
    engine, and returns that duration in ns (the auto-tuner's probe
    signal; queueing delay excluded).  Raises
    {!Gpusim.Device.Launch_failure} if the configuration does not fit. *)

val memcpy_h2d : ?name:string -> t -> stream -> bytes:int -> float
(** Asynchronous host-to-device copy on the H2D copy engine; returns the
    modeled duration in ns.  The data blit itself is the caller's eager
    host-side operation. *)

val memcpy_d2h : ?name:string -> t -> stream -> bytes:int -> float

val busy : ?cat:string -> t -> stream -> engine:engine -> name:string -> ns:float -> unit
(** A generic modeled operation of [ns] on [engine] (e.g. the scatter of a
    received face). *)

val note : ?cat:string -> t -> stream -> name:string -> args:(string * string) list -> unit
(** A zero-duration span at the stream's cursor: a timeline annotation
    that occupies no engine and delays nothing.  The serving layer marks
    per-session task completions with it, so a Chrome trace shows each
    session's timeline without perturbing the model. *)

(** Events capture a point in a stream's timeline. *)
module Event : sig
  type t

  val create : ?name:string -> unit -> t
  val name : t -> string
  val is_recorded : t -> bool
  val time_ns : t -> float option

  val elapsed_ns : t -> t -> float
  (** cudaEventElapsedTime (in ns); raises [Invalid_argument] if either
      event is unrecorded. *)
end

val record_event : t -> stream -> Event.t -> unit
(** cudaEventRecord: capture the stream's work issued so far. *)

val record_event_at : Event.t -> ns:float -> unit
(** Complete an event at an explicit timestamp — used for completions
    computed outside the device, e.g. message arrivals from the simulated
    fabric. *)

val wait_event : t -> stream -> Event.t -> unit
(** cuStreamWaitEvent: subsequent work on the stream starts no earlier
    than the event.  Waiting on a never-recorded event is a no-op (CUDA
    semantics). *)

val event_query : t -> Event.t -> bool
(** Has the event's captured work provably completed, relative to the
    host-visible synchronized clock?  Unrecorded events are incomplete. *)

val event_synchronize : t -> Event.t -> unit
(** Block the host (advance the clock) until the event completes. *)

val stream_synchronize : t -> stream -> float
(** cudaStreamSynchronize: advance the host-visible clock to the stream's
    cursor; returns the clock. *)

val horizon : t -> float
(** Latest completion time across all timelines — a pure observation that
    does not advance the clock. *)

val synchronize : t -> float
(** cudaDeviceSynchronize: drain every stream, advancing the clock to
    {!horizon}; returns the clock. *)

val reset : t -> unit
(** Rewind all timelines to zero and clear recorded spans (benchmarks call
    this after warm-up so the trace holds only the measured work). *)

(** Chrome [trace_event] JSON export: one process per context (device /
    rank), one thread per stream, loadable in chrome://tracing or
    Perfetto. *)
module Trace : sig
  val chrome_json : (string * t) list -> string
  (** One (process name, context) pair per device. *)

  val write_file : string -> (string * t) list -> unit
end
