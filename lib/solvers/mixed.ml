(** Mixed-precision defect-correction solver (the QUDA strategy of
    Ref. 2: "solving lattice QCD systems of equations using mixed
    precision solvers on GPUs").

    The outer loop keeps a double-precision residual; each correction is
    obtained by an inner single-precision CG on the normal operator.
    Cross-precision assignments round at the store, exactly the implicit
    conversion semantics of the expression layer. *)

module Shape = Layout.Shape
module Field = Qdp.Field
module Expr = Qdp.Expr

type result = { outer_iterations : int; inner_iterations : int; residual : float; converged : bool }

(* [ops64]/[op64] work at F64, [ops32]/[op32] at F32 on the same geometry. *)
let solve (ops64 : Ops.t) (op64 : Ops.linop) (ops32 : Ops.t) (op32 : Ops.linop) ~b ~x
    ?(tol = 1e-10) ?(inner_tol = 1e-5) ?(max_outer = 50) ?(max_inner = 500) () =
  if ops32.Ops.shape.Shape.prec <> Shape.F32 then
    invalid_arg "Mixed.solve: inner ops must be single precision";
  let f = Expr.field in
  let r = ops64.Ops.fresh () and tmp = ops64.Ops.fresh () and e64 = ops64.Ops.fresh () in
  let r32 = ops32.Ops.fresh () and e32 = ops32.Ops.fresh () in
  let b_norm = sqrt (ops64.Ops.norm2 (f b)) in
  let scale = if b_norm > 0.0 then b_norm else 1.0 in
  let outer = ref 0 and inner = ref 0 in
  op64.Ops.apply tmp x;
  ops64.Ops.assign r (Expr.sub (f b) (f tmp));
  let res = ref (sqrt (ops64.Ops.norm2 (f r))) in
  let converged = ref (!res <= tol *. scale) in
  let stagnated = ref false in
  while (not !converged) && (not !stagnated) && !outer < max_outer do
    incr outer;
    (* Truncate the residual to single precision and solve A e = r there. *)
    ops32.Ops.assign r32 (f r);
    Field.fill_constant e32 0.0;
    let inner_result = Cg.solve ops32 op32 ~b:r32 ~x:e32 ~tol:inner_tol ~max_iter:max_inner () in
    inner := !inner + inner_result.Cg.iterations;
    (* Promote the correction and update solution + true residual. *)
    ops64.Ops.assign e64 (f e32);
    ops64.Ops.assign x (Expr.add (f x) (f e64));
    op64.Ops.apply tmp x;
    ops64.Ops.assign r (Expr.sub (f b) (f tmp));
    let new_res = sqrt (ops64.Ops.norm2 (f r)) in
    if new_res >= !res && !outer > 1 then
      (* Stagnation at the single-precision floor: stop honestly. *)
      stagnated := true;
    res := new_res;
    if !res <= tol *. scale then converged := true
  done;
  { outer_iterations = !outer; inner_iterations = !inner; residual = !res /. scale; converged = !converged }

type reliable_result = {
  iterations : int;  (** total half-precision CG iterations *)
  reliable_updates : int;
  residual : float;
  converged : bool;
}

(* Reliable-update CG (the QUDA half-precision strategy): the Krylov
   iteration runs entirely on f16-storage vectors (computed in f32
   registers), and whenever the iterated residual has dropped by the
   factor [delta] the true residual is recomputed in f64 and the
   iteration restarts from it.  Two scalings make half precision viable
   down to f64 tolerances: the solution is accumulated in f64 across
   reliable updates (the f16 vectors only ever hold one cycle's
   correction), and each cycle solves against the *normalized* residual
   r/|r| so the f16 exponent range sees O(1) data no matter how small
   the true residual has become. *)
let solve_reliable (ops64 : Ops.t) (op64 : Ops.linop) (ops16 : Ops.t) (op16 : Ops.linop) ~b ~x
    ?(tol = 1e-10) ?(delta = 0.1) ?(max_iter = 1000) () =
  if ops16.Ops.shape.Shape.prec <> Shape.F16 then
    invalid_arg "Mixed.solve_reliable: inner ops must be half precision";
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Mixed.solve_reliable: delta must be in (0,1)";
  let f = Expr.field in
  let r64 = ops64.Ops.fresh () and tmp64 = ops64.Ops.fresh () and e64 = ops64.Ops.fresh () in
  let r16 = ops16.Ops.fresh ()
  and p16 = ops16.Ops.fresh ()
  and ap16 = ops16.Ops.fresh ()
  and xs16 = ops16.Ops.fresh () in
  let b_norm = sqrt (ops64.Ops.norm2 (f b)) in
  let scale = if b_norm > 0.0 then b_norm else 1.0 in
  op64.Ops.apply tmp64 x;
  ops64.Ops.assign r64 (Expr.sub (f b) (f tmp64));
  let true_res = ref (sqrt (ops64.Ops.norm2 (f r64))) in
  let converged = ref (!true_res <= tol *. scale) in
  let stagnated = ref false in
  let iters = ref 0 and reliable = ref 0 in
  while (not !converged) && (not !stagnated) && !iters < max_iter do
    (* One reliable cycle on the normalized residual: solve A e = r/|r|
       in half precision until the iterated residual falls below
       [delta] (or below what f64 convergence itself requires). *)
    let nr = !true_res in
    ops16.Ops.assign r16 (Expr.mul (Expr.const_real (1.0 /. nr)) (f r64));
    ops16.Ops.assign p16 (f r16);
    Field.fill_constant xs16 0.0;
    let rr = ref (ops16.Ops.norm2 (f r16)) in
    let inner_target = Float.max delta (tol *. scale /. nr) in
    let cycle_done = ref (sqrt !rr <= inner_target) in
    while (not !cycle_done) && !iters < max_iter do
      incr iters;
      op16.Ops.apply ap16 p16;
      let pap, _ = ops16.Ops.inner (f p16) (f ap16) in
      if pap <= 0.0 then
        (* The half-precision floor broke positive definiteness: fold
           what this cycle gathered and let the f64 residual decide. *)
        cycle_done := true
      else begin
        let alpha = !rr /. pap in
        ops16.Ops.assign xs16 (Ops.rxpy ~alpha p16 xs16);
        ops16.Ops.assign r16 (Ops.rxpy ~alpha:(-.alpha) ap16 r16);
        let rr_new = ops16.Ops.norm2 (f r16) in
        let beta = rr_new /. !rr in
        rr := rr_new;
        if sqrt !rr <= inner_target then cycle_done := true
        else ops16.Ops.assign p16 (Ops.rxpy ~alpha:beta p16 r16)
      end
    done;
    (* Reliable update: promote the cycle's correction, accumulate into
       the f64 solution at the cycle's scale, recompute the residual
       from scratch in f64. *)
    incr reliable;
    ops64.Ops.assign e64 (f xs16);
    ops64.Ops.assign x (Ops.rxpy ~alpha:nr e64 x);
    op64.Ops.apply tmp64 x;
    ops64.Ops.assign r64 (Expr.sub (f b) (f tmp64));
    let tr = sqrt (ops64.Ops.norm2 (f r64)) in
    if tr <= tol *. scale then converged := true
    else if tr >= nr then
      (* No progress over a whole cycle: the half-precision floor. *)
      stagnated := true;
    true_res := tr
  done;
  {
    iterations = !iters;
    reliable_updates = !reliable;
    residual = !true_res /. scale;
    converged = !converged;
  }
