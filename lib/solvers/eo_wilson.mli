(** Even-odd (red-black) preconditioned Wilson solves.

    The hopping term only connects opposite parities, so the Schur
    complement on the even checkerboard,

      Mhat = 1 - kappa^2 D_eo D_oe,

    halves the solve volume and improves the condition number — standard
    production preconditioning in Chroma, and what the QDP-JIT subset
    (site-list) kernels exist for.  Mhat is gamma5-Hermitian on the even
    sublattice, so CG runs on its normal equations with the same gamma5
    trick as the full operator.

    On the JIT engine the interleaved even/odd assignments fuse within
    their own (subset, geometry) runs of the deferred launch queue, and
    each iteration's norm2/inner payload splices into the pending even
    group ([bench: fusion --eo] gates both effects). *)

type result = {
  iterations : int;  (** CG iterations on the even checkerboard *)
  residual : float;  (** relative residual of the *full* operator M x = b *)
  converged : bool;
}

val schur_op : Ops.t -> ?coeffs:float array -> kappa:float -> Lqcd.Gauge.links -> Ops.linop
(** Mhat over the even checkerboard. *)

val schur_normal_op :
  Ops.t -> ?coeffs:float array -> kappa:float -> Lqcd.Gauge.links -> Ops.linop

val solve :
  Ops.t ->
  ?coeffs:float array ->
  kappa:float ->
  Lqcd.Gauge.links ->
  b:Qdp.Field.t ->
  x:Qdp.Field.t ->
  ?tol:float ->
  ?max_iter:int ->
  unit ->
  result
(** Solve M x = b through the even-odd decomposition; [x] receives the
    full-lattice solution and the reported residual is measured against
    the full operator. *)
