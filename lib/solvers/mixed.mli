(** Mixed-precision defect-correction solver (the QUDA strategy of the
    paper's Ref. 2).

    The outer loop keeps a double-precision residual; each correction is
    an inner single-precision CG on the normal operator.  Cross-precision
    assignments round at the store — the expression layer's implicit
    conversion semantics. *)

type result = {
  outer_iterations : int;
  inner_iterations : int;  (** total f32 CG iterations *)
  residual : float;
  converged : bool;
}

val solve :
  Ops.t ->
  Ops.linop ->
  Ops.t ->
  Ops.linop ->
  b:Qdp.Field.t ->
  x:Qdp.Field.t ->
  ?tol:float ->
  ?inner_tol:float ->
  ?max_outer:int ->
  ?max_inner:int ->
  unit ->
  result
(** [solve ops64 op64 ops32 op32 ...]: the f32 instances must act on the
    same geometry at F32.  Stagnation at the single-precision floor stops
    the iteration honestly. *)

type reliable_result = {
  iterations : int;  (** total half-precision CG iterations *)
  reliable_updates : int;  (** f64 true-residual recomputations *)
  residual : float;
  converged : bool;
}

val solve_reliable :
  Ops.t ->
  Ops.linop ->
  Ops.t ->
  Ops.linop ->
  b:Qdp.Field.t ->
  x:Qdp.Field.t ->
  ?tol:float ->
  ?delta:float ->
  ?max_iter:int ->
  unit ->
  reliable_result
(** [solve_reliable ops64 op64 ops16 op16 ...]: reliable-update CG, the
    QUDA half-precision strategy.  The Krylov iteration runs on
    f16-storage vectors (f32 compute registers); whenever the iterated
    residual drops by the factor [delta] (default 0.1) a reliable update
    recomputes the true residual in f64 and restarts the iteration from
    it.  The solution accumulates in f64 and each cycle solves against
    the normalized residual, so the method reaches full f64 tolerances
    despite the narrow f16 exponent range.  The f16 instances must act on
    the same geometry at F16; [delta] must lie in (0,1). *)
