(** Site-level value algebra, generic over the scalar semantics.

    A [value] is one lattice site's element: a flat array of scalars in the
    canonical component order of {!Layout.Index.linear_component}.  With
    [S = Scalar.Float_scalar] the functions below *compute*; with the
    QDP-JIT register emitter they *generate kernel code*.  Keeping a single
    source for both is what makes the CPU-vs-JIT equivalence tests meaningful:
    they then exercise the whole PTX pipeline rather than two independently
    written math stacks. *)

module Make (S : Scalar.S) = struct
  type value = { shape : Layout.Shape.t; data : S.t array }

  open Layout

  let create shape = { shape; data = Array.make (Shape.dof shape) (S.const 0.0) }

  let of_array shape data =
    if Array.length data <> Shape.dof shape then
      invalid_arg "Site.of_array: component count mismatch";
    { shape; data = Array.copy data }

  let of_floats shape floats = of_array shape (Array.map S.const floats)

  (* Read component (spin s, color c) as a complex pair; real shapes give a
     constant-zero imaginary part (folded away by code-generating scalars). *)
  let get v ~spin ~color =
    let re = v.data.(Index.linear_component v.shape ~spin ~color ~reality:0) in
    match v.shape.Shape.reality with
    | Shape.Real -> (re, S.const 0.0)
    | Shape.Cplx -> (re, v.data.(Index.linear_component v.shape ~spin ~color ~reality:1))

  let set v ~spin ~color (re, im) =
    v.data.(Index.linear_component v.shape ~spin ~color ~reality:0) <- re;
    match v.shape.Shape.reality with
    | Shape.Real -> ()
    | Shape.Cplx -> v.data.(Index.linear_component v.shape ~spin ~color ~reality:1) <- im

  (* Complex helpers over scalar pairs. *)
  let c_add (ar, ai) (br, bi) = (S.add ar br, S.add ai bi)
  let c_sub (ar, ai) (br, bi) = (S.sub ar br, S.sub ai bi)
  let c_neg (ar, ai) = (S.neg ar, S.neg ai)
  let c_conj (ar, ai) = (ar, S.neg ai)
  let c_mul (ar, ai) (br, bi) = (S.sub (S.mul ar br) (S.mul ai bi), S.add (S.mul ar bi) (S.mul ai br))

  let c_fma (ar, ai) (br, bi) (cr, ci) =
    (* a*b + c with fused scalar ops where available. *)
    (S.fma ar br (S.fma (S.neg ai) bi cr), S.fma ar bi (S.fma ai br ci))

  let c_zero = (S.const 0.0, S.const 0.0)
  let c_times_i (ar, ai) = (S.neg ai, ar)

  let map_components ~result_shape f =
    let out = create result_shape in
    let is_ = Shape.spin_extent result_shape.Shape.spin in
    let ic = Shape.color_extent result_shape.Shape.color in
    for s = 0 to is_ - 1 do
      for c = 0 to ic - 1 do
        set out ~spin:s ~color:c (f ~spin:s ~color:c)
      done
    done;
    out

  let map2 f a b =
    let result_shape = Algebra.add_shape a.shape b.shape in
    map_components ~result_shape (fun ~spin ~color -> f (get a ~spin ~color) (get b ~spin ~color))

  let add a b = map2 c_add a b
  let sub a b = map2 c_sub a b

  let neg v = map_components ~result_shape:v.shape (fun ~spin ~color -> c_neg (get v ~spin ~color))

  let conj v =
    map_components ~result_shape:v.shape (fun ~spin ~color -> c_conj (get v ~spin ~color))

  let times_i v =
    if v.shape.Shape.reality <> Shape.Cplx then
      raise (Algebra.Type_error "times_i: operand must be complex");
    map_components ~result_shape:v.shape (fun ~spin ~color -> c_times_i (get v ~spin ~color))

  (* Index transposition at a matrix level; identity for scalars. *)
  let transpose_index extent_kind idx =
    match extent_kind with
    | `Scalar -> idx
    | `Matrix n ->
        let i = idx / n and j = idx mod n in
        (j * n) + i

  let matrix_kind_spin = function
    | Shape.Spin_scalar -> `Scalar
    | Shape.Spin_matrix n -> `Matrix n
    | s ->
        raise
          (Algebra.Type_error
             (Printf.sprintf "adj/transpose: bad spin structure %d" (Shape.spin_extent s)))

  let matrix_kind_color = function
    | Shape.Color_scalar -> `Scalar
    | Shape.Color_matrix n -> `Matrix n
    | c ->
        raise
          (Algebra.Type_error
             (Printf.sprintf "adj/transpose: bad color structure %d" (Shape.color_extent c)))

  let transpose v =
    let result_shape = Algebra.transpose_shape v.shape in
    let ks = matrix_kind_spin v.shape.Shape.spin in
    let kc = matrix_kind_color v.shape.Shape.color in
    map_components ~result_shape
      (fun ~spin ~color ->
        get v ~spin:(transpose_index ks spin) ~color:(transpose_index kc color))

  let adj v =
    let result_shape = Algebra.adj_shape v.shape in
    let ks = matrix_kind_spin v.shape.Shape.spin in
    let kc = matrix_kind_color v.shape.Shape.color in
    map_components ~result_shape
      (fun ~spin ~color ->
        c_conj (get v ~spin:(transpose_index ks spin) ~color:(transpose_index kc color)))

  let mul a b =
    let result_shape = Algebra.mul_shape a.shape b.shape in
    let _, spin_con = Algebra.spin_contraction a.shape.Shape.spin b.shape.Shape.spin in
    let _, color_con = Algebra.color_contraction a.shape.Shape.color b.shape.Shape.color in
    (* A structurally Real operand has no imaginary component, so the
       cross terms of the complex product are dropped rather than
       multiplied by a promoted 0: the JIT scalar folds 0-products away
       at emission, and the concrete evaluator must match it even for
       non-finite data (0 * inf would otherwise inject a NaN the
       generated kernel never computes). *)
    let a_real = a.shape.Shape.reality = Shape.Real in
    let b_real = b.shape.Shape.reality = Shape.Real in
    map_components ~result_shape
      (fun ~spin ~color ->
        List.fold_left
          (fun acc (sa, sb) ->
            List.fold_left
              (fun acc (ca, cb) ->
                let ((xr, xi) as x) = get a ~spin:sa ~color:ca in
                let ((yr, yi) as y) = get b ~spin:sb ~color:cb in
                if a_real then
                  let cr, ci = acc in
                  (S.fma xr yr cr, S.fma xr yi ci)
                else if b_real then
                  let cr, ci = acc in
                  (S.fma xr yr cr, S.fma xi yr ci)
                else c_fma x y acc)
              acc color_con.Algebra.pairs.(color))
          c_zero spin_con.Algebra.pairs.(spin))

  let trace_color v =
    let result_shape = Algebra.trace_color_shape v.shape in
    let n = match v.shape.Shape.color with Shape.Color_matrix n -> n | _ -> assert false in
    map_components ~result_shape
      (fun ~spin ~color ->
        ignore color;
        let acc = ref c_zero in
        for i = 0 to n - 1 do
          acc := c_add !acc (get v ~spin ~color:((i * n) + i))
        done;
        !acc)

  let trace_spin v =
    let result_shape = Algebra.trace_spin_shape v.shape in
    let n = match v.shape.Shape.spin with Shape.Spin_matrix n -> n | _ -> assert false in
    map_components ~result_shape
      (fun ~spin ~color ->
        ignore spin;
        let acc = ref c_zero in
        for i = 0 to n - 1 do
          acc := c_add !acc (get v ~spin:((i * n) + i) ~color)
        done;
        !acc)

  let real v =
    let result_shape = Algebra.real_shape v.shape in
    map_components ~result_shape
      (fun ~spin ~color ->
        let re, _ = get v ~spin ~color in
        (re, S.const 0.0))

  let imag v =
    let result_shape = Algebra.real_shape v.shape in
    map_components ~result_shape
      (fun ~spin ~color ->
        let _, im = get v ~spin ~color in
        (im, S.const 0.0))

  (* traceSpin(outerProduct(a, adj b)): out[i,j] = sum_s a[s,i] conj(b[s,j]). *)
  let outer_color a b =
    let result_shape = Algebra.outer_color_shape a.shape b.shape in
    let ns = Shape.spin_extent a.shape.Shape.spin in
    let n = match result_shape.Shape.color with Shape.Color_matrix n -> n | _ -> assert false in
    map_components ~result_shape
      (fun ~spin ~color ->
        ignore spin;
        let i = color / n and j = color mod n in
        let acc = ref c_zero in
        for s = 0 to ns - 1 do
          acc := c_fma (get a ~spin:s ~color:i) (c_conj (get b ~spin:s ~color:j)) !acc
        done;
        !acc)

  (* Packed clover application (Sec. VI-A).  For block b of 2, the 6-vector
     is psi[spin 2b + s', color c] with flat index i = 3 s' + c; the block
     matrix is diag[b,i] on the diagonal, tri[b, k(i,j)] strictly below
     (k(i,j) = i(i-1)/2 + j for i > j) and Hermitian conjugate above. *)
  let clover_apply ~diag ~tri psi =
    let result_shape = Algebra.clover_shapes ~diag:diag.shape ~tri:tri.shape ~psi:psi.shape in
    let psi_comp b i = get psi ~spin:((2 * b) + (i / 3)) ~color:(i mod 3) in
    let out = create result_shape in
    for b = 0 to 1 do
      for i = 0 to 5 do
        let acc = ref c_zero in
        (* Diagonal: real. *)
        let d, _ = get diag ~spin:b ~color:i in
        let vr, vi = psi_comp b i in
        acc := c_add !acc (S.mul d vr, S.mul d vi);
        (* Strictly lower part: tri[k(i,j)] * psi_j for j < i. *)
        for j = 0 to i - 1 do
          let k = (i * (i - 1) / 2) + j in
          acc := c_fma (get tri ~spin:b ~color:k) (psi_comp b j) !acc
        done;
        (* Upper part by Hermitian conjugation: conj(tri[k(j,i)]) for j > i. *)
        for j = i + 1 to 5 do
          let k = (j * (j - 1) / 2) + i in
          acc := c_fma (c_conj (get tri ~spin:b ~color:k)) (psi_comp b j) !acc
        done;
        set out ~spin:((2 * b) + (i / 3)) ~color:(i mod 3) !acc
      done
    done;
    out

  (* Gauge compression (QUDA's 12-real storage, paper Sec. VIII-C):
     compress keeps rows 0 and 1 of an SU(3) matrix; reconstruct rebuilds
     row 2 as the conjugate cross product r2 = conj(r0 x r1), valid for
     special unitary matrices. *)
  let compress v =
    let result_shape = Algebra.compress_shape v.shape in
    map_components ~result_shape (fun ~spin ~color ->
        ignore spin;
        get v ~spin:0 ~color)

  let reconstruct v =
    let result_shape = Algebra.reconstruct_shape v.shape in
    (* rows as functions: row r, column c of the compressed storage is
       component index 3r + c (r < 2). *)
    let entry r c = get v ~spin:0 ~color:((3 * r) + c) in
    let cross i j = c_conj (c_sub (c_mul (entry 0 i) (entry 1 j)) (c_mul (entry 0 j) (entry 1 i))) in
    map_components ~result_shape (fun ~spin ~color ->
        ignore spin;
        let i = color / 3 and j = color mod 3 in
        if i < 2 then entry i j
        else
          match j with
          | 0 -> cross 1 2
          | 1 -> cross 2 0
          | _ -> cross 0 1)

  (* Local (per-site) reductions. *)
  let norm2_local v =
    let result_shape = Shape.real_scalar v.shape.Shape.prec in
    let is_ = Shape.spin_extent v.shape.Shape.spin in
    let ic = Shape.color_extent v.shape.Shape.color in
    let acc = ref (S.const 0.0) in
    for s = 0 to is_ - 1 do
      for c = 0 to ic - 1 do
        let re, im = get v ~spin:s ~color:c in
        acc := S.fma re re !acc;
        match v.shape.Shape.reality with
        | Shape.Cplx -> acc := S.fma im im !acc
        | Shape.Real -> ()
      done
    done;
    of_array result_shape [| !acc |]

  let inner_local a b =
    if not (Shape.equal_modulo_prec a.shape b.shape) then
      raise (Algebra.Type_error "inner_local: shape mismatch");
    let prec = Shape.promote_prec a.shape.Shape.prec b.shape.Shape.prec in
    let result_shape = Shape.complex_scalar prec in
    let is_ = Shape.spin_extent a.shape.Shape.spin in
    let ic = Shape.color_extent a.shape.Shape.color in
    (* Same structural-Real rule as [mul]: a Real operand contributes no
       imaginary cross terms (its promoted 0 never multiplies data). *)
    let a_real = a.shape.Shape.reality = Shape.Real in
    let b_real = b.shape.Shape.reality = Shape.Real in
    let acc = ref c_zero in
    for s = 0 to is_ - 1 do
      for c = 0 to ic - 1 do
        let xr, xi = get a ~spin:s ~color:c in
        let yr, yi = get b ~spin:s ~color:c in
        let cr, ci = !acc in
        acc :=
          (if a_real then (S.fma xr yr cr, S.fma xr yi ci)
           else if b_real then (S.fma xr yr cr, S.fma (S.neg xi) yr ci)
           else c_fma (c_conj (xr, xi)) (yr, yi) !acc)
      done
    done;
    let out = create result_shape in
    set out ~spin:0 ~color:0 !acc;
    out
end
