(* IEEE 754 binary16: 1 sign bit, 5 exponent bits (bias 15), 10
   significand bits.  Encode rounds to nearest, ties to even; decode is
   exact (binary16 is a subset of binary64).  Everything goes through
   the double's bit pattern so the conversion is deterministic and
   identical on every backend. *)

let exp_mask = 0x7c00
let sig_mask = 0x3ff

let bits_of_float x =
  let b = Int64.bits_of_float x in
  let sign = Int64.to_int (Int64.shift_right_logical b 48) land 0x8000 in
  let e = Int64.to_int (Int64.shift_right_logical b 52) land 0x7ff in
  let m = Int64.logand b 0xF_FFFF_FFFF_FFFFL in
  if e = 0x7ff then
    if m = 0L then sign lor exp_mask (* infinity *)
    else
      (* NaN: carry the top ten payload bits; quieten an all-zero
         payload so it stays a NaN. *)
      let p = Int64.to_int (Int64.shift_right_logical m 42) in
      sign lor exp_mask lor (if p = 0 then 0x200 else p)
  else
    let eu = e - 1023 in
    if eu > 15 then sign lor exp_mask (* overflow to infinity *)
    else if eu >= -14 then begin
      (* Normal range: round the 52-bit significand to 10 bits.  A
         carry out of the significand propagates into the exponent by
         plain addition, and past the top exponent into infinity. *)
      let frac = Int64.to_int (Int64.shift_right_logical m 42) in
      let rem = Int64.logand m 0x3FF_FFFF_FFFFL in
      let half = 0x200_0000_0000L in
      let frac =
        if rem > half || (rem = half && frac land 1 = 1) then frac + 1 else frac
      in
      let v = ((eu + 15) lsl 10) + frac in
      if v >= exp_mask then sign lor exp_mask else sign lor v
    end
    else if eu >= -25 then begin
      (* Subnormal range: the result is round(sig / 2^(28-eu)) units of
         2^-24, sig being the full 53-bit significand. *)
      let sig_ = Int64.logor (Int64.shift_left 1L 52) m in
      let shift = 28 - eu in
      let frac = Int64.to_int (Int64.shift_right_logical sig_ shift) in
      let rem = Int64.logand sig_ (Int64.sub (Int64.shift_left 1L shift) 1L) in
      let half = Int64.shift_left 1L (shift - 1) in
      let frac =
        if rem > half || (rem = half && frac land 1 = 1) then frac + 1 else frac
      in
      (* frac = 0x400 is exactly the smallest normal's encoding. *)
      sign lor frac
    end
    else sign (* underflow (including double subnormals) to signed zero *)

let float_of_bits h =
  let h = h land 0xffff in
  let sign = if h land 0x8000 <> 0 then Int64.min_int else 0L in
  let e = (h lsr 10) land 0x1f in
  let m = h land sig_mask in
  let mag =
    if e = 0x1f then
      if m = 0 then 0x7FF0_0000_0000_0000L
      else Int64.logor 0x7FF0_0000_0000_0000L (Int64.shift_left (Int64.of_int m) 42)
    else if e = 0 then
      if m = 0 then 0L
      else begin
        (* Subnormal: normalize the significand into 1.m form. *)
        let e' = ref 1 and m' = ref m in
        while !m' land 0x400 = 0 do
          decr e';
          m' := !m' lsl 1
        done;
        let de = !e' - 15 + 1023 in
        Int64.logor
          (Int64.shift_left (Int64.of_int de) 52)
          (Int64.shift_left (Int64.of_int (!m' land sig_mask)) 42)
      end
    else
      Int64.logor
        (Int64.shift_left (Int64.of_int (e - 15 + 1023)) 52)
        (Int64.shift_left (Int64.of_int m) 42)
  in
  Int64.float_of_bits (Int64.logor sign mag)

let round x = float_of_bits (bits_of_float x)

let is_exact x =
  Int64.bits_of_float (round x) = Int64.bits_of_float x
