(** IEEE 754 binary16 conversion, in software.

    The F16 storage tier keeps fields as 16-bit payloads and computes in
    wider precision: loads decode the payload exactly (every binary16
    value is representable as a double), stores round to
    nearest-even.  Both the CPU evaluator and the device VM must round
    through this one implementation — that identity is what makes F16
    results bit-exact across backends. *)

val bits_of_float : float -> int
(** Round a double to binary16, to-nearest ties-to-even, returning the
    16-bit payload.  Overflow goes to infinity, underflow through the
    subnormal range to (signed) zero; NaNs stay NaNs (the top ten
    significand bits are kept, or quietened to a nonzero payload). *)

val float_of_bits : int -> float
(** Exact decode of a 16-bit payload (only the low 16 bits are read).
    Normals, subnormals, infinities and NaN payloads all map to the
    corresponding double. *)

val round : float -> float
(** [float_of_bits (bits_of_float x)]: the value a binary16 store
    followed by a load would produce. *)

val is_exact : float -> bool
(** Whether a double survives the binary16 round trip bit-for-bit. *)
