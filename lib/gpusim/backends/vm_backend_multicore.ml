(** Multicore grid-sweep back-end (OCaml >= 5): a persistent pool of
    domains woken once per sweep by a single generation broadcast.

    The old pool fed each worker through its own mailbox, which meant
    every launch paid one mutex/condvar handoff per worker — fatal for
    batched sweeps whose whole point is that the schedule is drained
    cooperatively off a shared cursor.  Here the pool shares one mutex,
    one "new sweep" condition and a generation counter: [run] publishes
    the worker function, bumps the generation and broadcasts once; every
    domain wakes, claims its fixed index, runs the function and counts
    down a completion latch.  Domains whose index is outside the
    requested width simply go back to sleep until the next generation.

    The pool grows on demand up to the largest worker count any sweep
    requests and is torn down from [at_exit], so domains never outlive
    the runtime.  [run] hands worker [0] to the calling thread — a
    one-worker sweep never touches the pool — and blocks until every
    worker returns, which keeps sweeps synchronous exactly like the
    sequential interpreter.

    Not reentrant: sweeps are synchronous and issued from one thread at
    a time, so at most one [run] is in flight.

    The pool is execution-strategy agnostic: workers claim (launch,
    cta-span) items off the VM's shared cursor exactly the same whether
    a span then runs through the scalar interpreter or the lane-blocked
    superinstruction (SoA) executor — fused units, column-resident
    memory ops and division islands all retire inside one cta before
    the worker claims its next span, so the schedule, the dependency
    edges and the lowest-(launch, ctaid, tid)-wins fault protocol are
    unchanged by the dispatch strategy. *)

let runtime = "multicore"
let available_domains () = Domain.recommended_domain_count ()

type pool = {
  m : Mutex.t;
  work : Condition.t; (* a new generation was published *)
  finished : Condition.t; (* the latch reached zero *)
  mutable gen : int;
  mutable job : (int -> unit) option;
  mutable width : int; (* workers participating in the current sweep *)
  mutable remaining : int; (* participating helpers still running *)
  mutable stop : bool;
}

let pool =
  {
    m = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    gen = 0;
    job = None;
    width = 0;
    remaining = 0;
    stop = false;
  }

let spawned : unit Domain.t list ref = ref []

(* [seen0] is the generation current when the domain was created, read
   by the spawning thread before it publishes the sweep the domain is
   being grown for — a late-starting domain can therefore never miss
   the sweep that counts on it. *)
let worker_loop d seen0 =
  let seen = ref seen0 in
  let rec next () =
    Mutex.lock pool.m;
    while pool.gen = !seen && not pool.stop do
      Condition.wait pool.work pool.m
    done;
    if pool.stop then Mutex.unlock pool.m
    else begin
      seen := pool.gen;
      let job = pool.job and width = pool.width in
      Mutex.unlock pool.m;
      if d < width then begin
        (* [f] must not raise (the VM records faults out of band); the
           guard keeps a buggy worker from wedging the pool forever. *)
        (match job with Some f -> ( try f d with _ -> ()) | None -> ());
        Mutex.lock pool.m;
        pool.remaining <- pool.remaining - 1;
        if pool.remaining = 0 then Condition.signal pool.finished;
        Mutex.unlock pool.m
      end;
      next ()
    end
  in
  next ()

let shutdown () =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  List.iter Domain.join !spawned;
  spawned := [];
  pool.stop <- false

let ensure extra =
  let have = List.length !spawned in
  if extra > have then begin
    if have = 0 then at_exit shutdown;
    let seen0 = pool.gen in
    for d = have + 1 to extra do
      spawned := Domain.spawn (fun () -> worker_loop d seen0) :: !spawned
    done
  end

let run ~workers f =
  if workers <= 1 then f 0
  else begin
    ensure (workers - 1);
    Mutex.lock pool.m;
    pool.job <- Some f;
    pool.width <- workers;
    pool.remaining <- workers - 1;
    pool.gen <- pool.gen + 1;
    Condition.broadcast pool.work;
    Mutex.unlock pool.m;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock pool.m;
        while pool.remaining > 0 do
          Condition.wait pool.finished pool.m
        done;
        pool.job <- None;
        Mutex.unlock pool.m)
      (fun () -> f 0)
  end
