(** Multicore grid-sweep back-end (OCaml >= 5): a small persistent pool
    of domains fed through per-worker mailboxes.

    The pool grows on demand up to the largest worker count any launch
    requests and is torn down from [at_exit], so domains never outlive
    the runtime.  [run] hands worker [0] to the calling thread — a
    one-worker sweep never pays a dispatch — and blocks until every
    worker returns, which keeps kernel launches synchronous exactly like
    the sequential interpreter.  Completion is signalled through a
    condition variable rather than a spin loop so oversubscribed hosts
    (more workers than cores) context-switch instead of burning a
    scheduler quantum per handoff.

    Not reentrant: launches are synchronous and issued from one thread
    at a time, so at most one [run] is in flight. *)

let runtime = "multicore"
let available_domains () = Domain.recommended_domain_count ()

type slot = {
  m : Mutex.t;
  cv : Condition.t;
  mutable job : (unit -> unit) option;
  mutable stop : bool;
}

let slots : slot array ref = ref [||]
let spawned : unit Domain.t list ref = ref []

let worker_loop slot =
  let rec next () =
    Mutex.lock slot.m;
    while slot.job = None && not slot.stop do
      Condition.wait slot.cv slot.m
    done;
    let job = slot.job in
    slot.job <- None;
    Mutex.unlock slot.m;
    match job with
    | Some f ->
        f ();
        next ()
    | None -> ()
  in
  next ()

let shutdown () =
  Array.iter
    (fun s ->
      Mutex.lock s.m;
      s.stop <- true;
      Condition.signal s.cv;
      Mutex.unlock s.m)
    !slots;
  List.iter Domain.join !spawned;
  slots := [||];
  spawned := []

let ensure extra =
  let have = Array.length !slots in
  if extra > have then begin
    if have = 0 then at_exit shutdown;
    let fresh =
      Array.init (extra - have) (fun _ ->
          { m = Mutex.create (); cv = Condition.create (); job = None; stop = false })
    in
    slots := Array.append !slots fresh;
    Array.iter (fun s -> spawned := Domain.spawn (fun () -> worker_loop s) :: !spawned) fresh
  end

let run ~workers f =
  if workers <= 1 then f 0
  else begin
    let extra = workers - 1 in
    ensure extra;
    let pool = !slots in
    let m = Mutex.create () and cv = Condition.create () in
    let remaining = ref extra in
    for k = 1 to extra do
      let s = pool.(k - 1) in
      let job () =
        (* [f] must not raise (the VM records faults out of band); the
           guard keeps a buggy worker from wedging the pool forever. *)
        (try f k with _ -> ());
        Mutex.lock m;
        decr remaining;
        if !remaining = 0 then Condition.signal cv;
        Mutex.unlock m
      in
      Mutex.lock s.m;
      s.job <- Some job;
      Condition.signal s.cv;
      Mutex.unlock s.m
    done;
    f 0;
    Mutex.lock m;
    while !remaining > 0 do
      Condition.wait cv m
    done;
    Mutex.unlock m
  end
