(** Sequential grid-sweep back-end (OCaml 4.x fallback).

    Chunks run one after another on the calling thread, in worker-index
    order.  Workers own disjoint cta spans and disjoint register files,
    so this produces bit-identical results to the multicore back-end —
    it is the same schedule with the parallelism removed. *)

let runtime = "sequential"
let available_domains () = 1

let run ~workers f =
  for k = 0 to workers - 1 do
    f k
  done
