(** Sequential grid-sweep back-end (OCaml 4.x fallback).

    Workers run one after another on the calling thread, in index
    order.  Under batched sweeps worker [0] then drains the entire
    flat (launch, cta-span) schedule in order before workers [1..] find
    the cursor exhausted — exactly the sequential reference sweep the
    multicore back-end must match bit-for-bit.  Spans of
    superinstruction (SoA) programs — including their lane-blocked
    fused units and column-resident memory ops — drain through the same
    schedule: the execution strategy is chosen per launch inside the VM
    and is invisible to the back-end. *)

let runtime = "sequential"
let available_domains () = 1

let run ~workers f =
  for k = 0 to workers - 1 do
    f k
  done
