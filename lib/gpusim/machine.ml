(** GPU hardware descriptions for the simulated device.

    Parameters follow the NVIDIA GK110 (Kepler) data sheets used in the
    paper's experiments; the behavioural knobs ([bw_efficiency],
    [saturation_threads], [base_overhead_ns]) are calibrated so the
    analytic timing model reproduces the measured shapes of Figs. 4–6:
    sustained bandwidth rising with volume to a shoulder and a plateau at
    ~79 % of peak. *)

type t = {
  name : string;
  sm_count : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  regs_per_sm : int;  (** 32-bit registers per SM *)
  max_regs_per_thread : int;
  peak_bw : float;  (** bytes/s *)
  peak_flops_sp : float;  (** flop/s single precision *)
  peak_flops_dp : float;
  bw_efficiency : float;  (** achievable fraction of peak bandwidth *)
  saturation_lines : int;
      (** 128-byte memory transactions that must be in flight to hide the
          DRAM latency (peak_bw * latency / 128B) *)
  issue_threads : int;
      (** resident threads per SM below which instruction issue starves *)
  base_overhead_ns : float;  (** launch + first-wave memory latency *)
  memory_bytes : int;  (** device memory capacity *)
  pcie_bw : float;  (** host<->device bytes/s *)
  pcie_latency_ns : float;
}

(* Tesla K20X, GK110, ECC disabled: 14 SMX, 250 GB/s, 1.31/3.95 TFlops. *)
let k20x_ecc_off =
  {
    name = "K20x_eccoff";
    sm_count = 14;
    max_threads_per_block = 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 16;
    regs_per_sm = 65536;
    max_regs_per_thread = 255;
    peak_bw = 250.0e9;
    peak_flops_sp = 3.95e12;
    peak_flops_dp = 1.31e12;
    bw_efficiency = 0.79;
    saturation_lines = 900;
    issue_threads = 768;
    base_overhead_ns = 9000.0;
    memory_bytes = 6 * 1024 * 1024 * 1024;
    pcie_bw = 6.0e9;
    pcie_latency_ns = 10_000.0;
  }

(* Tesla K20m with ECC enabled (the Fig. 6 testbed): 13 SMX, 208 GB/s peak
   with an ECC tax on achievable bandwidth. *)
let k20m_ecc_on =
  {
    k20x_ecc_off with
    name = "K20m_eccon";
    sm_count = 13;
    peak_bw = 208.0e9;
    peak_flops_sp = 3.52e12;
    peak_flops_dp = 1.17e12;
    bw_efficiency = 0.72;
    memory_bytes = 5 * 1024 * 1024 * 1024;
  }

let by_name = function
  | "K20x_eccoff" -> Some k20x_ecc_off
  | "K20m_eccon" -> Some k20m_ecc_on
  | _ -> None

(* Worker-count resolution for the parallel VM back-end: explicit
   argument > REPRO_VM_DOMAINS environment override > hardware count
   reported by the back-end (1 on the sequential fallback).  A
   malformed override (zero, negative, non-numeric) is never trusted:
   it falls back to the hardware count with a note on stderr, so a
   typo'd CI pin degrades loudly instead of silently serializing (or
   crashing) every launch. *)
let host_domains ?vm_domains () =
  let avail = Vm_backend.available_domains () in
  let n =
    match vm_domains with
    | Some n -> n
    | None -> (
        match Sys.getenv_opt "REPRO_VM_DOMAINS" with
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some v when v >= 1 -> v
            | Some _ | None ->
                Printf.eprintf
                  "gpusim: REPRO_VM_DOMAINS=%S is not a positive integer; using the hardware \
                   count (%d)\n\
                   %!"
                  s avail;
                avail)
        | None -> avail)
  in
  max 1 (min n 64)
