(** The simulated compute-compile driver (the "Linux driver" stage of the
    paper's Fig. 2).

    Takes PTX *text* — the same interface boundary the paper relies on —
    parses it, validates it, estimates the hardware register allocation by
    liveness analysis, and compiles it to the VM's executable form.  The
    modeled compile time follows the measured range of Sec. III-D
    (0.05–0.22 s per kernel, growing with kernel size). *)

type prec = Timing.prec = Sp | Dp

type compiled = {
  program : Vm.program;
  analysis : Ptx.Analysis.t;
  regs_per_thread : int;  (** liveness estimate, capped at the Kepler sweet spot *)
  prec : prec;  (** dominant floating-point precision of the kernel *)
  compile_time : float;  (** modeled driver-JIT seconds *)
  instructions : int;
  text : string;  (** the source PTX, kept for inspection *)
}

val estimate_registers : Ptx.Types.instr list -> int
val dominant_prec : Ptx.Types.instr list -> prec

val compile : string -> compiled
(** Parse, validate and compile PTX text; raises [Ptx.Parse.Error] or
    [Ptx.Validate.Invalid] on malformed input. *)

type portable
(** A {!compiled} stripped to plain [Marshal]-safe data (the pre-decoded
    program travels as {!Vm.portable}).  This is what the persistent JIT
    cache serializes. *)

val to_portable : compiled -> portable

val of_portable : portable -> compiled
(** Rehydrate a cached kernel without re-parsing or re-decoding; the
    result executes bit-identically to a fresh {!compile} of the same
    text. *)
