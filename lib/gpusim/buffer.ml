(** Device memory buffers.

    A buffer is typed storage in simulated device memory.  Addresses handed
    to kernels encode [(buffer id, byte offset)] in a single integer so
    that PTX pointer arithmetic (adding byte offsets) works unchanged,
    while stray pointers into foreign buffers are caught instead of
    silently corrupting memory. *)

type data =
  | F16 of (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t
      (** IEEE binary16 payloads; kernels convert to/from f32 at the access *)
  | F32 of (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t
  | F64 of (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  | I32 of (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { id : int; data : data; bytes : int }

(* Byte offsets live in the low bits; buffer ids above them.  40 bits of
   offset = 1 TiB per buffer, far beyond any simulated allocation. *)
let offset_bits = 40
let offset_mask = (1 lsl offset_bits) - 1

let address buf = buf.id lsl offset_bits
let decode_address addr = (addr lsr offset_bits, addr land offset_mask)

let elem_bytes = function F16 _ -> 2 | F32 _ -> 4 | F64 _ -> 8 | I32 _ -> 4

let length buf =
  match buf.data with
  | F16 a -> Bigarray.Array1.dim a
  | F32 a -> Bigarray.Array1.dim a
  | F64 a -> Bigarray.Array1.dim a
  | I32 a -> Bigarray.Array1.dim a

let create_f16 id n =
  let a = Bigarray.Array1.create Bigarray.int16_signed Bigarray.c_layout n in
  Bigarray.Array1.fill a 0;
  { id; data = F16 a; bytes = 2 * n }

let create_f32 id n =
  let a = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0.0;
  { id; data = F32 a; bytes = 4 * n }

let create_f64 id n =
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0.0;
  { id; data = F64 a; bytes = 8 * n }

let create_i32 id n =
  let a = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0l;
  { id; data = I32 a; bytes = 4 * n }
