(** GPU hardware descriptions for the simulated device.

    Parameters follow the NVIDIA GK110 (Kepler) data sheets used in the
    paper's experiments; the behavioural knobs ([bw_efficiency],
    [saturation_lines], [issue_threads], [base_overhead_ns]) are calibrated
    so the analytic timing model reproduces the measured shapes of
    Figs. 4–6. *)

type t = {
  name : string;
  sm_count : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  regs_per_sm : int;  (** 32-bit registers per SM *)
  max_regs_per_thread : int;
  peak_bw : float;  (** bytes/s *)
  peak_flops_sp : float;
  peak_flops_dp : float;
  bw_efficiency : float;  (** achievable fraction of peak bandwidth (0.79) *)
  saturation_lines : int;
      (** 128-byte transactions in flight needed to hide DRAM latency *)
  issue_threads : int;
      (** resident threads per SM below which instruction issue starves *)
  base_overhead_ns : float;  (** launch + first-wave memory latency *)
  memory_bytes : int;
  pcie_bw : float;
  pcie_latency_ns : float;
}

val k20x_ecc_off : t
(** Tesla K20X, ECC disabled: the Figs. 4/5 and Fig. 7 device. *)

val k20m_ecc_on : t
(** Tesla K20m, ECC enabled: the Fig. 6 testbed. *)

val by_name : string -> t option

val host_domains : ?vm_domains:int -> unit -> int
(** Workers for the parallel VM back-end: [vm_domains] if given, else
    the [REPRO_VM_DOMAINS] environment override, else the hardware count
    {!Vm_backend.available_domains} reports (1 on the OCaml 4.x
    sequential fallback).  Clamped to [1, 64].  A malformed override
    (zero, negative or non-numeric) falls back to the hardware count
    with a note on stderr rather than being trusted. *)
