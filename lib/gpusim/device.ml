(** The simulated CUDA device: memory, launches, and a simulated clock.

    Functional mode executes every kernel on real buffers through the VM
    while also advancing the simulated clock by the modeled time;
    model-only mode skips execution (used by the paper-scale benchmark
    sweeps, where only the clock matters). *)

type mode = Functional | Model_only

exception Out_of_device_memory
exception Launch_failure of string

type stats = {
  mutable launches : int;
  mutable launch_failures : int;
  mutable kernel_ns : float;
  mutable h2d_bytes : int;
  mutable d2h_bytes : int;
  mutable transfers : int;
  mutable transfer_ns : float;
  mutable allocs : int;
  mutable frees : int;
}

type t = {
  machine : Machine.t;
  mutable mode : mode;
  mutable vm_domains : int;
  mutable clock_ns : float;
  mutable used_bytes : int;
  mutable buffers : Buffer.t option array;
  mutable next_id : int;
  mutable batch : Vm.launch list option; (* open batch, launches reversed *)
  stats : stats;
}

let create ?(mode = Functional) ?vm_domains machine =
  {
    machine;
    mode;
    vm_domains = Machine.host_domains ?vm_domains ();
    clock_ns = 0.0;
    used_bytes = 0;
    buffers = Array.make 64 None;
    next_id = 0;
    batch = None;
    stats =
      {
        launches = 0;
        launch_failures = 0;
        kernel_ns = 0.0;
        h2d_bytes = 0;
        d2h_bytes = 0;
        transfers = 0;
        transfer_ns = 0.0;
        allocs = 0;
        frees = 0;
      };
  }

let set_mode t mode = t.mode <- mode
let vm_domains t = t.vm_domains
let set_vm_domains t n = t.vm_domains <- max 1 n
let clock_ns t = t.clock_ns
let used_bytes t = t.used_bytes
let free_bytes t = t.machine.Machine.memory_bytes - t.used_bytes
let stats t = t.stats

let grow t =
  let bigger = Array.make (2 * Array.length t.buffers) None in
  Array.blit t.buffers 0 bigger 0 (Array.length t.buffers);
  t.buffers <- bigger

let register t make bytes =
  if t.used_bytes + bytes > t.machine.Machine.memory_bytes then raise Out_of_device_memory;
  if t.next_id >= Array.length t.buffers then grow t;
  let id = t.next_id in
  t.next_id <- id + 1;
  let buf = make id in
  t.buffers.(id) <- Some buf;
  t.used_bytes <- t.used_bytes + bytes;
  t.stats.allocs <- t.stats.allocs + 1;
  buf

let alloc_f16 t n = register t (fun id -> Buffer.create_f16 id n) (2 * n)
let alloc_f32 t n = register t (fun id -> Buffer.create_f32 id n) (4 * n)
let alloc_f64 t n = register t (fun id -> Buffer.create_f64 id n) (8 * n)
let alloc_i32 t n = register t (fun id -> Buffer.create_i32 id n) (4 * n)

let lookup t id =
  if id < 0 || id >= t.next_id then raise (Vm.Fault "buffer id out of range")
  else
    match t.buffers.(id) with
    | Some b -> b.Buffer.data
    | None -> raise (Vm.Fault "use of freed device buffer")

(* Batched launch sweeps: between [begin_batch] and [end_batch],
   functional execution is deferred — [execute] queues the decoded
   launch and [flush_batch] hands the whole run to [Vm.run_batch] as
   one sweep.  The clock model, stats and launch-fit checks stay eager
   (they don't depend on buffer contents), so only the VM interpreter
   work moves.  [free] and host-side blits (memcache spills/uploads)
   call [flush_batch] first: deferred launches must observe buffer
   contents as of their program point. *)

let flush_batch t =
  match t.batch with
  | None -> ()
  | Some [] -> ()
  | Some rev ->
      t.batch <- Some [];
      Vm.run_batch ~workers:t.vm_domains ~lookup:(lookup t)
        (Array.of_list (List.rev rev))

let begin_batch t =
  if t.batch <> None then invalid_arg "Device.begin_batch: batch already open";
  t.batch <- Some []

let end_batch t =
  Fun.protect ~finally:(fun () -> t.batch <- None) (fun () -> flush_batch t)

let batching t = t.batch <> None

let free t (buf : Buffer.t) =
  flush_batch t;
  match t.buffers.(buf.Buffer.id) with
  | Some b when b == buf ->
      t.buffers.(buf.Buffer.id) <- None;
      t.used_bytes <- t.used_bytes - buf.Buffer.bytes;
      t.stats.frees <- t.stats.frees + 1
  | Some _ | None -> invalid_arg "Device.free: stale buffer"

(* Host<->device transfers: account PCIe time; the data movement itself is a
   host-side blit performed by the caller (host and device memory are both
   process memory here).  [transfer_cost] records the traffic and returns
   the modeled duration without touching the clock — asynchronous copies
   live on a stream timeline owned by the stream scheduler, not on the
   device's synchronous clock. *)
let transfer_cost t ~bytes ~to_device =
  let ns = Timing.transfer_time_ns t.machine ~bytes in
  t.stats.transfers <- t.stats.transfers + 1;
  t.stats.transfer_ns <- t.stats.transfer_ns +. ns;
  if to_device then t.stats.h2d_bytes <- t.stats.h2d_bytes + bytes
  else t.stats.d2h_bytes <- t.stats.d2h_bytes + bytes;
  ns

let account_transfer t ~bytes ~to_device =
  let ns = transfer_cost t ~bytes ~to_device in
  t.clock_ns <- t.clock_ns +. ns

let advance_clock t ns = t.clock_ns <- t.clock_ns +. ns
let set_clock_ns t ns = t.clock_ns <- ns

(* Execute a compiled kernel over [nthreads] logical threads and return its
   modeled duration without advancing the clock (stream timelines decide
   *when* it runs).  Raises [Launch_failure] when the block geometry or
   register pressure does not fit the machine — the condition the
   auto-tuner (Sec. VII) probes for. *)
let execute t (c : Jit.compiled) ~nthreads ~block ~params =
  if not (Timing.launch_fits t.machine ~regs_per_thread:c.Jit.regs_per_thread ~block) then begin
    t.stats.launch_failures <- t.stats.launch_failures + 1;
    raise
      (Launch_failure
         (Printf.sprintf "block %d with %d regs/thread does not fit %s" block
            c.Jit.regs_per_thread t.machine.Machine.name))
  end;
  let grid = (nthreads + block - 1) / block in
  (match t.mode with
  | Functional -> (
      match t.batch with
      | Some rev ->
          (* Callers hand over [params] freshly allocated per launch;
             the deferred sweep captures the array as-is. *)
          t.batch <-
            Some
              ({ Vm.l_prog = c.Jit.program; l_grid = grid; l_block = block; l_params = params }
              :: rev)
      | None ->
          Vm.run_grid ~workers:t.vm_domains c.Jit.program ~grid ~block ~params
            ~lookup:(lookup t))
  | Model_only -> ());
  let ns =
    Timing.kernel_time_ns t.machine ~analysis:c.Jit.analysis
      ~regs_per_thread:c.Jit.regs_per_thread ~prec:c.Jit.prec ~nthreads ~block
  in
  t.stats.launches <- t.stats.launches + 1;
  t.stats.kernel_ns <- t.stats.kernel_ns +. ns;
  ns

let launch t (c : Jit.compiled) ~nthreads ~block ~params =
  let ns = execute t c ~nthreads ~block ~params in
  t.clock_ns <- t.clock_ns +. ns;
  ns
