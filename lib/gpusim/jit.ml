(** The simulated compute-compile driver (Fig. 2's "Linux driver" stage).

    Takes PTX *text* — the same interface boundary the paper relies on —
    parses it, validates it, estimates the hardware register allocation by
    liveness analysis, and compiles it to the VM's executable form.  The
    modeled compile time follows the measured range of Sec. III-D
    (0.05–0.22 s per kernel, growing with kernel size). *)

type prec = Timing.prec = Sp | Dp

type compiled = {
  program : Vm.program;
  analysis : Ptx.Analysis.t;
  regs_per_thread : int;
  prec : prec;
  compile_time : float;  (** modeled driver JIT time, seconds *)
  instructions : int;
  text : string;  (** the source PTX, kept for inspection *)
}

open Ptx.Types

(* Hardware registers are 32-bit: f64/s64/u64 virtual registers occupy two.
   Peak liveness-derived demand ({!Ptx.Dataflow.register_demand_body}, on
   the real control-flow graph) approximates what the SASS allocator would
   use.  The allocator needs scratch beyond the live values, but a real
   compiler also reuses registers far more aggressively than a max-live
   bound over unscheduled code suggests, spilling beyond ~64; cap there
   (Kepler's sweet spot) rather than model spill traffic. *)
let estimate_registers body =
  let demand = Ptx.Dataflow.register_demand_body (Array.of_list body) in
  min 64 (max 16 (demand + 6))

let dominant_prec analysis_body =
  let has_f64 =
    List.exists
      (fun i ->
        match i with
        | Add { dtype = F64; _ } | Sub { dtype = F64; _ } | Mul { dtype = F64; _ }
        | Div { dtype = F64; _ } | Fma { dtype = F64; _ } | Neg { dtype = F64; _ }
        | Ld_global { dtype = F64; _ } | St_global { dtype = F64; _ } ->
            true
        | _ -> false)
      analysis_body
  in
  if has_f64 then Dp else Sp

(* Marshal-safe image of a compiled kernel: everything is plain data
   except the pre-decoded program, which delegates to {!Vm.portable}. *)
type portable = {
  p_program : Vm.portable;
  p_analysis : Ptx.Analysis.t;
  p_regs : int;
  p_prec : prec;
  p_compile_time : float;
  p_instructions : int;
  p_text : string;
}

let to_portable c =
  {
    p_program = Vm.to_portable c.program;
    p_analysis = c.analysis;
    p_regs = c.regs_per_thread;
    p_prec = c.prec;
    p_compile_time = c.compile_time;
    p_instructions = c.instructions;
    p_text = c.text;
  }

let of_portable p =
  {
    program = Vm.of_portable p.p_program;
    analysis = p.p_analysis;
    regs_per_thread = p.p_regs;
    prec = p.p_prec;
    compile_time = p.p_compile_time;
    instructions = p.p_instructions;
    text = p.p_text;
  }

let compile text =
  let kernel = Ptx.Parse.kernel text in
  Ptx.Validate.kernel kernel;
  let program = Vm.compile kernel in
  let analysis = Ptx.Analysis.kernel kernel in
  let instructions = List.length kernel.body in
  {
    program;
    analysis;
    regs_per_thread = estimate_registers kernel.body;
    prec = dominant_prec kernel.body;
    compile_time = 0.045 +. (7.5e-5 *. float_of_int instructions);
    instructions;
    text;
  }
