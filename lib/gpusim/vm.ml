(** Pre-decoded executable form of a PTX kernel and its multicore
    interpreter.

    The back half of the simulated driver JIT.  [compile] lowers a
    validated kernel into a flat program: int-coded opcodes with operand
    *indices* in four parallel arrays, labels compacted away (branch
    targets are instruction indices), and immediates promoted into
    constant-pool slots appended to the register files — so the hot loop
    is a jump table over plain array reads, with no closures and no
    per-operand dispatch.  Registers live in three flat files per worker
    (floats: f32 then f64; ints: s32/u32/s64/u64 concatenated;
    predicates), allocated once per worker slot on the program and
    reused across threads and launches.

    [run_grid] executes the grid either sequentially or split across
    {!Vm_backend} workers in whole-cta chunks.  A decode-time provenance
    analysis classifies every global access (uniform / affine-in-thread-
    index / via-sitelist / gathered); launches whose stores all target
    the issuing work item's own slot — and whose same-buffer read-backs
    stay within the radix-8 reduction-tail contract — may split, because
    chunks then touch disjoint output ranges and the result is
    bit-identical to the sequential sweep.  Anything else (e.g. the
    in-place [p = shift p] gather) runs sequentially.  Chunk boundaries
    are aligned to multiples of 8 work items so a reduction tail always
    aggregates partials its own chunk wrote.  Faults are recorded per
    worker and the lowest (ctaid, tid) fault is re-raised on the
    launching thread, enriched with kernel name and thread coordinates,
    so error reporting stays deterministic.

    Modeling note: f32 register arithmetic is performed in double and
    rounded only when stored through an f32 buffer — the same convention
    the CPU reference evaluator uses — which makes CPU-vs-JIT
    comparisons exact instead of differing in f32 rounding of
    intermediates.  Real Kepler hardware rounds every f32 operation; the
    difference is far below the tolerances of any physics in this
    library. *)

type param_value = Ptr of Buffer.t | Int of int | Float of float

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

open Ptx.Types

(* ------------------------------------------------------------------ *)
(* Opcodes.  The interpreter matches on these literal values; keep the
   two tables in sync.

    0 ret
    1 add.f    f[a] <- f[b] +. f[c]        7 add.i    i[a] <- i[b] + i[c]
    2 sub.f                                8 sub.i
    3 mul.f                                9 mul.i
    4 div.f                               10 div.i  (faults on 0)
    5 fma.f    f[a] <- f[b]*f[c] +. f[d]  11 fma.i
    6 neg.f                               12 shl.i  i[a] <- i[b] lsl c (literal)
                                          13 neg.i
   14 mov.f    f[a] <- f[b]               15 mov.i
   16 cvt.f32  f[a] <- round32 f[b]       17 cvt.i2f  18 cvt.f2i
   19..24 setp.f  p[a] <- f[b] cmp f[c]   (eq ne lt le gt ge)
   25..30 setp.i  p[a] <- i[b] cmp i[c]
   31 bra pc<-a   32 bra.pred  if p[a] then pc<-b
   33 tid  34 ntid  35 ctaid  36 nctaid   (i[a] <- sreg)
   37 ld.param.ptr  38 ld.param.int  39 ld.param.f   (param slot b)
   40 ld.g.f32  41 ld.g.f64  42 ld.g.i32  (addr i[b]+c)
   43 st.g.f32  44 st.g.f64  45 st.g.i32  (addr i[a]+b, src reg c)
   46 call.f64  f[a] <- fns[c] f[b]       47 call.f32 (rounds result)
   48 ld.g.f16  f[a] <- decode16 mem      49 st.g.f16  mem <- encode16 f[c]
      (binary16 payloads decode exactly on load; stores round to nearest,
      ties to even — the same convention [Field.raw_set] uses, so CPU and
      VM runs of an f16 kernel stay bit-identical) *)

(* ------------------------------------------------------------------ *)
(* Static provenance of global accesses, used to decide whether a launch
   may be split across workers.  Classes form a lattice ordered by how
   little we know about the address:

   - [Uniform]: same for every thread (params, nctaid, constants).
   - [Affine]:  derived from tid/ctaid arithmetic — the canonical
     "my own work item" indexing of generated streaming kernels.
   - [Slist]:   loaded from a parameter named [sitelist*] at an affine
     index — the subset indirection; injective by construction.
   - [Gather]:  any other memory-derived value (neighbour tables,
     arbitrary indirection). *)

type access_class = Uniform | Affine | Slist | Gather

type access = {
  a_param : int;  (** param slot the address derives from; -1 unknown *)
  a_class : access_class;
  a_store : bool;
}

type wctx = { wf : float array; wi : int array; wp : bool array }

(* ------------------------------------------------------------------ *)
(* Superinstruction plan: decode-time structure for the SoA executor.

   A program is *eligible* when its control flow is the canonical
   pointwise shape the generators emit: straight-line code whose only
   branches are forward [bra.pred] guards that jump directly to a [ret]
   (the "lane exit" idiom — bounds guards, subset guards).  For such a
   program textual order is execution order on every lane's path, so
   the maximal runs of non-control opcodes ("spans") can be executed as
   superinstructions over flat unboxed register rows (register [r]'s
   value for lane [l] lives at [r * cap + l]).

   Each span is further partitioned into fused dispatch *units*:

   - a *chain* (kind 0): a maximal mixed run of lane-local ALU work —
     float and integer arithmetic, address mad/shl/add chains, cvt,
     setp, mov, sreg and parameter reads, math calls.  One fault scope
     and one dispatch per chain; the per-instruction inner loops walk
     the lanes in [lane_block]-wide unrolled blocks on the dense fast
     path.  Only lane-uniform faults can occur inside a chain
     (parameter-class mismatches), so a single [try] per unit replaces
     the old per-instruction one.
   - a *memory-terminated chain* (kind 1): a chain whose last
     instruction is a global load/store.  The terminator executes
     column-resident: lane addresses are snapshotted into a scratch
     column, the buffer is resolved *once* for the whole cta, and the
     gather/scatter runs as a tight per-lane loop, falling back to the
     per-lane slow path (bit-identical fault reporting) on any
     cross-buffer divergence.
   - an *island* (kind 2): a single per-lane-faultable non-memory op
     (integer division), kept under its own per-lane fault handler.

   [span_end.(k)] is the index of the next control instruction at or
   after [k] ([ret]/[bra]/[bra.pred]); a span starting at a non-control
   [k] covers [k, span_end.(k)).  [u_end.(s)]/[u_kind.(s)] are valid at
   unit-start indices [s] and give the unit's end (exclusive) and kind.
   The counters summarize the plan for the dispatch-rate metric:
   [s_spans] spans containing [s_covered] instructions in [s_units]
   fused dispatch units. *)

type soa_plan = {
  span_end : int array;
  u_end : int array;
  u_kind : int array;
  s_spans : int;
  s_units : int;
  s_covered : int;
}

(* Per-worker SoA register files: one row of [cap] lanes per register,
   constant pools broadcast across their rows once at allocation.
   [act] holds the ids of the lanes still running (faulted lanes and
   lanes that took an exit branch are removed).  [sa] is the address
   scratch column for memory-terminated units: lane addresses are
   snapshotted there before the gather/scatter runs, which makes the
   column pass restartable (the slow fallback re-reads the same
   addresses even when a load's destination aliases its address
   register). *)
type soa_ctx = {
  mutable sf : float array;
  mutable si : int array;
  mutable sp : bool array;
  mutable act : int array;
  mutable sa : int array;
  mutable cap : int;
}

type program = {
  kernel : kernel;
  co : int array;  (** opcodes *)
  ca : int array;
  cb : int array;
  cc : int array;
  cd : int array;  (** operand indices / literals *)
  nfreg : int;
  nireg : int;
  npred : int;
  fpool : float array;  (** float constants, installed at [nfreg..] *)
  ipool : int array;  (** int constants, installed at [nireg..] *)
  fns : (float -> float) array;  (** call targets *)
  accesses : access array;
  soa : soa_plan option;  (** superinstruction plan; [None] = scalar only *)
  mutable slots : wctx array;  (** per-worker register files, reused *)
  mutable soa_slots : soa_ctx array;  (** per-worker SoA register rows *)
}

(* Runtime escape hatch: REPRO_VM_SUPERINSN=off forces every launch
   back onto the scalar interpreter.  The recognized off-spellings are
   exactly the ones the REPRO_JIT_CACHE override accepts —
   off/0/none/disabled, case-insensitive, whitespace-trimmed — and
   anything else (including unset) leaves the executor on.  The
   programmatic setter lets the bench time both strategies in one
   process. *)
let superinsn_of_env = function
  | None -> true
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "off" | "0" | "none" | "disabled" -> false
      | _ -> true)

let superinsn_on = ref (superinsn_of_env (Sys.getenv_opt "REPRO_VM_SUPERINSN"))

let set_superinstructions b = superinsn_on := b
let superinstructions_enabled () = !superinsn_on

type soa_stats = { spans : int; units : int; covered : int; total : int }

let superinsn_stats p =
  let total = Array.length p.co in
  match p.soa with
  | None -> { spans = 0; units = 0; covered = 0; total }
  | Some s -> { spans = s.s_spans; units = s.s_units; covered = s.s_covered; total }

let max_reg_ids body =
  let tbl = Hashtbl.create 8 in
  let see r =
    let cur = try Hashtbl.find tbl r.rtype with Not_found -> -1 in
    if r.id > cur then Hashtbl.replace tbl r.rtype r.id
  in
  List.iter
    (fun i ->
      Option.iter see (Ptx.Dataflow.def_of i);
      List.iter see (Ptx.Dataflow.uses_of i))
    body;
  tbl

let math_functions : (string * (float -> float)) list =
  [
    ("sin", sin);
    ("cos", cos);
    ("tan", tan);
    ("exp", exp);
    ("log", log);
    ("sqrt", sqrt);
    ("rsqrt", fun x -> 1.0 /. sqrt x);
    ("fabs", abs_float);
    ("asin", asin);
    ("acos", acos);
    ("atan", atan);
  ]

let lookup_math func =
  (* Subroutine names: qdpjit_<fn>_<f32|f64>. *)
  let known =
    List.find_opt
      (fun (n, _) -> "qdpjit_" ^ n ^ "_f32" = func || "qdpjit_" ^ n ^ "_f64" = func)
      math_functions
  in
  match known with Some (_, f) -> f | None -> fault "unknown math subroutine %S" func

(* ------------------------------------------------------------------ *)
(* Provenance analysis: a forward fixpoint over the body (generated
   kernels only branch forward, so this converges in a couple of
   passes).  Tracks per register (class, defining pointer param). *)

let rank = function Uniform -> 0 | Affine -> 1 | Slist -> 2 | Gather -> 3
let join a b = if rank a >= rank b then a else b

let analyze (k : kernel) =
  let params = Array.of_list k.params in
  let is_sitelist_param i =
    i >= 0
    && i < Array.length params
    &&
    let n = params.(i).pname in
    String.length n >= 8 && String.sub n 0 8 = "sitelist"
  in
  let prov : (dtype * int, access_class) Hashtbl.t = Hashtbl.create 64 in
  let base : (dtype * int, int option) Hashtbl.t = Hashtbl.create 16 in
  let changed = ref true in
  let getp r = match Hashtbl.find_opt prov (r.rtype, r.id) with Some c -> c | None -> Uniform in
  let getb r = match Hashtbl.find_opt base (r.rtype, r.id) with Some b -> b | None -> None in
  let setp_ r c =
    if rank c > rank (getp r) then begin
      Hashtbl.replace prov (r.rtype, r.id) c;
      changed := true
    end
  in
  (* Base lattice: unseen -> Some slot -> None (conflicting or derived). *)
  let setb r b =
    let key = (r.rtype, r.id) in
    match Hashtbl.find_opt base key with
    | None -> if b <> None then (Hashtbl.replace base key b; changed := true)
    | Some cur when cur = b -> ()
    | Some None -> ()
    | Some (Some _) ->
        Hashtbl.replace base key None;
        changed := true
  in
  let op_prov = function Reg r -> getp r | Imm_float _ | Imm_int _ -> Uniform in
  let op_base = function Reg r -> getb r | Imm_float _ | Imm_int _ -> None in
  let merge_base a b =
    match (a, b) with
    | (Some _ as p), None | None, (Some _ as p) -> p
    | None, None | Some _, Some _ -> None
  in
  let step instr =
    match instr with
    | Label _ | Ret | Bra _ | Setp _ | St_global _ | St_global_f16 _ -> ()
    | Ld_param { dst; param_index } ->
        setb dst
          (if
             param_index >= 0
             && param_index < Array.length params
             && params.(param_index).ptype = U64
           then Some param_index
           else None)
    | Mov { dst; src } ->
        setp_ dst (op_prov src);
        setb dst (op_base src)
    | Mov_sreg { dst; src } -> (
        match src with Tid_x | Ctaid_x -> setp_ dst Affine | Ntid_x | Nctaid_x -> ())
    | Add { dst; a; b; _ } ->
        setp_ dst (join (op_prov a) (op_prov b));
        setb dst (merge_base (op_base a) (op_base b))
    | Sub { dst; a; b; _ } | Mul { dst; a; b; _ } | Div { dst; a; b; _ } ->
        setp_ dst (join (op_prov a) (op_prov b))
    | Fma { dst; a; b; c; _ } -> setp_ dst (join (op_prov a) (join (op_prov b) (op_prov c)))
    | Shl { dst; a; _ } | Neg { dst; a; _ } -> setp_ dst (op_prov a)
    | Cvt { dst; src } ->
        setp_ dst (getp src);
        setb dst (getb src)
    | Call { ret; arg; _ } -> setp_ ret (getp arg)
    | Ld_global { dst; addr; _ } | Ld_global_f16 { dst; addr; _ } ->
        let cls =
          match getb addr with
          | Some p when is_sitelist_param p && rank (getp addr) <= rank Affine -> Slist
          | _ -> Gather
        in
        setp_ dst cls
  in
  while !changed do
    changed := false;
    List.iter step k.body
  done;
  let accs = ref [] in
  List.iter
    (fun instr ->
      match instr with
      | Ld_global { addr; _ } | Ld_global_f16 { addr; _ } ->
          accs :=
            {
              a_param = (match getb addr with Some p -> p | None -> -1);
              a_class = getp addr;
              a_store = false;
            }
            :: !accs
      | St_global { addr; _ } | St_global_f16 { addr; _ } ->
          accs :=
            {
              a_param = (match getb addr with Some p -> p | None -> -1);
              a_class = getp addr;
              a_store = true;
            }
            :: !accs
      | _ -> ())
    k.body;
  Array.of_list (List.rev !accs)

(* ------------------------------------------------------------------ *)
(* Superinstruction eligibility.  Accepts exactly the straight-line +
   exit-guard shape: the program ends in [ret], contains no
   unconditional branches, and every [bra.pred] jumps forward to a
   [ret].  That shape makes textual order the execution order of every
   lane, which is what (a) lets spans run lock-step across lanes and
   (b) upgrades the validator's textual def-before-use check into a
   path-exact one, so SoA register rows never need zeroing between
   ctas.  Reduction tails (their guarded-load diamonds and aggregate
   joins) are rejected and keep the scalar interpreter. *)

let plan_soa co cb ninstr =
  if ninstr = 0 || co.(ninstr - 1) <> 0 then None
  else begin
    let ok = ref true in
    for k = 0 to ninstr - 1 do
      match co.(k) with
      | 31 -> ok := false
      | 32 -> if cb.(k) <= k || co.(cb.(k)) <> 0 then ok := false
      | _ -> ()
    done;
    if not !ok then None
    else begin
      let span_end = Array.make ninstr 0 in
      let next_ctrl = ref ninstr in
      for k = ninstr - 1 downto 0 do
        span_end.(k) <- !next_ctrl;
        match co.(k) with 0 | 31 | 32 -> next_ctrl := k | _ -> ()
      done;
      (* Unit partition.  Within a span, everything except integer
         division fuses into mixed chains; a global load/store
         terminates the chain it feeds (absorbing its address
         arithmetic) as a memory-terminated unit, and div.i sits in a
         one-instruction island under its own per-lane fault
         handler. *)
      let is_mem o = (o >= 40 && o <= 45) || o = 48 || o = 49 in
      let u_end = Array.make ninstr 0 and u_kind = Array.make ninstr 0 in
      let spans = ref 0 and units = ref 0 and covered = ref 0 in
      let k = ref 0 in
      while !k < ninstr do
        match co.(!k) with
        | 0 | 31 | 32 -> incr k
        | _ ->
            let e = span_end.(!k) in
            incr spans;
            covered := !covered + (e - !k);
            let j = ref !k in
            while !j < e do
              let s = !j in
              if co.(s) = 10 then begin
                u_end.(s) <- s + 1;
                u_kind.(s) <- 2;
                j := s + 1
              end
              else begin
                let q = ref s and stop = ref false and kind = ref 0 in
                while (not !stop) && !q < e do
                  let o = co.(!q) in
                  if o = 10 then stop := true
                  else if is_mem o then begin
                    incr q;
                    kind := 1;
                    stop := true
                  end
                  else incr q
                done;
                u_end.(s) <- !q;
                u_kind.(s) <- !kind;
                j := !q
              end;
              incr units
            done;
            k := e
      done;
      Some { span_end; u_end; u_kind; s_spans = !spans; s_units = !units; s_covered = !covered }
    end
  end

(* ------------------------------------------------------------------ *)
(* Decode. *)

let compile (kernel : kernel) =
  Ptx.Validate.kernel kernel;
  let tbl = max_reg_ids kernel.body in
  let cnt dt = match Hashtbl.find_opt tbl dt with Some m -> m + 1 | None -> 0 in
  let nf32 = cnt F32 and nf64 = cnt F64 in
  let ns32 = cnt S32 and nu32 = cnt U32 and ns64 = cnt S64 and nu64 = cnt U64 in
  let npred = max 1 (cnt Pred) in
  let nfreg = nf32 + nf64 and nireg = ns32 + nu32 + ns64 + nu64 in
  let freg r =
    match r.rtype with
    | F32 -> r.id
    | F64 -> nf32 + r.id
    | _ -> invalid_arg "Vm: float access to integer class"
  in
  let ireg r =
    match r.rtype with
    | S32 -> r.id
    | U32 -> ns32 + r.id
    | S64 -> ns32 + nu32 + r.id
    | U64 -> ns32 + nu32 + ns64 + r.id
    | _ -> invalid_arg "Vm: integer access to float class"
  in
  (* Immediates become constant-pool slots past the register files, so
     every operand is a plain index into the same flat file. *)
  let fpool = ref [] and fpool_n = ref 0 and fpool_tbl = Hashtbl.create 8 in
  let fconst v =
    let key = Int64.bits_of_float v in
    match Hashtbl.find_opt fpool_tbl key with
    | Some slot -> slot
    | None ->
        let slot = nfreg + !fpool_n in
        incr fpool_n;
        fpool := v :: !fpool;
        Hashtbl.add fpool_tbl key slot;
        slot
  in
  let ipool = ref [] and ipool_n = ref 0 and ipool_tbl = Hashtbl.create 8 in
  let iconst v =
    match Hashtbl.find_opt ipool_tbl v with
    | Some slot -> slot
    | None ->
        let slot = nireg + !ipool_n in
        incr ipool_n;
        ipool := v :: !ipool;
        Hashtbl.add ipool_tbl v slot;
        slot
  in
  let fop = function
    | Reg r -> freg r
    | Imm_float v -> fconst v
    | Imm_int i -> fconst (float_of_int i)
  in
  let iop = function
    | Reg r -> ireg r
    | Imm_int i -> iconst i
    | Imm_float _ -> invalid_arg "Vm: float immediate in integer instruction"
  in
  (* Compact labels away; branch targets become instruction indices. *)
  let body = Array.of_list kernel.body in
  let n = Array.length body in
  let idx_of = Array.make n 0 in
  let labels = Hashtbl.create 8 in
  let ninstr = ref 0 in
  for i = 0 to n - 1 do
    idx_of.(i) <- !ninstr;
    match body.(i) with Label l -> Hashtbl.replace labels l i | _ -> incr ninstr
  done;
  let ninstr = !ninstr in
  let label_pos l =
    match Hashtbl.find_opt labels l with
    | Some i -> idx_of.(i)
    | None -> fault "undefined label %S" l
  in
  let sz = max 1 ninstr in
  let co = Array.make sz 0
  and ca = Array.make sz 0
  and cb = Array.make sz 0
  and cc = Array.make sz 0
  and cd = Array.make sz 0 in
  let fns = ref [] and fns_n = ref 0 in
  let addfn f =
    let i = !fns_n in
    incr fns_n;
    fns := f :: !fns;
    i
  in
  let j = ref 0 in
  let emit o a b c d =
    co.(!j) <- o;
    ca.(!j) <- a;
    cb.(!j) <- b;
    cc.(!j) <- c;
    cd.(!j) <- d;
    incr j
  in
  Array.iter
    (fun instr ->
      match instr with
      | Label _ -> ()
      | Ret -> emit 0 0 0 0 0
      | Add { dtype; dst; a; b } ->
          if is_float dtype then emit 1 (freg dst) (fop a) (fop b) 0
          else emit 7 (ireg dst) (iop a) (iop b) 0
      | Sub { dtype; dst; a; b } ->
          if is_float dtype then emit 2 (freg dst) (fop a) (fop b) 0
          else emit 8 (ireg dst) (iop a) (iop b) 0
      | Mul { dtype; dst; a; b } ->
          if is_float dtype then emit 3 (freg dst) (fop a) (fop b) 0
          else emit 9 (ireg dst) (iop a) (iop b) 0
      | Div { dtype; dst; a; b } ->
          if is_float dtype then emit 4 (freg dst) (fop a) (fop b) 0
          else emit 10 (ireg dst) (iop a) (iop b) 0
      | Fma { dtype; dst; a; b; c } ->
          if is_float dtype then emit 5 (freg dst) (fop a) (fop b) (fop c)
          else emit 11 (ireg dst) (iop a) (iop b) (iop c)
      | Neg { dtype; dst; a } ->
          if is_float dtype then emit 6 (freg dst) (fop a) 0 0 else emit 13 (ireg dst) (iop a) 0 0
      | Shl { dtype; dst; a; amount } ->
          if is_float dtype then fault "shl on float registers"
          else emit 12 (ireg dst) (iop a) amount 0
      | Mov { dst; src } -> (
          match dst.rtype with
          | F32 | F64 -> emit 14 (freg dst) (fop src) 0 0
          | S32 | U32 | S64 | U64 -> emit 15 (ireg dst) (iop src) 0 0
          | Pred -> fault "mov on predicates unsupported")
      | Cvt { dst; src } -> (
          match (is_float dst.rtype, is_float src.rtype) with
          | true, true ->
              if dst.rtype = F32 then emit 16 (freg dst) (freg src) 0 0
              else emit 14 (freg dst) (freg src) 0 0
          | true, false -> emit 17 (freg dst) (ireg src) 0 0
          | false, true -> emit 18 (ireg dst) (freg src) 0 0
          | false, false -> emit 15 (ireg dst) (ireg src) 0 0)
      | Setp { cmp; dtype; dst; a; b } ->
          let off = match cmp with Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5 in
          if is_float dtype then emit (19 + off) dst.id (fop a) (fop b) 0
          else emit (25 + off) dst.id (iop a) (iop b) 0
      | Bra { label; pred } -> (
          let target = label_pos label in
          match pred with
          | None -> emit 31 target 0 0 0
          | Some p -> emit 32 p.id target 0 0)
      | Mov_sreg { dst; src } ->
          let code = match src with Tid_x -> 33 | Ntid_x -> 34 | Ctaid_x -> 35 | Nctaid_x -> 36 in
          emit code (ireg dst) 0 0 0
      | Ld_param { dst; param_index } -> (
          match dst.rtype with
          | U64 -> emit 37 (ireg dst) param_index 0 0
          | S32 | U32 -> emit 38 (ireg dst) param_index 0 0
          | F32 | F64 -> emit 39 (freg dst) param_index 0 0
          | S64 | Pred -> fault "unsupported ld.param class")
      | Ld_global { dtype; dst; addr; offset } -> (
          match dtype with
          | F32 -> emit 40 (freg dst) (ireg addr) offset 0
          | F64 -> emit 41 (freg dst) (ireg addr) offset 0
          | S32 | U32 -> emit 42 (ireg dst) (ireg addr) offset 0
          | S64 | U64 | Pred -> fault "unsupported ld.global class")
      | St_global { dtype; addr; offset; src } -> (
          match dtype with
          | F32 -> emit 43 (ireg addr) offset (fop src) 0
          | F64 -> emit 44 (ireg addr) offset (fop src) 0
          | S32 | U32 -> emit 45 (ireg addr) offset (iop src) 0
          | S64 | U64 | Pred -> fault "unsupported st.global class")
      | Ld_global_f16 { dst; addr; offset } -> emit 48 (freg dst) (ireg addr) offset 0
      | St_global_f16 { addr; offset; src } -> emit 49 (ireg addr) offset (fop src) 0
      | Call { func; ret; arg } ->
          let fi = addfn (lookup_math func) in
          if ret.rtype = F32 then emit 47 (freg ret) (freg arg) fi 0
          else emit 46 (freg ret) (freg arg) fi 0)
    body;
  {
    kernel;
    co;
    ca;
    cb;
    cc;
    cd;
    nfreg;
    nireg;
    npred;
    fpool = Array.of_list (List.rev !fpool);
    ipool = Array.of_list (List.rev !ipool);
    fns = Array.of_list (List.rev !fns);
    accesses = analyze kernel;
    soa = plan_soa co cb ninstr;
    slots = [||];
    soa_slots = [||];
  }

(* ------------------------------------------------------------------ *)
(* Serialization.  A program is plain data except for two fields: [fns]
   holds math-subroutine closures and [slots] holds worker scratch.
   Both are deterministic functions of the rest — [compile] fills [fns]
   with one [lookup_math] per [Call] in body order, and [slots] grows on
   demand — so the portable form simply strips them and rehydration
   rebuilds [fns] by replaying the same walk.  A rehydrated program is
   therefore indistinguishable from a fresh [compile] of the kernel. *)

(* Version 4: the superinstruction plan gained the unit partition
   ([u_end]/[u_kind]) for mixed-chain fusion and column-resident
   memory units; cached version-3 entries decode to a record missing
   those arrays, so the bump makes stale jitcache entries miss instead
   of loading an unpartitioned plan. *)
let decoder_version = 4

type portable = program

let to_portable p = { p with fns = [||]; slots = [||]; soa_slots = [||] }

let of_portable (p : portable) =
  let fns =
    List.filter_map
      (function Call { func; _ } -> Some (lookup_math func) | _ -> None)
      p.kernel.body
    |> Array.of_list
  in
  { p with fns; slots = [||]; soa_slots = [||] }

(* ------------------------------------------------------------------ *)
(* Worker register files. *)

let make_wctx p =
  {
    wf = Array.make (max 1 (p.nfreg + Array.length p.fpool)) 0.0;
    wi = Array.make (max 1 (p.nireg + Array.length p.ipool)) 0;
    wp = Array.make p.npred false;
  }

let ensure_slots p n =
  let have = Array.length p.slots in
  if n > have then
    p.slots <- Array.init n (fun i -> if i < have then p.slots.(i) else make_wctx p)

(* SoA register rows: [cap] lanes per register, constant pools
   broadcast across their rows at allocation.  No zeroing is ever
   needed afterwards: eligible programs define every register before
   reading it on each executed path (see [plan_soa]), mirroring how the
   scalar path reuses one [wctx] across all threads of a span. *)
let make_soa_ctx p cap =
  let nf = max 1 (p.nfreg + Array.length p.fpool) in
  let ni = max 1 (p.nireg + Array.length p.ipool) in
  let s =
    {
      sf = Array.make (nf * cap) 0.0;
      si = Array.make (ni * cap) 0;
      sp = Array.make (p.npred * cap) false;
      act = Array.make cap 0;
      sa = Array.make cap 0;
      cap;
    }
  in
  Array.iteri (fun pi v -> Array.fill s.sf ((p.nfreg + pi) * cap) cap v) p.fpool;
  Array.iteri (fun pi v -> Array.fill s.si ((p.nireg + pi) * cap) cap v) p.ipool;
  s

(* Sized before workers start (growing is not thread-safe), like
   [ensure_slots]; [cap] must cover the largest block the program is
   launched with in the batch. *)
let ensure_soa_slots p n cap =
  let have = Array.length p.soa_slots in
  if n > have then
    p.soa_slots <-
      Array.init n (fun i -> if i < have then p.soa_slots.(i) else make_soa_ctx p cap);
  Array.iter
    (fun s ->
      if s.cap < cap then begin
        let fresh = make_soa_ctx p cap in
        s.sf <- fresh.sf;
        s.si <- fresh.si;
        s.sp <- fresh.sp;
        s.act <- fresh.act;
        s.sa <- fresh.sa;
        s.cap <- cap
      end)
    p.soa_slots

(* Fresh launch state: registers zeroed (matching the old per-launch
   context), constant pools installed past the architectural
   registers. *)
let bind_slot p (w : wctx) =
  Array.fill w.wf 0 p.nfreg 0.0;
  Array.fill w.wi 0 p.nireg 0;
  Array.fill w.wp 0 p.npred false;
  Array.blit p.fpool 0 w.wf p.nfreg (Array.length p.fpool);
  Array.blit p.ipool 0 w.wi p.nireg (Array.length p.ipool)

(* ------------------------------------------------------------------ *)
(* The interpreter. *)

let round32 v = Int32.float_of_bits (Int32.bits_of_float v)

let exec_thread p (lookup : int -> Buffer.data) (args : param_value array) (w : wctx) ~tid
    ~ctaid ~ntid ~nctaid =
  let co = p.co and ca = p.ca and cb = p.cb and cc = p.cc and cd = p.cd in
  let f = w.wf and i = w.wi and pr = w.wp in
  let fns = p.fns in
  let pc = ref 0 in
  while !pc >= 0 do
    let k = !pc in
    let next = k + 1 in
    match co.(k) with
    | 0 -> pc := -1
    | 1 ->
        f.(ca.(k)) <- f.(cb.(k)) +. f.(cc.(k));
        pc := next
    | 2 ->
        f.(ca.(k)) <- f.(cb.(k)) -. f.(cc.(k));
        pc := next
    | 3 ->
        f.(ca.(k)) <- f.(cb.(k)) *. f.(cc.(k));
        pc := next
    | 4 ->
        f.(ca.(k)) <- f.(cb.(k)) /. f.(cc.(k));
        pc := next
    | 5 ->
        f.(ca.(k)) <- (f.(cb.(k)) *. f.(cc.(k))) +. f.(cd.(k));
        pc := next
    | 6 ->
        f.(ca.(k)) <- -.f.(cb.(k));
        pc := next
    | 7 ->
        i.(ca.(k)) <- i.(cb.(k)) + i.(cc.(k));
        pc := next
    | 8 ->
        i.(ca.(k)) <- i.(cb.(k)) - i.(cc.(k));
        pc := next
    | 9 ->
        i.(ca.(k)) <- i.(cb.(k)) * i.(cc.(k));
        pc := next
    | 10 ->
        let d = i.(cc.(k)) in
        if d = 0 then fault "integer division by zero";
        i.(ca.(k)) <- i.(cb.(k)) / d;
        pc := next
    | 11 ->
        i.(ca.(k)) <- (i.(cb.(k)) * i.(cc.(k))) + i.(cd.(k));
        pc := next
    | 12 ->
        i.(ca.(k)) <- i.(cb.(k)) lsl cc.(k);
        pc := next
    | 13 ->
        i.(ca.(k)) <- -i.(cb.(k));
        pc := next
    | 14 ->
        f.(ca.(k)) <- f.(cb.(k));
        pc := next
    | 15 ->
        i.(ca.(k)) <- i.(cb.(k));
        pc := next
    | 16 ->
        f.(ca.(k)) <- round32 f.(cb.(k));
        pc := next
    | 17 ->
        f.(ca.(k)) <- float_of_int i.(cb.(k));
        pc := next
    | 18 ->
        i.(ca.(k)) <- int_of_float f.(cb.(k));
        pc := next
    | 19 ->
        pr.(ca.(k)) <- f.(cb.(k)) = f.(cc.(k));
        pc := next
    | 20 ->
        pr.(ca.(k)) <- f.(cb.(k)) <> f.(cc.(k));
        pc := next
    | 21 ->
        pr.(ca.(k)) <- f.(cb.(k)) < f.(cc.(k));
        pc := next
    | 22 ->
        pr.(ca.(k)) <- f.(cb.(k)) <= f.(cc.(k));
        pc := next
    | 23 ->
        pr.(ca.(k)) <- f.(cb.(k)) > f.(cc.(k));
        pc := next
    | 24 ->
        pr.(ca.(k)) <- f.(cb.(k)) >= f.(cc.(k));
        pc := next
    | 25 ->
        pr.(ca.(k)) <- i.(cb.(k)) = i.(cc.(k));
        pc := next
    | 26 ->
        pr.(ca.(k)) <- i.(cb.(k)) <> i.(cc.(k));
        pc := next
    | 27 ->
        pr.(ca.(k)) <- i.(cb.(k)) < i.(cc.(k));
        pc := next
    | 28 ->
        pr.(ca.(k)) <- i.(cb.(k)) <= i.(cc.(k));
        pc := next
    | 29 ->
        pr.(ca.(k)) <- i.(cb.(k)) > i.(cc.(k));
        pc := next
    | 30 ->
        pr.(ca.(k)) <- i.(cb.(k)) >= i.(cc.(k));
        pc := next
    | 31 -> pc := ca.(k)
    | 32 -> pc := if pr.(ca.(k)) then cb.(k) else next
    | 33 ->
        i.(ca.(k)) <- tid;
        pc := next
    | 34 ->
        i.(ca.(k)) <- ntid;
        pc := next
    | 35 ->
        i.(ca.(k)) <- ctaid;
        pc := next
    | 36 ->
        i.(ca.(k)) <- nctaid;
        pc := next
    | 37 ->
        (match args.(cb.(k)) with
        | Ptr b -> i.(ca.(k)) <- Buffer.address b
        | Int _ | Float _ -> fault "ld.param.u64 on non-pointer parameter");
        pc := next
    | 38 ->
        (match args.(cb.(k)) with
        | Int v -> i.(ca.(k)) <- v
        | Ptr _ | Float _ -> fault "ld.param.%%r on non-integer parameter");
        pc := next
    | 39 ->
        (match args.(cb.(k)) with
        | Float v -> f.(ca.(k)) <- v
        | Ptr _ | Int _ -> fault "ld.param float on non-float parameter");
        pc := next
    | 40 ->
        let addr = i.(cb.(k)) + cc.(k) in
        let off = addr land Buffer.offset_mask in
        (match lookup (addr lsr Buffer.offset_bits) with
        | Buffer.F32 a ->
            if off land 3 <> 0 then fault "misaligned f32 load";
            f.(ca.(k)) <- Bigarray.Array1.get a (off lsr 2)
        | _ -> fault "typed load does not match buffer kind");
        pc := next
    | 41 ->
        let addr = i.(cb.(k)) + cc.(k) in
        let off = addr land Buffer.offset_mask in
        (match lookup (addr lsr Buffer.offset_bits) with
        | Buffer.F64 a ->
            if off land 7 <> 0 then fault "misaligned f64 load";
            f.(ca.(k)) <- Bigarray.Array1.get a (off lsr 3)
        | _ -> fault "typed load does not match buffer kind");
        pc := next
    | 42 ->
        let addr = i.(cb.(k)) + cc.(k) in
        let off = addr land Buffer.offset_mask in
        (match lookup (addr lsr Buffer.offset_bits) with
        | Buffer.I32 a ->
            if off land 3 <> 0 then fault "misaligned i32 load";
            i.(ca.(k)) <- Int32.to_int (Bigarray.Array1.get a (off lsr 2))
        | _ -> fault "typed integer load does not match buffer kind");
        pc := next
    | 43 ->
        let addr = i.(ca.(k)) + cb.(k) in
        let off = addr land Buffer.offset_mask in
        (match lookup (addr lsr Buffer.offset_bits) with
        | Buffer.F32 a -> Bigarray.Array1.set a (off lsr 2) f.(cc.(k))
        | _ -> fault "typed store does not match buffer kind");
        pc := next
    | 44 ->
        let addr = i.(ca.(k)) + cb.(k) in
        let off = addr land Buffer.offset_mask in
        (match lookup (addr lsr Buffer.offset_bits) with
        | Buffer.F64 a -> Bigarray.Array1.set a (off lsr 3) f.(cc.(k))
        | _ -> fault "typed store does not match buffer kind");
        pc := next
    | 45 ->
        let addr = i.(ca.(k)) + cb.(k) in
        let off = addr land Buffer.offset_mask in
        (match lookup (addr lsr Buffer.offset_bits) with
        | Buffer.I32 a -> Bigarray.Array1.set a (off lsr 2) (Int32.of_int i.(cc.(k)))
        | _ -> fault "typed integer store does not match buffer kind");
        pc := next
    | 46 ->
        f.(ca.(k)) <- fns.(cc.(k)) f.(cb.(k));
        pc := next
    | 47 ->
        f.(ca.(k)) <- round32 (fns.(cc.(k)) f.(cb.(k)));
        pc := next
    | 48 ->
        let addr = i.(cb.(k)) + cc.(k) in
        let off = addr land Buffer.offset_mask in
        (match lookup (addr lsr Buffer.offset_bits) with
        | Buffer.F16 a ->
            if off land 1 <> 0 then fault "misaligned f16 load";
            f.(ca.(k)) <- Half.float_of_bits (Bigarray.Array1.get a (off lsr 1))
        | _ -> fault "typed load does not match buffer kind");
        pc := next
    | 49 ->
        let addr = i.(ca.(k)) + cb.(k) in
        let off = addr land Buffer.offset_mask in
        (match lookup (addr lsr Buffer.offset_bits) with
        | Buffer.F16 a ->
            if off land 1 <> 0 then fault "misaligned f16 store";
            Bigarray.Array1.set a (off lsr 1) (Half.bits_of_float f.(cc.(k)))
        | _ -> fault "typed store does not match buffer kind");
        pc := next
    | _ -> fault "corrupt opcode"
  done

(* ------------------------------------------------------------------ *)
(* Superinstruction (structure-of-arrays) execution of one cta.

   Every lane of the cta advances through the program lock-step, one
   fused dispatch per plan unit (see [soa_plan]): mixed ALU chains run
   their instructions back-to-back over the flat register rows, with
   the dense fast path walking lanes in [lane_block]-wide unrolled
   blocks; memory-terminated chains snapshot lane addresses into the
   [sa] scratch column and resolve the target buffer once per cta; and
   integer-division islands keep their per-lane fault handler.  For
   launches admitted by [parallel_ok] this is bit-identical to the
   scalar (lane-major) sweep: lanes are independent except for the
   radix-8 reduction-tail contract, whose only cross-lane
   reads-after-writes flow from lower lanes at earlier program points
   to a later lane at a later program point — an order both schedules
   preserve (and reduction tails are branchy, so they are rejected by
   [plan_soa] anyway and never reach this path; the argument covers
   any future straight-line shape).

   Fault determinism: lanes that fault are recorded and deactivated,
   the rest of the cta runs on, and the *lowest* faulted lane is
   reported.  Lanes below the lowest lock-step fault complete and
   behave exactly as in the scalar sweep (they read nothing from
   higher lanes), so the lowest lock-step fault is the fault the
   scalar sweep would hit first — same lane, same message.  Memory
   past that fault is unspecified, as in the scalar contract.  Faults
   raised outside a per-lane handler (parameter-class mismatches,
   corrupt opcodes — conditions uniform across lanes) are charged to
   the lowest active lane, which is the lane the scalar sweep would
   fault on.  The column-resident fast pass of a memory unit may
   partially execute before bailing to the per-lane slow pass; that is
   safe because the unit is idempotent once [sa] is snapshotted —
   re-running a lane's load or store reads the same address and the
   same unchanged source column, so the slow pass reproduces the exact
   per-lane outcomes (values and fault messages) of the scalar sweep.

   Returns the lowest faulted [(lane, exn)], or [None]. *)

let lane_block = 8

(* Lane-blocked dense float ladder bodies.  On the dense fast path the
   active set is the identity prefix [0, n), so these run over
   contiguous column segments in [lane_block]-wide unrolled blocks of
   unsafe accesses — no per-lane indirection or branching, the bounds
   reasoning amortized across the block.  Callers pass row origins
   ([reg * cap]) and guarantee [n <= cap], so every touched index is in
   bounds.  Lanes are independent columns, so a block is safe even when
   the destination row aliases a source row. *)

let add_dense sf ba bb bc n =
  let nb = n - (n land (lane_block - 1)) in
  let l = ref 0 in
  while !l < nb do
    let i = !l in
    Array.unsafe_set sf (ba + i)
      (Array.unsafe_get sf (bb + i) +. Array.unsafe_get sf (bc + i));
    Array.unsafe_set sf (ba + i + 1)
      (Array.unsafe_get sf (bb + i + 1) +. Array.unsafe_get sf (bc + i + 1));
    Array.unsafe_set sf (ba + i + 2)
      (Array.unsafe_get sf (bb + i + 2) +. Array.unsafe_get sf (bc + i + 2));
    Array.unsafe_set sf (ba + i + 3)
      (Array.unsafe_get sf (bb + i + 3) +. Array.unsafe_get sf (bc + i + 3));
    Array.unsafe_set sf (ba + i + 4)
      (Array.unsafe_get sf (bb + i + 4) +. Array.unsafe_get sf (bc + i + 4));
    Array.unsafe_set sf (ba + i + 5)
      (Array.unsafe_get sf (bb + i + 5) +. Array.unsafe_get sf (bc + i + 5));
    Array.unsafe_set sf (ba + i + 6)
      (Array.unsafe_get sf (bb + i + 6) +. Array.unsafe_get sf (bc + i + 6));
    Array.unsafe_set sf (ba + i + 7)
      (Array.unsafe_get sf (bb + i + 7) +. Array.unsafe_get sf (bc + i + 7));
    l := i + lane_block
  done;
  for i = nb to n - 1 do
    Array.unsafe_set sf (ba + i)
      (Array.unsafe_get sf (bb + i) +. Array.unsafe_get sf (bc + i))
  done

let sub_dense sf ba bb bc n =
  let nb = n - (n land (lane_block - 1)) in
  let l = ref 0 in
  while !l < nb do
    let i = !l in
    Array.unsafe_set sf (ba + i)
      (Array.unsafe_get sf (bb + i) -. Array.unsafe_get sf (bc + i));
    Array.unsafe_set sf (ba + i + 1)
      (Array.unsafe_get sf (bb + i + 1) -. Array.unsafe_get sf (bc + i + 1));
    Array.unsafe_set sf (ba + i + 2)
      (Array.unsafe_get sf (bb + i + 2) -. Array.unsafe_get sf (bc + i + 2));
    Array.unsafe_set sf (ba + i + 3)
      (Array.unsafe_get sf (bb + i + 3) -. Array.unsafe_get sf (bc + i + 3));
    Array.unsafe_set sf (ba + i + 4)
      (Array.unsafe_get sf (bb + i + 4) -. Array.unsafe_get sf (bc + i + 4));
    Array.unsafe_set sf (ba + i + 5)
      (Array.unsafe_get sf (bb + i + 5) -. Array.unsafe_get sf (bc + i + 5));
    Array.unsafe_set sf (ba + i + 6)
      (Array.unsafe_get sf (bb + i + 6) -. Array.unsafe_get sf (bc + i + 6));
    Array.unsafe_set sf (ba + i + 7)
      (Array.unsafe_get sf (bb + i + 7) -. Array.unsafe_get sf (bc + i + 7));
    l := i + lane_block
  done;
  for i = nb to n - 1 do
    Array.unsafe_set sf (ba + i)
      (Array.unsafe_get sf (bb + i) -. Array.unsafe_get sf (bc + i))
  done

let mul_dense sf ba bb bc n =
  let nb = n - (n land (lane_block - 1)) in
  let l = ref 0 in
  while !l < nb do
    let i = !l in
    Array.unsafe_set sf (ba + i)
      (Array.unsafe_get sf (bb + i) *. Array.unsafe_get sf (bc + i));
    Array.unsafe_set sf (ba + i + 1)
      (Array.unsafe_get sf (bb + i + 1) *. Array.unsafe_get sf (bc + i + 1));
    Array.unsafe_set sf (ba + i + 2)
      (Array.unsafe_get sf (bb + i + 2) *. Array.unsafe_get sf (bc + i + 2));
    Array.unsafe_set sf (ba + i + 3)
      (Array.unsafe_get sf (bb + i + 3) *. Array.unsafe_get sf (bc + i + 3));
    Array.unsafe_set sf (ba + i + 4)
      (Array.unsafe_get sf (bb + i + 4) *. Array.unsafe_get sf (bc + i + 4));
    Array.unsafe_set sf (ba + i + 5)
      (Array.unsafe_get sf (bb + i + 5) *. Array.unsafe_get sf (bc + i + 5));
    Array.unsafe_set sf (ba + i + 6)
      (Array.unsafe_get sf (bb + i + 6) *. Array.unsafe_get sf (bc + i + 6));
    Array.unsafe_set sf (ba + i + 7)
      (Array.unsafe_get sf (bb + i + 7) *. Array.unsafe_get sf (bc + i + 7));
    l := i + lane_block
  done;
  for i = nb to n - 1 do
    Array.unsafe_set sf (ba + i)
      (Array.unsafe_get sf (bb + i) *. Array.unsafe_get sf (bc + i))
  done

let fma_dense sf ba bb bc bd n =
  let nb = n - (n land (lane_block - 1)) in
  let l = ref 0 in
  while !l < nb do
    let i = !l in
    Array.unsafe_set sf (ba + i)
      ((Array.unsafe_get sf (bb + i) *. Array.unsafe_get sf (bc + i))
      +. Array.unsafe_get sf (bd + i));
    Array.unsafe_set sf (ba + i + 1)
      ((Array.unsafe_get sf (bb + i + 1) *. Array.unsafe_get sf (bc + i + 1))
      +. Array.unsafe_get sf (bd + i + 1));
    Array.unsafe_set sf (ba + i + 2)
      ((Array.unsafe_get sf (bb + i + 2) *. Array.unsafe_get sf (bc + i + 2))
      +. Array.unsafe_get sf (bd + i + 2));
    Array.unsafe_set sf (ba + i + 3)
      ((Array.unsafe_get sf (bb + i + 3) *. Array.unsafe_get sf (bc + i + 3))
      +. Array.unsafe_get sf (bd + i + 3));
    Array.unsafe_set sf (ba + i + 4)
      ((Array.unsafe_get sf (bb + i + 4) *. Array.unsafe_get sf (bc + i + 4))
      +. Array.unsafe_get sf (bd + i + 4));
    Array.unsafe_set sf (ba + i + 5)
      ((Array.unsafe_get sf (bb + i + 5) *. Array.unsafe_get sf (bc + i + 5))
      +. Array.unsafe_get sf (bd + i + 5));
    Array.unsafe_set sf (ba + i + 6)
      ((Array.unsafe_get sf (bb + i + 6) *. Array.unsafe_get sf (bc + i + 6))
      +. Array.unsafe_get sf (bd + i + 6));
    Array.unsafe_set sf (ba + i + 7)
      ((Array.unsafe_get sf (bb + i + 7) *. Array.unsafe_get sf (bc + i + 7))
      +. Array.unsafe_get sf (bd + i + 7));
    l := i + lane_block
  done;
  for i = nb to n - 1 do
    Array.unsafe_set sf (ba + i)
      ((Array.unsafe_get sf (bb + i) *. Array.unsafe_get sf (bc + i))
      +. Array.unsafe_get sf (bd + i))
  done

let exec_cta_soa p (lookup : int -> Buffer.data) (args : param_value array) (s : soa_ctx)
    ~ctaid ~block ~grid =
  let plan = match p.soa with Some pl -> pl | None -> assert false in
  let co = p.co and ca = p.ca and cb = p.cb and cc = p.cc and cd = p.cd in
  let sf = s.sf and si = s.si and sp = s.sp and act = s.act and sa = s.sa in
  let nl = s.cap in
  let fns = p.fns in
  let obits = Buffer.offset_bits and omask = Buffer.offset_mask in
  for l = 0 to block - 1 do
    Array.unsafe_set act l l
  done;
  let nact = ref block in
  (* [act] stays sorted (it starts as the identity and compaction
     preserves order), so it is the identity prefix — and the hot arms
     can skip the indirection — exactly when its last entry equals its
     index.  That is the common case: a full cta whose bounds guard
     retires no lane stays dense for the whole program. *)
  let dense = ref true in
  let fmin = ref max_int and fexn = ref None in
  let faulted = ref false in
  let record l e =
    if l < !fmin then begin
      fmin := l;
      fexn := Some e
    end;
    faulted := true
  in
  (* Drop lanes a per-lane fault handler marked with -1. *)
  let compact () =
    let keep = ref 0 in
    for ai = 0 to !nact - 1 do
      let l = act.(ai) in
      if l >= 0 then begin
        act.(!keep) <- l;
        incr keep
      end
    done;
    nact := !keep;
    dense := !keep = 0 || act.(!keep - 1) = !keep - 1;
    faulted := false
  in
  (* One mixed ALU chain: instructions [k0, k1) executed back-to-back.
     Every chain op is either non-faulting or lane-uniform
     (parameter-class mismatches), so the caller wraps the whole chain
     in a single uniform-fault scope and no per-lane handler runs on
     this path.  [n] and [d] are chain-invariant: nothing inside a
     chain retires or faults individual lanes. *)
  let exec_chain k0 k1 =
    let n = !nact in
    let d = !dense in
    for k = k0 to k1 - 1 do
      match co.(k) with
      | 1 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then add_dense sf ba bb bc n
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sf (ba + l)
                (Array.unsafe_get sf (bb + l) +. Array.unsafe_get sf (bc + l))
            done
      | 2 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then sub_dense sf ba bb bc n
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sf (ba + l)
                (Array.unsafe_get sf (bb + l) -. Array.unsafe_get sf (bc + l))
            done
      | 3 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then mul_dense sf ba bb bc n
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sf (ba + l)
                (Array.unsafe_get sf (bb + l) *. Array.unsafe_get sf (bc + l))
            done
      | 4 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sf (ba + l)
                (Array.unsafe_get sf (bb + l) /. Array.unsafe_get sf (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sf (ba + l)
                (Array.unsafe_get sf (bb + l) /. Array.unsafe_get sf (bc + l))
            done
      | 5 ->
          (* the hot one: dslash/clover bodies are mostly fma chains *)
          let ba = ca.(k) * nl
          and bb = cb.(k) * nl
          and bc = cc.(k) * nl
          and bd = cd.(k) * nl in
          if d then fma_dense sf ba bb bc bd n
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sf (ba + l)
                ((Array.unsafe_get sf (bb + l) *. Array.unsafe_get sf (bc + l))
                +. Array.unsafe_get sf (bd + l))
            done
      | 6 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sf (ba + l) (-.Array.unsafe_get sf (bb + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sf (ba + l) (-.Array.unsafe_get sf (bb + l))
            done
      | 7 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set si (ba + l)
                (Array.unsafe_get si (bb + l) + Array.unsafe_get si (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set si (ba + l)
                (Array.unsafe_get si (bb + l) + Array.unsafe_get si (bc + l))
            done
      | 8 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set si (ba + l)
                (Array.unsafe_get si (bb + l) - Array.unsafe_get si (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set si (ba + l)
                (Array.unsafe_get si (bb + l) - Array.unsafe_get si (bc + l))
            done
      | 9 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set si (ba + l)
                (Array.unsafe_get si (bb + l) * Array.unsafe_get si (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set si (ba + l)
                (Array.unsafe_get si (bb + l) * Array.unsafe_get si (bc + l))
            done
      | 11 ->
          let ba = ca.(k) * nl
          and bb = cb.(k) * nl
          and bc = cc.(k) * nl
          and bd = cd.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set si (ba + l)
                ((Array.unsafe_get si (bb + l) * Array.unsafe_get si (bc + l))
                + Array.unsafe_get si (bd + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set si (ba + l)
                ((Array.unsafe_get si (bb + l) * Array.unsafe_get si (bc + l))
                + Array.unsafe_get si (bd + l))
            done
      | 12 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and amount = cc.(k) in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set si (ba + l) (Array.unsafe_get si (bb + l) lsl amount)
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set si (ba + l) (Array.unsafe_get si (bb + l) lsl amount)
            done
      | 13 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set si (ba + l) (-Array.unsafe_get si (bb + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set si (ba + l) (-Array.unsafe_get si (bb + l))
            done
      | 14 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl in
          if d then Array.blit sf bb sf ba n
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sf (ba + l) (Array.unsafe_get sf (bb + l))
            done
      | 15 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl in
          if d then Array.blit si bb si ba n
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set si (ba + l) (Array.unsafe_get si (bb + l))
            done
      | 16 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sf (ba + l) (round32 (Array.unsafe_get sf (bb + l)))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sf (ba + l) (round32 (Array.unsafe_get sf (bb + l)))
            done
      | 17 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sf (ba + l) (float_of_int (Array.unsafe_get si (bb + l)))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sf (ba + l) (float_of_int (Array.unsafe_get si (bb + l)))
            done
      | 18 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set si (ba + l) (int_of_float (Array.unsafe_get sf (bb + l)))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set si (ba + l) (int_of_float (Array.unsafe_get sf (bb + l)))
            done
      | 19 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get sf (bb + l) = Array.unsafe_get sf (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get sf (bb + l) = Array.unsafe_get sf (bc + l))
            done
      | 20 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get sf (bb + l) <> Array.unsafe_get sf (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get sf (bb + l) <> Array.unsafe_get sf (bc + l))
            done
      | 21 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get sf (bb + l) < Array.unsafe_get sf (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get sf (bb + l) < Array.unsafe_get sf (bc + l))
            done
      | 22 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get sf (bb + l) <= Array.unsafe_get sf (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get sf (bb + l) <= Array.unsafe_get sf (bc + l))
            done
      | 23 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get sf (bb + l) > Array.unsafe_get sf (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get sf (bb + l) > Array.unsafe_get sf (bc + l))
            done
      | 24 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get sf (bb + l) >= Array.unsafe_get sf (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get sf (bb + l) >= Array.unsafe_get sf (bc + l))
            done
      | 25 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get si (bb + l) = Array.unsafe_get si (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get si (bb + l) = Array.unsafe_get si (bc + l))
            done
      | 26 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get si (bb + l) <> Array.unsafe_get si (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get si (bb + l) <> Array.unsafe_get si (bc + l))
            done
      | 27 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get si (bb + l) < Array.unsafe_get si (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get si (bb + l) < Array.unsafe_get si (bc + l))
            done
      | 28 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get si (bb + l) <= Array.unsafe_get si (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get si (bb + l) <= Array.unsafe_get si (bc + l))
            done
      | 29 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get si (bb + l) > Array.unsafe_get si (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get si (bb + l) > Array.unsafe_get si (bc + l))
            done
      | 30 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get si (bb + l) >= Array.unsafe_get si (bc + l))
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set sp (ba + l)
                (Array.unsafe_get si (bb + l) >= Array.unsafe_get si (bc + l))
            done
      | 33 ->
          let ba = ca.(k) * nl in
          if d then
            for l = 0 to n - 1 do
              Array.unsafe_set si (ba + l) l
            done
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set si (ba + l) l
            done
      | 34 ->
          let ba = ca.(k) * nl in
          if d then Array.fill si ba n block
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set si (ba + l) block
            done
      | 35 ->
          let ba = ca.(k) * nl in
          if d then Array.fill si ba n ctaid
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set si (ba + l) ctaid
            done
      | 36 ->
          let ba = ca.(k) * nl in
          if d then Array.fill si ba n grid
          else
            for ai = 0 to n - 1 do
              let l = Array.unsafe_get act ai in
              Array.unsafe_set si (ba + l) grid
            done
      | 37 -> (
          match args.(cb.(k)) with
          | Ptr b ->
              let v = Buffer.address b and ba = ca.(k) * nl in
              if d then Array.fill si ba n v
              else
                for ai = 0 to n - 1 do
                  let l = Array.unsafe_get act ai in
                  Array.unsafe_set si (ba + l) v
                done
          | Int _ | Float _ -> fault "ld.param.u64 on non-pointer parameter")
      | 38 -> (
          match args.(cb.(k)) with
          | Int v ->
              let ba = ca.(k) * nl in
              if d then Array.fill si ba n v
              else
                for ai = 0 to n - 1 do
                  let l = Array.unsafe_get act ai in
                  Array.unsafe_set si (ba + l) v
                done
          | Ptr _ | Float _ -> fault "ld.param.%%r on non-integer parameter")
      | 39 -> (
          match args.(cb.(k)) with
          | Float v ->
              let ba = ca.(k) * nl in
              if d then Array.fill sf ba n v
              else
                for ai = 0 to n - 1 do
                  let l = Array.unsafe_get act ai in
                  Array.unsafe_set sf (ba + l) v
                done
          | Ptr _ | Int _ -> fault "ld.param float on non-float parameter")
      | 46 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl in
          let fn = fns.(cc.(k)) in
          for ai = 0 to n - 1 do
            let l = Array.unsafe_get act ai in
            Array.unsafe_set sf (ba + l) (fn (Array.unsafe_get sf (bb + l)))
          done
      | 47 ->
          let ba = ca.(k) * nl and bb = cb.(k) * nl in
          let fn = fns.(cc.(k)) in
          for ai = 0 to n - 1 do
            let l = Array.unsafe_get act ai in
            Array.unsafe_set sf (ba + l) (round32 (fn (Array.unsafe_get sf (bb + l))))
          done
      | _ -> fault "corrupt opcode"
    done
  in
  (* Integer-division island: the only per-lane-faultable non-memory
     op, kept under its own handler exactly as the scalar sweep would
     fault it. *)
  let exec_div k =
    let n = !nact in
    let ba = ca.(k) * nl and bb = cb.(k) * nl and bc = cc.(k) * nl in
    for ai = 0 to n - 1 do
      let l = Array.unsafe_get act ai in
      try
        let d = Array.unsafe_get si (bc + l) in
        if d = 0 then fault "integer division by zero";
        Array.unsafe_set si (ba + l) (Array.unsafe_get si (bb + l) / d)
      with e ->
        record l e;
        act.(ai) <- -1
    done
  in
  (* Column-resident memory unit, two passes over the active lanes.
     Pass 1 snapshots every lane's effective address into the [sa]
     scratch column — after that the unit is idempotent, so the fast
     pass may bail at any point and the slow pass restart from
     scratch.  Pass 2 resolves the *first* active lane's buffer once
     for the whole cta and runs the gather/scatter as a tight per-lane
     loop; any lane addressing a different buffer, misaligning, or
     indexing out of bounds aborts to [mem_slow], the per-lane generic
     loop with exactly the scalar sweep's fault messages. *)
  let snap ab off0 n =
    if !dense then
      for l = 0 to n - 1 do
        Array.unsafe_set sa l (Array.unsafe_get si (ab + l) + off0)
      done
    else
      for ai = 0 to n - 1 do
        let l = Array.unsafe_get act ai in
        Array.unsafe_set sa l (Array.unsafe_get si (ab + l) + off0)
      done
  in
  let mem_slow k n =
    match co.(k) with
    | 40 ->
        let ba = ca.(k) * nl in
        for ai = 0 to n - 1 do
          let l = Array.unsafe_get act ai in
          try
            let addr = Array.unsafe_get sa l in
            let off = addr land omask in
            match lookup (addr lsr obits) with
            | Buffer.F32 a ->
                if off land 3 <> 0 then fault "misaligned f32 load";
                Array.unsafe_set sf (ba + l) (Bigarray.Array1.get a (off lsr 2))
            | _ -> fault "typed load does not match buffer kind"
          with e ->
            record l e;
            act.(ai) <- -1
        done
    | 41 ->
        let ba = ca.(k) * nl in
        for ai = 0 to n - 1 do
          let l = Array.unsafe_get act ai in
          try
            let addr = Array.unsafe_get sa l in
            let off = addr land omask in
            match lookup (addr lsr obits) with
            | Buffer.F64 a ->
                if off land 7 <> 0 then fault "misaligned f64 load";
                Array.unsafe_set sf (ba + l) (Bigarray.Array1.get a (off lsr 3))
            | _ -> fault "typed load does not match buffer kind"
          with e ->
            record l e;
            act.(ai) <- -1
        done
    | 42 ->
        let ba = ca.(k) * nl in
        for ai = 0 to n - 1 do
          let l = Array.unsafe_get act ai in
          try
            let addr = Array.unsafe_get sa l in
            let off = addr land omask in
            match lookup (addr lsr obits) with
            | Buffer.I32 a ->
                if off land 3 <> 0 then fault "misaligned i32 load";
                Array.unsafe_set si (ba + l)
                  (Int32.to_int (Bigarray.Array1.get a (off lsr 2)))
            | _ -> fault "typed integer load does not match buffer kind"
          with e ->
            record l e;
            act.(ai) <- -1
        done
    | 43 ->
        let bc = cc.(k) * nl in
        for ai = 0 to n - 1 do
          let l = Array.unsafe_get act ai in
          try
            let addr = Array.unsafe_get sa l in
            let off = addr land omask in
            match lookup (addr lsr obits) with
            | Buffer.F32 a -> Bigarray.Array1.set a (off lsr 2) (Array.unsafe_get sf (bc + l))
            | _ -> fault "typed store does not match buffer kind"
          with e ->
            record l e;
            act.(ai) <- -1
        done
    | 44 ->
        let bc = cc.(k) * nl in
        for ai = 0 to n - 1 do
          let l = Array.unsafe_get act ai in
          try
            let addr = Array.unsafe_get sa l in
            let off = addr land omask in
            match lookup (addr lsr obits) with
            | Buffer.F64 a -> Bigarray.Array1.set a (off lsr 3) (Array.unsafe_get sf (bc + l))
            | _ -> fault "typed store does not match buffer kind"
          with e ->
            record l e;
            act.(ai) <- -1
        done
    | 45 ->
        let bc = cc.(k) * nl in
        for ai = 0 to n - 1 do
          let l = Array.unsafe_get act ai in
          try
            let addr = Array.unsafe_get sa l in
            let off = addr land omask in
            match lookup (addr lsr obits) with
            | Buffer.I32 a ->
                Bigarray.Array1.set a (off lsr 2) (Int32.of_int (Array.unsafe_get si (bc + l)))
            | _ -> fault "typed integer store does not match buffer kind"
          with e ->
            record l e;
            act.(ai) <- -1
        done
    | 48 ->
        let ba = ca.(k) * nl in
        for ai = 0 to n - 1 do
          let l = Array.unsafe_get act ai in
          try
            let addr = Array.unsafe_get sa l in
            let off = addr land omask in
            match lookup (addr lsr obits) with
            | Buffer.F16 a ->
                if off land 1 <> 0 then fault "misaligned f16 load";
                Array.unsafe_set sf (ba + l)
                  (Half.float_of_bits (Bigarray.Array1.get a (off lsr 1)))
            | _ -> fault "typed load does not match buffer kind"
          with e ->
            record l e;
            act.(ai) <- -1
        done
    | 49 ->
        let bc = cc.(k) * nl in
        for ai = 0 to n - 1 do
          let l = Array.unsafe_get act ai in
          try
            let addr = Array.unsafe_get sa l in
            let off = addr land omask in
            match lookup (addr lsr obits) with
            | Buffer.F16 a ->
                if off land 1 <> 0 then fault "misaligned f16 store";
                Bigarray.Array1.set a (off lsr 1)
                  (Half.bits_of_float (Array.unsafe_get sf (bc + l)))
            | _ -> fault "typed store does not match buffer kind"
          with e ->
            record l e;
            act.(ai) <- -1
        done
    | _ -> fault "corrupt opcode"
  in
  let exec_mem k =
    let n = !nact in
    let o = co.(k) in
    let store = (o >= 43 && o <= 45) || o = 49 in
    let ab = (if store then ca.(k) else cb.(k)) * nl
    and off0 = if store then cb.(k) else cc.(k) in
    snap ab off0 n;
    let bid0 = Array.unsafe_get sa (Array.unsafe_get act 0) lsr obits in
    let fast =
      match lookup bid0 with
      | exception _ -> false
      | data -> (
          try
            match (o, data) with
            | 40, Buffer.F32 a ->
                let ba = ca.(k) * nl in
                for ai = 0 to n - 1 do
                  let l = Array.unsafe_get act ai in
                  let addr = Array.unsafe_get sa l in
                  if addr lsr obits <> bid0 || addr land 3 <> 0 then raise Exit;
                  Array.unsafe_set sf (ba + l)
                    (Bigarray.Array1.get a ((addr land omask) lsr 2))
                done;
                true
            | 41, Buffer.F64 a ->
                let ba = ca.(k) * nl in
                for ai = 0 to n - 1 do
                  let l = Array.unsafe_get act ai in
                  let addr = Array.unsafe_get sa l in
                  if addr lsr obits <> bid0 || addr land 7 <> 0 then raise Exit;
                  Array.unsafe_set sf (ba + l)
                    (Bigarray.Array1.get a ((addr land omask) lsr 3))
                done;
                true
            | 42, Buffer.I32 a ->
                let ba = ca.(k) * nl in
                for ai = 0 to n - 1 do
                  let l = Array.unsafe_get act ai in
                  let addr = Array.unsafe_get sa l in
                  if addr lsr obits <> bid0 || addr land 3 <> 0 then raise Exit;
                  Array.unsafe_set si (ba + l)
                    (Int32.to_int (Bigarray.Array1.get a ((addr land omask) lsr 2)))
                done;
                true
            | 43, Buffer.F32 a ->
                let bc = cc.(k) * nl in
                for ai = 0 to n - 1 do
                  let l = Array.unsafe_get act ai in
                  let addr = Array.unsafe_get sa l in
                  if addr lsr obits <> bid0 then raise Exit;
                  Bigarray.Array1.set a ((addr land omask) lsr 2) (Array.unsafe_get sf (bc + l))
                done;
                true
            | 44, Buffer.F64 a ->
                let bc = cc.(k) * nl in
                for ai = 0 to n - 1 do
                  let l = Array.unsafe_get act ai in
                  let addr = Array.unsafe_get sa l in
                  if addr lsr obits <> bid0 then raise Exit;
                  Bigarray.Array1.set a ((addr land omask) lsr 3) (Array.unsafe_get sf (bc + l))
                done;
                true
            | 45, Buffer.I32 a ->
                let bc = cc.(k) * nl in
                for ai = 0 to n - 1 do
                  let l = Array.unsafe_get act ai in
                  let addr = Array.unsafe_get sa l in
                  if addr lsr obits <> bid0 then raise Exit;
                  Bigarray.Array1.set a ((addr land omask) lsr 2)
                    (Int32.of_int (Array.unsafe_get si (bc + l)))
                done;
                true
            | 48, Buffer.F16 a ->
                let ba = ca.(k) * nl in
                for ai = 0 to n - 1 do
                  let l = Array.unsafe_get act ai in
                  let addr = Array.unsafe_get sa l in
                  if addr lsr obits <> bid0 || addr land 1 <> 0 then raise Exit;
                  Array.unsafe_set sf (ba + l)
                    (Half.float_of_bits (Bigarray.Array1.get a ((addr land omask) lsr 1)))
                done;
                true
            | 49, Buffer.F16 a ->
                let bc = cc.(k) * nl in
                for ai = 0 to n - 1 do
                  let l = Array.unsafe_get act ai in
                  let addr = Array.unsafe_get sa l in
                  if addr lsr obits <> bid0 || addr land 1 <> 0 then raise Exit;
                  Bigarray.Array1.set a ((addr land omask) lsr 1)
                    (Half.bits_of_float (Array.unsafe_get sf (bc + l)))
                done;
                true
            | _ -> false
          with _ -> false)
    in
    if not fast then mem_slow k n
  in
  (* Walk a span unit by unit: one uniform-fault scope per chain, the
     per-lane handlers confined to memory terminators and islands,
     compaction once per faulted unit (units never re-execute a lane's
     instruction non-idempotently, so deferring compaction to unit
     boundaries preserves the scalar sweep's outcomes). *)
  let exec_span k0 k1 =
    let u = ref k0 in
    while !u < k1 && !nact > 0 do
      let s0 = !u in
      let ue = Array.unsafe_get plan.u_end s0 in
      (match Array.unsafe_get plan.u_kind s0 with
      | 0 -> (
          try exec_chain s0 ue
          with e ->
            (* Lane-uniform fault: the scalar sweep would hit it on the
               lowest active lane first. *)
            record act.(0) e;
            nact := 0)
      | 1 -> (
          try
            exec_chain s0 (ue - 1);
            exec_mem (ue - 1)
          with e ->
            record act.(0) e;
            nact := 0)
      | _ -> exec_div s0);
      if !faulted then compact ();
      u := ue
    done
  in
  let pc = ref 0 in
  while !pc >= 0 && !nact > 0 do
    let k = !pc in
    match co.(k) with
    | 0 -> pc := -1
    | 32 ->
        (* exit branch: lanes whose predicate holds retire *)
        let pb = ca.(k) * nl in
        let n = !nact in
        let keep = ref 0 in
        for ai = 0 to n - 1 do
          let l = Array.unsafe_get act ai in
          if not (Array.unsafe_get sp (pb + l)) then begin
            Array.unsafe_set act !keep l;
            incr keep
          end
        done;
        nact := !keep;
        dense := !keep = 0 || act.(!keep - 1) = !keep - 1;
        pc := k + 1
    | 31 -> pc := ca.(k) (* unreachable: [plan_soa] rejects bra *)
    | _ ->
        let e = plan.span_end.(k) in
        exec_span k e;
        pc := e
  done;
  match !fexn with None -> None | Some e -> Some (!fmin, e)

(* ------------------------------------------------------------------ *)
(* Parallel-safety decision for one launch: every access's param slot is
   resolved to the bound buffer, then per stored buffer (a) all stores
   must use own-slot indexing (Affine or Slist — never Gather/Uniform),
   and (b) any read-back of a stored buffer must use the *same*
   per-work-item indexing on both sides, which the 8-aligned chunk
   boundaries then keep chunk-local (the reduction-tail contract).  A
   load whose target buffer is unknown could alias any store, so it
   forces sequential execution whenever the kernel stores at all — this
   is what keeps the in-place [p = shift p] gather on the sequential
   path its wrap-around semantics depend on. *)

let class_bit = function Uniform -> 1 | Affine -> 2 | Slist -> 4 | Gather -> 8

let parallel_ok p (params : param_value array) =
  Array.length p.accesses = 0
  ||
  let stores = Hashtbl.create 8 and loads = Hashtbl.create 8 in
  let any_store = Array.exists (fun a -> a.a_store) p.accesses in
  let ok = ref true in
  Array.iter
    (fun a ->
      let bid =
        if a.a_param < 0 || a.a_param >= Array.length params then None
        else match params.(a.a_param) with Ptr b -> Some b.Buffer.id | Int _ | Float _ -> None
      in
      match bid with
      | None -> if a.a_store || any_store then ok := false
      | Some bid ->
          let tbl = if a.a_store then stores else loads in
          let cur = match Hashtbl.find_opt tbl bid with Some m -> m | None -> 0 in
          Hashtbl.replace tbl bid (cur lor class_bit a.a_class))
    p.accesses;
  if !ok then
    Hashtbl.iter
      (fun bid smask ->
        if smask land (class_bit Uniform lor class_bit Gather) <> 0 then ok := false;
        match Hashtbl.find_opt loads bid with
        | None -> ()
        | Some lmask ->
            let union = smask lor lmask in
            if not (union = class_bit Affine || union = class_bit Slist) then ok := false)
      stores;
  !ok

(* ------------------------------------------------------------------ *)
(* Grid execution. *)

let enrich p e ~ctaid ~tid =
  match e with
  | Fault msg ->
      Fault (Printf.sprintf "%s [kernel %s, ctaid %d, tid %d]" msg p.kernel.kname ctaid tid)
  | e -> e

(* One cta span, executed in (cta, tid) order.  [key] is the span's
   position in the flat batch schedule (launch-major, cta-ordered), so
   the first fault recorded at the lowest key is exactly the fault a
   sequential sweep of the whole batch would hit first.  Recording a
   fault lowers [stop] so spans with higher keys (later ctas / later
   launches) bail out; lower-keyed spans run to completion. *)
let run_span p lookup args w ~block ~grid ~c0 ~c1 ~key ~(stop : int Atomic.t)
    (faults : (int * int * exn) option array) =
  try
    for cta = c0 to c1 - 1 do
      if Atomic.get stop < key then raise Exit;
      for t = 0 to block - 1 do
        try exec_thread p lookup args w ~tid:t ~ctaid:cta ~ntid:block ~nctaid:grid
        with e ->
          faults.(key) <- Some (cta, t, e);
          let rec lower () =
            let cur = Atomic.get stop in
            if key < cur && not (Atomic.compare_and_set stop cur key) then lower ()
          in
          lower ();
          raise Exit
      done
    done
  with Exit -> ()

(* Same span contract, superinstruction execution: whole ctas in
   order, each run lock-step across its lanes by [exec_cta_soa].  The
   fault protocol is identical — lowest (cta, lane) recorded under the
   span's key, [stop] lowered so higher-keyed spans bail. *)
let run_span_soa p lookup args s ~block ~grid ~c0 ~c1 ~key ~(stop : int Atomic.t)
    (faults : (int * int * exn) option array) =
  try
    for cta = c0 to c1 - 1 do
      if Atomic.get stop < key then raise Exit;
      match exec_cta_soa p lookup args s ~ctaid:cta ~block ~grid with
      | None -> ()
      | Some (lane, e) ->
          faults.(key) <- Some (cta, lane, e);
          let rec lower () =
            let cur = Atomic.get stop in
            if key < cur && not (Atomic.compare_and_set stop cur key) then lower ()
          in
          lower ();
          raise Exit
    done
  with Exit -> ()

(* Launches smaller than this run inline: the pool handoff costs more
   than it buys on tiny grids (and keeps the default-parallel test suite
   fast on many-core hosts). *)
let min_parallel_threads = 1024

let gcd a b =
  let rec go a b = if b = 0 then a else go b (a mod b) in
  go a b

(* ------------------------------------------------------------------ *)
(* Batched launch sweeps.  A batch is an ordered run of launches (the
   engine's flushed queue).  Each launch is pre-partitioned into cta
   spans — whole ctas, multiples of 8 work items, exactly the chunks
   [run_grid] used — and the flattened (launch, span) schedule is
   drained by workers pulling items off a single atomic cursor, so the
   pool is woken once per batch instead of once per launch.

   A launch may start before its predecessors complete iff its loads
   don't alias any predecessor's pending stores.  The per-launch
   read/write buffer sets come from the same decode-time provenance
   the per-launch analysis uses ([p.accesses], each access's param slot
   resolved against the bound parameters); edges are conservative
   per-buffer RAW, WAW and WAR — WAR included because a later writer
   overtaking an in-flight reader is just as racy.  Accesses whose base
   buffer can't be resolved make the launch a full barrier in both
   directions. *)

type launch = {
  l_prog : program;
  l_grid : int;
  l_block : int;
  l_params : param_value array;
}

type rw_set = {
  rs_reads : (int, unit) Hashtbl.t;
  rs_writes : (int, unit) Hashtbl.t;
  rs_unknown : bool; (* some access's base buffer is unresolvable *)
}

let rw_set p (params : param_value array) =
  let reads = Hashtbl.create 8 and writes = Hashtbl.create 8 in
  let unknown = ref false in
  Array.iter
    (fun a ->
      let bid =
        if a.a_param < 0 || a.a_param >= Array.length params then None
        else match params.(a.a_param) with Ptr b -> Some b.Buffer.id | Int _ | Float _ -> None
      in
      match bid with
      | None -> unknown := true
      | Some bid -> Hashtbl.replace (if a.a_store then writes else reads) bid ())
    p.accesses;
  { rs_reads = reads; rs_writes = writes; rs_unknown = !unknown }

(* Must launch [j] wait for earlier launch [i]?  RAW / WAW / WAR on any
   shared buffer, or either side touching memory it can't account for. *)
let conflicts i j =
  i.rs_unknown || j.rs_unknown
  || Hashtbl.fold
       (fun b () acc -> acc || Hashtbl.mem j.rs_reads b || Hashtbl.mem j.rs_writes b)
       i.rs_writes false
  || Hashtbl.fold (fun b () acc -> acc || Hashtbl.mem i.rs_reads b) j.rs_writes false

(* Spans for one launch: the same alignment, small-launch threshold and
   store-disjointness gate as the old per-launch path, so a launch that
   must run as one sequential sweep still overlaps *other* independent
   launches in the batch. *)
let spans_of workers l =
  if l.l_grid <= 0 || l.l_block <= 0 then [||]
  else begin
    let align = 8 / gcd l.l_block 8 in
    let units = l.l_grid / align in
    let w =
      if
        workers <= 1 || units < 2
        || l.l_grid * l.l_block < min_parallel_threads
        || not (parallel_ok l.l_prog l.l_params)
      then 1
      else min workers units
    in
    let bound k = if k >= w then l.l_grid else units * k / w * align in
    Array.init w (fun k -> (bound k, bound (k + 1)))
  end

let run_batch ?(workers = 1) ~lookup (launches : launch array) =
  let nl = Array.length launches in
  if nl > 0 then begin
    let spans = Array.map (spans_of workers) launches in
    (* Flat schedule: launch-major, cta-ordered — item index IS the
       deterministic fault priority. *)
    let items =
      Array.concat
        (Array.to_list
           (Array.mapi (fun li s -> Array.map (fun (c0, c1) -> (li, c0, c1)) s) spans))
    in
    let nitems = Array.length items in
    (* Per-launch execution strategy: superinstructions when the flag
       is on, the program decoded to an eligible plan, and the launch
       passes the same store-disjointness gate that admits worker
       splitting — [parallel_ok] is exactly the cross-lane independence
       the lock-step sweep relies on.  Tiny blocks stay scalar: there
       is nothing to amortize the per-cta dispatch over. *)
    let use_soa =
      Array.map
        (fun l ->
          superinstructions_enabled () && l.l_block >= 8 && l.l_prog.soa <> None
          && parallel_ok l.l_prog l.l_params)
        launches
    in
    if nitems > 0 then begin
      (* Dependency edges; skipped for singleton batches (the common
         [run_grid] path pays nothing for the generalization). *)
      let preds =
        if nl = 1 then [| [||] |]
        else begin
          let sets =
            Array.map (fun l -> rw_set l.l_prog l.l_params) launches
          in
          Array.init nl (fun j ->
              let acc = ref [] in
              for i = j - 1 downto 0 do
                if conflicts sets.(i) sets.(j) then acc := i :: !acc
              done;
              Array.of_list !acc)
        end
      in
      (* remaining.(l) counts l's unfinished spans; <= 0 means done.
         Atomic reads double as the release/acquire edge that makes a
         predecessor's buffer stores visible to its dependents. *)
      let remaining = Array.map (fun s -> Atomic.make (Array.length s)) spans in
      let m = Mutex.create () and cv = Condition.create () in
      let launch_done l = Atomic.get remaining.(l) <= 0 in
      let deps_met j = Array.for_all launch_done preds.(j) in
      let wait_deps j =
        if not (deps_met j) then begin
          Mutex.lock m;
          while not (deps_met j) do
            Condition.wait cv m
          done;
          Mutex.unlock m
        end
      in
      let complete l =
        if Atomic.fetch_and_add remaining.(l) (-1) = 1 then begin
          Mutex.lock m;
          Condition.broadcast cv;
          Mutex.unlock m
        end
      in
      let w = min workers nitems in
      (* Register files are per (program, worker); growing the slot
         table isn't thread-safe, so size it up front.  A program that
         appears in several concurrent launches is fine: distinct
         workers use distinct slots and [bind_slot] re-installs the
         launch state (zeroed registers + constant pools) per span. *)
      Array.iteri
        (fun li l ->
          if use_soa.(li) then ensure_soa_slots l.l_prog w l.l_block
          else ensure_slots l.l_prog w)
        launches;
      let stop = Atomic.make max_int in
      let faults = Array.make nitems None in
      let cursor = Atomic.make 0 in
      let worker k =
        let rec loop () =
          let idx = Atomic.fetch_and_add cursor 1 in
          if idx < nitems then begin
            let li, c0, c1 = items.(idx) in
            let l = launches.(li) in
            (* Never deadlocks: spans are claimed in flat order and
               every predecessor's spans precede this one, so the
               lowest unclaimed item always has its deps running or
               done.  Bailed-out spans (fault upstream) still count
               down [remaining], so waiters always wake. *)
            wait_deps li;
            let p = l.l_prog in
            if use_soa.(li) then
              run_span_soa p lookup l.l_params p.soa_slots.(k) ~block:l.l_block
                ~grid:l.l_grid ~c0 ~c1 ~key:idx ~stop faults
            else begin
              let wctx = p.slots.(k) in
              bind_slot p wctx;
              run_span p lookup l.l_params wctx ~block:l.l_block ~grid:l.l_grid
                ~c0 ~c1 ~key:idx ~stop faults
            end;
            complete li;
            loop ()
          end
        in
        loop ()
      in
      if w <= 1 then worker 0 else Vm_backend.run ~workers:w worker;
      (* Lowest (launch index, ctaid, tid) wins, batch-wide: the flat
         schedule is launch-major and cta-ordered, and within a span the
         sweep is sequential, so the first recorded fault in item order
         is the sequential batch's first fault — same message, same
         site. *)
      let first = ref None and fli = ref 0 in
      Array.iteri
        (fun idx fa ->
          if !first = None then
            match fa with
            | Some _ ->
                first := fa;
                let li, _, _ = items.(idx) in
                fli := li
            | None -> ())
        faults;
      match !first with
      | Some (cta, t, e) -> raise (enrich launches.(!fli).l_prog e ~ctaid:cta ~tid:t)
      | None -> ()
    end
  end

let run_grid ?(workers = 1) p ~grid ~block ~params ~lookup =
  run_batch ~workers ~lookup
    [| { l_prog = p; l_grid = grid; l_block = block; l_params = params } |]

let decoded_instructions p = Array.length p.co
let parallelizable p ~params = parallel_ok p params
