(** Device memory buffers.

    A buffer is typed storage in simulated device memory.  Addresses handed
    to kernels encode [(buffer id, byte offset)] in one integer so that PTX
    pointer arithmetic works unchanged while stray pointers into foreign
    buffers fault instead of corrupting memory. *)

type data =
  | F16 of (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t
      (** IEEE binary16 payloads; kernels convert to/from f32 at the access *)
  | F32 of (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t
  | F64 of (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  | I32 of (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { id : int; data : data; bytes : int }

val offset_bits : int
(** Byte offsets occupy the low [offset_bits] of an address; buffer ids
    live above them. *)

val offset_mask : int

val address : t -> int
(** The base "device pointer" handed to kernels. *)

val decode_address : int -> int * int
(** [(buffer id, byte offset)]. *)

val elem_bytes : data -> int
val length : t -> int

val create_f16 : int -> int -> t
(** [create_f16 id n]: n binary16 payloads (2 bytes each); allocate through
    the device. *)

val create_f32 : int -> int -> t
(** [create_f32 id n]: used by {!Device}; allocate through the device. *)

val create_f64 : int -> int -> t
val create_i32 : int -> int -> t
