(** Pre-decoded executable form of a PTX kernel and its multicore
    interpreter — the back half of the simulated driver JIT.

    [compile] lowers a validated kernel into a flat program: int-coded
    opcodes with operand indices in parallel arrays, branch targets
    pre-resolved, immediates promoted into constant-pool register slots.
    [run_grid] sweeps the grid, splitting whole-cta chunks across
    {!Vm_backend} workers when a decode-time provenance analysis proves
    the launch's stores are disjoint per work item — results are then
    bit-identical to the sequential sweep.  See DESIGN.md "Parallel VM
    back-end".

    Straight-line pointwise programs additionally decode to a
    *superinstruction plan*: maximal non-control spans are partitioned
    into fused dispatch units — mixed ALU chains (float and integer
    arithmetic, address mad/shl/add chains, cvt, setp, parameter and
    sreg reads), memory-terminated chains whose global load/store runs
    column-resident (lane addresses snapshotted, the buffer resolved
    once per cta), and per-lane-faultable islands (integer division).
    The SoA executor walks a unit's lanes in fixed-width blocks over
    flat unboxed register rows on the dense fast path.  Launches
    admitted by the same parallel-safety analysis run lock-step
    bit-identically to the scalar interpreter at every worker count;
    everything else (reduction tails, gathers that force sequential
    sweeps) stays on the scalar path.  See DESIGN.md "SIMD-blocked
    superinstructions". *)

type param_value = Ptr of Buffer.t | Int of int | Float of float

exception Fault of string
(** Raised on simulated device faults (type/alignment mismatches, stray
    pointers, division by zero...).  Faults hit inside a launch are
    re-raised on the launching thread with kernel name, ctaid and tid
    appended; when several workers fault, the lowest (ctaid, tid) fault
    wins deterministically. *)

type program

val compile : Ptx.Types.kernel -> program
(** Validate and pre-decode.  Raises {!Fault} on malformed kernels
    (undefined labels, unsupported operand classes). *)

val decoder_version : int
(** Bumped whenever the pre-decoded representation changes; persistent
    caches fold it into their keys so stale entries miss instead of
    misexecuting. *)

type portable
(** A {!program} with its closure-valued fields stripped: plain data,
    safe for [Marshal]. *)

val to_portable : program -> portable

val of_portable : portable -> program
(** Rehydrate: the math-subroutine table is rebuilt deterministically
    from the kernel body (the same walk {!compile} performs), so a
    round-tripped program executes bit-identically to a fresh compile.
    Raises {!Fault} if the body names an unknown subroutine. *)

val run_grid :
  ?workers:int ->
  program ->
  grid:int ->
  block:int ->
  params:param_value array ->
  lookup:(int -> Buffer.data) ->
  unit
(** Execute the full grid.  [workers] (default 1) caps the number of
    {!Vm_backend} workers; the effective count also respects the
    parallel-safety analysis, chunk granularity (whole ctas, multiples
    of 8 work items) and a small-launch threshold.  Equivalent to
    {!run_batch} with a single launch. *)

type launch = {
  l_prog : program;
  l_grid : int;
  l_block : int;
  l_params : param_value array;
}
(** One deferred launch of a batched sweep. *)

val run_batch :
  ?workers:int -> lookup:(int -> Buffer.data) -> launch array -> unit
(** Execute an ordered run of launches as one sweep: the whole flat
    (launch, cta-span) schedule is handed to the {!Vm_backend} pool at
    once and workers pull spans off a shared cursor, so the pool is
    woken once per batch rather than once per launch.  A launch starts
    before its predecessors complete only when the decode-time
    provenance proves its loads can't alias any predecessor's pending
    stores (conservative per-buffer RAW/WAW/WAR edges; an access with
    an unresolvable base buffer makes its launch a full barrier).
    Results are bit-identical to running the launches one by one on the
    sequential interpreter at every worker count, and faults are
    deterministic: the lowest (launch index, ctaid, tid) fault wins
    batch-wide and is raised with the same message the sequential
    sweep would produce.  On a fault, launches/spans scheduled after
    the winning fault may or may not have executed — exactly the
    contract a faulting device leaves memory in. *)

val decoded_instructions : program -> int
(** Flat instruction count after label compaction (introspection). *)

val set_superinstructions : bool -> unit
(** Toggle superinstruction (SoA) execution process-wide.  The initial
    value honours [REPRO_VM_SUPERINSN] via {!superinsn_of_env}; results
    are bit-identical either way, so this is a perf escape hatch and an
    A/B lever for benches. *)

val superinstructions_enabled : unit -> bool

val superinsn_of_env : string option -> bool
(** Pure parser behind the [REPRO_VM_SUPERINSN] initial value: [false]
    (executor off) exactly for the off/0/none/disabled spellings,
    case-insensitive and whitespace-trimmed — the same set the
    [REPRO_JIT_CACHE] override accepts.  Anything else, including
    [None] (unset) and the empty string, leaves the executor on. *)

type soa_stats = { spans : int; units : int; covered : int; total : int }
(** Superinstruction plan summary: [spans] fused regions covering
    [covered] of the [total] decoded instructions, executed as [units]
    dispatch units per cta (a mixed ALU chain, a memory-terminated
    chain, or a division island each count once).  All zeros except
    [total] when the program is ineligible. *)

val superinsn_stats : program -> soa_stats

val parallelizable : program -> params:param_value array -> bool
(** Whether the safety analysis lets a launch with these parameter
    bindings split across workers (exposed for tests and benches). *)
