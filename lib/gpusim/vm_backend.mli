(** Execution back-end for the VM's batched grid sweeps.

    The implementation is picked at build time by the dune rules in this
    directory: on OCaml >= 5 a persistent [Domain] pool woken by a
    single generation broadcast per sweep
    ([backends/vm_backend_multicore.ml]), on 4.x a sequential loop with
    the same signature ([backends/vm_backend_sequential.ml]).  [run] is
    called once per *batch* of launches, not once per launch: the
    worker function drains a shared schedule, so the handoff cost is
    paid once per flush.  Both back-ends execute worker functions over
    disjoint state, so results are bit-identical across back-ends. *)

val runtime : string
(** ["multicore"] or ["sequential"]; surfaced in bench artifacts so CI
    gates know whether a wall-clock speedup is even possible. *)

val available_domains : unit -> int
(** Hardware parallelism available to kernel launches:
    [Domain.recommended_domain_count ()] on OCaml 5, [1] on 4.x. *)

val run : workers:int -> (int -> unit) -> unit
(** [run ~workers f] executes [f 0 .. f (workers-1)], worker [0] on the
    calling thread, and returns when all have finished.  [f] must not
    raise — the VM reports faults out of band — and calls must not be
    nested (sweeps are synchronous; nested work must run with
    [workers = 1], which never touches the pool).  The sequential
    back-end runs the workers in index order on the calling thread. *)
