(** The simulated CUDA device: memory, launches, and a simulated clock.

    Functional mode executes every kernel on real buffers through the VM
    while also advancing the simulated clock by the modeled time;
    model-only mode skips execution (used by paper-scale benchmark sweeps,
    where only the clock matters). *)

type mode = Functional | Model_only

exception Out_of_device_memory
exception Launch_failure of string
(** Raised when the block geometry / register pressure does not fit the
    machine — the signal the Sec. VII auto-tuner probes for. *)

type stats = {
  mutable launches : int;
  mutable launch_failures : int;
  mutable kernel_ns : float;
  mutable h2d_bytes : int;
  mutable d2h_bytes : int;
  mutable transfers : int;
  mutable transfer_ns : float;
  mutable allocs : int;
  mutable frees : int;
}

type t = {
  machine : Machine.t;
  mutable mode : mode;
  mutable vm_domains : int;  (** worker cap for parallel kernel execution *)
  mutable clock_ns : float;
  mutable used_bytes : int;
  mutable buffers : Buffer.t option array;
  mutable next_id : int;
  mutable batch : Vm.launch list option;
      (** open batched sweep: deferred launches, most recent first *)
  stats : stats;
}

val create : ?mode:mode -> ?vm_domains:int -> Machine.t -> t
(** [vm_domains] caps the workers the VM may split a launch across;
    defaults via {!Machine.host_domains} (available cores, overridable
    with [REPRO_VM_DOMAINS]).  Results are bit-identical for any
    worker count. *)

val set_mode : t -> mode -> unit
val vm_domains : t -> int
val set_vm_domains : t -> int -> unit
val clock_ns : t -> float
val used_bytes : t -> int
val free_bytes : t -> int
val stats : t -> stats

val alloc_f16 : t -> int -> Buffer.t
(** [alloc_f16 t n]: n-element binary16 buffer (2 bytes per element). *)

val alloc_f32 : t -> int -> Buffer.t
(** [alloc_f32 t n]: n-element f32 buffer; raises {!Out_of_device_memory}
    when the capacity is exhausted (the memory cache spills and retries). *)

val alloc_f64 : t -> int -> Buffer.t
val alloc_i32 : t -> int -> Buffer.t

val free : t -> Buffer.t -> unit
(** Raises [Invalid_argument] on double free / stale buffers.  Flushes
    any open batch first so deferred launches never observe a freed
    buffer. *)

val begin_batch : t -> unit
(** Open a batched launch sweep: until {!end_batch}, functional
    execution in {!execute} is deferred and queued; modeled timing,
    stats and launch-fit checks stay eager.  Raises [Invalid_argument]
    if a batch is already open. *)

val flush_batch : t -> unit
(** Run every queued launch as one {!Vm.run_batch} sweep (workers pull
    (launch, cta-span) items cooperatively; independent launches
    overlap).  The batch stays open.  No-op when the queue is empty or
    no batch is open.  Host-side readers/writers of device buffer
    contents (memcache spills, page-outs, re-uploads) must call this
    first.  A VM fault propagates from here — deterministically the
    lowest (launch index, ctaid, tid) across the batch, with the same
    message a sequential sweep would raise. *)

val end_batch : t -> unit
(** {!flush_batch}, then close the batch (closes it even if the flush
    faults). *)

val batching : t -> bool
(** Whether a batch is currently open (introspection for tests). *)

val lookup : t -> int -> Buffer.data
(** Buffer id -> storage, for the VM; faults on freed buffers. *)

val transfer_cost : t -> bytes:int -> to_device:bool -> float
(** Record the traffic of a host<->device copy in the stats and return the
    modeled PCIe time in ns {e without} advancing the clock — asynchronous
    copies live on stream timelines owned by the stream scheduler. *)

val account_transfer : t -> bytes:int -> to_device:bool -> unit
(** Advance the clock by the PCIe model for a synchronous host<->device
    copy ([transfer_cost] + clock advance). *)

val advance_clock : t -> float -> unit
val set_clock_ns : t -> float -> unit

val execute : t -> Jit.compiled -> nthreads:int -> block:int -> params:Vm.param_value array -> float
(** Execute over [nthreads] logical threads in blocks of [block]:
    functionally runs the kernel (unless model-only) and returns its
    modeled duration in ns {e without} advancing the clock — stream
    timelines decide when it runs.  Raises {!Launch_failure} if the
    configuration does not fit. *)

val launch : t -> Jit.compiled -> nthreads:int -> block:int -> params:Vm.param_value array -> float
(** Synchronous launch: {!execute}, then advance the clock by the returned
    kernel time.  Raises {!Launch_failure} if the configuration does not
    fit. *)
