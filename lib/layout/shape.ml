type precision = F16 | F32 | F64
type reality = Real | Cplx

type spin = Spin_scalar | Spin_vector of int | Spin_matrix of int | Spin_block of int

type color =
  | Color_scalar
  | Color_vector of int
  | Color_matrix of int
  | Color_diag of int
  | Color_tri of int
  | Color_rows of int

type t = { spin : spin; color : color; reality : reality; prec : precision }

let spin_extent = function
  | Spin_scalar -> 1
  | Spin_vector n -> n
  | Spin_matrix n -> n * n
  | Spin_block n -> n

let color_extent = function
  | Color_scalar -> 1
  | Color_vector n -> n
  | Color_matrix n -> n * n
  | Color_diag n -> n
  | Color_tri n -> n
  | Color_rows n -> n * 3

let reality_extent = function Real -> 1 | Cplx -> 2
let components s = spin_extent s.spin * color_extent s.color
let dof s = components s * reality_extent s.reality
let prec_bytes = function F16 -> 2 | F32 -> 4 | F64 -> 8
let bytes_per_site s = dof s * prec_bytes s.prec
let equal = ( = )
let equal_modulo_prec a b = { a with prec = F32 } = { b with prec = F32 }

(* Promotion follows the total order F64 > F32 > F16: the wider operand
   wins, so the operation is commutative, associative and monotone. *)
let prec_rank = function F16 -> 0 | F32 -> 1 | F64 -> 2
let promote_prec a b = if prec_rank a >= prec_rank b then a else b

let spin_to_string = function
  | Spin_scalar -> "Ss"
  | Spin_vector n -> Printf.sprintf "Sv%d" n
  | Spin_matrix n -> Printf.sprintf "Sm%d" n
  | Spin_block n -> Printf.sprintf "Sb%d" n

let color_to_string = function
  | Color_scalar -> "Cs"
  | Color_vector n -> Printf.sprintf "Cv%d" n
  | Color_matrix n -> Printf.sprintf "Cm%d" n
  | Color_diag n -> Printf.sprintf "Cd%d" n
  | Color_tri n -> Printf.sprintf "Ct%d" n
  | Color_rows n -> Printf.sprintf "Cr%d" n

let to_string s =
  Printf.sprintf "%s.%s.%s.%s" (spin_to_string s.spin) (color_to_string s.color)
    (match s.reality with Real -> "R" | Cplx -> "C")
    (match s.prec with F16 -> "f16" | F32 -> "f32" | F64 -> "f64")

let validate s =
  let check n what = if n <= 0 then invalid_arg ("Shape.validate: non-positive " ^ what) in
  (match s.spin with
  | Spin_scalar -> ()
  | Spin_vector n | Spin_matrix n | Spin_block n -> check n "spin extent");
  match s.color with
  | Color_scalar -> ()
  | Color_vector n | Color_matrix n | Color_diag n | Color_tri n | Color_rows n ->
      check n "color extent"

let lattice_fermion prec = { spin = Spin_vector 4; color = Color_vector 3; reality = Cplx; prec }
let lattice_color_matrix prec = { spin = Spin_scalar; color = Color_matrix 3; reality = Cplx; prec }
let lattice_spin_matrix prec = { spin = Spin_matrix 4; color = Color_scalar; reality = Cplx; prec }
let clover_diag prec = { spin = Spin_block 2; color = Color_diag 6; reality = Real; prec }
let clover_tri prec = { spin = Spin_block 2; color = Color_tri 15; reality = Cplx; prec }
let compressed_color_matrix prec =
  { spin = Spin_scalar; color = Color_rows 2; reality = Cplx; prec }

let real_scalar prec = { spin = Spin_scalar; color = Color_scalar; reality = Real; prec }
let complex_scalar prec = { spin = Spin_scalar; color = Color_scalar; reality = Cplx; prec }
