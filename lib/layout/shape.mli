(** Element shapes: the inner levels of the QDP++ data type hierarchy.

    A lattice data type in QDP++ is a four-level template nest
    [Lattice (x) Spin (x) Color (x) Complex] (Table I of the paper).  The
    outer [Lattice] level is carried by the field container; this module
    describes one lattice site's element: its spin structure, color
    structure, reality and precision.  The clover-term types of Table I
    (lower part) reuse the spin level for the two 6x6 Hermitian blocks and
    the color level for the packed diagonal/triangular storage. *)

type precision = F16 | F32 | F64

type reality = Real | Cplx

type spin =
  | Spin_scalar
  | Spin_vector of int  (** e.g. 4 spin components of a fermion *)
  | Spin_matrix of int  (** e.g. 4x4 gamma-algebra matrices *)
  | Spin_block of int  (** clover term: index over Hermitian blocks *)

type color =
  | Color_scalar
  | Color_vector of int  (** e.g. 3 colors of a fermion *)
  | Color_matrix of int  (** e.g. SU(3) gauge links *)
  | Color_diag of int  (** clover term: n real diagonal entries *)
  | Color_tri of int  (** clover term: n complex lower-triangular entries *)
  | Color_rows of int
      (** compressed SU(3): the first n rows stored, the last reconstructed
          in-kernel (QUDA's 12-real trick, Sec. VIII-C) *)

type t = { spin : spin; color : color; reality : reality; prec : precision }

val spin_extent : spin -> int
(** Number of spin components (matrix n counts n*n). *)

val color_extent : color -> int

val reality_extent : reality -> int
(** 1 for [Real], 2 for [Cplx]. *)

val components : t -> int
(** [spin_extent * color_extent]: complex-or-real component count. *)

val dof : t -> int
(** Real degrees of freedom per site ([components * reality_extent]). *)

val prec_bytes : precision -> int
(** Storage bytes of one real word: 2 / 4 / 8 for F16 / F32 / F64. *)

val bytes_per_site : t -> int

val equal : t -> t -> bool

val equal_modulo_prec : t -> t -> bool

val promote_prec : precision -> precision -> precision
(** Implicit precision promotion (Sec. III-D): the wider operand wins
    under the total order [F64 > F32 > F16], so promotion is
    commutative, associative and monotone in either argument. *)

val to_string : t -> string

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical extents (negative or zero). *)

(** {2 Standard QDP++ type aliases (Table I)} *)

val lattice_fermion : precision -> t
(** psi: Lattice< Vector< Vector< Complex, 3>, 4> >. *)

val lattice_color_matrix : precision -> t
(** U: Lattice< Scalar< Matrix< Complex, 3> > >. *)

val lattice_spin_matrix : precision -> t
(** Gamma: Lattice< Matrix< Scalar< Complex >, 4> >. *)

val clover_diag : precision -> t
(** A_diag: Lattice< Component< Diagonal< Scalar< REAL> > > > — 2 blocks of
    6 real diagonal entries. *)

val clover_tri : precision -> t
(** A_tri: Lattice< Component< Triangular< Complex > > > — 2 blocks of 15
    complex lower-triangular entries. *)

val compressed_color_matrix : precision -> t
(** Two rows of an SU(3) matrix (12 reals); the third row is the conjugate
    cross product, reconstructed where the matrix is used (QUDA's gauge
    compression, Sec. VIII-C). *)

val real_scalar : precision -> t

val complex_scalar : precision -> t
