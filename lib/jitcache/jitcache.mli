(** Persistent on-disk cache of driver-JIT artifacts.

    The engine JIT-compiles every kernel at first use, and the fusion
    middle-end made that first use expensive (cold-start roughly doubled
    while warm steady-state improved) — exactly the tax a service
    absorbing many short solver sessions cannot pay per session.  QUDA
    answers the same problem with an on-disk autotune/kernel cache shared
    across runs; this module is that cache for the simulated stack.

    The store is deliberately dumb: opaque [string] blobs under content
    keys.  The {e caller} (the engine) derives keys that capture
    everything the artifact depends on — PTX source digests, optimization
    flags, fuse/subst/drop masks, decoder and emitter versions — so a key
    match means the cached bytes are the bytes a fresh compile would
    produce.

    Robustness contract: a cache must never turn into a crash.  Entries
    are written to a temporary file in the cache directory and published
    with an atomic [Sys.rename], so concurrent writers cannot tear each
    other's entries; reads validate a magic tag, a format version, the
    stored key (hash-collision guard) and a payload checksum, and {e any}
    anomaly — truncation, corruption, version skew, unreadable file — is
    counted and reported as a miss, which makes the engine silently
    recompile.  Store failures (read-only directory, disk full) are
    swallowed the same way. *)

type stats = {
  mutable hits : int;
  mutable misses : int;  (** includes corrupt entries, which also count below *)
  mutable stores : int;
  mutable corrupt : int;  (** entries rejected by header/checksum validation *)
  mutable evictions : int;  (** entries removed by the size bound *)
}

type t

val format_version : int
(** Bumped whenever the on-disk entry layout changes; mismatching entries
    are treated as corrupt (silent recompile). *)

val create : ?max_bytes:int -> string -> t
(** Open a cache rooted at the given directory, creating it (and missing
    parents) if needed.  [max_bytes] (default 256 MiB) bounds the on-disk
    footprint: after a store, oldest-modified entries are evicted until
    the directory fits.  Hits refresh an entry's timestamp, so eviction
    is LRU-by-mtime.  Raises [Sys_error] only if the directory cannot be
    created at all. *)

val dir : t -> string
val stats : t -> stats

val env_var : string
(** ["REPRO_JIT_CACHE"].  See {!from_env}. *)

val from_env : ?default:t -> unit -> t option
(** Resolve the cache the environment asks for: unset or empty keeps
    [default] (usually the engine's [?jit_cache] argument); ["off"],
    ["0"], ["none"] or ["disabled"] (case-insensitive) disables caching
    even when a default is supplied; any other value is a directory to
    cache under, overriding the default. *)

val find : t -> key:string -> string option
(** The stored blob, or [None] on a miss {e or} on any validation
    failure (the corrupt file is deleted so the next store rewrites it). *)

val store : t -> key:string -> data:string -> unit
(** Publish [data] under [key] (write-then-rename; last writer wins).
    Failures are silent — the cache is an accelerator, not a database. *)

val entry_count : t -> int
val entry_bytes : t -> int
(** Current on-disk entries / footprint (a directory scan). *)

val clear : t -> unit
(** Remove every entry (tests). *)
