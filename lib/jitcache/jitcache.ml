(** Persistent on-disk cache of driver-JIT artifacts.  See the interface
    for the robustness contract; the short version: atomic
    write-then-rename publication, full validation on read, and every
    anomaly degrades to a miss, never an exception. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable corrupt : int;
  mutable evictions : int;
}

type t = { cache_dir : string; max_bytes : int; stats : stats }

let format_version = 1
let magic = "QJC1"
let suffix = ".jc"
let env_var = "REPRO_JIT_CACHE"

let dir t = t.cache_dir
let stats t = t.stats

let rec mkdirs d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    (* EEXIST from a concurrent creator is fine. *)
    try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
  end

let create ?(max_bytes = 256 * 1024 * 1024) cache_dir =
  mkdirs cache_dir;
  if not (Sys.is_directory cache_dir) then
    raise (Sys_error (cache_dir ^ ": not a directory"));
  {
    cache_dir;
    max_bytes;
    stats = { hits = 0; misses = 0; stores = 0; corrupt = 0; evictions = 0 };
  }

let from_env ?default () =
  match Sys.getenv_opt env_var with
  | None -> default
  | Some v -> (
      (* Off-spellings are matched case-insensitively on the trimmed
         value — the same normalization REPRO_VM_SUPERINSN uses — but a
         directory override keeps the raw string. *)
      match String.lowercase_ascii (String.trim v) with
      | "" -> default
      | "off" | "0" | "none" | "disabled" -> None
      | _ -> Some (create v))

(* One file per key, named by the key's digest.  The key itself is stored
   in the header and compared on read, so a (vanishingly unlikely) digest
   collision degrades to a miss instead of delivering foreign bytes. *)
let path_of t key = Filename.concat t.cache_dir (Digest.to_hex (Digest.string key) ^ suffix)

let cache_files t =
  match Sys.readdir t.cache_dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n suffix)
      |> List.map (Filename.concat t.cache_dir)

let entry_count t = List.length (cache_files t)

let file_size path = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

let entry_bytes t = List.fold_left (fun acc p -> acc + file_size p) 0 (cache_files t)

(* Entry layout (all integers big-endian):
     magic (4) | format_version (4) | key_len (4) | key
   | payload MD5 (16) | payload_len (8) | payload *)

let encode ~key ~data =
  let b = Buffer.create (String.length data + String.length key + 40) in
  Buffer.add_string b magic;
  Buffer.add_int32_be b (Int32.of_int format_version);
  Buffer.add_int32_be b (Int32.of_int (String.length key));
  Buffer.add_string b key;
  Buffer.add_string b (Digest.string data);
  Buffer.add_int64_be b (Int64.of_int (String.length data));
  Buffer.add_string b data;
  Buffer.contents b

exception Bad_entry

(* Decode and validate; raises [Bad_entry] on any anomaly. *)
let decode ~key raw =
  let len = String.length raw in
  let need pos n = if pos + n > len then raise Bad_entry in
  need 0 12;
  if String.sub raw 0 4 <> magic then raise Bad_entry;
  if Int32.to_int (String.get_int32_be raw 4) <> format_version then raise Bad_entry;
  let key_len = Int32.to_int (String.get_int32_be raw 8) in
  if key_len < 0 then raise Bad_entry;
  need 12 key_len;
  if String.sub raw 12 key_len <> key then raise Bad_entry;
  let pos = 12 + key_len in
  need pos 24;
  let digest = String.sub raw pos 16 in
  let payload_len = Int64.to_int (String.get_int64_be raw (pos + 16)) in
  if payload_len < 0 || pos + 24 + payload_len <> len then raise Bad_entry;
  let payload = String.sub raw (pos + 24) payload_len in
  if Digest.string payload <> digest then raise Bad_entry;
  payload

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t ~key =
  let path = path_of t key in
  match read_file path with
  | exception Sys_error _ ->
      t.stats.misses <- t.stats.misses + 1;
      None
  | raw -> (
      match decode ~key raw with
      | payload ->
          t.stats.hits <- t.stats.hits + 1;
          (* Refresh the timestamp so size-bound eviction is LRU. *)
          (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
          Some payload
      | exception Bad_entry ->
          t.stats.corrupt <- t.stats.corrupt + 1;
          t.stats.misses <- t.stats.misses + 1;
          (* Delete so the next store republishes a clean entry. *)
          (try Sys.remove path with Sys_error _ -> ());
          None)

(* Enforce the size bound: evict oldest-modified entries until the
   directory fits.  The entry just stored carries the newest timestamp,
   so it survives unless it alone exceeds the bound. *)
let evict_to_bound t =
  if t.max_bytes > 0 then begin
    let entries =
      cache_files t
      |> List.filter_map (fun p ->
             try
               let st = Unix.stat p in
               Some (st.Unix.st_mtime, st.Unix.st_size, p)
             with Unix.Unix_error _ -> None)
      |> List.sort compare
    in
    let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 entries in
    let excess = ref (total - t.max_bytes) in
    List.iter
      (fun (_, sz, p) ->
        if !excess > 0 then
          match Sys.remove p with
          | () ->
              excess := !excess - sz;
              t.stats.evictions <- t.stats.evictions + 1
          | exception Sys_error _ -> ())
      entries
  end

let store t ~key ~data =
  match
    (* temp_file both reserves a unique name and creates it, so
       concurrent writers never share a scratch file. *)
    let tmp = Filename.temp_file ~temp_dir:t.cache_dir "jc" ".tmp" in
    let oc = open_out_bin tmp in
    (match output_string oc (encode ~key ~data) with
    | () -> close_out oc
    | exception e ->
        close_out_noerr oc;
        (try Sys.remove tmp with Sys_error _ -> ());
        raise e);
    (* Atomic within one directory: readers see the old entry or the new
       one, never a torn write. *)
    Sys.rename tmp (path_of t key)
  with
  | () ->
      t.stats.stores <- t.stats.stores + 1;
      evict_to_bound t
  | exception Sys_error _ -> ()

let clear t = List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) (cache_files t)
