(** Automated GPU memory management (the paper's Sec. IV).

    Before a kernel launch the JIT layer walks the expression AST,
    extracts the referenced fields and calls {!ensure_resident} for each:
    data is uploaded (with the AoS→SoA layout change of Sec. III-B) if
    absent or stale.  Fields are paged out to host memory either when host
    code touches them (hooks installed on the field) or when an allocation
    cannot be serviced — then the least-recently-used unpinned entry is
    spilled, "least recently" meaning the timestamp of the last reference
    from a compute kernel. *)

type stats = {
  mutable hits : int;
  mutable uploads : int;
  mutable pageouts : int;
  mutable spills : int;  (** evictions forced by allocation pressure *)
  mutable inflight_skips : int;
      (** spill candidates passed over because a transfer was in flight *)
}

type t

val create : ?sched:Streams.t -> Gpusim.Device.t -> t
(** With [sched], transfers are issued asynchronously on a dedicated
    stream of that context ("memcache xfer"), each entry carrying a
    completion event; without it, transfers advance the device clock
    synchronously as before. *)

val stats : t -> stats
val resident_count : t -> int

val transfer_stream : t -> Streams.stream option
(** The dedicated transfer stream, when a context is attached. *)

val ensure_resident :
  ?pin:bool -> ?for_write:bool -> ?wait_stream:Streams.stream -> t -> Qdp.Field.t -> Gpusim.Buffer.t
(** Make the field's data available in device memory, uploading (with
    layout conversion) when the device copy is absent or stale, spilling
    LRU entries if the allocation does not fit.  [pin] protects the entry
    from spilling until {!unpin_all} (the fields of the launch being
    assembled).  [for_write] marks a destination whose whole content will
    be overwritten: its host data need not travel.  [wait_stream] makes
    the given (compute) stream wait on the entry's in-flight asynchronous
    upload, if any — the kernel must not read the buffer before the copy
    engine delivers it.  Raises [Gpusim.Device.Out_of_device_memory] if
    nothing can be spilled. *)

val mark_device_dirty : t -> Qdp.Field.t -> unit
(** The kernel just wrote the field: device copy is newer than host. *)

val unpin_all : t -> unit

val retain : t -> Qdp.Field.t -> unit
(** Take a reference on a resident entry on behalf of a deferred (not yet
    launched) eval: unlike a pin, it survives {!unpin_all}, and the entry
    cannot be spilled until every reference is {!release}d.  The field
    must be resident. *)

val release : t -> Qdp.Field.t -> unit
(** Drop one {!retain} reference (no-op when the field is not resident or
    not retained). *)

val set_pre_access_hook : t -> (Qdp.Field.t -> unit) -> unit
(** Install a callback run before any host access to a cached field,
    ahead of the dirty-copy page-out.  The engine flushes its deferred
    launch queue here, so a pending write to the field lands on the
    device before the page-out makes the host copy current. *)

val flush_field : t -> Qdp.Field.t -> unit
(** Page out if device-dirty (host access hooks call this). *)

val flush_all : t -> unit

val drop : t -> Qdp.Field.t -> unit
(** Page out if dirty, then free the device allocation. *)

val is_resident : t -> Qdp.Field.t -> bool

val is_inflight : t -> Qdp.Field.t -> bool
(** Is the entry's last asynchronous transfer still in flight (not yet
    observable as complete from the host)? *)

val settle : t -> unit
(** Clear every in-flight marker.  Call after a {!Streams.reset}: the
    reset implies all outstanding work drained, and the entries'
    completion events hold stale pre-reset timestamps. *)

val is_device_dirty : t -> Qdp.Field.t -> bool

(** {2 Arenas}

    Per-session field groups for the serving layer: registration is pure
    bookkeeping, and {!release_arena} is the one-call graceful teardown
    that releases every protection the session's entries hold. *)

type arena

val create_arena : t -> name:string -> arena
val arena_name : arena -> string

val arena_register : arena -> Qdp.Field.t -> unit
(** Remember the field as session-owned (idempotent; does not touch
    residency). *)

val arena_size : arena -> int
(** Fields registered so far. *)

val arena_resident : t -> arena -> int
(** How many of the arena's fields currently hold device allocations. *)

val release_arena : t -> arena -> unit
(** Teardown: for every registered field, clear its pin and retain
    count, page out dirty data (the owner may still read results) and
    free the device allocation.  The arena is empty afterwards. *)

(** {2 Per-domain arena slices}

    When rank work executes concurrently on OCaml 5 domains (Multi's
    parallel rank sweep), each domain bookkeeps the fields it
    materializes in its own slice of the cache's arena table, so
    registration never contends across domains. *)

val domain_slice : t -> worker:int -> arena
(** The arena slice owned by worker/domain [worker] (named
    ["domain:<worker>"]), created on first use.  Safe to call from
    concurrent domains; the returned slice must only be registered
    into by its owning domain. *)

val domain_slices : t -> int
(** Number of domain slices created so far. *)

val release_domain_slices : t -> unit
(** {!release_arena} every domain slice and forget them.  Must be
    called after all domain work has joined (single-threaded
    teardown). *)
