(** Automated GPU memory management (Sec. IV).

    Before a kernel launch the JIT layer walks the expression AST, extracts
    the referenced fields and calls {!ensure_resident} for each: data is
    uploaded (with the AoS→SoA layout change of Sec. III-B) if absent or
    stale.  Fields are paged out to host memory either when host code
    touches them (hooks installed on the field) or when an allocation
    cannot be serviced — then the least-recently-used unpinned entry is
    spilled, "least recently" meaning the timestamp of the last reference
    from a compute kernel. *)

module Shape = Layout.Shape
module Index = Layout.Index
module Field = Qdp.Field
module Device = Gpusim.Device
module Buffer_ = Gpusim.Buffer

type entry = {
  field : Field.t;
  buf : Buffer_.t;
  mutable last_use : int;
  mutable device_dirty : bool;  (** device copy newer than host *)
  mutable host_version : int;  (** [Field.version] captured at upload *)
  mutable pinned : bool;  (** referenced by the launch being assembled *)
  mutable retained : int;
      (** reference count held by deferred (not yet launched) evals; a
          retained entry survives {!unpin_all} and is never spilled *)
  mutable inflight : Streams.Event.t option;
      (** completion event of an asynchronous transfer still using the
          buffer — the entry must not spill until it fires *)
}

type stats = {
  mutable hits : int;
  mutable uploads : int;
  mutable pageouts : int;
  mutable spills : int;  (** evictions forced by allocation pressure *)
  mutable inflight_skips : int;
      (** spill candidates passed over because a transfer was in flight *)
}

type arena = {
  arena_name : string;
  mutable arena_rev : Field.t list;  (** registered fields, newest first *)
  arena_ids : (int, unit) Hashtbl.t;
}

type t = {
  device : Device.t;
  sched : (Streams.t * Streams.stream) option;
      (** stream context + dedicated transfer stream for async copies *)
  entries : (int, entry) Hashtbl.t;
  mutable tick : int;
  mutable pre_access : (Field.t -> unit) option;
      (** called before any host access to a cached field, ahead of the
          dirty-copy page-out — the engine flushes its deferred launch
          queue here so the device copy is current first *)
  domain_lock : bool Atomic.t;  (** guards [domain_arenas] creation *)
  domain_arenas : (int, arena) Hashtbl.t;
  stats : stats;
}

let create ?sched device =
  let sched =
    Option.map (fun ctx -> (ctx, Streams.create_stream ~name:"memcache xfer" ctx)) sched
  in
  {
    device;
    sched;
    entries = Hashtbl.create 64;
    tick = 0;
    pre_access = None;
    domain_lock = Atomic.make false;
    domain_arenas = Hashtbl.create 8;
    stats = { hits = 0; uploads = 0; pageouts = 0; spills = 0; inflight_skips = 0 };
  }

let set_pre_access_hook t f = t.pre_access <- Some f

let stats t = t.stats
let resident_count t = Hashtbl.length t.entries
let transfer_stream t = Option.map snd t.sched

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_use <- t.tick

(* Has the entry's last asynchronous transfer completed (or was there
   none)?  Clears the marker once the completion event has fired. *)
let inflight_done t entry =
  match (entry.inflight, t.sched) with
  | None, _ | _, None -> true
  | Some ev, Some (ctx, _) ->
      if Streams.event_query ctx ev then begin
        entry.inflight <- None;
        true
      end
      else false

(* A timeline reset (Streams.reset, after benchmark warm-up) implies
   every outstanding transfer drained; the entries' completion events now
   hold stale pre-reset timestamps, so clear the markers rather than let
   post-reset work chain-wait on times from the discarded timeline. *)
let settle t = Hashtbl.iter (fun _ e -> e.inflight <- None) t.entries

(* Issue the model side of a transfer: asynchronously on the dedicated
   stream when a context is attached (recording a completion event on the
   entry), synchronously on the device clock otherwise. *)
let issue_transfer t entry ~to_device ~sync =
  let bytes = entry.buf.Buffer_.bytes in
  let what = if to_device then "upload" else "pageout" in
  let fname = entry.field.Field.name in
  match t.sched with
  | None -> Device.account_transfer t.device ~bytes ~to_device
  | Some (ctx, xfer) ->
      let name = Printf.sprintf "%s %s" what fname in
      (if to_device then ignore (Streams.memcpy_h2d ~name ctx xfer ~bytes)
       else ignore (Streams.memcpy_d2h ~name ctx xfer ~bytes));
      let ev = Streams.Event.create ~name:(name ^ " done") () in
      Streams.record_event ctx xfer ev;
      entry.inflight <- Some ev;
      (* A synchronous caller (host-access hook, flush) blocks until the
         copy lands. *)
      if sync then begin
        ignore (Streams.stream_synchronize ctx xfer);
        entry.inflight <- None
      end

(* Copy host AoS -> device SoA.  Host and device storage have the same
   element kind, so the layout converter works directly on both arrays. *)
let upload t entry =
  let f = entry.field in
  let nsites = Field.volume f in
  (* A deferred batched sweep may still be reading this entry's current
     device contents; drain it before the blit overwrites them. *)
  Device.flush_batch t.device;
  (* Model-only devices account the transfer but skip the data movement:
     the paper-scale sweeps only need the clock. *)
  (if t.device.Device.mode = Device.Functional then
     match (Field.unsafe_storage f, entry.buf.Buffer_.data) with
     | Field.S16 host, Buffer_.F16 dev ->
         (* binary16 payloads travel as-is: both sides hold the same 16-bit
            encodings, only the site ordering changes. *)
         Index.convert ~src:host ~dst:dev ~from_scheme:Index.Aos ~to_scheme:Index.Soa
           f.Field.shape ~nsites
     | Field.S32 host, Buffer_.F32 dev ->
         Index.convert ~src:host ~dst:dev ~from_scheme:Index.Aos ~to_scheme:Index.Soa
           f.Field.shape ~nsites
     | Field.S64 host, Buffer_.F64 dev ->
         Index.convert ~src:host ~dst:dev ~from_scheme:Index.Aos ~to_scheme:Index.Soa
           f.Field.shape ~nsites
     | _ -> assert false);
  issue_transfer t entry ~to_device:true ~sync:false;
  entry.host_version <- f.Field.version;
  entry.device_dirty <- false;
  t.stats.uploads <- t.stats.uploads + 1

(* Copy device SoA -> host AoS, *without* tripping the host-access hooks.
   [sync] (the default) models a blocking copy — host code is about to
   read the data; spills pass [sync:false] and let the copy drain on the
   transfer stream. *)
let page_out ?(sync = true) t entry =
  let f = entry.field in
  let nsites = Field.volume f in
  (* The device copy being read back may be the output of launches still
     deferred in an open batched sweep; run them first. *)
  Device.flush_batch t.device;
  (if t.device.Device.mode = Device.Functional then
     match (Field.unsafe_storage f, entry.buf.Buffer_.data) with
     | Field.S16 host, Buffer_.F16 dev ->
         Index.convert ~src:dev ~dst:host ~from_scheme:Index.Soa ~to_scheme:Index.Aos
           f.Field.shape ~nsites
     | Field.S32 host, Buffer_.F32 dev ->
         Index.convert ~src:dev ~dst:host ~from_scheme:Index.Soa ~to_scheme:Index.Aos
           f.Field.shape ~nsites
     | Field.S64 host, Buffer_.F64 dev ->
         Index.convert ~src:dev ~dst:host ~from_scheme:Index.Soa ~to_scheme:Index.Aos
           f.Field.shape ~nsites
     | _ -> assert false);
  issue_transfer t entry ~to_device:false ~sync;
  entry.device_dirty <- false;
  (* The page-out changed the host content: bump the version so that any
     *other* cache holding this field re-uploads instead of trusting its
     zero-content shortcut or a stale copy. *)
  f.Field.version <- f.Field.version + 1;
  entry.host_version <- f.Field.version;
  t.stats.pageouts <- t.stats.pageouts + 1

let evict ?(sync = true) t entry =
  if entry.device_dirty then page_out ~sync t entry;
  Device.free t.device entry.buf;
  Hashtbl.remove t.entries entry.field.Field.id

(* Spill the least-recently-used unpinned entry whose transfers have all
   completed; false if none exists.  An entry whose asynchronous upload or
   pageout is still in flight is pinned by its completion event: freeing
   the buffer under an active copy engine would corrupt the transfer. *)
let spill_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun _ e ->
      if (not e.pinned) && e.retained = 0 then begin
        if inflight_done t e then
          match !victim with
          | Some v when v.last_use <= e.last_use -> ()
          | _ -> victim := Some e
        else t.stats.inflight_skips <- t.stats.inflight_skips + 1
      end)
    t.entries;
  match !victim with
  | Some e ->
      t.stats.spills <- t.stats.spills + 1;
      evict ~sync:false t e;
      true
  | None -> false

let alloc_with_spilling t f =
  let words = Field.volume f * Shape.dof f.Field.shape in
  let alloc () =
    match f.Field.shape.Shape.prec with
    | Shape.F16 -> Device.alloc_f16 t.device words
    | Shape.F32 -> Device.alloc_f32 t.device words
    | Shape.F64 -> Device.alloc_f64 t.device words
  in
  let rec go () =
    match alloc () with
    | buf -> buf
    | exception Device.Out_of_device_memory ->
        if spill_one t then go ()
        else raise Device.Out_of_device_memory
  in
  go ()

let install_hooks t f =
  (* Chain below any hook another cache installed: a field can migrate
     between engines (each pages out its own dirty copy; divergent writes
     on two devices are the caller's error and ensure_resident faults). *)
  let prev_read = f.Field.before_host_read in
  let prev_write = f.Field.before_host_write in
  let on_access prev field =
    (match t.pre_access with Some hook -> hook field | None -> ());
    (match Hashtbl.find_opt t.entries field.Field.id with
    | Some e when e.device_dirty -> page_out t e
    | Some _ | None -> ());
    prev field
  in
  f.Field.before_host_read <- on_access prev_read;
  (* A host write also needs the page-out first (partial writes must land on
     current data); the version bump of the write then marks the device copy
     stale for the next launch. *)
  f.Field.before_host_write <- on_access prev_write

(* Make the consuming stream wait for the entry's in-flight transfer (the
   kernel must not read the buffer before the copy engine delivers it). *)
let chain_wait t entry ~wait_stream =
  match (entry.inflight, t.sched, wait_stream) with
  | Some ev, Some (ctx, _), Some s -> Streams.wait_event ctx s ev
  | _ -> ()

let ensure_resident ?(pin = false) ?(for_write = false) ?wait_stream t (f : Field.t) =
  match Hashtbl.find_opt t.entries f.Field.id with
  | Some e ->
      if (not for_write) && (not e.device_dirty) && e.host_version <> f.Field.version then
        upload t e
      else if (not for_write) && e.host_version <> f.Field.version && e.device_dirty then
        (* Host and device both advanced: the hooks prevent this for fields
           created through the public API; fail loudly otherwise. *)
        invalid_arg "Memcache: divergent host and device copies"
      else if e.host_version <> f.Field.version && for_write then
        (* Destination only: stale content is irrelevant, it is overwritten. *)
        e.host_version <- f.Field.version;
      t.stats.hits <- t.stats.hits + 1;
      touch t e;
      if pin then e.pinned <- true;
      chain_wait t e ~wait_stream;
      e.buf
  | None ->
      let buf = alloc_with_spilling t f in
      let entry =
        {
          field = f;
          buf;
          last_use = 0;
          device_dirty = false;
          host_version = -1;
          pinned = pin;
          retained = 0;
          inflight = None;
        }
      in
      Hashtbl.replace t.entries f.Field.id entry;
      install_hooks t f;
      touch t entry;
      (* A whole-subset destination is fully overwritten by the kernel, and a
         never-written field (version 0) matches the zero-filled allocation;
         neither needs its host content to travel. *)
      if for_write || f.Field.version = 0 then entry.host_version <- f.Field.version
      else upload t entry;
      chain_wait t entry ~wait_stream;
      entry.buf

let mark_device_dirty t (f : Field.t) =
  match Hashtbl.find_opt t.entries f.Field.id with
  | Some e ->
      e.device_dirty <- true;
      touch t e
  | None -> invalid_arg "Memcache.mark_device_dirty: field not resident"

let unpin_all t = Hashtbl.iter (fun _ e -> e.pinned <- false) t.entries

let retain t (f : Field.t) =
  match Hashtbl.find_opt t.entries f.Field.id with
  | Some e -> e.retained <- e.retained + 1
  | None -> invalid_arg "Memcache.retain: field not resident"

let release t (f : Field.t) =
  match Hashtbl.find_opt t.entries f.Field.id with
  | Some e -> if e.retained > 0 then e.retained <- e.retained - 1
  | None -> ()

let flush_field t (f : Field.t) =
  match Hashtbl.find_opt t.entries f.Field.id with
  | Some e when e.device_dirty -> page_out t e
  | Some _ | None -> ()

let flush_all t = Hashtbl.iter (fun _ e -> if e.device_dirty then page_out t e) t.entries

let drop t (f : Field.t) =
  match Hashtbl.find_opt t.entries f.Field.id with
  | Some e -> evict t e
  | None -> ()

let is_resident t (f : Field.t) = Hashtbl.mem t.entries f.Field.id

let is_inflight t (f : Field.t) =
  match Hashtbl.find_opt t.entries f.Field.id with
  | Some e -> not (inflight_done t e)
  | None -> false

let is_device_dirty t (f : Field.t) =
  match Hashtbl.find_opt t.entries f.Field.id with Some e -> e.device_dirty | None -> false

(* ------------------------------------------------------------------ *)
(* Arenas: per-session field groups for the serving layer.  An arena is
   only bookkeeping — registration does not touch residency — but it
   remembers every field a session ever owned, so teardown can drop the
   session's pins, retain counts and device allocations in one sweep
   without the session having to track its temporaries. *)

let create_arena _t ~name = { arena_name = name; arena_rev = []; arena_ids = Hashtbl.create 16 }
let arena_name a = a.arena_name

let arena_register a (f : Field.t) =
  if not (Hashtbl.mem a.arena_ids f.Field.id) then begin
    Hashtbl.replace a.arena_ids f.Field.id ();
    a.arena_rev <- f :: a.arena_rev
  end

let arena_size a = List.length a.arena_rev

let arena_resident t a =
  List.fold_left (fun acc f -> if is_resident t f then acc + 1 else acc) 0 a.arena_rev

(* Graceful teardown: clear every protection the session's entries hold
   (pins, retain counts) and evict them — a dirty entry pages out first,
   so the host copy is current when the session's owner reads results
   after close.  The arena is empty afterwards and may be reused. *)
let release_arena t a =
  List.iter
    (fun (f : Field.t) ->
      match Hashtbl.find_opt t.entries f.Field.id with
      | Some e ->
          e.pinned <- false;
          e.retained <- 0;
          evict t e
      | None -> ())
    (List.rev a.arena_rev);
  a.arena_rev <- [];
  Hashtbl.reset a.arena_ids

(* ------------------------------------------------------------------ *)
(* Per-domain arena slices.  When rank work executes concurrently on
   OCaml 5 domains (Multi's parallel rank sweep), each domain tracks
   the fields it materializes in its own slice: slice lookup/creation
   is the only shared-table touch and is guarded by a tiny spinlock
   (Mutex lives in the threads library on OCaml 4.x, where there are
   no domains to contend anyway), while registration into a slice
   stays lock-free because exactly one domain owns it.  Teardown
   ([release_domain_slices]) is single-threaded — it evicts through
   the cache like any arena release. *)

let with_domain_lock t f =
  let rec acquire () =
    if not (Atomic.compare_and_set t.domain_lock false true) then acquire ()
  in
  acquire ();
  Fun.protect ~finally:(fun () -> Atomic.set t.domain_lock false) f

let domain_slice t ~worker =
  with_domain_lock t (fun () ->
      match Hashtbl.find_opt t.domain_arenas worker with
      | Some a -> a
      | None ->
          let a =
            {
              arena_name = Printf.sprintf "domain:%d" worker;
              arena_rev = [];
              arena_ids = Hashtbl.create 16;
            }
          in
          Hashtbl.replace t.domain_arenas worker a;
          a)

let domain_slices t = with_domain_lock t (fun () -> Hashtbl.length t.domain_arenas)

let release_domain_slices t =
  let slices =
    with_domain_lock t (fun () ->
        let acc = Hashtbl.fold (fun _ a acc -> a :: acc) t.domain_arenas [] in
        Hashtbl.reset t.domain_arenas;
        acc)
  in
  List.iter (release_arena t) slices
