(** PTX emission context: fresh registers, parameters and an instruction
    stream, accumulated while the code generators walk an expression.

    The builder also records value provenance — how many times each
    register has been defined — which it hands to the optimization passes
    as the proof that a register is an SSA value, the precondition for
    CSE to be sound across anything the functorised site algebra emits
    (including deliberately multi-defined registers like reduction
    accumulators, which provenance excludes from reuse). *)

open Ptx.Types

type t = {
  kname : string;
  mutable body_rev : instr list;
  mutable params_rev : param list;
  mutable nparams : int;
  counters : (dtype, int ref) Hashtbl.t;
  mutable nlabels : int;
  def_counts : (Ptx.Dataflow.key, int) Hashtbl.t;
}

let create ~kname =
  {
    kname;
    body_rev = [];
    params_rev = [];
    nparams = 0;
    counters = Hashtbl.create 8;
    nlabels = 0;
    def_counts = Hashtbl.create 64;
  }

let fresh t dtype =
  let c =
    match Hashtbl.find_opt t.counters dtype with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace t.counters dtype c;
        c
  in
  let id = !c in
  incr c;
  { rtype = dtype; id }

let emit t i =
  (match Ptx.Dataflow.def_of i with
  | Some r ->
      let k = Ptx.Dataflow.key r in
      Hashtbl.replace t.def_counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.def_counts k))
  | None -> ());
  t.body_rev <- i :: t.body_rev

let add_param t dtype name =
  let index = t.nparams in
  t.nparams <- index + 1;
  t.params_rev <- { pname = name; ptype = dtype } :: t.params_rev;
  index

let fresh_label t prefix =
  let n = t.nlabels in
  t.nlabels <- n + 1;
  Printf.sprintf "%s_%d" prefix n

let finish t = { kname = t.kname; params = List.rev t.params_rev; body = List.rev t.body_rev }

(** Emission-time value provenance.  Counts only accumulate, so a
    register reported single-def here has at most one definition in any
    later (pass-shrunk) form of the kernel — the conservative direction. *)
let provenance t =
  {
    Ptx.Passes.single_def =
      (fun r -> Hashtbl.find_opt t.def_counts (Ptx.Dataflow.key r) = Some 1);
  }

(* Dead-code elimination: drop instructions whose destination is never
   consumed.  The generators load every component of a referenced element;
   operations like traceColor use only some of them, and constant folding
   orphans more.  Now shared with the pass pipeline. *)
let eliminate_dead_code = Ptx.Passes.dce
