(** Expression → PTX kernel code generation (Sec. III).

    The AST unparser walks the tree exactly like the CPU evaluator, but the
    site algebra is instantiated at {!Jit_scalar}, so visiting a node emits
    PTX instead of computing.  Leaves become "JIT data views" (Sec. III-B):
    the base pointer plus the coalesced SoA offsets

      I(iV,iS,iC,iR) = ((iR*IC + iC)*IS + iS)*IV + iV

    where the site index iV is the CUDA thread index (or, on a subset, a
    site loaded from the site-list buffer).  Shifts load the displaced site
    index from a neighbour table, which is also how the face/inner split of
    Sec. V is expressed: the table decides where data comes from. *)

module Shape = Layout.Shape
module Index = Layout.Index
module Expr = Qdp.Expr
module Field = Qdp.Field
module JSite = Linalg.Site.Make (Jit_scalar)
open Ptx.Types

let version = 2

type param_plan =
  | Dest  (** destination field pointer *)
  | Leaf_ptr of int  (** nth distinct field of the expression *)
  | Ntable of int * int  (** neighbour table for (dim, dir) *)
  | Sitelist  (** site-list buffer (subset kernels) *)
  | N_work  (** number of threads doing real work *)
  | Block_partial
      (** per-block partial-sum buffer (reduction kernels only): one plane
          of ceil(n/8) doubles per destination component *)
  | Scalar_param of int * int
      (** component [comp] of the nth runtime scalar leaf, in expression
          traversal order *)

type built = {
  kernel : kernel;
  raw : kernel;
  text : string;
  plan : param_plan list;
  dest_shape : Shape.t;
  passes : Ptx.Passes.report list;
}

let elem_bytes = function Shape.F16 -> 2 | Shape.F32 -> 4 | Shape.F64 -> 8

(* F16 is a storage format only: f16 fields are computed in f32 registers,
   converting on load and rounding on store, so register pressure matches
   the f32 kernels exactly. *)
let prec_dtype = function Shape.F16 -> F32 | Shape.F32 -> F32 | Shape.F64 -> F64

(* base + site * scale as a u64 address register. *)
let byte_address e base site_reg ~scale =
  let s64 = Emitter.fresh e S64 in
  Emitter.emit e (Cvt { dst = s64; src = site_reg });
  let scaled = Emitter.fresh e S64 in
  Emitter.emit e (Mul { dtype = S64; dst = scaled; a = Reg s64; b = Imm_int scale });
  let u64 = Emitter.fresh e U64 in
  Emitter.emit e (Cvt { dst = u64; src = scaled });
  let addr = Emitter.fresh e U64 in
  Emitter.emit e (Add { dtype = U64; dst = addr; a = Reg base; b = Reg u64 });
  addr

let build ?(optimize = true) ?(reduction = false) ~kname ~dest_shape ~(expr : Expr.t) ~nsites
    ~use_sitelist () =
  let e = Emitter.create ~kname in
  let leaves = Expr.leaves expr in
  let slot_of_field =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i (f : Field.t) -> Hashtbl.replace tbl f.Field.id i) leaves;
    fun (f : Field.t) -> Hashtbl.find tbl f.Field.id
  in
  let shift_dirs = Expr.shift_dirs expr in
  let scalar_params = Expr.params expr in
  (* Parameter plan; order here defines the launch-time binding order. *)
  let plan =
    (Dest :: List.mapi (fun i _ -> Leaf_ptr i) leaves)
    @ List.map (fun (dim, dir) -> Ntable (dim, dir)) shift_dirs
    @ (if use_sitelist then [ Sitelist ] else [])
    @ [ N_work ]
    @ (if reduction then [ Block_partial ] else [])
    @ List.concat
        (List.mapi
           (fun slot (shape, _) ->
             List.init (Shape.dof shape) (fun comp -> Scalar_param (slot, comp)))
           scalar_params)
  in
  let param_regs =
    List.map
      (fun p ->
        let dtype, name =
          match p with
          | Dest -> (U64, "dest")
          | Leaf_ptr i -> (U64, Printf.sprintf "leaf%d" i)
          | Ntable (dim, dir) -> (U64, Printf.sprintf "ntab%d%s" dim (if dir > 0 then "p" else "m"))
          | Sitelist -> (U64, "sitelist")
          | N_work -> (S32, "n_work")
          | Block_partial -> (U64, "blockpart")
          | Scalar_param (slot, comp) ->
              let shape, _ = List.nth scalar_params slot in
              (prec_dtype shape.Shape.prec, Printf.sprintf "scalar%d_%d" slot comp)
        in
        let index = Emitter.add_param e dtype name in
        let r = Emitter.fresh e dtype in
        Emitter.emit e (Ld_param { dst = r; param_index = index });
        (p, r))
      plan
  in
  let preg p = List.assoc p param_regs in
  (* Runtime scalar leaves are consumed in traversal order. *)
  let next_scalar = ref 0 in
  let take_scalar shape =
    let slot = !next_scalar in
    incr next_scalar;
    let data =
      Array.init (Shape.dof shape) (fun comp -> Jit_scalar.Vreg (preg (Scalar_param (slot, comp))))
    in
    JSite.of_array shape data
  in
  (* Thread index: idx = ctaid * ntid + tid. *)
  let tid = Emitter.fresh e S32 and ntid = Emitter.fresh e S32 and ctaid = Emitter.fresh e S32 in
  Emitter.emit e (Mov_sreg { dst = tid; src = Tid_x });
  Emitter.emit e (Mov_sreg { dst = ntid; src = Ntid_x });
  Emitter.emit e (Mov_sreg { dst = ctaid; src = Ctaid_x });
  let idx = Emitter.fresh e S32 in
  Emitter.emit e (Fma { dtype = S32; dst = idx; a = Reg ctaid; b = Reg ntid; c = Reg tid });
  (* Guard: threads beyond the work count exit. *)
  let exit_label = Emitter.fresh_label e "EXIT" in
  let p = Emitter.fresh e Pred in
  Emitter.emit e (Setp { cmp = Ge; dtype = S32; dst = p; a = Reg idx; b = Reg (preg N_work) });
  Emitter.emit e (Bra { label = exit_label; pred = Some p });
  (* Site index: straight thread index, or loaded from the site list. *)
  let site0 =
    if use_sitelist then begin
      let addr = byte_address e (preg Sitelist) idx ~scale:4 in
      let s = Emitter.fresh e S32 in
      Emitter.emit e (Ld_global { dtype = S32; dst = s; addr; offset = 0 });
      s
    end
    else idx
  in
  (* Memoised shifted-site registers, keyed by (site reg, dim, dir). *)
  let shifted = Hashtbl.create 8 in
  let shift_site site ~dim ~dir =
    match Hashtbl.find_opt shifted (site.id, dim, dir) with
    | Some s -> s
    | None ->
        let addr = byte_address e (preg (Ntable (dim, dir))) site ~scale:4 in
        let s = Emitter.fresh e S32 in
        Emitter.emit e (Ld_global { dtype = S32; dst = s; addr; offset = 0 });
        Hashtbl.replace shifted (site.id, dim, dir) s;
        s
  in
  (* Memoised per-(field slot, site reg) byte addresses. *)
  let leaf_addr = Hashtbl.create 8 in
  let field_address ~base ~prec site =
    match Hashtbl.find_opt leaf_addr (base.id, site.id) with
    | Some a -> a
    | None ->
        let a = byte_address e base site ~scale:(elem_bytes prec) in
        Hashtbl.replace leaf_addr (base.id, site.id) a;
        a
  in
  (* Load every component of a field element as a site value (the JIT data
     view): component (s,c,r) lives at SoA word ((r*IC+c)*IS+s)*nsites. *)
  let load_leaf (f : Field.t) site =
    let shape = f.Field.shape in
    let prec = shape.Shape.prec in
    let base = preg (Leaf_ptr (slot_of_field f)) in
    let addr = field_address ~base ~prec site in
    let dof = Shape.dof shape in
    let is_ = Shape.spin_extent shape.Shape.spin in
    let ic = Shape.color_extent shape.Shape.color in
    ignore is_;
    let data =
      Array.init dof (fun lin ->
          let s, c, r = Index.component_of_linear shape lin in
          let word = ((((r * ic) + c) * Shape.spin_extent shape.Shape.spin) + s) * nsites in
          let dst = Emitter.fresh e (prec_dtype prec) in
          (match prec with
          | Shape.F16 ->
              Emitter.emit e (Ld_global_f16 { dst; addr; offset = word * elem_bytes prec })
          | Shape.F32 | Shape.F64 ->
              Emitter.emit e
                (Ld_global { dtype = prec_dtype prec; dst; addr; offset = word * elem_bytes prec }));
          Jit_scalar.Vreg dst)
    in
    JSite.of_array shape data
  in
  let rec gen (expr : Expr.t) site : JSite.value =
    match expr with
    | Expr.Leaf f -> load_leaf f site
    | Expr.Const (s, v) -> JSite.of_floats s v
    | Expr.Param (s, _) -> take_scalar s
    | Expr.Unary (op, sub) -> (
        let v = gen sub site in
        match op with
        | Expr.Neg -> JSite.neg v
        | Expr.Conj -> JSite.conj v
        | Expr.Adj -> JSite.adj v
        | Expr.Transpose -> JSite.transpose v
        | Expr.Times_i -> JSite.times_i v
        | Expr.Trace_color -> JSite.trace_color v
        | Expr.Trace_spin -> JSite.trace_spin v
        | Expr.Real -> JSite.real v
        | Expr.Imag -> JSite.imag v
        | Expr.Norm2_local -> JSite.norm2_local v
        | Expr.Compress -> JSite.compress v
        | Expr.Reconstruct -> JSite.reconstruct v)
    | Expr.Binary (op, a, b) -> (
        let va = gen a site and vb = gen b site in
        match op with
        | Expr.Add -> JSite.add va vb
        | Expr.Sub -> JSite.sub va vb
        | Expr.Mul -> JSite.mul va vb
        | Expr.Outer_color -> JSite.outer_color va vb
        | Expr.Inner_local -> JSite.inner_local va vb)
    | Expr.Shift (sub, dim, dir) -> gen sub (shift_site site ~dim ~dir)
    | Expr.Clover (diag, tri, psi) ->
        JSite.clover_apply ~diag:(gen diag site) ~tri:(gen tri site) (gen psi site)
  in
  let kernel =
    Jit_scalar.with_emitter e (fun () ->
        let value = gen expr site0 in
        (* Store to the destination (rounding across precision at the store,
           Sec. III-D). *)
        let prec = dest_shape.Shape.prec in
        let base = preg Dest in
        (* Reduction kernels write compact work-item-indexed planes: partial
           [idx] rather than partial[site].  The in-kernel aggregation tail
           and the fold chain then never depend on the subset's site
           numbering, only on the work-item count. *)
        let dest_site = if reduction then idx else site0 in
        let addr = field_address ~base ~prec dest_site in
        let ic = Shape.color_extent dest_shape.Shape.color in
        let dof = Shape.dof dest_shape in
        let plane lin =
          let s, c, r = Index.component_of_linear dest_shape lin in
          (((r * ic) + c) * Shape.spin_extent dest_shape.Shape.spin) + s
        in
        for lin = 0 to dof - 1 do
          let word = plane lin * nsites in
          match prec with
          | Shape.F16 ->
              (* st.global.f16 rounds its source register — f32 or f64 —
                 directly to binary16 (one RNE rounding, as the hardware's
                 cvt.rn.f16.f32/f64 would).  Forcing the source through a
                 Cvt to f32 first would double-round f64 values, breaking
                 bit-exactness with [Eval_cpu]'s single rounding at the
                 store. *)
              let src = Jit_scalar.operand_native value.JSite.data.(lin) in
              Emitter.emit e (St_global_f16 { addr; offset = word * elem_bytes prec; src })
          | Shape.F32 | Shape.F64 ->
              let src = Jit_scalar.operand (prec_dtype prec) value.JSite.data.(lin) in
              Emitter.emit e
                (St_global
                   { dtype = prec_dtype prec; addr; offset = word * elem_bytes prec; src })
        done;
        if reduction then begin
          (* The engine promotes every reduction destination to f64; the
             aggregation tail re-reads its own partials with plain typed
             loads, which have no f16 form. *)
          if prec = Shape.F16 then invalid_arg "Codegen.build: f16 reduction destination";
          (* In-kernel block aggregation: the last thread of each group of 8
             work items (or the final thread of a short tail) re-reads the 8
             just-written partials and stores their balanced-tree sum into
             the per-block buffer.  The VM executes threads sequentially in
             increasing idx order, so the group's stores are visible; the
             radix is fixed at 8 regardless of launch block size, keeping
             the value independent of the autotuner's choice. *)
          let dt = prec_dtype prec in
          let eb = elem_bytes prec in
          let bstride = (nsites + 7) / 8 in
          let nwork = preg N_work in
          let blk = Emitter.fresh e S32 in
          Emitter.emit e (Div { dtype = S32; dst = blk; a = Reg idx; b = Imm_int 8 });
          let base8 = Emitter.fresh e S32 in
          Emitter.emit e (Mul { dtype = S32; dst = base8; a = Reg blk; b = Imm_int 8 });
          let rem = Emitter.fresh e S32 in
          Emitter.emit e (Sub { dtype = S32; dst = rem; a = Reg idx; b = Reg base8 });
          let agg_label = Emitter.fresh_label e "AGG" in
          let p7 = Emitter.fresh e Pred in
          Emitter.emit e (Setp { cmp = Eq; dtype = S32; dst = p7; a = Reg rem; b = Imm_int 7 });
          Emitter.emit e (Bra { label = agg_label; pred = Some p7 });
          let nwm1 = Emitter.fresh e S32 in
          Emitter.emit e (Sub { dtype = S32; dst = nwm1; a = Reg nwork; b = Imm_int 1 });
          let plast = Emitter.fresh e Pred in
          Emitter.emit e (Setp { cmp = Eq; dtype = S32; dst = plast; a = Reg idx; b = Reg nwm1 });
          Emitter.emit e (Bra { label = agg_label; pred = Some plast });
          Emitter.emit e (Bra { label = exit_label; pred = None });
          Emitter.emit e (Label agg_label);
          (* Address chains and bounds predicates hoisted unconditionally so
             every CFG path defines them; only the loads are guarded. *)
          let baddr = byte_address e (preg Block_partial) blk ~scale:eb in
          let elems =
            Array.init 8 (fun j ->
                let ij =
                  if j = 0 then base8
                  else begin
                    let r = Emitter.fresh e S32 in
                    Emitter.emit e (Add { dtype = S32; dst = r; a = Reg base8; b = Imm_int j });
                    r
                  end
                in
                let eaddr = byte_address e base ij ~scale:eb in
                let oob = Emitter.fresh e Pred in
                Emitter.emit e
                  (Setp { cmp = Ge; dtype = S32; dst = oob; a = Reg ij; b = Reg nwork });
                (eaddr, oob))
          in
          for lin = 0 to dof - 1 do
            let word = plane lin * nsites in
            let xs =
              Array.map
                (fun (eaddr, oob) ->
                  (* Guarded load: x = in-bounds ? partial[i] : 0.  The Mov
                     marks x multi-def, which provenance reports to CSE. *)
                  let x = Emitter.fresh e dt in
                  Emitter.emit e (Mov { dst = x; src = Imm_float 0.0 });
                  let skip = Emitter.fresh_label e "PAD" in
                  Emitter.emit e (Bra { label = skip; pred = Some oob });
                  Emitter.emit e
                    (Ld_global { dtype = dt; dst = x; addr = eaddr; offset = word * eb });
                  Emitter.emit e (Label skip);
                  x)
                elems
            in
            let add a b =
              let d = Emitter.fresh e dt in
              Emitter.emit e (Add { dtype = dt; dst = d; a = Reg a; b = Reg b });
              d
            in
            (* Balanced tree, matching the radix-8 fold kernel exactly. *)
            let s01 = add xs.(0) xs.(1)
            and s23 = add xs.(2) xs.(3)
            and s45 = add xs.(4) xs.(5)
            and s67 = add xs.(6) xs.(7) in
            let q0 = add s01 s23 and q1 = add s45 s67 in
            let total = add q0 q1 in
            Emitter.emit e
              (St_global
                 { dtype = dt; addr = baddr; offset = plane lin * bstride * eb; src = Reg total })
          done
        end;
        Emitter.emit e (Label exit_label);
        Emitter.emit e Ret;
        Emitter.finish e)
  in
  (* The raw stream is what the paper's unparser hands the driver:
     dead-component loads stripped (that has always happened at emission),
     everything else naive.  The middle-end then runs on top, with the
     emitter's provenance as the CSE soundness certificate. *)
  let raw = Emitter.eliminate_dead_code kernel in
  Ptx.Validate.kernel raw;
  let kernel, passes =
    if optimize then begin
      let r = Ptx.Passes.run ~provenance:(Emitter.provenance e) raw in
      Ptx.Validate.kernel r.Ptx.Passes.kernel;
      (r.Ptx.Passes.kernel, r.Ptx.Passes.applied)
    end
    else (raw, [])
  in
  { kernel; raw; text = Ptx.Print.kernel kernel; plan; dest_shape; passes }
