(** The QDP-JIT runtime for one rank: expression evaluation on the
    simulated GPU.

    {!eval} is the whole paper in one function: look the expression's
    structure up in the kernel cache (generate + driver-JIT-compile PTX on
    a miss), make every referenced field device-resident through the
    memory cache (Sec. IV), bind parameters, and launch through the
    per-kernel block-size auto-tuner (Sec. VII).  Reductions run a
    reduction-mode payload kernel that writes compact per-work-item
    partials {e and} aggregates every group of 8 into a block-partial
    buffer in the same launch; a cached radix-8 fold kernel then collapses
    the blocks.  The balanced tree matches {!Qdp.Eval_cpu} bit for bit,
    keeping results deterministic across every engine configuration.

    Default-stream evals are {e deferred}: they enter a pending queue,
    and a flush point — a reduction or readback, host access to any
    cached field, the queue depth cap, or an explicit {!flush} — runs
    the fusion planner over the queue.  The planner first partitions the
    queue into consecutive (subset, geometry) runs (a subset change is
    {e not} a flush point, so interleaved even/odd evals fuse within
    their own runs), then field-id dependence analysis (RAW/WAR/WAW,
    shifted vs same-site) groups compatible evals, and {!Ptx.Fuse}
    splices each group into one kernel: same-site producer→consumer
    loads become register moves and dead intermediate stores are
    dropped, cutting both launch count and global-memory traffic.  A
    trailing reduction payload splices into its group too (reduction
    fusion), so an axpy+norm2 solver step is a single launch.  Hazardous
    pairs stay separate launches in program order, so results are
    bit-exact against the eager schedule; [?fuse:false] restores
    eval-at-a-time launching outright. *)

type kernel_entry = {
  built : Codegen.built;
  compiled : Gpusim.Jit.compiled;
  tuner : Autotune.t;
  bytes_per_thread : int;
      (** modeled global load+store bytes one thread moves (drives
          {!kernel_bytes_moved}) *)
  tier_bytes_per_thread : int * int * int;
      (** the float portion of [bytes_per_thread] split by storage
          precision (f16, f32, f64); integer index traffic is counted in
          the total only *)
}

(** Per-kernel middle-end scorecard, recorded when a kernel is compiled.
    Register counts are the {e uncapped} allocator demand from
    {!Ptx.Dataflow.register_demand} in 32-bit units (the occupancy model's
    own estimate saturates at 64 on large kernels, which would hide the
    savings); [load_bytes] are per-thread global-memory reads. *)
type jit_stats = {
  kname : string;
  raw_instructions : int;
  opt_instructions : int;
  raw_registers : int;
  opt_registers : int;
  raw_load_bytes : int;
  opt_load_bytes : int;
  passes : Ptx.Passes.report list;  (** pass applications that changed the kernel *)
  fused_members : int;  (** evals spliced into this kernel (1 = unfused) *)
  fused_subst_load_bytes : int;
      (** per-thread consumer load bytes replaced by register moves *)
  fused_dropped_store_bytes : int;  (** per-thread producer store bytes dropped *)
}

(** Lifetime counters of the deferred-eval queue and fusion planner.
    Byte counts are whole-launch (per-thread savings × threads). *)
type fusion_stats = {
  deferred_evals : int;  (** default-stream evals that entered the queue *)
  flushes : int;
  fused_groups : int;  (** multi-eval groups launched as one kernel *)
  launches_saved : int;
  eliminated_load_bytes : int;
  eliminated_store_bytes : int;
  fallbacks : int;  (** groups relaunched separately after a fusion failure *)
}

type t

val create :
  ?machine:Gpusim.Machine.t ->
  ?mode:Gpusim.Device.mode ->
  ?vm_domains:int ->
  ?optimize:bool ->
  ?fuse:bool ->
  ?fuse_reductions:bool ->
  ?jit_cache:Jitcache.t ->
  unit ->
  t
(** A fresh engine with its own simulated device, memory cache and kernel
    cache.  [mode = Model_only] skips functional execution (used by the
    paper-scale benchmark sweeps).  [vm_domains] caps the worker count
    the pre-decoded VM may split a kernel launch across (default: host
    parallelism, overridable with [REPRO_VM_DOMAINS]); results are
    bit-identical for any value.  [optimize] (default on) runs the
    {!Ptx.Passes} middle-end on every kernel before the driver JIT;
    [~optimize:false] keeps the paper's raw unparser stream.  [fuse]
    (default on) defers default-stream evals into the fusion queue;
    [~fuse:false] restores blocking eval-at-a-time launches.
    [fuse_reductions] (default on) lets a reduction payload join the
    trailing fused group; [~fuse_reductions:false] launches every
    reduction payload standalone (identical kernel body and identical
    results, one extra launch per reduction).  [jit_cache] attaches a
    persistent on-disk kernel cache: every compile site (singleton,
    fusion source material, fused group, fold kernel) checks the cache
    before compiling and publishes what it compiles, so a second engine
    — in this process or another — replays the kernels without running
    the emitter, middle-end or driver JIT.  The [REPRO_JIT_CACHE]
    environment variable overrides the argument: a path caches there,
    [off]/[0]/[none]/[disabled] disables caching entirely. *)

val jit_stats : t -> jit_stats list
(** Scorecards of every kernel compiled so far, in compile order
    (flushes the queue first). *)

val fusion_stats : t -> fusion_stats
(** Deferred-queue counters so far (flushes the queue first). *)

val reset_stats : t -> unit
(** Rewind the per-interval reporting state — the {!jit_stats}
    scorecards and every {!fusion_stats} counter — without touching the
    kernel caches (flushes the queue first so pending work is attributed
    to the old interval).  Benchmarks call this between warm-up and
    measurement so per-solve deltas are exact.  Lifetime counters
    ({!kernels_built}, {!jit_seconds}, {!kernel_bytes_moved}) keep
    accumulating. *)

val jit_cache : t -> Jitcache.t option
(** The attached persistent kernel cache, after environment resolution. *)

val cache_tag : string
(** The version fence prefixed to every persistent-cache key: it embeds
    the OCaml version and the {!Codegen}, {!Ptx.Passes}, {!Ptx.Fuse} and
    {!Gpusim.Vm} format versions, so bumping any of them re-keys the
    whole cache and entries written before the bump become misses
    instead of deserialization attempts. *)

val jit_cache_stats : t -> Jitcache.stats option
(** Hit/miss/store/corrupt/evict counters of the attached cache;
    [None] when caching is disabled. *)

val device : t -> Gpusim.Device.t

val streams : t -> Streams.t
(** The engine's stream context; all launches and transfers schedule onto
    its timelines (and into its Chrome-trace span log). *)

val default_stream : t -> Streams.stream

val flush : t -> unit
(** Drain the deferred-eval queue: plan fusion groups (per
    (subset, geometry) run), launch them in program order on the default
    stream, and block until they complete.  A no-op when the queue is
    empty.  Reduction readbacks, host access to cached fields and the
    depth cap flush implicitly. *)

val synchronize : t -> float
(** {!flush}, then drain every stream of the engine's context (device
    synchronize); returns the host-visible clock in ns. *)

val memcache : t -> Memcache.t

val kernels_built : t -> int
(** Number of distinct kernels generated and driver-compiled so far (the
    paper reports ~200 for a production HMC trajectory).  Flushes the
    queue first, so pending compiles are counted. *)

val jit_seconds : t -> float
(** Accumulated modeled driver-JIT time (Sec. III-D: 0.05–0.22 s/kernel).
    Flushes the queue first. *)

val kernel_bytes_moved : t -> int
(** Modeled global-memory bytes moved by every kernel launched so far
    (per-thread load+store bytes × threads, summed over launches).
    Flushes the queue first. *)

val kernel_bytes_by_prec : t -> int * int * int
(** The float portion of {!kernel_bytes_moved} split by storage precision
    as [(f16, f32, f64)] bytes; integer index traffic (site lists,
    neighbour tables) appears only in the total.  Flushes the queue
    first. *)

val eval : ?subset:Qdp.Subset.t -> ?stream:Streams.stream -> t -> Qdp.Field.t -> Qdp.Expr.t -> unit
(** [eval t dest expr]: dest = expr on the simulated device.  Functionally
    identical to {!Qdp.Eval_cpu.eval} (bit-exact; the test suite checks
    this for every operation).  Without [stream] the eval is deferred
    into the fusion queue (or, with [~fuse:false], launched and
    synchronized immediately — the legacy blocking semantics).  With
    [stream] the queue is flushed and the launch is asynchronous on that
    stream; the caller owns synchronization (events or {!synchronize}). *)

val norm2 : ?subset:Qdp.Subset.t -> t -> Qdp.Expr.t -> float
(** Deterministic balanced radix-8 tree reduction of the per-site |.|^2
    kernel; bit-identical across fused / unfused / CPU evaluation. *)

val inner : ?subset:Qdp.Subset.t -> t -> Qdp.Expr.t -> Qdp.Expr.t -> float * float
val sum_real : ?subset:Qdp.Subset.t -> t -> Qdp.Expr.t -> float
val sum_components : ?subset:Qdp.Subset.t -> t -> Qdp.Expr.t -> float array

val ntable : t -> Layout.Geometry.t -> dim:int -> dir:int -> Gpusim.Buffer.t
(** The device neighbour table for a shift direction (built and uploaded
    once per geometry/direction). *)
