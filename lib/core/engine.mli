(** The QDP-JIT runtime for one rank: expression evaluation on the
    simulated GPU.

    {!eval} is the whole paper in one function: look the expression's
    structure up in the kernel cache (generate + driver-JIT-compile PTX on
    a miss), make every referenced field device-resident through the
    memory cache (Sec. IV), bind parameters, and launch through the
    per-kernel block-size auto-tuner (Sec. VII).  Reductions evaluate a
    per-site kernel into a temporary and fold it with cached pairwise
    reduction kernels, keeping results deterministic. *)

type kernel_entry = {
  built : Codegen.built;
  compiled : Gpusim.Jit.compiled;
  tuner : Autotune.t;
}

(** Per-kernel middle-end scorecard, recorded when a kernel is compiled.
    Register counts are the {e uncapped} allocator demand from
    {!Ptx.Dataflow.register_demand} in 32-bit units (the occupancy model's
    own estimate saturates at 64 on large kernels, which would hide the
    savings); [load_bytes] are per-thread global-memory reads. *)
type jit_stats = {
  kname : string;
  raw_instructions : int;
  opt_instructions : int;
  raw_registers : int;
  opt_registers : int;
  raw_load_bytes : int;
  opt_load_bytes : int;
  passes : Ptx.Passes.report list;  (** pass applications that changed the kernel *)
}

type t

val create :
  ?machine:Gpusim.Machine.t -> ?mode:Gpusim.Device.mode -> ?optimize:bool -> unit -> t
(** A fresh engine with its own simulated device, memory cache and kernel
    cache.  [mode = Model_only] skips functional execution (used by the
    paper-scale benchmark sweeps).  [optimize] (default on) runs the
    {!Ptx.Passes} middle-end on every kernel before the driver JIT;
    [~optimize:false] keeps the paper's raw unparser stream. *)

val jit_stats : t -> jit_stats list
(** Scorecards of every kernel compiled so far, in compile order. *)

val device : t -> Gpusim.Device.t

val streams : t -> Streams.t
(** The engine's stream context; all launches and transfers schedule onto
    its timelines (and into its Chrome-trace span log). *)

val default_stream : t -> Streams.stream

val synchronize : t -> float
(** Drain every stream of the engine's context (device synchronize);
    returns the host-visible clock in ns. *)

val memcache : t -> Memcache.t

val kernels_built : t -> int
(** Number of distinct kernels generated and driver-compiled so far (the
    paper reports ~200 for a production HMC trajectory). *)

val jit_seconds : t -> float
(** Accumulated modeled driver-JIT time (Sec. III-D: 0.05–0.22 s/kernel). *)

val eval : ?subset:Qdp.Subset.t -> ?stream:Streams.stream -> t -> Qdp.Field.t -> Qdp.Expr.t -> unit
(** [eval t dest expr]: dest = expr on the simulated device.  Functionally
    identical to {!Qdp.Eval_cpu.eval} (bit-exact; the test suite checks
    this for every operation).  Without [stream] the call is blocking
    (launch on the default stream, then stream-synchronize — the legacy
    semantics, so clock deltas around it keep measuring).  With [stream]
    the launch is asynchronous on that stream and the caller owns
    synchronization (events or {!synchronize}). *)

val norm2 : ?subset:Qdp.Subset.t -> t -> Qdp.Expr.t -> float
(** Deterministic pairwise-tree reduction of the per-site |.|^2 kernel. *)

val inner : ?subset:Qdp.Subset.t -> t -> Qdp.Expr.t -> Qdp.Expr.t -> float * float
val sum_real : ?subset:Qdp.Subset.t -> t -> Qdp.Expr.t -> float
val sum_components : ?subset:Qdp.Subset.t -> t -> Qdp.Expr.t -> float array

val ntable : t -> Layout.Geometry.t -> dim:int -> dir:int -> Gpusim.Buffer.t
(** The device neighbour table for a shift direction (built and uploaded
    once per geometry/direction). *)
