(** Multi-rank SPMD execution with communication/computation overlap
    (the paper's Sec. V).

    Every MPI rank becomes a simulated rank: its own device, memory cache
    and kernel cache, with the local sub-grid of the domain decomposition.
    Expressions are lowered bottom-up: each [Shift] crossing the rank grid
    is materialised by a local kernel, its face data crosses the fabric,
    inner sites are rebuilt from the local neighbour table and face sites
    are filled from the received buffer.  The final shift-free kernel is
    launched in two pieces — inner sites while messages are in flight,
    face sites after arrival — when overlap is enabled, or in one piece
    after arrival when not.  Shifts of shifts work but their inner
    exchanges do not overlap, matching the paper's stated limitation.

    Results are bit-identical with overlap on or off (and to the
    single-rank reference); what changes is the simulated per-rank
    timeline, which is what Fig. 6 plots. *)

type t

(** A field distributed over the ranks (one local field each). *)
type dfield = { shape : Layout.Shape.t; locals : Qdp.Field.t array }

val create :
  ?machine:Gpusim.Machine.t ->
  ?mode:Gpusim.Device.mode ->
  ?network:Comms.Network.t ->
  ?rank_domains:int ->
  global_dims:int array ->
  rank_dims:int array ->
  unit ->
  t
(** A rank grid of [rank_dims] (must divide [global_dims]) with one
    simulated device per rank.  [rank_domains] (default via
    [REPRO_MULTI_DOMAINS], else 1) > 1 executes rank-local compute
    concurrently on that many OCaml 5 domains: ranks are dealt
    round-robin to workers, each rank's engine runs its own launches
    single-worker, and every cross-rank step (fabric transfers, face
    fills, reduction sums) stays on the calling thread — results are
    bit-identical to the sequential rank sweep.  On the OCaml 4.x
    back-end the workers run sequentially.  A malformed environment
    override falls back to 1 with a note on stderr. *)

val nranks : t -> int
val local_geom : t -> Layout.Geometry.t

val engine : t -> int -> Engine.t
(** The rank's engine — its device, memory cache and stream context (the
    latter holds the rank's recorded timeline for trace export). *)

val rank_domains : t -> int
(** Workers rank-local compute is spread across (1 = sequential). *)

val drop_temps : t -> unit
(** Release every shift-pool temporary's device allocation: each rank's
    temporaries are bookkept in per-domain arena slices of its memory
    cache ({!Memcache.domain_slice}), and this releases all of them in
    one sweep (dirty ones page out first, so contents survive and
    re-upload on next use).  Call between solves to return device
    memory; must not run concurrently with {!eval}. *)

val set_overlap : t -> bool -> unit
(** Toggle communication/computation overlap (functional no-op). *)

val max_clock : t -> float
(** The slowest rank's modeled timeline, ns (the latest completion across
    every stream of every rank). *)

val reset_clocks : t -> unit
(** Rewind every rank's stream timelines (and recorded trace spans) to
    zero — benchmarks call this after warm-up. *)

val create_field : ?name:string -> t -> Layout.Shape.t -> dfield

val scatter : t -> global:Qdp.Field.t -> dfield -> unit
(** Distribute a global-lattice field over the ranks. *)

val gather : t -> dfield -> global:Qdp.Field.t -> unit

type eval_timing = {
  total_ns : float;  (** max over ranks for this statement *)
  comm_overlapped : bool;
}

val eval : ?subset:Qdp.Subset.t -> t -> dfield -> (int -> Qdp.Expr.t) -> eval_timing
(** [eval t dest mk] evaluates [mk rank] (which must be structurally
    identical across ranks, referring to rank-local fields) into the local
    destinations, exchanging shift faces over the fabric. *)

val norm2 : t -> (int -> Qdp.Expr.t) -> float
(** Per-rank device reductions, summed over ranks (the MPI all-reduce). *)

val sum_real : t -> (int -> Qdp.Expr.t) -> float
val inner : t -> (int -> Qdp.Expr.t) -> (int -> Qdp.Expr.t) -> float * float
val fabric_stats : t -> Comms.Fabric.stats
