(** The code-generating scalar: the {!Linalg.Scalar.S} instance whose
    "arithmetic" emits PTX.

    A value is either a compile-time constant or a typed virtual register —
    the "JIT values" of Sec. III-A, reified here as an OCaml variant.
    Constants fold: 0 and 1 products, zero additions and constant
    subexpressions never reach the instruction stream, which is how dense
    gamma-matrix algebra written at the QDP++ level compiles into the lean
    stencil kernels the paper measures.  Mixed-precision operands are
    reconciled by silently issuing [cvt] instructions — the implicit type
    promotion of Sec. III-D. *)

open Ptx.Types

type t = Const of float | Vreg of reg

(* The emitter the scalar operations write into; the code generator binds
   it for the duration of one kernel build (exclusive, like the CUDA
   driver context it models).  Builds issued from concurrent domains —
   Multi's parallel rank sweep compiling each rank's kernels — serialize
   on a tiny spinlock: binds are rare (per-engine cache misses only) and
   short, and Mutex lives in the threads library on OCaml 4.x where
   there are no domains to contend anyway.  Never nested: the single
   call site builds one kernel at a time. *)
let current : Emitter.t option ref = ref None
let build_lock = Atomic.make false

let with_emitter e f =
  let rec acquire () =
    if not (Atomic.compare_and_set build_lock false true) then acquire ()
  in
  acquire ();
  current := Some e;
  Fun.protect
    ~finally:(fun () ->
      current := None;
      Atomic.set build_lock false)
    f

let emitter () =
  match !current with
  | Some e -> e
  | None -> failwith "Jit_scalar: no emitter bound (codegen misuse)"

let const x = Const x

(* Precision of an operation: the widest register involved; pure-constant
   cases fold before this is ever asked. *)
let promote a b =
  match (a, b) with
  | Vreg { rtype = F64; _ }, _ | _, Vreg { rtype = F64; _ } -> F64
  | Vreg { rtype = F32; _ }, _ | _, Vreg { rtype = F32; _ } -> F32
  | _ -> F64

let operand dtype v =
  match v with
  | Const x -> Imm_float x
  | Vreg r when r.rtype = dtype -> Reg r
  | Vreg r ->
      (* Implicit promotion: convert into the operation's precision. *)
      let e = emitter () in
      let dst = Emitter.fresh e dtype in
      Emitter.emit e (Cvt { dst; src = r });
      Reg dst

(* The operand in its native register type, no implicit convert: f16
   stores round their source directly whatever its width, so a Cvt here
   would double-round f64 values. *)
let operand_native = function Const x -> Imm_float x | Vreg r -> Reg r

let is_zero = function Const 0.0 -> true | Const _ | Vreg _ -> false
let is_one = function Const 1.0 -> true | Const _ | Vreg _ -> false
let is_minus_one = function Const x -> x = -1.0 | Vreg _ -> false

let emit_binop make a b =
  let e = emitter () in
  let dtype = promote a b in
  let dst = Emitter.fresh e dtype in
  Emitter.emit e (make dtype dst (operand dtype a) (operand dtype b));
  Vreg dst

let neg = function
  | Const x -> Const (-.x)
  | Vreg r ->
      let e = emitter () in
      let dst = Emitter.fresh e r.rtype in
      Emitter.emit e (Neg { dtype = r.rtype; dst; a = Reg r });
      Vreg dst

let add a b =
  match (a, b) with
  | Const x, Const y -> Const (x +. y)
  | a, b when is_zero a -> b
  | a, b when is_zero b -> a
  | _ -> emit_binop (fun dtype dst x y -> Add { dtype; dst; a = x; b = y }) a b

let sub a b =
  match (a, b) with
  | Const x, Const y -> Const (x -. y)
  | a, b when is_zero b -> a
  | a, b when is_zero a -> neg b
  | _ -> emit_binop (fun dtype dst x y -> Sub { dtype; dst; a = x; b = y }) a b

let mul a b =
  match (a, b) with
  | Const x, Const y -> Const (x *. y)
  | a, b when is_zero a || is_zero b -> Const 0.0
  | a, b when is_one a -> b
  | a, b when is_one b -> a
  | a, b when is_minus_one a -> neg b
  | a, b when is_minus_one b -> neg a
  | _ -> emit_binop (fun dtype dst x y -> Mul { dtype; dst; a = x; b = y }) a b

let fma a b c =
  if is_zero a || is_zero b then c
  else if is_zero c then mul a b
  else
    match (a, b) with
    | Const x, Const y -> add (Const (x *. y)) c
    | _ ->
        let e = emitter () in
        let dtype =
          (* widest register type among the three operands *)
          let regs = List.filter_map (function Vreg r -> Some r.rtype | Const _ -> None) [ a; b; c ] in
          if List.mem F64 regs then F64 else F32
        in
        let dst = Emitter.fresh e dtype in
        Emitter.emit e
          (Fma { dtype; dst; a = operand dtype a; b = operand dtype b; c = operand dtype c });
        Vreg dst

(* Math subroutine call (the pre-generated PTX subroutines of Sec. III-D). *)
let call_math name v ~prec =
  let e = emitter () in
  let arg =
    match operand prec v with
    | Reg r -> r
    | Imm_float x ->
        let r = Emitter.fresh e prec in
        Emitter.emit e (Mov { dst = r; src = Imm_float x });
        r
    | Imm_int _ -> assert false
  in
  let ret = Emitter.fresh e prec in
  let suffix = match prec with F32 -> "f32" | _ -> "f64" in
  Emitter.emit e (Call { func = Printf.sprintf "qdpjit_%s_%s" name suffix; ret; arg });
  Vreg ret
