(** Expression → PTX kernel code generation (the paper's Sec. III).

    The AST unparser walks the tree exactly like the CPU evaluator, but
    the site algebra is instantiated at {!Jit_scalar}, so visiting a node
    emits PTX instead of computing.  Leaves become "JIT data views"
    (Sec. III-B): the base pointer plus the coalesced SoA offsets

      I(iV,iS,iC,iR) = ((iR*IC + iC)*IS + iS)*IV + iV

    with the site index iV the CUDA thread index (or a value loaded from
    the site-list buffer on subsets).  Shifts load the displaced site
    index from a neighbour table.  Dead code (unused component loads,
    folded constants) is eliminated before printing. *)

module Shape = Layout.Shape

val version : int
(** Bumped whenever generated PTX could change for the same expression
    structure; persistent caches fold it into their keys. *)

(** Launch-time parameter binding order. *)
type param_plan =
  | Dest  (** destination field pointer *)
  | Leaf_ptr of int  (** nth distinct field of the expression *)
  | Ntable of int * int  (** neighbour table for (dim, dir) *)
  | Sitelist  (** site-list buffer (subset kernels) *)
  | N_work  (** number of threads doing real work *)
  | Block_partial
      (** per-block partial-sum buffer (reduction kernels only): for each
          destination component, a plane of ceil(n_work/8) elements *)
  | Scalar_param of int * int
      (** component [comp] of the nth runtime scalar leaf *)

type built = {
  kernel : Ptx.Types.kernel;  (** validated IR; optimized unless [~optimize:false] *)
  raw : Ptx.Types.kernel;  (** the pre-middle-end stream (equal to [kernel] when raw) *)
  text : string;  (** the PTX text of [kernel], handed to the driver JIT *)
  plan : param_plan list;
  dest_shape : Shape.t;
  passes : Ptx.Passes.report list;  (** middle-end applications, in order *)
}

val build :
  ?optimize:bool ->
  ?reduction:bool ->
  kname:string ->
  dest_shape:Shape.t ->
  expr:Qdp.Expr.t ->
  nsites:int ->
  use_sitelist:bool ->
  unit ->
  built
(** Generate the kernel for [dest = expr] over a local volume of [nsites]
    sites.  [use_sitelist] selects the subset variant (site index loaded
    from a buffer instead of the thread index).  [optimize] (default on)
    runs the {!Ptx.Passes} middle-end on the emitted stream; [raw] always
    holds the unoptimized kernel for comparison.

    [reduction] (default off) builds the payload kernel of a reduction:
    destination stores are addressed by the compact work-item index
    instead of the site index, and the kernel grows a {!Block_partial}
    parameter plus an aggregation tail — the last thread of each group of
    8 work items re-reads the group's partials and stores their
    balanced-tree sum, cutting the host-side fold chain to radix 8.
    Sound on the simulator because threads run sequentially in increasing
    index order. *)
