(** Multi-rank SPMD execution with communication/computation overlap
    (Sec. V), expressed with streams and events.

    Every MPI rank of the paper becomes a simulated rank here: its own
    device, memory cache and kernel cache, with the local sub-grid of the
    domain decomposition.  Expressions are lowered bottom-up: each [Shift]
    subtree is materialised by a local kernel (the "gather" compute), its
    face data crosses the fabric, inner sites are rebuilt from the local
    neighbour table, and face sites are filled from the received buffer.

    The overlap itself is CUDA-shaped: each rank runs its compute on the
    engine's default stream and its exchanges on a dedicated "comm"
    stream.  The gather kernel records an event the face export waits on;
    the message arrival (computed by the simulated fabric) completes an
    event the import side waits on; the received-face scatter records a
    [face_ready] event.  With overlap enabled the final kernel is launched
    in two pieces — inner sites run immediately, the face piece waits on
    [face_ready] — and with it disabled the compute stream itself waits on
    [face_ready] before any post-exchange work, serialising comm and
    compute.  No per-rank clock arithmetic: the timeline is whatever the
    stream scheduler produced, observable via {!max_clock}.

    Functional results are identical with overlap on or off; what changes
    is the simulated per-rank timeline, which is what Fig. 6 plots. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Index = Layout.Index
module Field = Qdp.Field
module Expr = Qdp.Expr
module Subset = Qdp.Subset
module Buffer_ = Gpusim.Buffer

type t = {
  grid : Comms.Grid.t;
  fabric : Comms.Fabric.t;
  engines : Engine.t array;
  comm_streams : Streams.stream array;
      (** per-rank dedicated stream for face exchange traffic *)
  mutable overlap : bool;
  mutable comm_bytes : int;
  rank_domains : int;
      (** compute-loop workers: ranks execute concurrently on real
          domains when > 1 (each rank's engine then runs its own
          launches single-worker, so the VM pool is never nested) *)
  shift_pool : (string, dfield * dfield) Hashtbl.t;
      (** reused (tmp, shifted) temporaries per (dim, dir, shape,
          occurrence) — the communication buffers of a real implementation
          are persistent too, and per-eval allocation would thrash memory
          at Fig. 6 volumes *)
  mutable shift_seq : int;  (** occurrence counter within one [eval] *)
}

and dfield = { shape : Layout.Shape.t; locals : Qdp.Field.t array }

(* Rank-parallelism resolution: explicit argument > REPRO_MULTI_DOMAINS
   environment override > 1 (sequential, the deterministic default).
   Like REPRO_VM_DOMAINS, a malformed override is never trusted. *)
let resolve_rank_domains ?rank_domains () =
  let n =
    match rank_domains with
    | Some n -> n
    | None -> (
        match Sys.getenv_opt "REPRO_MULTI_DOMAINS" with
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some v when v >= 1 -> v
            | Some _ | None ->
                Printf.eprintf
                  "multi: REPRO_MULTI_DOMAINS=%S is not a positive integer; running ranks \
                   sequentially\n\
                   %!"
                  s;
                1)
        | None -> 1)
  in
  max 1 (min n 64)

let create ?(machine = Gpusim.Machine.k20m_ecc_on) ?(mode = Gpusim.Device.Functional)
    ?(network = Comms.Network.infiniband_qdr) ?rank_domains ~global_dims ~rank_dims () =
  let grid = Comms.Grid.create ~global_dims ~rank_dims in
  let nranks = Comms.Grid.nranks grid in
  let rank_domains = resolve_rank_domains ?rank_domains () in
  (* With parallel ranks the domain *is* the unit of parallelism: each
     rank's launches run single-worker so a rank's engine never re-enters
     the shared VM pool from inside a pool worker. *)
  let engines =
    Array.init nranks (fun _ ->
        if rank_domains > 1 then Engine.create ~machine ~mode ~vm_domains:1 ()
        else Engine.create ~machine ~mode ())
  in
  {
    grid;
    fabric = Comms.Fabric.create ~network ~nranks;
    engines;
    comm_streams =
      Array.map (fun eng -> Streams.create_stream ~name:"comm" (Engine.streams eng)) engines;
    overlap = true;
    comm_bytes = 0;
    rank_domains;
    shift_pool = Hashtbl.create 16;
    shift_seq = 0;
  }

let nranks t = Comms.Grid.nranks t.grid
let local_geom t = t.grid.Comms.Grid.local
let engine t rank = t.engines.(rank)
let rank_domains t = t.rank_domains
let set_overlap t flag = t.overlap <- flag

(* Run rank-local compute ([f worker rank] touches only rank [rank]'s
   engine/cache/streams) across the configured domains: ranks are dealt
   round-robin to workers, so the assignment — and every rank's own
   execution order — is deterministic.  Cross-rank steps (fabric
   transfers, functional face fills, reduction sums) stay on the calling
   thread, between sweeps.  Sequential when [rank_domains <= 1]: the
   exact loop this replaces. *)
let par_ranks t f =
  let n = nranks t in
  let w = min t.rank_domains n in
  if w <= 1 then
    for rank = 0 to n - 1 do
      f 0 rank
    done
  else
    Gpusim.Vm_backend.run ~workers:w (fun k ->
        let rank = ref k in
        while !rank < n do
          f k !rank;
          rank := !rank + w
        done)

(* Fields Multi itself materializes (the shift pool's temporaries) are
   bookkept in the executing domain's arena slice of the rank's cache, so
   concurrent ranks never contend on a shared arena and [drop_temps] can
   release every temporary's device allocation in one sweep. *)
let register_temp t ~worker ~rank (f : Field.t) =
  let mc = Engine.memcache t.engines.(rank) in
  Memcache.arena_register (Memcache.domain_slice mc ~worker) f

let drop_temps t =
  Array.iter (fun eng -> Memcache.release_domain_slices (Engine.memcache eng)) t.engines

let max_clock t =
  Array.fold_left (fun acc eng -> Float.max acc (Streams.horizon (Engine.streams eng))) 0.0
    t.engines

let reset_clocks t =
  Array.iter
    (fun eng ->
      Streams.reset (Engine.streams eng);
      Memcache.settle (Engine.memcache eng))
    t.engines

let create_field ?name t shape =
  { shape; locals = Array.init (nranks t) (fun _ -> Field.create ?name shape (local_geom t)) }

(* Distribute a global-lattice field over the ranks and back. *)
let scatter t ~(global : Field.t) (df : dfield) =
  let local = local_geom t in
  for rank = 0 to nranks t - 1 do
    for ls = 0 to Geometry.volume local - 1 do
      let gs = Comms.Grid.global_site t.grid ~rank ~local_site:ls in
      Field.set_site df.locals.(rank) ~site:ls (Field.get_site global ~site:gs)
    done
  done

let gather t (df : dfield) ~(global : Field.t) =
  let local = local_geom t in
  for rank = 0 to nranks t - 1 do
    for ls = 0 to Geometry.volume local - 1 do
      let gs = Comms.Grid.global_site t.grid ~rank ~local_site:ls in
      Field.set_site global ~site:gs (Field.get_site df.locals.(rank) ~site:ls)
    done
  done

(* Is the rank grid split along [dim]?  If not, a shift is purely local. *)
let split_along t dim = (Geometry.dims t.grid.Comms.Grid.rank_geom).(dim) > 1

let ctx t rank = Engine.streams t.engines.(rank)
let s0 t rank = Engine.default_stream t.engines.(rank)

(* Functional face fill, device buffer to device buffer (the wrapped local
   neighbour index *is* the partner's local site index).  Going through
   the host API would trip the coherence hooks and page whole fields over
   modeled PCIe — a real implementation scatters the receive buffer on the
   device, and the modeled cost of that traffic is already on the comm
   stream, so the data movement here must be free of modeled time. *)
let fill_face_functional t ~rank ~partner ~face ~dim ~dir (tmp : dfield) (shifted : dfield) =
  let local = local_geom t in
  let shape = shifted.shape in
  let nsites = Geometry.volume local in
  let dst_cache = Engine.memcache t.engines.(rank) in
  let src_cache = Engine.memcache t.engines.(partner) in
  let dst_buf = Memcache.ensure_resident dst_cache shifted.locals.(rank) in
  let src_buf = Memcache.ensure_resident src_cache tmp.locals.(partner) in
  let dof = Shape.dof shape in
  let copy (type a b) (src : (a, b, Bigarray.c_layout) Bigarray.Array1.t)
      (dst : (a, b, Bigarray.c_layout) Bigarray.Array1.t) =
    Array.iter
      (fun x ->
        let src_site = Geometry.neighbor local x ~dim ~dir in
        for lin = 0 to dof - 1 do
          let spin, color, reality = Index.component_of_linear shape lin in
          let src_off = Index.offset Index.Soa shape ~nsites ~site:src_site ~spin ~color ~reality in
          let dst_off = Index.offset Index.Soa shape ~nsites ~site:x ~spin ~color ~reality in
          dst.{dst_off} <- src.{src_off}
        done)
      face
  in
  (match (src_buf.Buffer_.data, dst_buf.Buffer_.data) with
  | Buffer_.F32 s, Buffer_.F32 d -> copy s d
  | Buffer_.F64 s, Buffer_.F64 d -> copy s d
  | _ -> invalid_arg "Multi: face fill precision mismatch");
  Memcache.mark_device_dirty dst_cache shifted.locals.(rank)

(* ---------------------------------------------------------------- *)
(* Expression lowering                                               *)

(* Rewrite per-rank expressions bottom-up, materialising every Shift whose
   direction crosses ranks; collects the off-node face-site set
   contributed by top-level shifts and the [face_ready] events the final
   face piece must wait on. *)
type lowering = {
  mutable face_sets : (int * int) list;  (** exchanged (dim,dir) at top level *)
  mutable nested : bool;  (** saw an exchanged shift below another shift *)
  face_ready : Streams.Event.t list array;  (** per-rank, one per exchange *)
}

(* ---------------------------------------------------------------- *)
(* Shift materialisation                                             *)

(* One exchanged shift: the per-rank result fields. *)
let shift_temps t ~dim ~dir shape =
  (* Distinct shift occurrences within one statement need distinct buffers
     (two nodes may share (dim, dir, shape)); across statements the same
     occurrence sequence reuses them. *)
  t.shift_seq <- t.shift_seq + 1;
  let key = Printf.sprintf "%d:%+d:%s:%d" dim dir (Shape.to_string shape) t.shift_seq in
  match Hashtbl.find_opt t.shift_pool key with
  | Some pair -> pair
  | None ->
      let pair = (create_field t shape, create_field t shape) in
      Hashtbl.replace t.shift_pool key pair;
      pair

let materialize_shift t (low : lowering) (subs : Expr.t array) ~dim ~dir ~depth =
  let local = local_geom t in
  let n = nranks t in
  let shape = Expr.shape subs.(0) in
  let pooled_tmp, shifted = shift_temps t ~dim ~dir shape in
  (* 1. Local "gather" kernel on the compute stream: materialise the
     subtree everywhere — unless it is already a plain field, in which
     case the faces can be sent directly (no copy, no kernel).  The
     [g_done] event marks when the face data is ready to export. *)
  let g_done = Array.init n (fun r -> Streams.Event.create ~name:(Printf.sprintf "gather done r%d" r) ()) in
  let tmp =
    match subs.(0) with
    | Expr.Leaf _ ->
        let tmp =
          { shape; locals = Array.map (function Expr.Leaf f -> f | _ -> assert false) subs }
        in
        for rank = 0 to n - 1 do
          Streams.record_event (ctx t rank) (s0 t rank) g_done.(rank)
        done;
        tmp
    | _ ->
        par_ranks t (fun k rank ->
            Engine.eval ~stream:(s0 t rank) t.engines.(rank) pooled_tmp.locals.(rank) subs.(rank);
            register_temp t ~worker:k ~rank pooled_tmp.locals.(rank);
            Streams.record_event (ctx t rank) (s0 t rank) g_done.(rank));
        pooled_tmp
  in
  if not (split_along t dim) then begin
    (* Whole direction lives on-rank: a single local kernel suffices. *)
    par_ranks t (fun k rank ->
        Engine.eval ~stream:(s0 t rank) t.engines.(rank) shifted.locals.(rank)
          (Expr.shift (Expr.field tmp.locals.(rank)) ~dim ~dir);
        register_temp t ~worker:k ~rank shifted.locals.(rank));
    shifted
  end
  else begin
    let face = Geometry.face_sites local ~dim ~dir in
    let inner = Geometry.inner_sites local ~dim ~dir in
    let face_bytes = Array.length face * Shape.bytes_per_site shape in
    t.comm_bytes <- t.comm_bytes + (face_bytes * n);
    let cuda_aware = Comms.Fabric.cuda_aware t.fabric in
    (* 2. Face export on the comm stream: wait for the gather, then (for a
       non-CUDA-aware fabric) stage the face through host memory.  The
       comm stream's cursor afterwards is the message post time. *)
    let post = Array.make n 0.0 in
    for rank = 0 to n - 1 do
      let c = ctx t rank and sc = t.comm_streams.(rank) in
      Streams.wait_event c sc g_done.(rank);
      if not cuda_aware then
        ignore (Streams.memcpy_d2h ~name:"face export" c sc ~bytes:face_bytes);
      post.(rank) <- Streams.cursor_ns sc
    done;
    (* 3. The wire: the simulated fabric turns each post time into an
       arrival time at the partner, which completes an event the
       receiver's comm stream waits on. *)
    let arrived =
      Array.init n (fun rank ->
          (* Receiver's message comes from the rank on the *opposite* side. *)
          let sender = Comms.Grid.neighbor_rank t.grid rank ~dim ~dir in
          let arrive_ns =
            Comms.Fabric.transfer t.fabric ~src:sender ~dst:rank ~bytes:face_bytes
              ~post_ns:post.(sender)
          in
          let ev = Streams.Event.create ~name:(Printf.sprintf "msg arrival r%d" rank) () in
          Streams.record_event_at ev ~ns:arrive_ns;
          ev)
    in
    (* 4. Face import + scatter on the comm stream; [face_ready] caps the
       exchange.  Model-only devices skip the data movement.  The scatter
       is a tiny launch-overhead-sized kernel; it is modeled on the copy
       engine rather than the SMs because the engine timelines are FCFS in
       issue order — a late-starting blip on the compute engine would
       otherwise push back every kernel issued after it, which the real
       hardware (running it between kernels) does not do. *)
    for rank = 0 to n - 1 do
      let partner = Comms.Grid.neighbor_rank t.grid rank ~dim ~dir in
      if (Engine.device t.engines.(rank)).Gpusim.Device.mode = Gpusim.Device.Functional then
        fill_face_functional t ~rank ~partner ~face ~dim ~dir tmp shifted;
      let c = ctx t rank and sc = t.comm_streams.(rank) in
      Streams.wait_event c sc arrived.(rank);
      if not cuda_aware then
        ignore (Streams.memcpy_h2d ~name:"face import" c sc ~bytes:face_bytes);
      let mach = (Engine.device t.engines.(rank)).Gpusim.Device.machine in
      Streams.busy ~cat:"kernel" c sc ~engine:Streams.Copy_h2d ~name:"face scatter"
        ~ns:mach.Gpusim.Machine.base_overhead_ns;
      let ev = Streams.Event.create ~name:(Printf.sprintf "face ready r%d" rank) () in
      Streams.record_event c sc ev;
      (* Overlap off — or an exchange feeding another shift, which the
         paper does not overlap — stalls the compute stream here and now;
         overlap on defers the wait to the final face piece. *)
      if (not t.overlap) || depth > 0 then Streams.wait_event c (s0 t rank) ev
      else low.face_ready.(rank) <- ev :: low.face_ready.(rank)
    done;
    (* 5. Inner sites from the local (periodic) neighbour table, on the
       compute stream — this is the work that hides the messages (with
       overlap off the compute stream just stalled on [face_ready], so
       nothing hides). *)
    par_ranks t (fun k rank ->
        Engine.eval ~stream:(s0 t rank) ~subset:(Subset.Custom inner) t.engines.(rank)
          shifted.locals.(rank)
          (Expr.shift (Expr.field tmp.locals.(rank)) ~dim ~dir);
        register_temp t ~worker:k ~rank shifted.locals.(rank));
    if depth = 0 then low.face_sets <- (dim, dir) :: low.face_sets else low.nested <- true;
    shifted
  end

let rec lower t (low : lowering) ~depth (es : Expr.t array) : Expr.t array =
  let n = nranks t in
  let sub1 f = Array.map (fun e -> f e) es in
  match es.(0) with
  | Expr.Leaf _ | Expr.Const _ | Expr.Param _ -> es
  | Expr.Unary (op, _) ->
      let subs = lower t low ~depth (sub1 (function Expr.Unary (_, s) -> s | _ -> assert false)) in
      Array.map (fun s -> Expr.Unary (op, s)) subs
  | Expr.Binary (op, _, _) ->
      let lefts = lower t low ~depth (sub1 (function Expr.Binary (_, a, _) -> a | _ -> assert false)) in
      let rights = lower t low ~depth (sub1 (function Expr.Binary (_, _, b) -> b | _ -> assert false)) in
      Array.init n (fun r -> Expr.Binary (op, lefts.(r), rights.(r)))
  | Expr.Clover (_, _, _) ->
      let d = lower t low ~depth (sub1 (function Expr.Clover (a, _, _) -> a | _ -> assert false)) in
      let tr = lower t low ~depth (sub1 (function Expr.Clover (_, b, _) -> b | _ -> assert false)) in
      let p = lower t low ~depth (sub1 (function Expr.Clover (_, _, c) -> c | _ -> assert false)) in
      Array.init n (fun r -> Expr.Clover (d.(r), tr.(r), p.(r)))
  | Expr.Shift (_, dim, dir) ->
      let subs = lower t low ~depth:(depth + 1) (sub1 (function Expr.Shift (s, _, _) -> s | _ -> assert false)) in
      if not (split_along t dim) then
        (* Purely local: keep the shift in the kernel. *)
        Array.map (fun s -> Expr.Shift (s, dim, dir)) subs
      else
        let shifted = materialize_shift t low subs ~dim ~dir ~depth in
        Array.map (fun f -> Expr.field f) shifted.locals

(* ---------------------------------------------------------------- *)
(* Evaluation                                                        *)

type eval_timing = {
  total_ns : float;  (** max over ranks for this statement *)
  comm_overlapped : bool;
}

let eval ?(subset = Subset.All) t (dest : dfield) (mk : int -> Expr.t) =
  let n = nranks t in
  t.shift_seq <- 0;
  let exprs = Array.init n mk in
  let low = { face_sets = []; nested = false; face_ready = Array.make n [] } in
  let lowered = lower t low ~depth:0 exprs in
  let local = local_geom t in
  let had_exchange = low.face_sets <> [] || low.nested in
  if not had_exchange then begin
    (* No off-node data: single launch per rank. *)
    par_ranks t (fun _ rank ->
        Engine.eval ~subset ~stream:(s0 t rank) t.engines.(rank) dest.locals.(rank) lowered.(rank));
    { total_ns = max_clock t; comm_overlapped = false }
  end
  else begin
    (* Split the final kernel: sites whose top-level shifts were all local
       vs sites that consumed received data.  The inner piece launches
       while messages fly; the face piece waits on every [face_ready]
       event first (with overlap off the compute stream already stalled at
       the exchanges, so the waits are no-ops there). *)
    let face_set = Hashtbl.create 64 in
    List.iter
      (fun (dim, dir) ->
        Array.iter (fun s -> Hashtbl.replace face_set s ()) (Geometry.face_sites local ~dim ~dir))
      low.face_sets;
    let requested = Subset.sites local subset in
    let inner_sites =
      Array.of_list (List.filter (fun s -> not (Hashtbl.mem face_set s)) (Array.to_list requested))
    in
    let face_sites =
      Array.of_list (List.filter (fun s -> Hashtbl.mem face_set s) (Array.to_list requested))
    in
    par_ranks t (fun _ rank ->
        let stream = s0 t rank in
        if Array.length inner_sites > 0 then
          Engine.eval ~subset:(Subset.Custom inner_sites) ~stream t.engines.(rank)
            dest.locals.(rank) lowered.(rank);
        List.iter (Streams.wait_event (ctx t rank) stream) (List.rev low.face_ready.(rank));
        if Array.length face_sites > 0 then
          Engine.eval ~subset:(Subset.Custom face_sites) ~stream t.engines.(rank)
            dest.locals.(rank) lowered.(rank));
    { total_ns = max_clock t; comm_overlapped = t.overlap }
  end

(* Reductions: per-rank engine reductions, summed over ranks (the MPI
   all-reduce of the real implementation).  The device reductions run
   concurrently across rank domains; the cross-rank sum happens on the
   calling thread in rank order, so the accumulation order — and the
   floating-point result — is identical to the sequential sweep.  The
   per-rank expressions are built on the calling thread first: [mk] is
   user code and owes us no thread-safety. *)
let norm2 t (mk : int -> Expr.t) =
  let n = nranks t in
  let es = Array.init n mk in
  let partial = Array.make n 0.0 in
  par_ranks t (fun _ rank -> partial.(rank) <- Engine.norm2 t.engines.(rank) es.(rank));
  Array.fold_left ( +. ) 0.0 partial

let sum_real t (mk : int -> Expr.t) =
  let n = nranks t in
  let es = Array.init n mk in
  let partial = Array.make n 0.0 in
  par_ranks t (fun _ rank -> partial.(rank) <- Engine.sum_real t.engines.(rank) es.(rank));
  Array.fold_left ( +. ) 0.0 partial

let inner t (mka : int -> Expr.t) (mkb : int -> Expr.t) =
  let n = nranks t in
  let eas = Array.init n mka and ebs = Array.init n mkb in
  let partial = Array.make n (0.0, 0.0) in
  par_ranks t (fun _ rank ->
      partial.(rank) <- Engine.inner t.engines.(rank) eas.(rank) ebs.(rank));
  Array.fold_left (fun (re, im) (r, i) -> (re +. r, im +. i)) (0.0, 0.0) partial

let fabric_stats t = Comms.Fabric.stats t.fabric
