(** The QDP-JIT runtime for one rank: expression evaluation on the
    simulated GPU.

    [eval] is the whole paper in one function: look the expression's
    structure up in the kernel cache (generate + driver-JIT-compile PTX on
    a miss), make every referenced field device-resident through the
    memory cache, bind parameters, and launch through the per-kernel
    auto-tuner.  Reductions evaluate a per-site kernel into a temporary
    and fold it with cached pairwise-reduction kernels, keeping results
    deterministic. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Subset = Qdp.Subset
module Device = Gpusim.Device
module Jit = Gpusim.Jit
module Buffer_ = Gpusim.Buffer
open Ptx.Types

type kernel_entry = {
  built : Codegen.built;
  compiled : Jit.compiled;
  tuner : Autotune.t;
}

(** Per-kernel middle-end scorecard, recorded at compile time.  Register
    counts are the {e uncapped} allocator demand from
    {!Ptx.Dataflow.register_demand} (32-bit units): the occupancy model's
    [regs_per_thread] saturates at 64 on large kernels, which would hide
    exactly the savings these numbers exist to show. *)
type jit_stats = {
  kname : string;
  raw_instructions : int;
  opt_instructions : int;
  raw_registers : int;
  opt_registers : int;
  raw_load_bytes : int;
  opt_load_bytes : int;
  passes : Ptx.Passes.report list;  (** pass applications that changed the kernel *)
}

type t = {
  device : Device.t;
  streams : Streams.t;  (** stream context over [device]; all launches go
                            through it (default stream unless told otherwise) *)
  cache : Memcache.t;
  kernels : (string, kernel_entry) Hashtbl.t;
  ntables : (string, Buffer_.t) Hashtbl.t;
  sitelists : (string, Buffer_.t) Hashtbl.t;
  optimize : bool;  (** run the {!Ptx.Passes} middle-end before the driver JIT *)
  mutable kernels_built : int;
  mutable jit_seconds : float;  (** accumulated modeled driver-JIT time *)
  mutable kernel_serial : int;
  mutable reduce_kernel : kernel_entry option;
  mutable stats_rev : jit_stats list;
}

let create ?(machine = Gpusim.Machine.k20x_ecc_off) ?(mode = Device.Functional)
    ?(optimize = true) () =
  let device = Device.create ~mode machine in
  let streams = Streams.create device in
  {
    device;
    streams;
    cache = Memcache.create ~sched:streams device;
    kernels = Hashtbl.create 64;
    ntables = Hashtbl.create 16;
    sitelists = Hashtbl.create 8;
    optimize;
    kernels_built = 0;
    jit_seconds = 0.0;
    kernel_serial = 0;
    reduce_kernel = None;
    stats_rev = [];
  }

(* The middle-end scorecard for one compiled kernel.  Kernels the driver
   ultimately executes are [kernel]; [raw] is what the paper-faithful
   unparser produced. *)
let record_stats t (built : Codegen.built) =
  let measure (k : kernel) =
    let a = Ptx.Analysis.kernel k in
    (List.length k.body, Ptx.Dataflow.register_demand k, a.Ptx.Analysis.load_bytes)
  in
  let raw_instructions, raw_registers, raw_load_bytes = measure built.Codegen.raw in
  let opt_instructions, opt_registers, opt_load_bytes = measure built.Codegen.kernel in
  t.stats_rev <-
    {
      kname = built.Codegen.kernel.kname;
      raw_instructions;
      opt_instructions;
      raw_registers;
      opt_registers;
      raw_load_bytes;
      opt_load_bytes;
      passes = built.Codegen.passes;
    }
    :: t.stats_rev

let jit_stats t = List.rev t.stats_rev

let device t = t.device
let streams t = t.streams
let default_stream t = Streams.default_stream t.streams
let memcache t = t.cache
let kernels_built t = t.kernels_built
let jit_seconds t = t.jit_seconds
let synchronize t = Streams.synchronize t.streams

let geom_tag geom =
  Geometry.dims geom |> Array.to_list |> List.map string_of_int |> String.concat "x"

(* Neighbour tables (Sec. V's stencil machinery): table[x] = index of the
   site shift(.,dim,dir) reads at x, i.e. the periodic neighbour. *)
let ntable t geom ~dim ~dir =
  let key = Printf.sprintf "%s:%d:%+d" (geom_tag geom) dim dir in
  match Hashtbl.find_opt t.ntables key with
  | Some buf -> buf
  | None ->
      let n = Geometry.volume geom in
      let buf = Device.alloc_i32 t.device n in
      (match buf.Buffer_.data with
      | Buffer_.I32 a ->
          for site = 0 to n - 1 do
            a.{site} <- Int32.of_int (Geometry.neighbor geom site ~dim ~dir)
          done
      | _ -> assert false);
      ignore
        (Streams.memcpy_h2d ~name:("ntable " ^ key) t.streams
           (Streams.default_stream t.streams) ~bytes:buf.Buffer_.bytes);
      Hashtbl.replace t.ntables key buf;
      buf

let upload_sitelist t sites =
  let buf = Device.alloc_i32 t.device (Array.length sites) in
  (match buf.Buffer_.data with
  | Buffer_.I32 a -> Array.iteri (fun i s -> a.{i} <- Int32.of_int s) sites
  | _ -> assert false);
  ignore
    (Streams.memcpy_h2d ~name:"sitelist" t.streams (Streams.default_stream t.streams)
       ~bytes:buf.Buffer_.bytes);
  buf

let sitelist t geom subset =
  match subset with
  | Subset.All -> invalid_arg "Engine.sitelist: All has no site list"
  | Subset.Even | Subset.Odd ->
      let key =
        Printf.sprintf "%s:%s" (geom_tag geom)
          (match subset with Subset.Even -> "even" | _ -> "odd")
      in
      (match Hashtbl.find_opt t.sitelists key with
      | Some buf -> (buf, false)
      | None ->
          let buf = upload_sitelist t (Subset.sites geom subset) in
          Hashtbl.replace t.sitelists key buf;
          (buf, false))
  | Subset.Custom sites ->
      (* Repeated subsets (inner/face partitions of the overlap engine) are
         cached by content digest. *)
      let digest =
        let buf = Bytes.create (8 * Array.length sites) in
        Array.iteri (fun i s -> Bytes.set_int64_le buf (8 * i) (Int64.of_int s)) sites;
        Digest.to_hex (Digest.bytes buf)
      in
      let key = Printf.sprintf "%s:custom:%s" (geom_tag geom) digest in
      (match Hashtbl.find_opt t.sitelists key with
      | Some buf -> (buf, false)
      | None ->
          let buf = upload_sitelist t sites in
          Hashtbl.replace t.sitelists key buf;
          (buf, false))

let compile_entry t ~dest_shape ~expr ~nsites ~use_sitelist =
  t.kernel_serial <- t.kernel_serial + 1;
  let kname = Printf.sprintf "qdpjit_kernel_%d" t.kernel_serial in
  let built =
    Codegen.build ~optimize:t.optimize ~kname ~dest_shape ~expr ~nsites ~use_sitelist ()
  in
  (* Definite-assignment check on the real CFG — the middle-end moves
     code, so the textual rule alone is no longer the whole story. *)
  Ptx.Validate.dataflow built.Codegen.kernel;
  record_stats t built;
  let compiled = Jit.compile built.Codegen.text in
  t.kernels_built <- t.kernels_built + 1;
  t.jit_seconds <- t.jit_seconds +. compiled.Jit.compile_time;
  {
    built;
    compiled;
    tuner = Autotune.create ~max_block:t.device.Device.machine.Gpusim.Machine.max_threads_per_block ();
  }

let lookup_kernel t ~dest_shape ~expr ~nsites ~use_sitelist =
  let key =
    Printf.sprintf "%s|v%d|%s"
      (Expr.structure_key ~dest_shape expr)
      nsites
      (if use_sitelist then "list" else "all")
  in
  match Hashtbl.find_opt t.kernels key with
  | Some e -> e
  | None ->
      let entry = compile_entry t ~dest_shape ~expr ~nsites ~use_sitelist in
      Hashtbl.replace t.kernels key entry;
      entry

(* Launch through the auto-tuner onto [stream]: resource failures shrink
   the block; the modeled time of successful payload launches drives the
   probe (the stream's queueing delay is excluded from the signal). *)
let tuned_launch t entry ~stream ~nthreads ~params =
  let name = entry.built.Codegen.kernel.kname in
  let rec attempt () =
    let block = Autotune.next_block entry.tuner in
    match Streams.launch ~name t.streams stream entry.compiled ~nthreads ~block ~params with
    | ns -> Autotune.report entry.tuner ~block ~ns
    | exception Device.Launch_failure _ ->
        Autotune.on_failure entry.tuner ~block;
        attempt ()
  in
  if nthreads > 0 then attempt ()

let eval ?(subset = Subset.All) ?stream t dest expr =
  Qdp.Eval_cpu.check_dest dest expr;
  let geom = dest.Field.geom in
  let nsites = Geometry.volume geom in
  let use_sitelist = not (Subset.is_all subset) in
  let entry = lookup_kernel t ~dest_shape:dest.Field.shape ~expr ~nsites ~use_sitelist in
  (* Passing an explicit stream makes the eval asynchronous (the caller
     synchronizes); the implicit default stream keeps the legacy blocking
     semantics. *)
  let sync = stream = None in
  let stream = match stream with Some s -> s | None -> Streams.default_stream t.streams in
  let leaves = Expr.leaves expr in
  (* Make everything resident before binding addresses (Sec. IV); the
     launch stream waits on any upload still in flight on the transfer
     stream. *)
  let leaf_bufs =
    List.map (fun f -> Memcache.ensure_resident ~pin:true ~wait_stream:stream t.cache f) leaves
  in
  let dest_is_leaf = List.exists (fun (f : Field.t) -> f.Field.id = dest.Field.id) leaves in
  let dest_buf =
    Memcache.ensure_resident ~pin:true
      ~for_write:(Subset.is_all subset && not dest_is_leaf)
      ~wait_stream:stream t.cache dest
  in
  let slist =
    if use_sitelist then Some (sitelist t geom subset) else None
  in
  let n_work = if use_sitelist then Subset.count geom subset else nsites in
  let scalar_values = Expr.params expr |> List.map snd |> Array.of_list in
  let params =
    List.map
      (fun plan ->
        match plan with
        | Codegen.Dest -> Gpusim.Vm.Ptr dest_buf
        | Codegen.Leaf_ptr i -> Gpusim.Vm.Ptr (List.nth leaf_bufs i)
        | Codegen.Ntable (dim, dir) -> Gpusim.Vm.Ptr (ntable t geom ~dim ~dir)
        | Codegen.Sitelist -> (
            match slist with
            | Some (buf, _) -> Gpusim.Vm.Ptr buf
            | None -> assert false)
        | Codegen.N_work -> Gpusim.Vm.Int n_work
        | Codegen.Scalar_param (slot, comp) -> Gpusim.Vm.Float scalar_values.(slot).(comp))
      entry.built.Codegen.plan
    |> Array.of_list
  in
  tuned_launch t entry ~stream ~nthreads:n_work ~params;
  Memcache.mark_device_dirty t.cache dest;
  Memcache.unpin_all t.cache;
  if sync then ignore (Streams.stream_synchronize t.streams stream);
  ignore slist

(* ------------------------------------------------------------------ *)
(* Reductions                                                          *)

(* Hand-assembled pairwise reduction kernel: out[i] = in[2i] + in[2i+1]
   (the odd tail reads a zero).  Operating on raw f64 buffers with dynamic
   strides, one compiled kernel serves every reduction pass. *)
let build_reduce_kernel () =
  let e = Emitter.create ~kname:"qdpjit_reduce_f64" in
  let p_src = Emitter.add_param e U64 "src" in
  let p_dst = Emitter.add_param e U64 "dst" in
  let p_srcoff = Emitter.add_param e S32 "src_byte_off" in
  let p_nin = Emitter.add_param e S32 "n_in" in
  let p_nout = Emitter.add_param e S32 "n_out" in
  let src = Emitter.fresh e U64 and dst = Emitter.fresh e U64 in
  let srcoff = Emitter.fresh e S32 and nin = Emitter.fresh e S32 and nout = Emitter.fresh e S32 in
  Emitter.emit e (Ld_param { dst = src; param_index = p_src });
  Emitter.emit e (Ld_param { dst; param_index = p_dst });
  Emitter.emit e (Ld_param { dst = srcoff; param_index = p_srcoff });
  Emitter.emit e (Ld_param { dst = nin; param_index = p_nin });
  Emitter.emit e (Ld_param { dst = nout; param_index = p_nout });
  let tid = Emitter.fresh e S32 and ntid = Emitter.fresh e S32 and ctaid = Emitter.fresh e S32 in
  Emitter.emit e (Mov_sreg { dst = tid; src = Tid_x });
  Emitter.emit e (Mov_sreg { dst = ntid; src = Ntid_x });
  Emitter.emit e (Mov_sreg { dst = ctaid; src = Ctaid_x });
  let idx = Emitter.fresh e S32 in
  Emitter.emit e (Fma { dtype = S32; dst = idx; a = Reg ctaid; b = Reg ntid; c = Reg tid });
  let guard = Emitter.fresh e Pred in
  Emitter.emit e (Setp { cmp = Ge; dtype = S32; dst = guard; a = Reg idx; b = Reg nout });
  Emitter.emit e (Bra { label = "EXIT"; pred = Some guard });
  (* j = 2*idx; address = src + srcoff + j*8 *)
  let j = Emitter.fresh e S32 in
  Emitter.emit e (Add { dtype = S32; dst = j; a = Reg idx; b = Reg idx });
  let joff = Emitter.fresh e S32 in
  Emitter.emit e (Fma { dtype = S32; dst = joff; a = Reg j; b = Imm_int 8; c = Reg srcoff });
  let joff64 = Emitter.fresh e S64 in
  Emitter.emit e (Cvt { dst = joff64; src = joff });
  let joffu = Emitter.fresh e U64 in
  Emitter.emit e (Cvt { dst = joffu; src = joff64 });
  let a_addr = Emitter.fresh e U64 in
  Emitter.emit e (Add { dtype = U64; dst = a_addr; a = Reg src; b = Reg joffu });
  let a = Emitter.fresh e F64 in
  Emitter.emit e (Ld_global { dtype = F64; dst = a; addr = a_addr; offset = 0 });
  (* b = (2*idx+1 < n_in) ? in[2*idx+1] : 0 *)
  let b = Emitter.fresh e F64 in
  Emitter.emit e (Mov { dst = b; src = Imm_float 0.0 });
  let j1 = Emitter.fresh e S32 in
  Emitter.emit e (Add { dtype = S32; dst = j1; a = Reg j; b = Imm_int 1 });
  let skip = Emitter.fresh e Pred in
  Emitter.emit e (Setp { cmp = Ge; dtype = S32; dst = skip; a = Reg j1; b = Reg nin });
  Emitter.emit e (Bra { label = "SKIP"; pred = Some skip });
  Emitter.emit e (Ld_global { dtype = F64; dst = b; addr = a_addr; offset = 8 });
  Emitter.emit e (Label "SKIP");
  let sum = Emitter.fresh e F64 in
  Emitter.emit e (Add { dtype = F64; dst = sum; a = Reg a; b = Reg b });
  (* dst + idx*8 *)
  let doff = Emitter.fresh e S32 in
  Emitter.emit e (Mul { dtype = S32; dst = doff; a = Reg idx; b = Imm_int 8 });
  let doff64 = Emitter.fresh e S64 in
  Emitter.emit e (Cvt { dst = doff64; src = doff });
  let doffu = Emitter.fresh e U64 in
  Emitter.emit e (Cvt { dst = doffu; src = doff64 });
  let d_addr = Emitter.fresh e U64 in
  Emitter.emit e (Add { dtype = U64; dst = d_addr; a = Reg dst; b = Reg doffu });
  Emitter.emit e (St_global { dtype = F64; addr = d_addr; offset = 0; src = Reg sum });
  Emitter.emit e (Label "EXIT");
  Emitter.emit e Ret;
  Emitter.finish e

let reduce_entry t =
  match t.reduce_kernel with
  | Some entry -> entry
  | None ->
      let raw = build_reduce_kernel () in
      Ptx.Validate.kernel raw;
      (* The hand-built kernel takes the same road as generated ones.  Its
         accumulator [b] is deliberately multi-defined (zero, then a
         conditional load): provenance-free CSE must leave it alone, which
         is exactly what the single-def restriction guarantees. *)
      let kernel, passes =
        if t.optimize then begin
          let r = Ptx.Passes.run raw in
          Ptx.Validate.kernel r.Ptx.Passes.kernel;
          (r.Ptx.Passes.kernel, r.Ptx.Passes.applied)
        end
        else (raw, [])
      in
      Ptx.Validate.dataflow kernel;
      let compiled = Jit.compile (Ptx.Print.kernel kernel) in
      t.kernels_built <- t.kernels_built + 1;
      t.jit_seconds <- t.jit_seconds +. compiled.Jit.compile_time;
      let built =
        {
          Codegen.kernel;
          raw;
          text = Ptx.Print.kernel kernel;
          plan = [];
          dest_shape = Shape.real_scalar Shape.F64;
          passes;
        }
      in
      record_stats t built;
      let entry =
        {
          built;
          compiled;
          tuner =
            Autotune.create
              ~max_block:t.device.Device.machine.Gpusim.Machine.max_threads_per_block ();
        }
      in
      t.reduce_kernel <- Some entry;
      entry

(* The host is about to read [bytes] of a reduction result: a blocking
   D2H copy on the default stream. *)
let sync_readback t ~bytes =
  let s0 = Streams.default_stream t.streams in
  ignore (Streams.memcpy_d2h ~name:"reduce readback" t.streams s0 ~bytes);
  ignore (Streams.stream_synchronize t.streams s0)

(* Fold one SoA component plane of a device-resident f64 field buffer. *)
let reduce_plane t ~(field_buf : Buffer_.t) ~plane_word ~nsites =
  if nsites = 1 then begin
    sync_readback t ~bytes:8;
    match field_buf.Buffer_.data with
    | Buffer_.F64 a -> a.{plane_word}
    | _ -> invalid_arg "Engine.reduce_plane: f64 buffer expected"
  end
  else begin
    let entry = reduce_entry t in
    let stream = Streams.default_stream t.streams in
    let cap = (nsites + 1) / 2 in
    let ping = Device.alloc_f64 t.device cap in
    let pong = Device.alloc_f64 t.device ((cap + 1) / 2) in
    let rec go ~src ~src_off ~n_in ~dst ~other =
      let n_out = (n_in + 1) / 2 in
      let params =
        [| Gpusim.Vm.Ptr src; Gpusim.Vm.Ptr dst; Gpusim.Vm.Int src_off; Gpusim.Vm.Int n_in;
           Gpusim.Vm.Int n_out |]
      in
      tuned_launch t entry ~stream ~nthreads:n_out ~params;
      if n_out = 1 then dst else go ~src:dst ~src_off:0 ~n_in:n_out ~dst:other ~other:dst
    in
    let final = go ~src:field_buf ~src_off:(plane_word * 8) ~n_in:nsites ~dst:ping ~other:pong in
    sync_readback t ~bytes:8;
    let result =
      match final.Buffer_.data with
      | Buffer_.F64 a -> a.{0}
      | _ -> assert false
    in
    Device.free t.device ping;
    Device.free t.device pong;
    result
  end

(* Evaluate [expr] (any shape, promoted to f64 storage) into a temporary and
   sum each component over the subset.  Returns the canonical component
   array, like {!Qdp.Eval_cpu.sum_components}. *)
let sum_components ?(subset = Subset.All) t expr =
  let shape = { (Expr.shape expr) with Shape.prec = Shape.F64 } in
  let geom =
    match Expr.leaves expr with
    | f :: _ -> f.Field.geom
    | [] -> invalid_arg "Engine.sum_components: expression has no fields"
  in
  let nsites = Geometry.volume geom in
  let tmp = Field.create ~name:"reduce_tmp" shape geom in
  (* Outside the subset the temporary must be zero, which Field.create
     guarantees; evaluate only on the subset. *)
  eval ~subset t tmp expr;
  let buf = Memcache.ensure_resident t.cache tmp in
  let dof = Shape.dof shape in
  let is_ = Shape.spin_extent shape.Shape.spin in
  let ic = Shape.color_extent shape.Shape.color in
  ignore is_;
  let out =
    Array.init dof (fun lin ->
        let s, c, r = Layout.Index.component_of_linear shape lin in
        let plane_word = ((((r * ic) + c) * Shape.spin_extent shape.Shape.spin) + s) * nsites in
        reduce_plane t ~field_buf:buf ~plane_word ~nsites)
  in
  Memcache.drop t.cache tmp;
  out

let norm2 ?(subset = Subset.All) t expr = (sum_components ~subset t (Expr.norm2_local expr)).(0)

let inner ?(subset = Subset.All) t a b =
  let s = sum_components ~subset t (Expr.inner_local a b) in
  (s.(0), s.(1))

let sum_real ?(subset = Subset.All) t expr =
  let shape = Expr.shape expr in
  if Shape.dof shape <> 1 then invalid_arg "Engine.sum_real: expression is not a real scalar";
  (sum_components ~subset t expr).(0)
