(** The QDP-JIT runtime for one rank: expression evaluation on the
    simulated GPU.

    [eval] is the whole paper in one function: look the expression's
    structure up in the kernel cache (generate + driver-JIT-compile PTX on
    a miss), make every referenced field device-resident through the
    memory cache, bind parameters, and launch through the per-kernel
    auto-tuner.  Reductions evaluate a per-site kernel into a temporary
    and fold it with cached pairwise-reduction kernels, keeping results
    deterministic.

    On top of that sits the deferred-launch queue: a default-stream
    [eval] only records the request, and a flush point (reduction,
    host access through the memory cache, subset/geometry change, queue
    depth, or an explicit {!flush}) runs the fusion planner over the
    pending evals.  Field-id dependence analysis groups evals that may
    execute as one kernel — {!Ptx.Fuse} splices their bodies, replacing
    same-site producer→consumer loads with register moves — and anything
    hazardous launches separately, in order, on the default stream. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Subset = Qdp.Subset
module Device = Gpusim.Device
module Jit = Gpusim.Jit
module Buffer_ = Gpusim.Buffer
open Ptx.Types

type kernel_entry = {
  built : Codegen.built;
  compiled : Jit.compiled;
  tuner : Autotune.t;
  bytes_per_thread : int;
      (** modeled global load+store bytes one thread moves (drives the
          engine-wide traffic counter) *)
  tier_bytes_per_thread : int * int * int;
      (** the float portion of [bytes_per_thread] split by storage
          precision (f16, f32, f64); integer index traffic is counted in
          the total only *)
}

(** Per-kernel middle-end scorecard, recorded at compile time.  Register
    counts are the {e uncapped} allocator demand from
    {!Ptx.Dataflow.register_demand} (32-bit units): the occupancy model's
    [regs_per_thread] saturates at 64 on large kernels, which would hide
    exactly the savings these numbers exist to show. *)
type jit_stats = {
  kname : string;
  raw_instructions : int;
  opt_instructions : int;
  raw_registers : int;
  opt_registers : int;
  raw_load_bytes : int;
  opt_load_bytes : int;
  passes : Ptx.Passes.report list;  (** pass applications that changed the kernel *)
  fused_members : int;  (** evals spliced into this kernel (1 = unfused) *)
  fused_subst_load_bytes : int;
      (** per-thread consumer load bytes replaced by register moves *)
  fused_dropped_store_bytes : int;  (** per-thread producer store bytes dropped *)
}

(** Lifetime counters of the deferred-eval queue and fusion planner. *)
type fusion_stats = {
  deferred_evals : int;  (** default-stream evals that entered the queue *)
  flushes : int;
  fused_groups : int;  (** multi-eval groups launched as one kernel *)
  launches_saved : int;
  eliminated_load_bytes : int;  (** whole-launch global loads removed *)
  eliminated_store_bytes : int;  (** whole-launch global stores removed *)
  fallbacks : int;  (** groups relaunched separately after a fusion failure *)
}

(* Which fields a pending expression reads, and how: a shifted read
   samples neighbour sites, so it must not observe a same-flush write. *)
type read_info = { mutable r_unshifted : bool; mutable r_shifted : bool }

type pending = {
  p_dest : Field.t;
  p_expr : Expr.t;
  p_subset : Subset.t;
  p_geom : Geometry.t;
  p_reads : (int, read_info) Hashtbl.t;
  p_retained : Field.t list;  (** memcache references taken at enqueue *)
  p_red : bool;
      (** reduction payload: the kernel is built in reduction mode
          (compact destination planes + block-partial aggregation) and
          binds the engine's block scratch buffer *)
}

(* Launch-time binding of one fused parameter slot; field identities are
   erased (canonical index into the group's distinct-field walk) so the
   fused kernel is reusable across field sets, like the singleton cache. *)
type fused_binding =
  | FB_field of int
  | FB_ntable of int * int
  | FB_sitelist
  | FB_nwork
  | FB_scalar of int * int * int  (** member, scalar slot, component *)
  | FB_red_block  (** the engine's block-partial scratch buffer *)

type fused_entry = {
  f_entry : kernel_entry;
  f_plan : fused_binding array;
  f_report : Ptx.Fuse.report;
}

type t = {
  device : Device.t;
  streams : Streams.t;  (** stream context over [device]; all launches go
                            through it (default stream unless told otherwise) *)
  cache : Memcache.t;
  jit_cache : Jitcache.t option;
      (** persistent store of compiled kernels, shared across engines and
          processes; looked up before every compile *)
  kernels : (string, kernel_entry) Hashtbl.t;
  fused_kernels : (string, fused_entry) Hashtbl.t;
  raw_builts : (string, Codegen.built) Hashtbl.t;
      (** unoptimized per-eval kernels kept as fusion source material *)
  ntables : (string, Buffer_.t) Hashtbl.t;
  sitelists : (string, Buffer_.t) Hashtbl.t;
  optimize : bool;  (** run the {!Ptx.Passes} middle-end before the driver JIT *)
  fuse : bool;  (** defer default-stream evals and fuse at flush points *)
  fuse_reductions : bool;
      (** let a reduction payload join the trailing fused group instead of
          always launching it standalone *)
  mutable pending_rev : pending list;  (** deferred evals, newest first *)
  mutable pending_n : int;
  mutable in_flush : bool;
  mutable kernels_built : int;
  mutable jit_seconds : float;  (** accumulated modeled driver-JIT time *)
  mutable kernel_serial : int;
  mutable kernel_bytes : int;
      (** modeled global bytes moved by every launched kernel so far *)
  mutable kernel_bytes_f16 : int;
  mutable kernel_bytes_f32 : int;
  mutable kernel_bytes_f64 : int;
      (** the float portion of [kernel_bytes] split by storage precision *)
  mutable reduce_kernel : kernel_entry option;
  mutable reduce_scratch : (Buffer_.t * Buffer_.t) option;
      (** cached ping/pong buffers for {!reduce_plane} *)
  mutable reduce_scratch_cap : int;
  mutable red_block : Buffer_.t option;
      (** block-partial scratch the reduction-mode payload kernels write:
          one plane of ceil(nsites/8) doubles per destination component *)
  mutable red_block_cap : int;
  mutable stats_rev : jit_stats list;
  mutable fs_deferred : int;
  mutable fs_flushes : int;
  mutable fs_groups : int;
  mutable fs_saved : int;
  mutable fs_elim_load : int;
  mutable fs_elim_store : int;
  mutable fs_fallbacks : int;
}

let max_pending = 16
let max_group = 6

(* The middle-end scorecard for one compiled kernel.  Kernels the driver
   ultimately executes are [kernel]; [raw] is what the paper-faithful
   unparser produced (for fused kernels: the splice before re-running the
   passes). *)
let record_stats ?(fused_members = 1) ?(fused_subst_load_bytes = 0)
    ?(fused_dropped_store_bytes = 0) t (built : Codegen.built) =
  let measure (k : kernel) =
    let a = Ptx.Analysis.kernel k in
    (List.length k.body, Ptx.Dataflow.register_demand k, a.Ptx.Analysis.load_bytes)
  in
  let raw_instructions, raw_registers, raw_load_bytes = measure built.Codegen.raw in
  let opt_instructions, opt_registers, opt_load_bytes = measure built.Codegen.kernel in
  t.stats_rev <-
    {
      kname = built.Codegen.kernel.kname;
      raw_instructions;
      opt_instructions;
      raw_registers;
      opt_registers;
      raw_load_bytes;
      opt_load_bytes;
      passes = built.Codegen.passes;
      fused_members;
      fused_subst_load_bytes;
      fused_dropped_store_bytes;
    }
    :: t.stats_rev

let device t = t.device
let streams t = t.streams
let default_stream t = Streams.default_stream t.streams
let memcache t = t.cache

let geom_tag geom =
  Geometry.dims geom |> Array.to_list |> List.map string_of_int |> String.concat "x"

(* Neighbour tables (Sec. V's stencil machinery): table[x] = index of the
   site shift(.,dim,dir) reads at x, i.e. the periodic neighbour. *)
let ntable t geom ~dim ~dir =
  let key = Printf.sprintf "%s:%d:%+d" (geom_tag geom) dim dir in
  match Hashtbl.find_opt t.ntables key with
  | Some buf -> buf
  | None ->
      let n = Geometry.volume geom in
      let buf = Device.alloc_i32 t.device n in
      (match buf.Buffer_.data with
      | Buffer_.I32 a ->
          for site = 0 to n - 1 do
            a.{site} <- Int32.of_int (Geometry.neighbor geom site ~dim ~dir)
          done
      | _ -> assert false);
      ignore
        (Streams.memcpy_h2d ~name:("ntable " ^ key) t.streams
           (Streams.default_stream t.streams) ~bytes:buf.Buffer_.bytes);
      Hashtbl.replace t.ntables key buf;
      buf

let upload_sitelist t sites =
  let buf = Device.alloc_i32 t.device (Array.length sites) in
  (match buf.Buffer_.data with
  | Buffer_.I32 a -> Array.iteri (fun i s -> a.{i} <- Int32.of_int s) sites
  | _ -> assert false);
  ignore
    (Streams.memcpy_h2d ~name:"sitelist" t.streams (Streams.default_stream t.streams)
       ~bytes:buf.Buffer_.bytes);
  buf

let sitelist t geom subset =
  match subset with
  | Subset.All -> invalid_arg "Engine.sitelist: All has no site list"
  | Subset.Even | Subset.Odd ->
      let key =
        Printf.sprintf "%s:%s" (geom_tag geom)
          (match subset with Subset.Even -> "even" | _ -> "odd")
      in
      (match Hashtbl.find_opt t.sitelists key with
      | Some buf -> buf
      | None ->
          let buf = upload_sitelist t (Subset.sites geom subset) in
          Hashtbl.replace t.sitelists key buf;
          buf)
  | Subset.Custom sites ->
      (* Repeated subsets (inner/face partitions of the overlap engine) are
         cached by content digest. *)
      let digest =
        let buf = Bytes.create (8 * Array.length sites) in
        Array.iteri (fun i s -> Bytes.set_int64_le buf (8 * i) (Int64.of_int s)) sites;
        Digest.to_hex (Digest.bytes buf)
      in
      let key = Printf.sprintf "%s:custom:%s" (geom_tag geom) digest in
      (match Hashtbl.find_opt t.sitelists key with
      | Some buf -> buf
      | None ->
          let buf = upload_sitelist t sites in
          Hashtbl.replace t.sitelists key buf;
          buf)

let entry_of_built t built compiled =
  let a = Ptx.Analysis.kernel built.Codegen.kernel in
  let b16 = ref 0 and b32 = ref 0 and b64 = ref 0 in
  List.iter
    (fun i ->
      match i with
      | Ld_global_f16 _ | St_global_f16 _ -> b16 := !b16 + 2
      | Ld_global { dtype = F32; _ } | St_global { dtype = F32; _ } -> b32 := !b32 + 4
      | Ld_global { dtype = F64; _ } | St_global { dtype = F64; _ } -> b64 := !b64 + 8
      | _ -> ())
    built.Codegen.kernel.body;
  {
    built;
    compiled;
    tuner =
      Autotune.create ~max_block:t.device.Device.machine.Gpusim.Machine.max_threads_per_block ();
    bytes_per_thread = a.Ptx.Analysis.load_bytes + a.Ptx.Analysis.store_bytes;
    tier_bytes_per_thread = (!b16, !b32, !b64);
  }

(* ------------------------------------------------------------------ *)
(* The persistent JIT cache.

   Disk keys capture everything a compiled artifact depends on: the
   structural key of what is being compiled (the expression structure
   key, a fused group's {!Ptx.Fuse.structural_key}, or the fixed fold
   kernel), the optimize flag, and the versions of every stage that
   shapes the bytes — code generator, middle-end, splicer, pre-decoder —
   plus the OCaml version, since entries travel as [Marshal] images.
   A hit restores the built kernel and the pre-decoded program without
   running the emitter, the passes, the validator or the driver JIT;
   [kernels_built] and [jit_seconds] count only real compiles, so a
   fully warm engine reports zero kernels built. *)

type cache_payload = {
  cp_built : Codegen.built;
  cp_prog : Jit.portable;
  cp_report : Ptx.Fuse.report option;  (** fused kernels carry their savings report *)
}

let cache_tag =
  Printf.sprintf "qdpjit|ml%s|cg%d|ps%d|fu%d|vm%d" Sys.ocaml_version Codegen.version
    Ptx.Passes.version Ptx.Fuse.version Gpusim.Vm.decoder_version

let disk_key ~opt ~kind skey = Printf.sprintf "%s|opt%b|%s|%s" cache_tag opt kind skey

let cache_find t ~opt ~kind skey =
  match t.jit_cache with
  | None -> None
  | Some c -> (
      match Jitcache.find c ~key:(disk_key ~opt ~kind skey) with
      | None -> None
      | Some data -> (
          try
            let (p : cache_payload) = Marshal.from_string data 0 in
            Some (p.cp_built, Jit.of_portable p.cp_prog, p.cp_report)
          with _ -> None))

let cache_store t ~opt ~kind skey (built : Codegen.built) (compiled : Jit.compiled) report =
  match t.jit_cache with
  | None -> ()
  | Some c ->
      let payload = { cp_built = built; cp_prog = Jit.to_portable compiled; cp_report = report } in
      Jitcache.store c ~key:(disk_key ~opt ~kind skey) ~data:(Marshal.to_string payload [])

(* Raw (pre-middle-end) fusion source material travels as a bare
   [Codegen.built]: it never reaches the driver JIT directly, but a warm
   start must still skip the emitter to stay near steady-state cost. *)
let cache_find_built t ~kind skey =
  match t.jit_cache with
  | None -> None
  | Some c -> (
      match Jitcache.find c ~key:(disk_key ~opt:false ~kind skey) with
      | None -> None
      | Some data -> ( try Some (Marshal.from_string data 0 : Codegen.built) with _ -> None))

let cache_store_built t ~kind skey (built : Codegen.built) =
  match t.jit_cache with
  | None -> ()
  | Some c ->
      Jitcache.store c ~key:(disk_key ~opt:false ~kind skey) ~data:(Marshal.to_string built [])

let compile_entry t ~key ~reduction ~dest_shape ~expr ~nsites ~use_sitelist =
  match cache_find t ~opt:t.optimize ~kind:"eval" key with
  | Some (built, compiled, _) -> entry_of_built t built compiled
  | None ->
      t.kernel_serial <- t.kernel_serial + 1;
      let kname = Printf.sprintf "qdpjit_kernel_%d" t.kernel_serial in
      let built =
        Codegen.build ~optimize:t.optimize ~reduction ~kname ~dest_shape ~expr ~nsites
          ~use_sitelist ()
      in
      (* Definite-assignment check on the real CFG — the middle-end moves
         code, so the textual rule alone is no longer the whole story. *)
      Ptx.Validate.dataflow built.Codegen.kernel;
      record_stats t built;
      let compiled = Jit.compile built.Codegen.text in
      t.kernels_built <- t.kernels_built + 1;
      t.jit_seconds <- t.jit_seconds +. compiled.Jit.compile_time;
      cache_store t ~opt:t.optimize ~kind:"eval" key built compiled None;
      entry_of_built t built compiled

let eval_key ~reduction ~dest_shape ~expr ~nsites ~use_sitelist =
  Printf.sprintf "%s|v%d|%s%s"
    (Expr.structure_key ~dest_shape expr)
    nsites
    (if use_sitelist then "list" else "all")
    (if reduction then "|red" else "")

let lookup_kernel t ~reduction ~dest_shape ~expr ~nsites ~use_sitelist =
  let key = eval_key ~reduction ~dest_shape ~expr ~nsites ~use_sitelist in
  match Hashtbl.find_opt t.kernels key with
  | Some e -> e
  | None ->
      let entry = compile_entry t ~key ~reduction ~dest_shape ~expr ~nsites ~use_sitelist in
      Hashtbl.replace t.kernels key entry;
      entry

(* The unoptimized per-eval kernel, kept as fusion source material: the
   splicer needs the emitter's canonical instruction order, which the
   middle-end (sink in particular) does not preserve.  The kernel name is
   a constant, so the built text is engine-independent and disk-cacheable
   under the same structural key. *)
let raw_built t ~reduction ~dest_shape ~expr ~nsites ~use_sitelist =
  let key = eval_key ~reduction ~dest_shape ~expr ~nsites ~use_sitelist in
  match Hashtbl.find_opt t.raw_builts key with
  | Some b -> b
  | None ->
      let b =
        match cache_find_built t ~kind:"raw" key with
        | Some b -> b
        | None ->
            let b =
              Codegen.build ~optimize:false ~reduction ~kname:"qdpjit_member" ~dest_shape
                ~expr ~nsites ~use_sitelist ()
            in
            cache_store_built t ~kind:"raw" key b;
            b
      in
      Hashtbl.replace t.raw_builts key b;
      b

(* Launch through the auto-tuner onto [stream]: resource failures shrink
   the block; the modeled time of successful payload launches drives the
   probe (the stream's queueing delay is excluded from the signal). *)
let tuned_launch t entry ~stream ~nthreads ~params =
  let name = entry.built.Codegen.kernel.kname in
  let rec attempt () =
    let block = Autotune.next_block entry.tuner in
    match Streams.launch ~name t.streams stream entry.compiled ~nthreads ~block ~params with
    | ns -> Autotune.report entry.tuner ~block ~ns
    | exception Device.Launch_failure _ ->
        Autotune.on_failure entry.tuner ~block;
        attempt ()
  in
  if nthreads > 0 then begin
    t.kernel_bytes <- t.kernel_bytes + (entry.bytes_per_thread * nthreads);
    let b16, b32, b64 = entry.tier_bytes_per_thread in
    t.kernel_bytes_f16 <- t.kernel_bytes_f16 + (b16 * nthreads);
    t.kernel_bytes_f32 <- t.kernel_bytes_f32 + (b32 * nthreads);
    t.kernel_bytes_f64 <- t.kernel_bytes_f64 + (b64 * nthreads);
    attempt ()
  end

(* The block-partial scratch buffer, grown on demand.  Reductions are
   synchronous (payload launch, then folds, then readback), so one engine
   buffer serves every reduction and is never live across two. *)
let red_block_scratch t ~cap =
  match t.red_block with
  | Some b when t.red_block_cap >= cap -> b
  | prev ->
      (match prev with Some b -> Device.free t.device b | None -> ());
      t.red_block <- None;
      t.red_block_cap <- 0;
      let b = Device.alloc_f64 t.device cap in
      t.red_block <- Some b;
      t.red_block_cap <- cap;
      b

let red_block_buf t =
  match t.red_block with
  | Some b -> b
  | None -> invalid_arg "Engine: reduction kernel launched with no block scratch"

(* One eval, launched immediately (the pre-queue semantics): make every
   referenced field resident, bind the parameter plan, launch. *)
let launch_eval ?(subset = Subset.All) ?(reduction = false) ~stream ~sync t dest expr =
  let geom = dest.Field.geom in
  let nsites = Geometry.volume geom in
  let use_sitelist = not (Subset.is_all subset) in
  let entry = lookup_kernel t ~reduction ~dest_shape:dest.Field.shape ~expr ~nsites ~use_sitelist in
  let leaves = Expr.leaves expr in
  (* Make everything resident before binding addresses (Sec. IV); the
     launch stream waits on any upload still in flight on the transfer
     stream. *)
  let leaf_bufs =
    List.map (fun f -> Memcache.ensure_resident ~pin:true ~wait_stream:stream t.cache f) leaves
    |> Array.of_list
  in
  let dest_is_leaf = List.exists (fun (f : Field.t) -> f.Field.id = dest.Field.id) leaves in
  let dest_buf =
    Memcache.ensure_resident ~pin:true
      ~for_write:(Subset.is_all subset && not dest_is_leaf)
      ~wait_stream:stream t.cache dest
  in
  let n_work = if use_sitelist then Subset.count geom subset else nsites in
  let scalar_values = Expr.params expr |> List.map snd |> Array.of_list in
  let params =
    List.map
      (fun plan ->
        match plan with
        | Codegen.Dest -> Gpusim.Vm.Ptr dest_buf
        | Codegen.Leaf_ptr i -> Gpusim.Vm.Ptr leaf_bufs.(i)
        | Codegen.Ntable (dim, dir) -> Gpusim.Vm.Ptr (ntable t geom ~dim ~dir)
        | Codegen.Sitelist -> Gpusim.Vm.Ptr (sitelist t geom subset)
        | Codegen.N_work -> Gpusim.Vm.Int n_work
        | Codegen.Block_partial -> Gpusim.Vm.Ptr (red_block_buf t)
        | Codegen.Scalar_param (slot, comp) -> Gpusim.Vm.Float scalar_values.(slot).(comp))
      entry.built.Codegen.plan
    |> Array.of_list
  in
  tuned_launch t entry ~stream ~nthreads:n_work ~params;
  Memcache.mark_device_dirty t.cache dest;
  Memcache.unpin_all t.cache;
  if sync then ignore (Streams.stream_synchronize t.streams stream)

(* ------------------------------------------------------------------ *)
(* The fusion planner                                                  *)

(* Which fields [expr] reads, split by whether the read happens through a
   shift (a shifted read samples neighbour sites, so fusing it past a
   same-flush write would observe new data mid-sweep). *)
let reads_of expr =
  let tbl = Hashtbl.create 8 in
  let record (f : Field.t) shifted =
    let r =
      match Hashtbl.find_opt tbl f.Field.id with
      | Some r -> r
      | None ->
          let r = { r_unshifted = false; r_shifted = false } in
          Hashtbl.replace tbl f.Field.id r;
          r
    in
    if shifted then r.r_shifted <- true else r.r_unshifted <- true
  in
  let rec walk shifted = function
    | Expr.Leaf f -> record f shifted
    | Expr.Const _ | Expr.Param _ -> ()
    | Expr.Unary (_, a) -> walk shifted a
    | Expr.Binary (_, a, b) ->
        walk shifted a;
        walk shifted b
    | Expr.Shift (a, _, _) -> walk true a
    | Expr.Clover (d, tr, p) ->
        walk shifted d;
        walk shifted tr;
        walk shifted p
  in
  walk false expr;
  tbl

let reads_shifted (ev : pending) fid =
  match Hashtbl.find_opt ev.p_reads fid with Some r -> r.r_shifted | None -> false

(* Two pending evals belong to the same launch run iff they agree on the
   lattice geometry and the subset: one fused kernel has one site space.
   Subsets compare structurally (Even/Odd tags; Custom by site array). *)
let same_run (a : pending) (b : pending) =
  geom_tag a.p_geom = geom_tag b.p_geom && a.p_subset = b.p_subset

(* Greedy in-order grouping.  A group is a run of consecutive evals on
   one (subset, geometry) that one fused kernel executes; a candidate
   joins unless it would
   - belong to a different (subset, geometry) run — the queue no longer
     flushes on such a change, but a fused kernel has one site space, so
     the change closes the group (later same-subset evals start a fresh
     group; program order is never reordered),
   - re-write a field the group already writes (WAW: the group has one
     writer per field, and the overwrite order must survive),
   - read a group-written field through a shift (RAW-shifted: neighbour
     sites of the intermediate would be observed mid-update),
   - have its destination already read through a shift by a member
     (WAR-shifted: earlier threads of the fused sweep would clobber
     neighbour sites the member still needs), or
   - follow a reduction payload (the splicer requires the reduction body
     to be the group's tail).
   Same-site dependences fuse: an unshifted RAW becomes a register
   substitution (f64) or an in-thread store→load (f32); an unshifted WAR
   is ordered within each thread.  Groups launch in program order on the
   in-order default stream, so cross-group hazards — including every
   cross-subset dependence — resolve through global memory exactly as
   the unfused schedule did. *)
let plan_groups (evs : pending array) =
  let n = Array.length evs in
  let groups_rev = ref [] and cur = ref [] and cur_n = ref 0 in
  let close () =
    if !cur <> [] then begin
      groups_rev := Array.of_list (List.rev !cur) :: !groups_rev;
      cur := [];
      cur_n := 0
    end
  in
  for i = 0 to n - 1 do
    let ev = evs.(i) in
    let hazard =
      !cur_n >= max_group
      || (match !cur with [] -> false | j :: _ -> not (same_run evs.(j) ev))
      || List.exists
           (fun j ->
             let w = evs.(j).p_dest.Field.id in
             evs.(j).p_red
             || w = ev.p_dest.Field.id
             || reads_shifted ev w
             || reads_shifted evs.(j) ev.p_dest.Field.id)
           !cur
    in
    if hazard then close ();
    cur := i :: !cur;
    incr cur_n
  done;
  close ();
  List.rev !groups_rev

(* Dead-store analysis over one flush: eval [i]'s stores to its
   destination T are droppable iff a later eval [j] of the same flush and
   the same (subset, geometry) run kind rewrites T and every eval in
   between (j included) either does not read T or reads it only through
   register substitution inside [i]'s own group.  The same-run
   requirement replaces the old subset-homogeneous-flush assumption: it
   is what guarantees [j] rewrites exactly the sites [i] would have
   written.  A mixed-subset intervening reader always keeps the store
   (it sits in another group, which the group test below already
   rejects).  Reduction payloads never drop: the in-kernel block
   aggregation re-reads the partial stores through global memory.

   An eval that reads its own destination through a shift (an in-place
   [p = shift p]) keeps its store: threads sweep sites in order and the
   established CPU/unfused semantics let later sites observe earlier
   in-place stores at the wrap-around, so the store is not dead even
   when every downstream reader is register-substituted. *)
let plan_drops (evs : pending array) group_of =
  let n = Array.length evs in
  let drop = Array.make n false in
  for i = 0 to n - 1 do
    let dest_id = evs.(i).p_dest.Field.id in
    let f64 = evs.(i).p_dest.Field.shape.Shape.prec = Shape.F64 in
    let j = ref (-1) in
    let self_shift = reads_shifted evs.(i) dest_id in
    (try
       for k = i + 1 to n - 1 do
         if evs.(k).p_dest.Field.id = dest_id then begin
           j := k;
           raise Exit
         end
       done
     with Exit -> ());
    if !j >= 0 && not self_shift && (not evs.(i).p_red) && same_run evs.(i) evs.(!j) then begin
      let ok = ref true in
      for k = i + 1 to !j do
        if Hashtbl.mem evs.(k).p_reads dest_id then
          if group_of.(k) <> group_of.(i) || not f64 then ok := false
      done;
      drop.(i) <- !ok
    end
  done;
  drop

(* Fuse and launch one multi-eval group.  Raises [Ptx.Fuse.Fusion_failure]
   or [Device.Out_of_device_memory]; the caller falls back to launching
   the members separately. *)
let launch_fused t ~geom ~subset ~nsites ~use_sitelist (members : pending array)
    (dropm : bool array) =
  let k = Array.length members in
  let builts =
    Array.map
      (fun m ->
        raw_built t ~reduction:m.p_red ~dest_shape:m.p_dest.Field.shape ~expr:m.p_expr ~nsites
          ~use_sitelist)
      members
  in
  (* Canonical distinct-field walk: members' [dest; leaves...] in order.
     The index is the launch-time binding identity, so the fused kernel is
     shared by any group with the same structure and alias pattern. *)
  let field_index = Hashtbl.create 16 in
  let fields_rev = ref [] and nfields = ref 0 in
  let canon (f : Field.t) =
    match Hashtbl.find_opt field_index f.Field.id with
    | Some ci -> ci
    | None ->
        let ci = !nfields in
        incr nfields;
        Hashtbl.replace field_index f.Field.id ci;
        fields_rev := f :: !fields_rev;
        ci
  in
  let member_leaves = Array.map (fun m -> Array.of_list (Expr.leaves m.p_expr)) members in
  let slot_tbl : (fused_binding, int) Hashtbl.t = Hashtbl.create 32 in
  let plan_rev = ref [] and nslots = ref 0 in
  let slot_of b =
    match Hashtbl.find_opt slot_tbl b with
    | Some s -> s
    | None ->
        let s = !nslots in
        incr nslots;
        Hashtbl.replace slot_tbl b s;
        plan_rev := b :: !plan_rev;
        s
  in
  let slots =
    Array.mapi
      (fun mi m ->
        builts.(mi).Codegen.plan
        |> List.map (fun p ->
               match p with
               | Codegen.Dest -> slot_of (FB_field (canon m.p_dest))
               | Codegen.Leaf_ptr li -> slot_of (FB_field (canon member_leaves.(mi).(li)))
               | Codegen.Ntable (dim, dir) -> slot_of (FB_ntable (dim, dir))
               | Codegen.Sitelist -> slot_of FB_sitelist
               | Codegen.N_work -> slot_of FB_nwork
               | Codegen.Block_partial -> slot_of FB_red_block
               | Codegen.Scalar_param (slot, comp) -> slot_of (FB_scalar (mi, slot, comp)))
        |> Array.of_list)
      members
  in
  (* Same-site producer→consumer substitutions: an unshifted f64 read of
     an earlier member's destination is served from registers. *)
  let writer = Hashtbl.create 8 in
  let subst =
    Array.mapi
      (fun mi m ->
        let l =
          Hashtbl.fold
            (fun fid (r : read_info) acc ->
              if not r.r_unshifted then acc
              else
                match Hashtbl.find_opt writer fid with
                | Some pj
                  when members.(pj).p_dest.Field.shape.Shape.prec = Shape.F64 ->
                    (slot_of (FB_field (canon members.(pj).p_dest)), pj) :: acc
                | Some _ | None -> acc)
            m.p_reads []
          |> List.sort compare
        in
        Hashtbl.replace writer m.p_dest.Field.id mi;
        l)
      members
  in
  let key =
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "FUSE|%s|v%d" (if use_sitelist then "list" else "all") nsites);
    Array.iteri
      (fun mi m ->
        Buffer.add_char b '|';
        Buffer.add_string b (Expr.structure_key ~dest_shape:m.p_dest.Field.shape m.p_expr);
        Buffer.add_string b "#f";
        Buffer.add_string b (string_of_int (canon m.p_dest));
        Array.iter
          (fun f -> Buffer.add_string b ("," ^ string_of_int (canon f)))
          member_leaves.(mi);
        Buffer.add_string b "#s";
        List.iter
          (fun (s, p) -> Buffer.add_string b (Printf.sprintf "%d:%d," s p))
          subst.(mi);
        Buffer.add_string b (if dropm.(mi) then "#d1" else "#d0");
        if m.p_red then Buffer.add_string b "#R")
      members;
    Buffer.contents b
  in
  let fe =
    match Hashtbl.find_opt t.fused_kernels key with
    | Some fe -> fe
    | None ->
        let sources =
          List.init k (fun mi ->
              {
                Ptx.Fuse.kernel = builts.(mi).Codegen.raw;
                slots = slots.(mi);
                use_sitelist;
                subst_from = subst.(mi);
                drop_stores = dropm.(mi);
                reduction = members.(mi).p_red;
              })
        in
        let skey = Ptx.Fuse.structural_key ~nsites sources in
        let built, compiled, report =
          match cache_find t ~opt:t.optimize ~kind:"fused" skey with
          | Some (built, compiled, Some report) -> (built, compiled, report)
          | Some (_, _, None) | None ->
              t.kernel_serial <- t.kernel_serial + 1;
              let kname = Printf.sprintf "qdpjit_fused_%d" t.kernel_serial in
              let fused_raw, report = Ptx.Fuse.fuse ~kname sources in
              Ptx.Validate.kernel fused_raw;
              let kernel, passes =
                if t.optimize then begin
                  let r = Ptx.Passes.run fused_raw in
                  Ptx.Validate.kernel r.Ptx.Passes.kernel;
                  (r.Ptx.Passes.kernel, r.Ptx.Passes.applied)
                end
                else (fused_raw, [])
              in
              Ptx.Validate.dataflow kernel;
              let text = Ptx.Print.kernel kernel in
              let built =
                {
                  Codegen.kernel;
                  raw = fused_raw;
                  text;
                  plan = [];
                  dest_shape = members.(0).p_dest.Field.shape;
                  passes;
                }
              in
              record_stats ~fused_members:k
                ~fused_subst_load_bytes:report.Ptx.Fuse.subst_load_bytes
                ~fused_dropped_store_bytes:report.Ptx.Fuse.dropped_store_bytes t built;
              let compiled = Jit.compile text in
              t.kernels_built <- t.kernels_built + 1;
              t.jit_seconds <- t.jit_seconds +. compiled.Jit.compile_time;
              cache_store t ~opt:t.optimize ~kind:"fused" skey built compiled (Some report);
              (built, compiled, report)
        in
        let fe =
          {
            f_entry = entry_of_built t built compiled;
            f_plan = Array.of_list (List.rev !plan_rev);
            f_report = report;
          }
        in
        Hashtbl.replace t.fused_kernels key fe;
        fe
  in
  let fields = Array.of_list (List.rev !fields_rev) in
  (* A field whose first group use is an all-sites write (and which its
     writer does not read) is fully overwritten in-kernel before any
     member consumes it: its host content need not travel. *)
  let for_write =
    Array.map
      (fun (f : Field.t) ->
        Subset.is_all subset
        &&
        let rec first_writer mi =
          if mi >= k then None
          else if members.(mi).p_dest.Field.id = f.Field.id then Some mi
          else first_writer (mi + 1)
        in
        match first_writer 0 with
        | None -> false
        | Some p ->
            let read_before = ref false in
            for mi = 0 to p do
              if Hashtbl.mem members.(mi).p_reads f.Field.id then read_before := true
            done;
            not !read_before)
      fields
  in
  let stream = Streams.default_stream t.streams in
  let bufs =
    Array.mapi
      (fun ci f ->
        Memcache.ensure_resident ~pin:true ~for_write:for_write.(ci) ~wait_stream:stream
          t.cache f)
      fields
  in
  let n_work = if use_sitelist then Subset.count geom subset else nsites in
  let scalars =
    Array.map (fun m -> Expr.params m.p_expr |> List.map snd |> Array.of_list) members
  in
  let params =
    Array.map
      (function
        | FB_field ci -> Gpusim.Vm.Ptr bufs.(ci)
        | FB_ntable (dim, dir) -> Gpusim.Vm.Ptr (ntable t geom ~dim ~dir)
        | FB_sitelist -> Gpusim.Vm.Ptr (sitelist t geom subset)
        | FB_nwork -> Gpusim.Vm.Int n_work
        | FB_red_block -> Gpusim.Vm.Ptr (red_block_buf t)
        | FB_scalar (mi, slot, comp) -> Gpusim.Vm.Float scalars.(mi).(slot).(comp))
      fe.f_plan
  in
  tuned_launch t fe.f_entry ~stream ~nthreads:n_work ~params;
  Array.iteri
    (fun mi m -> if not dropm.(mi) then Memcache.mark_device_dirty t.cache m.p_dest)
    members;
  Memcache.unpin_all t.cache;
  t.fs_groups <- t.fs_groups + 1;
  t.fs_saved <- t.fs_saved + (k - 1);
  t.fs_elim_load <- t.fs_elim_load + (fe.f_report.Ptx.Fuse.subst_load_bytes * n_work);
  t.fs_elim_store <- t.fs_elim_store + (fe.f_report.Ptx.Fuse.dropped_store_bytes * n_work)

let launch_group t ~geom ~subset ~nsites ~use_sitelist (evs : pending array)
    (drop : bool array) (g : int array) =
  let s0 = Streams.default_stream t.streams in
  let serial () =
    Array.iter
      (fun i ->
        launch_eval ~subset ~reduction:evs.(i).p_red ~stream:s0 ~sync:false t evs.(i).p_dest
          evs.(i).p_expr)
      g
  in
  if Array.length g = 1 then begin
    let i = g.(0) in
    if drop.(i) then begin
      (* The whole launch is dead: a later eval of this flush rewrites the
         destination before anything reads it. *)
      let b =
        raw_built t ~reduction:false ~dest_shape:evs.(i).p_dest.Field.shape
          ~expr:evs.(i).p_expr ~nsites ~use_sitelist
      in
      let a = Ptx.Analysis.kernel b.Codegen.raw in
      let n_work = if use_sitelist then Subset.count geom subset else nsites in
      t.fs_saved <- t.fs_saved + 1;
      t.fs_elim_load <- t.fs_elim_load + (a.Ptx.Analysis.load_bytes * n_work);
      t.fs_elim_store <- t.fs_elim_store + (a.Ptx.Analysis.store_bytes * n_work)
    end
    else
      launch_eval ~subset ~reduction:evs.(i).p_red ~stream:s0 ~sync:false t evs.(i).p_dest
        evs.(i).p_expr
  end
  else
    let dropm = Array.map (fun i -> drop.(i)) g in
    let members = Array.map (fun i -> evs.(i)) g in
    match launch_fused t ~geom ~subset ~nsites ~use_sitelist members dropm with
    | () -> ()
    | exception Ptx.Fuse.Fusion_failure _ ->
        t.fs_fallbacks <- t.fs_fallbacks + 1;
        serial ()
    | exception Device.Out_of_device_memory ->
        Memcache.unpin_all t.cache;
        t.fs_fallbacks <- t.fs_fallbacks + 1;
        serial ()

let flush t =
  if (not t.in_flush) && t.pending_n > 0 then begin
    t.in_flush <- true;
    Fun.protect
      ~finally:(fun () -> t.in_flush <- false)
      (fun () ->
        let evs = Array.of_list (List.rev t.pending_rev) in
        t.pending_rev <- [];
        t.pending_n <- 0;
        t.fs_flushes <- t.fs_flushes + 1;
        (* The enqueue-time references only needed to survive until now:
           each launch pins its own fields, and anything spilled between
           groups round-trips through its (hook-guarded) host copy. *)
        Array.iter (fun ev -> List.iter (Memcache.release t.cache) ev.p_retained) evs;
        (* The queue is no longer (subset, geometry)-homogeneous: each
           group carries its own site space, taken from its first member
           (grouping guarantees run homogeneity within a group). *)
        let groups = plan_groups evs in
        let group_of = Array.make (Array.length evs) (-1) in
        List.iteri (fun gi g -> Array.iter (fun i -> group_of.(i) <- gi) g) groups;
        let drop = plan_drops evs group_of in
        (* Batched launch sweep: the whole flushed run is handed to the
           VM work pool as one schedule instead of one blocking handoff
           per launch.  Group assembly (residency, pins, fused JIT)
           stays eager; only functional execution defers.  Spills and
           page-outs inside the batch window drain the queue first, so
           host-visible contents are always as-of-program-point. *)
        Device.begin_batch t.device;
        Fun.protect
          ~finally:(fun () -> Device.end_batch t.device)
          (fun () ->
            List.iter
              (fun g ->
                let head = evs.(g.(0)) in
                let geom = head.p_geom and subset = head.p_subset in
                let nsites = Geometry.volume geom in
                let use_sitelist = not (Subset.is_all subset) in
                launch_group t ~geom ~subset ~nsites ~use_sitelist evs drop g)
              groups);
        ignore (Streams.stream_synchronize t.streams (Streams.default_stream t.streams)))
  end

let create ?(machine = Gpusim.Machine.k20x_ecc_off) ?(mode = Device.Functional)
    ?vm_domains ?(optimize = true) ?(fuse = true) ?(fuse_reductions = true) ?jit_cache () =
  let device = Device.create ~mode ?vm_domains machine in
  let streams = Streams.create device in
  let t =
    {
      device;
      streams;
      cache = Memcache.create ~sched:streams device;
      jit_cache = Jitcache.from_env ?default:jit_cache ();
      kernels = Hashtbl.create 64;
      fused_kernels = Hashtbl.create 16;
      raw_builts = Hashtbl.create 16;
      ntables = Hashtbl.create 16;
      sitelists = Hashtbl.create 8;
      optimize;
      fuse;
      fuse_reductions;
      pending_rev = [];
      pending_n = 0;
      in_flush = false;
      kernels_built = 0;
      jit_seconds = 0.0;
      kernel_serial = 0;
      kernel_bytes = 0;
      kernel_bytes_f16 = 0;
      kernel_bytes_f32 = 0;
      kernel_bytes_f64 = 0;
      reduce_kernel = None;
      reduce_scratch = None;
      reduce_scratch_cap = 0;
      red_block = None;
      red_block_cap = 0;
      stats_rev = [];
      fs_deferred = 0;
      fs_flushes = 0;
      fs_groups = 0;
      fs_saved = 0;
      fs_elim_load = 0;
      fs_elim_store = 0;
      fs_fallbacks = 0;
    }
  in
  (* Host code about to touch any cached field sees the queue's effects
     first: the flush runs before the dirty-copy page-out. *)
  Memcache.set_pre_access_hook t.cache (fun _ -> flush t);
  t

let jit_stats t =
  flush t;
  List.rev t.stats_rev

let kernels_built t =
  flush t;
  t.kernels_built

let jit_seconds t =
  flush t;
  t.jit_seconds

let kernel_bytes_moved t =
  flush t;
  t.kernel_bytes

let kernel_bytes_by_prec t =
  flush t;
  (t.kernel_bytes_f16, t.kernel_bytes_f32, t.kernel_bytes_f64)

let fusion_stats t =
  flush t;
  {
    deferred_evals = t.fs_deferred;
    flushes = t.fs_flushes;
    fused_groups = t.fs_groups;
    launches_saved = t.fs_saved;
    eliminated_load_bytes = t.fs_elim_load;
    eliminated_store_bytes = t.fs_elim_store;
    fallbacks = t.fs_fallbacks;
  }

let jit_cache t = t.jit_cache
let jit_cache_stats t = Option.map Jitcache.stats t.jit_cache

(* Rewind the per-interval reporting state (the compile scorecards and
   the planner counters) without touching the kernel caches: benchmarks
   call this between warm-up and measurement so per-solve deltas are
   exact instead of accumulating across the warm-up pass.  Lifetime
   counters ([kernels_built], [jit_seconds], [kernel_bytes_moved]) keep
   counting — callers difference those explicitly. *)
let reset_stats t =
  flush t;
  t.stats_rev <- [];
  t.fs_deferred <- 0;
  t.fs_flushes <- 0;
  t.fs_groups <- 0;
  t.fs_saved <- 0;
  t.fs_elim_load <- 0;
  t.fs_elim_store <- 0;
  t.fs_fallbacks <- 0

let synchronize t =
  flush t;
  Streams.synchronize t.streams

(* Park one eval on the deferred queue.  A subset or geometry change is
   no longer a flush point — the planner groups the queue into
   (subset, geometry) runs at flush time, which is what lets interleaved
   even/odd evals fuse within their own runs.  [red] marks a reduction
   payload (kernel in reduction mode, block scratch bound at launch). *)
let enqueue t ~subset ~red dest expr =
  let leaves = Expr.leaves expr in
  let dest_is_leaf = List.exists (fun (f : Field.t) -> f.Field.id = dest.Field.id) leaves in
  let retained = ref [] in
  match
    (* Residency at enqueue time snapshots the host content the eval
       must see and installs the access hooks that make any later
       host touch a flush point. *)
    List.iter
      (fun (f : Field.t) ->
        ignore (Memcache.ensure_resident t.cache f);
        Memcache.retain t.cache f;
        retained := f :: !retained)
      leaves;
    ignore
      (Memcache.ensure_resident
         ~for_write:(Subset.is_all subset && not dest_is_leaf)
         t.cache dest);
    Memcache.retain t.cache dest;
    retained := dest :: !retained
  with
  | () ->
      t.pending_rev <-
        {
          p_dest = dest;
          p_expr = expr;
          p_subset = subset;
          p_geom = dest.Field.geom;
          p_reads = reads_of expr;
          p_retained = !retained;
          p_red = red;
        }
        :: t.pending_rev;
      t.pending_n <- t.pending_n + 1;
      t.fs_deferred <- t.fs_deferred + 1;
      if t.pending_n >= max_pending then flush t
  | exception Device.Out_of_device_memory ->
      (* Not even enough memory to park the operands: drain the
         queue (freeing its references) and run this eval alone. *)
      List.iter (Memcache.release t.cache) !retained;
      flush t;
      launch_eval ~subset ~reduction:red ~stream:(Streams.default_stream t.streams) ~sync:true
        t dest expr

let eval ?(subset = Subset.All) ?stream t dest expr =
  Qdp.Eval_cpu.check_dest dest expr;
  match stream with
  | Some s ->
      (* Explicit-stream evals bypass the queue but must not overtake it. *)
      flush t;
      launch_eval ~subset ~stream:s ~sync:false t dest expr
  | None ->
      if not t.fuse then
        launch_eval ~subset ~stream:(Streams.default_stream t.streams) ~sync:true t dest expr
      else enqueue t ~subset ~red:false dest expr

(* ------------------------------------------------------------------ *)
(* Reductions                                                          *)

(* Hand-assembled radix-8 fold kernel:
     out[i] = ((x0+x1)+(x2+x3)) + ((x4+x5)+(x6+x7)),  xj = in[8i+j] or 0
   — the same balanced tree (and the same padding) the reduction-mode
   payload kernels apply in their in-kernel block aggregation, so the
   final value is independent of how many fold passes run.  Operating on
   raw f64 buffers with a dynamic byte offset, one compiled kernel serves
   every reduction pass. *)
let build_reduce_kernel () =
  let e = Emitter.create ~kname:"qdpjit_reduce8_f64" in
  let p_src = Emitter.add_param e U64 "src" in
  let p_dst = Emitter.add_param e U64 "dst" in
  let p_srcoff = Emitter.add_param e S32 "src_byte_off" in
  let p_nin = Emitter.add_param e S32 "n_in" in
  let p_nout = Emitter.add_param e S32 "n_out" in
  let src = Emitter.fresh e U64 and dst = Emitter.fresh e U64 in
  let srcoff = Emitter.fresh e S32 and nin = Emitter.fresh e S32 and nout = Emitter.fresh e S32 in
  Emitter.emit e (Ld_param { dst = src; param_index = p_src });
  Emitter.emit e (Ld_param { dst; param_index = p_dst });
  Emitter.emit e (Ld_param { dst = srcoff; param_index = p_srcoff });
  Emitter.emit e (Ld_param { dst = nin; param_index = p_nin });
  Emitter.emit e (Ld_param { dst = nout; param_index = p_nout });
  let tid = Emitter.fresh e S32 and ntid = Emitter.fresh e S32 and ctaid = Emitter.fresh e S32 in
  Emitter.emit e (Mov_sreg { dst = tid; src = Tid_x });
  Emitter.emit e (Mov_sreg { dst = ntid; src = Ntid_x });
  Emitter.emit e (Mov_sreg { dst = ctaid; src = Ctaid_x });
  let idx = Emitter.fresh e S32 in
  Emitter.emit e (Fma { dtype = S32; dst = idx; a = Reg ctaid; b = Reg ntid; c = Reg tid });
  let guard = Emitter.fresh e Pred in
  Emitter.emit e (Setp { cmp = Ge; dtype = S32; dst = guard; a = Reg idx; b = Reg nout });
  Emitter.emit e (Bra { label = "EXIT"; pred = Some guard });
  (* j = 8*idx; base address = src + srcoff + j*8; element l at offset l*8 *)
  let j = Emitter.fresh e S32 in
  Emitter.emit e (Mul { dtype = S32; dst = j; a = Reg idx; b = Imm_int 8 });
  let joff = Emitter.fresh e S32 in
  Emitter.emit e (Fma { dtype = S32; dst = joff; a = Reg j; b = Imm_int 8; c = Reg srcoff });
  let joff64 = Emitter.fresh e S64 in
  Emitter.emit e (Cvt { dst = joff64; src = joff });
  let joffu = Emitter.fresh e U64 in
  Emitter.emit e (Cvt { dst = joffu; src = joff64 });
  let a_addr = Emitter.fresh e U64 in
  Emitter.emit e (Add { dtype = U64; dst = a_addr; a = Reg src; b = Reg joffu });
  let xs =
    Array.init 8 (fun l ->
        let x = Emitter.fresh e F64 in
        if l = 0 then
          (* 8*idx < n_in holds for every guarded thread. *)
          Emitter.emit e (Ld_global { dtype = F64; dst = x; addr = a_addr; offset = 0 })
        else begin
          (* x = (8*idx+l < n_in) ? in[8*idx+l] : 0 *)
          Emitter.emit e (Mov { dst = x; src = Imm_float 0.0 });
          let jl = Emitter.fresh e S32 in
          Emitter.emit e (Add { dtype = S32; dst = jl; a = Reg j; b = Imm_int l });
          let skip = Emitter.fresh e Pred in
          Emitter.emit e (Setp { cmp = Ge; dtype = S32; dst = skip; a = Reg jl; b = Reg nin });
          let lbl = Printf.sprintf "SKIP%d" l in
          Emitter.emit e (Bra { label = lbl; pred = Some skip });
          Emitter.emit e (Ld_global { dtype = F64; dst = x; addr = a_addr; offset = 8 * l });
          Emitter.emit e (Label lbl)
        end;
        x)
  in
  let add a b =
    let d = Emitter.fresh e F64 in
    Emitter.emit e (Add { dtype = F64; dst = d; a = Reg a; b = Reg b });
    d
  in
  let s01 = add xs.(0) xs.(1)
  and s23 = add xs.(2) xs.(3)
  and s45 = add xs.(4) xs.(5)
  and s67 = add xs.(6) xs.(7) in
  let sum = add (add s01 s23) (add s45 s67) in
  (* dst + idx*8 *)
  let doff = Emitter.fresh e S32 in
  Emitter.emit e (Mul { dtype = S32; dst = doff; a = Reg idx; b = Imm_int 8 });
  let doff64 = Emitter.fresh e S64 in
  Emitter.emit e (Cvt { dst = doff64; src = doff });
  let doffu = Emitter.fresh e U64 in
  Emitter.emit e (Cvt { dst = doffu; src = doff64 });
  let d_addr = Emitter.fresh e U64 in
  Emitter.emit e (Add { dtype = U64; dst = d_addr; a = Reg dst; b = Reg doffu });
  Emitter.emit e (St_global { dtype = F64; addr = d_addr; offset = 0; src = Reg sum });
  Emitter.emit e (Label "EXIT");
  Emitter.emit e Ret;
  (Emitter.finish e, e)

let reduce_entry t =
  match t.reduce_kernel with
  | Some entry -> entry
  | None -> (
    match cache_find t ~opt:t.optimize ~kind:"reduce" "reduce8_f64" with
    | Some (built, compiled, _) ->
        let entry = entry_of_built t built compiled in
        t.reduce_kernel <- Some entry;
        entry
    | None ->
      let raw, emitter = build_reduce_kernel () in
      Ptx.Validate.kernel raw;
      (* The hand-built kernel takes the same road as generated ones,
         including the emitter's SSA provenance: the padded accumulators
         are deliberately multi-defined (zero, then a conditional load),
         which provenance reports so CSE leaves them alone. *)
      let kernel, passes =
        if t.optimize then begin
          let r = Ptx.Passes.run ~provenance:(Emitter.provenance emitter) raw in
          Ptx.Validate.kernel r.Ptx.Passes.kernel;
          (r.Ptx.Passes.kernel, r.Ptx.Passes.applied)
        end
        else (raw, [])
      in
      Ptx.Validate.dataflow kernel;
      let compiled = Jit.compile (Ptx.Print.kernel kernel) in
      t.kernels_built <- t.kernels_built + 1;
      t.jit_seconds <- t.jit_seconds +. compiled.Jit.compile_time;
      let built =
        {
          Codegen.kernel;
          raw;
          text = Ptx.Print.kernel kernel;
          plan = [];
          dest_shape = Shape.real_scalar Shape.F64;
          passes;
        }
      in
      record_stats t built;
      cache_store t ~opt:t.optimize ~kind:"reduce" "reduce8_f64" built compiled None;
      let entry = entry_of_built t built compiled in
      t.reduce_kernel <- Some entry;
      entry)

(* The host is about to read [bytes] of a reduction result: a blocking
   D2H copy on the default stream. *)
let sync_readback t ~bytes =
  let s0 = Streams.default_stream t.streams in
  ignore (Streams.memcpy_d2h ~name:"reduce readback" t.streams s0 ~bytes);
  ignore (Streams.stream_synchronize t.streams s0)

(* Ping/pong scratch for the fold chain, cached on the engine: a
   spin-color reduction folds one plane per component, and allocating per
   plane churned two dozen allocations per call. *)
let reduce_scratch t ~nsites =
  let cap = (nsites + 1) / 2 in
  match t.reduce_scratch with
  | Some pair when t.reduce_scratch_cap >= cap -> pair
  | _ ->
      (match t.reduce_scratch with
      | Some (ping, pong) ->
          Device.free t.device ping;
          Device.free t.device pong
      | None -> ());
      let ping = Device.alloc_f64 t.device cap in
      let pong = Device.alloc_f64 t.device ((cap + 1) / 2) in
      t.reduce_scratch <- Some (ping, pong);
      t.reduce_scratch_cap <- cap;
      (ping, pong)

(* Fold [n] f64 values starting at word [plane_word] of a device buffer
   down to one, radix 8 per pass. *)
let reduce_plane t ~(buf : Buffer_.t) ~plane_word ~n =
  if n = 1 then begin
    sync_readback t ~bytes:8;
    match buf.Buffer_.data with
    | Buffer_.F64 a -> a.{plane_word}
    | _ -> invalid_arg "Engine.reduce_plane: f64 buffer expected"
  end
  else begin
    let entry = reduce_entry t in
    let stream = Streams.default_stream t.streams in
    let ping, pong = reduce_scratch t ~nsites:n in
    let rec go ~src ~src_off ~n_in ~dst ~other =
      let n_out = (n_in + 7) / 8 in
      let params =
        [| Gpusim.Vm.Ptr src; Gpusim.Vm.Ptr dst; Gpusim.Vm.Int src_off; Gpusim.Vm.Int n_in;
           Gpusim.Vm.Int n_out |]
      in
      tuned_launch t entry ~stream ~nthreads:n_out ~params;
      if n_out = 1 then dst else go ~src:dst ~src_off:0 ~n_in:n_out ~dst:other ~other:dst
    in
    let final = go ~src:buf ~src_off:(plane_word * 8) ~n_in:n ~dst:ping ~other:pong in
    sync_readback t ~bytes:8;
    match final.Buffer_.data with
    | Buffer_.F64 a -> a.{0}
    | _ -> assert false
  end

(* Evaluate [expr] (any shape, promoted to f64 storage) into a temporary
   and sum each component over the subset.  Returns the canonical
   component array, like {!Qdp.Eval_cpu.sum_components}.

   The payload kernel runs in reduction mode: it writes compact
   work-item-indexed partial planes into the temporary {e and}
   aggregates each group of 8 partials into the engine's block scratch
   in the same launch, so the fold chain starts at ceil(n/8) values.
   With [fuse_reductions] the payload is enqueued like any eval and the
   planner splices it into the trailing fused group — an axpy+norm2
   step becomes one launch; otherwise it launches standalone.  Both
   paths run the identical kernel body, and the balanced radix-8 tree
   matches {!Qdp.Eval_cpu.tree_sum}, so every configuration produces
   bit-identical values. *)
let sum_components ?(subset = Subset.All) t expr =
  let shape = { (Expr.shape expr) with Shape.prec = Shape.F64 } in
  let geom =
    match Expr.leaves expr with
    | f :: _ -> f.Field.geom
    | [] -> invalid_arg "Engine.sum_components: expression has no fields"
  in
  let nsites = Geometry.volume geom in
  let n_work = if Subset.is_all subset then nsites else Subset.count geom subset in
  let dof = Shape.dof shape in
  if n_work = 0 then Array.make dof 0.0
  else begin
    let bstride = (nsites + 7) / 8 in
    let block = red_block_scratch t ~cap:(dof * bstride) in
    let tmp = Field.create ~name:"reduce_tmp" shape geom in
    if t.fuse && t.fuse_reductions then enqueue t ~subset ~red:true tmp expr
    else begin
      (* Reduction fusion off: drain the queue first so the payload
         always launches standalone (same kernel, separate launch). *)
      flush t;
      launch_eval ~subset ~reduction:true ~stream:(Streams.default_stream t.streams)
        ~sync:false t tmp expr
    end;
    (* The readback is a flush point: the payload (and everything queued
       before it) must land before the folds read the block scratch. *)
    flush t;
    let nblocks = (n_work + 7) / 8 in
    let is_ = Shape.spin_extent shape.Shape.spin in
    let ic = Shape.color_extent shape.Shape.color in
    ignore is_;
    let out =
      Array.init dof (fun lin ->
          let s, c, r = Layout.Index.component_of_linear shape lin in
          let plane = (((r * ic) + c) * Shape.spin_extent shape.Shape.spin) + s in
          reduce_plane t ~buf:block ~plane_word:(plane * bstride) ~n:nblocks)
    in
    Memcache.drop t.cache tmp;
    out
  end

let norm2 ?(subset = Subset.All) t expr = (sum_components ~subset t (Expr.norm2_local expr)).(0)

let inner ?(subset = Subset.All) t a b =
  let s = sum_components ~subset t (Expr.inner_local a b) in
  (s.(0), s.(1))

let sum_real ?(subset = Subset.All) t expr =
  let shape = Expr.shape expr in
  if Shape.dof shape <> 1 then invalid_arg "Engine.sum_real: expression is not a real scalar";
  (sum_components ~subset t expr).(0)
