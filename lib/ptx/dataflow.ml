(** SSA-flavoured dataflow analysis over the PTX IR.

    The code generators emit forward-branching code with fresh virtual
    registers, so most registers have exactly one static definition; this
    module makes that precise instead of assumed.  It provides the def/use
    view of every instruction (the single instruction-walk the printer, the
    VM, the register estimator and the optimization passes all share),
    basic-block splitting over the existing [Label]/[Bra] instructions,
    block-level liveness, the weighted register demand an allocator would
    need, and a definitely-assigned analysis for the validator. *)

open Types

type key = dtype * int

let key r = (r.rtype, r.id)

module KSet = Set.Make (struct
  type t = key

  let compare = compare
end)

(** Destination register written by an instruction, if any. *)
let def_of = function
  | Ld_param { dst; _ }
  | Ld_global { dst; _ }
  | Ld_global_f16 { dst; _ }
  | Mov { dst; _ }
  | Mov_sreg { dst; _ }
  | Add { dst; _ }
  | Sub { dst; _ }
  | Mul { dst; _ }
  | Div { dst; _ }
  | Fma { dst; _ }
  | Shl { dst; _ }
  | Neg { dst; _ }
  | Cvt { dst; _ }
  | Setp { dst; _ }
  | Call { ret = dst; _ } ->
      Some dst
  | St_global _ | St_global_f16 _ | Bra _ | Label _ | Ret -> None

let op_reg = function Reg r -> Some r | Imm_float _ | Imm_int _ -> None

(** Registers read by an instruction (operands, addresses, predicates). *)
let uses_of i =
  let ops =
    match i with
    | Ld_param _ | Mov_sreg _ | Label _ | Ret -> []
    | Ld_global { addr; _ } | Ld_global_f16 { addr; _ } -> [ Reg addr ]
    | St_global { addr; src; _ } | St_global_f16 { addr; src; _ } -> [ Reg addr; src ]
    | Mov { src; _ } -> [ src ]
    | Add { a; b; _ } | Sub { a; b; _ } | Mul { a; b; _ } | Div { a; b; _ } | Setp { a; b; _ } ->
        [ a; b ]
    | Fma { a; b; c; _ } -> [ a; b; c ]
    | Shl { a; _ } | Neg { a; _ } -> [ a ]
    | Cvt { src; _ } -> [ Reg src ]
    | Bra { pred; _ } -> ( match pred with Some p -> [ Reg p ] | None -> [])
    | Call { arg; _ } -> [ Reg arg ]
  in
  List.filter_map op_reg ops

(** Instructions whose effect is not captured by their destination
    register: memory writes, control flow, the exit. *)
let is_side_effecting = function
  | St_global _ | St_global_f16 _ | Bra _ | Label _ | Ret -> true
  | Ld_param _ | Ld_global _ | Ld_global_f16 _ | Mov _ | Mov_sreg _ | Add _ | Sub _ | Mul _
  | Div _ | Fma _ | Shl _ | Neg _ | Cvt _ | Setp _ | Call _ ->
      false

(* Hardware registers are 32-bit: 64-bit virtual registers occupy two; the
   predicate bank is separate. *)
let weight = function F64 | S64 | U64 -> 2 | F32 | S32 | U32 -> 1 | Pred -> 0

(* ------------------------------------------------------------------ *)
(* Def counts (the single-static-definition test)                      *)

let def_counts body =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun i ->
      match def_of i with
      | Some r ->
          let k = key r in
          Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
      | None -> ())
    body;
  counts

let single_def counts r = Hashtbl.find_opt counts (key r) = Some 1

(* ------------------------------------------------------------------ *)
(* Basic blocks                                                        *)

type block = {
  first : int;  (** index of the leader instruction *)
  last : int;  (** inclusive *)
  succs : int list;  (** successor block ids *)
  preds : int list;
}

(** Split a body into basic blocks.  Returns the block array and a map
    from instruction index to owning block id. *)
let blocks body =
  let n = Array.length body in
  if n = 0 then ([||], [||])
  else begin
    let label_pos = Hashtbl.create 8 in
    Array.iteri
      (fun i instr -> match instr with Label l -> Hashtbl.replace label_pos l i | _ -> ())
      body;
    let leader = Array.make n false in
    leader.(0) <- true;
    Array.iteri
      (fun i instr ->
        match instr with
        | Label _ -> leader.(i) <- true
        | Bra { label; _ } ->
            if i + 1 < n then leader.(i + 1) <- true;
            (match Hashtbl.find_opt label_pos label with
            | Some t -> leader.(t) <- true
            | None -> ())
        | Ret -> if i + 1 < n then leader.(i + 1) <- true
        | _ -> ())
      body;
    let block_of = Array.make n 0 in
    let nblocks = ref 0 in
    for i = 0 to n - 1 do
      if leader.(i) && i > 0 then incr nblocks;
      block_of.(i) <- !nblocks
    done;
    let nblocks = !nblocks + 1 in
    let first = Array.make nblocks 0 and last = Array.make nblocks 0 in
    for i = n - 1 downto 0 do
      first.(block_of.(i)) <- i
    done;
    for i = 0 to n - 1 do
      last.(block_of.(i)) <- i
    done;
    let succs =
      Array.init nblocks (fun b ->
          let fallthrough = if b + 1 < nblocks then [ b + 1 ] else [] in
          match body.(last.(b)) with
          | Ret -> []
          | Bra { label; pred } -> (
              match Hashtbl.find_opt label_pos label with
              | Some t -> (
                  let target = block_of.(t) in
                  match pred with
                  | None -> [ target ]
                  | Some _ -> target :: List.filter (fun s -> s <> target) fallthrough)
              | None -> fallthrough)
          | _ -> fallthrough)
    in
    let preds = Array.make nblocks [] in
    Array.iteri (fun b ss -> List.iter (fun s -> preds.(s) <- b :: preds.(s)) ss) succs;
    let arr =
      Array.init nblocks (fun b ->
          { first = first.(b); last = last.(b); succs = succs.(b); preds = preds.(b) })
    in
    (arr, block_of)
  end

(* ------------------------------------------------------------------ *)
(* Def/use chains                                                      *)

type chains = {
  def_sites : (key, int list) Hashtbl.t;  (** instruction indices, ascending *)
  use_sites : (key, int list) Hashtbl.t;
}

let chains body =
  let def_sites = Hashtbl.create 64 and use_sites = Hashtbl.create 64 in
  let push tbl k i = Hashtbl.replace tbl k (i :: Option.value ~default:[] (Hashtbl.find_opt tbl k)) in
  Array.iteri
    (fun i instr ->
      (match def_of instr with Some r -> push def_sites (key r) i | None -> ());
      List.iter (fun r -> push use_sites (key r) i) (uses_of instr))
    body;
  let rev tbl = Hashtbl.iter (fun k v -> Hashtbl.replace tbl k (List.rev v)) tbl in
  rev def_sites;
  rev use_sites;
  { def_sites; use_sites }

let uses_of_reg chains r = Option.value ~default:[] (Hashtbl.find_opt chains.use_sites (key r))

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)

(* Block-level use (upward-exposed reads) and def sets. *)
let block_use_def body (b : block) =
  let use = ref KSet.empty and def = ref KSet.empty in
  for i = b.first to b.last do
    List.iter
      (fun r ->
        let k = key r in
        if not (KSet.mem k !def) then use := KSet.add k !use)
      (uses_of body.(i));
    match def_of body.(i) with Some r -> def := KSet.add (key r) !def | None -> ()
  done;
  (!use, !def)

(** [live_in], [live_out] per block, to fixpoint. *)
let liveness body (blks : block array) =
  let n = Array.length blks in
  let use = Array.make n KSet.empty and def = Array.make n KSet.empty in
  Array.iteri
    (fun b blk ->
      let u, d = block_use_def body blk in
      use.(b) <- u;
      def.(b) <- d)
    blks;
  let live_in = Array.make n KSet.empty and live_out = Array.make n KSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = n - 1 downto 0 do
      let out =
        List.fold_left (fun acc s -> KSet.union acc live_in.(s)) KSet.empty blks.(b).succs
      in
      let inn = KSet.union use.(b) (KSet.diff out def.(b)) in
      if not (KSet.equal out live_out.(b) && KSet.equal inn live_in.(b)) then begin
        live_out.(b) <- out;
        live_in.(b) <- inn;
        changed := true
      end
    done
  done;
  (live_in, live_out)

let set_weight s = KSet.fold (fun (dt, _) acc -> acc + weight dt) s 0

(** Peak weighted register pressure (32-bit units) over every program
    point: what an allocator that reuses registers perfectly would need.
    Unlike {!Gpusim}'s capped occupancy estimate, this is the raw demand,
    so pass-pipeline savings are visible even on huge kernels. *)
let register_demand_body body =
  let blks, _ = blocks body in
  if Array.length blks = 0 then 0
  else begin
    let _, live_out = liveness body blks in
    let peak = ref 0 in
    Array.iteri
      (fun bi blk ->
        let live = ref live_out.(bi) in
        for i = blk.last downto blk.first do
          let instr = body.(i) in
          (* The destination occupies a register at the def point even if it
             is never read afterwards. *)
          let at_point =
            match def_of instr with Some r -> KSet.add (key r) !live | None -> !live
          in
          peak := max !peak (set_weight at_point);
          (match def_of instr with Some r -> live := KSet.remove (key r) !live | None -> ());
          List.iter (fun r -> live := KSet.add (key r) !live) (uses_of instr)
        done)
      blks;
    !peak
  end

let register_demand (k : kernel) = register_demand_body (Array.of_list k.body)

(* ------------------------------------------------------------------ *)
(* Definitely-assigned analysis                                        *)

(** Registers possibly read before any write reaches them, as
    [(instruction index, register)] in program order.  A forward
    must-analysis: a use is safe only if a definition reaches it along
    {e every} path from the entry — stricter than textual order when the
    code branches. *)
let undefined_uses (k : kernel) =
  let body = Array.of_list k.body in
  let blks, _ = blocks body in
  let n = Array.length blks in
  if n = 0 then []
  else begin
    let universe =
      Array.fold_left
        (fun acc i -> match def_of i with Some r -> KSet.add (key r) acc | None -> acc)
        KSet.empty body
    in
    let block_defs =
      Array.map
        (fun blk ->
          let d = ref KSet.empty in
          for i = blk.first to blk.last do
            match def_of body.(i) with Some r -> d := KSet.add (key r) !d | None -> ()
          done;
          !d)
        blks
    in
    let inn = Array.make n universe and out = Array.make n universe in
    inn.(0) <- KSet.empty;
    out.(0) <- block_defs.(0);
    let changed = ref true in
    while !changed do
      changed := false;
      for b = 0 to n - 1 do
        let i =
          if b = 0 then KSet.empty
          else
            match blks.(b).preds with
            | [] -> universe (* unreachable: vacuously fine *)
            | p :: ps -> List.fold_left (fun acc q -> KSet.inter acc out.(q)) out.(p) ps
        in
        let o = KSet.union i block_defs.(b) in
        if not (KSet.equal i inn.(b) && KSet.equal o out.(b)) then begin
          inn.(b) <- i;
          out.(b) <- o;
          changed := true
        end
      done
    done;
    let violations = ref [] in
    Array.iteri
      (fun bi blk ->
        let defined = ref inn.(bi) in
        for i = blk.first to blk.last do
          List.iter
            (fun r -> if not (KSet.mem (key r) !defined) then violations := (i, r) :: !violations)
            (uses_of body.(i));
          match def_of body.(i) with Some r -> defined := KSet.add (key r) !defined | None -> ()
        done)
      blks;
    List.rev !violations
  end
