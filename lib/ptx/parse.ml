(** PTX text parser — the front half of the simulated driver JIT.

    Accepts the dialect produced by {!Print} (the code generators emit
    nothing else), with free-form whitespace.  Errors raise {!Error} with a
    line number, as a real assembler would. *)

open Types

exception Error of string

let fail line fmt = Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

let dtype_of_suffix line = function
  | "f32" -> F32
  | "f64" -> F64
  | "s32" -> S32
  | "u32" -> U32
  | "s64" -> S64
  | "u64" -> U64
  | "pred" -> Pred
  | s -> fail line "unknown type suffix %S" s

let parse_reg line s =
  let prefix_table =
    [ ("%fd", F64); ("%f", F32); ("%ru", U32); ("%rd", U64); ("%rs", S64); ("%r", S32); ("%p", Pred) ]
  in
  let rec go = function
    | [] -> fail line "bad register %S" s
    | (prefix, dt) :: rest ->
        let pl = String.length prefix in
        if String.length s > pl && String.sub s 0 pl = prefix then begin
          match int_of_string_opt (String.sub s pl (String.length s - pl)) with
          | Some id -> { rtype = dt; id }
          | None -> go rest
        end
        else go rest
  in
  go prefix_table

let parse_operand line s =
  if String.length s = 0 then fail line "empty operand"
  else if s.[0] = '%' then Reg (parse_reg line s)
  else if String.length s > 2 && s.[0] = '0' && (s.[1] = 'f' || s.[1] = 'F') && String.length s = 10
  then
    Imm_float (Int32.float_of_bits (Int32.of_string ("0x" ^ String.sub s 2 8)))
  else if String.length s > 2 && s.[0] = '0' && (s.[1] = 'd' || s.[1] = 'D') then
    Imm_float (Int64.float_of_bits (Int64.of_string ("0x" ^ String.sub s 2 16)))
  else
    match int_of_string_opt s with
    | Some i -> Imm_int i
    | None -> fail line "bad operand %S" s

(* [%rd3+16] -> (reg, 16) *)
let parse_address line s =
  let s = String.trim s in
  if String.length s < 2 || s.[0] <> '[' || s.[String.length s - 1] <> ']' then
    fail line "bad address %S" s;
  let inner = String.sub s 1 (String.length s - 2) in
  match String.index_opt inner '+' with
  | Some i ->
      let r = parse_reg line (String.trim (String.sub inner 0 i)) in
      let off = String.trim (String.sub inner (i + 1) (String.length inner - i - 1)) in
      (r, int_of_string off)
  | None -> (parse_reg line (String.trim inner), 0)

let split_operands s =
  (* Split on commas that are not inside brackets or parens. *)
  let out = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '[' | '(' ->
          incr depth;
          Buffer.add_char buf c
      | ']' | ')' ->
          decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          out := Buffer.contents buf :: !out;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  if Buffer.length buf > 0 then out := Buffer.contents buf :: !out;
  List.rev_map String.trim !out

let sreg_of_string = function
  | "%tid.x" -> Some Tid_x
  | "%ntid.x" -> Some Ntid_x
  | "%ctaid.x" -> Some Ctaid_x
  | "%nctaid.x" -> Some Nctaid_x
  | _ -> None

let cmp_of_string line = function
  | "eq" -> Eq
  | "ne" -> Ne
  | "lt" -> Lt
  | "le" -> Le
  | "gt" -> Gt
  | "ge" -> Ge
  | s -> fail line "unknown comparison %S" s

let parse_instr ~param_index line text =
  let text = String.trim text in
  let pred, text =
    if String.length text > 0 && text.[0] = '@' then begin
      match String.index_opt text ' ' with
      | Some i ->
          ( Some (parse_reg line (String.sub text 1 (i - 1))),
            String.trim (String.sub text i (String.length text - i)) )
      | None -> fail line "bad predicated instruction %S" text
    end
    else (None, text)
  in
  let opcode, rest =
    match String.index_opt text ' ' with
    | Some i -> (String.sub text 0 i, String.trim (String.sub text i (String.length text - i)))
    | None -> (text, "")
  in
  let rest = String.trim rest in
  let ops () = split_operands rest in
  let parts = String.split_on_char '.' opcode in
  match parts with
  | [ "ret" ] -> Ret
  | [ "bra"; "uni" ] -> Bra { label = rest; pred }
  | [ "bra" ] -> Bra { label = rest; pred }
  | [ "ld"; "param"; t ] -> (
      let _ = dtype_of_suffix line t in
      match ops () with
      | [ dst; addr ] ->
          let dst = parse_reg line dst in
          let addr = String.trim addr in
          if String.length addr >= 2 && addr.[0] = '[' && addr.[String.length addr - 1] = ']'
          then
            let name = String.trim (String.sub addr 1 (String.length addr - 2)) in
            Ld_param { dst; param_index = param_index line name }
          else fail line "bad param reference %S" addr
      | _ -> fail line "ld.param arity")
  (* The f16 flavours are not a [dtype] (compute registers are F32), so
     they must be matched before the generic suffix arms below. *)
  | [ "ld"; "global"; "f16" ] -> (
      match ops () with
      | [ dst; addr ] ->
          let a, offset = parse_address line addr in
          Ld_global_f16 { dst = parse_reg line dst; addr = a; offset }
      | _ -> fail line "ld.global.f16 arity")
  | [ "st"; "global"; "f16" ] -> (
      match ops () with
      | [ addr; src ] ->
          let a, offset = parse_address line addr in
          St_global_f16 { addr = a; offset; src = parse_operand line src }
      | _ -> fail line "st.global.f16 arity")
  | [ "ld"; "global"; t ] -> (
      match ops () with
      | [ dst; addr ] ->
          let a, offset = parse_address line addr in
          Ld_global { dtype = dtype_of_suffix line t; dst = parse_reg line dst; addr = a; offset }
      | _ -> fail line "ld.global arity")
  | [ "st"; "global"; t ] -> (
      match ops () with
      | [ addr; src ] ->
          let a, offset = parse_address line addr in
          St_global
            { dtype = dtype_of_suffix line t; addr = a; offset; src = parse_operand line src }
      | _ -> fail line "st.global arity")
  | [ "mov"; t ] -> (
      match ops () with
      | [ dst; src ] -> (
          let dstr = parse_reg line dst in
          match sreg_of_string src with
          | Some sr -> Mov_sreg { dst = dstr; src = sr }
          | None ->
              let _ = dtype_of_suffix line t in
              Mov { dst = dstr; src = parse_operand line src })
      | _ -> fail line "mov arity")
  | [ "add"; t ] | [ "sub"; t ] | [ "mul"; t ] | [ "mul"; "lo"; t ] | [ "div"; t ]
  | [ "div"; "rn"; t ] -> (
      let dtype = dtype_of_suffix line t in
      match ops () with
      | [ dst; a; b ] -> (
          let dst = parse_reg line dst in
          let a = parse_operand line a and b = parse_operand line b in
          match List.hd parts with
          | "add" -> Add { dtype; dst; a; b }
          | "sub" -> Sub { dtype; dst; a; b }
          | "mul" -> Mul { dtype; dst; a; b }
          | "div" -> Div { dtype; dst; a; b }
          | _ -> assert false)
      | _ -> fail line "3-operand arity")
  | [ "fma"; "rn"; t ] | [ "mad"; "lo"; t ] -> (
      let dtype = dtype_of_suffix line t in
      match ops () with
      | [ dst; a; b; c ] ->
          Fma
            {
              dtype;
              dst = parse_reg line dst;
              a = parse_operand line a;
              b = parse_operand line b;
              c = parse_operand line c;
            }
      | _ -> fail line "fma arity")
  | [ "shl"; t ] -> (
      match ops () with
      | [ dst; a; amount ] -> (
          match int_of_string_opt amount with
          | Some amount ->
              Shl
                {
                  dtype = dtype_of_suffix line t;
                  dst = parse_reg line dst;
                  a = parse_operand line a;
                  amount;
                }
          | None -> fail line "shl amount must be an immediate, got %S" amount)
      | _ -> fail line "shl arity")
  | [ "neg"; t ] -> (
      match ops () with
      | [ dst; a ] ->
          Neg { dtype = dtype_of_suffix line t; dst = parse_reg line dst; a = parse_operand line a }
      | _ -> fail line "neg arity")
  | "cvt" :: rest_parts -> (
      (* cvt[.rn|.rzi].<dst>.<src> *)
      match List.rev rest_parts with
      | src :: dst :: _ -> (
          let _ = dtype_of_suffix line dst and _ = dtype_of_suffix line src in
          match ops () with
          | [ d; s ] -> Cvt { dst = parse_reg line d; src = parse_reg line s }
          | _ -> fail line "cvt arity")
      | _ -> fail line "bad cvt opcode %S" opcode)
  | [ "setp"; c; t ] -> (
      match ops () with
      | [ dst; a; b ] ->
          Setp
            {
              cmp = cmp_of_string line c;
              dtype = dtype_of_suffix line t;
              dst = parse_reg line dst;
              a = parse_operand line a;
              b = parse_operand line b;
            }
      | _ -> fail line "setp arity")
  | [ "call"; "uni" ] -> (
      match ops () with
      | [ ret; func; arg ] ->
          let strip_parens s =
            let s = String.trim s in
            if String.length s >= 2 && s.[0] = '(' && s.[String.length s - 1] = ')' then
              String.trim (String.sub s 1 (String.length s - 2))
            else fail line "bad call operand %S" s
          in
          Call
            {
              func = String.trim func;
              ret = parse_reg line (strip_parens ret);
              arg = parse_reg line (strip_parens arg);
            }
      | _ -> fail line "call arity")
  | _ -> fail line "unknown opcode %S" opcode

let kernel text =
  let lines = String.split_on_char '\n' text in
  let kname = ref "" in
  let params = ref [] in
  let body = ref [] in
  let in_body = ref false in
  List.iteri
    (fun lineno raw ->
      let line = lineno + 1 in
      let no_comment =
        let len = String.length raw in
        let cut = ref len in
        for i = 0 to len - 2 do
          if !cut = len && raw.[i] = '/' && raw.[i + 1] = '/' then cut := i
        done;
        String.sub raw 0 !cut
      in
      let s = String.trim no_comment in
      if s = "" then ()
      else if String.length s >= 2 && String.sub s 0 2 = "//" then ()
      else if s = "{" then in_body := true
      else if s = "}" then in_body := false
      else if not !in_body then begin
        if
          String.length s > 8
          && (String.sub s 0 8 = ".version" || String.sub s 0 7 = ".target")
        then ()
        else if String.length s >= 7 && String.sub s 0 7 = ".target" then ()
        else if String.length s >= 13 && String.sub s 0 13 = ".address_size" then ()
        else if String.length s >= 15 && String.sub s 0 15 = ".visible .entry" then begin
          let after = String.trim (String.sub s 15 (String.length s - 15)) in
          let name = match String.index_opt after '(' with
            | Some i -> String.sub after 0 i
            | None -> after
          in
          kname := String.trim name
        end
        else if String.length s >= 6 && String.sub s 0 6 = ".param" then begin
          (* .param .u64 kname_param_0[,] *)
          let s = if s.[String.length s - 1] = ',' then String.sub s 0 (String.length s - 1) else s in
          match String.split_on_char ' ' s |> List.filter (fun x -> x <> "") with
          | [ _; dot_t; pname ] ->
              let t = dtype_of_suffix line (String.sub dot_t 1 (String.length dot_t - 1)) in
              params := { pname; ptype = t } :: !params
          | _ -> fail line "bad .param line %S" s
        end
        else if s = ")" then ()
        else fail line "unexpected header line %S" s
      end
      else if String.length s >= 4 && String.sub s 0 4 = ".reg" then ()
      else if String.length s > 1 && s.[String.length s - 1] = ':' then
        body := Label (String.sub s 0 (String.length s - 1)) :: !body
      else begin
        let s = if s.[String.length s - 1] = ';' then String.sub s 0 (String.length s - 1) else s in
        let param_index line name =
          let rec go i = function
            | [] -> fail line "unknown parameter %S" name
            | p :: rest -> if p.pname = name then i else go (i + 1) rest
          in
          go 0 (List.rev !params)
        in
        body := parse_instr ~param_index line s :: !body
      end)
    lines;
  if !kname = "" then raise (Error "no .entry found");
  { kname = !kname; params = List.rev !params; body = List.rev !body }
