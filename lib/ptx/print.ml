(** PTX text emission.  The output follows NVCC's dialect closely enough
    that reading it next to the ISA manual is unremarkable; floating-point
    immediates use the exact hexadecimal forms ([0f...]/[0d...]) so the
    parse/print round trip is bit-exact. *)

open Types

let imm_float dtype v =
  match dtype with
  | F32 -> Printf.sprintf "0f%08lX" (Int32.bits_of_float v)
  | F64 -> Printf.sprintf "0d%016LX" (Int64.bits_of_float v)
  | _ -> invalid_arg "Ptx.Print: float immediate with integer type"

let operand dtype = function
  | Reg r -> reg_name r
  | Imm_float v -> imm_float dtype v
  | Imm_int i -> string_of_int i

(* cvt rounding modifiers: float results from narrowing or from integers
   need .rn; integer results from floats truncate with .rzi. *)
let cvt_modifier ~dst ~src =
  match (dst, src) with
  | F32, F64 -> ".rn"
  | (F32 | F64), (S32 | U32 | S64 | U64) -> ".rn"
  | (S32 | U32 | S64 | U64), (F32 | F64) -> ".rzi"
  | _ -> ""

let instr ~params buf i =
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf ("\t" ^ s ^ "\n")) fmt in
  match i with
  | Ld_param { dst; param_index } ->
      let pname =
        match List.nth_opt params param_index with
        | Some prm -> prm.pname
        | None -> invalid_arg "Ptx.Print: parameter index out of range"
      in
      p "ld.param.%s \t%s, [%s];" (dtype_suffix dst.rtype) (reg_name dst) pname
  | Ld_global { dtype; dst; addr; offset } ->
      p "ld.global.%s \t%s, [%s+%d];" (dtype_suffix dtype) (reg_name dst) (reg_name addr) offset
  | St_global { dtype; addr; offset; src } ->
      p "st.global.%s \t[%s+%d], %s;" (dtype_suffix dtype) (reg_name addr) offset
        (operand dtype src)
  (* The f16 flavours carry the widening/narrowing convert: the data
     register is F32, the memory word is a 16-bit binary16 payload. *)
  | Ld_global_f16 { dst; addr; offset } ->
      p "ld.global.f16 \t%s, [%s+%d];" (reg_name dst) (reg_name addr) offset
  | St_global_f16 { addr; offset; src } ->
      (* Immediates print in the 0d double form: the store's own rounding
         is the only one allowed, so the text round-trip must not narrow
         the value to f32 first. *)
      p "st.global.f16 \t[%s+%d], %s;" (reg_name addr) offset (operand F64 src)
  | Mov { dst; src } ->
      p "mov.%s \t%s, %s;" (dtype_suffix dst.rtype) (reg_name dst) (operand dst.rtype src)
  | Mov_sreg { dst; src } -> p "mov.u32 \t%s, %s;" (reg_name dst) (sreg_name src)
  | Add { dtype; dst; a; b } ->
      p "add.%s \t%s, %s, %s;" (dtype_suffix dtype) (reg_name dst) (operand dtype a)
        (operand dtype b)
  | Sub { dtype; dst; a; b } ->
      p "sub.%s \t%s, %s, %s;" (dtype_suffix dtype) (reg_name dst) (operand dtype a)
        (operand dtype b)
  | Mul { dtype; dst; a; b } ->
      let op = if is_float dtype then "mul" else "mul.lo" in
      p "%s.%s \t%s, %s, %s;" op (dtype_suffix dtype) (reg_name dst) (operand dtype a)
        (operand dtype b)
  | Div { dtype; dst; a; b } ->
      let op = if is_float dtype then "div.rn" else "div" in
      p "%s.%s \t%s, %s, %s;" op (dtype_suffix dtype) (reg_name dst) (operand dtype a)
        (operand dtype b)
  | Fma { dtype; dst; a; b; c } ->
      let op = if is_float dtype then "fma.rn" else "mad.lo" in
      p "%s.%s \t%s, %s, %s, %s;" op (dtype_suffix dtype) (reg_name dst) (operand dtype a)
        (operand dtype b) (operand dtype c)
  | Shl { dtype; dst; a; amount } ->
      p "shl.%s \t%s, %s, %d;" (dtype_suffix dtype) (reg_name dst) (operand dtype a) amount
  | Neg { dtype; dst; a } ->
      p "neg.%s \t%s, %s;" (dtype_suffix dtype) (reg_name dst) (operand dtype a)
  | Cvt { dst; src } ->
      p "cvt%s.%s.%s \t%s, %s;"
        (cvt_modifier ~dst:dst.rtype ~src:src.rtype)
        (dtype_suffix dst.rtype) (dtype_suffix src.rtype) (reg_name dst) (reg_name src)
  | Setp { cmp; dtype; dst; a; b } ->
      p "setp.%s.%s \t%s, %s, %s;" (cmp_name cmp) (dtype_suffix dtype) (reg_name dst)
        (operand dtype a) (operand dtype b)
  | Bra { label; pred = None } -> p "bra.uni \t%s;" label
  | Bra { label; pred = Some pr } -> p "@%s bra \t%s;" (reg_name pr) label
  | Label l -> Buffer.add_string buf (l ^ ":\n")
  | Call { func; ret; arg } ->
      p "call.uni \t(%s), %s, (%s);" (reg_name ret) func (reg_name arg)
  | Ret -> p "ret;"

let reg_declarations buf body =
  let max_ids = Hashtbl.create 8 in
  let see r =
    let cur = try Hashtbl.find max_ids r.rtype with Not_found -> -1 in
    if r.id > cur then Hashtbl.replace max_ids r.rtype r.id
  in
  List.iter
    (fun i ->
      Option.iter see (Dataflow.def_of i);
      List.iter see (Dataflow.uses_of i))
    body;
  List.iter
    (fun dt ->
      match Hashtbl.find_opt max_ids dt with
      | Some max_id ->
          Buffer.add_string buf
            (Printf.sprintf "\t.reg .%s \t%s<%d>;\n" (dtype_suffix dt) (reg_prefix dt)
               (max_id + 1))
      | None -> ())
    [ Pred; S32; U32; S64; U64; F32; F64 ]

let kernel k =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "//\n// Generated by QDP-JIT/PTX (OCaml reproduction)\n//\n";
  Buffer.add_string buf ".version 3.1\n.target sm_35\n.address_size 64\n\n";
  Buffer.add_string buf (Printf.sprintf ".visible .entry %s(\n" k.kname);
  let nparams = List.length k.params in
  List.iteri
    (fun i prm ->
      Buffer.add_string buf
        (Printf.sprintf "\t.param .%s %s%s\n" (dtype_suffix prm.ptype) prm.pname
           (if i = nparams - 1 then "" else ",")))
    k.params;
  Buffer.add_string buf ")\n{\n";
  reg_declarations buf k.body;
  Buffer.add_string buf "\n";
  List.iter (fun i -> instr ~params:k.params buf i) k.body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
