(** Static per-thread cost analysis of a kernel.

    Straight-line streaming kernels execute (at most) every instruction once
    per thread, so static counts are the dynamic counts; these numbers feed
    the device timing model and the flop/byte figures of Table II. *)

open Types

type t = {
  load_bytes : int;  (** global-memory bytes read per thread *)
  store_bytes : int;  (** global-memory bytes written per thread *)
  flops : int;  (** floating-point operations (fma counts 2) *)
  int_ops : int;
  instructions : int;
  calls : int;  (** math subroutine calls *)
}

let zero = { load_bytes = 0; store_bytes = 0; flops = 0; int_ops = 0; instructions = 0; calls = 0 }

let kernel (k : kernel) =
  List.fold_left
    (fun acc i ->
      let acc = { acc with instructions = acc.instructions + 1 } in
      match i with
      | Ld_global { dtype; _ } -> { acc with load_bytes = acc.load_bytes + dtype_bytes dtype }
      | St_global { dtype; _ } -> { acc with store_bytes = acc.store_bytes + dtype_bytes dtype }
      | Ld_global_f16 _ -> { acc with load_bytes = acc.load_bytes + 2 }
      | St_global_f16 _ -> { acc with store_bytes = acc.store_bytes + 2 }
      | Add { dtype; _ } | Sub { dtype; _ } | Mul { dtype; _ } ->
          if is_float dtype then { acc with flops = acc.flops + 1 }
          else { acc with int_ops = acc.int_ops + 1 }
      | Neg _ ->
          (* Negation is an operand modifier on the hardware: free.  Keeping
             it free also makes the generated kernels' flop counts line up
             with the standard LQCD conventions behind Table II. *)
          acc
      | Div { dtype; _ } ->
          (* A float divide costs far more than one flop on real hardware;
             count the conventional 1 flop here, the timing model applies
             its own weight. *)
          if is_float dtype then { acc with flops = acc.flops + 1 }
          else { acc with int_ops = acc.int_ops + 1 }
      | Fma { dtype; _ } ->
          if is_float dtype then { acc with flops = acc.flops + 2 }
          else { acc with int_ops = acc.int_ops + 2 }
      | Shl _ -> { acc with int_ops = acc.int_ops + 1 }
      | Call _ -> { acc with calls = acc.calls + 1 }
      | Ld_param _ | Mov _ | Mov_sreg _ | Cvt _ | Setp _ | Bra _ | Label _ | Ret -> acc)
    zero k.body

let flop_per_byte a =
  let bytes = a.load_bytes + a.store_bytes in
  if bytes = 0 then 0.0 else float_of_int a.flops /. float_of_int bytes
