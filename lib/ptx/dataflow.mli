(** SSA-flavoured dataflow analysis over the PTX IR: the shared def/use
    view of every instruction, basic-block splitting over [Label]/[Bra],
    block-level liveness, allocator register demand, and a
    definitely-assigned analysis.  The printer, the VM, the driver-JIT
    register estimator and the optimization passes all build on this one
    instruction-walk. *)

(** A register class + index pair, usable as a hash/set key. *)
type key = Types.dtype * int

val key : Types.reg -> key

module KSet : Set.S with type elt = key

(** Destination register written by an instruction, if any. *)
val def_of : Types.instr -> Types.reg option

(** Registers read by an instruction: operands, addresses, predicates,
    call arguments. *)
val uses_of : Types.instr -> Types.reg list

(** Memory writes, control flow and the exit — instructions whose effect
    is not captured by a destination register and which DCE must keep. *)
val is_side_effecting : Types.instr -> bool

(** 32-bit register units occupied by one virtual register of this class
    (64-bit classes take two; predicates live in a separate bank). *)
val weight : Types.dtype -> int

(** Static definition count per register. *)
val def_counts : Types.instr array -> (key, int) Hashtbl.t

(** [single_def counts r]: [r] has exactly one static definition, i.e. it
    is an SSA value whose definition dominates every (validated) use. *)
val single_def : (key, int) Hashtbl.t -> Types.reg -> bool

type block = {
  first : int;  (** index of the leader instruction *)
  last : int;  (** inclusive *)
  succs : int list;  (** successor block ids *)
  preds : int list;
}

(** Basic blocks of a body, plus the instruction-index → block-id map. *)
val blocks : Types.instr array -> block array * int array

type chains = {
  def_sites : (key, int list) Hashtbl.t;  (** instruction indices, ascending *)
  use_sites : (key, int list) Hashtbl.t;
}

val chains : Types.instr array -> chains

(** Use sites of a register, ascending; empty if never read. *)
val uses_of_reg : chains -> Types.reg -> int list

(** Per-block [live_in], [live_out] register sets, iterated to fixpoint. *)
val liveness : Types.instr array -> block array -> KSet.t array * KSet.t array

(** Peak weighted register pressure (32-bit units) over all program
    points — the demand a perfect allocator would still need.  Uncapped,
    unlike the occupancy estimate in [Gpusim.Jit], so pass-pipeline
    savings stay visible on large kernels. *)
val register_demand_body : Types.instr array -> int

val register_demand : Types.kernel -> int

(** Registers possibly read before any write reaches them, as
    [(instruction index, register)] in program order: a use is safe only
    if a definition reaches it along every path from the entry. *)
val undefined_uses : Types.kernel -> (int * Types.reg) list
