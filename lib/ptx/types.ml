(** The PTX subset emitted by the QDP-JIT code generators.

    PTX (Parallel Thread Execution) is NVIDIA's virtual ISA; the paper's
    kernels are written directly in it and handed to the driver JIT
    (Fig. 2).  This module is the typed in-memory form.  The printer
    ({!Print}) emits real PTX text and the parser ({!Parse}) — standing in
    for the driver — reads the text back; the simulated device executes the
    parsed form. *)

type dtype = F32 | F64 | S32 | U32 | S64 | U64 | Pred

(** Virtual register: a class (by [dtype]) and an index within it. *)
type reg = { rtype : dtype; id : int }

type operand = Reg of reg | Imm_float of float | Imm_int of int

(** Comparison operators for [setp]. *)
type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Special (read-only) registers. *)
type sreg = Tid_x | Ntid_x | Ctaid_x | Nctaid_x

type instr =
  | Ld_param of { dst : reg; param_index : int }
      (** ld.param.<t> %r, [kernel_param_<i>]; *)
  | Ld_global of { dtype : dtype; dst : reg; addr : reg; offset : int }
      (** ld.global.<t> %r, [%rd + offset]; *)
  | St_global of { dtype : dtype; addr : reg; offset : int; src : operand }
  | Ld_global_f16 of { dst : reg; addr : reg; offset : int }
      (** ld.global.f16 with widening convert: reads a 16-bit binary16
          payload, decodes it exactly into an F32 register.  Half-precision
          is a storage format only — compute stays F32, so register
          pressure matches the F32 kernel. *)
  | St_global_f16 of { addr : reg; offset : int; src : operand }
      (** st.global.f16 with narrowing convert: rounds the F32 source to
          binary16 (to nearest, ties to even) and stores the 16-bit
          payload. *)
  | Mov of { dst : reg; src : operand }
  | Mov_sreg of { dst : reg; src : sreg }
  | Add of { dtype : dtype; dst : reg; a : operand; b : operand }
  | Sub of { dtype : dtype; dst : reg; a : operand; b : operand }
  | Mul of { dtype : dtype; dst : reg; a : operand; b : operand }
      (** integer flavours are mul.lo *)
  | Div of { dtype : dtype; dst : reg; a : operand; b : operand }
      (** printed div.rn for floats *)
  | Fma of { dtype : dtype; dst : reg; a : operand; b : operand; c : operand }
      (** fma.rn float only; mad.lo for ints *)
  | Shl of { dtype : dtype; dst : reg; a : operand; amount : int }
      (** shl.b<n> with an immediate shift; produced by strength reduction
          of multiplications by power-of-two strides *)
  | Neg of { dtype : dtype; dst : reg; a : operand }
  | Cvt of { dst : reg; src : reg }  (** cvt.<dst.t>.<src.t> with rn where needed *)
  | Setp of { cmp : cmp; dtype : dtype; dst : reg; a : operand; b : operand }
  | Bra of { label : string; pred : reg option }  (** [@%p] bra LABEL; *)
  | Label of string
  | Call of { func : string; ret : reg; arg : reg }
      (** call.uni (ret), func, (arg): pre-generated math subroutines
          (Sec. III-D); the simulated driver links them natively. *)
  | Ret

(** Kernel parameter declaration. *)
type param = { pname : string; ptype : dtype }

type kernel = { kname : string; params : param list; body : instr list }

let dtype_suffix = function
  | F32 -> "f32"
  | F64 -> "f64"
  | S32 -> "s32"
  | U32 -> "u32"
  | S64 -> "s64"
  | U64 -> "u64"
  | Pred -> "pred"

(* Register class prefixes follow NVCC conventions. *)
let reg_prefix = function
  | F32 -> "%f"
  | F64 -> "%fd"
  | S32 -> "%r"
  | U32 -> "%ru"
  | S64 -> "%rs"
  | U64 -> "%rd"
  | Pred -> "%p"

let reg_name r = Printf.sprintf "%s%d" (reg_prefix r.rtype) r.id

let cmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let sreg_name = function
  | Tid_x -> "%tid.x"
  | Ntid_x -> "%ntid.x"
  | Ctaid_x -> "%ctaid.x"
  | Nctaid_x -> "%nctaid.x"

let is_float = function F32 | F64 -> true | S32 | U32 | S64 | U64 | Pred -> false
let is_int = function S32 | U32 | S64 | U64 -> true | F32 | F64 | Pred -> false
let dtype_bytes = function
  | F32 | S32 | U32 -> 4
  | F64 | S64 | U64 -> 8
  | Pred -> 1
