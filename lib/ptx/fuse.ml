(** Cross-kernel fusion by body splicing (see fuse.mli).

    The generated streaming kernels share one canonical skeleton (all
    parameter loads, then the thread-index prologue and guard, then a
    straight-line site body, then the exit label): fusion parses that
    skeleton per source, renames the register spaces apart, keeps a
    single prologue, dedupes parameter loads through the shared slot
    map, and concatenates the site bodies.  Producer→consumer
    substitution rewrites a consumer's [Ld_global] into a [Mov] from the
    producer's stored operand after proving the load address is
    [slot_base + site0 * elem_bytes] for the fused thread's own site —
    the exact chain {!Codegen.byte_address} emits.  Anything structurally
    unexpected raises {!Fusion_failure}; the engine then launches the
    sources unfused. *)

open Types

exception Fusion_failure of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fusion_failure s)) fmt

type report = { subst_load_bytes : int; dropped_store_bytes : int }

type source = {
  kernel : Types.kernel;
  slots : int array;
  use_sitelist : bool;
  subst_from : (int * int) list;
  drop_stores : bool;
  reduction : bool;
}

let map_operand f = function Reg r -> Reg (f r) | (Imm_float _ | Imm_int _) as o -> o

(* One structural walk renaming every register an instruction touches
   (definitions and uses alike) — the passes' rewriting helpers are not
   exported, and fusion needs the defs renamed too. *)
let map_regs f = function
  | Ld_param { dst; param_index } -> Ld_param { dst = f dst; param_index }
  | Ld_global { dtype; dst; addr; offset } ->
      Ld_global { dtype; dst = f dst; addr = f addr; offset }
  | St_global { dtype; addr; offset; src } ->
      St_global { dtype; addr = f addr; offset; src = map_operand f src }
  | Ld_global_f16 { dst; addr; offset } ->
      Ld_global_f16 { dst = f dst; addr = f addr; offset }
  | St_global_f16 { addr; offset; src } ->
      St_global_f16 { addr = f addr; offset; src = map_operand f src }
  | Mov { dst; src } -> Mov { dst = f dst; src = map_operand f src }
  | Mov_sreg { dst; src } -> Mov_sreg { dst = f dst; src }
  | Add { dtype; dst; a; b } -> Add { dtype; dst = f dst; a = map_operand f a; b = map_operand f b }
  | Sub { dtype; dst; a; b } -> Sub { dtype; dst = f dst; a = map_operand f a; b = map_operand f b }
  | Mul { dtype; dst; a; b } -> Mul { dtype; dst = f dst; a = map_operand f a; b = map_operand f b }
  | Div { dtype; dst; a; b } -> Div { dtype; dst = f dst; a = map_operand f a; b = map_operand f b }
  | Fma { dtype; dst; a; b; c } ->
      Fma { dtype; dst = f dst; a = map_operand f a; b = map_operand f b; c = map_operand f c }
  | Shl { dtype; dst; a; amount } -> Shl { dtype; dst = f dst; a = map_operand f a; amount }
  | Neg { dtype; dst; a } -> Neg { dtype; dst = f dst; a = map_operand f a }
  | Cvt { dst; src } -> Cvt { dst = f dst; src = f src }
  | Setp { cmp; dtype; dst; a; b } ->
      Setp { cmp; dtype; dst = f dst; a = map_operand f a; b = map_operand f b }
  | Bra { label; pred } -> Bra { label; pred = Option.map f pred }
  | Label l -> Label l
  | Call { func; ret; arg } -> Call { func; ret = f ret; arg = f arg }
  | Ret -> Ret

(* The parsed canonical skeleton of one (renamed) source. *)
type parsed = {
  param_loads : (int * reg) list;  (** (source param index, destination) in order *)
  head : instr list;  (** Mov_sreg×3 + idx Fma + guard Setp (no Bra) *)
  guard : reg;
  exit_label : string;
  site_chain : instr list;  (** sitelist address chain + site load, if any *)
  site : reg;  (** the register site addresses are built from *)
  idx : reg;  (** the thread-index register (= [site] without a site list) *)
  prologue_regs : reg list;  (** every register the dropped prologue defines *)
  mid : instr list;
}

let parse_source ~use_sitelist ~reduction body =
  let rec take_params acc = function
    | Ld_param { dst; param_index } :: rest -> take_params ((param_index, dst) :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let param_loads, rest = take_params [] body in
  match rest with
  | (Mov_sreg { dst = tid; src = Tid_x } as i1)
    :: (Mov_sreg { dst = ntid; src = Ntid_x } as i2)
    :: (Mov_sreg { dst = ctaid; src = Ctaid_x } as i3)
    :: (Fma { dtype = S32; dst = idx; _ } as i4)
    :: (Setp { dst = guard; a = Reg guarded; _ } as i5)
    :: Bra { label = exit_label; pred = Some pred }
    :: rest
    when pred.id = guard.id && pred.rtype = guard.rtype && guarded.id = idx.id ->
      let site_chain, site, rest =
        if use_sitelist then
          match rest with
          | (Cvt { dst = c1; _ } as s1)
            :: (Mul { dst = m; _ } as s2)
            :: (Cvt { dst = c2; _ } as s3)
            :: (Add { dst = a; _ } as s4)
            :: (Ld_global { dtype = S32; dst = site; _ } as s5)
            :: rest ->
              ignore c1;
              ignore m;
              ignore c2;
              ignore a;
              ([ s1; s2; s3; s4; s5 ], site, rest)
          | _ -> fail "source does not start with the site-list chain"
        else ([], idx, rest)
      in
      let rec split_tail acc = function
        | [ Label l; Ret ] when l = exit_label -> List.rev acc
        | [] | [ _ ] -> fail "source does not end with the exit label"
        | i :: rest -> split_tail (i :: acc) rest
      in
      let mid = split_tail [] rest in
      (* A pointwise body is straight-line; a reduction body may branch
         (the block-aggregation tail), but only to its own labels or the
         exit, which the splicer retargets. *)
      let own_labels =
        List.filter_map (function Label l -> Some l | _ -> None) mid
      in
      List.iter
        (function
          | Ld_param _ -> fail "parameter load outside the leading run"
          | Ret -> fail "source body contains a return"
          | (Label _ | Bra _) when not reduction -> fail "source body is not straight-line"
          | Bra { label; _ } when label <> exit_label && not (List.mem label own_labels) ->
              fail "reduction body branches outside itself"
          | _ -> ())
        mid;
      let prologue_regs =
        [ tid; ntid; ctaid; idx; guard; site ]
        @ List.filter_map Dataflow.def_of site_chain
      in
      { param_loads; head = [ i1; i2; i3; i4; i5 ]; guard; exit_label; site_chain; site;
        idx; prologue_regs; mid }
  | _ -> fail "source does not match the canonical prologue"

let fuse ~kname sources =
  (match sources with [] -> fail "empty fusion group" | _ -> ());
  let use_sitelist = (List.hd sources).use_sitelist in
  List.iter
    (fun s -> if s.use_sitelist <> use_sitelist then fail "mixed subset kinds in one group")
    sources;
  let nsources = List.length sources in
  List.iteri
    (fun i s ->
      if s.reduction then begin
        if i <> nsources - 1 then fail "reduction source must be last";
        if s.drop_stores then fail "reduction source cannot drop stores"
      end)
    sources;
  (* Pull the sources' register spaces apart: per class, each source's ids
     are shifted past everything already assigned. *)
  let next_id = Hashtbl.create 7 in
  let base_of rtype = Option.value ~default:0 (Hashtbl.find_opt next_id rtype) in
  let renamed =
    List.map
      (fun s ->
        let base = Hashtbl.copy next_id in
        let shift r =
          { r with id = r.id + Option.value ~default:0 (Hashtbl.find_opt base r.rtype) }
        in
        let body = List.map (map_regs shift) s.kernel.body in
        List.iter
          (fun i ->
            let bump r =
              if r.id + 1 > base_of r.rtype then Hashtbl.replace next_id r.rtype (r.id + 1)
            in
            Option.iter bump (Dataflow.def_of i);
            List.iter bump (Dataflow.uses_of i))
          body;
        (s, parse_source ~use_sitelist ~reduction:s.reduction body))
      sources
  in
  let nslots =
    1 + List.fold_left (fun m (s, _) -> Array.fold_left max m s.slots) (-1) renamed
  in
  if nslots <= 0 then fail "no parameters";
  (* Fused parameter declarations, one per slot: dtype and (uniquified)
     name from the first source position bound to the slot. *)
  let decls = Array.make nslots None in
  List.iter
    (fun (s, _) ->
      let params = Array.of_list s.kernel.params in
      Array.iteri
        (fun pos slot ->
          if pos >= Array.length params then fail "slot map longer than parameter list";
          let p = params.(pos) in
          match decls.(slot) with
          | None ->
              decls.(slot) <-
                Some { pname = Printf.sprintf "%s_s%d" p.pname slot; ptype = p.ptype }
          | Some d -> if d.ptype <> p.ptype then fail "slot %d bound at two types" slot)
        s.slots)
    renamed;
  let params =
    Array.to_list decls
    |> List.mapi (fun slot d ->
           match d with Some d -> d | None -> fail "slot %d never bound" slot)
  in
  (* Canonical parameter register per slot: the first load wins, later
     loads are dropped and their destinations remapped. *)
  let canonical : reg option array = Array.make nslots None in
  let kept_params = ref [] in
  let first = List.hd renamed in
  let _, parsed0 = first in
  let fused_site = parsed0.site in
  let exit_lbl = "FUSED_EXIT" in
  let store_maps : (int, operand * dtype) Hashtbl.t array =
    Array.init nsources (fun _ -> Hashtbl.create 16)
  in
  let subst_load_bytes = ref 0 in
  let dropped_store_bytes = ref 0 in
  let mids =
    List.mapi
      (fun si (s, parsed) ->
        let remap : (Dataflow.key, reg) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun (pos, dst) ->
            if pos >= Array.length s.slots then fail "parameter index outside the plan";
            let slot = s.slots.(pos) in
            match canonical.(slot) with
            | None ->
                canonical.(slot) <- Some dst;
                kept_params := Ld_param { dst; param_index = slot } :: !kept_params
            | Some c ->
                if c.rtype <> dst.rtype then fail "slot %d loaded at two types" slot;
                Hashtbl.replace remap (Dataflow.key dst) c)
          parsed.param_loads;
        (* Secondary sources lose their prologue: route their thread
           index, guard and site registers to the first source's.  A
           reduction body additionally references the raw thread index
           (compact partial addressing and the block computation), which
           routes to the primary's. *)
        if si > 0 then begin
          Hashtbl.replace remap (Dataflow.key parsed.site) fused_site;
          if s.reduction then Hashtbl.replace remap (Dataflow.key parsed.idx) parsed0.idx
        end;
        let rename r = Option.value ~default:r (Hashtbl.find_opt remap (Dataflow.key r)) in
        if si > 0 then begin
          (* The only prologue values a site body may reference are the
             site register (the thread index when there is no site list)
             and, for a reduction body, the thread index; any other leak
             means the skeleton assumption broke. *)
          let kept =
            if s.reduction then [ parsed.site; parsed.idx ] else [ parsed.site ]
          in
          let dropped =
            List.filter
              (fun r ->
                not (List.exists (fun k -> Dataflow.key r = Dataflow.key k) kept))
              parsed.prologue_regs
          in
          List.iter
            (fun i ->
              List.iter
                (fun u ->
                  if List.exists (fun d -> Dataflow.key d = Dataflow.key u) dropped then
                    fail "site body reads a dropped prologue register")
                (Dataflow.uses_of i))
            parsed.mid
        end;
        let mid = List.map (map_regs rename) parsed.mid in
        (* A reduction body's internal labels are uniquified per member,
           and its early exits retarget the fused exit. *)
        let mid =
          if not s.reduction then mid
          else begin
            let relabel l =
              if l = parsed.exit_label then exit_lbl else Printf.sprintf "M%d_%s" si l
            in
            List.map
              (function
                | Label l -> Label (relabel l)
                | Bra { label; pred } -> Bra { label = relabel label; pred }
                | i -> i)
              mid
          end
        in
        (* Producer→consumer substitution: loads whose address chain is
           provably [subst slot base + site * bytes] become register moves
           from the producer's stored operand at the same offset. *)
        let defs = Hashtbl.create 64 in
        List.iter
          (fun i ->
            match Dataflow.def_of i with
            | Some r -> Hashtbl.replace defs (Dataflow.key r) i
            | None -> ())
          mid;
        let trace addr =
          match Hashtbl.find_opt defs (Dataflow.key addr) with
          | Some (Add { dtype = U64; a = Reg base; b = Reg u; _ }) -> (
              match Hashtbl.find_opt defs (Dataflow.key u) with
              | Some (Cvt { src = scaled; _ }) -> (
                  match Hashtbl.find_opt defs (Dataflow.key scaled) with
                  | Some (Mul { a = Reg wide; b = Imm_int _; _ }) -> (
                      match Hashtbl.find_opt defs (Dataflow.key wide) with
                      | Some (Cvt { src = site; _ }) -> Some (base, site)
                      | _ -> None)
                  | _ -> None)
              | _ -> None)
          | _ -> None
        in
        let subst_bases =
          List.filter_map
            (fun (slot, producer) ->
              if producer < 0 || producer >= si then
                fail "substitution producer is not an earlier group member";
              match canonical.(slot) with
              | Some c -> Some (Dataflow.key c, producer)
              | None -> fail "substitution slot %d has no parameter load" slot)
            s.subst_from
        in
        let mid =
          List.map
            (fun i ->
              match i with
              | Ld_global { dtype; dst; addr; offset } -> (
                  match trace addr with
                  | Some (base, site) -> (
                      match List.assoc_opt (Dataflow.key base) subst_bases with
                      | None -> i
                      | Some producer ->
                          if Dataflow.key site <> Dataflow.key fused_site then
                            fail "shifted read of a fused intermediate";
                          if dtype <> F64 then fail "substitution on a non-f64 load";
                          (match Hashtbl.find_opt store_maps.(producer) offset with
                          | Some (src, F64) ->
                              subst_load_bytes := !subst_load_bytes + dtype_bytes dtype;
                              Mov { dst; src }
                          | Some (_, _) -> fail "producer stored a non-f64 value"
                          | None -> fail "producer never stores offset %d" offset))
                  | None -> i)
              | _ -> i)
            mid
        in
        (* Record what this source stores to its destination — later
           members may substitute from it.  A reduction source is exempt:
           it is the group's tail (nothing substitutes from it), and its
           stores deliberately target the compact partial planes and the
           block buffer instead of the thread's site. *)
        if not s.reduction then begin
          let dest_base =
            match canonical.(s.slots.(0)) with
            | Some c -> Dataflow.key c
            | None -> fail "destination parameter was never loaded"
          in
          List.iter
            (fun i ->
              match i with
              | St_global { dtype; addr; offset; src } -> (
                  match trace addr with
                  | Some (base, site)
                    when Dataflow.key base = dest_base
                         && Dataflow.key site = Dataflow.key fused_site ->
                      Hashtbl.replace store_maps.(si) offset (src, dtype)
                  | _ -> fail "store does not target the destination at the thread's site")
              | _ -> ())
            mid
        end;
        if s.drop_stores then
          List.filter
            (fun i ->
              match i with
              | St_global { dtype; _ } ->
                  dropped_store_bytes := !dropped_store_bytes + dtype_bytes dtype;
                  false
              | St_global_f16 _ ->
                  dropped_store_bytes := !dropped_store_bytes + 2;
                  false
              | _ -> true)
            mid
        else mid)
      renamed
  in
  let head =
    parsed0.head
    @ [ Bra { label = exit_lbl; pred = Some parsed0.guard } ]
    @ parsed0.site_chain
  in
  let body = List.rev !kept_params @ head @ List.concat mids @ [ Label exit_lbl; Ret ] in
  ( { kname; params; body },
    { subst_load_bytes = !subst_load_bytes; dropped_store_bytes = !dropped_store_bytes } )

(* ------------------------------------------------------------------ *)
(* Persistent-cache identity.  The splice is a pure function of the
   member kernels and their masks, so digesting the printed member PTX
   together with the slot map, the substitution edges and the drop/
   reduction flags names the fused artifact exactly: equal keys mean a
   byte-identical fused kernel.  [version] is folded in by the engine's
   cache-key tag so a splicer change invalidates old entries. *)

let version = 2

let structural_key ~nsites sources =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "fuse|v%d" nsites);
  List.iter
    (fun s ->
      Buffer.add_string b "|k";
      Buffer.add_string b (Digest.to_hex (Digest.string (Print.kernel s.kernel)));
      Buffer.add_string b "#t";
      Array.iter (fun slot -> Buffer.add_string b (string_of_int slot ^ ",")) s.slots;
      Buffer.add_string b (if s.use_sitelist then "#l1" else "#l0");
      Buffer.add_string b "#s";
      List.iter (fun (slot, p) -> Buffer.add_string b (Printf.sprintf "%d:%d," slot p)) s.subst_from;
      Buffer.add_string b (if s.drop_stores then "#d1" else "#d0");
      if s.reduction then Buffer.add_string b "#R")
    sources;
  Digest.to_hex (Digest.string (Buffer.contents b))
