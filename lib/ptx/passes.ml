(** The optimizing middle-end: composable rewrites over {!Types.kernel}.

    The code generators deliberately unparse the expression tree naively
    (one load per leaf visit, one address chain per access) the way the
    paper's expression-template unparser does, and the paper then leans on
    the NVIDIA driver JIT to clean the stream up.  These passes are that
    clean-up, made explicit and measurable: constant folding with copy
    propagation, local common-subexpression elimination (which is what
    dedupes repeated leaf loads and [byte_address] chains), mul+add→fma
    contraction, power-of-two strength reduction, and dead-code
    elimination.

    Every pass preserves VM semantics bit-exactly, which constrains them:

    - Floating-point expressions are never re-associated, and float
      constants are never folded or propagated: an [Imm_float] in an f32
      instruction is printed rounded to f32 while an f32 {e register}
      carries its value unrounded until a store (see {!Gpusim.Vm}), so
      turning a register into an immediate could change stored bits.
      Integer folding is exact and unrestricted.
    - mul+add→fma is bit-exact {e in the VM} because the VM evaluates
      [Fma] as [(a*b)+c] in double precision, exactly like the separate
      instructions.  Real hardware fuses the rounding; there the
      contraction would change low bits, as every real compiler's
      [-ffp-contract=fast] does.
    - CSE reuses a computed value only when the reused register and every
      operand have a single static definition (SSA values, which is almost
      everything the emitter produces), only within an extended basic
      block (the value-number table resets at every [Label]), and load
      value numbers are invalidated by any [St_global] so aliased
      destinations (e.g. in-place axpy) stay exact. *)

open Types
module D = Dataflow

let version = 2

(** Value provenance handed down by the emitting builder: the proof CSE
    needs that a register is an SSA value.  When absent, passes recompute
    it from the body; builder-recorded counts can only over-count (passes
    only delete definitions), so both are sound. *)
type provenance = { single_def : reg -> bool }

let provenance_of_body body =
  let counts = D.def_counts body in
  { single_def = D.single_def counts }

type report = { pass : string; before : int; after : int }

type result = { kernel : kernel; applied : report list }

(* ------------------------------------------------------------------ *)
(* Rewriting helpers                                                   *)

(* Rewrite the inputs of one instruction: [op] at operand positions,
   [reg] at register-only positions (addresses, cvt/call sources, branch
   predicates).  Destinations are never touched. *)
let rewrite ~(op : operand -> operand) ~(reg : reg -> reg) (i : instr) =
  match i with
  | Ld_param _ | Mov_sreg _ | Label _ | Ret -> i
  | Ld_global { dtype; dst; addr; offset } -> Ld_global { dtype; dst; addr = reg addr; offset }
  | St_global { dtype; addr; offset; src } ->
      St_global { dtype; addr = reg addr; offset; src = op src }
  | Ld_global_f16 { dst; addr; offset } -> Ld_global_f16 { dst; addr = reg addr; offset }
  | St_global_f16 { addr; offset; src } ->
      St_global_f16 { addr = reg addr; offset; src = op src }
  | Mov { dst; src } -> Mov { dst; src = op src }
  | Add { dtype; dst; a; b } -> Add { dtype; dst; a = op a; b = op b }
  | Sub { dtype; dst; a; b } -> Sub { dtype; dst; a = op a; b = op b }
  | Mul { dtype; dst; a; b } -> Mul { dtype; dst; a = op a; b = op b }
  | Div { dtype; dst; a; b } -> Div { dtype; dst; a = op a; b = op b }
  | Fma { dtype; dst; a; b; c } -> Fma { dtype; dst; a = op a; b = op b; c = op c }
  | Shl { dtype; dst; a; amount } -> Shl { dtype; dst; a = op a; amount }
  | Neg { dtype; dst; a } -> Neg { dtype; dst; a = op a }
  | Cvt { dst; src } -> Cvt { dst; src = reg src }
  | Setp { cmp; dtype; dst; a; b } -> Setp { cmp; dtype; dst; a = op a; b = op b }
  | Bra { label; pred } -> Bra { label; pred = Option.map reg pred }
  | Call { func; ret; arg } -> Call { func; ret; arg = reg arg }

(* Replace the destination register (used to canonicalize an instruction
   into a CSE lookup key). *)
let with_dst (d : reg) (i : instr) =
  match i with
  | Ld_param x -> Ld_param { x with dst = d }
  | Ld_global { dtype; dst = _; addr; offset } -> Ld_global { dtype; dst = d; addr; offset }
  | Ld_global_f16 { dst = _; addr; offset } -> Ld_global_f16 { dst = d; addr; offset }
  | Mov { dst = _; src } -> Mov { dst = d; src }
  | Mov_sreg { dst = _; src } -> Mov_sreg { dst = d; src }
  | Add { dtype; dst = _; a; b } -> Add { dtype; dst = d; a; b }
  | Sub { dtype; dst = _; a; b } -> Sub { dtype; dst = d; a; b }
  | Mul { dtype; dst = _; a; b } -> Mul { dtype; dst = d; a; b }
  | Div { dtype; dst = _; a; b } -> Div { dtype; dst = d; a; b }
  | Fma { dtype; dst = _; a; b; c } -> Fma { dtype; dst = d; a; b; c }
  | Shl { dtype; dst = _; a; amount } -> Shl { dtype; dst = d; a; amount }
  | Neg { dtype; dst = _; a } -> Neg { dtype; dst = d; a }
  | Cvt { dst = _; src } -> Cvt { dst = d; src }
  | Setp { cmp; dtype; dst = _; a; b } -> Setp { cmp; dtype; dst = d; a; b }
  | Call { func; ret = _; arg } -> Call { func; ret = d; arg }
  | St_global _ | St_global_f16 _ | Bra _ | Label _ | Ret -> i

(* ------------------------------------------------------------------ *)
(* Constant folding + copy propagation                                 *)

(* Integer-only constant propagation/folding (exact in the VM: OCaml int
   arithmetic both sides) plus register copy propagation for every class
   (moving a register is exact for floats too).  Folded instructions
   become Movs; DCE deletes the ones that end up unread. *)
let constant_fold (k : kernel) =
  let body = Array.of_list k.body in
  let counts = D.def_counts body in
  let sd = D.single_def counts in
  let consts : (D.key, int) Hashtbl.t = Hashtbl.create 32 in
  let copies : (D.key, reg) Hashtbl.t = Hashtbl.create 32 in
  let subst_reg r =
    match Hashtbl.find_opt copies (D.key r) with Some r' -> r' | None -> r
  in
  let subst_op = function
    | Reg r -> (
        let r = subst_reg r in
        match Hashtbl.find_opt consts (D.key r) with
        | Some v -> Imm_int v
        | None -> Reg r)
    | o -> o
  in
  let record i =
    (match i with
    | Mov { dst; src = Imm_int v } when is_int dst.rtype && sd dst ->
        Hashtbl.replace consts (D.key dst) v
    | Mov { dst; src = Reg r } when sd dst && sd r && dst.rtype = r.rtype ->
        (* [r] is already canonical: the src was rewritten first. *)
        Hashtbl.replace copies (D.key dst) r
    | _ -> ());
    Some i
  in
  let fold i =
    match i with
    | Add { dtype; dst; a = Imm_int x; b = Imm_int y } when is_int dtype ->
        Mov { dst; src = Imm_int (x + y) }
    | Add { dtype; dst; a; b = Imm_int 0 } | Add { dtype; dst; a = Imm_int 0; b = a }
      when is_int dtype ->
        Mov { dst; src = a }
    | Sub { dtype; dst; a = Imm_int x; b = Imm_int y } when is_int dtype ->
        Mov { dst; src = Imm_int (x - y) }
    | Sub { dtype; dst; a; b = Imm_int 0 } when is_int dtype -> Mov { dst; src = a }
    | Mul { dtype; dst; a = Imm_int x; b = Imm_int y } when is_int dtype ->
        Mov { dst; src = Imm_int (x * y) }
    | Mul { dtype; dst; a; b = Imm_int 1 } | Mul { dtype; dst; a = Imm_int 1; b = a }
      when is_int dtype ->
        Mov { dst; src = a }
    | Mul { dtype; dst; a = _; b = Imm_int 0 } | Mul { dtype; dst; a = Imm_int 0; b = _ }
      when is_int dtype ->
        Mov { dst; src = Imm_int 0 }
    | Div { dtype; dst; a = Imm_int x; b = Imm_int y } when is_int dtype && y <> 0 ->
        Mov { dst; src = Imm_int (x / y) }
    | Div { dtype; dst; a; b = Imm_int 1 } when is_int dtype -> Mov { dst; src = a }
    | Fma { dtype; dst; a = Imm_int x; b = Imm_int y; c = Imm_int z } when is_int dtype ->
        Mov { dst; src = Imm_int ((x * y) + z) }
    | Shl { dtype; dst; a = Imm_int x; amount } when is_int dtype ->
        Mov { dst; src = Imm_int (x lsl amount) }
    | Shl { dtype; dst; a; amount = 0 } when is_int dtype -> Mov { dst; src = a }
    | Neg { dtype; dst; a = Imm_int x } when is_int dtype -> Mov { dst; src = Imm_int (-x) }
    | i -> i
  in
  let out =
    Array.to_seq body
    |> Seq.filter_map (fun i -> record (fold (rewrite ~op:subst_op ~reg:subst_reg i)))
    |> List.of_seq
  in
  { k with body = out }

(* ------------------------------------------------------------------ *)
(* Common-subexpression elimination                                    *)

let cse ?provenance (k : kernel) =
  let body = Array.of_list k.body in
  let sd =
    match provenance with
    | Some p -> p.single_def
    | None -> (provenance_of_body body).single_def
  in
  (* Canonical dst → replacement dst for dropped duplicates. *)
  let subst : (D.key, reg) Hashtbl.t = Hashtbl.create 32 in
  let subst_reg r = match Hashtbl.find_opt subst (D.key r) with Some r' -> r' | None -> r in
  let subst_op = function Reg r -> Reg (subst_reg r) | o -> o in
  (* Separate tables so stores invalidate only the load values. *)
  let vn_pure : (instr, reg) Hashtbl.t = Hashtbl.create 64 in
  let vn_load : (instr, reg) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  let keep i = out := i :: !out in
  Array.iter
    (fun i0 ->
      let i = rewrite ~op:subst_op ~reg:subst_reg i0 in
      match i with
      | Label _ ->
          (* Join point: values from the fallthrough path are not
             guaranteed on the branch path. *)
          Hashtbl.reset vn_pure;
          Hashtbl.reset vn_load;
          keep i
      | St_global _ | St_global_f16 _ ->
          (* The store may alias any loaded location (in-place updates
             do): every remembered load value dies. *)
          Hashtbl.reset vn_load;
          keep i
      | _ when D.is_side_effecting i -> keep i
      | _ -> (
          match D.def_of i with
          | None -> keep i
          | Some dst ->
              (* Float arithmetic is never deduped: reusing a float value
                 across distant consumers extends its live range through
                 the whole site computation, costing exactly the register
                 demand (occupancy, Sec. VI) the middle-end is buying
                 back, to save a one-cycle rematerializable instruction.
                 Loads of any type are fair game — dedup there is the
                 bandwidth win. *)
              let cseable =
                match i with
                | Ld_global _ | Ld_global_f16 _ -> true
                | _ -> not (is_float dst.rtype)
              in
              if cseable && sd dst && List.for_all sd (D.uses_of i) then begin
                let tbl =
                  match i with Ld_global _ | Ld_global_f16 _ -> vn_load | _ -> vn_pure
                in
                let key_i = with_dst { rtype = dst.rtype; id = -1 } i in
                match Hashtbl.find_opt tbl key_i with
                | Some prior -> Hashtbl.replace subst (D.key dst) prior (* drop [i] *)
                | None ->
                    Hashtbl.replace tbl key_i dst;
                    keep i
              end
              else keep i))
    body;
  { k with body = List.rev !out }

(* ------------------------------------------------------------------ *)
(* mul+add → fma contraction                                           *)

let fma_contract (k : kernel) =
  let body = Array.of_list k.body in
  let n = Array.length body in
  let counts = D.def_counts body in
  let sd = D.single_def counts in
  let ch = D.chains body in
  (* Extended-basic-block ids: a contraction moves the multiply down to
     its consumer, which is only valid when no join point lies between. *)
  let ebb = Array.make n 0 in
  let cur = ref 0 in
  for i = 0 to n - 1 do
    (match body.(i) with Label _ -> incr cur | _ -> ());
    ebb.(i) <- !cur
  done;
  let op_stable = function Reg r -> sd r | Imm_float _ | Imm_int _ -> true in
  for i = 0 to n - 1 do
    match body.(i) with
    | Mul { dtype; dst = t; a; b } when dtype <> Pred && sd t && op_stable a && op_stable b -> (
        match D.uses_of_reg ch t with
        | [ j ] when j > i && ebb.(j) = ebb.(i) -> (
            match body.(j) with
            | Add { dtype = dt2; dst; a = x; b = y } when dt2 = dtype ->
                let other =
                  if x = Reg t then Some y else if y = Reg t then Some x else None
                in
                (match other with
                | Some c ->
                    (* [t] becomes dead; DCE deletes the mul. *)
                    body.(j) <- Fma { dtype; dst; a; b; c }
                | None -> ())
            | _ -> ())
        | _ -> ())
    | _ -> ()
  done;
  { k with body = Array.to_list body }

(* ------------------------------------------------------------------ *)
(* Strength reduction                                                  *)

(* Integer multiplications by power-of-two immediates — the field-stride
   scaling inside every byte-address chain — become shifts.  Exact for
   OCaml ints (two's complement), which is what the VM computes with. *)
let strength_reduce (k : kernel) =
  let log2 = function
    | n when n > 1 && n land (n - 1) = 0 ->
        let rec lg n acc = if n <= 1 then acc else lg (n lsr 1) (acc + 1) in
        Some (lg n 0)
    | _ -> None
  in
  let body =
    List.map
      (fun i ->
        match i with
        | Mul { dtype; dst; a; b } when is_int dtype -> (
            match (b, a) with
            | Imm_int n, _ when log2 n <> None ->
                Shl { dtype; dst; a; amount = Option.get (log2 n) }
            | _, Imm_int n when log2 n <> None ->
                Shl { dtype; dst; a = b; amount = Option.get (log2 n) }
            | _ -> i)
        | i -> i)
      k.body
  in
  { k with body }

(* ------------------------------------------------------------------ *)
(* Dead-code elimination                                               *)

(* Backward sweep: keep side-effecting instructions and definitions of
   registers read later.  One sweep reaches the fixpoint on the forward-
   branching code every producer in this repository emits. *)
let dce (k : kernel) =
  let used : (D.key, unit) Hashtbl.t = Hashtbl.create 64 in
  let body =
    List.fold_left
      (fun acc i ->
        let keep =
          D.is_side_effecting i
          ||
          match D.def_of i with
          | Some d -> Hashtbl.mem used (D.key d)
          | None -> true
        in
        if keep then begin
          List.iter (fun r -> Hashtbl.replace used (D.key r) ()) (D.uses_of i);
          i :: acc
        end
        else acc)
      [] (List.rev k.body)
  in
  { k with body }

(* ------------------------------------------------------------------ *)
(* Code sinking (register-pressure reduction)                          *)

(* The generators front-load work — every component of a leaf is loaded
   when the node is first visited — and CSE stretches ranges further by
   making one early value serve late uses.  Sinking moves a pure,
   single-def instruction down to just before its first use, shrinking
   its live range without changing any computed value: the operands are
   single-def, so they hold the same values at the new point.  Loads
   never cross stores (the destination may alias a source field, as in an
   in-place axpy) and nothing crosses control flow or calls.  Each
   definition moves at most once per invocation, which bounds the work
   and keeps two values wanted by the same consumer from trading places
   forever.

   Sinking is not free: when an operand's last use apart from the moved
   instruction lies above the target, that operand's own live range
   stretches down to the new position.  A move happens only when the
   stretched weight stays within the sunk definition's weight, which
   keeps every move pointwise non-increasing in register pressure — true
   for a leaf load (the address register is shared by the whole
   element's loads) and false deep in an arithmetic chain, where moving
   one add would drag two dying inputs along with it. *)
let sink (k : kernel) =
  let body = Array.of_list k.body in
  let n = Array.length body in
  let counts = D.def_counts body in
  let sd = D.single_def counts in
  let movable i =
    (not (D.is_side_effecting i))
    && (match i with Call _ -> false | _ -> true)
    &&
    match D.def_of i with
    | Some d -> sd d && List.for_all sd (D.uses_of i)
    | None -> false
  in
  (* One backward sweep, moving each definition at most once.  The chains
     are maintained incrementally: a move only renumbers the window
     between the definition and its first use, so only the window
     instructions' recorded positions change — rebuilding the chains (and
     rescanning the body) after every move made this pass quadratic on
     the several-thousand-instruction Dslash kernels. *)
  let ch = D.chains body in
  let remap tbl key ~from ~to_ =
    match Hashtbl.find_opt tbl key with
    | None -> ()
    | Some l ->
        let rec go = function
          | [] -> []
          | x :: tl -> if x = from then to_ :: tl else x :: go tl
        in
        Hashtbl.replace tbl key (List.sort compare (go l))
  in
  let reposition instr ~from ~to_ =
    (match D.def_of instr with
    | Some d -> remap ch.D.def_sites (D.key d) ~from ~to_
    | None -> ());
    List.iter (fun r -> remap ch.D.use_sites (D.key r) ~from ~to_) (D.uses_of instr)
  in
  let do_move p f =
    let instr = body.(p) in
    for q = p + 1 to f - 1 do
      reposition body.(q) ~from:q ~to_:(q - 1)
    done;
    reposition instr ~from:p ~to_:(f - 1);
    for j = p to f - 2 do
      body.(j) <- body.(j + 1)
    done;
    body.(f - 1) <- instr
  in
  let changed = ref false in
  for i = n - 2 downto 0 do
    if movable body.(i) then
      let d = Option.get (D.def_of body.(i)) in
      match D.uses_of_reg ch d with
      | first :: _ when first > i + 1 ->
          let barrier = ref false in
          let is_load =
            match body.(i) with Ld_global _ | Ld_global_f16 _ -> true | _ -> false
          in
          for j = i + 1 to first - 1 do
            match body.(j) with
            | Label _ | Bra _ | Call _ | Ret -> barrier := true
            | (St_global _ | St_global_f16 _) when is_load -> barrier := true
            | _ -> ()
          done;
          (* Weight of operands the move would stretch: any input whose
             last use apart from this instruction lies above the target
             now has to stay live down to it.  Requiring the stretched
             weight to stay within the sunk definition's weight makes
             the move pointwise non-increasing in pressure: over the
             vacated span the definition's units are gone, and the
             stretched units never exceed them. *)
          let cost =
            let rec drop_one = function
              | [] -> []
              | x :: tl -> if x = i then tl else x :: drop_one tl
            in
            List.fold_left
              (fun acc kk ->
                let uses = Option.value ~default:[] (Hashtbl.find_opt ch.D.use_sites kk) in
                let last_other = List.fold_left max (-1) (drop_one uses) in
                if last_other < first - 1 then acc + D.weight (fst kk) else acc)
              0
              (List.sort_uniq compare (List.map D.key (D.uses_of body.(i))))
          in
          (* If everything in the gap already feeds the same consumer,
             the cluster is packed: hopping over those neighbours would
             gain nothing and two such values could swap forever. *)
          let settled = ref true in
          for j = i + 1 to first - 1 do
            match D.def_of body.(j) with
            | Some dj when not (D.is_side_effecting body.(j)) -> (
                match D.uses_of_reg ch dj with
                | f :: _ when f = first -> ()
                | _ -> settled := false)
            | _ -> settled := false
          done;
          if (not !barrier) && (not !settled) && cost <= D.weight d.rtype then begin
            do_move i first;
            changed := true
          end
      | _ -> ()
  done;
  if !changed then { k with body = Array.to_list body } else k

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)

let default_pipeline ?provenance () =
  [
    ("const-fold", constant_fold);
    ("cse", fun k -> cse ?provenance k);
    ("fma-contract", fma_contract);
    ("strength-reduce", strength_reduce);
    ("dce", dce);
    ("sink", sink);
  ]

(* Structural comparison; [compare] (unlike [=]) treats NaN immediates as
   equal to themselves, so the fixpoint loop terminates on any input. *)
let same a b = compare (a : kernel) b = 0

let run ?provenance (k : kernel) =
  let applied = ref [] in
  let round k =
    List.fold_left
      (fun k (name, pass) ->
        let k' = pass k in
        if not (same k k') then
          applied :=
            { pass = name; before = List.length k.body; after = List.length k'.body }
            :: !applied;
        k')
      k
      (default_pipeline ?provenance ())
  in
  (* Later passes expose more work for earlier ones (a contraction frees a
     register, folding feeds strength reduction): iterate to a fixpoint,
     bounded because every pass only shrinks or preserves the body. *)
  let rec go rounds k =
    let k' = round k in
    if same k k' || rounds >= 4 then k' else go (rounds + 1) k'
  in
  let kernel = go 1 k in
  { kernel; applied = List.rev !applied }
