(** Static checks a real assembler would perform: every register is written
    before it is read (the generators emit forward-branching straight-line
    code, so textual order is execution order), branch targets exist, and
    operand/instruction types agree. *)

open Types

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let check_operand_type dtype = function
  | Reg r ->
      if r.rtype <> dtype then
        fail "operand register %s used at type %s" (reg_name r) (dtype_suffix dtype)
  | Imm_float _ ->
      if not (is_float dtype) then fail "float immediate used at type %s" (dtype_suffix dtype)
  | Imm_int _ ->
      if not (is_int dtype) then fail "integer immediate used at type %s" (dtype_suffix dtype)

let kernel (k : kernel) =
  let labels = Hashtbl.create 8 in
  List.iter (function Label l -> Hashtbl.replace labels l () | _ -> ()) k.body;
  let params = Array.of_list k.params in
  let defined = Hashtbl.create 64 in
  let def r = Hashtbl.replace defined (r.rtype, r.id) () in
  let use r =
    if not (Hashtbl.mem defined (r.rtype, r.id)) then
      fail "register %s read before written" (reg_name r)
  in
  let use_op = function Reg r -> use r | Imm_float _ | Imm_int _ -> () in
  let check_arith dtype dst ops =
    if dtype = Pred then fail "arithmetic on predicate registers";
    if dst.rtype <> dtype then
      fail "destination %s does not match instruction type %s" (reg_name dst)
        (dtype_suffix dtype);
    List.iter (fun o -> check_operand_type dtype o) ops;
    List.iter use_op ops;
    def dst
  in
  List.iter
    (fun i ->
      match i with
      | Ld_param { dst; param_index } ->
          if param_index < 0 || param_index >= Array.length params then
            fail "parameter index %d out of range" param_index;
          let p = params.(param_index) in
          if p.ptype <> dst.rtype then
            fail "ld.param type mismatch for %s: %s vs %s" p.pname (dtype_suffix p.ptype)
              (dtype_suffix dst.rtype);
          def dst
      | Ld_global { dtype; dst; addr; offset } ->
          if addr.rtype <> U64 then fail "ld.global address %s is not u64" (reg_name addr);
          if dst.rtype <> dtype then fail "ld.global destination type mismatch";
          if offset < 0 then fail "negative ld.global offset";
          use addr;
          def dst
      | Ld_global_f16 { dst; addr; offset } ->
          if addr.rtype <> U64 then fail "ld.global.f16 address %s is not u64" (reg_name addr);
          if dst.rtype <> F32 then
            fail "ld.global.f16 destination %s is not f32" (reg_name dst);
          if offset < 0 then fail "negative ld.global.f16 offset";
          use addr;
          def dst
      | St_global_f16 { addr; offset; src } ->
          if addr.rtype <> U64 then fail "st.global.f16 address %s is not u64" (reg_name addr);
          (* The source may be f32 or f64: the store itself narrows with a
             single rounding, like cvt.rn.f16.f32/f64. *)
          (match src with
          | Reg r when r.rtype <> F32 && r.rtype <> F64 ->
              fail "st.global.f16 source %s is not a float register" (reg_name r)
          | Reg _ | Imm_float _ | Imm_int _ -> ());
          if offset < 0 then fail "negative st.global.f16 offset";
          use addr;
          use_op src
      | St_global { dtype; addr; offset; src } ->
          if addr.rtype <> U64 then fail "st.global address %s is not u64" (reg_name addr);
          check_operand_type dtype src;
          if offset < 0 then fail "negative st.global offset";
          use addr;
          use_op src
      | Mov { dst; src } ->
          (match src with
          | Reg r when r.rtype <> dst.rtype -> fail "mov class mismatch %s" (reg_name dst)
          | _ -> check_operand_type dst.rtype src);
          use_op src;
          def dst
      | Mov_sreg { dst; _ } ->
          if dst.rtype <> U32 && dst.rtype <> S32 then
            fail "special register moved into non-32-bit register %s" (reg_name dst);
          def dst
      | Add { dtype; dst; a; b } | Sub { dtype; dst; a; b } | Mul { dtype; dst; a; b }
      | Div { dtype; dst; a; b } ->
          check_arith dtype dst [ a; b ]
      | Fma { dtype; dst; a; b; c } -> check_arith dtype dst [ a; b; c ]
      | Shl { dtype; dst; a; amount } ->
          if not (is_int dtype) then fail "shl on non-integer type %s" (dtype_suffix dtype);
          if amount < 0 || amount > 62 then fail "shl amount %d out of range" amount;
          check_arith dtype dst [ a ]
      | Neg { dtype; dst; a } -> check_arith dtype dst [ a ]
      | Cvt { dst; src } ->
          if dst.rtype = src.rtype then fail "cvt between identical types";
          if dst.rtype = Pred || src.rtype = Pred then fail "cvt involving predicates";
          use src;
          def dst
      | Setp { dtype; dst; a; b; _ } ->
          if dst.rtype <> Pred then fail "setp destination %s is not a predicate" (reg_name dst);
          check_operand_type dtype a;
          check_operand_type dtype b;
          use_op a;
          use_op b;
          def dst
      | Bra { label; pred } ->
          if not (Hashtbl.mem labels label) then fail "undefined label %S" label;
          Option.iter
            (fun p ->
              if p.rtype <> Pred then fail "branch predicate %s is not a predicate" (reg_name p);
              use p)
            pred
      | Call { ret; arg; _ } ->
          if not (is_float ret.rtype && is_float arg.rtype) then
            fail "math subroutine call with non-float registers";
          use arg;
          def ret
      | Label _ | Ret -> ())
    k.body

(* The textual-order rule above is exact for the straight-line code the
   generators emit, but optimization passes are allowed to move code, and
   hand-written kernels may branch: check definite assignment on the real
   control-flow graph instead. *)
let dataflow (k : kernel) =
  match Dataflow.undefined_uses k with
  | [] -> ()
  | (i, r) :: _ ->
      fail "register %s may be read before written (instruction %d of %s)" (reg_name r) i k.kname
