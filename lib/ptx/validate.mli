(** Static checks a real assembler would perform: every register is
    written before it is read (the generators emit forward-branching
    straight-line code, so textual order is execution order), branch
    targets exist, and operand/instruction types agree. *)

exception Invalid of string

val kernel : Types.kernel -> unit

(** Definite-assignment check on the control-flow graph (via {!Dataflow}):
    flags any register with a path from the entry to a read that crosses no
    write.  Stricter than the textual rule of {!kernel} on branchy code;
    the engine runs it on every kernel it compiles. *)
val dataflow : Types.kernel -> unit
