(** Cross-kernel fusion: splice several generated streaming kernels into
    one launch.

    The engine's deferred-eval queue hands this module the {e raw}
    (pre-middle-end) kernels of a fusion group, in launch order, together
    with a mapping of every kernel parameter onto a shared slot of the
    fused parameter list.  Fusion concatenates the straight-line bodies
    under a single thread-index prologue and guard, dedupes parameter
    loads by slot, and — where the planner proved a producer→consumer
    dependence on the same site — replaces the consumer's [Ld_global] of
    the intermediate field with the producer's computed value register,
    optionally dropping the producer's [St_global] entirely when the
    planner proved the intermediate is overwritten before any other use.

    The result is a plain {!Types.kernel}; the caller re-runs the
    {!Passes} pipeline over it (CSE then dedupes the address chains the
    sources computed independently) and hands it to the driver JIT like
    any generated kernel.

    Fusion is strictly best-effort: any structural surprise raises
    {!Fusion_failure} and the engine falls back to launching the sources
    separately. *)

exception Fusion_failure of string

(** Per-thread global-traffic savings proven by the splice: bytes of
    consumer loads replaced by register moves, and bytes of producer
    stores dropped as dead.  Multiply by the launch's thread count for
    the whole-lattice figure. *)
type report = { subst_load_bytes : int; dropped_store_bytes : int }

type source = {
  kernel : Types.kernel;
      (** the raw generated kernel (canonical emission order: parameter
          loads, thread-index prologue, guard, straight-line body,
          exit label, ret) *)
  slots : int array;
      (** fused parameter slot for each source parameter index; sources
          sharing a field pointer / neighbour table / site list / work
          count map those positions to the same slot *)
  use_sitelist : bool;
  subst_from : (int * int) list;
      (** [(slot, producer)]: unshifted f64 loads from the field bound at
          [slot] are replaced by the values source [producer] (an earlier
          position in the list) stores to it *)
  drop_stores : bool;
      (** the planner proved this source's destination is overwritten
          later in the same flush with no unsubstituted reads between *)
  reduction : bool;
      (** reduction payload: the body may branch (block-aggregation tail)
          and stores target compact work-item planes and the
          block-partial buffer rather than the thread's site.  Must be
          the last source, never drops stores, and nothing substitutes
          from it; its internal labels are uniquified and its exit
          branches retarget the fused exit. *)
}

val version : int
(** Bumped whenever the splice's output could change for the same
    sources; persistent caches fold it into their keys. *)

val structural_key : nsites:int -> source list -> string
(** A content hash naming the fused artifact: digests of each member's
    printed PTX plus its slot map, substitution edges and drop/reduction
    flags.  Two groups with equal keys fuse to byte-identical kernels,
    so the key is safe as a persistent-cache identity (the engine
    prepends version tags). *)

val fuse : kname:string -> source list -> Types.kernel * report
(** Splice the sources, in order, into one kernel named [kname].  All
    sources must agree on [use_sitelist] (the engine only groups evals of
    one subset).  At most one source may be a [reduction], and it must be
    last: its pointwise partial stores and aggregation tail append after
    the other bodies, with RAW edges into the group's substituted
    registers like any member.  Raises {!Fusion_failure} if any source
    does not match the canonical emission structure or a substitution
    cannot be proven site-exact. *)
