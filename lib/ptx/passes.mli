(** The optimizing middle-end: composable, bit-exact rewrites over
    {!Types.kernel}, run by the engine between code generation and the
    (simulated) driver JIT.  See the implementation header for the exact
    soundness constraints each pass obeys. *)

val version : int
(** Bumped whenever the pipeline's output could change for the same
    input kernel; persistent caches fold it into their keys. *)

(** Value provenance handed down by the emitting builder: the proof CSE
    needs that a register is an SSA value (single static definition).
    When absent, passes recompute it from the body. *)
type provenance = { single_def : Types.reg -> bool }

val provenance_of_body : Types.instr array -> provenance

type report = {
  pass : string;
  before : int;  (** body length before this pass application *)
  after : int;
}

type result = { kernel : Types.kernel; applied : report list }

(** Integer constant folding/propagation (exact) + register copy
    propagation for every class.  Float arithmetic is never folded: float
    immediates round at print time while float registers do not round
    until a store, so folding could change stored bits. *)
val constant_fold : Types.kernel -> Types.kernel

(** Local (extended-basic-block) value numbering over SSA values: dedupes
    repeated leaf/neighbour-table loads and byte-address chains.  Load
    values are invalidated by any store (destination aliasing). *)
val cse : ?provenance:provenance -> Types.kernel -> Types.kernel

(** Fuse a single-use [Mul] into its consuming [Add].  Bit-exact in the
    VM, which evaluates [Fma] unfused; flop counts are preserved
    (fma = 2). *)
val fma_contract : Types.kernel -> Types.kernel

(** Integer multiplication by a power-of-two immediate → [Shl]. *)
val strength_reduce : Types.kernel -> Types.kernel

(** Remove pure instructions whose destination is never read. *)
val dce : Types.kernel -> Types.kernel

(** Move pure single-def instructions down to just before their first
    use, shrinking live ranges (and so allocator register demand) without
    changing any computed value.  Loads never cross stores; nothing
    crosses control flow. *)
val sink : Types.kernel -> Types.kernel

val default_pipeline :
  ?provenance:provenance -> unit -> (string * (Types.kernel -> Types.kernel)) list

(** Run the default pipeline to a (bounded) fixpoint, recording which
    passes changed the kernel. *)
val run : ?provenance:provenance -> Types.kernel -> result
