(** Lattice field containers — the outer [Lattice] level of the type
    hierarchy.

    Host storage is array-of-structures order ({!Layout.Index.Aos}) in a
    Bigarray of the field's precision.  Every field carries a unique id
    (the GPU software cache keys on it) and a version counter bumped on
    host writes so a stale device copy can be detected.  The
    [before_host_read]/[before_host_write] hooks are installed by the
    memory cache: they page device-dirty data back before the host touches
    it — the "data fields are paged out when accessed by CPU code" rule of
    Sec. IV. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Index = Layout.Index

type storage =
  | S16 of (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t
      (** binary16 payloads; {!Half} converts at the access boundary *)
  | S32 of (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t
  | S64 of (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  id : int;
  name : string;
  shape : Shape.t;
  geom : Geometry.t;
  storage : storage;
  mutable version : int;
  mutable before_host_read : t -> unit;
  mutable before_host_write : t -> unit;
}

(* Atomic so fields may be created from concurrent domains (Multi's
   parallel rank sweep materializes reduction temporaries per rank);
   ids must stay unique — the device-side software caches key on them. *)
let next_id = Atomic.make 0

let create ?(name = "") shape geom =
  Shape.validate shape;
  let n = Geometry.volume geom * Shape.dof shape in
  let storage =
    match shape.Shape.prec with
    | Shape.F16 ->
        let a = Bigarray.Array1.create Bigarray.int16_signed Bigarray.c_layout n in
        Bigarray.Array1.fill a 0;
        S16 a
    | Shape.F32 ->
        let a = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout n in
        Bigarray.Array1.fill a 0.0;
        S32 a
    | Shape.F64 ->
        let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
        Bigarray.Array1.fill a 0.0;
        S64 a
  in
  let id = Atomic.fetch_and_add next_id 1 + 1 in
  let name = if name = "" then Printf.sprintf "field%d" id else name in
  {
    id;
    name;
    shape;
    geom;
    storage;
    version = 0;
    before_host_read = (fun _ -> ());
    before_host_write = (fun _ -> ());
  }

let volume t = Geometry.volume t.geom
let dof t = Shape.dof t.shape
let bytes t = volume t * Shape.bytes_per_site t.shape

(* Loads decode exactly; stores round at the storage precision (the
   Bigarray does it for f32, {!Half} for binary16) — the same contract
   the VM's typed load/store opcodes implement, which is what keeps CPU
   and device results bit-identical at every precision. *)
let raw_get t i =
  match t.storage with S16 a -> Half.float_of_bits a.{i} | S32 a -> a.{i} | S64 a -> a.{i}

let raw_set t i v =
  match t.storage with
  | S16 a -> a.{i} <- Half.bits_of_float v
  | S32 a -> a.{i} <- v
  | S64 a -> a.{i} <- v

let offset t ~site ~spin ~color ~reality =
  Index.offset Index.Aos t.shape ~nsites:(volume t) ~site ~spin ~color ~reality

let get t ~site ~spin ~color ~reality =
  t.before_host_read t;
  raw_get t (offset t ~site ~spin ~color ~reality)

let set t ~site ~spin ~color ~reality v =
  t.before_host_write t;
  t.version <- t.version + 1;
  raw_set t (offset t ~site ~spin ~color ~reality) v

(* Whole-site access in canonical component order. *)
let get_site t ~site =
  t.before_host_read t;
  let d = dof t in
  Array.init d (fun k -> raw_get t ((site * d) + k))

let set_site t ~site comps =
  t.before_host_write t;
  t.version <- t.version + 1;
  let d = dof t in
  if Array.length comps <> d then invalid_arg "Field.set_site: component count mismatch";
  Array.iteri (fun k v -> raw_set t ((site * d) + k) v) comps

let fill_constant t v =
  t.before_host_write t;
  t.version <- t.version + 1;
  match t.storage with
  | S16 a -> Bigarray.Array1.fill a (Half.bits_of_float v)
  | S32 a -> Bigarray.Array1.fill a v
  | S64 a -> Bigarray.Array1.fill a v

(* Reproducible noise: each site draws from its own split stream keyed by
   the site index, so the content is decomposition-independent when keyed
   by global site. *)
let fill_gaussian ?(site_key = fun site -> site) t rng =
  t.before_host_write t;
  t.version <- t.version + 1;
  let d = dof t in
  for site = 0 to volume t - 1 do
    let g = Prng.split rng ~index:(site_key site) in
    for k = 0 to d - 1 do
      raw_set t ((site * d) + k) (Prng.gaussian g)
    done
  done

let copy_from ~dst ~src =
  if not (Shape.equal dst.shape src.shape) then invalid_arg "Field.copy_from: shape mismatch";
  if volume dst <> volume src then invalid_arg "Field.copy_from: volume mismatch";
  src.before_host_read src;
  dst.before_host_write dst;
  dst.version <- dst.version + 1;
  match (dst.storage, src.storage) with
  | S16 d, S16 s -> Bigarray.Array1.blit s d
  | S32 d, S32 s -> Bigarray.Array1.blit s d
  | S64 d, S64 s -> Bigarray.Array1.blit s d
  | _ -> assert false

(* Direct storage access for the memory cache (no coherence hooks). *)
let unsafe_storage t = t.storage
