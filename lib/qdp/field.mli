(** Lattice field containers — the outer [Lattice] level of the QDP++ type
    hierarchy.

    Host storage is array-of-structures order ({!Layout.Index.Aos}) in a
    Bigarray of the field's precision.  Every field carries a unique id
    (the GPU software cache keys on it) and a version counter bumped on
    host writes so a stale device copy can be detected.  The
    [before_host_read]/[before_host_write] hooks are installed by the
    memory cache: they page device-dirty data back before the host touches
    it — the "data fields are paged out when accessed by CPU code" rule of
    the paper's Sec. IV. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Index = Layout.Index

type storage =
  | S16 of (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t
      (** binary16 payloads; {!Half} converts at the access boundary *)
  | S32 of (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t
  | S64 of (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  id : int;  (** unique per field; the memory cache keys on it *)
  name : string;
  shape : Shape.t;
  geom : Geometry.t;
  storage : storage;
  mutable version : int;  (** bumped on every host write *)
  mutable before_host_read : t -> unit;  (** coherence hook (memory cache) *)
  mutable before_host_write : t -> unit;
}

val create : ?name:string -> Shape.t -> Geometry.t -> t
(** A zero-initialized field.  [name] is used in diagnostics and AST
    rendering. *)

val volume : t -> int
val dof : t -> int
val bytes : t -> int

val get : t -> site:int -> spin:int -> color:int -> reality:int -> float
(** One real component; triggers the host-read coherence hook. *)

val set : t -> site:int -> spin:int -> color:int -> reality:int -> float -> unit
(** Writes one component; triggers the host-write hook and bumps the
    version. *)

val get_site : t -> site:int -> float array
(** All components of one site in canonical order
    ({!Layout.Index.linear_component}). *)

val set_site : t -> site:int -> float array -> unit

val fill_constant : t -> float -> unit

val fill_gaussian : ?site_key:(int -> int) -> t -> Prng.t -> unit
(** Gaussian noise with one split PRNG stream per site keyed by
    [site_key site] (default: the site index), so content is reproducible
    and decomposition-independent when keyed by global site. *)

val copy_from : dst:t -> src:t -> unit
(** Whole-field copy; shapes and volumes must match. *)

val raw_get : t -> int -> float
(** Direct storage access in AoS word order, bypassing coherence hooks;
    for evaluators that manage coherence themselves.  Reads decode the
    stored word exactly; writes round to the field's storage precision
    (to nearest, ties to even), so assigning across precisions rounds at
    the store. *)

val raw_set : t -> int -> float -> unit

val offset : t -> site:int -> spin:int -> color:int -> reality:int -> int
(** AoS word offset of a component. *)

val unsafe_storage : t -> storage
(** The raw host storage (no hooks); used by the memory cache for layout
    conversion during page-in/page-out. *)
