(** The original implementation's evaluator (QDP++ semantics): walk the
    AST once per lattice site, computing with concrete floats.  In C++ the
    per-site walk is what the inlined expression-template operator() does;
    here it is the {!Linalg.Site} algebra instantiated at
    {!Linalg.Scalar.Float_scalar}.  This evaluator is the reference the
    JIT pipeline is tested against, and the baseline of the CPU
    configurations in Fig. 7. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module FSite = Linalg.Site.Make (Linalg.Scalar.Float_scalar)

let rec eval_site geom (e : Expr.t) site : FSite.value =
  match e with
  | Expr.Leaf f ->
      if Geometry.volume f.Field.geom <> Geometry.volume geom then
        invalid_arg "Eval_cpu: field volume mismatch";
      FSite.of_array f.Field.shape (Field.get_site f ~site)
  | Expr.Const (s, v) | Expr.Param (s, v) -> FSite.of_floats s v
  | Expr.Unary (op, e) -> (
      let v = eval_site geom e site in
      match op with
      | Expr.Neg -> FSite.neg v
      | Expr.Conj -> FSite.conj v
      | Expr.Adj -> FSite.adj v
      | Expr.Transpose -> FSite.transpose v
      | Expr.Times_i -> FSite.times_i v
      | Expr.Trace_color -> FSite.trace_color v
      | Expr.Trace_spin -> FSite.trace_spin v
      | Expr.Real -> FSite.real v
      | Expr.Imag -> FSite.imag v
      | Expr.Norm2_local -> FSite.norm2_local v
      | Expr.Compress -> FSite.compress v
      | Expr.Reconstruct -> FSite.reconstruct v)
  | Expr.Binary (op, a, b) -> (
      let va = eval_site geom a site and vb = eval_site geom b site in
      match op with
      | Expr.Add -> FSite.add va vb
      | Expr.Sub -> FSite.sub va vb
      | Expr.Mul -> FSite.mul va vb
      | Expr.Outer_color -> FSite.outer_color va vb
      | Expr.Inner_local -> FSite.inner_local va vb)
  | Expr.Shift (e, dim, dir) ->
      (* shift(e, dim, FORWARD) at x reads e at x + mu (periodic). *)
      eval_site geom e (Geometry.neighbor geom site ~dim ~dir)
  | Expr.Clover (diag, tri, psi) ->
      FSite.clover_apply ~diag:(eval_site geom diag site) ~tri:(eval_site geom tri site)
        (eval_site geom psi site)

let check_dest dest expr =
  let es = Expr.shape expr in
  if not (Shape.equal_modulo_prec dest.Field.shape es) then
    raise
      (Linalg.Algebra.Type_error
         (Printf.sprintf "assignment shape mismatch: %s = %s"
            (Shape.to_string dest.Field.shape) (Shape.to_string es)))

(* dest = expr on the subset; assignment across precision rounds at store,
   as in Sec. III-D. *)
let eval ?(subset = Subset.All) dest expr =
  check_dest dest expr;
  let geom = dest.Field.geom in
  let dof = Field.dof dest in
  dest.Field.before_host_write dest;
  dest.Field.version <- dest.Field.version + 1;
  let sites = Subset.sites geom subset in
  Array.iter
    (fun site ->
      let v = eval_site geom expr site in
      for k = 0 to dof - 1 do
        Field.raw_set dest ((site * dof) + k) v.FSite.data.(k)
      done)
    sites

(* Deterministic global reductions.  The summation order is the balanced
   radix-8 tree the engine's reduction kernels use (in-kernel block
   aggregation followed by a radix-8 fold chain): each level pads the
   value list to a multiple of 8 with +0.0 and sums every block of 8 as
   ((x0+x1)+(x2+x3)) + ((x4+x5)+(x6+x7)), recursing until one value
   remains.  Sharing one tree makes CPU and engine reductions agree bit
   for bit whenever the per-site values do. *)
let tree_sum xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let fold a =
      let m = Array.length a in
      Array.init ((m + 7) / 8) (fun blk ->
          let g j =
            let i = (8 * blk) + j in
            if i < m then a.(i) else 0.0
          in
          ((g 0 +. g 1) +. (g 2 +. g 3)) +. ((g 4 +. g 5) +. (g 6 +. g 7)))
    in
    let r = ref (fold xs) in
    while Array.length !r > 1 do
      r := fold !r
    done;
    !r.(0)
  end

let norm2 ?(subset = Subset.All) expr =
  let shape = Expr.shape expr in
  ignore shape;
  let geom =
    match Expr.leaves expr with
    | f :: _ -> f.Field.geom
    | [] -> invalid_arg "Eval_cpu.norm2: expression has no fields"
  in
  let sites = Subset.sites geom subset in
  tree_sum
    (Array.map
       (fun site -> (FSite.norm2_local (eval_site geom expr site)).FSite.data.(0))
       sites)

let inner ?(subset = Subset.All) a b =
  let geom =
    match Expr.leaves a @ Expr.leaves b with
    | f :: _ -> f.Field.geom
    | [] -> invalid_arg "Eval_cpu.inner: expressions have no fields"
  in
  let sites = Subset.sites geom subset in
  let ps =
    Array.map
      (fun site ->
        FSite.inner_local (eval_site geom a site) (eval_site geom b site))
      sites
  in
  ( tree_sum (Array.map (fun p -> p.FSite.data.(0)) ps),
    tree_sum (Array.map (fun p -> p.FSite.data.(1)) ps) )

(* Sum every component over the subset; returns the summed element in
   canonical component order. *)
let sum_components ?(subset = Subset.All) expr =
  let shape = Expr.shape expr in
  let geom =
    match Expr.leaves expr with
    | f :: _ -> f.Field.geom
    | [] -> invalid_arg "Eval_cpu.sum_components: expression has no fields"
  in
  let sites = Subset.sites geom subset in
  let vs = Array.map (fun site -> (eval_site geom expr site).FSite.data) sites in
  Array.init (Shape.dof shape) (fun k -> tree_sum (Array.map (fun v -> v.(k)) vs))
