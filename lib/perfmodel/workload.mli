(** The per-trajectory operation count of the production RHMC run
    (V = 40^3 x 256, 2+1 anisotropic clover, m_pi ~ 230 MeV, tau = 0.2).

    The volume-independent structure (solver iterations per trajectory,
    solve count, force evaluations) is measured from this repository's own
    [Hmc] driver on a small lattice and combined with per-site traffic
    constants read off the generated kernels; only the lattice volume is
    scaled to the paper's run.  DESIGN.md documents this substitution. *)

type t = {
  volume : int;
  solver_iterations : int;
  solves : int;
  md_force_evals : int;
  dslash_bytes_per_site : float;
  solver_linalg_bytes_per_site : float;
  qdp_bytes_per_site_per_force : float;
  qdp_kernels_per_force : int;
}

val production : ?solver_iterations:int -> ?solves:int -> ?md_force_evals:int -> unit -> t

val from_trace : solver_iterations:int -> solves:int -> md_force_evals:int -> t
(** Scale a trace measured on a small lattice to the production volume. *)

val at_solver_precision : Layout.Shape.precision -> t -> t
(** Re-derive the solver traffic constants for a sloppy storage precision
    (the baseline constants are double precision): per-site dslash and
    solver-linalg bytes scale with the element width, non-solver QDP
    traffic stays at F64.  Iteration counts are deliberately untouched —
    the extra iterations a mixed-precision scheme pays are measured, not
    modeled. *)
