(** The per-trajectory operation count of the production RHMC run
    (V = 40^3 x 256, 2+1 anisotropic clover, m_pi ~ 230 MeV, tau = 0.2).

    The volume-independent structure (solver iterations per trajectory,
    integrator steps, solve count) is taken from an *actual* RHMC run of
    this repository's [Hmc] driver on a small lattice — recorded through
    [Context.solver_iterations]/[md_steps_taken] — and combined here with
    per-site traffic constants read off the generated kernels.  Only the
    lattice volume is scaled to the paper's run; DESIGN.md documents this
    substitution. *)

type t = {
  volume : int;  (** global lattice sites *)
  solver_iterations : int;  (** Krylov iterations per trajectory (all solves) *)
  solves : int;  (** solver invocations per trajectory (CPU+QUDA pays
                     transfers + layout changes on each) *)
  md_force_evals : int;  (** integrator force evaluations per trajectory *)
  dslash_bytes_per_site : float;  (** bytes one dslash application moves per site *)
  solver_linalg_bytes_per_site : float;  (** axpy/reduction traffic per iteration *)
  qdp_bytes_per_site_per_force : float;
      (** non-solver expression traffic per site per force evaluation
          (forces, staples, momentum/gauge updates, clover, ...) *)
  qdp_kernels_per_force : int;  (** launches per force evaluation *)
}

(* Per-site traffic constants: the dslash and solver-linalg numbers are
   read off this repo's generated kernels (Ptx.Analysis, double precision);
   the per-force expression traffic and the iteration/solve counts are the
   Fig. 7 calibration (see EXPERIMENTS.md) — they bundle everything a
   production force evaluation does (staples, two Hasenbusch terms, the
   rational term with ~10 poles, momentum updates). *)
let production ?(solver_iterations = 127_000) ?(solves = 400) ?(md_force_evals = 96) () =
  {
    volume = 40 * 40 * 40 * 256;
    solver_iterations;
    solves;
    md_force_evals;
    dslash_bytes_per_site = 3200.0;
    solver_linalg_bytes_per_site = 1200.0;
    qdp_bytes_per_site_per_force = 2.088e6;
    qdp_kernels_per_force = 2300;
  }

(* Scale a trace measured on a small lattice to the production volume:
   iteration counts are physics (kept), traffic scales with volume. *)
let from_trace ~solver_iterations ~solves ~md_force_evals =
  production ~solver_iterations ~solves ~md_force_evals ()

(* Re-derive the solver traffic constants for a sloppy storage precision:
   the per-site field bytes of the dslash and solver linear algebra are
   proportional to the element width (the baseline constants above are
   double precision), while the non-solver QDP traffic stays at F64.
   Iteration counts are left to the caller — a reliable-update or
   defect-correction scheme pays extra iterations for the narrower
   storage, and that trade is measured, not modeled. *)
let at_solver_precision prec w =
  let ratio = float_of_int (Layout.Shape.prec_bytes prec) /. 8.0 in
  {
    w with
    dslash_bytes_per_site = w.dslash_bytes_per_site *. ratio;
    solver_linalg_bytes_per_site = w.solver_linalg_bytes_per_site *. ratio;
  }
