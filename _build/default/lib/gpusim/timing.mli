(** Analytic kernel timing.

    The generated kernels are memory-bandwidth bound (Sec. VIII-B), so the
    model is a latency + throughput law,

      time = base_overhead + max(bytes / achieved_bw, flops / peak_flops),

    with achieved bandwidth set by how much memory-level parallelism the
    launch exposes: resident warps (occupancy, limited by registers and
    block geometry) each keep a few load transactions in flight, and DRAM
    latency is hidden only once enough 128-byte lines are outstanding;
    small blocks additionally starve instruction issue.  This reproduces
    the rise-shoulder-plateau curves of Figs. 4/5 (79 % of peak), the weak
    block-size dependence of Sec. VII, and the launch failures the
    auto-tuner probes. *)

type prec = Sp | Dp

val blocks_per_sm : Machine.t -> regs_per_thread:int -> block:int -> int
val resident_threads : Machine.t -> regs_per_thread:int -> block:int -> int

val launch_fits : Machine.t -> regs_per_thread:int -> block:int -> bool
(** False when the block exceeds hardware limits or register pressure
    leaves no resident block — the {!Device.Launch_failure} condition. *)

val bandwidth_factor :
  Machine.t -> analysis:Ptx.Analysis.t -> regs_per_thread:int -> nthreads:int -> block:int -> float
(** Fraction of the achievable bandwidth this launch can draw (0..1]. *)

val kernel_time_ns :
  Machine.t ->
  analysis:Ptx.Analysis.t ->
  regs_per_thread:int ->
  prec:prec ->
  nthreads:int ->
  block:int ->
  float

val sustained_bandwidth :
  Machine.t ->
  analysis:Ptx.Analysis.t ->
  regs_per_thread:int ->
  prec:prec ->
  nthreads:int ->
  block:int ->
  float
(** bytes moved / modeled time — the Figs. 4/5 metric. *)

val transfer_time_ns : Machine.t -> bytes:int -> float
(** PCIe host<->device transfer model. *)
