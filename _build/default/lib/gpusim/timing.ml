(** Analytic kernel timing.

    The generated kernels are memory-bandwidth bound (Sec. VIII-B), so the
    model is a latency + throughput law:

      time = base_overhead + max(bytes / achieved_bw, flops / peak_flops)

    Achieved bandwidth depends on how much memory-level parallelism the
    launch exposes: the resident warps (limited by registers and block
    geometry — occupancy) each keep a few load transactions in flight, and
    the DRAM latency is hidden only once enough 128-byte lines are
    outstanding.  Small blocks additionally starve instruction issue.
    This reproduces the behaviours of Figs. 4-7: rise-shoulder-plateau
    bandwidth curves saturating at 79 % of peak, weak block-size
    dependence above ~64-128 threads, degradation below, and launch
    failures for resource-exhausted configurations (the auto-tuner's
    probe signals, Sec. VII). *)

type prec = Sp | Dp

let blocks_per_sm (m : Machine.t) ~regs_per_thread ~block =
  if block <= 0 || block > m.max_threads_per_block then 0
  else begin
    let by_regs = m.regs_per_sm / max 1 (regs_per_thread * block) in
    let by_threads = m.max_threads_per_sm / block in
    min m.max_blocks_per_sm (min by_regs by_threads)
  end

let resident_threads (m : Machine.t) ~regs_per_thread ~block =
  blocks_per_sm m ~regs_per_thread ~block * block * m.sm_count

let launch_fits (m : Machine.t) ~regs_per_thread ~block =
  block >= 1 && block <= m.max_threads_per_block
  && regs_per_thread <= m.max_regs_per_thread
  && blocks_per_sm m ~regs_per_thread ~block >= 1

(* Fraction of peak bandwidth a launch can draw. *)
let bandwidth_factor (m : Machine.t) ~(analysis : Ptx.Analysis.t) ~regs_per_thread ~nthreads
    ~block =
  let resident = resident_threads m ~regs_per_thread ~block in
  let in_flight_threads = min resident nthreads in
  let resident_per_sm = blocks_per_sm m ~regs_per_thread ~block * block in
  let issue_eff =
    min 1.0 (float_of_int resident_per_sm /. float_of_int m.issue_threads)
  in
  (* Count loads as 128-byte transactions: a fully coalesced warp access is
     one line per 4-byte word, two per 8-byte word.  Each warp keeps a
     handful of loads in flight (limited by its scoreboard). *)
  let loads = max 1 analysis.Ptx.Analysis.instructions in
  let load_count =
    (* loads per thread: bytes / average element size *)
    let b = analysis.Ptx.Analysis.load_bytes in
    if b = 0 then 1 else max 1 (b / 8)
  in
  ignore loads;
  let lines_per_load = if analysis.Ptx.Analysis.load_bytes >= 8 * load_count then 2.0 else 1.0 in
  let warps = float_of_int in_flight_threads /. 32.0 in
  let outstanding = float_of_int (min load_count 6) in
  let lines_in_flight = warps *. outstanding *. lines_per_load in
  let mlp = min 1.0 (lines_in_flight /. float_of_int m.saturation_lines) in
  issue_eff *. mlp

let kernel_time_ns (m : Machine.t) ~(analysis : Ptx.Analysis.t) ~regs_per_thread ~prec ~nthreads
    ~block =
  if nthreads <= 0 then m.base_overhead_ns
  else begin
    let factor = bandwidth_factor m ~analysis ~regs_per_thread ~nthreads ~block in
    let achieved_bw = m.bw_efficiency *. m.peak_bw *. Float.max factor 1e-6 in
    let bytes = float_of_int (nthreads * (analysis.load_bytes + analysis.store_bytes)) in
    (* Math subroutine calls cost tens of flops each. *)
    let flops = float_of_int (nthreads * (analysis.flops + (32 * analysis.calls))) in
    let peak_flops = match prec with Sp -> m.peak_flops_sp | Dp -> m.peak_flops_dp in
    let bw_time = bytes /. achieved_bw *. 1e9 in
    let flop_time = flops /. peak_flops *. 1e9 in
    m.base_overhead_ns +. Float.max bw_time flop_time
  end

let sustained_bandwidth (m : Machine.t) ~analysis ~regs_per_thread ~prec ~nthreads ~block =
  let t = kernel_time_ns m ~analysis ~regs_per_thread ~prec ~nthreads ~block in
  let bytes =
    float_of_int (nthreads * (analysis.Ptx.Analysis.load_bytes + analysis.Ptx.Analysis.store_bytes))
  in
  bytes /. t *. 1e9

let transfer_time_ns (m : Machine.t) ~bytes =
  m.pcie_latency_ns +. (float_of_int bytes /. m.pcie_bw *. 1e9)
