(** The simulated compute-compile driver (Fig. 2's "Linux driver" stage).

    Takes PTX *text* — the same interface boundary the paper relies on —
    parses it, validates it, estimates the hardware register allocation by
    liveness analysis, and compiles it to the VM's executable form.  The
    modeled compile time follows the measured range of Sec. III-D
    (0.05–0.22 s per kernel, growing with kernel size). *)

type prec = Timing.prec = Sp | Dp

type compiled = {
  program : Vm.program;
  analysis : Ptx.Analysis.t;
  regs_per_thread : int;
  prec : prec;
  compile_time : float;  (** modeled driver JIT time, seconds *)
  instructions : int;
  text : string;  (** the source PTX, kept for inspection *)
}

open Ptx.Types

(* Hardware registers are 32-bit: f64/s64/u64 virtual registers occupy two.
   Max-live over the straight-line body (branches are forward-only exits)
   approximates what the SASS allocator would use. *)
let estimate_registers body =
  let weight r =
    match r.rtype with
    | F64 | S64 | U64 -> 2
    | F32 | S32 | U32 -> 1
    | Pred -> 0 (* predicate bank is separate *)
  in
  let body = Array.of_list body in
  let n = Array.length body in
  (* last_use.(reg key) = last instruction index reading the register *)
  let first_def = Hashtbl.create 64 in
  let last_use = Hashtbl.create 64 in
  let key r = (r.rtype, r.id) in
  let def i r = if not (Hashtbl.mem first_def (key r)) then Hashtbl.replace first_def (key r) i in
  let use i r = Hashtbl.replace last_use (key r) i in
  let use_op i = function Reg r -> use i r | _ -> () in
  Array.iteri
    (fun i instr ->
      match instr with
      | Ld_param { dst; _ } -> def i dst
      | Ld_global { dst; addr; _ } ->
          use i addr;
          def i dst
      | St_global { addr; src; _ } ->
          use i addr;
          use_op i src
      | Mov { dst; src } ->
          use_op i src;
          def i dst
      | Mov_sreg { dst; _ } -> def i dst
      | Add { dst; a; b; _ } | Sub { dst; a; b; _ } | Mul { dst; a; b; _ } | Div { dst; a; b; _ }
        ->
          use_op i a;
          use_op i b;
          def i dst
      | Fma { dst; a; b; c; _ } ->
          use_op i a;
          use_op i b;
          use_op i c;
          def i dst
      | Neg { dst; a; _ } ->
          use_op i a;
          def i dst
      | Cvt { dst; src } ->
          use i src;
          def i dst
      | Setp { dst; a; b; _ } ->
          use_op i a;
          use_op i b;
          def i dst
      | Bra { pred; _ } -> Option.iter (use i) pred
      | Call { ret; arg; _ } ->
          use i arg;
          def i ret
      | Label _ | Ret -> ())
    body;
  (* Sweep: +w at def, -w after last use. *)
  let delta = Array.make (n + 1) 0 in
  Hashtbl.iter
    (fun k d ->
      let u = match Hashtbl.find_opt last_use k with Some u -> max u d | None -> d in
      let (rtype, _) = k in
      let w = weight { rtype; id = 0 } in
      delta.(d) <- delta.(d) + w;
      delta.(u + 1) <- delta.(u + 1) - w)
    first_def;
  let live = ref 0 and peak = ref 0 in
  Array.iter
    (fun d ->
      live := !live + d;
      if !live > !peak then peak := !live)
    delta;
  (* The allocator needs scratch beyond the live values, but a real
     compiler also reuses registers far more aggressively than a max-live
     bound over unscheduled code suggests, spilling beyond ~64; cap there
     (Kepler's sweet spot) rather than model spill traffic. *)
  min 64 (max 16 (!peak + 6))

let dominant_prec analysis_body =
  let has_f64 =
    List.exists
      (fun i ->
        match i with
        | Add { dtype = F64; _ } | Sub { dtype = F64; _ } | Mul { dtype = F64; _ }
        | Div { dtype = F64; _ } | Fma { dtype = F64; _ } | Neg { dtype = F64; _ }
        | Ld_global { dtype = F64; _ } | St_global { dtype = F64; _ } ->
            true
        | _ -> false)
      analysis_body
  in
  if has_f64 then Dp else Sp

let compile text =
  let kernel = Ptx.Parse.kernel text in
  Ptx.Validate.kernel kernel;
  let program = Vm.compile kernel in
  let analysis = Ptx.Analysis.kernel kernel in
  let instructions = List.length kernel.body in
  {
    program;
    analysis;
    regs_per_thread = estimate_registers kernel.body;
    prec = dominant_prec kernel.body;
    compile_time = 0.045 +. (7.5e-5 *. float_of_int instructions);
    instructions;
    text;
  }
