lib/gpusim/buffer.ml: Bigarray
