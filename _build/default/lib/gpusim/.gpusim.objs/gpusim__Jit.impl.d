lib/gpusim/jit.ml: Array Hashtbl List Option Ptx Timing Vm
