lib/gpusim/device.mli: Buffer Jit Machine Vm
