lib/gpusim/timing.ml: Float Machine Ptx
