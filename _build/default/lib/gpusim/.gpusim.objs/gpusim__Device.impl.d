lib/gpusim/device.ml: Array Buffer Jit Machine Printf Timing Vm
