lib/gpusim/buffer.mli: Bigarray
