lib/gpusim/machine.ml:
