lib/gpusim/vm.ml: Array Bigarray Buffer Hashtbl Int32 List Option Printf Ptx
