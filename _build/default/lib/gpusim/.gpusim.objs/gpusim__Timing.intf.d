lib/gpusim/timing.mli: Machine Ptx
