lib/gpusim/machine.mli:
