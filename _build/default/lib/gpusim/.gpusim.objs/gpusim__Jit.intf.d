lib/gpusim/jit.mli: Ptx Timing Vm
