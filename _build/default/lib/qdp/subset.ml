(** Site subsets: whole lattice, checkerboards, or arbitrary site lists.

    QDP++ evaluates every statement on a subset; even/odd checkerboards are
    what the preconditioned solvers run on.  The JIT layer materialises
    non-[All] subsets as device site-list buffers and lets the kernel load
    its site index from the list (exactly QDP-JIT's approach). *)

module Geometry = Layout.Geometry

type t = All | Even | Odd | Custom of int array

let sites geom = function
  | All -> Array.init (Geometry.volume geom) (fun i -> i)
  | Even -> Geometry.sites_of_parity geom 0
  | Odd -> Geometry.sites_of_parity geom 1
  | Custom sites ->
      Array.iter
        (fun s ->
          if s < 0 || s >= Geometry.volume geom then invalid_arg "Subset.sites: site out of range")
        sites;
      Array.copy sites

let count geom = function
  | All -> Geometry.volume geom
  | Even -> Array.length (Geometry.sites_of_parity geom 0)
  | Odd -> Array.length (Geometry.sites_of_parity geom 1)
  | Custom sites -> Array.length sites

let is_all = function All -> true | Even | Odd | Custom _ -> false

let cache_tag = function
  | All -> "all"
  | Even | Odd | Custom _ ->
      (* One kernel serves every site-list subset: the list is a parameter. *)
      "list"

let other = function
  | Even -> Odd
  | Odd -> Even
  | All | Custom _ -> invalid_arg "Subset.other: checkerboards only"
