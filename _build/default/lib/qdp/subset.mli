(** Site subsets: whole lattice, checkerboards, or arbitrary site lists.

    QDP++ evaluates every statement on a subset; even/odd checkerboards
    are what preconditioned solvers run on.  The JIT layer materialises
    non-[All] subsets as device site-list buffers and lets the kernel load
    its site index from the list (QDP-JIT's own mechanism). *)

module Geometry = Layout.Geometry

type t = All | Even | Odd | Custom of int array

val sites : Geometry.t -> t -> int array
(** The site indices of the subset, ascending (a fresh array). *)

val count : Geometry.t -> t -> int
val is_all : t -> bool

val cache_tag : t -> string
(** Kernel-cache discriminator: [All] kernels index by thread id, any
    other subset by a site-list parameter (one shared kernel). *)

val other : t -> t
(** The opposite checkerboard; raises on [All]/[Custom]. *)
