(** The original implementation's evaluator (QDP++ semantics): walk the
    AST once per lattice site, computing with concrete floats — what the
    inlined C++ expression-template [operator()] does, here via the
    {!Linalg.Site} algebra at {!Linalg.Scalar.Float_scalar}.  This is the
    reference the JIT pipeline is tested against, and the baseline of the
    CPU configurations in Fig. 7. *)

module FSite : module type of Linalg.Site.Make (Linalg.Scalar.Float_scalar)

val eval_site : Layout.Geometry.t -> Expr.t -> int -> FSite.value
(** Evaluate an expression at one site (shifts follow periodic
    neighbours). *)

val check_dest : Field.t -> Expr.t -> unit
(** Raises {!Linalg.Algebra.Type_error} unless the destination shape
    matches the expression shape up to precision. *)

val eval : ?subset:Subset.t -> Field.t -> Expr.t -> unit
(** [eval dest expr]: dest = expr on the subset; cross-precision
    assignment rounds at the store (Sec. III-D semantics). *)

val norm2 : ?subset:Subset.t -> Expr.t -> float
(** Sum of |components|^2 over the subset, in deterministic site order. *)

val inner : ?subset:Subset.t -> Expr.t -> Expr.t -> float * float
(** <a,b> = sum over sites and components of conj(a) b. *)

val sum_components : ?subset:Subset.t -> Expr.t -> float array
(** Component-wise sum over the subset, canonical component order. *)
