(** Data-parallel expressions — the abstract syntax trees of the paper's
    Fig. 3.

    QDP++ builds these with expression templates (PETE proxy objects
    nested by the C++ compiler); here they are a plain variant.  Smart
    constructors type-check shapes eagerly, mirroring the C++ template
    instantiation errors, so an ill-typed expression never reaches an
    evaluator.  Leaves refer to fields; [Shift] is the stencil node
    displacing its subtree by one site along a dimension (Sec. II-C). *)

module Shape = Layout.Shape

type unop =
  | Neg
  | Conj
  | Adj  (** Hermitian conjugate (matrix structure only) *)
  | Transpose
  | Times_i
  | Trace_color
  | Trace_spin
  | Real
  | Imag
  | Norm2_local  (** per-site |.|^2 (powers the norm2 reduction) *)
  | Compress  (** SU(3) -> 2-row compressed gauge storage (Sec. VIII-C) *)
  | Reconstruct  (** compressed -> full SU(3) via conjugate cross product *)

type binop =
  | Add
  | Sub
  | Mul  (** shape-directed: the spin and color levels contract independently *)
  | Outer_color  (** traceSpin(outerProduct(a, adj b)) — force terms *)
  | Inner_local  (** per-site <a,b> (powers the innerProduct reduction) *)

type t =
  | Leaf of Field.t
  | Const of Shape.t * float array
      (** compile-time element (e.g. gamma matrices): folded into the
          generated code, part of the kernel-cache key *)
  | Param of Shape.t * float array
      (** runtime scalar leaf (solver coefficients): becomes a kernel
          parameter, so kernels are reused across values *)
  | Unary of unop * t
  | Binary of binop * t * t
  | Shift of t * int * int  (** subtree, dimension, direction (+-1) *)
  | Clover of t * t * t  (** diag, tri, fermion (the Sec. VI-A custom op) *)

val shape : t -> Shape.t
(** Result shape; raises {!Linalg.Algebra.Type_error} on ill-typed trees. *)

(** {2 Smart constructors} (all shape-check eagerly) *)

val field : Field.t -> t
val const : Shape.t -> float array -> t
val const_real : ?prec:Shape.precision -> float -> t
(** Runtime scalar parameter (kernel reuse across values). *)

val const_complex : ?prec:Shape.precision -> float -> float -> t
val embedded_real : ?prec:Shape.precision -> float -> t
(** Compile-time scalar, folded into the kernel (and its cache key). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val outer_color : t -> t -> t
val neg : t -> t
val conj : t -> t
val adj : t -> t
val transpose : t -> t
val times_i : t -> t
val trace_color : t -> t
val trace_spin : t -> t
val real : t -> t
val imag : t -> t
val norm2_local : t -> t
val compress : t -> t
val reconstruct : t -> t
val inner_local : t -> t -> t
val shift : t -> dim:int -> dir:int -> t
(** [shift e ~dim ~dir] at x evaluates [e] at [x + dir * mu_dim]
    (periodic); QDP++'s [shift(e, FORWARD/BACKWARD, dim)]. *)

val clover : diag:t -> tri:t -> t -> t

(** QDP++-style infix operators. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( !! ) : Field.t -> t
end

val leaves : t -> Field.t list
(** Distinct referenced fields in first-visit order: what the memory cache
    must make device-resident before a launch (Sec. IV). *)

val params : t -> (Shape.t * float array) list
(** Runtime scalar parameters in traversal order; the engine binds their
    current values in the same order at launch time. *)

val shift_dirs : t -> (int * int) list
(** The (dim, dir) pairs used by shifts anywhere in the expression —
    the neighbour tables the kernel needs. *)

val has_shift : t -> bool

val structure_key : dest_shape:Shape.t -> t -> string
(** Kernel-cache key: field identities are erased (a leaf contributes its
    shape and its slot in the deduplicated leaf list — the slot matters,
    since the kernel binds one pointer per distinct field), and runtime
    scalar values are erased; embedded constants and the whole tree shape
    are included. *)

val render : ?indent:int -> t -> string
(** Human-readable AST (the Fig. 3 tree). *)

val unop_name : unop -> string
val binop_name : binop -> string
