(** Data-parallel expressions — the abstract syntax trees of Fig. 3.

    QDP++ builds these with expression templates (PETE proxy objects nested
    by the C++ compiler); here they are a plain variant.  Smart
    constructors type-check shapes eagerly, mirroring the C++ template
    instantiation errors, so an ill-typed expression never reaches an
    evaluator.  Leaves refer to fields; [Shift] is the map/stencil node
    displacing its subtree by one site along a dimension (Sec. II-C). *)

module Shape = Layout.Shape

type unop =
  | Neg
  | Conj
  | Adj
  | Transpose
  | Times_i
  | Trace_color
  | Trace_spin
  | Real
  | Imag
  | Norm2_local
      (** per-site |.|^2 (internal: powers the norm2 reduction) *)
  | Compress  (** SU(3) -> 2-row compressed gauge storage *)
  | Reconstruct  (** compressed -> full SU(3) via conj cross product *)

type binop = Add | Sub | Mul | Outer_color | Inner_local

type t =
  | Leaf of Field.t
  | Const of Shape.t * float array
      (** compile-time element (e.g. gamma matrices): folded into the
          generated code, part of the kernel-cache key *)
  | Param of Shape.t * float array
      (** runtime scalar leaf (solver coefficients): becomes a kernel
          parameter, so kernels are reused across values *)
  | Unary of unop * t
  | Binary of binop * t * t
  | Shift of t * int * int  (** subtree, dimension, direction (+-1) *)
  | Clover of t * t * t  (** diag, tri, fermion (Sec. VI-A) *)

let rec shape = function
  | Leaf f -> f.Field.shape
  | Const (s, _) | Param (s, _) -> s
  | Unary (op, e) -> (
      let s = shape e in
      match op with
      | Neg | Conj | Times_i -> s
      | Adj -> Linalg.Algebra.adj_shape s
      | Transpose -> Linalg.Algebra.transpose_shape s
      | Trace_color -> Linalg.Algebra.trace_color_shape s
      | Trace_spin -> Linalg.Algebra.trace_spin_shape s
      | Real | Imag -> Linalg.Algebra.real_shape s
      | Norm2_local -> Shape.real_scalar s.Shape.prec
      | Compress -> Linalg.Algebra.compress_shape s
      | Reconstruct -> Linalg.Algebra.reconstruct_shape s)
  | Binary (op, a, b) -> (
      let sa = shape a and sb = shape b in
      match op with
      | Add | Sub -> Linalg.Algebra.add_shape sa sb
      | Mul -> Linalg.Algebra.mul_shape sa sb
      | Outer_color -> Linalg.Algebra.outer_color_shape sa sb
      | Inner_local ->
          if not (Shape.equal_modulo_prec sa sb) then
            raise (Linalg.Algebra.Type_error "inner_local: shape mismatch");
          Shape.complex_scalar (Shape.promote_prec sa.Shape.prec sb.Shape.prec))
  | Shift (e, _, _) -> shape e
  | Clover (diag, tri, psi) ->
      Linalg.Algebra.clover_shapes ~diag:(shape diag) ~tri:(shape tri) ~psi:(shape psi)

(* Smart constructors: type-check at construction time. *)
let check e =
  ignore (shape e);
  e

let field f = Leaf f
let const s v =
  if Array.length v <> Shape.dof s then invalid_arg "Expr.const: component count mismatch";
  Const (s, Array.copy v)

let const_real ?(prec = Shape.F64) x = Param (Shape.real_scalar prec, [| x |])
let const_complex ?(prec = Shape.F64) re im = Param (Shape.complex_scalar prec, [| re; im |])

let embedded_real ?(prec = Shape.F64) x = Const (Shape.real_scalar prec, [| x |])

let add a b = check (Binary (Add, a, b))
let sub a b = check (Binary (Sub, a, b))
let mul a b = check (Binary (Mul, a, b))
let outer_color a b = check (Binary (Outer_color, a, b))
let neg e = check (Unary (Neg, e))
let conj e = check (Unary (Conj, e))
let adj e = check (Unary (Adj, e))
let transpose e = check (Unary (Transpose, e))
let times_i e = check (Unary (Times_i, e))
let trace_color e = check (Unary (Trace_color, e))
let trace_spin e = check (Unary (Trace_spin, e))
let real e = check (Unary (Real, e))
let imag e = check (Unary (Imag, e))
let norm2_local e = check (Unary (Norm2_local, e))
let compress e = check (Unary (Compress, e))
let reconstruct e = check (Unary (Reconstruct, e))
let inner_local a b = check (Binary (Inner_local, a, b))

let shift e ~dim ~dir =
  if dir <> 1 && dir <> -1 then invalid_arg "Expr.shift: dir must be +-1";
  if dim < 0 then invalid_arg "Expr.shift: negative dimension";
  check (Shift (e, dim, dir))

let clover ~diag ~tri psi = check (Clover (diag, tri, psi))

(* Operators for expression-heavy call sites (the QDP++ infix style). *)
module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( ~- ) = neg
  let ( !! ) = field
end

(* All distinct leaf fields, in first-visit order: the references the memory
   cache must make device-resident before a launch (Sec. IV). *)
let leaves e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Leaf f ->
        if not (Hashtbl.mem seen f.Field.id) then begin
          Hashtbl.replace seen f.Field.id ();
          out := f :: !out
        end
    | Const _ | Param _ -> ()
    | Unary (_, e) -> go e
    | Binary (_, a, b) ->
        go a;
        go b
    | Shift (e, _, _) -> go e
    | Clover (a, b, c) ->
        go a;
        go b;
        go c
  in
  go e;
  List.rev !out

(* Runtime scalar parameters in deterministic traversal order; the engine
   binds their current values in this same order at launch time. *)
let params e =
  let out = ref [] in
  let rec go = function
    | Leaf _ | Const _ -> ()
    | Param (s, v) -> out := (s, v) :: !out
    | Unary (_, e) -> go e
    | Binary (_, a, b) ->
        go a;
        go b
    | Shift (e, _, _) -> go e
    | Clover (a, b, c) ->
        go a;
        go b;
        go c
  in
  go e;
  List.rev !out

(* Shift (dim, dir) pairs used anywhere in the expression: the neighbour
   tables a kernel will need. *)
let shift_dirs e =
  let seen = Hashtbl.create 8 in
  let rec go = function
    | Leaf _ | Const _ | Param _ -> ()
    | Unary (_, e) -> go e
    | Binary (_, a, b) ->
        go a;
        go b
    | Shift (e, dim, dir) ->
        Hashtbl.replace seen (dim, dir) ();
        go e
    | Clover (a, b, c) ->
        go a;
        go b;
        go c
  in
  go e;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

let has_shift e = shift_dirs e <> []

let unop_name = function
  | Neg -> "neg"
  | Conj -> "conj"
  | Adj -> "adj"
  | Transpose -> "transpose"
  | Times_i -> "timesI"
  | Trace_color -> "traceColor"
  | Trace_spin -> "traceSpin"
  | Real -> "real"
  | Imag -> "imag"
  | Norm2_local -> "localNorm2"
  | Compress -> "compress"
  | Reconstruct -> "reconstruct12"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Outer_color -> "outerColor"
  | Inner_local -> "localInnerProduct"

(* Structural key for the kernel cache: field *identities* are erased (a
   leaf contributes its shape and its positional slot in the deduplicated
   leaf list), so the same kernel is reused for any fields of matching
   structure.  The slot matters: the generated kernel binds one pointer per
   *distinct* field, so `b + D b` and `b + D x` need different kernels even
   though their trees look alike. *)
let structure_key ~dest_shape e =
  let slot_of =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i (f : Field.t) -> Hashtbl.replace tbl f.Field.id i) (leaves e);
    fun (f : Field.t) -> Hashtbl.find tbl f.Field.id
  in
  let buf = Buffer.create 128 in
  let add = Buffer.add_string buf in
  let rec go = function
    | Leaf f -> add (Printf.sprintf "L%d[%s]" (slot_of f) (Shape.to_string f.Field.shape))
    | Const (s, v) ->
        add (Printf.sprintf "K[%s;" (Shape.to_string s));
        Array.iter (fun x -> add (Printf.sprintf "%h," x)) v;
        add "]"
    | Param (s, _) -> add (Printf.sprintf "P[%s]" (Shape.to_string s))
    | Unary (op, e) ->
        add (unop_name op);
        add "(";
        go e;
        add ")"
    | Binary (op, a, b) ->
        add "(";
        go a;
        add (binop_name op);
        go b;
        add ")"
    | Shift (e, dim, dir) ->
        add (Printf.sprintf "shift%d%+d(" dim dir);
        go e;
        add ")"
    | Clover (a, b, c) ->
        add "clover(";
        go a;
        add ",";
        go b;
        add ",";
        go c;
        add ")"
  in
  add (Shape.to_string dest_shape);
  add "=";
  go e;
  Buffer.contents buf

(* Human-readable AST rendering (the Fig. 3 tree), for the quickstart
   example and debugging. *)
let rec render ?(indent = 0) e =
  let pad = String.make (2 * indent) ' ' in
  match e with
  | Leaf f -> Printf.sprintf "%sLattice %s : %s\n" pad f.Field.name (Shape.to_string f.Field.shape)
  | Const (s, _) -> Printf.sprintf "%sConst : %s\n" pad (Shape.to_string s)
  | Param (s, _) -> Printf.sprintf "%sScalarParam : %s\n" pad (Shape.to_string s)
  | Unary (op, e) -> Printf.sprintf "%sUnaryNode (%s)\n%s" pad (unop_name op) (render ~indent:(indent + 1) e)
  | Binary (op, a, b) ->
      Printf.sprintf "%sBinaryNode (%s)\n%s%s" pad (binop_name op)
        (render ~indent:(indent + 1) a)
        (render ~indent:(indent + 1) b)
  | Shift (e, dim, dir) ->
      Printf.sprintf "%sUnaryNode (Map: shift dim=%d dir=%+d)\n%s" pad dim dir
        (render ~indent:(indent + 1) e)
  | Clover (a, b, c) ->
      Printf.sprintf "%sCloverNode\n%s%s%s" pad
        (render ~indent:(indent + 1) a)
        (render ~indent:(indent + 1) b)
        (render ~indent:(indent + 1) c)
