lib/qdp/eval_cpu.ml: Array Expr Field Layout Linalg Printf Subset
