lib/qdp/expr.mli: Field Layout
