lib/qdp/subset.mli: Layout
