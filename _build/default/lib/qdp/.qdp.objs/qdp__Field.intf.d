lib/qdp/field.mli: Bigarray Layout Prng
