lib/qdp/expr.ml: Array Buffer Field Hashtbl Layout Linalg List Printf String
