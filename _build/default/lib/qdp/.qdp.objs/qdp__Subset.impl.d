lib/qdp/subset.ml: Array Layout
