lib/qdp/eval_cpu.mli: Expr Field Layout Linalg Subset
