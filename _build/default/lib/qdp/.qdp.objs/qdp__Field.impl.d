lib/qdp/field.ml: Array Bigarray Layout Printf Prng
