lib/layout/shape.mli:
