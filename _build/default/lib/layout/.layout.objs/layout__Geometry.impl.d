lib/layout/geometry.ml: Array
