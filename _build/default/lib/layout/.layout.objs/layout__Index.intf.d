lib/layout/index.mli: Bigarray Shape
