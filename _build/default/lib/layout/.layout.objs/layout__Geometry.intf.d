lib/layout/geometry.mli:
