lib/layout/index.ml: Bigarray Shape
