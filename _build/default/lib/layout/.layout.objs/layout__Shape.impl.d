lib/layout/shape.ml: Printf
