type t = { dims : int array; volume : int }

let create dims =
  if Array.length dims = 0 then invalid_arg "Geometry.create: empty dimension list";
  Array.iter (fun d -> if d <= 0 then invalid_arg "Geometry.create: non-positive extent") dims;
  { dims = Array.copy dims; volume = Array.fold_left ( * ) 1 dims }

let nd g = Array.length g.dims
let volume g = g.volume
let dims g = Array.copy g.dims

let coord_of_site g s =
  if s < 0 || s >= g.volume then invalid_arg "Geometry.coord_of_site: site out of range";
  let nd = Array.length g.dims in
  let coord = Array.make nd 0 in
  let rest = ref s in
  for d = 0 to nd - 1 do
    coord.(d) <- !rest mod g.dims.(d);
    rest := !rest / g.dims.(d)
  done;
  coord

let site_of_coord g coord =
  let nd = Array.length g.dims in
  if Array.length coord <> nd then invalid_arg "Geometry.site_of_coord: dimension mismatch";
  let s = ref 0 in
  for d = nd - 1 downto 0 do
    let c = ((coord.(d) mod g.dims.(d)) + g.dims.(d)) mod g.dims.(d) in
    s := (!s * g.dims.(d)) + c
  done;
  !s

let neighbor g s ~dim ~dir =
  if dim < 0 || dim >= Array.length g.dims then invalid_arg "Geometry.neighbor: bad dimension";
  if dir <> 1 && dir <> -1 then invalid_arg "Geometry.neighbor: dir must be +-1";
  let coord = coord_of_site g s in
  coord.(dim) <- coord.(dim) + dir;
  site_of_coord g coord

let parity g s = Array.fold_left ( + ) 0 (coord_of_site g s) land 1

let sites_of_parity g p =
  if p <> 0 && p <> 1 then invalid_arg "Geometry.sites_of_parity: parity must be 0 or 1";
  let out = ref [] in
  for s = volume g - 1 downto 0 do
    if parity g s = p then out := s :: !out
  done;
  Array.of_list !out

(* Sites whose neighbour along [dim] in direction [dir] wraps around: a shift
   pulling from that neighbour needs off-node data exactly there. *)
let face_sites g ~dim ~dir =
  if dim < 0 || dim >= Array.length g.dims then invalid_arg "Geometry.face_sites: bad dimension";
  if dir <> 1 && dir <> -1 then invalid_arg "Geometry.face_sites: dir must be +-1";
  let edge = if dir = 1 then g.dims.(dim) - 1 else 0 in
  let out = ref [] in
  for s = volume g - 1 downto 0 do
    if (coord_of_site g s).(dim) = edge then out := s :: !out
  done;
  Array.of_list !out

let inner_sites g ~dim ~dir =
  if dim < 0 || dim >= Array.length g.dims then invalid_arg "Geometry.inner_sites: bad dimension";
  if dir <> 1 && dir <> -1 then invalid_arg "Geometry.inner_sites: dir must be +-1";
  let edge = if dir = 1 then g.dims.(dim) - 1 else 0 in
  let out = ref [] in
  for s = volume g - 1 downto 0 do
    if (coord_of_site g s).(dim) <> edge then out := s :: !out
  done;
  Array.of_list !out

let fold_coords g ~init ~f =
  let nd = Array.length g.dims in
  let coord = Array.make nd 0 in
  let acc = ref init in
  for _s = 0 to volume g - 1 do
    acc := f !acc coord;
    (* Increment the coordinate counter, x fastest. *)
    let d = ref 0 in
    let carry = ref true in
    while !carry && !d < nd do
      coord.(!d) <- coord.(!d) + 1;
      if coord.(!d) = g.dims.(!d) then begin
        coord.(!d) <- 0;
        incr d
      end
      else carry := false
    done
  done;
  !acc
