(** Data layout functions: where component (site, spin, color, reality)
    lives inside a field's flat storage.

    The paper's central data-layout optimization (Sec. III-B): the host
    keeps an array-of-structures order while the device uses the coalesced
    structure-of-arrays order

      I(iV,iS,iC,iR) = ((iR * IC + iC) * IS + iS) * IV + iV

    so that adjacent CUDA threads (adjacent iV) touch adjacent words. *)

type scheme =
  | Aos  (** site-slowest: ((iV*IS + iS)*IC + iC)*IR + iR — host order *)
  | Soa  (** site-fastest: ((iR*IC + iC)*IS + iS)*IV + iV — device order *)

val offset :
  scheme -> Shape.t -> nsites:int -> site:int -> spin:int -> color:int -> reality:int -> int
(** Word offset of one real number inside the field's flat array.  All
    indices are range-checked. *)

val linear_component : Shape.t -> spin:int -> color:int -> reality:int -> int
(** Canonical (layout-independent) component number
    [(spin * IC + color) * IR + reality]; used by site-level evaluators. *)

val component_of_linear : Shape.t -> int -> int * int * int
(** Inverse of {!linear_component}. *)

val convert :
  src:('a, 'b, Bigarray.c_layout) Bigarray.Array1.t ->
  dst:('a, 'b, Bigarray.c_layout) Bigarray.Array1.t ->
  from_scheme:scheme ->
  to_scheme:scheme ->
  Shape.t ->
  nsites:int ->
  unit
(** Re-order a field between layouts.  [src] and [dst] must both have
    [nsites * dof] elements; raises [Invalid_argument] otherwise. *)
