(** Hypercubic lattice geometry: site indexing, neighbours, checkerboards.

    Sites are numbered lexicographically with the first (x) dimension
    fastest.  Used both for the global lattice and for the per-rank
    sub-grids of the domain decomposition. *)

type t = private { dims : int array; volume : int }

val create : int array -> t
(** [create dims] builds an Nd-dimensional geometry.  All extents must be
    positive; raises [Invalid_argument] otherwise. *)

val nd : t -> int
val volume : t -> int
val dims : t -> int array
(** A fresh copy of the extents array. *)

val coord_of_site : t -> int -> int array
val site_of_coord : t -> int array -> int
(** Inverse maps between the lexicographic site index and coordinates.
    [site_of_coord] reduces coordinates modulo the extents (periodic). *)

val neighbor : t -> int -> dim:int -> dir:int -> int
(** [neighbor g s ~dim ~dir] is the site one step from [s] along [dim]
    ([dir] = +1 forward, -1 backward) with periodic wrap-around. *)

val parity : t -> int -> int
(** Checkerboard parity (sum of coordinates mod 2) of a site. *)

val sites_of_parity : t -> int -> int array
(** All site indices of the given parity, ascending. *)

val face_sites : t -> dim:int -> dir:int -> int array
(** Sites on the face that *sends* data for a shift that pulls from
    direction [dir] along [dim]: the boundary slice whose neighbour in
    [dir] wraps around.  Ascending order. *)

val inner_sites : t -> dim:int -> dir:int -> int array
(** Complement of {!face_sites} receiving no off-node data for that shift. *)

val fold_coords : t -> init:'a -> f:('a -> int array -> 'a) -> 'a
(** Fold over all coordinates in site order (the array passed to [f] is
    reused; copy it if retained). *)
