type scheme = Aos | Soa

let check_ranges shape ~nsites ~site ~spin ~color ~reality =
  let is_ = Shape.spin_extent shape.Shape.spin in
  let ic = Shape.color_extent shape.Shape.color in
  let ir = Shape.reality_extent shape.Shape.reality in
  if site < 0 || site >= nsites then invalid_arg "Index.offset: site out of range";
  if spin < 0 || spin >= is_ then invalid_arg "Index.offset: spin out of range";
  if color < 0 || color >= ic then invalid_arg "Index.offset: color out of range";
  if reality < 0 || reality >= ir then invalid_arg "Index.offset: reality out of range"

let offset scheme shape ~nsites ~site ~spin ~color ~reality =
  check_ranges shape ~nsites ~site ~spin ~color ~reality;
  let is_ = Shape.spin_extent shape.Shape.spin in
  let ic = Shape.color_extent shape.Shape.color in
  let ir = Shape.reality_extent shape.Shape.reality in
  match scheme with
  | Aos -> ((((site * is_) + spin) * ic + color) * ir) + reality
  | Soa -> ((((reality * ic) + color) * is_ + spin) * nsites) + site

let linear_component shape ~spin ~color ~reality =
  let ic = Shape.color_extent shape.Shape.color in
  let ir = Shape.reality_extent shape.Shape.reality in
  (((spin * ic) + color) * ir) + reality

let component_of_linear shape lin =
  let ic = Shape.color_extent shape.Shape.color in
  let ir = Shape.reality_extent shape.Shape.reality in
  let reality = lin mod ir in
  let rest = lin / ir in
  let color = rest mod ic in
  let spin = rest / ic in
  (spin, color, reality)

let convert ~src ~dst ~from_scheme ~to_scheme shape ~nsites =
  let dof = Shape.dof shape in
  let expected = nsites * dof in
  if Bigarray.Array1.dim src <> expected then invalid_arg "Index.convert: src size mismatch";
  if Bigarray.Array1.dim dst <> expected then invalid_arg "Index.convert: dst size mismatch";
  let is_ = Shape.spin_extent shape.Shape.spin in
  let ic = Shape.color_extent shape.Shape.color in
  let ir = Shape.reality_extent shape.Shape.reality in
  for site = 0 to nsites - 1 do
    for spin = 0 to is_ - 1 do
      for color = 0 to ic - 1 do
        for reality = 0 to ir - 1 do
          let i = offset from_scheme shape ~nsites ~site ~spin ~color ~reality in
          let o = offset to_scheme shape ~nsites ~site ~spin ~color ~reality in
          Bigarray.Array1.unsafe_set dst o (Bigarray.Array1.unsafe_get src i)
        done
      done
    done
  done
