(** Mixed-precision defect-correction solver (the QUDA strategy of
    Ref. 2: "solving lattice QCD systems of equations using mixed
    precision solvers on GPUs").

    The outer loop keeps a double-precision residual; each correction is
    obtained by an inner single-precision CG on the normal operator.
    Cross-precision assignments round at the store, exactly the implicit
    conversion semantics of the expression layer. *)

module Shape = Layout.Shape
module Field = Qdp.Field
module Expr = Qdp.Expr

type result = { outer_iterations : int; inner_iterations : int; residual : float; converged : bool }

(* [ops64]/[op64] work at F64, [ops32]/[op32] at F32 on the same geometry. *)
let solve (ops64 : Ops.t) (op64 : Ops.linop) (ops32 : Ops.t) (op32 : Ops.linop) ~b ~x
    ?(tol = 1e-10) ?(inner_tol = 1e-5) ?(max_outer = 50) ?(max_inner = 500) () =
  if ops32.Ops.shape.Shape.prec <> Shape.F32 then
    invalid_arg "Mixed.solve: inner ops must be single precision";
  let f = Expr.field in
  let r = ops64.Ops.fresh () and tmp = ops64.Ops.fresh () and e64 = ops64.Ops.fresh () in
  let r32 = ops32.Ops.fresh () and e32 = ops32.Ops.fresh () in
  let b_norm = sqrt (ops64.Ops.norm2 (f b)) in
  let scale = if b_norm > 0.0 then b_norm else 1.0 in
  let outer = ref 0 and inner = ref 0 in
  op64.Ops.apply tmp x;
  ops64.Ops.assign r (Expr.sub (f b) (f tmp));
  let res = ref (sqrt (ops64.Ops.norm2 (f r))) in
  let converged = ref (!res <= tol *. scale) in
  let stagnated = ref false in
  while (not !converged) && (not !stagnated) && !outer < max_outer do
    incr outer;
    (* Truncate the residual to single precision and solve A e = r there. *)
    ops32.Ops.assign r32 (f r);
    Field.fill_constant e32 0.0;
    let inner_result = Cg.solve ops32 op32 ~b:r32 ~x:e32 ~tol:inner_tol ~max_iter:max_inner () in
    inner := !inner + inner_result.Cg.iterations;
    (* Promote the correction and update solution + true residual. *)
    ops64.Ops.assign e64 (f e32);
    ops64.Ops.assign x (Expr.add (f x) (f e64));
    op64.Ops.apply tmp x;
    ops64.Ops.assign r (Expr.sub (f b) (f tmp));
    let new_res = sqrt (ops64.Ops.norm2 (f r)) in
    if new_res >= !res && !outer > 1 then
      (* Stagnation at the single-precision floor: stop honestly. *)
      stagnated := true;
    res := new_res;
    if !res <= tol *. scale then converged := true
  done;
  { outer_iterations = !outer; inner_iterations = !inner; residual = !res /. scale; converged = !converged }
