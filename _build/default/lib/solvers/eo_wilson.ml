(** Even-odd (red-black) preconditioned Wilson solves.

    The hopping term only connects opposite parities, so with
    M = 1 - kappa D,

      M = [ 1           -kappa D_eo ]
          [ -kappa D_oe  1          ]

    and the Schur complement on the even checkerboard is

      Mhat = 1 - kappa^2 D_eo D_oe.

    Solving [Mhat x_e = b_e + kappa D_eo b_o] and reconstructing
    [x_o = b_o + kappa D_oe x_e] halves the solve volume and improves the
    condition number — the standard production preconditioning in Chroma,
    and what the QDP-JIT subset (site-list) kernels exist for.  Mhat is
    gamma5-Hermitian on the even sublattice, so CG runs on its normal
    equations with the same gamma5 trick as the full operator. *)

module Field = Qdp.Field
module Expr = Qdp.Expr
module Subset = Qdp.Subset

type result = { iterations : int; residual : float; converged : bool }

let f = Expr.field

(* Mhat as a linop over the even checkerboard.  The odd sites of [scratch]
   hold kappa D_oe src between the two half-applications; even-subset
   kernels only read odd neighbours, so stale even entries are harmless. *)
let schur_op (ops : Ops.t) ?(coeffs = [||]) ~kappa u =
  let scratch = ops.Ops.fresh () in
  let apply dest src =
    ops.Ops.assign ~subset:Subset.Odd scratch
      (Expr.mul (Expr.const_real kappa) (Lqcd.Wilson.hopping_expr ~coeffs u src));
    ops.Ops.assign ~subset:Subset.Even dest
      (Expr.sub (f src)
         (Expr.mul (Expr.const_real kappa) (Lqcd.Wilson.hopping_expr ~coeffs u scratch)))
  in
  { Ops.apply; tag = "schur(1 - k^2 Deo Doe)" }

(* gamma5 Mhat gamma5 Mhat, restricted to even sites. *)
let schur_normal_op (ops : Ops.t) ?coeffs ~kappa u =
  let mhat = schur_op ops ?coeffs ~kappa u in
  let t1 = ops.Ops.fresh () and t2 = ops.Ops.fresh () and t3 = ops.Ops.fresh () in
  let apply dest src =
    mhat.Ops.apply t1 src;
    ops.Ops.assign ~subset:Subset.Even t2 (Lqcd.Wilson.gamma5_expr (f t1));
    mhat.Ops.apply t3 t2;
    ops.Ops.assign ~subset:Subset.Even dest (Lqcd.Wilson.gamma5_expr (f t3))
  in
  { Ops.apply; tag = "normal(schur)" }

(* Solve M x = b through the even-odd decomposition.  [x] receives the
   full-lattice solution. *)
let solve (ops : Ops.t) ?(coeffs = [||]) ~kappa u ~b ~x ?(tol = 1e-10) ?(max_iter = 5000) () =
  let eops = Ops.restricted ops Subset.Even in
  (* b_hat = b_e + kappa (D b)_e = b_e + kappa D_eo b_o. *)
  let bhat = ops.Ops.fresh () in
  ops.Ops.assign ~subset:Subset.Even bhat
    (Expr.add (f b) (Expr.mul (Expr.const_real kappa) (Lqcd.Wilson.hopping_expr ~coeffs u b)));
  (* Normal-equation CG on the even checkerboard: solve Mhat^dag Mhat x_e =
     Mhat^dag b_hat. *)
  let nop = schur_normal_op eops ~coeffs ~kappa u in
  let mhat = schur_op eops ~coeffs ~kappa u in
  let rhs = ops.Ops.fresh () and tmp = ops.Ops.fresh () in
  ops.Ops.assign ~subset:Subset.Even tmp (Lqcd.Wilson.gamma5_expr (f bhat));
  mhat.Ops.apply rhs tmp;
  let rhs2 = ops.Ops.fresh () in
  ops.Ops.assign ~subset:Subset.Even rhs2 (Lqcd.Wilson.gamma5_expr (f rhs));
  Field.fill_constant x 0.0;
  let r = Cg.solve eops nop ~b:rhs2 ~x ~tol ~max_iter () in
  (* Reconstruct the odd checkerboard: x_o = b_o + kappa D_oe x_e. *)
  ops.Ops.assign ~subset:Subset.Odd x
    (Expr.add (f b) (Expr.mul (Expr.const_real kappa) (Lqcd.Wilson.hopping_expr ~coeffs u x)));
  (* True full-operator residual. *)
  let mx = ops.Ops.fresh () in
  ops.Ops.assign mx (Lqcd.Wilson.wilson_expr ~coeffs ~kappa u x);
  let b_norm = sqrt (ops.Ops.norm2 (f b)) in
  let res = sqrt (ops.Ops.norm2 (Ops.xmy mx b)) /. if b_norm > 0.0 then b_norm else 1.0 in
  { iterations = r.Cg.iterations; residual = res; converged = r.Cg.converged && res <= 10.0 *. tol }
