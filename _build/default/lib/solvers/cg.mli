(** Conjugate gradients for Hermitian positive-definite operators (the
    normal equations M^dag M x = b of the Wilson solves). *)

type result = { iterations : int; residual : float; converged : bool }

val solve :
  Ops.t ->
  Ops.linop ->
  b:Qdp.Field.t ->
  x:Qdp.Field.t ->
  ?tol:float ->
  ?max_iter:int ->
  unit ->
  result
(** Solve A x = b to relative residual [tol] (default 1e-8), starting from
    the current content of [x].  Subset-restricted [Ops.t] instances give
    checkerboarded solves.  Raises [Failure] if the operator is detected
    to be non-positive. *)
