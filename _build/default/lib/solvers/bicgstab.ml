(** BiCGStab for the (non-Hermitian) Wilson operator itself — avoids the
    squared condition number of the normal equations. *)

module Field = Qdp.Field
module Expr = Qdp.Expr

type result = { iterations : int; residual : float; converged : bool }

let c_mul (ar, ai) (br, bi) = ((ar *. br) -. (ai *. bi), (ar *. bi) +. (ai *. br))
let c_div (ar, ai) (br, bi) =
  let d = (br *. br) +. (bi *. bi) in
  (((ar *. br) +. (ai *. bi)) /. d, ((ai *. br) -. (ar *. bi)) /. d)

let c_neg (re, im) = (-.re, -.im)
let c_norm2 (re, im) = (re *. re) +. (im *. im)

let solve (ops : Ops.t) (op : Ops.linop) ~b ~x ?(tol = 1e-8) ?(max_iter = 2000) () =
  let f = Expr.field in
  let cxpy = Ops.cxpy in
  let r = ops.Ops.fresh () in
  let r0 = ops.Ops.fresh () in
  let p = ops.Ops.fresh () in
  let v = ops.Ops.fresh () in
  let s = ops.Ops.fresh () in
  let t = ops.Ops.fresh () in
  op.Ops.apply v x;
  ops.Ops.assign r (Expr.sub (f b) (f v));
  ops.Ops.assign r0 (f r);
  ops.Ops.assign p (f r);
  let b_norm = sqrt (ops.Ops.norm2 (f b)) in
  let scale = if b_norm > 0.0 then b_norm else 1.0 in
  let rho = ref (ops.Ops.inner (f r0) (f r)) in
  let iter = ref 0 in
  let res = ref (sqrt (ops.Ops.norm2 (f r))) in
  let converged = ref (!res <= tol *. scale) in
  let broke_down = ref false in
  while (not !converged) && (not !broke_down) && !iter < max_iter do
    incr iter;
    op.Ops.apply v p;
    let r0v = ops.Ops.inner (f r0) (f v) in
    if c_norm2 r0v = 0.0 then broke_down := true
    else begin
      let alpha = c_div !rho r0v in
      ops.Ops.assign s (cxpy ~alpha:(c_neg alpha) v r);
      let s_norm = sqrt (ops.Ops.norm2 (f s)) in
      if s_norm <= tol *. scale then begin
        ops.Ops.assign x (cxpy ~alpha p x);
        res := s_norm;
        converged := true
      end
      else begin
        op.Ops.apply t s;
        let tt = ops.Ops.norm2 (f t) in
        if tt = 0.0 then broke_down := true
        else begin
          let ts = ops.Ops.inner (f t) (f s) in
          let omega = (fst ts /. tt, snd ts /. tt) in
          (* x += alpha p + omega s *)
          ops.Ops.assign x (cxpy ~alpha p x);
          ops.Ops.assign x (cxpy ~alpha:omega s x);
          ops.Ops.assign r (cxpy ~alpha:(c_neg omega) t s);
          res := sqrt (ops.Ops.norm2 (f r));
          if !res <= tol *. scale then converged := true
          else begin
            let rho_new = ops.Ops.inner (f r0) (f r) in
            if c_norm2 rho_new = 0.0 || c_norm2 omega = 0.0 then broke_down := true
            else begin
              let beta = c_mul (c_div rho_new !rho) (c_div alpha omega) in
              (* p = r + beta (p - omega v) *)
              ops.Ops.assign p (cxpy ~alpha:(c_neg omega) v p);
              ops.Ops.assign p (cxpy ~alpha:beta p r);
              rho := rho_new
            end
          end
        end
      end
    end
  done;
  { iterations = !iter; residual = !res /. scale; converged = !converged }
