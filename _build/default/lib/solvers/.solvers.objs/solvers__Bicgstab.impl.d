lib/solvers/bicgstab.ml: Ops Qdp
