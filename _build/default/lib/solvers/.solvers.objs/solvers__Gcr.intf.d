lib/solvers/gcr.mli: Ops Qdp
