lib/solvers/eo_wilson.ml: Cg Lqcd Ops Qdp
