lib/solvers/quda_like.mli: Gcr Mixed Ops Qdp
