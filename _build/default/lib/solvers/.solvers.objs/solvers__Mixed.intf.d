lib/solvers/mixed.mli: Ops Qdp
