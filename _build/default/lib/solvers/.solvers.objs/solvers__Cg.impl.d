lib/solvers/cg.ml: Ops Qdp
