lib/solvers/gcr.ml: Array Ops Qdp
