lib/solvers/mixed.ml: Cg Layout Ops Qdp
