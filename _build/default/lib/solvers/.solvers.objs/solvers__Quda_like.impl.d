lib/solvers/quda_like.ml: Gcr Mixed
