lib/solvers/bicgstab.mli: Ops Qdp
