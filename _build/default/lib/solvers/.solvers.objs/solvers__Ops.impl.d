lib/solvers/ops.ml: Layout Lqcd Qdp Qdpjit
