lib/solvers/cg.mli: Ops Qdp
