lib/solvers/eo_wilson.mli: Lqcd Ops Qdp
