lib/solvers/multishift_cg.ml: Array Ops Qdp
