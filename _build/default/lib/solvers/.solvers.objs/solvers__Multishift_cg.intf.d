lib/solvers/multishift_cg.mli: Ops Qdp
