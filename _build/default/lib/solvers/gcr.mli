(** Restarted GCR(m) — generalized conjugate residuals, the algorithm the
    QUDA library runs inside the paper's "QDP-JIT+QUDA" configuration
    ("full benefit is taken from the algorithmic improvements (QUDA GCR
    solver)").  Works for any invertible operator. *)

type result = { iterations : int; residual : float; converged : bool }

val solve :
  Ops.t ->
  Ops.linop ->
  b:Qdp.Field.t ->
  x:Qdp.Field.t ->
  ?tol:float ->
  ?max_iter:int ->
  ?restart:int ->
  unit ->
  result
