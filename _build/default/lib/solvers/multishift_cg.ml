(** Multi-shift conjugate gradients (CG-M, Jegerlehner hep-lat/9612014).

    Solves (A + sigma_i) x_i = b for a whole family of positive shifts at
    the cost of one Krylov space — the workhorse behind the rational
    approximation of the RHMC strange-quark determinant (the paper's
    Ref. 14), where the partial-fraction poles become the shifts. *)

module Field = Qdp.Field
module Expr = Qdp.Expr

type result = {
  iterations : int;
  residuals : float array;  (** relative residual per shift *)
  converged : bool;
}

let solve (ops : Ops.t) (op : Ops.linop) ~b ~shifts ~(xs : Field.t array) ?(tol = 1e-8)
    ?(max_iter = 2000) () =
  let nshift = Array.length shifts in
  if Array.length xs <> nshift then invalid_arg "Multishift_cg.solve: xs/shifts length mismatch";
  Array.iter (fun s -> if s < 0.0 then invalid_arg "Multishift_cg.solve: negative shift") shifts;
  let f = Expr.field in
  let r = ops.Ops.fresh () and p = ops.Ops.fresh () and ap = ops.Ops.fresh () in
  let ps = Array.init nshift (fun _ -> ops.Ops.fresh ()) in
  (* x_i = 0, r = p = p_i = b *)
  Array.iter (fun x -> Field.fill_constant x 0.0) xs;
  ops.Ops.assign r (f b);
  ops.Ops.assign p (f b);
  Array.iter (fun pi -> ops.Ops.assign pi (f b)) ps;
  let b_norm = sqrt (ops.Ops.norm2 (f b)) in
  let scale = if b_norm > 0.0 then b_norm else 1.0 in
  let zeta = Array.make nshift 1.0 in
  let zeta_prev = Array.make nshift 1.0 in
  let beta_shift = Array.make nshift 0.0 in
  let active = Array.make nshift true in
  let rr = ref (ops.Ops.norm2 (f r)) in
  let alpha_prev = ref 1.0 in
  let beta_prev = ref 0.0 in
  let iter = ref 0 in
  let all_done () = sqrt !rr *. Array.fold_left max 0.0 (Array.map abs_float zeta) <= tol *. scale in
  let converged = ref (all_done ()) in
  while (not !converged) && !iter < max_iter do
    (* Base system step. *)
    op.Ops.apply ap p;
    let pap, _ = ops.Ops.inner (f p) (f ap) in
    if pap <= 0.0 then failwith "Multishift_cg.solve: operator is not positive definite";
    let alpha = !rr /. pap in
    (* Shifted coefficient updates (before r changes). *)
    let zeta_next = Array.make nshift 1.0 in
    for i = 0 to nshift - 1 do
      if active.(i) then begin
        let zn = zeta.(i) and zp = zeta_prev.(i) in
        let denom =
          (!alpha_prev *. zp *. (1.0 +. (alpha *. shifts.(i))))
          +. (alpha *. !beta_prev *. (zp -. zn))
        in
        zeta_next.(i) <- zn *. zp *. !alpha_prev /. denom;
        let alpha_i = alpha *. zeta_next.(i) /. zn in
        (* x_i += alpha_i p_i *)
        ops.Ops.assign xs.(i) (Ops.rxpy ~alpha:alpha_i ps.(i) xs.(i))
      end
    done;
    (* r <- r - alpha A p *)
    ops.Ops.assign r (Ops.rxpy ~alpha:(-.alpha) ap r);
    let rr_new = ops.Ops.norm2 (f r) in
    let beta = rr_new /. !rr in
    ops.Ops.assign p (Ops.rxpy ~alpha:beta p r);
    for i = 0 to nshift - 1 do
      if active.(i) then begin
        beta_shift.(i) <- beta *. (zeta_next.(i) /. zeta.(i)) ** 2.0;
        (* p_i <- zeta_next r + beta_i p_i *)
        ops.Ops.assign ps.(i)
          (Expr.add
             (Expr.mul (Expr.const_real zeta_next.(i)) (f r))
             (Expr.mul (Expr.const_real beta_shift.(i)) (f ps.(i))));
        zeta_prev.(i) <- zeta.(i);
        zeta.(i) <- zeta_next.(i);
        (* Freeze converged shifts (their residual is zeta_i |r|). *)
        if abs_float zeta.(i) *. sqrt rr_new <= 0.1 *. tol *. scale then active.(i) <- false
      end
    done;
    alpha_prev := alpha;
    beta_prev := beta;
    rr := rr_new;
    incr iter;
    let worst =
      Array.fold_left max 0.0
        (Array.mapi (fun i z -> if active.(i) then abs_float z else 0.0) zeta)
    in
    if sqrt !rr *. worst <= tol *. scale && Array.for_all (fun a -> not a) active || sqrt !rr *. worst <= tol *. scale
    then converged := true
  done;
  let residuals = Array.map (fun z -> abs_float z *. sqrt !rr /. scale) zeta in
  { iterations = !iter; residuals; converged = !converged }
