(** Conjugate gradients for Hermitian positive-definite operators
    (the normal equations M^dag M x = b of the Wilson solves). *)

module Field = Qdp.Field
module Expr = Qdp.Expr

type result = { iterations : int; residual : float; converged : bool }

let solve (ops : Ops.t) (op : Ops.linop) ~b ~x ?(tol = 1e-8) ?(max_iter = 1000) () =
  let f = Expr.field in
  let r = ops.Ops.fresh () and p = ops.Ops.fresh () and ap = ops.Ops.fresh () in
  (* r = b - A x ; p = r *)
  op.Ops.apply ap x;
  ops.Ops.assign r (Expr.sub (f b) (f ap));
  ops.Ops.assign p (f r);
  let b_norm = sqrt (ops.Ops.norm2 (f b)) in
  let target = tol *. (if b_norm > 0.0 then b_norm else 1.0) in
  let rr = ref (ops.Ops.norm2 (f r)) in
  let iter = ref 0 in
  let converged = ref (sqrt !rr <= target) in
  while (not !converged) && !iter < max_iter do
    incr iter;
    op.Ops.apply ap p;
    let pap, _ = ops.Ops.inner (f p) (f ap) in
    if pap <= 0.0 then failwith "Cg.solve: operator is not positive definite";
    let alpha = !rr /. pap in
    ops.Ops.assign x (Ops.rxpy ~alpha p x);
    ops.Ops.assign r (Ops.rxpy ~alpha:(-.alpha) ap r);
    let rr_new = ops.Ops.norm2 (f r) in
    let beta = rr_new /. !rr in
    ops.Ops.assign p (Ops.rxpy ~alpha:beta p r);
    rr := rr_new;
    if sqrt !rr <= target then converged := true
  done;
  { iterations = !iter; residual = sqrt !rr /. (if b_norm > 0.0 then b_norm else 1.0); converged = !converged }
