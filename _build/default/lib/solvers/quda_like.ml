(** Stand-in for the QUDA library (Refs. 2, 9, 10, 12): hand-optimised
    Dirac solvers the framework interfaces with.

    Functionally this repository's solvers already serve (QUDA's GCR and
    mixed-precision CG are implemented in {!Gcr} and {!Mixed}); what QUDA
    adds over generated kernels is hand tuning.  Sec. VIII-C measures that
    headroom on the same hardware: QUDA's Dslash reaches 346 GFLOPS (SP,
    V=40^4) and 171 GFLOPS (DP, V=32^4) against 197 / 90 for the
    generated operator — factors 1.76 / 1.9 with identical arithmetic
    (no gauge compression).  This module carries those measured factors
    and the QUDA-side performance model used by the Fig. 7 analysis. *)

type precision = Sp | Dp

(* Hand-tuning headroom over generated kernels (Sec. VIII-C). *)
let headroom = function Sp -> 1.76 | Dp -> 1.9

(* Paper-measured QUDA Dslash throughput on K20m (ECC on), overlapping
   communications, compute capability 3.5, uncompressed gauge fields. *)
let dslash_gflops_measured = function Sp -> 346.0 | Dp -> 171.0

let generated_dslash_gflops prec = dslash_gflops_measured prec /. headroom prec

(* QUDA solvers run through this repository's Krylov code; the [gcr]
   entry point mirrors the interface Chroma calls through the QUDA device
   API (the "seamless interface" of Sec. VIII-D: fields stay on the
   device in the QDP-JIT layout, no copies). *)
let gcr_solve = Gcr.solve
let mixed_cg_solve = Mixed.solve
