(** Mixed-precision defect-correction solver (the QUDA strategy of the
    paper's Ref. 2).

    The outer loop keeps a double-precision residual; each correction is
    an inner single-precision CG on the normal operator.  Cross-precision
    assignments round at the store — the expression layer's implicit
    conversion semantics. *)

type result = {
  outer_iterations : int;
  inner_iterations : int;  (** total f32 CG iterations *)
  residual : float;
  converged : bool;
}

val solve :
  Ops.t ->
  Ops.linop ->
  Ops.t ->
  Ops.linop ->
  b:Qdp.Field.t ->
  x:Qdp.Field.t ->
  ?tol:float ->
  ?inner_tol:float ->
  ?max_outer:int ->
  ?max_inner:int ->
  unit ->
  result
(** [solve ops64 op64 ops32 op32 ...]: the f32 instances must act on the
    same geometry at F32.  Stagnation at the single-precision floor stops
    the iteration honestly. *)
