(** Vector-space primitives the Krylov solvers are written against,
    with interchangeable CPU-reference and JIT-engine instantiations —
    the same solver source runs on both implementations, mirroring how
    Chroma's solvers run unchanged over QDP++ or QDP-JIT.

    Every primitive takes an optional subset so that checkerboard
    (even-odd preconditioned) solvers are ordinary solvers over a
    {!restricted} instance. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Subset = Qdp.Subset

type t = {
  shape : Shape.t;
  geom : Geometry.t;
  fresh : unit -> Field.t;  (** a new zeroed vector *)
  assign : ?subset:Subset.t -> Field.t -> Expr.t -> unit;  (** dest = expr *)
  norm2 : ?subset:Subset.t -> Expr.t -> float;
  inner : ?subset:Subset.t -> Expr.t -> Expr.t -> float * float;
      (** <a,b> = sum conj(a) b *)
}

(** An abstract linear operator: [apply dest src] evaluates dest = A src. *)
type linop = { apply : Field.t -> Field.t -> unit; tag : string }

let cpu shape geom =
  {
    shape;
    geom;
    fresh = (fun () -> Field.create shape geom);
    assign = (fun ?subset dest expr -> Qdp.Eval_cpu.eval ?subset dest expr);
    norm2 = (fun ?subset e -> Qdp.Eval_cpu.norm2 ?subset e);
    inner = (fun ?subset a b -> Qdp.Eval_cpu.inner ?subset a b);
  }

let jit engine shape geom =
  {
    shape;
    geom;
    fresh = (fun () -> Field.create shape geom);
    assign = (fun ?subset dest expr -> Qdpjit.Engine.eval ?subset engine dest expr);
    norm2 = (fun ?subset e -> Qdpjit.Engine.norm2 ?subset engine e);
    inner = (fun ?subset a b -> Qdpjit.Engine.inner ?subset engine a b);
  }

(* All operations default to the given subset (checkerboarded solvers). *)
let restricted ops sub =
  {
    ops with
    assign = (fun ?(subset = sub) dest expr -> ops.assign ~subset dest expr);
    norm2 = (fun ?(subset = sub) e -> ops.norm2 ~subset e);
    inner = (fun ?(subset = sub) a b -> ops.inner ~subset a b);
  }

(* Common expression shorthands. *)
let f = Expr.field
let cxpy ~alpha x y = Expr.add (Expr.mul (Expr.const_complex (fst alpha) (snd alpha)) (f x)) (f y)
let rxpy ~alpha x y = Expr.add (Expr.mul (Expr.const_real alpha) (f x)) (f y)
let xmy x y = Expr.sub (f x) (f y)

(* Wilson normal operator A = M^dag M via gamma5-hermiticity
   (M^dag = g5 M g5), reusing the same generated kernels for M and M^dag. *)
let normal_op (ops : t) ~(apply_m : Field.t -> Expr.t) =
  let tmp1 = ops.fresh () and tmp2 = ops.fresh () and tmp3 = ops.fresh () in
  let apply dest src =
    ops.assign tmp1 (apply_m src);
    (* M^dag tmp1 = g5 M (g5 tmp1) *)
    ops.assign tmp2 (Lqcd.Wilson.gamma5_expr (f tmp1));
    ops.assign tmp3 (apply_m tmp2);
    ops.assign dest (Lqcd.Wilson.gamma5_expr (f tmp3))
  in
  { apply; tag = "normal(MdagM)" }
