(** Restarted GCR(m) — generalized conjugate residuals, the algorithm the
    QUDA library runs inside the "QDP-JIT+QUDA" configuration of Fig. 7
    ("full benefit is taken from the algorithmic improvements (QUDA GCR
    solver)").  Works for any invertible operator. *)

module Field = Qdp.Field
module Expr = Qdp.Expr

type result = { iterations : int; residual : float; converged : bool }

let c_neg (re, im) = (-.re, -.im)

let solve (ops : Ops.t) (op : Ops.linop) ~b ~x ?(tol = 1e-8) ?(max_iter = 2000) ?(restart = 16) ()
    =
  let f = Expr.field in
  let cxpy = Ops.cxpy in
  let r = ops.Ops.fresh () and tmp = ops.Ops.fresh () in
  let ps = Array.init restart (fun _ -> ops.Ops.fresh ()) in
  let aps = Array.init restart (fun _ -> ops.Ops.fresh ()) in
  let ap_norm2 = Array.make restart 0.0 in
  op.Ops.apply tmp x;
  ops.Ops.assign r (Expr.sub (f b) (f tmp));
  let b_norm = sqrt (ops.Ops.norm2 (f b)) in
  let scale = if b_norm > 0.0 then b_norm else 1.0 in
  let res = ref (sqrt (ops.Ops.norm2 (f r))) in
  let iter = ref 0 in
  let converged = ref (!res <= tol *. scale) in
  while (not !converged) && !iter < max_iter do
    (* One restart cycle. *)
    let k = ref 0 in
    while !k < restart && (not !converged) && !iter < max_iter do
      incr iter;
      let j = !k in
      (* New direction: p_j = r, orthogonalised against previous A p_i. *)
      ops.Ops.assign ps.(j) (f r);
      op.Ops.apply aps.(j) ps.(j);
      for i = 0 to j - 1 do
        let c = ops.Ops.inner (f aps.(i)) (f aps.(j)) in
        let beta = (fst c /. ap_norm2.(i), snd c /. ap_norm2.(i)) in
        ops.Ops.assign ps.(j) (cxpy ~alpha:(c_neg beta) ps.(i) ps.(j));
        ops.Ops.assign aps.(j) (cxpy ~alpha:(c_neg beta) aps.(i) aps.(j))
      done;
      ap_norm2.(j) <- ops.Ops.norm2 (f aps.(j));
      if ap_norm2.(j) = 0.0 then begin
        (* Breakdown: force a restart. *)
        k := restart
      end
      else begin
        let c = ops.Ops.inner (f aps.(j)) (f r) in
        let alpha = (fst c /. ap_norm2.(j), snd c /. ap_norm2.(j)) in
        ops.Ops.assign x (cxpy ~alpha ps.(j) x);
        ops.Ops.assign r (cxpy ~alpha:(c_neg alpha) aps.(j) r);
        res := sqrt (ops.Ops.norm2 (f r));
        if !res <= tol *. scale then converged := true;
        incr k
      end
    done
  done;
  { iterations = !iter; residual = !res /. scale; converged = !converged }
