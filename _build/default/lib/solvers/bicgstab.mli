(** BiCGStab for the (non-Hermitian) Wilson operator itself — avoids the
    squared condition number of the normal equations. *)

type result = { iterations : int; residual : float; converged : bool }

val solve :
  Ops.t ->
  Ops.linop ->
  b:Qdp.Field.t ->
  x:Qdp.Field.t ->
  ?tol:float ->
  ?max_iter:int ->
  unit ->
  result
(** Converged = relative residual below [tol]; breakdowns (rho or omega
    vanishing) terminate honestly with [converged = false]. *)
