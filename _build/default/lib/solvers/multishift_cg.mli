(** Multi-shift conjugate gradients (CG-M, Jegerlehner hep-lat/9612014).

    Solves (A + sigma_i) x_i = b for a whole family of positive shifts at
    the cost of one Krylov space — the workhorse behind the rational
    approximation of the RHMC strange-quark determinant (the paper's
    Ref. 14), where the partial-fraction poles become the shifts. *)

type result = {
  iterations : int;
  residuals : float array;  (** relative residual per shift *)
  converged : bool;
}

val solve :
  Ops.t ->
  Ops.linop ->
  b:Qdp.Field.t ->
  shifts:float array ->
  xs:Qdp.Field.t array ->
  ?tol:float ->
  ?max_iter:int ->
  unit ->
  result
(** All shifts must be >= 0; [xs] are overwritten with the solutions (the
    larger the shift, the faster its system converges and freezes). *)
