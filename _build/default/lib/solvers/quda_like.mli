(** Stand-in for the QUDA library (the paper's Refs. 2, 9, 10, 12):
    hand-optimised Dirac solvers the framework interfaces with.

    Functionally this repository's solvers already serve; what QUDA adds
    is hand tuning, whose measured headroom (Sec. VIII-C: 346-vs-197
    GFLOPS SP, 171-vs-90 DP — factors 1.76x/1.9x with identical work) is
    carried here and feeds the Fig. 7 analysis. *)

type precision = Sp | Dp

val headroom : precision -> float
val dslash_gflops_measured : precision -> float
val generated_dslash_gflops : precision -> float

val gcr_solve :
  Ops.t ->
  Ops.linop ->
  b:Qdp.Field.t ->
  x:Qdp.Field.t ->
  ?tol:float ->
  ?max_iter:int ->
  ?restart:int ->
  unit ->
  Gcr.result
(** The QUDA GCR entry point, as Chroma calls it through the device
    interface (fields stay resident in the QDP-JIT layout — no copies). *)

val mixed_cg_solve :
  Ops.t ->
  Ops.linop ->
  Ops.t ->
  Ops.linop ->
  b:Qdp.Field.t ->
  x:Qdp.Field.t ->
  ?tol:float ->
  ?inner_tol:float ->
  ?max_outer:int ->
  ?max_inner:int ->
  unit ->
  Mixed.result
