(** Domain decomposition: an Nd-dimensional grid of MPI ranks, each owning
    a hypercubic sub-grid of the global lattice (Sec. II-B: "each node
    maintains a sub-grid of the global lattice"). *)

module Geometry = Layout.Geometry

type t = {
  global : Geometry.t;
  rank_geom : Geometry.t;  (** geometry of the rank grid itself *)
  local : Geometry.t;  (** per-rank sub-grid *)
}

val create : global_dims:int array -> rank_dims:int array -> t
(** Raises [Invalid_argument] unless every rank extent divides the global
    extent. *)

val nranks : t -> int
val local_volume : t -> int
val nd : t -> int

val neighbor_rank : t -> int -> dim:int -> dir:int -> int
(** Periodic neighbour in the rank grid. *)

val global_coord : t -> rank:int -> local_site:int -> int array
val global_site : t -> rank:int -> local_site:int -> int
val owner : t -> global_coord:int array -> int * int
(** [(rank, local_site)] owning a global coordinate. *)
