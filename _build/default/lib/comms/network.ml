(** Interconnect models for the simulated MPI fabric.

    A message of [b] bytes posted at time [t] arrives at
    [t + latency + b/bandwidth] (LogP-style).  [cuda_aware] fabrics move
    device buffers directly; otherwise each message pays the PCIe staging
    legs on both ends (Sec. V). *)

type t = {
  name : string;
  latency_ns : float;
  bandwidth : float;  (** bytes/s per link direction *)
  cuda_aware : bool;
}

(* JLab 12k cluster: QDR InfiniBand with MVAPICH2 1.9 (CUDA-aware, the
   Fig. 6 testbed). *)
let infiniband_qdr = { name = "IB-QDR"; latency_ns = 1_300.0; bandwidth = 4.0e9; cuda_aware = true }

(* Cray XK7 Gemini (Titan / Blue Waters): higher latency, ~6 GB/s per
   direction, not CUDA-aware in the production stack of the paper. *)
let cray_gemini = { name = "Gemini"; latency_ns = 1_500.0; bandwidth = 6.0e9; cuda_aware = false }

let message_time_ns t ~bytes = t.latency_ns +. (float_of_int bytes /. t.bandwidth *. 1e9)
