(** Simulated MPI point-to-point timing and traffic accounting.

    The SPMD ranks run in one process and exchange data through shared
    memory, so the fabric's job is the *clock*: given the sender's post
    time it returns the receiver-visible arrival time, and it accumulates
    per-link statistics. *)

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable busy_ns : float;  (** total wire time *)
}

type t

val create : network:Network.t -> nranks:int -> t
val cuda_aware : t -> bool

val transfer : t -> src:int -> dst:int -> bytes:int -> post_ns:float -> float
(** Completion time of a message posted at [post_ns]. *)

val stats : t -> stats
