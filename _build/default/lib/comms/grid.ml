(** Domain decomposition: an Nd-dimensional grid of MPI ranks, each owning
    a hypercubic sub-grid of the global lattice (Sec. II-B: "each node
    maintains a sub-grid of the global lattice"). *)

module Geometry = Layout.Geometry

type t = {
  global : Geometry.t;
  rank_geom : Geometry.t;  (** geometry of the rank grid itself *)
  local : Geometry.t;  (** per-rank sub-grid *)
}

let create ~global_dims ~rank_dims =
  if Array.length global_dims <> Array.length rank_dims then
    invalid_arg "Grid.create: dimensionality mismatch";
  Array.iteri
    (fun d r ->
      if r <= 0 then invalid_arg "Grid.create: non-positive rank extent";
      if global_dims.(d) mod r <> 0 then
        invalid_arg
          (Printf.sprintf "Grid.create: global extent %d not divisible by %d ranks in dim %d"
             global_dims.(d) r d))
    rank_dims;
  let local_dims = Array.mapi (fun d g -> g / rank_dims.(d)) global_dims in
  {
    global = Geometry.create global_dims;
    rank_geom = Geometry.create rank_dims;
    local = Geometry.create local_dims;
  }

let nranks t = Geometry.volume t.rank_geom
let local_volume t = Geometry.volume t.local
let nd t = Geometry.nd t.global

let neighbor_rank t rank ~dim ~dir = Geometry.neighbor t.rank_geom rank ~dim ~dir

(* Global coordinate of a local site on a given rank. *)
let global_coord t ~rank ~local_site =
  let rank_coord = Geometry.coord_of_site t.rank_geom rank in
  let local_coord = Geometry.coord_of_site t.local local_site in
  let local_dims = Geometry.dims t.local in
  Array.mapi (fun d rc -> (rc * local_dims.(d)) + local_coord.(d)) rank_coord

let global_site t ~rank ~local_site =
  Geometry.site_of_coord t.global (global_coord t ~rank ~local_site)

(* Owner rank and local site of a global coordinate. *)
let owner t ~global_coord:gc =
  let local_dims = Geometry.dims t.local in
  let rank_coord = Array.mapi (fun d c -> c / local_dims.(d)) gc in
  let local_coord = Array.mapi (fun d c -> c mod local_dims.(d)) gc in
  (Geometry.site_of_coord t.rank_geom rank_coord, Geometry.site_of_coord t.local local_coord)
