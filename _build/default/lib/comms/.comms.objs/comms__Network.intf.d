lib/comms/network.mli:
