lib/comms/network.ml:
