lib/comms/fabric.mli: Network
