lib/comms/grid.ml: Array Layout Printf
