lib/comms/fabric.ml: Network
