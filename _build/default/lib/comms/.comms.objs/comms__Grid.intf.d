lib/comms/grid.mli: Layout
