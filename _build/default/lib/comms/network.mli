(** Interconnect models for the simulated MPI fabric.

    A message of [b] bytes posted at time [t] arrives at
    [t + latency + b/bandwidth] (LogP-style).  [cuda_aware] fabrics move
    device buffers directly; otherwise each message pays the PCIe staging
    legs on both ends (the paper's Sec. V distinction). *)

type t = {
  name : string;
  latency_ns : float;
  bandwidth : float;  (** bytes/s per link direction *)
  cuda_aware : bool;
}

val infiniband_qdr : t
(** The JLab 12k cluster fabric of Fig. 6 (MVAPICH2 1.9, CUDA-aware). *)

val cray_gemini : t
(** Titan / Blue Waters XK7 interconnect (not CUDA-aware in the paper's
    production stack). *)

val message_time_ns : t -> bytes:int -> float
