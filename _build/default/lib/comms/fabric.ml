(** Simulated MPI point-to-point timing and traffic accounting.

    The SPMD ranks of this reproduction run in one process and exchange
    data through shared memory, so the fabric's job is the *clock*: given
    the sender's post time it returns the receiver-visible arrival time,
    and it accumulates per-link statistics.  Non-CUDA-aware fabrics make
    the caller stage through host memory (the caller adds the PCIe legs —
    it owns the device clocks). *)

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable busy_ns : float;  (** total wire time, for utilisation reports *)
}

type t = { network : Network.t; nranks : int; stats : stats }

let create ~network ~nranks =
  if nranks <= 0 then invalid_arg "Fabric.create: nranks must be positive";
  { network; nranks; stats = { messages = 0; bytes = 0; busy_ns = 0.0 } }

let cuda_aware t = t.network.Network.cuda_aware

(* Completion time of a message posted at [post_ns]. *)
let transfer t ~src ~dst ~bytes ~post_ns =
  if src < 0 || src >= t.nranks || dst < 0 || dst >= t.nranks then
    invalid_arg "Fabric.transfer: rank out of range";
  if bytes < 0 then invalid_arg "Fabric.transfer: negative size";
  let wire = Network.message_time_ns t.network ~bytes in
  t.stats.messages <- t.stats.messages + 1;
  t.stats.bytes <- t.stats.bytes + bytes;
  t.stats.busy_ns <- t.stats.busy_ns +. wire;
  post_ns +. wire

let stats t = t.stats
