(** Static per-thread cost analysis of a kernel.

    Straight-line streaming kernels execute (at most) every instruction
    once per thread, so static counts are the dynamic counts; these
    numbers feed the device timing model and the flop/byte figures of
    Table II (convention: fma = 2 flops, negation is a free operand
    modifier). *)

type t = {
  load_bytes : int;  (** global-memory bytes read per thread *)
  store_bytes : int;
  flops : int;
  int_ops : int;
  instructions : int;
  calls : int;  (** math subroutine calls *)
}

val zero : t
val kernel : Types.kernel -> t
val flop_per_byte : t -> float
