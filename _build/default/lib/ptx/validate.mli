(** Static checks a real assembler would perform: every register is
    written before it is read (the generators emit forward-branching
    straight-line code, so textual order is execution order), branch
    targets exist, and operand/instruction types agree. *)

exception Invalid of string

val kernel : Types.kernel -> unit
