(** PTX text emission.  The output follows NVCC's dialect closely enough
    that reading it next to the ISA manual is unremarkable; floating-point
    immediates use the exact hexadecimal forms ([0f...]/[0d...]) so the
    parse/print round trip is bit-exact. *)

val imm_float : Types.dtype -> float -> string
val kernel : Types.kernel -> string
