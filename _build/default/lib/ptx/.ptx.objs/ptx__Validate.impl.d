lib/ptx/validate.ml: Array Hashtbl List Option Printf Types
