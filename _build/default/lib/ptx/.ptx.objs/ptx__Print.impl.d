lib/ptx/print.ml: Buffer Hashtbl Int32 Int64 List Option Printf Types
