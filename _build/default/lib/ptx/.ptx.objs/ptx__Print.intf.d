lib/ptx/print.mli: Types
