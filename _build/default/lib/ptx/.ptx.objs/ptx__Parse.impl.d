lib/ptx/parse.ml: Buffer Int32 Int64 List Printf String Types
