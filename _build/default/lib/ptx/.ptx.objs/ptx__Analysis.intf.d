lib/ptx/analysis.mli: Types
