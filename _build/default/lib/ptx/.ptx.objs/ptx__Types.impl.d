lib/ptx/types.ml: Printf
