lib/ptx/parse.mli: Types
