lib/ptx/analysis.ml: List Types
