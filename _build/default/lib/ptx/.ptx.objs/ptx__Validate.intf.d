lib/ptx/validate.mli: Types
