(** PTX text parser — the front half of the simulated driver JIT.

    Accepts the dialect produced by {!Print} (the code generators emit
    nothing else) with free-form whitespace; parameters are resolved by
    name.  Errors raise {!Error} with a line number, as a real assembler
    would. *)

exception Error of string

val kernel : string -> Types.kernel
