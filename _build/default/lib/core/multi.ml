(** Multi-rank SPMD execution with communication/computation overlap
    (Sec. V).

    Every MPI rank of the paper becomes a simulated rank here: its own
    device, memory cache and kernel cache, with the local sub-grid of the
    domain decomposition.  Expressions are lowered bottom-up: each [Shift]
    subtree is materialised by a local kernel (the "gather" compute), its
    face data crosses the fabric, inner sites are rebuilt from the local
    neighbour table, and face sites are filled from the received buffer.
    The final shift-free kernel is then launched in two pieces — inner
    sites while messages are in flight, face sites after arrival — when
    overlap is enabled, or in one piece after arrival when it is not.
    Shifts of shifts work but their inner exchanges do not overlap,
    matching the paper's stated limitation.

    Functional results are identical with overlap on or off; what changes
    is the simulated per-rank timeline, which is what Fig. 6 plots. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Subset = Qdp.Subset

type t = {
  grid : Comms.Grid.t;
  fabric : Comms.Fabric.t;
  engines : Engine.t array;
  mutable overlap : bool;
  rank_clock : float array;  (** modeled per-rank timeline, ns *)
  mutable comm_bytes : int;
  shift_pool : (string, dfield * dfield) Hashtbl.t;
      (** reused (tmp, shifted) temporaries per (dim, dir, shape,
          occurrence) — the communication buffers of a real implementation
          are persistent too, and per-eval allocation would thrash memory
          at Fig. 6 volumes *)
  mutable shift_seq : int;  (** occurrence counter within one [eval] *)
}

and dfield = { shape : Layout.Shape.t; locals : Qdp.Field.t array }

let create ?(machine = Gpusim.Machine.k20m_ecc_on) ?(mode = Gpusim.Device.Functional)
    ?(network = Comms.Network.infiniband_qdr) ~global_dims ~rank_dims () =
  let grid = Comms.Grid.create ~global_dims ~rank_dims in
  let nranks = Comms.Grid.nranks grid in
  {
    grid;
    fabric = Comms.Fabric.create ~network ~nranks;
    engines = Array.init nranks (fun _ -> Engine.create ~machine ~mode ());
    overlap = true;
    rank_clock = Array.make nranks 0.0;
    comm_bytes = 0;
    shift_pool = Hashtbl.create 16;
    shift_seq = 0;
  }

let nranks t = Comms.Grid.nranks t.grid
let local_geom t = t.grid.Comms.Grid.local
let set_overlap t flag = t.overlap <- flag
let max_clock t = Array.fold_left max 0.0 t.rank_clock
let reset_clocks t = Array.fill t.rank_clock 0 (Array.length t.rank_clock) 0.0

let create_field ?name t shape =
  { shape; locals = Array.init (nranks t) (fun _ -> Field.create ?name shape (local_geom t)) }

(* Distribute a global-lattice field over the ranks and back. *)
let scatter t ~(global : Field.t) (df : dfield) =
  let local = local_geom t in
  for rank = 0 to nranks t - 1 do
    for ls = 0 to Geometry.volume local - 1 do
      let gs = Comms.Grid.global_site t.grid ~rank ~local_site:ls in
      Field.set_site df.locals.(rank) ~site:ls (Field.get_site global ~site:gs)
    done
  done

let gather t (df : dfield) ~(global : Field.t) =
  let local = local_geom t in
  for rank = 0 to nranks t - 1 do
    for ls = 0 to Geometry.volume local - 1 do
      let gs = Comms.Grid.global_site t.grid ~rank ~local_site:ls in
      Field.set_site global ~site:gs (Field.get_site df.locals.(rank) ~site:ls)
    done
  done

(* Is the rank grid split along [dim]?  If not, a shift is purely local. *)
let split_along t dim = (Geometry.dims t.grid.Comms.Grid.rank_geom).(dim) > 1

(* ---------------------------------------------------------------- *)
(* Shift materialisation                                             *)

(* One exchanged shift: the per-rank result fields plus timing facts. *)
let shift_temps t ~dim ~dir shape =
  (* Distinct shift occurrences within one statement need distinct buffers
     (two nodes may share (dim, dir, shape)); across statements the same
     occurrence sequence reuses them. *)
  t.shift_seq <- t.shift_seq + 1;
  let key = Printf.sprintf "%d:%+d:%s:%d" dim dir (Shape.to_string shape) t.shift_seq in
  match Hashtbl.find_opt t.shift_pool key with
  | Some pair -> pair
  | None ->
      let pair = (create_field t shape, create_field t shape) in
      Hashtbl.replace t.shift_pool key pair;
      pair

let materialize_shift t (subs : Expr.t array) ~dim ~dir =
  let local = local_geom t in
  let n = nranks t in
  let shape = Expr.shape subs.(0) in
  let pooled_tmp, shifted = shift_temps t ~dim ~dir shape in
  let gather_ns = Array.make n 0.0 in
  let inner_ns = Array.make n 0.0 in
  let face_ns = Array.make n 0.0 in
  (* 1. Local "gather" kernel: materialise the subtree everywhere — unless
     it is already a plain field, in which case the faces can be sent
     directly (no copy, no kernel). *)
  let tmp =
    match subs.(0) with
    | Expr.Leaf _ ->
        {
          shape;
          locals =
            Array.map (function Expr.Leaf f -> f | _ -> assert false) subs;
        }
    | _ ->
        let tmp = pooled_tmp in
        for rank = 0 to n - 1 do
          let eng = t.engines.(rank) in
          let before = Gpusim.Device.clock_ns (Engine.device eng) in
          Engine.eval eng tmp.locals.(rank) subs.(rank);
          gather_ns.(rank) <- Gpusim.Device.clock_ns (Engine.device eng) -. before
        done;
        tmp
  in
  if not (split_along t dim) then begin
    (* Whole direction lives on-rank: a single local kernel suffices. *)
    for rank = 0 to n - 1 do
      let eng = t.engines.(rank) in
      let before = Gpusim.Device.clock_ns (Engine.device eng) in
      Engine.eval eng shifted.locals.(rank) (Expr.shift (Expr.field tmp.locals.(rank)) ~dim ~dir);
      inner_ns.(rank) <- Gpusim.Device.clock_ns (Engine.device eng) -. before
    done;
    (tmp, shifted, gather_ns, inner_ns, face_ns, None)
  end
  else begin
    let face = Geometry.face_sites local ~dim ~dir in
    let inner = Geometry.inner_sites local ~dim ~dir in
    let face_bytes = Array.length face * Shape.bytes_per_site shape in
    t.comm_bytes <- t.comm_bytes + (face_bytes * n);
    (* 2. Inner sites from the local (periodic) neighbour table. *)
    for rank = 0 to n - 1 do
      let eng = t.engines.(rank) in
      let before = Gpusim.Device.clock_ns (Engine.device eng) in
      Engine.eval ~subset:(Subset.Custom inner) eng shifted.locals.(rank)
        (Expr.shift (Expr.field tmp.locals.(rank)) ~dim ~dir);
      inner_ns.(rank) <- Gpusim.Device.clock_ns (Engine.device eng) -. before
    done;
    (* 3. Face sites from the partner rank (the wrapped local neighbour
       index *is* the partner's local site index).  Model-only devices
       skip the data movement. *)
    for rank = 0 to n - 1 do
      let partner = Comms.Grid.neighbor_rank t.grid rank ~dim ~dir in
      if (Engine.device t.engines.(rank)).Gpusim.Device.mode = Gpusim.Device.Functional then
        Array.iter
          (fun x ->
            let src_site = Geometry.neighbor local x ~dim ~dir in
            Field.set_site shifted.locals.(rank) ~site:x
              (Field.get_site tmp.locals.(partner) ~site:src_site))
          face;
      (* Account a small scatter kernel for the received face. *)
      let eng = t.engines.(rank) in
      let mach = (Engine.device eng).Gpusim.Device.machine in
      face_ns.(rank) <- mach.Gpusim.Machine.base_overhead_ns
    done;
    (tmp, shifted, gather_ns, inner_ns, face_ns, Some face_bytes)
  end

(* Message completion time for each rank given per-rank post times. *)
let arrival_times t ~dim ~dir ~face_bytes ~(post : float array) =
  let n = nranks t in
  let pcie rank =
    let mach = (Engine.device t.engines.(rank)).Gpusim.Device.machine in
    Gpusim.Timing.transfer_time_ns mach ~bytes:face_bytes
  in
  Array.init n (fun rank ->
      (* Receiver's message comes from the rank on the *opposite* side. *)
      let sender = Comms.Grid.neighbor_rank t.grid rank ~dim ~dir in
      let post_ns =
        if Comms.Fabric.cuda_aware t.fabric then post.(sender)
        else post.(sender) +. pcie sender
      in
      let arrive = Comms.Fabric.transfer t.fabric ~src:sender ~dst:rank ~bytes:face_bytes ~post_ns in
      if Comms.Fabric.cuda_aware t.fabric then arrive else arrive +. pcie rank)

(* ---------------------------------------------------------------- *)
(* Expression lowering                                               *)

(* Rewrite per-rank expressions bottom-up, materialising every Shift whose
   direction crosses ranks; returns the rewritten expressions, the
   off-node face-site set contributed by top-level shifts, and accumulated
   per-rank (gather, inner, face, arrival) times for the exchanges. *)
type lowering = {
  mutable gather : float array;
  mutable inner_build : float array;
  mutable face_fill : float array;
  mutable arrival : float array;  (** latest message arrival per rank *)
  mutable face_sets : (int * int) list;  (** exchanged (dim,dir) at top level *)
  mutable nested : bool;  (** saw an exchanged shift below another shift *)
}

let rec lower t (low : lowering) ~depth (es : Expr.t array) : Expr.t array =
  let n = nranks t in
  let sub1 f = Array.map (fun e -> f e) es in
  match es.(0) with
  | Expr.Leaf _ | Expr.Const _ | Expr.Param _ -> es
  | Expr.Unary (op, _) ->
      let subs = lower t low ~depth (sub1 (function Expr.Unary (_, s) -> s | _ -> assert false)) in
      Array.map (fun s -> Expr.Unary (op, s)) subs
  | Expr.Binary (op, _, _) ->
      let lefts = lower t low ~depth (sub1 (function Expr.Binary (_, a, _) -> a | _ -> assert false)) in
      let rights = lower t low ~depth (sub1 (function Expr.Binary (_, _, b) -> b | _ -> assert false)) in
      Array.init n (fun r -> Expr.Binary (op, lefts.(r), rights.(r)))
  | Expr.Clover (_, _, _) ->
      let d = lower t low ~depth (sub1 (function Expr.Clover (a, _, _) -> a | _ -> assert false)) in
      let tr = lower t low ~depth (sub1 (function Expr.Clover (_, b, _) -> b | _ -> assert false)) in
      let p = lower t low ~depth (sub1 (function Expr.Clover (_, _, c) -> c | _ -> assert false)) in
      Array.init n (fun r -> Expr.Clover (d.(r), tr.(r), p.(r)))
  | Expr.Shift (_, dim, dir) ->
      let subs = lower t low ~depth:(depth + 1) (sub1 (function Expr.Shift (s, _, _) -> s | _ -> assert false)) in
      if not (split_along t dim) then
        (* Purely local: keep the shift in the kernel. *)
        Array.map (fun s -> Expr.Shift (s, dim, dir)) subs
      else begin
        let _tmp, shifted, g_ns, i_ns, f_ns, face_bytes = materialize_shift t subs ~dim ~dir in
        (match face_bytes with
        | Some fb ->
            let post = Array.mapi (fun r g -> t.rank_clock.(r) +. low.gather.(r) +. g) g_ns in
            let arr = arrival_times t ~dim ~dir ~face_bytes:fb ~post in
            Array.iteri
              (fun r a -> low.arrival.(r) <- Float.max low.arrival.(r) a)
              arr
        | None -> ());
        Array.iteri
          (fun r g ->
            low.gather.(r) <- low.gather.(r) +. g;
            low.inner_build.(r) <- low.inner_build.(r) +. i_ns.(r);
            low.face_fill.(r) <- low.face_fill.(r) +. f_ns.(r))
          g_ns;
        if depth = 0 then low.face_sets <- (dim, dir) :: low.face_sets else low.nested <- true;
        Array.map (fun f -> Expr.field f) shifted.locals
      end

(* ---------------------------------------------------------------- *)
(* Evaluation                                                        *)

type eval_timing = {
  total_ns : float;  (** max over ranks for this statement *)
  comm_overlapped : bool;
}

let eval ?(subset = Subset.All) t (dest : dfield) (mk : int -> Expr.t) =
  let n = nranks t in
  t.shift_seq <- 0;
  let exprs = Array.init n mk in
  let low =
    {
      gather = Array.make n 0.0;
      inner_build = Array.make n 0.0;
      face_fill = Array.make n 0.0;
      arrival = Array.make n 0.0;
      face_sets = [];
      nested = false;
    }
  in
  let lowered = lower t low ~depth:0 exprs in
  let local = local_geom t in
  let had_exchange = low.face_sets <> [] || low.nested in
  if not had_exchange then begin
    (* No off-node data: single launch per rank. *)
    for rank = 0 to n - 1 do
      let eng = t.engines.(rank) in
      let before = Gpusim.Device.clock_ns (Engine.device eng) in
      Engine.eval ~subset eng dest.locals.(rank) lowered.(rank);
      let ns = Gpusim.Device.clock_ns (Engine.device eng) -. before in
      t.rank_clock.(rank) <- t.rank_clock.(rank) +. ns
    done;
    { total_ns = max_clock t; comm_overlapped = false }
  end
  else begin
    (* Split the final kernel: sites whose top-level shifts were all local
       vs sites that consumed received data. *)
    let face_set = Hashtbl.create 64 in
    List.iter
      (fun (dim, dir) ->
        Array.iter (fun s -> Hashtbl.replace face_set s ()) (Geometry.face_sites local ~dim ~dir))
      low.face_sets;
    let requested = Subset.sites local subset in
    let inner_sites =
      Array.of_list (List.filter (fun s -> not (Hashtbl.mem face_set s)) (Array.to_list requested))
    in
    let face_sites =
      Array.of_list (List.filter (fun s -> Hashtbl.mem face_set s) (Array.to_list requested))
    in
    let inner_kernel_ns = Array.make n 0.0 in
    let face_kernel_ns = Array.make n 0.0 in
    for rank = 0 to n - 1 do
      let eng = t.engines.(rank) in
      let before = Gpusim.Device.clock_ns (Engine.device eng) in
      if Array.length inner_sites > 0 then
        Engine.eval ~subset:(Subset.Custom inner_sites) eng dest.locals.(rank) lowered.(rank);
      let mid = Gpusim.Device.clock_ns (Engine.device eng) in
      if Array.length face_sites > 0 then
        Engine.eval ~subset:(Subset.Custom face_sites) eng dest.locals.(rank) lowered.(rank);
      inner_kernel_ns.(rank) <- mid -. before;
      face_kernel_ns.(rank) <- Gpusim.Device.clock_ns (Engine.device eng) -. mid
    done;
    (* Timeline (Sec. V): gathers post the sends; with overlap the inner
       work hides the messages, otherwise everything waits for arrival. *)
    for rank = 0 to n - 1 do
      let t0 = t.rank_clock.(rank) in
      let after_gather = t0 +. low.gather.(rank) in
      let local_work = low.inner_build.(rank) +. inner_kernel_ns.(rank) in
      let tail = low.face_fill.(rank) +. face_kernel_ns.(rank) in
      let finish =
        if t.overlap then Float.max (after_gather +. local_work) low.arrival.(rank) +. tail
        else Float.max after_gather low.arrival.(rank) +. local_work +. tail
      in
      t.rank_clock.(rank) <- finish
    done;
    { total_ns = max_clock t; comm_overlapped = t.overlap }
  end

(* Reductions: per-rank engine reductions, summed over ranks (the MPI
   all-reduce of the real implementation). *)
let norm2 t (mk : int -> Expr.t) =
  let acc = ref 0.0 in
  for rank = 0 to nranks t - 1 do
    acc := !acc +. Engine.norm2 t.engines.(rank) (mk rank)
  done;
  !acc

let sum_real t (mk : int -> Expr.t) =
  let acc = ref 0.0 in
  for rank = 0 to nranks t - 1 do
    acc := !acc +. Engine.sum_real t.engines.(rank) (mk rank)
  done;
  !acc

let inner t (mka : int -> Expr.t) (mkb : int -> Expr.t) =
  let re = ref 0.0 and im = ref 0.0 in
  for rank = 0 to nranks t - 1 do
    let r, i = Engine.inner t.engines.(rank) (mka rank) (mkb rank) in
    re := !re +. r;
    im := !im +. i
  done;
  (!re, !im)

let fabric_stats t = Comms.Fabric.stats t.fabric
