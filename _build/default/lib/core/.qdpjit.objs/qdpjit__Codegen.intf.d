lib/core/codegen.mli: Layout Ptx Qdp
