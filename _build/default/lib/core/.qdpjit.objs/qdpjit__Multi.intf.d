lib/core/multi.mli: Comms Gpusim Layout Qdp
