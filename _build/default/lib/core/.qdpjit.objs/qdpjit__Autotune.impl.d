lib/core/autotune.ml:
