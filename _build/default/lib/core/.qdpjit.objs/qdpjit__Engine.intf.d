lib/core/engine.mli: Autotune Codegen Gpusim Layout Memcache Qdp
