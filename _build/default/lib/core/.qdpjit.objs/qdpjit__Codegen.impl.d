lib/core/codegen.ml: Array Emitter Hashtbl Jit_scalar Layout Linalg List Printf Ptx Qdp
