lib/core/autotune.mli:
