lib/core/jit_scalar.ml: Emitter Fun List Printf Ptx
