lib/core/multi.ml: Array Comms Engine Float Gpusim Hashtbl Layout List Printf Qdp
