lib/core/emitter.ml: Array Hashtbl List Option Printf Ptx
