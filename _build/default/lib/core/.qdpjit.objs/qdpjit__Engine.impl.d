lib/core/engine.ml: Array Autotune Bigarray Bytes Codegen Digest Emitter Gpusim Hashtbl Int32 Int64 Layout List Memcache Printf Ptx Qdp String
