(** PTX emission context: fresh registers, parameters and an instruction
    stream, accumulated while the code generators walk an expression. *)

open Ptx.Types

type t = {
  kname : string;
  mutable body_rev : instr list;
  mutable params_rev : param list;
  mutable nparams : int;
  counters : (dtype, int ref) Hashtbl.t;
  mutable nlabels : int;
}

let create ~kname =
  { kname; body_rev = []; params_rev = []; nparams = 0; counters = Hashtbl.create 8; nlabels = 0 }

let fresh t dtype =
  let c =
    match Hashtbl.find_opt t.counters dtype with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace t.counters dtype c;
        c
  in
  let id = !c in
  incr c;
  { rtype = dtype; id }

let emit t i = t.body_rev <- i :: t.body_rev

let add_param t dtype name =
  let index = t.nparams in
  t.nparams <- index + 1;
  t.params_rev <- { pname = name; ptype = dtype } :: t.params_rev;
  index

let fresh_label t prefix =
  let n = t.nlabels in
  t.nlabels <- n + 1;
  Printf.sprintf "%s_%d" prefix n

let finish t = { kname = t.kname; params = List.rev t.params_rev; body = List.rev t.body_rev }

(* Dead-code elimination: drop instructions whose destination is never
   consumed.  The generators load every component of a referenced element;
   operations like traceColor use only some of them, and constant folding
   orphans more.  One backward sweep suffices on the forward-branching
   straight-line code they emit. *)
let eliminate_dead_code (k : kernel) =
  let used = Hashtbl.create 64 in
  let use r = Hashtbl.replace used (r.rtype, r.id) () in
  let use_op = function Reg r -> use r | Imm_float _ | Imm_int _ -> () in
  let is_used r = Hashtbl.mem used (r.rtype, r.id) in
  let body = Array.of_list k.body in
  let keep = Array.make (Array.length body) false in
  for i = Array.length body - 1 downto 0 do
    let instr = body.(i) in
    let side_effect =
      match instr with
      | St_global _ | Bra _ | Label _ | Ret -> true
      | Ld_param _ | Ld_global _ | Mov _ | Mov_sreg _ | Add _ | Sub _ | Mul _ | Div _ | Fma _
      | Neg _ | Cvt _ | Setp _ | Call _ ->
          false
    in
    let defines =
      match instr with
      | Ld_param { dst; _ }
      | Ld_global { dst; _ }
      | Mov { dst; _ }
      | Mov_sreg { dst; _ }
      | Add { dst; _ }
      | Sub { dst; _ }
      | Mul { dst; _ }
      | Div { dst; _ }
      | Fma { dst; _ }
      | Neg { dst; _ }
      | Cvt { dst; _ }
      | Setp { dst; _ }
      | Call { ret = dst; _ } ->
          Some dst
      | St_global _ | Bra _ | Label _ | Ret -> None
    in
    if side_effect || match defines with Some d -> is_used d | None -> false then begin
      keep.(i) <- true;
      match instr with
      | Ld_param _ | Mov_sreg _ | Label _ | Ret -> ()
      | Ld_global { addr; _ } -> use addr
      | St_global { addr; src; _ } ->
          use addr;
          use_op src
      | Mov { src; _ } -> use_op src
      | Add { a; b; _ } | Sub { a; b; _ } | Mul { a; b; _ } | Div { a; b; _ } ->
          use_op a;
          use_op b
      | Fma { a; b; c; _ } ->
          use_op a;
          use_op b;
          use_op c
      | Neg { a; _ } -> use_op a
      | Cvt { src; _ } -> use src
      | Setp { a; b; _ } ->
          use_op a;
          use_op b
      | Bra { pred; _ } -> Option.iter use pred
      | Call { arg; _ } -> use arg
    end
  done;
  let filtered = ref [] in
  for i = Array.length body - 1 downto 0 do
    if keep.(i) then filtered := body.(i) :: !filtered
  done;
  { k with body = !filtered }
