(** Per-kernel thread-block-size auto-tuning (Sec. VII).

    First launch attempt uses the maximum block size the GPU allows;
    launch failures (register exhaustion) halve it until a launch
    succeeds.  Consecutive *payload* launches then probe smaller block
    sizes until the execution time degrades significantly (the paper uses
    33 %); the best configuration wins from then on.  No launch ever
    happens solely for tuning. *)

type phase =
  | Trying of int  (** initial descent: find a block size that launches *)
  | Probing of { next : int; best : int; best_ns : float }
  | Settled of int

type t = { mutable phase : phase; max_block : int; min_block : int }

let degradation_threshold = 1.33

let create ?(min_block = 32) ~max_block () =
  if max_block < min_block then invalid_arg "Autotune.create: max below min";
  { phase = Trying max_block; max_block; min_block }

let next_block t =
  match t.phase with Trying b -> b | Probing { next; _ } -> next | Settled b -> b

(* A launch at [block] failed (resources); halve and retry. *)
let on_failure t ~block =
  match t.phase with
  | Trying b when b = block ->
      if b / 2 < t.min_block then
        failwith "Autotune: no feasible block size (kernel cannot launch)"
      else t.phase <- Trying (b / 2)
  | Probing { best; _ } ->
      (* A probe failed (should not happen going downward, but be safe). *)
      t.phase <- Settled best
  | Trying _ | Settled _ ->
      failwith "Autotune.on_failure: failure reported for a block size not in flight"

(* A payload launch at [block] took [ns]. *)
let report t ~block ~ns =
  match t.phase with
  | Trying b when b = block ->
      if b / 2 < t.min_block then t.phase <- Settled b
      else t.phase <- Probing { next = b / 2; best = b; best_ns = ns }
  | Probing { next; best; best_ns } when next = block ->
      if ns > degradation_threshold *. best_ns then t.phase <- Settled best
      else begin
        let best, best_ns = if ns < best_ns then (block, ns) else (best, best_ns) in
        if block / 2 < t.min_block then t.phase <- Settled best
        else t.phase <- Probing { next = block / 2; best; best_ns }
      end
  | Trying _ | Probing _ | Settled _ -> ()

let settled t = match t.phase with Settled _ -> true | Trying _ | Probing _ -> false
let chosen_block t = match t.phase with Settled b -> Some b | _ -> None
