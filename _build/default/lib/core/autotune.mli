(** Per-kernel thread-block-size auto-tuning (the paper's Sec. VII).

    The first launch attempt uses the maximum block size the GPU allows;
    launch failures (resource exhaustion) halve it until a launch
    succeeds.  Consecutive *payload* launches then probe smaller blocks
    until the execution time degrades by more than 33 %, after which the
    best configuration is used for all consecutive launches.  No launch
    ever happens solely for tuning. *)

type t

val create : ?min_block:int -> max_block:int -> unit -> t

val next_block : t -> int
(** The block size the next launch should use. *)

val on_failure : t -> block:int -> unit
(** The launch at [block] failed to start: halve and retry.  Raises
    [Failure] if no feasible block size remains. *)

val report : t -> block:int -> ns:float -> unit
(** A payload launch at [block] took [ns]; drives the probe sequence. *)

val settled : t -> bool
val chosen_block : t -> int option
(** The settled block size, if tuning has finished. *)

val degradation_threshold : float
(** The 33 % probe-stop rule (1.33). *)
