(** Small statistics helpers for benchmark and HMC observable analysis. *)

val mean : float array -> float
(** Arithmetic mean; raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (zero for arrays of length < 2). *)

val std_dev : float array -> float

val std_error : float array -> float
(** Standard error of the mean. *)

val min_max : float array -> float * float

val jackknife : (float array -> float) -> float array -> float * float
(** [jackknife f xs] returns [(estimate, error)] of the statistic [f] using
    leave-one-out resampling; used for autocorrelated HMC observables. *)

val linear_fit : float array -> float array -> float * float
(** [linear_fit xs ys] returns [(slope, intercept)] of the least-squares
    line; used to check the dH ~ dt^2 scaling of symplectic integrators. *)
