(* Classic error-free transformations (Dekker/Knuth); two_prod uses the fused
   multiply-add so the product error is exact. *)

type t = { hi : float; lo : float }

let zero = { hi = 0.0; lo = 0.0 }
let one = { hi = 1.0; lo = 0.0 }
let of_float x = { hi = x; lo = 0.0 }
let to_float x = x.hi +. x.lo

let two_sum a b =
  let s = a +. b in
  let bb = s -. a in
  let err = (a -. (s -. bb)) +. (b -. bb) in
  (s, err)

let quick_two_sum a b =
  (* Requires |a| >= |b|. *)
  let s = a +. b in
  let err = b -. (s -. a) in
  (s, err)

let two_prod a b =
  let p = a *. b in
  let err = Float.fma a b (-.p) in
  (p, err)

let add x y =
  let s, e = two_sum x.hi y.hi in
  let e = e +. x.lo +. y.lo in
  let hi, lo = quick_two_sum s e in
  { hi; lo }

let neg x = { hi = -.x.hi; lo = -.x.lo }
let sub x y = add x (neg y)

let mul x y =
  let p, e = two_prod x.hi y.hi in
  let e = e +. (x.hi *. y.lo) +. (x.lo *. y.hi) in
  let hi, lo = quick_two_sum p e in
  { hi; lo }

let div x y =
  (* One Newton refinement of the double quotient. *)
  let q1 = x.hi /. y.hi in
  let r = sub x (mul (of_float q1) y) in
  let q2 = (r.hi +. r.lo) /. (y.hi +. y.lo) in
  let hi, lo = quick_two_sum q1 q2 in
  { hi; lo }

let abs x = if x.hi < 0.0 || (x.hi = 0.0 && x.lo < 0.0) then neg x else x

let compare_abs a b =
  let a = abs a and b = abs b in
  match compare a.hi b.hi with 0 -> compare a.lo b.lo | c -> c

let solve a b =
  let n = Array.length a in
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Dd.solve: matrix not square") a;
  if Array.length b <> n then invalid_arg "Dd.solve: rhs length mismatch";
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    let best = ref k in
    for i = k + 1 to n - 1 do
      if compare_abs m.(i).(k) m.(!best).(k) > 0 then best := i
    done;
    if !best <> k then begin
      let tmp = m.(k) in
      m.(k) <- m.(!best);
      m.(!best) <- tmp;
      let tb = x.(k) in
      x.(k) <- x.(!best);
      x.(!best) <- tb
    end;
    let pivot = m.(k).(k) in
    if abs_float (to_float pivot) < 1e-300 then raise Linsolve.Singular;
    for i = k + 1 to n - 1 do
      let factor = div m.(i).(k) pivot in
      m.(i).(k) <- zero;
      for j = k + 1 to n - 1 do
        m.(i).(j) <- sub m.(i).(j) (mul factor m.(k).(j))
      done;
      x.(i) <- sub x.(i) (mul factor x.(k))
    done
  done;
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- sub x.(i) (mul m.(i).(j) x.(j))
    done;
    x.(i) <- div x.(i) m.(i).(i)
  done;
  x

let solve_float a b =
  let ad = Array.map (Array.map of_float) a in
  let bd = Array.map of_float b in
  Array.map to_float (solve ad bd)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
