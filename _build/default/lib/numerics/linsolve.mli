(** Dense linear algebra over [float] — just enough for the Remez solver
    and small fitting problems.  Matrices are [float array array] in row-major
    order; all functions are total and raise [Singular] rather than returning
    garbage. *)

exception Singular
(** Raised when elimination encounters a pivot below numerical tolerance. *)

val solve : float array array -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  [a] and [b] are not modified.  Raises [Singular] if [a] is
    (numerically) singular and [Invalid_argument] on shape mismatch. *)

val solve_many : float array array -> float array array -> float array array
(** [solve_many a bs] solves for several right-hand sides sharing one
    factorization; [bs] is an array of right-hand-side vectors. *)

val lstsq : float array array -> float array -> float array
(** [lstsq a b] solves the least-squares problem [min ||a x - b||] via the
    normal equations; adequate for the small, well-conditioned systems used
    here. *)

val mat_vec : float array array -> float array -> float array
(** Matrix–vector product. *)

val residual_norm : float array array -> float array -> float array -> float
(** [residual_norm a x b] is [||a x - b||_2]; used by tests. *)
