type t = float array

let degree p =
  let n = ref (Array.length p - 1) in
  while !n > 0 && p.(!n) = 0.0 do
    decr n
  done;
  max 0 !n

let eval p x =
  let acc = ref 0.0 in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

let eval_complex p z =
  let acc = ref Complex.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Complex.add (Complex.mul !acc z) { Complex.re = p.(i); im = 0.0 }
  done;
  !acc

let derivative p =
  let n = Array.length p in
  if n <= 1 then [| 0.0 |]
  else Array.init (n - 1) (fun i -> float_of_int (i + 1) *. p.(i + 1))

let mul p q =
  let np = Array.length p and nq = Array.length q in
  let r = Array.make (np + nq - 1) 0.0 in
  for i = 0 to np - 1 do
    for j = 0 to nq - 1 do
      r.(i + j) <- r.(i + j) +. (p.(i) *. q.(j))
    done
  done;
  r

let add p q =
  let n = max (Array.length p) (Array.length q) in
  Array.init n (fun i ->
      (if i < Array.length p then p.(i) else 0.0) +. if i < Array.length q then q.(i) else 0.0)

let scale s p = Array.map (fun c -> s *. c) p

let of_roots rs = Array.fold_left (fun acc r -> mul acc [| -.r; 1.0 |]) [| 1.0 |] rs

let roots ?(max_iter = 2000) ?(tol = 1e-12) p =
  let n = degree p in
  if n = 0 then [||]
  else begin
    let p = Array.sub p 0 (n + 1) in
    (* Normalize to monic for stability of the iteration. *)
    let lead = p.(n) in
    let p = Array.map (fun c -> c /. lead) p in
    (* Root magnitudes can span many orders (Remez denominators have poles
       spread geometrically), so start the guesses on a geometric ladder of
       magnitudes inside the Cauchy bound, with an irrational angle offset to
       break symmetry. *)
    let bound =
      1.0 +. Array.fold_left (fun acc c -> max acc (abs_float c)) 0.0 (Array.sub p 0 n)
    in
    let zs =
      Array.init n (fun k ->
          let frac = (float_of_int k +. 1.0) /. float_of_int (n + 1) in
          let radius = bound ** frac in
          let angle = ((2.0 *. Float.pi *. float_of_int k) /. float_of_int n) +. 0.4 in
          Complex.polar radius angle)
    in
    let converged = ref false in
    let iter = ref 0 in
    while (not !converged) && !iter < max_iter do
      incr iter;
      let all_small = ref true in
      for i = 0 to n - 1 do
        let zi = zs.(i) in
        let denom = ref Complex.one in
        for j = 0 to n - 1 do
          if j <> i then denom := Complex.mul !denom (Complex.sub zi zs.(j))
        done;
        let step = Complex.div (eval_complex p zi) !denom in
        zs.(i) <- Complex.sub zi step;
        if Complex.norm step > tol *. max 1.0 (Complex.norm zi) then all_small := false
      done;
      if !all_small then converged := true
    done;
    if not !converged then failwith "Poly.roots: Durand-Kerner did not converge";
    zs
  end

(* Real roots by sign-change scanning + bisection.  All roots lie within the
   Cauchy bound B = 1 + max |c_i / c_n|; we scan [-B, B] with geometric grids
   on both signs (roots of Remez denominators are spread over many orders of
   magnitude) plus a fine linear grid near zero, and bisect every bracket.
   Roots of even multiplicity are invisible to sign changes; the rational
   approximation denominators this serves have only simple roots. *)
let real_roots ?tol_imag:_ p =
  let n = degree p in
  if n = 0 then [||]
  else begin
    let lead = p.(n) in
    let bound =
      1.0
      +. Array.fold_left (fun acc c -> max acc (abs_float (c /. lead))) 0.0 (Array.sub p 0 n)
    in
    let eps = bound *. 1e-18 in
    let per_side = 4000 in
    let candidates = ref [] in
    (* Geometric ladders from eps to bound, both signs, plus 0 and the ends. *)
    for i = 0 to per_side do
      let m = eps *. ((bound /. eps) ** (float_of_int i /. float_of_int per_side)) in
      candidates := m :: -.m :: !candidates
    done;
    candidates := 0.0 :: !candidates;
    let grid = Array.of_list !candidates in
    Array.sort compare grid;
    let bisect a b =
      let fa = eval p a in
      let rec go a b fa iter =
        if iter > 200 then (a +. b) /. 2.0
        else begin
          let m = (a +. b) /. 2.0 in
          if m = a || m = b then m
          else begin
            let fm = eval p m in
            if fm = 0.0 then m
            else if fa *. fm < 0.0 then go a m fa (iter + 1)
            else go m b fm (iter + 1)
          end
        end
      in
      go a b fa 0
    in
    let out = ref [] in
    for i = 0 to Array.length grid - 2 do
      let a = grid.(i) and b = grid.(i + 1) in
      let fa = eval p a and fb = eval p b in
      if fa = 0.0 then begin
        match !out with
        | r :: _ when r = a -> ()
        | _ -> out := a :: !out
      end
      else if fa *. fb < 0.0 then out := bisect a b :: !out
    done;
    let last = grid.(Array.length grid - 1) in
    if eval p last = 0.0 then out := last :: !out;
    let arr = Array.of_list !out in
    Array.sort compare arr;
    arr
  end
