(** Zolotarev's closed-form optimal rational approximation of [x^(-1/2)].

    For the inverse square root the minimax problem has an explicit solution
    in terms of Jacobi elliptic functions (Zolotarev 1877); this is the
    production path for the RHMC force term, valid for arbitrary spectral
    ranges where the double-precision Remez exchange cannot be stabilised.
    The relative error decays like [exp(-c n / log(hi/lo))]. *)

val inv_sqrt : degree:int -> lo:float -> hi:float -> Ratfun.t
(** Degree-(n,n) rational approximation to [x^(-1/2)] on [lo,hi] in
    partial-fraction form, with all poles real negative.  Requires
    [degree >= 1] and [0 < lo < hi]. *)

val sqrt_ : degree:int -> lo:float -> hi:float -> Ratfun.t
(** Approximation to [x^(+1/2)]: [x * inv_sqrt x] folded back into
    partial-fraction form. *)

val theoretical_error : degree:int -> lo:float -> hi:float -> float
(** Measured maximum relative error of [inv_sqrt] on a fine grid (the
    approximation is optimal, so this is also the minimax error for the
    given degree and range). *)

(** Jacobi elliptic functions, exposed for testing. *)
module Elliptic : sig
  val agm : float -> float -> float
  (** Arithmetic–geometric mean. *)

  val complete_k : float -> float
  (** Complete elliptic integral K(k), with modulus [0 <= k < 1]. *)

  val sn_cn_dn : u:float -> k:float -> float * float * float
  (** Jacobi sn, cn, dn at argument [u] with modulus [k] (via the
      descending-Landen / AGM algorithm). *)
end
