exception Singular

let pivot_tolerance = 1e-300

let check_square a =
  let n = Array.length a in
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Linsolve: matrix not square") a;
  n

(* LU factorization with partial pivoting, in place on a copy.
   Returns (lu, perm) where perm.(i) is the source row of pivot row i. *)
let lu_factor a =
  let n = check_square a in
  let lu = Array.map Array.copy a in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* Find the pivot row. *)
    let best = ref k in
    for i = k + 1 to n - 1 do
      if abs_float lu.(i).(k) > abs_float lu.(!best).(k) then best := i
    done;
    if !best <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!best);
      lu.(!best) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- tp
    end;
    let pivot = lu.(k).(k) in
    if abs_float pivot < pivot_tolerance then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = lu.(i).(k) /. pivot in
      lu.(i).(k) <- factor;
      for j = k + 1 to n - 1 do
        lu.(i).(j) <- lu.(i).(j) -. (factor *. lu.(k).(j))
      done
    done
  done;
  (lu, perm)

let lu_solve (lu, perm) b =
  let n = Array.length lu in
  if Array.length b <> n then invalid_arg "Linsolve: rhs length mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution (unit lower triangle). *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- x.(i) /. lu.(i).(i)
  done;
  x

let solve a b = lu_solve (lu_factor a) b

let solve_many a bs =
  let fact = lu_factor a in
  Array.map (lu_solve fact) bs

let mat_vec a x =
  Array.map
    (fun row ->
      if Array.length row <> Array.length x then invalid_arg "Linsolve.mat_vec: shape mismatch";
      let acc = ref 0.0 in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    a

let lstsq a b =
  let m = Array.length a in
  if m = 0 then invalid_arg "Linsolve.lstsq: empty system";
  let n = Array.length a.(0) in
  if Array.length b <> m then invalid_arg "Linsolve.lstsq: rhs length mismatch";
  (* Normal equations: (A^T A) x = A^T b. *)
  let ata = Array.make_matrix n n 0.0 in
  let atb = Array.make n 0.0 in
  for i = 0 to m - 1 do
    let row = a.(i) in
    for j = 0 to n - 1 do
      atb.(j) <- atb.(j) +. (row.(j) *. b.(i));
      for k = 0 to n - 1 do
        ata.(j).(k) <- ata.(j).(k) +. (row.(j) *. row.(k))
      done
    done
  done;
  solve ata atb

let residual_norm a x b =
  let r = mat_vec a x in
  let acc = ref 0.0 in
  Array.iteri
    (fun i v ->
      let d = v -. b.(i) in
      acc := !acc +. (d *. d))
    r;
  sqrt !acc
