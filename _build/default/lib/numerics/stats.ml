let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let std_dev xs = sqrt (variance xs)

let std_error xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.std_error: empty array";
  std_dev xs /. sqrt (float_of_int n)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left (fun (lo, hi) x -> (min lo x, max hi x)) (xs.(0), xs.(0)) xs

let jackknife f xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Stats.jackknife: need at least 2 samples";
  let full = f xs in
  let resampled =
    Array.init n (fun drop ->
        f (Array.init (n - 1) (fun i -> if i < drop then xs.(i) else xs.(i + 1))))
  in
  let m = mean resampled in
  let var =
    Array.fold_left (fun acc r -> acc +. ((r -. m) *. (r -. m))) 0.0 resampled
    *. (float_of_int (n - 1) /. float_of_int n)
  in
  (full, sqrt var)

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys || n < 2 then invalid_arg "Stats.linear_fit: shape mismatch";
  let mx = mean xs and my = mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 in
  for i = 0 to n - 1 do
    sxx := !sxx +. ((xs.(i) -. mx) *. (xs.(i) -. mx));
    sxy := !sxy +. ((xs.(i) -. mx) *. (ys.(i) -. my))
  done;
  if !sxx = 0.0 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = !sxy /. !sxx in
  (slope, my -. (slope *. mx))
