lib/numerics/zolotarev.mli: Ratfun
