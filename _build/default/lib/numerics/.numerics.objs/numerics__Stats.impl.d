lib/numerics/stats.ml: Array
