lib/numerics/remez.ml: Array Dd Float Printf Ratfun Sys
