lib/numerics/remez.mli: Ratfun
