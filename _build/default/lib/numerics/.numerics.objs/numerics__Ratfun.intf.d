lib/numerics/ratfun.mli:
