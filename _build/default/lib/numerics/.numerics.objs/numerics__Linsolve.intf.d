lib/numerics/linsolve.mli:
