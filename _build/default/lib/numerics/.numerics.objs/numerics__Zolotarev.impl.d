lib/numerics/zolotarev.ml: Array Float Ratfun
