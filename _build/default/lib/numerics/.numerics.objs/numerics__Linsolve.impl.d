lib/numerics/linsolve.ml: Array
