lib/numerics/dd.mli:
