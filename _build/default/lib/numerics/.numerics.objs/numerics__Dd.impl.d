lib/numerics/dd.ml: Array Float Linsolve
