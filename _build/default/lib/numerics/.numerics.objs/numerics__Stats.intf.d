lib/numerics/stats.mli:
