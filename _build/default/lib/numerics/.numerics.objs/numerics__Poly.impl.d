lib/numerics/poly.ml: Array Complex Float
