lib/numerics/poly.mli: Complex
