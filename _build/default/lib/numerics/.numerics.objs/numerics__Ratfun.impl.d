lib/numerics/ratfun.ml: Array Float
