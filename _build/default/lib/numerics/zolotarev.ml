module Elliptic = struct
  let agm a0 b0 =
    let a = ref a0 and b = ref b0 in
    let continue_ = ref true in
    while !continue_ do
      let a' = (!a +. !b) /. 2.0 and b' = sqrt (!a *. !b) in
      if abs_float (a' -. !a) <= 1e-16 *. abs_float a' then continue_ := false;
      a := a';
      b := b'
    done;
    !a

  let complete_k k =
    if k < 0.0 || k >= 1.0 then invalid_arg "Elliptic.complete_k: need 0 <= k < 1";
    let k' = sqrt ((1.0 -. k) *. (1.0 +. k)) in
    Float.pi /. (2.0 *. agm 1.0 k')

  (* Jacobi sn, cn, dn by the AGM / descending-Landen algorithm
     (Abramowitz & Stegun 16.4).  dn is recovered from the identity
     dn^2 = 1 - k^2 sn^2, which is stable for real arguments. *)
  let sn_cn_dn ~u ~k =
    if k < 0.0 || k >= 1.0 then invalid_arg "Elliptic.sn_cn_dn: need 0 <= k < 1";
    if k = 0.0 then (sin u, cos u, 1.0)
    else begin
      let max_steps = 64 in
      let a = Array.make (max_steps + 1) 0.0 in
      let c = Array.make (max_steps + 1) 0.0 in
      a.(0) <- 1.0;
      c.(0) <- k;
      let b = ref (sqrt ((1.0 -. k) *. (1.0 +. k))) in
      let n = ref 0 in
      let continue_ = ref true in
      while !continue_ && !n < max_steps do
        let an = a.(!n) in
        let a' = (an +. !b) /. 2.0 in
        let c' = (an -. !b) /. 2.0 in
        let b' = sqrt (an *. !b) in
        incr n;
        a.(!n) <- a';
        c.(!n) <- c';
        b := b';
        if abs_float c' <= 1e-17 *. a' then continue_ := false
      done;
      let phi = ref (Float.ldexp (a.(!n) *. u) !n) in
      for i = !n downto 1 do
        phi := (!phi +. asin (c.(i) /. a.(i) *. sin !phi)) /. 2.0
      done;
      let sn = sin !phi and cn = cos !phi in
      let dn = sqrt (1.0 -. (k *. k *. sn *. sn)) in
      (sn, cn, dn)
    end
end

(* Zolotarev's solution for sign(s) on [l,1] of type (2p+1, 2p):
     sign(s) ~ C s prod_j (s^2 + c_{2j}) / (s^2 + c_{2j-1}),
     c_m = l^2 sn^2(m K/(2p+1); kappa) / cn^2(...),  kappa = sqrt(1 - l^2).
   Dividing by s gives the type-(p,p) relative-minimax approximation of
   x^(-1/2) on [l^2, 1] with poles -c_{2j-1} and zeros -c_{2j}. *)

let coefficients ~degree ~ell =
  let p = degree in
  let kappa = sqrt ((1.0 -. ell) *. (1.0 +. ell)) in
  let kk = Elliptic.complete_k kappa in
  Array.init (2 * p) (fun i ->
      let m = float_of_int (i + 1) in
      let u = m *. kk /. float_of_int ((2 * p) + 1) in
      let sn, cn, _ = Elliptic.sn_cn_dn ~u ~k:kappa in
      ell *. ell *. sn *. sn /. (cn *. cn))

(* Scaling constant that centers the relative error: with
   g(x) = sqrt(x) prod (x + c_even)/(x + c_odd), the optimal C is
   2 / (max g + min g). *)
let ratio_product cs x =
  let p = Array.length cs / 2 in
  let acc = ref 1.0 in
  for j = 1 to p do
    acc := !acc *. (x +. cs.((2 * j) - 1)) /. (x +. cs.((2 * j) - 2))
    (* zero-based: c_{2j} is cs.(2j-1), c_{2j-1} is cs.(2j-2) *)
  done;
  !acc

let inv_sqrt ~degree ~lo ~hi =
  if degree < 1 then invalid_arg "Zolotarev.inv_sqrt: degree must be >= 1";
  if lo <= 0.0 || hi <= lo then invalid_arg "Zolotarev.inv_sqrt: need 0 < lo < hi";
  let p = degree in
  let ell = sqrt (lo /. hi) in
  let cs = coefficients ~degree ~ell in
  (* cs.(i) = c_{i+1}: odd-index coefficients c_1, c_3, ... are the poles,
     even-index c_2, c_4, ... the zeros. *)
  let g x = sqrt x *. ratio_product cs x in
  let samples = 4001 in
  let gmin = ref infinity and gmax = ref neg_infinity in
  for i = 0 to samples - 1 do
    let y =
      (ell *. ell)
      *. ((1.0 /. (ell *. ell)) ** (float_of_int i /. float_of_int (samples - 1)))
    in
    let v = g y in
    if v < !gmin then gmin := v;
    if v > !gmax then gmax := v
  done;
  let c0 = 2.0 /. (!gmax +. !gmin) in
  (* Partial fractions in the rescaled variable y = x / hi:
     R(y) = c0 prod (y + z_j)/(y + p_j),  a0 = c0,
     residue_j = c0 prod_l (z_l - p_j) / prod_{l<>j} (p_l - p_j). *)
  let poles = Array.init p (fun j -> cs.(2 * j)) in
  let zeros = Array.init p (fun j -> cs.((2 * j) + 1)) in
  let terms =
    Array.init p (fun j ->
        let pj = poles.(j) in
        let num = ref c0 in
        Array.iter (fun z -> num := !num *. (z -. pj)) zeros;
        Array.iteri (fun l pl -> if l <> j then num := !num /. (pl -. pj)) poles;
        (* Map back to x = hi * y: alpha' = alpha * sqrt hi, beta' = beta * hi
           (including the overall 1/sqrt(hi) from x^(-1/2) scaling). *)
        (!num *. sqrt hi, pj *. hi))
  in
  { Ratfun.a0 = c0 /. sqrt hi; terms }

(* x^{1/2} ~ 1/R(x) where R = inv_sqrt: the reciprocal of a relative-minimax
   approximant approximates the reciprocal power with the same relative
   error.  1/R is again a (p,p) rational; its poles are the zeros of R,
   which Zolotarev gives in closed form (-c_{2j} * hi), and the residue at a
   simple zero x_z of R is 1/R'(x_z). *)
let sqrt_ ~degree ~lo ~hi =
  let r = inv_sqrt ~degree ~lo ~hi in
  let ell = sqrt (lo /. hi) in
  let cs = coefficients ~degree ~ell in
  let r_deriv x =
    Array.fold_left
      (fun acc (alpha, beta) -> acc -. (alpha /. ((x +. beta) *. (x +. beta))))
      0.0 r.Ratfun.terms
  in
  let terms =
    Array.init degree (fun j ->
        let x_zero = -.(cs.((2 * j) + 1) *. hi) in
        (1.0 /. r_deriv x_zero, -.x_zero))
  in
  { Ratfun.a0 = 1.0 /. r.Ratfun.a0; terms }

let theoretical_error ~degree ~lo ~hi =
  let r = inv_sqrt ~degree ~lo ~hi in
  Ratfun.max_rel_error r ~exponent:(-0.5) ~lo ~hi ~samples:4001
