type t = { a0 : float; terms : (float * float) array }

let eval r x =
  Array.fold_left (fun acc (alpha, beta) -> acc +. (alpha /. (x +. beta))) r.a0 r.terms

let num_terms r = Array.length r.terms

let x_times r =
  if r.a0 <> 0.0 then invalid_arg "Ratfun.x_times: nonzero constant term";
  (* x * sum a/(x+b) = sum a - sum a*b/(x+b) *)
  let a0 = Array.fold_left (fun acc (alpha, _) -> acc +. alpha) 0.0 r.terms in
  { a0; terms = Array.map (fun (alpha, beta) -> (-.alpha *. beta, beta)) r.terms }

let of_quadrature ~sigma ~points ~lo ~hi =
  if sigma <= 0.0 || sigma >= 1.0 then invalid_arg "Ratfun.of_quadrature: need 0 < sigma < 1";
  if lo <= 0.0 || hi <= lo then invalid_arg "Ratfun.of_quadrature: need 0 < lo < hi";
  if points < 2 then invalid_arg "Ratfun.of_quadrature: need at least 2 points";
  (* Truncation margins: after t = e^u the integrand decays like
     exp((1-s)u) towards u -> -inf and exp(-s u) towards +inf; size each
     side for ~1e-9 tails.  Keeping the upper margin tight also keeps the
     large-beta residues small, which matters when [x_times] later folds
     the expansion (the constant term must not dwarf the result). *)
  let u_min = log lo -. (21.0 /. (1.0 -. sigma)) in
  let u_max = log hi +. (21.0 /. sigma) in
  let h = (u_max -. u_min) /. float_of_int (points - 1) in
  let prefactor = sin (Float.pi *. sigma) /. Float.pi in
  let terms =
    Array.init points (fun i ->
        let u = u_min +. (h *. float_of_int i) in
        let weight = if i = 0 || i = points - 1 then h /. 2.0 else h in
        let alpha = prefactor *. weight *. exp ((1.0 -. sigma) *. u) in
        let beta = exp u in
        (alpha, beta))
  in
  { a0 = 0.0; terms }

let of_quadrature_pow ~sigma ~points ~lo ~hi =
  (* x^s = x * x^(s-1); x^(s-1) = x^-(1-s) comes from the base generator. *)
  x_times (of_quadrature ~sigma:(1.0 -. sigma) ~points ~lo ~hi)

let max_rel_error r ~exponent ~lo ~hi ~samples =
  if samples < 2 then invalid_arg "Ratfun.max_rel_error: need at least 2 samples";
  let log_lo = log lo and log_hi = log hi in
  let worst = ref 0.0 in
  for i = 0 to samples - 1 do
    let x = exp (log_lo +. ((log_hi -. log_lo) *. float_of_int i /. float_of_int (samples - 1))) in
    let exact = x ** exponent in
    let err = abs_float ((eval r x /. exact) -. 1.0) in
    if err > !worst then worst := err
  done;
  !worst
