(** Remez exchange for minimax rational approximation of [x^sigma].

    RHMC (Clark–Kennedy, the paper's Ref. 14) evaluates fractional powers of
    the clover-Dirac normal operator through an optimal rational
    approximation.  This module computes the degree-(n,n) rational minimax
    approximation to [f(x) = x^sigma] on [lo,hi] under *relative* error, the
    standard choice for RHMC.  The exchange is carried out in a Chebyshev
    basis on the geometric-mean-rescaled interval to stay well conditioned in
    double precision.  The artifacts RHMC consumes are the two
    partial-fraction expansions: [pfe ~ x^sigma] and [pfe_inv ~ x^-sigma]
    (the inverse of a relative-minimax approximant approximates the inverse
    power with the same relative error). *)

type result = {
  sigma : float;  (** the approximated exponent *)
  lo : float;
  hi : float;  (** approximation interval *)
  degree : int;  (** achieved numerator = denominator degree (see [approx]) *)
  error : float;  (** achieved max relative error on [lo,hi] *)
  pfe : Ratfun.t;  (** partial fractions ~ x^sigma *)
  pfe_inv : Ratfun.t;  (** partial fractions ~ x^-sigma *)
}

val approx : sigma:float -> degree:int -> lo:float -> hi:float -> result
(** [approx ~sigma ~degree ~lo ~hi] runs the Remez exchange.  Requirements:
    [0 < |sigma| < 1], [degree >= 1], [0 < lo < hi].  Negative [sigma] is
    served by approximating [x^|sigma|] and swapping the two partial-fraction
    forms.

    The exchange runs a degree continuation 1..degree; if the highest degrees
    cannot be stabilised in double-double precision (wide [hi/lo] ratios),
    the best valid lower-degree solution is returned with its honest [error]
    and [degree] fields — callers that need a guaranteed-optimal x^(+-1/2)
    approximation over wide ranges should use {!Zolotarev} instead.  Raises
    [Failure] only when no degree yields a valid expansion. *)

val eval : result -> float -> float
(** Evaluate the [x^sigma] approximant (i.e. [pfe]) at a point. *)

val check_equioscillation : result -> samples:int -> float
(** Max relative deviation of [pfe] over a fresh log grid; tests use this to
    confirm the claimed [error]. *)
