type result = {
  sigma : float;
  lo : float;
  hi : float;
  degree : int;
  error : float;
  pfe : Ratfun.t;
  pfe_inv : Ratfun.t;
}

(* The exchange runs in a transformed variable.  x in [lo,hi] is first
   rescaled by the geometric mean c = sqrt(lo*hi) to y = x/c, then mapped
   affinely to t in [-1,1].  Polynomials are represented in the Chebyshev
   basis in t while solving, which keeps the linear systems well conditioned
   for degrees up to ~14 in double precision; they are converted to monomial
   form (still in t) only for root finding. *)

type frame = { c : float; t0 : float; dt_dy : float }
(* t = dt_dy * (y - t0-ish); concretely t = (2y - (ylo+yhi)) / (yhi-ylo). *)

let make_frame lo hi =
  let c = sqrt (lo *. hi) in
  let ylo = lo /. c and yhi = hi /. c in
  { c; t0 = (ylo +. yhi) /. 2.0; dt_dy = 2.0 /. (yhi -. ylo) }

let t_of_x fr x = ((x /. fr.c) -. fr.t0) *. fr.dt_dy

(* Chebyshev polynomial values T_0..T_n at t (Clenshaw-free, direct recurrence). *)
let cheb_values n t =
  let v = Array.make (n + 1) 1.0 in
  if n >= 1 then v.(1) <- t;
  for k = 2 to n do
    v.(k) <- (2.0 *. t *. v.(k - 1)) -. v.(k - 2)
  done;
  v

let cheb_eval coeffs t =
  let n = Array.length coeffs - 1 in
  let v = cheb_values n t in
  let acc = ref 0.0 in
  for k = 0 to n do
    acc := !acc +. (coeffs.(k) *. v.(k))
  done;
  !acc

let log_grid lo hi n =
  let llo = log lo and lhi = log hi in
  Array.init n (fun i -> exp (llo +. ((lhi -. llo) *. float_of_int i /. float_of_int (n - 1))))

(* Initial reference: Chebyshev points in log x. *)
let initial_points lo hi count =
  let llo = log lo and lhi = log hi in
  let mid = (llo +. lhi) /. 2.0 and half = (lhi -. llo) /. 2.0 in
  let pts =
    Array.init count (fun k ->
        exp (mid +. (half *. cos (Float.pi *. float_of_int k /. float_of_int (count - 1)))))
  in
  Array.sort compare pts;
  pts

(* Solve for Chebyshev coefficients p_0..p_n, q_0..q_{n-1} (leading Chebyshev
   coefficient of q fixed to 1) and level E on the reference x-points,
   iterating the linearization q -> q_prev inside the E term. *)
let solve_on_points ~sigma ~degree ~q_init fr xs =
  let n = degree in
  let count = Array.length xs in
  assert (count = (2 * n) + 2);
  let f = Array.map (fun x -> x ** sigma) xs in
  let tvals = Array.map (fun x -> cheb_values n (t_of_x fr x)) xs in
  let q_prev = ref (q_init xs) in
  (* Unknowns: p_0..p_n, q_0..q_n, E.  Point equations are homogeneous in
     (p,q); the last row pins the normalization q(c) = 1 at the geometric
     midpoint, which anchors the denominator positive on the interval and
     keeps the iteration off the degenerate (interior-pole) branch. *)
  let dim = (2 * n) + 3 in
  let t_mid = t_of_x fr (sqrt (fr.c *. fr.c)) in
  let tv_mid = cheb_values n t_mid in
  let coeffs = ref [||] in
  let e_level = ref 0.0 in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < 100 do
    incr iter;
    let a = Array.make_matrix dim dim 0.0 in
    let b = Array.make dim 0.0 in
    for i = 0 to count - 1 do
      let tv = tvals.(i) in
      let sign = if i land 1 = 0 then 1.0 else -1.0 in
      (* Residual being zeroed: p(x_i) - f_i (1 + sign_i E) q(x_i); the q
         columns carry the (1 + sign_i E_prev) factor so that the fixed
         point solves the full nonlinear system, not a truncation of it. *)
      let efac = 1.0 +. (sign *. !e_level) in
      for j = 0 to n do
        a.(i).(j) <- tv.(j);
        a.(i).(n + 1 + j) <- -.f.(i) *. efac *. tv.(j)
      done;
      a.(i).(dim - 1) <- -.sign *. f.(i) *. !q_prev.(i);
      b.(i) <- 0.0
    done;
    for j = 0 to n do
      a.(dim - 1).(n + 1 + j) <- tv_mid.(j)
    done;
    b.(dim - 1) <- 1.0;
    (* The system's conditioning exhausts plain doubles well before the
       equioscillation level does; solve in double-double. *)
    let sol = Dd.solve_float a b in
    let new_e = sol.(dim - 1) in
    let q_coeff = Array.init (n + 1) (fun j -> sol.(n + 1 + j)) in
    let q_vals =
      Array.map (fun tv ->
          let acc = ref 0.0 in
          Array.iteri (fun k c -> acc := !acc +. (c *. tv.(k))) q_coeff;
          !acc)
        tvals
    in
    (* Branch guard: the nearby degenerate (interpolation) fixed point shows
       up as a collapsing level |E| or as a denominator changing sign across
       the reference points.  Reject such steps and keep the last good
       iterate — the outer exchange only needs a usable on-branch solve. *)
    let sign_flip =
      let s0 = if q_vals.(0) >= 0.0 then 1.0 else -1.0 in
      Array.exists (fun v -> v *. s0 <= 0.0) q_vals
    in
    let collapse = !e_level <> 0.0 && abs_float new_e < 0.01 *. abs_float !e_level in
    if (sign_flip || collapse) && !coeffs <> [||] then converged := true
    else begin
      q_prev := q_vals;
      if abs_float (new_e -. !e_level) <= 1e-14 *. (abs_float new_e +. 1e-300) then
        converged := true;
      e_level := new_e;
      coeffs := sol
    end
  done;
  let sol = !coeffs in
  let p = Array.init (n + 1) (fun j -> sol.(j)) in
  let q = Array.init (n + 1) (fun j -> sol.(n + 1 + j)) in
  (p, q, abs_float !e_level)

let rel_error ~sigma fr p q x =
  let t = t_of_x fr x in
  (cheb_eval p t /. cheb_eval q t /. (x ** sigma)) -. 1.0

(* Single-point exchange (Remez's first algorithm): swap the global error
   maximizer into the reference set, replacing the neighbour whose error has
   the same sign so that the sign alternation across the reference points is
   preserved exactly.  Slower than multi-point exchange but immune to the
   degenerate reference sets (duplicates, broken alternation) that
   multi-point variants produce when the error has flat regions. *)
let exchange_single ~sigma fr p q lo hi old_pts =
  let grid = log_grid lo hi 20000 in
  let best_x = ref grid.(0) and best_e = ref 0.0 in
  Array.iter
    (fun x ->
      let e = rel_error ~sigma fr p q x in
      if abs_float e > abs_float !best_e then begin
        best_x := x;
        best_e := e
      end)
    grid;
  let x_star = !best_x and e_star = !best_e in
  let count = Array.length old_pts in
  let e_at = Array.map (fun x -> rel_error ~sigma fr p q x) old_pts in
  let same_sign a b = a *. b > 0.0 in
  (* Index of the first old point greater than x_star. *)
  let idx = ref 0 in
  while !idx < count && old_pts.(!idx) < x_star do incr idx done;
  let pts = Array.copy old_pts in
  if !idx < count && old_pts.(!idx) = x_star then pts (* already a reference point *)
  else begin
    (if !idx = 0 then
       if same_sign e_star e_at.(0) then pts.(0) <- x_star
       else begin
         (* New extremum beyond the left end with opposite sign: shift the
            whole set right, dropping the rightmost point. *)
         for i = count - 1 downto 1 do
           pts.(i) <- pts.(i - 1)
         done;
         pts.(0) <- x_star
       end
     else if !idx = count then
       if same_sign e_star e_at.(count - 1) then pts.(count - 1) <- x_star
       else begin
         for i = 0 to count - 2 do
           pts.(i) <- pts.(i + 1)
         done;
         pts.(count - 1) <- x_star
       end
     else if same_sign e_star e_at.(!idx - 1) then pts.(!idx - 1) <- x_star
     else if same_sign e_star e_at.(!idx) then pts.(!idx) <- x_star
     else if Sys.getenv_opt "REMEZ_DEBUG" <> None then begin
       Printf.eprintf "no-swap: x*=%.4g e*=%.3e idx=%d e_at=" x_star e_star !idx;
       Array.iteri (fun i x -> Printf.eprintf " [%d]%.4g:%.2e" i x e_at.(i)) old_pts;
       Printf.eprintf "\n%!"
     end);
    pts
  end

(* Derivative values of a Chebyshev series: d/dt T_k = k U_{k-1}. *)
let cheb_eval_deriv coeffs t =
  let n = Array.length coeffs - 1 in
  (* Chebyshev U recurrence. *)
  let u = Array.make (max 1 n) 1.0 in
  if n >= 2 then u.(1) <- 2.0 *. t;
  for k = 2 to n - 1 do
    u.(k) <- (2.0 *. t *. u.(k - 1)) -. u.(k - 2)
  done;
  let acc = ref 0.0 in
  for k = 1 to n do
    acc := !acc +. (coeffs.(k) *. float_of_int k *. u.(k - 1))
  done;
  !acc

(* Partial fractions of P(t(x))/Q(t(x)) in x.  The poles of a good x^sigma
   approximant are spread geometrically on the negative x axis, which makes
   them *cluster* near t = -1 in the transformed variable; monomial root
   finding in t is therefore hopeless.  Instead we locate the roots of the
   function x -> Q(t(x)) directly on a geometric scan of the negative axis
   and bisect each bracket.  Residue at x_k: P(t_k) / (Q'(t_k) * dt/dx). *)
let partial_fractions fr p_cheb q_cheb =
  let n = Array.length q_cheb - 1 in
  let qf x = cheb_eval q_cheb (t_of_x fr x) in
  (* Scan |x| from far below the smallest pole scale to far above the
     largest: the poles of an [lo,hi] approximant live within a few orders
     of magnitude of that interval. *)
  let xmin = fr.c *. 1e-14 and xmax = fr.c *. 1e14 in
  let per_side = 6000 in
  let grid =
    Array.init (per_side + 1) (fun i ->
        -.(xmax *. ((xmin /. xmax) ** (float_of_int i /. float_of_int per_side))))
  in
  (* grid runs from -xmax up to -xmin, increasing. *)
  let bisect a b =
    let fa = qf a in
    let rec go a b fa iter =
      if iter > 200 then (a +. b) /. 2.0
      else begin
        let m = (a +. b) /. 2.0 in
        if m = a || m = b then m
        else begin
          let fm = qf m in
          if fm = 0.0 then m
          else if fa *. fm < 0.0 then go a m fa (iter + 1)
          else go m b fm (iter + 1)
        end
      end
    in
    go a b fa 0
  in
  let poles = ref [] in
  for i = 0 to Array.length grid - 2 do
    let a = grid.(i) and b = grid.(i + 1) in
    if qf a *. qf b < 0.0 then poles := bisect a b :: !poles
  done;
  let poles = Array.of_list !poles in
  if Array.length poles <> n then
    failwith
      (Printf.sprintf "Remez.partial_fractions: found %d real poles, expected %d"
         (Array.length poles) n);
  let a0 = p_cheb.(n) /. q_cheb.(n) in
  let dt_dx = fr.dt_dy /. fr.c in
  let terms =
    Array.map
      (fun xk ->
        let tk = t_of_x fr xk in
        let alpha = cheb_eval p_cheb tk /. (cheb_eval_deriv q_cheb tk *. dt_dx) in
        (alpha, -.xk))
      poles
  in
  { Ratfun.a0; terms }

(* One full exchange at a fixed degree.  [q_start] supplies denominator
   values for the first linearization (from the previous continuation
   degree); returns the best iterate and its measured global error. *)
let run_exchange ~sigma ~degree ~q_start fr lo hi =
  let count = (2 * degree) + 2 in
  let pts = ref (initial_points lo hi count) in
  let best = ref None in
  let best_global = ref infinity in
  let prev_q = ref None in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < 50 do
    incr iter;
    (* Warm-start the linearized denominator from the previous outer iterate
       (a cold start tends to fall into the degenerate interpolation branch
       once the reference points are near-optimal). *)
    let q_init xs =
      match !prev_q with
      | None -> q_start xs
      | Some q -> Array.map (fun x -> cheb_eval q (t_of_x fr x)) xs
    in
    let p, q, level = solve_on_points ~sigma ~degree ~q_init fr !pts in
    (* Convergence: the global max error must have come down to the solved
       equioscillation level E (deviation at the reference points alone is
       automatic once the linear solve converges, so it proves nothing). *)
    let grid = log_grid lo hi 20000 in
    let global_max =
      Array.fold_left
        (fun acc x -> max acc (abs_float (rel_error ~sigma fr p q x)))
        0.0 grid
    in
    if Sys.getenv_opt "REMEZ_DEBUG" <> None then
      Printf.eprintf "deg=%d iter=%d level=%.4e global=%.4e\n%!" degree !iter level global_max;
    (* Record only iterates whose partial fractions are valid (all poles
       real): the caller always receives a usable expansion or a Failure. *)
    (if global_max < !best_global then
       match partial_fractions fr p q with
       | exception Failure _ -> ()
       | _pfe -> (
           match partial_fractions fr q p with
           | exception Failure _ -> ()
           | _ ->
               best := Some (p, q);
               best_global := global_max));
    prev_q := Some q;
    if level > 0.0 && global_max <= level *. 1.02 then converged := true
    else begin
      let new_pts = exchange_single ~sigma fr p q lo hi !pts in
      if new_pts = !pts then converged := true else pts := new_pts
    end
  done;
  match !best with
  | Some (p, q) -> (p, q, !best_global)
  | None -> failwith "Remez: exchange produced no solution"

let approx ~sigma ~degree ~lo ~hi =
  if abs_float sigma <= 0.0 || abs_float sigma >= 1.0 then
    invalid_arg "Remez.approx: need 0 < |sigma| < 1";
  if degree < 1 then invalid_arg "Remez.approx: degree must be >= 1";
  if lo <= 0.0 || hi <= lo then invalid_arg "Remez.approx: need 0 < lo < hi";
  let s = abs_float sigma in
  let fr = make_frame lo hi in
  (* Degree continuation: each degree warm-starts its denominator from the
     previous degree's solution, which keeps the exchange on the branch with
     real, negative poles. *)
  let q_fn = ref (fun xs -> Array.map (fun _ -> 1.0) xs) in
  let final = ref None in
  for d = 1 to degree do
    match run_exchange ~sigma:s ~degree:d ~q_start:!q_fn fr lo hi with
    | p, q, err ->
        q_fn := (fun xs -> Array.map (fun x -> cheb_eval q (t_of_x fr x)) xs);
        final := Some (p, q, err, d)
    | exception Failure _ ->
        (* This continuation degree left no valid iterate; carry the previous
           warm start (and previous best solution) forward. *)
        ()
  done;
  let p_cheb, q_cheb, error, got_degree =
    match !final with
    | Some v -> v
    | None -> failwith "Remez.approx: exchange failed to converge"
  in
  if error > 0.5 then failwith "Remez.approx: exchange failed to converge";
  let pfe_pos = partial_fractions fr p_cheb q_cheb in
  let pfe_neg = partial_fractions fr q_cheb p_cheb in
  if sigma > 0.0 then
    { sigma; lo; hi; degree = got_degree; error; pfe = pfe_pos; pfe_inv = pfe_neg }
  else { sigma; lo; hi; degree = got_degree; error; pfe = pfe_neg; pfe_inv = pfe_pos }

let eval r x = Ratfun.eval r.pfe x

let check_equioscillation r ~samples =
  let grid = log_grid r.lo r.hi samples in
  Array.fold_left
    (fun acc x -> max acc (abs_float ((eval r x /. (x ** r.sigma)) -. 1.0)))
    0.0 grid
