(** Rational functions in partial-fraction form,

      r(x) = a0 + sum_i alpha_i / (x + beta_i),

    the form consumed by the multi-shift CG solver in RHMC: applying
    [r(M^dag M)] to a vector costs one multi-shift solve with shifts
    [beta_i].  Also provides the integral-representation generator for
    [x^-sigma], used as a reference against the Remez approximation. *)

type t = { a0 : float; terms : (float * float) array }
(** [terms] holds [(alpha_i, beta_i)] pairs. *)

val eval : t -> float -> float

val num_terms : t -> int

val x_times : t -> t
(** [x_times r] is the partial-fraction form of [x * r(x)].  Requires
    [r.a0 = 0] (the product would otherwise contain a linear term that the
    representation cannot hold); raises [Invalid_argument] otherwise. *)

val of_quadrature : sigma:float -> points:int -> lo:float -> hi:float -> t
(** Rational approximation to [x^-sigma] (0 < sigma < 1) on [lo,hi] from the
    integral representation
    [x^-s = sin(pi s)/pi * int_0^inf t^-s/(t+x) dt]
    discretized by the trapezoid rule after the substitution [t = e^u].
    Convergence is geometric in [points]; [points = 120] reaches ~1e-6
    relative error over ratios [hi/lo <= 1e4].  All coefficients
    [alpha_i] are positive, all shifts [beta_i] positive. *)

val of_quadrature_pow : sigma:float -> points:int -> lo:float -> hi:float -> t
(** Same mechanism for the positive power [x^+sigma] (0 < sigma < 1), built
    as [x * x^(sigma-1)]. *)

val max_rel_error : t -> exponent:float -> lo:float -> hi:float -> samples:int -> float
(** Maximum of [|r(x)/x^exponent - 1|] over a log-spaced sample grid. *)
