(** Real polynomials in coefficient form: [c.(0) + c.(1) x + ... + c.(n) x^n].
    Complex root finding (Durand–Kerner) is provided because partial-fraction
    decomposition of RHMC rational approximations needs the poles of the
    denominator. *)

type t = float array
(** Coefficient array, lowest degree first.  [[|c0|]] is the constant c0. *)

val degree : t -> int
(** Degree after stripping (exactly) zero leading coefficients; the zero
    polynomial has degree 0. *)

val eval : t -> float -> float
(** Horner evaluation. *)

val eval_complex : t -> Complex.t -> Complex.t
(** Horner evaluation at a complex point. *)

val derivative : t -> t

val mul : t -> t -> t

val add : t -> t -> t

val scale : float -> t -> t

val of_roots : float array -> t
(** Monic polynomial with the given real roots. *)

val roots : ?max_iter:int -> ?tol:float -> t -> Complex.t array
(** All complex roots via Durand–Kerner iteration.  Suitable for the modest
    degrees (< 30) used here.  Raises [Failure] if the iteration does not
    converge, which for the well-separated real spectra produced by Remez
    indicates a genuinely ill-conditioned input. *)

val real_roots : ?tol_imag:float -> t -> float array
(** The real roots ([|Im| <= tol_imag * max(1,|Re|)]), sorted ascending. *)
