(** Double-double arithmetic (~32 significant digits).

    The Remez exchange for RHMC rational approximations needs to resolve an
    equioscillation level around 1e-6..1e-10 out of linear systems whose
    conditioning exhausts plain doubles (the reference tool, AlgRemez, runs
    at 40+ decimal digits for the same reason).  A value is represented as
    an unevaluated sum [hi + lo] with [|lo| <= ulp(hi)/2]. *)

type t = { hi : float; lo : float }

val zero : t
val one : t
val of_float : float -> t
val to_float : t -> float
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val compare_abs : t -> t -> int
(** Compare absolute values (for pivoting). *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

val solve : t array array -> t array -> t array
(** Gaussian elimination with partial pivoting in double-double precision.
    Raises [Linsolve.Singular] on vanishing pivots. *)

val solve_float : float array array -> float array -> float array
(** Convenience: promote a double system, solve in double-double, demote. *)
