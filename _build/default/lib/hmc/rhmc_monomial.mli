(** One-flavor rational HMC monomial (the paper's Ref. 14: exact 2+1
    flavour RHMC) for the strange quark:

      S = phi^dag r(M^dag M) phi,        r(x) ~ x^(-1/2)
      heatbath: phi = r4(M^dag M) eta,   r4(x) ~ x^(+1/4)

    Both rational functions are applied through their partial-fraction
    expansions with one multi-shift CG per application; the force reuses
    the shifted solutions directly. *)

type approx = {
  inv_sqrt : Numerics.Ratfun.t;  (** ~ x^(-1/2): action and force *)
  fourth_root : Numerics.Ratfun.t;  (** ~ x^(+1/4): heatbath *)
  lo : float;
  hi : float;
}

val make_approx : ?degree:int -> ?heatbath_points:int -> lo:float -> hi:float -> unit -> approx
(** Zolotarev (optimal) for the inverse square root; integral-representation
    quadrature for the heatbath quarter root (arbitrarily accurate; the
    extra partial fractions are cheap since heatbath runs once per
    trajectory). *)

val power_iteration_max : Context.t -> kappa:float -> ?iters:int -> unit -> float
(** Crude largest-eigenvalue estimate of M^dag M, to pick/validate the
    approximation interval. *)

val apply_rational :
  Context.t ->
  kappa:float ->
  r:Numerics.Ratfun.t ->
  dest:Qdp.Field.t ->
  src:Qdp.Field.t ->
  ?tol:float ->
  unit ->
  Qdp.Field.t array
(** dest = a0 src + sum_i alpha_i (M^dag M + beta_i)^-1 src; returns the
    shifted solutions (the force needs them). *)

val create : Context.t -> kappa:float -> approx:approx -> ?tol:float -> unit -> Monomial.t
