(** Wilson (optionally anisotropic) gauge action monomial.

    Force: with W_mu(x) = U_mu(x) staple_mu(x),
      F_mu = (beta / 2 Nc) TA_H(W)
    which the finite-difference tests in the suite check against the
    directional derivative of the action. *)

module Expr = Qdp.Expr
module Field = Qdp.Field

let create (ctx : Context.t) ~beta ?(aniso = 1.0) () =
  let u = ctx.Context.u in
  let prec = ctx.Context.prec in
  let action () = Lqcd.Gauge.action ~sum_real:ctx.Context.backend.Context.sum_real ~aniso ~beta u in
  let add_force (forces : Field.t array) =
    let nd = Array.length u in
    Array.iteri
      (fun mu force ->
        (* Anisotropy weights the staples per plane; build the weighted
           staple sum explicitly. *)
        let staple =
          let terms = ref [] in
          let f = Expr.field in
          for nu = 0 to nd - 1 do
            if nu <> mu then begin
              let w = Lqcd.Gauge.pair_weight ~aniso ~nd ~mu ~nu in
              let up =
                Expr.mul
                  (Expr.shift (f u.(nu)) ~dim:mu ~dir:1)
                  (Expr.mul
                     (Expr.adj (Expr.shift (f u.(mu)) ~dim:nu ~dir:1))
                     (Expr.adj (f u.(nu))))
              in
              let down_inner =
                Expr.mul
                  (Expr.adj (Expr.shift (f u.(nu)) ~dim:mu ~dir:1))
                  (Expr.mul (Expr.adj (f u.(mu))) (f u.(nu)))
              in
              let down = Expr.shift down_inner ~dim:nu ~dir:(-1) in
              let weighted e =
                if w = 1.0 then e else Expr.mul (Expr.const_real ~prec w) e
              in
              terms := weighted down :: weighted up :: !terms
            end
          done;
          match !terms with t :: rest -> List.fold_left Expr.add t rest | [] -> assert false
        in
        let w_expr = Expr.mul (Expr.field u.(mu)) staple in
        let f_expr =
          Expr.mul
            (Expr.const_real ~prec (beta /. (2.0 *. 3.0)))
            (Context.hermitian_traceless ~prec w_expr)
        in
        ctx.Context.backend.Context.eval force (Expr.add (Expr.field force) f_expr))
      forces
  in
  { Monomial.name = "gauge"; refresh = (fun () -> ()); action; add_force }
