(** Shared state of a gauge-generation run: links, conjugate momenta, an
    evaluation backend (CPU reference or the JIT engine — the whole HMC
    runs unchanged on either, which is the point of the paper), and the
    random stream. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr

type backend = {
  eval : ?subset:Qdp.Subset.t -> Field.t -> Expr.t -> unit;
  sum_real : Expr.t -> float;
  norm2 : ?subset:Qdp.Subset.t -> Expr.t -> float;
  inner : ?subset:Qdp.Subset.t -> Expr.t -> Expr.t -> float * float;
  tag : string;
}

val cpu_backend : backend
val jit_backend : Qdpjit.Engine.t -> backend

type t = {
  geom : Geometry.t;
  prec : Shape.precision;
  u : Lqcd.Gauge.links;
  p : Field.t array;  (** Hermitian traceless momenta, one per direction *)
  backend : backend;
  rng : Prng.t;
  mutable md_steps_taken : int;  (** op-trace: momentum updates *)
  mutable solver_iterations : int;  (** op-trace: total Krylov iterations *)
}

val create : ?prec:Shape.precision -> backend:backend -> seed:int64 -> Geometry.t -> t
(** Cold-started links, zero momenta. *)

val fermion_shape : t -> Shape.t
val fresh_fermion : t -> Field.t
val solver_ops : t -> Solvers.Ops.t

val refresh_momenta : t -> unit
(** Gaussian Hermitian traceless momenta (kinetic convention
    T = sum tr P^2). *)

val kinetic_energy : t -> float

val update_links : t -> eps:float -> unit
(** U <- exp(i eps P) U, exact to machine precision (reversibility). *)

val update_momenta : t -> eps:float -> Field.t array -> unit
(** P <- P - eps F. *)

val fresh_forces : t -> Field.t array
val clear_forces : t -> Field.t array -> unit

val identity_color : ?prec:Shape.precision -> unit -> Expr.t

val hermitian_traceless : ?prec:Shape.precision -> Expr.t -> Expr.t
(** TA_H(M) = (M - M^dag)/(2i) - trace part: the projection both the gauge
    and the fermion forces pass through. *)
