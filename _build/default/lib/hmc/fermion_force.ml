(** Derivative of the Wilson hopping term with respect to the links.

    For S-terms of the form Re[Y^dag dD X] the link-mu contribution at x is
    the traceless Hermitian projection of

      C = U_mu(x) X(x+mu) (x) [(1-gamma_mu) Y(x)]^dag
        - X(x) (x) [U_mu(x) (1+gamma_mu) Y(x+mu)]^dag

    (color outer products with a spin trace).  The overall sign and the
    kappa factors are supplied by the monomials; finite-difference tests
    pin them down. *)

module Expr = Qdp.Expr
module Field = Qdp.Field

(* Per-direction color-matrix expression G_mu = TA_H(C1 - C2) for given
   solution/adjoint-solution fields X and Y. *)
let dslash_deriv (ctx : Context.t) ~(x : Field.t) ~(y : Field.t) ~mu =
  let u = ctx.Context.u in
  let prec = ctx.Context.prec in
  let f = Expr.field in
  let c1 =
    Expr.outer_color
      (Expr.mul (f u.(mu)) (Expr.shift (f x) ~dim:mu ~dir:1))
      (Expr.mul (Lqcd.Gamma.proj_minus ~prec mu) (f y))
  in
  let c2 =
    Expr.outer_color (f x)
      (Expr.mul (f u.(mu)) (Expr.mul (Lqcd.Gamma.proj_plus ~prec mu) (Expr.shift (f y) ~dim:mu ~dir:1)))
  in
  Context.hermitian_traceless ~prec (Expr.sub c1 c2)

(* forces.(mu) += coeff * G_mu(X, Y) for all directions. *)
let accumulate (ctx : Context.t) ~coeff ~(x : Field.t) ~(y : Field.t) (forces : Field.t array) =
  let prec = ctx.Context.prec in
  Array.iteri
    (fun mu force ->
      let g = dslash_deriv ctx ~x ~y ~mu in
      ctx.Context.backend.Context.eval force
        (Expr.add (Expr.field force) (Expr.mul (Expr.const_real ~prec coeff) g)))
    forces
