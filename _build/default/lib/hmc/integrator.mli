(** Symplectic molecular-dynamics integrators.

    Leapfrog and Omelyan's second-order minimum-norm scheme
    (lambda = 0.1931833...), both area-preserving and reversible; Omelyan
    roughly halves the energy error per force evaluation, which is why
    production HMC (including the paper's) prefers it.  A
    Sexton–Weingarten multiple-time-scale driver nests levels: each level's
    "position update" is a full sub-trajectory of the next. *)

type scheme = Leapfrog | Omelyan

type system = {
  update_p : eps:float -> unit;  (** P -= eps * F(U) *)
  update_u : eps:float -> unit;  (** U <- exp(i eps P) U *)
}

val omelyan_lambda : float

val run : scheme -> system -> steps:int -> dt:float -> unit

type level = {
  update_p_level : eps:float -> unit;
  steps_per_parent : int;  (** sub-steps per parent position update *)
  level_scheme : scheme;
}

val run_multiscale : update_u:(eps:float -> unit) -> level list -> tau:float -> unit
(** Levels ordered outermost to innermost; the innermost position update
    is the actual link update. *)
