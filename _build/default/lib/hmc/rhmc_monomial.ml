(** One-flavor rational HMC monomial (the paper's Ref. 14: exact 2+1
    flavour RHMC) for the strange quark:

      S = phi^dag r(M^dag M) phi,      r(x) ~ x^(-1/2)
      heatbath: phi = r_4(M^dag M) eta, r_4(x) ~ x^(+1/4)

    Both rational functions are applied through their partial-fraction
    expansions with one multi-shift CG per application.  The force uses
    the shifted solutions X_i directly. *)

module Expr = Qdp.Expr
module Field = Qdp.Field

type approx = {
  inv_sqrt : Numerics.Ratfun.t;  (** ~ x^(-1/2): action and force *)
  fourth_root : Numerics.Ratfun.t;  (** ~ x^(+1/4): heatbath *)
  lo : float;
  hi : float;
}

(* Zolotarev gives the optimal inverse square root; the heatbath quarter
   root comes from the integral-representation quadrature, which is
   arbitrarily accurate (heatbath runs once per trajectory, so the extra
   partial fractions are cheap). *)
let make_approx ?(degree = 10) ?(heatbath_points = 250) ~lo ~hi () =
  {
    inv_sqrt = Numerics.Zolotarev.inv_sqrt ~degree ~lo ~hi;
    fourth_root = Numerics.Ratfun.of_quadrature_pow ~sigma:0.25 ~points:heatbath_points ~lo ~hi;
    lo;
    hi;
  }

(* Crude largest-eigenvalue estimate of M^dag M by power iteration; used to
   pick/validate the approximation interval. *)
let power_iteration_max (ctx : Context.t) ~kappa ?(iters = 20) () =
  let ops, nop = Two_flavor.make_normal_op ctx ~kappa in
  let v = Context.fresh_fermion ctx in
  Field.fill_gaussian v ctx.Context.rng;
  let w = Context.fresh_fermion ctx in
  let lambda = ref 1.0 in
  for _ = 1 to iters do
    nop.Solvers.Ops.apply w v;
    let n = sqrt (ops.Solvers.Ops.norm2 (Expr.field w)) in
    lambda := n /. sqrt (ops.Solvers.Ops.norm2 (Expr.field v));
    ctx.Context.backend.Context.eval v
      (Expr.mul (Expr.const_real (1.0 /. n)) (Expr.field w))
  done;
  !lambda

(* dest = a0 src + sum_i alpha_i (A + beta_i)^{-1} src via multi-shift CG. *)
let apply_rational (ctx : Context.t) ~kappa ~(r : Numerics.Ratfun.t) ~dest ~src ?(tol = 1e-10) ()
    =
  let ops, nop = Two_flavor.make_normal_op ctx ~kappa in
  let n = Array.length r.Numerics.Ratfun.terms in
  let shifts = Array.map snd r.Numerics.Ratfun.terms in
  let xs = Array.init n (fun _ -> Context.fresh_fermion ctx) in
  let res = Solvers.Multishift_cg.solve ops nop ~b:src ~shifts ~xs ~tol () in
  if not res.Solvers.Multishift_cg.converged then
    failwith "Rhmc_monomial: multishift CG did not converge";
  ctx.Context.solver_iterations <-
    ctx.Context.solver_iterations + res.Solvers.Multishift_cg.iterations;
  let acc = ref (Expr.mul (Expr.const_real r.Numerics.Ratfun.a0) (Expr.field src)) in
  Array.iteri
    (fun i (alpha, _) ->
      acc := Expr.add !acc (Expr.mul (Expr.const_real alpha) (Expr.field xs.(i))))
    r.Numerics.Ratfun.terms;
  ctx.Context.backend.Context.eval dest !acc;
  xs

let create (ctx : Context.t) ~kappa ~(approx : approx) ?(tol = 1e-10) () =
  let phi = Context.fresh_fermion ctx in
  let refresh () =
    let eta = Context.fresh_fermion ctx in
    Field.fill_gaussian eta ctx.Context.rng;
    ignore (apply_rational ctx ~kappa ~r:approx.fourth_root ~dest:phi ~src:eta ~tol ())
  in
  let action () =
    let tmp = Context.fresh_fermion ctx in
    ignore (apply_rational ctx ~kappa ~r:approx.inv_sqrt ~dest:tmp ~src:phi ~tol ());
    fst (ctx.Context.backend.Context.inner (Expr.field phi) (Expr.field tmp))
  in
  let add_force forces =
    let r = approx.inv_sqrt in
    let tmp = Context.fresh_fermion ctx in
    let xs = apply_rational ctx ~kappa ~r ~dest:tmp ~src:phi ~tol () in
    let y = Context.fresh_fermion ctx in
    Array.iteri
      (fun i (alpha, _) ->
        ctx.Context.backend.Context.eval y
          (Lqcd.Wilson.wilson_expr ~kappa ctx.Context.u xs.(i));
        Fermion_force.accumulate ctx ~coeff:(-.kappa *. alpha) ~x:xs.(i) ~y forces)
      r.Numerics.Ratfun.terms
  in
  { Monomial.name = Printf.sprintf "rhmc(kappa=%.4f)" kappa; refresh; action; add_force }
