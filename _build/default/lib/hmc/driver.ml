(** The gauge-generation driver: Hybrid Monte Carlo trajectories with
    momentum/pseudofermion heatbath, molecular dynamics and a Metropolis
    accept/reject step — the program whose Blue Waters deployment Fig. 7
    measures. *)

module Field = Qdp.Field
module Geometry = Layout.Geometry

type params = {
  steps : int;  (** MD steps per trajectory *)
  dt : float;  (** step size; trajectory length tau = steps * dt *)
  scheme : Integrator.scheme;
}

type trajectory_result = {
  h_initial : float;
  h_final : float;
  delta_h : float;
  accepted : bool;
  plaquette : float;
  solver_iterations : int;  (** Krylov iterations spent in this trajectory *)
}

let hamiltonian (ctx : Context.t) (monomials : Monomial.t list) =
  Context.kinetic_energy ctx
  +. List.fold_left (fun acc (m : Monomial.t) -> acc +. m.Monomial.action ()) 0.0 monomials

let save_links (ctx : Context.t) =
  Array.map
    (fun (uf : Field.t) ->
      let copy = Field.create uf.Field.shape uf.Field.geom in
      Field.copy_from ~dst:copy ~src:uf;
      copy)
    ctx.Context.u

let restore_links (ctx : Context.t) saved =
  Array.iteri (fun mu saved_mu -> Field.copy_from ~dst:ctx.Context.u.(mu) ~src:saved_mu) saved

let md_system (ctx : Context.t) (monomials : Monomial.t list) =
  let forces = Context.fresh_forces ctx in
  {
    Integrator.update_p =
      (fun ~eps ->
        Context.clear_forces ctx forces;
        List.iter (fun (m : Monomial.t) -> m.Monomial.add_force forces) monomials;
        Context.update_momenta ctx ~eps forces;
        ctx.Context.md_steps_taken <- ctx.Context.md_steps_taken + 1);
    Integrator.update_u = (fun ~eps -> Context.update_links ctx ~eps);
  }

let run_trajectory ?(forced_accept = false) (ctx : Context.t) (monomials : Monomial.t list)
    (p : params) =
  let iters_before = ctx.Context.solver_iterations in
  let saved = save_links ctx in
  Context.refresh_momenta ctx;
  List.iter (fun (m : Monomial.t) -> m.Monomial.refresh ()) monomials;
  let h0 = hamiltonian ctx monomials in
  let sys = md_system ctx monomials in
  Integrator.run p.scheme sys ~steps:p.steps ~dt:p.dt;
  Lqcd.Gauge.reunitarize ctx.Context.u;
  let h1 = hamiltonian ctx monomials in
  let dh = h1 -. h0 in
  let accepted =
    forced_accept || dh <= 0.0 || Prng.float01 ctx.Context.rng < exp (-.dh)
  in
  if not accepted then restore_links ctx saved;
  let plaquette =
    Lqcd.Gauge.mean_plaquette ~sum_real:ctx.Context.backend.Context.sum_real ctx.Context.u
  in
  {
    h_initial = h0;
    h_final = h1;
    delta_h = dh;
    accepted;
    plaquette;
    solver_iterations = ctx.Context.solver_iterations - iters_before;
  }

(* A trajectory with the monomials split over integrator time scales:
   [levels] is ordered outermost (fewest force evaluations, most expensive
   forces) to innermost (cheapest forces, finest grid). *)
let run_trajectory_multiscale ?(forced_accept = false) (ctx : Context.t)
    (levels : (Monomial.t list * int * Integrator.scheme) list) ~tau =
  if levels = [] then invalid_arg "run_trajectory_multiscale: no levels";
  let monomials = List.concat_map (fun (ms, _, _) -> ms) levels in
  let iters_before = ctx.Context.solver_iterations in
  let saved = save_links ctx in
  Context.refresh_momenta ctx;
  List.iter (fun (m : Monomial.t) -> m.Monomial.refresh ()) monomials;
  let h0 = hamiltonian ctx monomials in
  let forces = Context.fresh_forces ctx in
  let make_level (ms, steps, scheme) =
    {
      Integrator.update_p_level =
        (fun ~eps ->
          Context.clear_forces ctx forces;
          List.iter (fun (m : Monomial.t) -> m.Monomial.add_force forces) ms;
          Context.update_momenta ctx ~eps forces;
          ctx.Context.md_steps_taken <- ctx.Context.md_steps_taken + 1);
      steps_per_parent = steps;
      level_scheme = scheme;
    }
  in
  Integrator.run_multiscale
    ~update_u:(fun ~eps -> Context.update_links ctx ~eps)
    (List.map make_level levels) ~tau;
  Lqcd.Gauge.reunitarize ctx.Context.u;
  let h1 = hamiltonian ctx monomials in
  let dh = h1 -. h0 in
  let accepted = forced_accept || dh <= 0.0 || Prng.float01 ctx.Context.rng < exp (-.dh) in
  if not accepted then restore_links ctx saved;
  let plaquette =
    Lqcd.Gauge.mean_plaquette ~sum_real:ctx.Context.backend.Context.sum_real ctx.Context.u
  in
  {
    h_initial = h0;
    h_final = h1;
    delta_h = dh;
    accepted;
    plaquette;
    solver_iterations = ctx.Context.solver_iterations - iters_before;
  }

(* Reversibility check: integrate forward, flip momenta, integrate back;
   returns the link-field distance from the start (tests expect rounding
   level). *)
let reversibility_drift (ctx : Context.t) (monomials : Monomial.t list) (p : params) =
  let saved = save_links ctx in
  Context.refresh_momenta ctx;
  List.iter (fun (m : Monomial.t) -> m.Monomial.refresh ()) monomials;
  let sys = md_system ctx monomials in
  Integrator.run p.scheme sys ~steps:p.steps ~dt:p.dt;
  (* Flip momenta. *)
  Array.iter
    (fun pf ->
      ctx.Context.backend.Context.eval pf
        (Qdp.Expr.neg (Qdp.Expr.field pf)))
    ctx.Context.p;
  Integrator.run p.scheme sys ~steps:p.steps ~dt:p.dt;
  let drift = ref 0.0 in
  Array.iteri
    (fun mu (uf : Field.t) ->
      let diff =
        ctx.Context.backend.Context.norm2
          (Qdp.Expr.sub (Qdp.Expr.field uf) (Qdp.Expr.field saved.(mu)))
      in
      drift := !drift +. diff;
      ignore mu)
    ctx.Context.u;
  restore_links ctx saved;
  sqrt (!drift /. float_of_int (Geometry.volume ctx.Context.geom))
