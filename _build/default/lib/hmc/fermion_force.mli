(** Derivative of the Wilson hopping term with respect to the links.

    For action terms of the form Re[Y^dag dD X] the link-mu contribution
    at x is the traceless Hermitian projection of

      C = U_mu(x) X(x+mu) (x) [(1-gamma_mu) Y(x)]^dag
        - X(x) (x) [U_mu(x) (1+gamma_mu) Y(x+mu)]^dag

    (color outer products with a spin trace).  Overall signs and kappa
    factors are supplied by the monomials; the finite-difference tests of
    the suite pin them. *)

val dslash_deriv : Context.t -> x:Qdp.Field.t -> y:Qdp.Field.t -> mu:int -> Qdp.Expr.t
(** G_mu = TA_H(C1 - C2) as a color-matrix expression. *)

val accumulate :
  Context.t -> coeff:float -> x:Qdp.Field.t -> y:Qdp.Field.t -> Qdp.Field.t array -> unit
(** forces.(mu) += coeff * G_mu for every direction. *)
