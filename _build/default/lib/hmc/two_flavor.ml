(** Two-flavor Wilson pseudofermion monomials.

    [create] gives the plain term S = phi^dag (M^dag M)^-1 phi (heatbath
    phi = M^dag eta).  [create_ratio] gives the Hasenbusch
    mass-preconditioned ratio (the paper's Ref. 13)

      S = phi^dag W (M^dag M)^-1 W^dag phi,   W = M(kappa_heavy),

    whose force is milder, allowing coarser step sizes for the expensive
    light-quark piece. *)

module Expr = Qdp.Expr
module Field = Qdp.Field

let g5 e = Lqcd.Wilson.gamma5_expr e
let f = Expr.field

let make_normal_op (ctx : Context.t) ~kappa =
  let ops = Context.solver_ops ctx in
  let apply_m src = Lqcd.Wilson.wilson_expr ~kappa ctx.Context.u src in
  (ops, Solvers.Ops.normal_op ops ~apply_m)

(* dest = M^dag src = g5 M g5 src *)
let apply_mdag (ctx : Context.t) ~kappa ~dest ~src =
  let tmp = Context.fresh_fermion ctx in
  ctx.Context.backend.Context.eval tmp (g5 (f src));
  let tmp2 = Context.fresh_fermion ctx in
  ctx.Context.backend.Context.eval tmp2 (Lqcd.Wilson.wilson_expr ~kappa ctx.Context.u tmp);
  ctx.Context.backend.Context.eval dest (g5 (f tmp2))

let create (ctx : Context.t) ~kappa ?(tol = 1e-10) ?(max_iter = 5000) () =
  let phi = Context.fresh_fermion ctx in
  let x = Context.fresh_fermion ctx in
  let y = Context.fresh_fermion ctx in
  let eta = Context.fresh_fermion ctx in
  let solve ~rhs =
    let ops, nop = make_normal_op ctx ~kappa in
    Field.fill_constant x 0.0;
    let r = Solvers.Cg.solve ops nop ~b:rhs ~x ~tol ~max_iter () in
    if not r.Solvers.Cg.converged then failwith "Two_flavor: CG did not converge";
    ctx.Context.solver_iterations <- ctx.Context.solver_iterations + r.Solvers.Cg.iterations
  in
  let refresh () =
    Field.fill_gaussian eta ctx.Context.rng;
    apply_mdag ctx ~kappa ~dest:phi ~src:eta
  in
  let action () =
    solve ~rhs:phi;
    fst (ctx.Context.backend.Context.inner (f phi) (f x))
  in
  let add_force forces =
    solve ~rhs:phi;
    ctx.Context.backend.Context.eval y (Lqcd.Wilson.wilson_expr ~kappa ctx.Context.u x);
    Fermion_force.accumulate ctx ~coeff:(-.kappa) ~x ~y forces
  in
  { Monomial.name = Printf.sprintf "2flavor(kappa=%.4f)" kappa; refresh; action; add_force }

let create_ratio (ctx : Context.t) ~kappa_light ~kappa_heavy ?(tol = 1e-10) ?(max_iter = 5000) ()
    =
  if kappa_heavy >= kappa_light then
    invalid_arg "Two_flavor.create_ratio: preconditioner must be heavier (smaller kappa)";
  let phi = Context.fresh_fermion ctx in
  let x = Context.fresh_fermion ctx in
  let y = Context.fresh_fermion ctx in
  let rhs = Context.fresh_fermion ctx in
  let record ops_result = ctx.Context.solver_iterations <- ctx.Context.solver_iterations + ops_result in
  let solve_light () =
    (* x = (M^dag M)^{-1} W^dag phi *)
    apply_mdag ctx ~kappa:kappa_heavy ~dest:rhs ~src:phi;
    let ops, nop = make_normal_op ctx ~kappa:kappa_light in
    Field.fill_constant x 0.0;
    let r = Solvers.Cg.solve ops nop ~b:rhs ~x ~tol ~max_iter () in
    if not r.Solvers.Cg.converged then failwith "Two_flavor.ratio: CG did not converge";
    record r.Solvers.Cg.iterations
  in
  let refresh () =
    (* phi = W^-dag M^dag eta = g5 W^{-1} g5 M^dag eta *)
    let eta = Context.fresh_fermion ctx in
    Field.fill_gaussian eta ctx.Context.rng;
    let t = Context.fresh_fermion ctx in
    apply_mdag ctx ~kappa:kappa_light ~dest:t ~src:eta;
    let s = Context.fresh_fermion ctx in
    ctx.Context.backend.Context.eval s (g5 (f t));
    (* Solve W z = s. *)
    let ops, nop = make_normal_op ctx ~kappa:kappa_heavy in
    let wdag_s = Context.fresh_fermion ctx in
    apply_mdag ctx ~kappa:kappa_heavy ~dest:wdag_s ~src:s;
    let z = Context.fresh_fermion ctx in
    let r = Solvers.Cg.solve ops nop ~b:wdag_s ~x:z ~tol ~max_iter () in
    if not r.Solvers.Cg.converged then failwith "Two_flavor.ratio: heatbath CG did not converge";
    record r.Solvers.Cg.iterations;
    ctx.Context.backend.Context.eval phi (g5 (f z))
  in
  let action () =
    solve_light ();
    fst (ctx.Context.backend.Context.inner (f rhs) (f x))
  in
  let add_force forces =
    solve_light ();
    ctx.Context.backend.Context.eval y (Lqcd.Wilson.wilson_expr ~kappa:kappa_light ctx.Context.u x);
    (* F = kappa_heavy TA(C(x,phi)) - kappa_light TA(C(x,y)) *)
    Fermion_force.accumulate ctx ~coeff:kappa_heavy ~x ~y:phi forces;
    Fermion_force.accumulate ctx ~coeff:(-.kappa_light) ~x ~y forces
  in
  {
    Monomial.name = Printf.sprintf "hasenbusch(%.4f/%.4f)" kappa_light kappa_heavy;
    refresh;
    action;
    add_force;
  }
