(** Two-flavor Wilson pseudofermion monomials.

    {!create} gives the plain term S = phi^dag (M^dag M)^-1 phi (heatbath
    phi = M^dag eta).  {!create_ratio} gives the Hasenbusch
    mass-preconditioned ratio (the paper's Ref. 13)

      S = phi^dag W (M^dag M)^-1 W^dag phi,   W = M(kappa_heavy),

    whose force is milder, allowing coarser step sizes for the expensive
    light-quark piece. *)

val make_normal_op :
  Context.t -> kappa:float -> Solvers.Ops.t * Solvers.Ops.linop
(** The gamma5-trick normal operator M^dag M for this context's links. *)

val apply_mdag : Context.t -> kappa:float -> dest:Qdp.Field.t -> src:Qdp.Field.t -> unit

val create : Context.t -> kappa:float -> ?tol:float -> ?max_iter:int -> unit -> Monomial.t

val create_ratio :
  Context.t ->
  kappa_light:float ->
  kappa_heavy:float ->
  ?tol:float ->
  ?max_iter:int ->
  unit ->
  Monomial.t
(** Requires [kappa_heavy < kappa_light] (the preconditioner is heavier). *)
