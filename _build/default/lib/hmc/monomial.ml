(** A monomial is one term of the molecular-dynamics Hamiltonian: it can
    refresh its pseudofermions (heatbath), report its action value, and
    accumulate its force on the gauge momenta. *)

type t = {
  name : string;
  refresh : unit -> unit;  (** draw pseudofermions for a new trajectory *)
  action : unit -> float;
  add_force : Qdp.Field.t array -> unit;  (** forces.(mu) += dS/d(link mu) *)
}
