(** Shared state of a gauge-generation run: links, conjugate momenta, an
    evaluation backend (CPU reference or the JIT engine — the whole HMC
    runs unchanged on either, which is the point of the paper), and the
    random stream. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr

type backend = {
  eval : ?subset:Qdp.Subset.t -> Field.t -> Expr.t -> unit;
  sum_real : Expr.t -> float;
  norm2 : ?subset:Qdp.Subset.t -> Expr.t -> float;
  inner : ?subset:Qdp.Subset.t -> Expr.t -> Expr.t -> float * float;
  tag : string;
}

let cpu_backend =
  {
    eval = (fun ?subset dest e -> Qdp.Eval_cpu.eval ?subset dest e);
    sum_real = (fun e -> (Qdp.Eval_cpu.sum_components e).(0));
    norm2 = (fun ?subset e -> Qdp.Eval_cpu.norm2 ?subset e);
    inner = (fun ?subset a b -> Qdp.Eval_cpu.inner ?subset a b);
    tag = "cpu";
  }

let jit_backend engine =
  {
    eval = (fun ?subset dest e -> Qdpjit.Engine.eval ?subset engine dest e);
    sum_real = (fun e -> Qdpjit.Engine.sum_real engine e);
    norm2 = (fun ?subset e -> Qdpjit.Engine.norm2 ?subset engine e);
    inner = (fun ?subset a b -> Qdpjit.Engine.inner ?subset engine a b);
    tag = "jit";
  }

type t = {
  geom : Geometry.t;
  prec : Shape.precision;
  u : Lqcd.Gauge.links;
  p : Field.t array;  (** Hermitian traceless momenta, one per direction *)
  backend : backend;
  rng : Prng.t;
  mutable md_steps_taken : int;  (** op-trace: integrator steps *)
  mutable solver_iterations : int;  (** op-trace: total Krylov iterations *)
}

let create ?(prec = Shape.F64) ~backend ~seed geom =
  let u = Lqcd.Gauge.create_links ~prec geom in
  Lqcd.Gauge.unit_gauge u;
  let p =
    Array.init (Geometry.nd geom) (fun mu ->
        Field.create ~name:(Printf.sprintf "mom%d" mu) (Shape.lattice_color_matrix prec) geom)
  in
  {
    geom;
    prec;
    u;
    p;
    backend;
    rng = Prng.create ~seed;
    md_steps_taken = 0;
    solver_iterations = 0;
  }

let fermion_shape t = Shape.lattice_fermion t.prec
let fresh_fermion t = Field.create (fermion_shape t) t.geom

let solver_ops t =
  {
    Solvers.Ops.shape = fermion_shape t;
    geom = t.geom;
    fresh = (fun () -> fresh_fermion t);
    assign = (fun ?subset dest e -> t.backend.eval ?subset dest e);
    norm2 = (fun ?subset e -> t.backend.norm2 ?subset e);
    inner = (fun ?subset a b -> t.backend.inner ?subset a b);
  }

(* Momentum heatbath: independent gaussian Hermitian traceless matrices on
   every link (kinetic energy convention T = sum tr P^2). *)
let refresh_momenta t =
  Array.iter
    (fun pf ->
      for site = 0 to Geometry.volume t.geom - 1 do
        Field.set_site pf ~site (Linalg.Su3.gaussian_hermitian t.rng)
      done)
    t.p

let kinetic_energy t =
  Array.fold_left
    (fun acc pf ->
      acc
      +. t.backend.sum_real
           (Expr.real (Expr.trace_color (Expr.mul (Expr.field pf) (Expr.field pf)))))
    0.0 t.p

(* U_mu(x) <- exp(i eps P_mu(x)) U_mu(x); the exponential is exact to
   machine precision, so reversibility holds to rounding. *)
let update_links t ~eps =
  Array.iteri
    (fun mu pf ->
      let uf = t.u.(mu) in
      for site = 0 to Geometry.volume t.geom - 1 do
        let pm = Field.get_site pf ~site in
        let um = Field.get_site uf ~site in
        let rot = Linalg.Su3.expm (Linalg.Su3.scale ~re:0.0 ~im:eps pm) in
        Field.set_site uf ~site (Linalg.Su3.mul rot um)
      done)
    t.p

(* P_mu <- P_mu - eps * F_mu. *)
let update_momenta t ~eps (forces : Field.t array) =
  Array.iteri
    (fun mu pf ->
      t.backend.eval pf
        (Expr.sub (Expr.field pf)
           (Expr.mul (Expr.const_real ~prec:t.prec eps) (Expr.field forces.(mu)))))
    t.p

let fresh_forces t =
  Array.init (Geometry.nd t.geom) (fun mu ->
      Field.create ~name:(Printf.sprintf "force%d" mu) (Shape.lattice_color_matrix t.prec) t.geom)

let clear_forces t (forces : Field.t array) =
  ignore t;
  Array.iter (fun f -> Field.fill_constant f 0.0) forces

(* Traceless Hermitian projection of a color-matrix expression:
   TA_H(M) = (M - M^dag)/(2i) - tr(...)/Nc.  Both the gauge and the fermion
   forces are of this form. *)
let identity_color ?(prec = Shape.F64) () =
  let comps = Array.make 18 0.0 in
  comps.(0) <- 1.0;
  comps.(2 * 4) <- 1.0;
  comps.(2 * 8) <- 1.0;
  Expr.const (Shape.lattice_color_matrix prec) comps

let hermitian_traceless ?(prec = Shape.F64) m =
  (* (M - M^dag) / 2i = i/2 (M^dag - M) *)
  let herm = Expr.mul (Expr.const_complex ~prec 0.0 0.5) (Expr.sub (Expr.adj m) m) in
  Expr.sub herm
    (Expr.mul
       (Expr.mul (Expr.const_real ~prec (1.0 /. 3.0)) (Expr.trace_color herm))
       (identity_color ~prec ()))
