(** Symplectic molecular-dynamics integrators.

    Both are area-preserving and reversible; Omelyan's second-order
    minimum-norm scheme (lambda = 0.1931833...) roughly halves the energy
    error per force evaluation compared to leapfrog, which is why
    production HMC (including the paper's) prefers it. *)

type scheme = Leapfrog | Omelyan

type system = {
  update_p : eps:float -> unit;  (** P -= eps * F(U) *)
  update_u : eps:float -> unit;  (** U <- exp(i eps P) U *)
}

let omelyan_lambda = 0.1931833275037836

let run scheme sys ~steps ~dt =
  if steps <= 0 then invalid_arg "Integrator.run: steps must be positive";
  match scheme with
  | Leapfrog ->
      sys.update_p ~eps:(dt /. 2.0);
      for i = 1 to steps do
        sys.update_u ~eps:dt;
        if i < steps then sys.update_p ~eps:dt
      done;
      sys.update_p ~eps:(dt /. 2.0)
  | Omelyan ->
      let l = omelyan_lambda in
      for i = 1 to steps do
        let first = i = 1 in
        (* Consecutive P-updates of adjacent steps merge. *)
        sys.update_p ~eps:(if first then l *. dt else 2.0 *. l *. dt);
        sys.update_u ~eps:(dt /. 2.0);
        sys.update_p ~eps:((1.0 -. (2.0 *. l)) *. dt);
        sys.update_u ~eps:(dt /. 2.0)
      done;
      sys.update_p ~eps:(omelyan_lambda *. dt)

(* ------------------------------------------------------------------ *)
(* Multiple time scales (Sexton-Weingarten).

   Production HMC integrates cheap-but-stiff forces (gauge action) on a
   finer time grid than expensive-but-smooth ones (preconditioned fermion
   determinants): level k performs [steps] outer steps per step of level
   k-1, with the "position update" of a level being a full sub-trajectory
   of the next.  Combined with Hasenbusch splitting this is what makes the
   paper's production trajectory affordable. *)

type level = {
  update_p_level : eps:float -> unit;  (** momentum kick from this level's forces *)
  steps_per_parent : int;  (** sub-steps per parent position update *)
  level_scheme : scheme;
}

let rec run_multiscale ~update_u levels ~tau =
  match levels with
  | [] -> update_u ~eps:tau
  | level :: finer ->
      let n = level.steps_per_parent in
      if n <= 0 then invalid_arg "Integrator.run_multiscale: steps must be positive";
      let dt = tau /. float_of_int n in
      let sub_u ~eps = run_multiscale ~update_u finer ~tau:eps in
      let sys = { update_p = level.update_p_level; update_u = sub_u } in
      run level.level_scheme sys ~steps:n ~dt
