lib/hmc/monomial.ml: Qdp
