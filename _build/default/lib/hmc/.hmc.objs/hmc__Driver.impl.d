lib/hmc/driver.ml: Array Context Integrator Layout List Lqcd Monomial Prng Qdp
