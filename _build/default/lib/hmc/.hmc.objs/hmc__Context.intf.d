lib/hmc/context.mli: Layout Lqcd Prng Qdp Qdpjit Solvers
