lib/hmc/fermion_force.ml: Array Context Lqcd Qdp
