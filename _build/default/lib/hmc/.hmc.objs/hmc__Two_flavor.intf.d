lib/hmc/two_flavor.mli: Context Monomial Qdp Solvers
