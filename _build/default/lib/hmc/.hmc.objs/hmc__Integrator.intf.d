lib/hmc/integrator.mli:
