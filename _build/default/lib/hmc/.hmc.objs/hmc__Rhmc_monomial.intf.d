lib/hmc/rhmc_monomial.mli: Context Monomial Numerics Qdp
