lib/hmc/gauge_monomial.ml: Array Context List Lqcd Monomial Qdp
