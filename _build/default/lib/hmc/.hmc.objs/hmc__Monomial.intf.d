lib/hmc/monomial.mli: Qdp
