lib/hmc/fermion_force.mli: Context Qdp
