lib/hmc/driver.mli: Context Integrator Monomial
