lib/hmc/two_flavor.ml: Context Fermion_force Lqcd Monomial Printf Qdp Solvers
