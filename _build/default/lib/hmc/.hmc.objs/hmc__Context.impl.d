lib/hmc/context.ml: Array Layout Linalg Lqcd Printf Prng Qdp Qdpjit Solvers
