lib/hmc/rhmc_monomial.ml: Array Context Fermion_force Lqcd Monomial Numerics Printf Qdp Solvers Two_flavor
