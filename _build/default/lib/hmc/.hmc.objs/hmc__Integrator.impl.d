lib/hmc/integrator.ml:
