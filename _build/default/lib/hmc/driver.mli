(** The gauge-generation driver: Hybrid Monte Carlo trajectories with
    momentum/pseudofermion heatbath, molecular dynamics and a Metropolis
    accept/reject step — the program whose Blue Waters deployment the
    paper's Fig. 7 measures. *)

type params = {
  steps : int;  (** MD steps per trajectory *)
  dt : float;  (** step size; trajectory length tau = steps * dt *)
  scheme : Integrator.scheme;
}

type trajectory_result = {
  h_initial : float;
  h_final : float;
  delta_h : float;
  accepted : bool;
  plaquette : float;  (** mean plaquette of the (possibly restored) links *)
  solver_iterations : int;  (** Krylov iterations spent in this trajectory *)
}

val hamiltonian : Context.t -> Monomial.t list -> float
(** Kinetic energy plus every monomial's action. *)

val run_trajectory :
  ?forced_accept:bool -> Context.t -> Monomial.t list -> params -> trajectory_result
(** One HMC trajectory: heatbaths, MD integration, reunitarisation,
    Metropolis (links restored on rejection).  [forced_accept] skips the
    accept/reject decision (integrator studies). *)

val run_trajectory_multiscale :
  ?forced_accept:bool ->
  Context.t ->
  (Monomial.t list * int * Integrator.scheme) list ->
  tau:float ->
  trajectory_result
(** Sexton–Weingarten multiple time scales: levels ordered outermost
    (most expensive forces, fewest evaluations) to innermost; each level
    performs its [steps] per parent position update. *)

val reversibility_drift : Context.t -> Monomial.t list -> params -> float
(** Integrate forward, flip momenta, integrate back; RMS link distance
    from the start (rounding-level for a symplectic integrator). *)
