(* xoshiro256++ by Blackman & Vigna, with splitmix64 for seeding and stream
   splitting.  All arithmetic is on boxed int64 which is fast enough for the
   noise volumes used here (tests and small-lattice HMC). *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable cached_gauss : float;
  mutable has_cached : bool;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64 step: used to expand a 64-bit seed into the 256-bit state. *)
let splitmix64 state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; cached_gauss = 0.0; has_cached = false }

let copy g = { g with s0 = g.s0 }

let bits64 g =
  let result = Int64.add (rotl (Int64.add g.s0 g.s3) 23) g.s0 in
  let t = Int64.shift_left g.s1 17 in
  g.s2 <- Int64.logxor g.s2 g.s0;
  g.s3 <- Int64.logxor g.s3 g.s1;
  g.s1 <- Int64.logxor g.s1 g.s2;
  g.s0 <- Int64.logxor g.s0 g.s3;
  g.s2 <- Int64.logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g ~index =
  (* Derive a child seed by hashing the parent state with the index through
     splitmix64; the parent state is not advanced. *)
  let st = ref (Int64.logxor g.s0 (Int64.mul (Int64.of_int (index + 1)) 0xD1342543DE82EF95L)) in
  let mix = Int64.logxor (splitmix64 st) g.s2 in
  create ~seed:(Int64.logxor mix (Int64.of_int index))

let float01 g =
  (* Take the top 53 bits for a uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform g ~lo ~hi = lo +. ((hi -. lo) *. float01 g)

let int_below g n =
  if n <= 0 then invalid_arg "Prng.int_below: n must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^62. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 g) 1) (Int64.of_int n))

let gaussian_pair g =
  (* Box–Muller.  Guard against log 0 by excluding u1 = 0. *)
  let rec nonzero () =
    let u = float01 g in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = float01 g in
  let r = sqrt (-2.0 *. log u1) in
  let theta = 2.0 *. Float.pi *. u2 in
  (r *. cos theta, r *. sin theta)

let gaussian g =
  if g.has_cached then begin
    g.has_cached <- false;
    g.cached_gauss
  end
  else begin
    let x, y = gaussian_pair g in
    g.cached_gauss <- y;
    g.has_cached <- true;
    x
  end

(* Jump polynomial for xoshiro256++ (2^128 steps). *)
let jump_table = [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump g =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun jp ->
      for b = 0 to 63 do
        if Int64.logand jp (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 g.s0;
          s1 := Int64.logxor !s1 g.s1;
          s2 := Int64.logxor !s2 g.s2;
          s3 := Int64.logxor !s3 g.s3
        end;
        ignore (bits64 g)
      done)
    jump_table;
  g.s0 <- !s0;
  g.s1 <- !s1;
  g.s2 <- !s2;
  g.s3 <- !s3
