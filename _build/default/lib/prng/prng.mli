(** Deterministic pseudo-random number generation.

    LQCD gauge generation needs reproducible noise: momentum refreshment and
    pseudofermion heatbaths draw gaussian vectors over the whole lattice, and
    multi-rank runs must produce the same field content regardless of the
    rank decomposition.  This module provides a xoshiro256++ generator with
    [splitmix64] seeding, cheap stream splitting (one independent stream per
    lattice site), and gaussian variates. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** Fresh generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> index:int -> t
(** [split g ~index] derives an independent stream identified by [index]
    without disturbing [g].  Splitting the same generator state with the
    same index always yields the same stream; distinct indices give
    decorrelated streams.  Used for per-site noise filling. *)

val bits64 : t -> int64
(** Next 64 uniformly distributed bits. *)

val float01 : t -> float
(** Uniform in [0,1) with 53-bit resolution. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [lo,hi). *)

val int_below : t -> int -> int
(** [int_below g n] is uniform in [0,n). Requires [n > 0]. *)

val gaussian : t -> float
(** Standard normal variate (Box–Muller; one value per call, the paired
    value is cached). *)

val gaussian_pair : t -> float * float
(** Two independent standard normal variates. *)

val jump : t -> unit
(** Advance the state by 2^128 steps (xoshiro jump polynomial); used to
    give long-lived parallel streams non-overlapping subsequences. *)
