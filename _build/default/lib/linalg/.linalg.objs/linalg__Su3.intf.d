lib/linalg/su3.mli: Prng
