lib/linalg/algebra.ml: Array Layout List Printf
