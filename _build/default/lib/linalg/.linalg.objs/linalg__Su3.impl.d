lib/linalg/su3.ml: Array Float Prng
