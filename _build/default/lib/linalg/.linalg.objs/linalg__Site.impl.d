lib/linalg/site.ml: Algebra Array Index Layout List Printf Scalar Shape
