lib/linalg/scalar.ml:
