lib/linalg/algebra.mli: Layout
