module Shape = Layout.Shape

exception Type_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

type contraction = { out_extent : int; pairs : (int * int) list array }

(* Generic level contraction for scalar/vector/matrix structure.  The level
   is described by a kind tag plus extent; matrices are row-major. *)
type kind = Kscalar | Kvector of int | Kmatrix of int

let scalar_contraction = { out_extent = 1; pairs = [| [ (0, 0) ] |] }

let broadcast_left extent =
  (* a is scalar: out_k = a_0 * b_k *)
  { out_extent = extent; pairs = Array.init extent (fun k -> [ (0, k) ]) }

let broadcast_right extent =
  { out_extent = extent; pairs = Array.init extent (fun k -> [ (k, 0) ]) }

let mat_vec n =
  {
    out_extent = n;
    pairs = Array.init n (fun i -> List.init n (fun j -> ((i * n) + j, j)));
  }

let mat_mat n =
  {
    out_extent = n * n;
    pairs =
      Array.init (n * n) (fun ij ->
          let i = ij / n and j = ij mod n in
          List.init n (fun k -> ((i * n) + k, (k * n) + j)));
  }

let kind_contraction what a b =
  match (a, b) with
  | Kscalar, Kscalar -> (Kscalar, scalar_contraction)
  | Kscalar, Kvector n -> (Kvector n, broadcast_left n)
  | Kscalar, Kmatrix n -> (Kmatrix n, broadcast_left (n * n))
  | Kvector n, Kscalar -> (Kvector n, broadcast_right n)
  | Kmatrix n, Kscalar -> (Kmatrix n, broadcast_right (n * n))
  | Kmatrix n, Kvector m ->
      if n <> m then fail "%s: matrix(%d) * vector(%d) extent mismatch" what n m;
      (Kvector n, mat_vec n)
  | Kmatrix n, Kmatrix m ->
      if n <> m then fail "%s: matrix(%d) * matrix(%d) extent mismatch" what n m;
      (Kmatrix n, mat_mat n)
  | Kvector _, (Kvector _ | Kmatrix _) -> fail "%s: vector on the left of a product" what

let kind_of_spin = function
  | Shape.Spin_scalar -> Kscalar
  | Shape.Spin_vector n -> Kvector n
  | Shape.Spin_matrix n -> Kmatrix n
  | Shape.Spin_block _ -> fail "mul: clover block structure in a generic product"

let spin_of_kind = function
  | Kscalar -> Shape.Spin_scalar
  | Kvector n -> Shape.Spin_vector n
  | Kmatrix n -> Shape.Spin_matrix n

let kind_of_color = function
  | Shape.Color_scalar -> Kscalar
  | Shape.Color_vector n -> Kvector n
  | Shape.Color_matrix n -> Kmatrix n
  | Shape.Color_diag _ | Shape.Color_tri _ | Shape.Color_rows _ ->
      fail "mul: packed color structure in a generic product (reconstruct first)"

let color_of_kind = function
  | Kscalar -> Shape.Color_scalar
  | Kvector n -> Shape.Color_vector n
  | Kmatrix n -> Shape.Color_matrix n

let spin_contraction a b =
  let k, c = kind_contraction "spin" (kind_of_spin a) (kind_of_spin b) in
  (spin_of_kind k, c)

let color_contraction a b =
  let k, c = kind_contraction "color" (kind_of_color a) (kind_of_color b) in
  (color_of_kind k, c)

let mul_reality a b = match (a, b) with Shape.Real, Shape.Real -> Shape.Real | _ -> Shape.Cplx

let mul_shape a b =
  let spin, _ = spin_contraction a.Shape.spin b.Shape.spin in
  let color, _ = color_contraction a.Shape.color b.Shape.color in
  {
    Shape.spin;
    color;
    reality = mul_reality a.Shape.reality b.Shape.reality;
    prec = Shape.promote_prec a.Shape.prec b.Shape.prec;
  }

let add_shape a b =
  if not (Shape.equal_modulo_prec a b) then
    fail "add: shape mismatch %s vs %s" (Shape.to_string a) (Shape.to_string b);
  { a with Shape.prec = Shape.promote_prec a.Shape.prec b.Shape.prec }

let adj_shape s =
  (match s.Shape.spin with
  | Shape.Spin_scalar | Shape.Spin_matrix _ -> ()
  | Shape.Spin_vector _ | Shape.Spin_block _ ->
      fail "adj: spin structure %s has no adjoint" (Shape.to_string s));
  (match s.Shape.color with
  | Shape.Color_scalar | Shape.Color_matrix _ -> ()
  | Shape.Color_vector _ | Shape.Color_diag _ | Shape.Color_tri _ | Shape.Color_rows _ ->
      fail "adj: color structure %s has no adjoint" (Shape.to_string s));
  s

let transpose_shape = adj_shape

let trace_color_shape s =
  match s.Shape.color with
  | Shape.Color_matrix _ -> { s with Shape.color = Shape.Color_scalar }
  | _ -> fail "trace_color: not a color matrix: %s" (Shape.to_string s)

let trace_spin_shape s =
  match s.Shape.spin with
  | Shape.Spin_matrix _ -> { s with Shape.spin = Shape.Spin_scalar }
  | _ -> fail "trace_spin: not a spin matrix: %s" (Shape.to_string s)

let real_shape s = { s with Shape.reality = Shape.Real }

let is_fermion s =
  match (s.Shape.spin, s.Shape.color, s.Shape.reality) with
  | Shape.Spin_vector _, Shape.Color_vector _, Shape.Cplx -> true
  | _ -> false

let outer_color_shape a b =
  if not (is_fermion a && is_fermion b) then
    fail "outer_color: operands must be fermions: %s, %s" (Shape.to_string a) (Shape.to_string b);
  if not (Shape.equal_modulo_prec { a with Shape.prec = b.Shape.prec } b) then
    fail "outer_color: operand shape mismatch";
  let n = match a.Shape.color with Shape.Color_vector n -> n | _ -> assert false in
  {
    Shape.spin = Shape.Spin_scalar;
    color = Shape.Color_matrix n;
    reality = Shape.Cplx;
    prec = Shape.promote_prec a.Shape.prec b.Shape.prec;
  }

(* Compression drops the third row; reconstruction restores it via the
   conjugate cross product (valid for special unitary matrices). *)
let compress_shape s =
  match (s.Shape.spin, s.Shape.color, s.Shape.reality) with
  | Shape.Spin_scalar, Shape.Color_matrix 3, Shape.Cplx ->
      { s with Shape.color = Shape.Color_rows 2 }
  | _ -> fail "compress: not an SU(3)-shaped color matrix: %s" (Shape.to_string s)

let reconstruct_shape s =
  match (s.Shape.spin, s.Shape.color, s.Shape.reality) with
  | Shape.Spin_scalar, Shape.Color_rows 2, Shape.Cplx ->
      { s with Shape.color = Shape.Color_matrix 3 }
  | _ -> fail "reconstruct: not a compressed gauge field: %s" (Shape.to_string s)

let clover_shapes ~diag ~tri ~psi =
  let expect cond msg = if not cond then fail "clover: %s" msg in
  (match (diag.Shape.spin, diag.Shape.color, diag.Shape.reality) with
  | Shape.Spin_block 2, Shape.Color_diag 6, Shape.Real -> ()
  | _ -> fail "clover: bad diag shape %s" (Shape.to_string diag));
  (match (tri.Shape.spin, tri.Shape.color, tri.Shape.reality) with
  | Shape.Spin_block 2, Shape.Color_tri 15, Shape.Cplx -> ()
  | _ -> fail "clover: bad tri shape %s" (Shape.to_string tri));
  expect (is_fermion psi) "operand must be a fermion";
  (match (psi.Shape.spin, psi.Shape.color) with
  | Shape.Spin_vector 4, Shape.Color_vector 3 -> ()
  | _ -> fail "clover: fermion must be spin 4 x color 3, got %s" (Shape.to_string psi));
  let prec =
    Shape.promote_prec
      (Shape.promote_prec diag.Shape.prec tri.Shape.prec)
      psi.Shape.prec
  in
  { psi with Shape.prec }
