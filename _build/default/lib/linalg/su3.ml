type m = float array

let idx i j = 2 * ((3 * i) + j)
let zero () = Array.make 18 0.0

let identity () =
  let m = zero () in
  for i = 0 to 2 do
    m.(idx i i) <- 1.0
  done;
  m

let copy = Array.copy
let add a b = Array.init 18 (fun k -> a.(k) +. b.(k))
let sub a b = Array.init 18 (fun k -> a.(k) -. b.(k))

let mul a b =
  let out = zero () in
  for i = 0 to 2 do
    for j = 0 to 2 do
      let re = ref 0.0 and im = ref 0.0 in
      for k = 0 to 2 do
        let ar = a.(idx i k) and ai = a.(idx i k + 1) in
        let br = b.(idx k j) and bi = b.(idx k j + 1) in
        re := !re +. ((ar *. br) -. (ai *. bi));
        im := !im +. ((ar *. bi) +. (ai *. br))
      done;
      out.(idx i j) <- !re;
      out.(idx i j + 1) <- !im
    done
  done;
  out

let dagger a =
  let out = zero () in
  for i = 0 to 2 do
    for j = 0 to 2 do
      out.(idx i j) <- a.(idx j i);
      out.(idx i j + 1) <- -.a.(idx j i + 1)
    done
  done;
  out

let scale ~re ~im a =
  let out = zero () in
  for k = 0 to 8 do
    let ar = a.(2 * k) and ai = a.((2 * k) + 1) in
    out.(2 * k) <- (re *. ar) -. (im *. ai);
    out.((2 * k) + 1) <- (re *. ai) +. (im *. ar)
  done;
  out

let trace a =
  let re = ref 0.0 and im = ref 0.0 in
  for i = 0 to 2 do
    re := !re +. a.(idx i i);
    im := !im +. a.(idx i i + 1)
  done;
  (!re, !im)

let cmul (ar, ai) (br, bi) = ((ar *. br) -. (ai *. bi), (ar *. bi) +. (ai *. br))
let csub (ar, ai) (br, bi) = (ar -. br, ai -. bi)
let cadd (ar, ai) (br, bi) = (ar +. br, ai +. bi)
let at a i j = (a.(idx i j), a.(idx i j + 1))

let determinant a =
  (* Laplace expansion along the first row. *)
  let minor r0 c0 r1 c1 = csub (cmul (at a r0 c0) (at a r1 c1)) (cmul (at a r0 c1) (at a r1 c0)) in
  let t0 = cmul (at a 0 0) (minor 1 1 2 2) in
  let t1 = cmul (at a 0 1) (minor 1 0 2 2) in
  let t2 = cmul (at a 0 2) (minor 1 0 2 1) in
  cadd (csub t0 t1) t2

let frobenius_dist a b =
  let acc = ref 0.0 in
  for k = 0 to 17 do
    let d = a.(k) -. b.(k) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let is_unitary ?(tol = 1e-10) u = frobenius_dist (mul u (dagger u)) (identity ()) <= tol

let is_special_unitary ?(tol = 1e-10) u =
  if not (is_unitary ~tol u) then false
  else begin
    let dr, di = determinant u in
    abs_float (dr -. 1.0) <= tol && abs_float di <= tol
  end

(* Row views as 3-vectors of complex pairs. *)
let row a i = Array.init 3 (fun j -> at a i j)

let set_row a i r =
  Array.iteri
    (fun j (re, im) ->
      a.(idx i j) <- re;
      a.(idx i j + 1) <- im)
    r

let vnorm r = sqrt (Array.fold_left (fun acc (re, im) -> acc +. (re *. re) +. (im *. im)) 0.0 r)
let vscale s r = Array.map (fun (re, im) -> (s *. re, s *. im)) r

let vdot a b =
  (* <a|b> = sum conj(a_i) b_i *)
  Array.init 3 (fun i -> cmul ((fun (re, im) -> (re, -.im)) a.(i)) b.(i))
  |> Array.fold_left cadd (0.0, 0.0)

let vsub a b = Array.init 3 (fun i -> csub a.(i) b.(i))
let vcmul c r = Array.map (fun x -> cmul c x) r

let reunitarize u =
  let out = copy u in
  let r0 = vscale (1.0 /. vnorm (row out 0)) (row out 0) in
  set_row out 0 r0;
  let r1 = row out 1 in
  let r1 = vsub r1 (vcmul (vdot r0 r1) r0) in
  let r1 = vscale (1.0 /. vnorm r1) r1 in
  set_row out 1 r1;
  (* Third row: conj(r0 x r1) completes a special unitary matrix. *)
  let cross i j =
    csub (cmul r0.(i) r1.(j)) (cmul r0.(j) r1.(i)) |> fun (re, im) -> (re, -.im)
  in
  set_row out 2 [| cross 1 2; cross 2 0; cross 0 1 |];
  out

let one_norm a =
  (* Max column sum of magnitudes; cheap scaling estimate for expm. *)
  let best = ref 0.0 in
  for j = 0 to 2 do
    let s = ref 0.0 in
    for i = 0 to 2 do
      let re, im = at a i j in
      s := !s +. sqrt ((re *. re) +. (im *. im))
    done;
    if !s > !best then best := !s
  done;
  !best

let expm a =
  let norm = one_norm a in
  let squarings = max 0 (int_of_float (ceil (log (max norm 1e-30) /. log 2.0)) + 1) in
  let scaled = scale ~re:(1.0 /. Float.ldexp 1.0 squarings) ~im:0.0 a in
  (* Taylor series; with |scaled| <= 1/2 about 20 terms reach 1 ulp. *)
  let sum = identity () in
  let term = ref (identity ()) in
  let acc = ref sum in
  for k = 1 to 24 do
    term := scale ~re:(1.0 /. float_of_int k) ~im:0.0 (mul !term scaled);
    acc := add !acc !term
  done;
  let result = ref !acc in
  for _ = 1 to squarings do
    result := mul !result !result
  done;
  !result

let gell_mann () =
  let l k = Array.make 18 0.0 |> fun m -> (m, k) in
  let set (m, _) i j re im =
    m.(idx i j) <- re;
    m.(idx i j + 1) <- im
  in
  let l1 = l 1 in
  set l1 0 1 1.0 0.0;
  set l1 1 0 1.0 0.0;
  let l2 = l 2 in
  set l2 0 1 0.0 (-1.0);
  set l2 1 0 0.0 1.0;
  let l3 = l 3 in
  set l3 0 0 1.0 0.0;
  set l3 1 1 (-1.0) 0.0;
  let l4 = l 4 in
  set l4 0 2 1.0 0.0;
  set l4 2 0 1.0 0.0;
  let l5 = l 5 in
  set l5 0 2 0.0 (-1.0);
  set l5 2 0 0.0 1.0;
  let l6 = l 6 in
  set l6 1 2 1.0 0.0;
  set l6 2 1 1.0 0.0;
  let l7 = l 7 in
  set l7 1 2 0.0 (-1.0);
  set l7 2 1 0.0 1.0;
  let l8 = l 8 in
  let s = 1.0 /. sqrt 3.0 in
  set l8 0 0 s 0.0;
  set l8 1 1 s 0.0;
  set l8 2 2 (-2.0 *. s) 0.0;
  Array.map fst [| l1; l2; l3; l4; l5; l6; l7; l8 |]

let gaussian_hermitian rng =
  let gens = gell_mann () in
  let out = zero () in
  Array.iteri
    (fun _ g ->
      let p = Prng.gaussian rng in
      for k = 0 to 17 do
        out.(k) <- out.(k) +. (0.5 *. p *. g.(k))
      done)
    gens;
  out

let random_su3 rng =
  let h = gaussian_hermitian rng in
  reunitarize (expm (scale ~re:0.0 ~im:1.0 h))

let random_su3_near_identity rng ~epsilon =
  let h = gaussian_hermitian rng in
  reunitarize (expm (scale ~re:0.0 ~im:epsilon h))
