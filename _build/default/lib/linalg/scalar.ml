(** Abstract scalar semantics for the site algebra.

    All per-site math in the library is written once against this signature
    (see {!Site}).  Instantiated with {!Float_scalar} it is the CPU
    evaluator of the original QDP++ implementation; instantiated with the
    PTX value emitter of the QDP-JIT layer, the very same algebra *builds
    kernel code* instead of computing numbers — the expression-templates-
    as-code-generators idea of the paper in OCaml terms. *)

module type S = sig
  type t

  val const : float -> t
  (** Inject a compile-time constant. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t

  val fma : t -> t -> t -> t
  (** [fma a b c] is [a * b + c]; evaluators may fuse it. *)
end

module Float_scalar : S with type t = float = struct
  type t = float

  let const x = x
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let neg x = -.x
  let fma a b c = (a *. b) +. c
end
