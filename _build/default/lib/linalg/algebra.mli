(** Shape rules of the QDP++ operator algebra.

    QDP++ encodes these rules in C++ template specializations resolved at
    compile time; here they are dynamic checks performed when an expression
    is built.  Spin and color levels multiply independently (the element
    algebra is a tensor product), so each level contributes a contraction
    pattern and the element multiply is the product of the two. *)

module Shape = Layout.Shape

exception Type_error of string

val add_shape : Shape.t -> Shape.t -> Shape.t
(** Result shape of addition/subtraction: operands must agree up to
    precision; precision promotes. *)

val mul_shape : Shape.t -> Shape.t -> Shape.t
(** Result shape of multiplication.  Raises {!Type_error} for undefined
    combinations (e.g. vector * vector, or any clover Diag/Tri operand). *)

val adj_shape : Shape.t -> Shape.t
(** Hermitian adjoint: defined for scalar/matrix structure at both levels. *)

val transpose_shape : Shape.t -> Shape.t

val trace_color_shape : Shape.t -> Shape.t
(** Color trace: color matrix becomes color scalar. *)

val trace_spin_shape : Shape.t -> Shape.t

val real_shape : Shape.t -> Shape.t
(** Componentwise real part: reality becomes [Real]. *)

val outer_color_shape : Shape.t -> Shape.t -> Shape.t
(** [traceSpin(outerProduct(a, adj b))]: two fermions give a color matrix. *)

val compress_shape : Shape.t -> Shape.t
(** SU(3) color matrix -> 2-row compressed form (the QUDA 12-real trick). *)

val reconstruct_shape : Shape.t -> Shape.t

val clover_shapes : diag:Shape.t -> tri:Shape.t -> psi:Shape.t -> Shape.t
(** Validates the packed clover application [A * psi] (Sec. VI-A) and
    returns the result shape (that of [psi], with promoted precision). *)

(** {2 Contraction patterns}

    For an output component index at one level, the list of (left index,
    right index) pairs whose products are summed. *)

type contraction = { out_extent : int; pairs : (int * int) list array }

val spin_contraction : Shape.spin -> Shape.spin -> Shape.spin * contraction
val color_contraction : Shape.color -> Shape.color -> Shape.color * contraction
