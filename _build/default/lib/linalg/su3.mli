(** Concrete 3x3 complex matrix utilities for SU(3) gauge fields.

    A matrix is a flat [float array] of 18 entries, row-major with
    interleaved re/im — the canonical component order of a color-matrix
    site element ({!Layout.Index.linear_component}).  These host-side
    helpers serve gauge-field setup, momentum refreshment, link updates
    (exponentials) and tests; lattice-wide arithmetic goes through the
    expression layer instead. *)

type m = float array
(** 18 floats: [m.(2*(3*i+j)) = Re M_ij], [m.(2*(3*i+j)+1) = Im M_ij]. *)

val zero : unit -> m
val identity : unit -> m
val copy : m -> m
val add : m -> m -> m
val sub : m -> m -> m
val mul : m -> m -> m
val dagger : m -> m
val scale : re:float -> im:float -> m -> m
val trace : m -> float * float
val determinant : m -> float * float
val frobenius_dist : m -> m -> float

val is_unitary : ?tol:float -> m -> bool
(** [U U^dag = 1] within [tol] (default 1e-10) in Frobenius norm. *)

val is_special_unitary : ?tol:float -> m -> bool
(** Unitary with [det = 1]. *)

val reunitarize : m -> m
(** Project back onto SU(3) by Gram–Schmidt on the first two rows and
    completing the third row as the conjugate cross product; repairs the
    rounding drift accumulated by molecular-dynamics link updates. *)

val expm : m -> m
(** Matrix exponential by scaling-and-squaring with a Taylor series,
    accurate to machine precision for the O(1)-norm inputs of HMC. *)

val gell_mann : unit -> m array
(** The 8 Gell-Mann matrices (Hermitian, traceless, [tr(l_a l_b) = 2 d_ab]). *)

val gaussian_hermitian : Prng.t -> m
(** Traceless Hermitian gaussian momentum [P = sum_a p_a l_a / 2] with
    [p_a ~ N(0,1)]; the HMC kinetic-energy convention is [tr(P^2)]. *)

val random_su3 : Prng.t -> m
(** Haar-ish random SU(3) element: [exp(i H)] with a gaussian Hermitian
    [H], reunitarized.  Uniform enough for test configurations. *)

val random_su3_near_identity : Prng.t -> epsilon:float -> m
(** [exp(i eps H)]: a small fluctuation around the identity, used to build
    weakly-coupled test gauge fields with plaquette close to 1. *)
