(** Gauge sector: link-field construction, plaquettes, staples and the
    Wilson gauge action, all at the expression level so that both the CPU
    reference and the JIT engine evaluate them. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr

type links = Field.t array
(** One [LatticeColorMatrix] per dimension (the multi1d of Fig. 1). *)

let create_links ?(prec = Shape.F64) geom : links =
  Array.init (Geometry.nd geom) (fun mu ->
      Field.create ~name:(Printf.sprintf "u%d" mu) (Shape.lattice_color_matrix prec) geom)

let set_link (u : links) ~mu ~site (m : Linalg.Su3.m) =
  Field.set_site u.(mu) ~site (Array.copy m)

let get_link (u : links) ~mu ~site : Linalg.Su3.m = Field.get_site u.(mu) ~site

(* Cold start: all links at the identity (plaquette exactly 1). *)
let unit_gauge (u : links) =
  Array.iter
    (fun f ->
      let site_count = Field.volume f in
      for site = 0 to site_count - 1 do
        Field.set_site f ~site (Linalg.Su3.identity ())
      done)
    u

(* Hot/warm starts for tests and thermalisation. *)
let random_gauge ?(epsilon = 1.0) (u : links) rng =
  Array.iter
    (fun f ->
      let site_count = Field.volume f in
      for site = 0 to site_count - 1 do
        Field.set_site f ~site (Linalg.Su3.random_su3_near_identity rng ~epsilon)
      done)
    u

let reunitarize (u : links) =
  Array.iter
    (fun f ->
      let site_count = Field.volume f in
      for site = 0 to site_count - 1 do
        Field.set_site f ~site (Linalg.Su3.reunitarize (Field.get_site f ~site))
      done)
    u

(* P_munu(x) = U_mu(x) U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag. *)
let plaquette_expr (u : links) ~mu ~nu =
  if mu = nu then invalid_arg "Gauge.plaquette_expr: mu = nu";
  let f = Expr.field in
  Expr.mul
    (Expr.mul (f u.(mu)) (Expr.shift (f u.(nu)) ~dim:mu ~dir:1))
    (Expr.mul
       (Expr.adj (Expr.shift (f u.(mu)) ~dim:nu ~dir:1))
       (Expr.adj (f u.(nu))))

(* Re tr P / Nc, per site. *)
let plaquette_trace_expr (u : links) ~mu ~nu =
  Expr.mul
    (Expr.const_real (1.0 /. 3.0))
    (Expr.real (Expr.trace_color (plaquette_expr u ~mu ~nu)))

(* Mean plaquette over all mu<nu pairs, via a caller-supplied summation
   (CPU reference or JIT reduction). *)
let mean_plaquette ~sum_real (u : links) =
  let nd = Array.length u in
  let volume = Field.volume u.(0) in
  let acc = ref 0.0 in
  let pairs = ref 0 in
  for mu = 0 to nd - 1 do
    for nu = mu + 1 to nd - 1 do
      acc := !acc +. sum_real (plaquette_trace_expr u ~mu ~nu);
      incr pairs
    done
  done;
  !acc /. float_of_int (volume * !pairs)

(* The staple sum entering the gauge force for link (x, mu):
   sum_{nu<>mu}  U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag
               + U_nu(x+mu-nu)^dag U_mu(x-nu)^dag U_nu(x-nu). *)
let staple_expr (u : links) ~mu =
  let nd = Array.length u in
  let f = Expr.field in
  let terms = ref [] in
  for nu = 0 to nd - 1 do
    if nu <> mu then begin
      let up =
        Expr.mul
          (Expr.shift (f u.(nu)) ~dim:mu ~dir:1)
          (Expr.mul (Expr.adj (Expr.shift (f u.(mu)) ~dim:nu ~dir:1)) (Expr.adj (f u.(nu))))
      in
      let down_inner =
        Expr.mul
          (Expr.adj (Expr.shift (f u.(nu)) ~dim:mu ~dir:1))
          (Expr.mul (Expr.adj (f u.(mu))) (f u.(nu)))
      in
      let down = Expr.shift down_inner ~dim:nu ~dir:(-1) in
      terms := down :: up :: !terms
    end
  done;
  match !terms with
  | [] -> invalid_arg "Gauge.staple_expr: one-dimensional lattice"
  | t :: rest -> List.fold_left Expr.add t rest

(* Wilson gauge action S = beta sum_{x,mu<nu} (1 - Re tr P / Nc);
   [aniso] scales temporal plaquettes (the last dimension) by xi and
   spatial ones by 1/xi, the standard anisotropic Wilson form. *)
let action ~sum_real ?(aniso = 1.0) ~beta (u : links) =
  let nd = Array.length u in
  let volume = Field.volume u.(0) in
  let acc = ref 0.0 in
  for mu = 0 to nd - 1 do
    for nu = mu + 1 to nd - 1 do
      let weight = if nu = nd - 1 then aniso else 1.0 /. aniso in
      let tr = sum_real (plaquette_trace_expr u ~mu ~nu) in
      acc := !acc +. (weight *. (float_of_int volume -. tr))
    done
  done;
  beta *. !acc

(* Plaquette-pair weight used by both the action and its force. *)
let pair_weight ~aniso ~nd ~mu ~nu =
  if mu = nd - 1 || nu = nd - 1 then aniso else 1.0 /. aniso

(* Field strength for the clover term: Q_munu(x) is the sum of the four
   plaquette leaves around x in the (mu,nu) plane and
   F_munu = (Q - Q^dag) / 8i (Hermitian). *)
let clover_leaf_sum_expr (u : links) ~mu ~nu =
  let f = Expr.field in
  let um = f u.(mu) and un = f u.(nu) in
  let sh e dim dir = Expr.shift e ~dim ~dir in
  (* Leaf 1: forward-forward. *)
  let p1 = Expr.mul (Expr.mul um (sh un mu 1)) (Expr.mul (Expr.adj (sh um nu 1)) (Expr.adj un)) in
  (* Leaf 2: U_nu(x) U_mu(x-mu+nu)^dag U_nu(x-mu)^dag U_mu(x-mu). *)
  let p2 =
    Expr.mul
      (Expr.mul un (Expr.adj (sh (sh um nu 1) mu (-1))))
      (Expr.mul (Expr.adj (sh un mu (-1))) (sh um mu (-1)))
  in
  (* Leaf 3: U_mu(x-mu)^dag U_nu(x-mu-nu)^dag U_mu(x-mu-nu) U_nu(x-nu). *)
  let p3 =
    Expr.mul
      (Expr.mul (Expr.adj (sh um mu (-1))) (Expr.adj (sh (sh un mu (-1)) nu (-1))))
      (Expr.mul (sh (sh um mu (-1)) nu (-1)) (sh un nu (-1)))
  in
  (* Leaf 4: U_nu(x-nu)^dag U_mu(x-nu) U_nu(x+mu-nu) U_mu(x)^dag. *)
  let p4 =
    Expr.mul
      (Expr.mul (Expr.adj (sh un nu (-1))) (sh um nu (-1)))
      (Expr.mul (sh (sh un mu 1) nu (-1)) (Expr.adj um))
  in
  Expr.add (Expr.add p1 p2) (Expr.add p3 p4)

let field_strength_expr (u : links) ~mu ~nu =
  let q = clover_leaf_sum_expr u ~mu ~nu in
  (* (Q - Q^dag) / 8i = -i/8 (Q - Q^dag). *)
  Expr.mul (Expr.const_complex 0.0 (-0.125)) (Expr.sub q (Expr.adj q))
