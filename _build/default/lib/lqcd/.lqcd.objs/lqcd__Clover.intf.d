lib/lqcd/clover.mli: Gauge Layout Qdp
