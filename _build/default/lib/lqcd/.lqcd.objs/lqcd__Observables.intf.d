lib/lqcd/observables.mli: Gauge Layout Qdp
