lib/lqcd/wilson.mli: Gauge Layout Qdp
