lib/lqcd/observables.ml: Array Gauge Layout Qdp
