lib/lqcd/gauge_io.ml: Array Buffer Bytes Fun Gauge Int32 Int64 Layout Printf Qdp String
