lib/lqcd/gamma.ml: Array Layout Qdp
