lib/lqcd/gamma.mli: Layout Qdp
