lib/lqcd/clover.ml: Array Gamma Gauge Hashtbl Layout Printf Qdp
