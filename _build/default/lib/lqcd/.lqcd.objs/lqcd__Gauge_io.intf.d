lib/lqcd/gauge_io.mli: Gauge
