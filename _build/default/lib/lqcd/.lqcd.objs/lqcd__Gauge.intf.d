lib/lqcd/gauge.mli: Layout Linalg Prng Qdp
