lib/lqcd/gauge.ml: Array Layout Linalg List Printf Qdp
