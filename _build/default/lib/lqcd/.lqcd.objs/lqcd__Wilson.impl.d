lib/lqcd/wilson.ml: Array Gamma Gauge Layout Qdp
