(** The clover term (Sec. VI-A): packing into the Table I (lower part)
    types and application.

    A(x) = c_id + (c_sw / 4) sum_{mu<>nu} sigma_munu F_munu(x) is Hermitian
    and block-diagonal in the two chiralities of the DeGrand–Rossi basis;
    each 6x6 block is stored as 6 real diagonal entries plus 15 complex
    lower-triangular entries.  Application happens through the custom
    [Expr.Clover] node — the user-defined operation that mixes spin and
    color index spaces, which plain QDP++ cannot express but the code
    generator supports. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr

type t = { diag : Field.t; tri : Field.t; csw : float; c_id : float }

(* Lower-triangle index: k(i,j) = i(i-1)/2 + j for i > j. *)
let tri_index i j =
  assert (i > j);
  (i * (i - 1) / 2) + j

(* Pack the clover term from 3x3 field-strength matrices.  [eval] runs a
   color-matrix expression into a field (CPU or JIT — the packer is
   agnostic); the per-site 6x6 block assembly is host-side bookkeeping, as
   it is in Chroma. *)
let pack ?(prec = Shape.F64) ~eval ~csw ~c_id (u : Gauge.links) =
  let geom = u.(0).Field.geom in
  let nd = Array.length u in
  if nd <> 4 then invalid_arg "Clover.pack: the clover term is four-dimensional";
  let nsites = Geometry.volume geom in
  (* Materialise the six field-strength components. *)
  let fmunu = Hashtbl.create 6 in
  for mu = 0 to 3 do
    for nu = mu + 1 to 3 do
      let dest = Field.create ~name:(Printf.sprintf "F%d%d" mu nu) (Shape.lattice_color_matrix prec) geom in
      eval dest (Gauge.field_strength_expr u ~mu ~nu);
      Hashtbl.replace fmunu (mu, nu) dest
    done
  done;
  let diag = Field.create ~name:"clov_diag" (Shape.clover_diag prec) geom in
  let tri = Field.create ~name:"clov_tri" (Shape.clover_tri prec) geom in
  (* sigma matrices restricted to the chiral blocks. *)
  let sigma = Array.init 4 (fun mu -> Array.init 4 (fun nu -> if mu < nu then Gamma.sigma_mat mu nu else Gamma.zero4 ())) in
  let block = Array.make_matrix 6 6 (0.0, 0.0) in
  for site = 0 to nsites - 1 do
    for b = 0 to 1 do
      (* H[(s,a)(s',a')] = c_id delta + (csw/2) sum_{mu<nu} sigma[2b+s][2b+s'] F[a][a']. *)
      for i = 0 to 5 do
        for j = 0 to 5 do
          block.(i).(j) <- (if i = j then (c_id, 0.0) else (0.0, 0.0))
        done
      done;
      for mu = 0 to 3 do
        for nu = mu + 1 to 3 do
          let f = Hashtbl.find fmunu (mu, nu) in
          let fsite = Field.get_site f ~site in
          let s = sigma.(mu).(nu) in
          for si = 0 to 1 do
            for sj = 0 to 1 do
              let sr, si_ = s.((2 * b) + si).((2 * b) + sj) in
              if sr <> 0.0 || si_ <> 0.0 then
                for a = 0 to 2 do
                  for a' = 0 to 2 do
                    let fr = fsite.(2 * ((3 * a) + a')) in
                    let fi = fsite.((2 * ((3 * a) + a')) + 1) in
                    let i = (3 * si) + a and j = (3 * sj) + a' in
                    let pr, pi = block.(i).(j) in
                    (* (csw/2) * sigma * F *)
                    let re = 0.5 *. csw *. ((sr *. fr) -. (si_ *. fi)) in
                    let im = 0.5 *. csw *. ((sr *. fi) +. (si_ *. fr)) in
                    block.(i).(j) <- (pr +. re, pi +. im)
                  done
                done
            done
          done
        done
      done;
      (* Store: diagonal (real) and strictly-lower triangle. *)
      for i = 0 to 5 do
        let re, _ = block.(i).(i) in
        Field.set diag ~site ~spin:b ~color:i ~reality:0 re
      done;
      for i = 1 to 5 do
        for j = 0 to i - 1 do
          let re, im = block.(i).(j) in
          let k = tri_index i j in
          Field.set tri ~site ~spin:b ~color:k ~reality:0 re;
          Field.set tri ~site ~spin:b ~color:k ~reality:1 im
        done
      done
    done
  done;
  { diag; tri; csw; c_id }

let apply_expr t psi = Expr.clover ~diag:(Expr.field t.diag) ~tri:(Expr.field t.tri) (Expr.field psi)

(* Reference implementation of A psi as a *dense* spin (x) color expression:
   c_id psi + (csw/2) sum_{mu<nu} sigma_munu (F_munu psi).  Used by tests to
   validate the packed form against an independent construction. *)
let apply_dense_expr ?(prec = Shape.F64) ~eval ~csw ~c_id (u : Gauge.links) (psi : Field.t) =
  let geom = u.(0).Field.geom in
  let acc = ref (Expr.mul (Expr.const_real ~prec c_id) (Expr.field psi)) in
  for mu = 0 to 3 do
    for nu = mu + 1 to 3 do
      let fdest = Field.create (Shape.lattice_color_matrix prec) geom in
      eval fdest (Gauge.field_strength_expr u ~mu ~nu);
      let sig_const = Gamma.spin_matrix_const ~prec (Gamma.sigma_mat mu nu) in
      let term =
        Expr.mul
          (Expr.const_real ~prec (0.5 *. csw))
          (Expr.mul sig_const (Expr.mul (Expr.field fdest) (Expr.field psi)))
      in
      acc := Expr.add !acc term
    done
  done;
  !acc
