(** Gauge-configuration checkpointing.

    A minimal self-describing binary format (little-endian, 64-bit doubles
    in AoS site order) with the mean plaquette stored in the header as a
    content check on load — the moral equivalent of the NERSC-archive
    checksum convention used by production codes. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field

let magic = "QDPJITGAUGE1"

exception Format_error of string

let write ~path (u : Gauge.links) =
  let geom = u.(0).Field.geom in
  let nd = Geometry.nd geom in
  if Array.length u <> nd then invalid_arg "Gauge_io.write: link count mismatch";
  let plaq =
    Gauge.mean_plaquette ~sum_real:(fun e -> (Qdp.Eval_cpu.sum_components e).(0)) u
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let b = Buffer.create 64 in
      Buffer.add_int32_le b (Int32.of_int nd);
      Array.iter (fun d -> Buffer.add_int32_le b (Int32.of_int d)) (Geometry.dims geom);
      Buffer.add_int64_le b (Int64.bits_of_float plaq);
      output_string oc (Buffer.contents b);
      let dof = Shape.dof u.(0).Field.shape in
      let site_buf = Buffer.create (8 * dof) in
      Array.iter
        (fun uf ->
          for site = 0 to Geometry.volume geom - 1 do
            Buffer.clear site_buf;
            Array.iter
              (fun v -> Buffer.add_int64_le site_buf (Int64.bits_of_float v))
              (Field.get_site uf ~site);
            output_string oc (Buffer.contents site_buf)
          done)
        u)

let really_read ic n =
  let b = Bytes.create n in
  really_input ic b 0 n;
  b

let read ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = Bytes.to_string (really_read ic (String.length magic)) in
      if m <> magic then raise (Format_error "bad magic");
      let nd = Int32.to_int (Bytes.get_int32_le (really_read ic 4) 0) in
      if nd < 1 || nd > 8 then raise (Format_error "implausible dimensionality");
      let dims = Array.init nd (fun _ -> Int32.to_int (Bytes.get_int32_le (really_read ic 4) 0)) in
      let stored_plaq = Int64.float_of_bits (Bytes.get_int64_le (really_read ic 8) 0) in
      let geom = Geometry.create dims in
      let u = Gauge.create_links geom in
      let dof = Shape.dof u.(0).Field.shape in
      Array.iter
        (fun uf ->
          for site = 0 to Geometry.volume geom - 1 do
            let bytes = really_read ic (8 * dof) in
            Field.set_site uf ~site
              (Array.init dof (fun k -> Int64.float_of_bits (Bytes.get_int64_le bytes (8 * k))))
          done)
        u;
      let plaq =
        Gauge.mean_plaquette ~sum_real:(fun e -> (Qdp.Eval_cpu.sum_components e).(0)) u
      in
      if abs_float (plaq -. stored_plaq) > 1e-10 then
        raise
          (Format_error
             (Printf.sprintf "plaquette check failed: stored %.12f, recomputed %.12f" stored_plaq
                plaq));
      u)
