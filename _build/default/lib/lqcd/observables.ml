(** Gauge observables beyond the plaquette: Wilson loops, the Polyakov
    loop, and per-timeslice projections (the building block of the
    post-Monte-Carlo analysis part the paper's introduction contrasts with
    gauge generation).  Everything is built from shift expressions, so the
    same code runs on the CPU reference and through the JIT engine. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Subset = Qdp.Subset

let f = Expr.field

(* Product of [len] links along direction [mu] starting at each site:
   L(x) = U_mu(x) U_mu(x+mu) ... U_mu(x+(len-1)mu), as one expression of
   nested shifts (shift-of-shift chains are supported by the codegen). *)
let line_expr (u : Gauge.links) ~mu ~len =
  if len < 1 then invalid_arg "Observables.line_expr: len must be >= 1";
  let rec shifted e n = if n = 0 then e else shifted (Expr.shift e ~dim:mu ~dir:1) (n - 1) in
  let rec go acc n =
    if n = len then acc else go (Expr.mul acc (shifted (f u.(mu)) n)) (n + 1)
  in
  go (f u.(mu)) 1

(* Re tr of the R x T rectangle in the (mu, nu) plane, averaged over the
   lattice and normalized to Nc (W(1,1) is the plaquette). *)
let wilson_loop ~sum_real (u : Gauge.links) ~mu ~nu ~r ~t =
  if mu = nu then invalid_arg "Observables.wilson_loop: mu = nu";
  let bottom = line_expr u ~mu ~len:r in
  let top = line_expr u ~mu ~len:r in
  let left = line_expr u ~mu:nu ~len:t in
  let right = line_expr u ~mu:nu ~len:t in
  (* shift an expression by n steps along dim *)
  let rec shiftn e dim n = if n = 0 then e else shiftn (Expr.shift e ~dim ~dir:1) dim (n - 1) in
  let loop =
    Expr.mul
      (Expr.mul bottom (shiftn right mu r))
      (Expr.mul (Expr.adj (shiftn top nu t)) (Expr.adj left))
  in
  let tr = Expr.mul (Expr.const_real (1.0 /. 3.0)) (Expr.real (Expr.trace_color loop)) in
  let volume = Field.volume u.(0) in
  sum_real tr /. float_of_int volume

(* Polyakov loop: the trace of the product of all temporal links, averaged
   over space.  The product is a line of length L_t in the last dimension;
   its trace is constant along that dimension, so averaging over the whole
   lattice equals averaging over space. *)
let polyakov_loop ~sum_components (u : Gauge.links) =
  let geom = u.(0).Field.geom in
  let nd = Geometry.nd geom in
  let lt = (Geometry.dims geom).(nd - 1) in
  let line = line_expr u ~mu:(nd - 1) ~len:lt in
  let tr = Expr.mul (Expr.const_real (1.0 /. 3.0)) (Expr.trace_color line) in
  let sums = sum_components tr in
  let volume = float_of_int (Field.volume u.(0)) in
  (sums.(0) /. volume, sums.(1) /. volume)

(* Sites of one timeslice t (last dimension), for per-timeslice sums. *)
let timeslice_subset geom ~t =
  let nd = Geometry.nd geom in
  let lt = (Geometry.dims geom).(nd - 1) in
  if t < 0 || t >= lt then invalid_arg "Observables.timeslice_subset: t out of range";
  let sites = ref [] in
  for s = Geometry.volume geom - 1 downto 0 do
    if (Geometry.coord_of_site geom s).(nd - 1) = t then sites := s :: !sites
  done;
  Subset.Custom (Array.of_list !sites)

(* Pion (pseudoscalar) correlator from a point-source propagator:
   C(t) = sum_{x, t(x)=t} sum_{s,c} |S(x)_{s,c}|^2 where S's columns are
   the 12 solutions M S_{s0,c0} = delta_{x,0} delta_{s,s0} delta_{c,c0}.
   [norm2_subset] must evaluate |expr|^2 restricted to a subset. *)
let pion_correlator ~norm2_subset (propagator_columns : Field.t array) =
  if Array.length propagator_columns = 0 then
    invalid_arg "Observables.pion_correlator: no propagator columns";
  let geom = propagator_columns.(0).Field.geom in
  let nd = Geometry.nd geom in
  let lt = (Geometry.dims geom).(nd - 1) in
  Array.init lt (fun t ->
      let subset = timeslice_subset geom ~t in
      Array.fold_left
        (fun acc col -> acc +. norm2_subset subset (f col))
        0.0 propagator_columns)

(* Point source: delta at the origin in (spin s0, color c0). *)
let point_source ?(prec = Shape.F64) geom ~spin ~color =
  let src = Field.create ~name:"src" (Shape.lattice_fermion prec) geom in
  Field.set src ~site:0 ~spin ~color ~reality:0 1.0;
  src
