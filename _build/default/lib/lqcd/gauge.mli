(** Gauge sector: link-field construction, plaquettes, staples and the
    Wilson gauge action, all at the expression level so that both the CPU
    reference and the JIT engine evaluate them. *)

module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr

type links = Field.t array
(** One [LatticeColorMatrix] per dimension (the [multi1d] of the paper's
    Fig. 1). *)

val create_links : ?prec:Layout.Shape.precision -> Geometry.t -> links
val set_link : links -> mu:int -> site:int -> Linalg.Su3.m -> unit
val get_link : links -> mu:int -> site:int -> Linalg.Su3.m

val unit_gauge : links -> unit
(** Cold start: all links at the identity (plaquette exactly 1). *)

val random_gauge : ?epsilon:float -> links -> Prng.t -> unit
(** Warm start: links exp(i eps H) with gaussian Hermitian H. *)

val reunitarize : links -> unit
(** Project every link back onto SU(3) (drift repair after MD updates). *)

val plaquette_expr : links -> mu:int -> nu:int -> Qdp.Expr.t
(** U_mu(x) U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag. *)

val plaquette_trace_expr : links -> mu:int -> nu:int -> Qdp.Expr.t
(** Re tr P / Nc, per site. *)

val mean_plaquette : sum_real:(Qdp.Expr.t -> float) -> links -> float
(** Average over all mu < nu planes and the volume; [sum_real] supplies the
    lattice sum (CPU reference or JIT reduction). *)

val staple_expr : links -> mu:int -> Qdp.Expr.t
(** The staple sum entering the gauge force for link (x, mu). *)

val action : sum_real:(Qdp.Expr.t -> float) -> ?aniso:float -> beta:float -> links -> float
(** Wilson gauge action beta sum (1 - Re tr P / Nc); [aniso] weights
    temporal planes by xi and spatial ones by 1/xi. *)

val pair_weight : aniso:float -> nd:int -> mu:int -> nu:int -> float

val clover_leaf_sum_expr : links -> mu:int -> nu:int -> Qdp.Expr.t
(** Q_munu: the four plaquette leaves around x in the (mu,nu) plane. *)

val field_strength_expr : links -> mu:int -> nu:int -> Qdp.Expr.t
(** F_munu = (Q - Q^dag) / 8i (Hermitian, antisymmetric in mu<->nu). *)
