(** Wilson fermion operators as data-parallel expressions.

    The hopping term is the operator of the paper's Sec. VIII-C:

      H(x,x') = sum_mu (1-gamma_mu) U_mu(x) delta_{x+mu,x'}
                     + (1+gamma_mu) U_mu(x-mu)^dag delta_{x-mu,x'}

    written directly against the high-level interface — each application
    is one generated kernel with eight shifts, exactly the paper's
    "generated from its high-level representation" implementation. *)

val default_coeffs : int -> float array

val hopping_expr_of : ?coeffs:float array -> Qdp.Expr.t array -> Qdp.Field.t -> Qdp.Expr.t
(** The hopping term over arbitrary link expressions (compressed gauge,
    smeared links, ...). *)

val hopping_expr : ?coeffs:float array -> Gauge.links -> Qdp.Field.t -> Qdp.Expr.t
(** The hopping term D psi.  [coeffs] weights each direction (anisotropic
    actions weight time differently); defaults to all ones. *)

val hopping_expr_compressed :
  ?coeffs:float array -> Qdp.Field.t array -> Qdp.Field.t -> Qdp.Expr.t
(** Dslash over 12-real compressed links, reconstructing the third row in
    registers (the bandwidth/flops trade of the paper's Sec. VIII-C). *)

val wilson_expr : ?coeffs:float array -> kappa:float -> Gauge.links -> Qdp.Field.t -> Qdp.Expr.t
(** M psi = psi - kappa D psi (the kappa convention). *)

val wilson_clover_expr :
  ?coeffs:float array ->
  kappa:float ->
  clover_diag:Qdp.Field.t ->
  clover_tri:Qdp.Field.t ->
  Gauge.links ->
  Qdp.Field.t ->
  Qdp.Expr.t
(** Wilson-clover: M psi = psi - kappa D psi + A psi with the packed
    clover term of {!Clover}. *)

val gamma5_expr : ?prec:Layout.Shape.precision -> Qdp.Expr.t -> Qdp.Expr.t
(** Multiply by gamma5; [gamma5 M gamma5 = M^dag] for Wilson, which lets
    solvers apply the adjoint with the same generated kernels. *)

val kappa_of_mass : ?nd:int -> float -> float
val mass_of_kappa : ?nd:int -> float -> float

val dslash_flops_per_site : int
(** 1320: the conventional figure used to quote Dslash GFLOPS (Fig. 6). *)
