(** Gauge-configuration checkpointing.

    A minimal self-describing binary format (little-endian, 64-bit doubles
    in AoS site order) with the mean plaquette stored in the header as a
    content check on load — the moral equivalent of the NERSC-archive
    checksum convention. *)

exception Format_error of string

val write : path:string -> Gauge.links -> unit

val read : path:string -> Gauge.links
(** Raises {!Format_error} on bad magic, implausible headers, or when the
    recomputed plaquette disagrees with the stored one (corruption). *)
