(** Dirac gamma matrices (DeGrand–Rossi basis) as expression constants.

    A gamma matrix is a [LatticeSpinMatrix]-shaped constant; multiplying a
    fermion expression by it goes through the ordinary spin-matrix x
    spin-vector contraction.  Because the code-generating scalar folds
    constant zeros and unit factors, the dense 4x4 multiplication compiles
    to the usual sparse gamma application — no flops are spent on
    structural zeros. *)

type cmat = (float * float) array array
(** 4x4 complex entries (re, im). *)

val zero4 : unit -> cmat
val identity4 : unit -> cmat
val cmat_mul : cmat -> cmat -> cmat
val cmat_add : cmat -> cmat -> cmat
val cmat_scale : float -> cmat -> cmat
val cmat_to_components : cmat -> float array

val gamma_mat : int -> cmat
(** gamma_mu for mu in 0..3; raises otherwise. *)

val gamma5_mat : unit -> cmat
(** gamma0 gamma1 gamma2 gamma3 = diag(1,1,-1,-1) in this basis. *)

val sigma_mat : int -> int -> cmat
(** sigma_munu = (i/2)[gamma_mu, gamma_nu] — block diagonal in chirality,
    the property the packed clover storage relies on. *)

val spin_matrix_const : ?prec:Layout.Shape.precision -> cmat -> Qdp.Expr.t
val gamma : ?prec:Layout.Shape.precision -> int -> Qdp.Expr.t
val gamma5 : ?prec:Layout.Shape.precision -> unit -> Qdp.Expr.t
val one : ?prec:Layout.Shape.precision -> unit -> Qdp.Expr.t

val proj_minus : ?prec:Layout.Shape.precision -> int -> Qdp.Expr.t
(** (1 - gamma_mu), the forward Wilson projector. *)

val proj_plus : ?prec:Layout.Shape.precision -> int -> Qdp.Expr.t

val matrices : unit -> cmat array
(** The four gamma matrices, for tests (Clifford algebra checks). *)
