(** Dirac gamma matrices (DeGrand–Rossi basis) as expression constants.

    A gamma matrix is a [LatticeSpinMatrix]-shaped constant; multiplying a
    fermion expression by it goes through the ordinary spin-matrix x
    spin-vector contraction.  Because the code-generating scalar folds
    constant zeros and (+-)1/(+-i) factors, the dense 4x4 multiplication
    compiles down to the usual sparse gamma application — no flops are
    wasted on structural zeros. *)

module Shape = Layout.Shape
module Expr = Qdp.Expr

type cmat = (float * float) array array
(** 4x4 complex entries (re, im). *)

let zero4 () : cmat = Array.init 4 (fun _ -> Array.make 4 (0.0, 0.0))

let cmat_to_components (m : cmat) =
  (* Canonical component order of a Spin_matrix 4 (x) Color_scalar (x) Cplx
     element: spin index s = 4*row + col, then re/im. *)
  let out = Array.make 32 0.0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      let re, im = m.(i).(j) in
      out.(2 * ((4 * i) + j)) <- re;
      out.((2 * ((4 * i) + j)) + 1) <- im
    done
  done;
  out

let cmat_mul (a : cmat) (b : cmat) : cmat =
  Array.init 4 (fun i ->
      Array.init 4 (fun j ->
          let re = ref 0.0 and im = ref 0.0 in
          for k = 0 to 3 do
            let ar, ai = a.(i).(k) and br, bi = b.(k).(j) in
            re := !re +. ((ar *. br) -. (ai *. bi));
            im := !im +. ((ar *. bi) +. (ai *. br))
          done;
          (!re, !im)))

let cmat_add (a : cmat) (b : cmat) : cmat =
  Array.init 4 (fun i ->
      Array.init 4 (fun j ->
          let ar, ai = a.(i).(j) and br, bi = b.(i).(j) in
          (ar +. br, ai +. bi)))

let cmat_scale s (a : cmat) : cmat =
  Array.map (Array.map (fun (re, im) -> (s *. re, s *. im))) a

let identity4 () : cmat =
  let m = zero4 () in
  for i = 0 to 3 do
    m.(i).(i) <- (1.0, 0.0)
  done;
  m

(* DeGrand-Rossi basis. *)
let gamma_mat mu : cmat =
  let m = zero4 () in
  let i = (0.0, 1.0) and mi = (0.0, -1.0) in
  let one = (1.0, 0.0) and mone = (-1.0, 0.0) in
  (match mu with
  | 0 ->
      m.(0).(3) <- i;
      m.(1).(2) <- i;
      m.(2).(1) <- mi;
      m.(3).(0) <- mi
  | 1 ->
      m.(0).(3) <- mone;
      m.(1).(2) <- one;
      m.(2).(1) <- one;
      m.(3).(0) <- mone
  | 2 ->
      m.(0).(2) <- i;
      m.(1).(3) <- mi;
      m.(2).(0) <- mi;
      m.(3).(1) <- i
  | 3 ->
      m.(0).(2) <- one;
      m.(1).(3) <- one;
      m.(2).(0) <- one;
      m.(3).(1) <- one
  | _ -> invalid_arg "Gamma.gamma_mat: mu must be 0..3");
  m

let gamma5_mat () : cmat =
  (* gamma5 = gamma0 gamma1 gamma2 gamma3 in this basis: diag(1,1,-1,-1). *)
  cmat_mul (cmat_mul (gamma_mat 0) (gamma_mat 1)) (cmat_mul (gamma_mat 2) (gamma_mat 3))

(* sigma_{mu nu} = (i/2) [gamma_mu, gamma_nu]. *)
let sigma_mat mu nu : cmat =
  let gm = gamma_mat mu and gn = gamma_mat nu in
  let comm = cmat_add (cmat_mul gm gn) (cmat_scale (-1.0) (cmat_mul gn gm)) in
  (* multiply by i/2 *)
  Array.map (Array.map (fun (re, im) -> (-0.5 *. im, 0.5 *. re))) comm

let spin_matrix_const ?(prec = Shape.F64) m =
  Expr.const (Shape.lattice_spin_matrix prec) (cmat_to_components m)

let gamma ?prec mu = spin_matrix_const ?prec (gamma_mat mu)
let gamma5 ?prec () = spin_matrix_const ?prec (gamma5_mat ())
let one ?prec () = spin_matrix_const ?prec (identity4 ())

(* Wilson projectors: (1 - gamma_mu) forward, (1 + gamma_mu) backward. *)
let proj_minus ?prec mu =
  spin_matrix_const ?prec (cmat_add (identity4 ()) (cmat_scale (-1.0) (gamma_mat mu)))

let proj_plus ?prec mu = spin_matrix_const ?prec (cmat_add (identity4 ()) (gamma_mat mu))

(* Raw matrices, exposed for tests (Clifford algebra checks) and the clover
   packer. *)
let matrices () = Array.init 4 gamma_mat
