(** The clover term (the paper's Sec. VI-A): packing into the Table I
    (lower part) types and application.

    A(x) = c_id + (c_sw/4) sum_{mu<>nu} sigma_munu F_munu(x) is Hermitian
    and block-diagonal in the two chiralities of the DeGrand–Rossi basis;
    each 6x6 block is stored as 6 real diagonal entries plus 15 complex
    lower-triangular entries.  Application happens through the custom
    [Expr.Clover] node — the user-defined operation mixing spin and color
    index spaces that plain QDP++ cannot express but the code generator
    supports. *)

type t = {
  diag : Qdp.Field.t;  (** Sb2.Cd6.R: 2 blocks x 6 real diagonal entries *)
  tri : Qdp.Field.t;  (** Sb2.Ct15.C: 2 blocks x 15 complex lower-triangular *)
  csw : float;
  c_id : float;
}

val tri_index : int -> int -> int
(** k(i,j) = i(i-1)/2 + j for the strictly-lower triangle, i > j. *)

val pack :
  ?prec:Layout.Shape.precision ->
  eval:(Qdp.Field.t -> Qdp.Expr.t -> unit) ->
  csw:float ->
  c_id:float ->
  Gauge.links ->
  t
(** Compute the six field-strength components with [eval] (CPU or JIT) and
    assemble the packed Hermitian blocks host-side, as Chroma does. *)

val apply_expr : t -> Qdp.Field.t -> Qdp.Expr.t
(** A psi through the packed custom operation (Table II's "clover"). *)

val apply_dense_expr :
  ?prec:Layout.Shape.precision ->
  eval:(Qdp.Field.t -> Qdp.Expr.t -> unit) ->
  csw:float ->
  c_id:float ->
  Gauge.links ->
  Qdp.Field.t ->
  Qdp.Expr.t
(** Independent dense sigma.F construction, for validating the packed
    form. *)
