(** Gauge observables beyond the plaquette: Wilson loops, the Polyakov
    loop, and per-timeslice projections (the building blocks of the
    post-Monte-Carlo analysis part the paper's introduction contrasts with
    gauge generation).  Everything is built from shift expressions, so the
    same code runs on the CPU reference and through the JIT engine. *)

val line_expr : Gauge.links -> mu:int -> len:int -> Qdp.Expr.t
(** Product of [len] links along [mu] starting at each site (nested
    shift-of-shift chains). *)

val wilson_loop :
  sum_real:(Qdp.Expr.t -> float) -> Gauge.links -> mu:int -> nu:int -> r:int -> t:int -> float
(** Volume-averaged Re tr of the r x t rectangle over Nc; W(1,1) is the
    plaquette. *)

val polyakov_loop : sum_components:(Qdp.Expr.t -> float array) -> Gauge.links -> float * float
(** Space-averaged traced temporal line (complex); rotates by a center
    element under center transformations. *)

val timeslice_subset : Layout.Geometry.t -> t:int -> Qdp.Subset.t
(** The sites of timeslice [t] (last dimension). *)

val pion_correlator :
  norm2_subset:(Qdp.Subset.t -> Qdp.Expr.t -> float) -> Qdp.Field.t array -> float array
(** C(t) = sum over the timeslice of |S(x)|^2, summed over the propagator
    columns (gamma5-hermiticity turns the pseudoscalar contraction into a
    norm). *)

val point_source :
  ?prec:Layout.Shape.precision -> Layout.Geometry.t -> spin:int -> color:int -> Qdp.Field.t
(** Delta at the origin in one (spin, color) component. *)
