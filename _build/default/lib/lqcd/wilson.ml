(** Wilson fermion operators as data-parallel expressions.

    The hopping term is the operator of Sec. VIII-C:

      H(x,x') = sum_mu (1-gamma_mu) U_mu(x) delta_{x+mu,x'}
                     + (1+gamma_mu) U_mu(x-mu)^dag delta_{x-mu,x'}

    written directly against the high-level interface — each application is
    one generated kernel with eight shifts, exactly the paper's "generated
    from its high-level representation" implementation. *)

module Expr = Qdp.Expr
module Field = Qdp.Field

(* Per-direction hopping coefficients; anisotropic actions weight the
   temporal direction differently. *)
let default_coeffs nd = Array.make nd 1.0

(* The hopping term over arbitrary link *expressions*, so that gauge
   compression (or smearing, etc.) composes: pass reconstruct(packed) and
   the reconstruction happens inside the generated kernel. *)
let hopping_expr_of ?(coeffs = [||]) (u_exprs : Expr.t array) (psi : Field.t) =
  let nd = Array.length u_exprs in
  let coeffs = if Array.length coeffs = 0 then default_coeffs nd else coeffs in
  if Array.length coeffs <> nd then invalid_arg "Wilson.hopping_expr: coefficient count";
  let prec = psi.Field.shape.Layout.Shape.prec in
  let f = Expr.field in
  let term mu =
    let fwd =
      Expr.mul (Gamma.proj_minus ~prec mu)
        (Expr.mul u_exprs.(mu) (Expr.shift (f psi) ~dim:mu ~dir:1))
    in
    let bwd =
      Expr.mul (Gamma.proj_plus ~prec mu)
        (Expr.shift (Expr.mul (Expr.adj u_exprs.(mu)) (f psi)) ~dim:mu ~dir:(-1))
    in
    let s = Expr.add fwd bwd in
    if coeffs.(mu) = 1.0 then s else Expr.mul (Expr.const_real ~prec coeffs.(mu)) s
  in
  let rec sum mu = if mu = nd - 1 then term mu else Expr.add (term mu) (sum (mu + 1)) in
  sum 0

let hopping_expr ?coeffs (u : Gauge.links) (psi : Field.t) =
  hopping_expr_of ?coeffs (Array.map Expr.field u) psi

(* Dslash reading 12-real compressed links, reconstructing the third row
   in-registers: trades flops for the bandwidth the paper's Sec. VIII-C
   attributes part of QUDA's headroom to. *)
let hopping_expr_compressed ?coeffs (packed : Field.t array) (psi : Field.t) =
  hopping_expr_of ?coeffs
    (Array.map (fun p -> Expr.reconstruct (Expr.field p)) packed)
    psi

(* Wilson operator in the kappa convention: M psi = psi - kappa D psi. *)
let wilson_expr ?coeffs ~kappa (u : Gauge.links) (psi : Field.t) =
  let prec = psi.Field.shape.Layout.Shape.prec in
  Expr.sub (Expr.field psi)
    (Expr.mul (Expr.const_real ~prec kappa) (hopping_expr ?coeffs u psi))

(* Wilson-clover: M psi = psi - kappa D psi + A psi with the packed clover
   term (A carries its own overall coefficient; see {!Clover.pack}). *)
let wilson_clover_expr ?coeffs ~kappa ~(clover_diag : Field.t) ~(clover_tri : Field.t)
    (u : Gauge.links) (psi : Field.t) =
  Expr.add
    (wilson_expr ?coeffs ~kappa u psi)
    (Expr.clover ~diag:(Expr.field clover_diag) ~tri:(Expr.field clover_tri) (Expr.field psi))

(* gamma5 M gamma5 = M^dag for Wilson: used to apply the adjoint operator
   with the same kernels. *)
let gamma5_expr ?prec psi_expr = Expr.mul (Gamma.gamma5 ?prec ()) psi_expr

let kappa_of_mass ?(nd = 4) mass = 1.0 /. (2.0 *. (float_of_int nd +. mass))
let mass_of_kappa ?(nd = 4) kappa = (1.0 /. (2.0 *. kappa)) -. float_of_int nd

(* Nominal flop count per site of one hopping-term application, the
   standard figure used to quote Dslash GFLOPS (1320 for Wilson). *)
let dslash_flops_per_site = 1320
