(** Strong-scaling trajectory-time model for the three software
    configurations of Fig. 7 (and the Blue Waters / Titan comparison of
    Fig. 8).

    Structure: a trajectory moves [W_solver] bytes of solver traffic and
    [W_qdp] bytes of everything-else traffic (both proportional to the
    global volume; iteration counts come from running this repository's
    RHMC).  Each part runs at the engine bandwidth of where it executes —
    CPU socket, or GPU with a local-volume-dependent efficiency
    [V_l / (V_l + C)] capturing the strong-scaling losses (halo packing,
    synchronisation, sub-shoulder kernel volumes of Figs. 4/5) — plus
    explicit PCIe transfer and layout-change terms for the "CPU+QUDA"
    configuration, which pays them on every solver call (Sec. VIII-D).
    The half-volume constants are calibrated against the paper's anchor
    measurements; EXPERIMENTS.md records the calibration. *)

type config = Cpu_only | Cpu_quda | Qdpjit_quda

let config_name = function
  | Cpu_only -> "CPU only (XE)"
  | Cpu_quda -> "CPU+QUDA"
  | Qdpjit_quda -> "QDP-JIT+QUDA"

(* Calibration constants (see EXPERIMENTS.md). *)
type constants = {
  cpu_solver_bw : float;  (** hand-optimised CPU solver, bytes/s/socket *)
  cpu_qdp_bw : float;  (** QDP++ CPU expression evaluation, bytes/s/socket *)
  gpu_bw : float;  (** sustained device bandwidth (79 % of peak) *)
  solver_half_volume : float;  (** sites at which GPU solver efficiency is 1/2 *)
  qdp_half_volume : float;  (** same for the generated expression kernels *)
  cpu_half_volume : float;  (** CPU strong-scaling saturation *)
  transfer_bytes_per_site : float;  (** CPU+QUDA per-solve field traffic *)
  layout_change_bw : float;  (** CPU-side reorder rate, bytes/s *)
}

(* Calibrated against the paper's anchor measurements (see EXPERIMENTS.md):
   trajectory time 16100 s on 128 XE sockets CPU-only, speedups 2.2x
   (CPU+QUDA) and 11.0x (QDP-JIT+QUDA) at 128, 3.7x at 800, and the
   258-vs-52 node-hour cost at the most efficient machine size. *)
let default_constants =
  {
    cpu_solver_bw = 13.6e9;
    cpu_qdp_bw = 4.0e9;
    gpu_bw = 0.79 *. 250.0e9;
    solver_half_volume = 2_000.0;
    qdp_half_volume = 685_000.0;
    cpu_half_volume = 5_000.0;
    transfer_bytes_per_site = 1700.0;
    layout_change_bw = 5.0e9;
  }

(* Per-site traffic of one trajectory, split solver / non-solver. *)
type traffic = {
  solver_bytes_per_site : float;
  qdp_bytes_per_site : float;
  solves : int;
}

let traffic_of_workload (w : Workload.t) =
  {
    solver_bytes_per_site =
      float_of_int w.Workload.solver_iterations
      *. ((2.0 *. w.Workload.dslash_bytes_per_site) +. w.Workload.solver_linalg_bytes_per_site);
    qdp_bytes_per_site =
      float_of_int w.Workload.md_force_evals *. w.Workload.qdp_bytes_per_site_per_force;
    solves = w.Workload.solves;
  }

let vl_efficiency ~half v_local = v_local /. (v_local +. half)

(* Trajectory time in seconds on [nodes] XK nodes / XE sockets. *)
let trajectory_time ?(constants = default_constants) ~(machine : Nodes.machine) ~config
    (w : Workload.t) ~nodes =
  if nodes <= 0 then invalid_arg "Scaling.trajectory_time: nodes must be positive";
  let c = constants in
  let tr = traffic_of_workload w in
  let v_local = float_of_int w.Workload.volume /. float_of_int nodes in
  let solver_bytes_local = tr.solver_bytes_per_site *. v_local in
  let qdp_bytes_local = tr.qdp_bytes_per_site *. v_local in
  let gpu_solver_time =
    solver_bytes_local /. (c.gpu_bw *. vl_efficiency ~half:c.solver_half_volume v_local)
  in
  let gpu_qdp_time =
    qdp_bytes_local /. (c.gpu_bw *. vl_efficiency ~half:c.qdp_half_volume v_local)
  in
  let cpu_eff = vl_efficiency ~half:c.cpu_half_volume v_local in
  let cpu_solver_time = solver_bytes_local /. (c.cpu_solver_bw *. cpu_eff) in
  let cpu_qdp_time = qdp_bytes_local /. (c.cpu_qdp_bw *. cpu_eff) in
  (* CPU+QUDA: every solver call round-trips the fields over PCIe and
     re-orders the layout on the CPU (Sec. VIII-D: "repeated copying of
     data fields between the CPU and the GPU and changing data layouts"). *)
  let transfer_time =
    float_of_int tr.solves
    *. v_local *. c.transfer_bytes_per_site
    *. ((1.0 /. Gpusim.Machine.k20x_ecc_off.Gpusim.Machine.pcie_bw) +. (2.0 /. c.layout_change_bw))
  in
  let base =
    match config with
    | Cpu_only -> cpu_solver_time +. cpu_qdp_time
    | Cpu_quda -> gpu_solver_time +. transfer_time +. cpu_qdp_time
    | Qdpjit_quda -> gpu_solver_time +. gpu_qdp_time
  in
  base *. machine.Nodes.jitter

let node_hours ~machine ~config w ~nodes =
  trajectory_time ~machine ~config w ~nodes *. float_of_int nodes /. 3600.0

(* The headline factors of Sec. VIII-D, derived from the model. *)
let speedup ~machine w ~config ~nodes =
  trajectory_time ~machine ~config:Cpu_only w ~nodes
  /. trajectory_time ~machine ~config w ~nodes
