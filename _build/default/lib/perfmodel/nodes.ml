(** Node and machine descriptions for the Fig. 7/8 strong-scaling model.

    Blue Waters XE nodes carry two AMD 6276 (Interlagos) sockets; XK nodes
    one Interlagos plus one K20X.  Titan's XK7 nodes are the same
    XK configuration on the same Gemini interconnect, which is why the
    paper's Fig. 8 curves coincide.  CPU rates are sustained streaming
    numbers (lattice QCD CPU kernels are bandwidth bound, like the GPU
    ones). *)

type cpu_socket = {
  cpu_name : string;
  sustained_bw : float;  (** bytes/s, streaming *)
  flops : float;  (** DP flop/s sustained *)
}

(* AMD Opteron 6276: 8 Bulldozer modules, DDR3-1600, ~16 GB/s sustained
   stream per socket, ~70 GFlops DP sustained. *)
let interlagos = { cpu_name = "AMD-6276"; sustained_bw = 16.0e9; flops = 70.0e9 }

type node = {
  node_name : string;
  sockets : int;
  socket : cpu_socket;
  gpu : Gpusim.Machine.t option;
}

let xe_node = { node_name = "XE"; sockets = 2; socket = interlagos; gpu = None }

let xk_node =
  { node_name = "XK"; sockets = 1; socket = interlagos; gpu = Some Gpusim.Machine.k20x_ecc_off }

type machine = {
  machine_name : string;
  node : node;
  network : Comms.Network.t;
  jitter : float;  (** run-to-run fluctuation factor for reporting *)
}

let blue_waters_xk = { machine_name = "Blue Waters"; node = xk_node; network = Comms.Network.cray_gemini; jitter = 1.0 }
let blue_waters_xe = { machine_name = "Blue Waters XE"; node = xe_node; network = Comms.Network.cray_gemini; jitter = 1.0 }

(* Titan: same XK7 + Gemini; benchmark timings on the two systems
   "are hardly distinguishable" (Sec. VIII-D). *)
let titan = { machine_name = "Titan"; node = xk_node; network = Comms.Network.cray_gemini; jitter = 1.03 }
