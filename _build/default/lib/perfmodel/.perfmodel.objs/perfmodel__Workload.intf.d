lib/perfmodel/workload.mli:
