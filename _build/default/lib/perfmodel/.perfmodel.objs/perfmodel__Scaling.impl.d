lib/perfmodel/scaling.ml: Gpusim Nodes Workload
