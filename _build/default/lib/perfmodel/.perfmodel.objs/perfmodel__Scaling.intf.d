lib/perfmodel/scaling.mli: Nodes Workload
