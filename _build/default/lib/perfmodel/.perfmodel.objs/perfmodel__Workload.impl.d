lib/perfmodel/workload.ml:
