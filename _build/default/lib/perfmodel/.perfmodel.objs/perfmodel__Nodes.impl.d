lib/perfmodel/nodes.ml: Comms Gpusim
