(** Strong-scaling trajectory-time model for the three software
    configurations of the paper's Fig. 7 (and the Blue Waters / Titan
    comparison of Fig. 8).

    A trajectory moves solver traffic and "everything else" traffic (both
    proportional to the global volume; the iteration structure comes from
    running this repository's RHMC).  Each part runs at the bandwidth of
    where it executes — CPU socket, or GPU with a local-volume-dependent
    efficiency capturing strong-scaling losses — plus explicit PCIe
    transfer and layout-change terms for "CPU+QUDA", which pays them on
    every solver call (Sec. VIII-D).  Constants are calibrated against the
    paper's anchor measurements; EXPERIMENTS.md records the calibration
    and the residual deviations. *)

type config = Cpu_only | Cpu_quda | Qdpjit_quda

val config_name : config -> string

type constants = {
  cpu_solver_bw : float;  (** hand-optimised CPU solver, bytes/s/socket *)
  cpu_qdp_bw : float;  (** QDP++ CPU expression evaluation, bytes/s/socket *)
  gpu_bw : float;  (** sustained device bandwidth (79 % of peak) *)
  solver_half_volume : float;  (** sites at which GPU solver efficiency is 1/2 *)
  qdp_half_volume : float;  (** same for the generated expression kernels *)
  cpu_half_volume : float;  (** CPU strong-scaling saturation *)
  transfer_bytes_per_site : float;  (** CPU+QUDA per-solve field traffic *)
  layout_change_bw : float;  (** CPU-side reorder rate, bytes/s *)
}

val default_constants : constants

val trajectory_time :
  ?constants:constants -> machine:Nodes.machine -> config:config -> Workload.t -> nodes:int -> float
(** Seconds per trajectory on [nodes] XK nodes / XE sockets. *)

val node_hours : machine:Nodes.machine -> config:config -> Workload.t -> nodes:int -> float

val speedup : machine:Nodes.machine -> Workload.t -> config:config -> nodes:int -> float
(** Relative to CPU-only at the same node count (the Sec. VIII-D
    factors). *)
