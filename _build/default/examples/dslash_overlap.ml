(* Communication/computation overlap on the Wilson Dslash (Sec. V, Fig. 6).

   Distributes a lattice over two simulated ranks (one K20m each, QDR
   InfiniBand with CUDA-aware MPI, the paper's Fig. 6 testbed), applies the
   hopping term of the Wilson Dirac operator with overlap enabled and
   disabled, verifies the results are identical, and prints the modeled
   GFLOPS of both modes.

   Run: dune exec examples/dslash_overlap.exe *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Multi = Qdpjit.Multi

let () =
  Printf.printf "Wilson Dslash with communication overlap (2 ranks)\n";
  Printf.printf "==================================================\n\n";
  let l = 16 in
  let global_dims = [| l; l; l; l |] in
  let geom = Geometry.create global_dims in
  Printf.printf "global lattice %d^4, split along t over 2 ranks\n\n" l;

  (* Reference on a single global lattice. *)
  let rng = Prng.create ~seed:7L in
  let u = Lqcd.Gauge.create_links geom in
  Lqcd.Gauge.random_gauge ~epsilon:0.4 u rng;
  let psi = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian psi rng;
  let reference = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Qdp.Eval_cpu.eval reference (Lqcd.Wilson.hopping_expr u psi);

  let run overlap =
    let m =
      Multi.create ~machine:Gpusim.Machine.k20m_ecc_on ~network:Comms.Network.infiniband_qdr
        ~global_dims ~rank_dims:[| 1; 1; 1; 2 |] ()
    in
    Multi.set_overlap m overlap;
    let du =
      Array.map
        (fun uf ->
          let df = Multi.create_field m (Shape.lattice_color_matrix Shape.F64) in
          Multi.scatter m ~global:uf df;
          df)
        u
    in
    let dpsi = Multi.create_field m (Shape.lattice_fermion Shape.F64) in
    Multi.scatter m ~global:psi dpsi;
    let dout = Multi.create_field m (Shape.lattice_fermion Shape.F64) in
    let mk rank =
      Lqcd.Wilson.hopping_expr
        (Array.map (fun (df : Multi.dfield) -> df.Multi.locals.(rank)) du)
        dpsi.Multi.locals.(rank)
    in
    (* Warm up (kernel compilation + block-size auto-tuning)... *)
    for _ = 1 to 6 do
      ignore (Multi.eval m dout mk)
    done;
    (* ... then measure one application on clean clocks. *)
    Multi.reset_clocks m;
    let timing = Multi.eval m dout mk in
    let got = Field.create (Shape.lattice_fermion Shape.F64) geom in
    Multi.gather m dout ~global:got;
    let diff = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field got) (Expr.field reference)) in
    (timing.Multi.total_ns, diff, Multi.fabric_stats m)
  in

  let t_on, d_on, stats = run true in
  let t_off, d_off, _ = run false in
  let v = Geometry.volume geom in
  let gflops ns = float_of_int (Lqcd.Wilson.dslash_flops_per_site * v) /. ns in
  Printf.printf "overlap ON : %8.1f us   %7.1f GFLOPS   |err|^2 = %g\n" (t_on /. 1e3) (gflops t_on)
    d_on;
  Printf.printf "overlap OFF: %8.1f us   %7.1f GFLOPS   |err|^2 = %g\n" (t_off /. 1e3)
    (gflops t_off) d_off;
  Printf.printf "gain       : %.1f %%  (paper: ~11%% SP / ~7%% DP at the largest volume)\n\n"
    ((t_off -. t_on) /. t_off *. 100.0);
  Printf.printf "fabric traffic during the warm-up + measurements: %d messages, %d bytes\n"
    stats.Comms.Fabric.messages stats.Comms.Fabric.bytes;
  Printf.printf "\nBoth modes are bit-identical to the single-rank CPU reference.\n"
