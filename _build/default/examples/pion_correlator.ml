(* The post-Monte-Carlo analysis part (Sec. I): a pseudoscalar (pion)
   two-point function on a stored gauge configuration.

   The paper contrasts gauge generation (Figs. 7/8) with the analysis
   phase, where QUDA-style accelerated solvers shine because the work is
   dominated by propagator solves.  This example does exactly that
   workflow on the simulated device:

     1. generate and checkpoint a small gauge configuration,
     2. reload it (plaquette-checked),
     3. solve the even-odd preconditioned Wilson operator for all 12
        spin-color point-source components,
     4. contract into C(t) = sum_x |S(x,t)|^2 per timeslice and print the
        effective mass.

   Run: dune exec examples/pion_correlator.exe *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr

let () =
  Printf.printf "Pion correlator on a 4^3 x 8 configuration\n";
  Printf.printf "==========================================\n\n";
  let geom = Geometry.create [| 4; 4; 4; 8 |] in
  let rng = Prng.create ~seed:12L in
  let u = Lqcd.Gauge.create_links geom in
  Lqcd.Gauge.random_gauge ~epsilon:0.25 u rng;

  (* Checkpoint and reload (plaquette-checked header). *)
  let path = Filename.temp_file "pion_demo" ".gauge" in
  Lqcd.Gauge_io.write ~path u;
  let u = Lqcd.Gauge_io.read ~path in
  Sys.remove path;
  Printf.printf "configuration checkpoint round-trip OK (plaquette %.6f)\n\n"
    (Lqcd.Gauge.mean_plaquette ~sum_real:(fun e -> (Qdp.Eval_cpu.sum_components e).(0)) u);

  let engine = Qdpjit.Engine.create () in
  let ops = Solvers.Ops.jit engine (Shape.lattice_fermion Shape.F64) geom in
  let kappa = 0.105 in

  (* Propagator: 12 even-odd preconditioned solves. *)
  Printf.printf "solving 12 point-source components (even-odd preconditioned CG, kappa=%.3f)\n"
    kappa;
  let t0 = Unix.gettimeofday () in
  let total_iters = ref 0 in
  let columns =
    Array.init 12 (fun k ->
        let spin = k / 3 and color = k mod 3 in
        let src = Lqcd.Observables.point_source geom ~spin ~color in
        let x = Field.create (Shape.lattice_fermion Shape.F64) geom in
        let r = Solvers.Eo_wilson.solve ops ~kappa u ~b:src ~x ~tol:1e-8 () in
        total_iters := !total_iters + r.Solvers.Eo_wilson.iterations;
        Printf.printf "  (s=%d,c=%d): %3d iterations, residual %.1e\n%!" spin color
          r.Solvers.Eo_wilson.iterations r.Solvers.Eo_wilson.residual;
        x)
  in
  Printf.printf "total %d Krylov iterations in %.1f s\n\n" !total_iters
    (Unix.gettimeofday () -. t0);

  (* Contract: C(t) = sum_{x in timeslice t} |S(x)|^2 (gamma5-hermiticity
     turns the pion contraction into a plain norm). *)
  let norm2_subset subset e = Qdpjit.Engine.norm2 ~subset engine e in
  let c = Lqcd.Observables.pion_correlator ~norm2_subset columns in
  Printf.printf "t    C(t)            m_eff(t)\n";
  Array.iteri
    (fun t ct ->
      let meff =
        if t + 1 < Array.length c && ct > 0.0 && c.(t + 1) > 0.0 then
          Printf.sprintf "%8.4f" (log (ct /. c.(t + 1)))
        else "      --"
      in
      Printf.printf "%-4d %.6e  %s\n" t ct meff)
    c;
  Printf.printf
    "\n(C(t) falls from the source and is symmetric around the midpoint: the\n\
    \ periodic pseudoscalar correlator cosh shape.)\n"
