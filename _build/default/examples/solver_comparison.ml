(* Solver gallery: CG on the normal equations, BiCGStab and restarted GCR
   on the Wilson operator, multi-shift CG for a whole family of shifted
   systems, and the QUDA-style mixed-precision defect-correction solver
   (single-precision inner CG, double-precision outer residual).

   All solvers run unchanged over either backend; here they run through
   the JIT engine on the simulated device, and the engine statistics at
   the end show the kernel-cache and memory-cache behaviour behind a
   typical solve.

   Run: dune exec examples/solver_comparison.exe *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr

let () =
  Printf.printf "Krylov solvers on the Wilson operator (4^4, kappa = 0.115)\n";
  Printf.printf "===========================================================\n\n";
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let rng = Prng.create ~seed:3L in
  let u = Lqcd.Gauge.create_links geom in
  Lqcd.Gauge.random_gauge ~epsilon:0.3 u rng;
  let kappa = 0.115 in
  let shape = Shape.lattice_fermion Shape.F64 in
  let engine = Qdpjit.Engine.create () in
  let ops = Solvers.Ops.jit engine shape geom in
  let apply_m src = Lqcd.Wilson.wilson_expr ~kappa u src in
  let nop = Solvers.Ops.normal_op ops ~apply_m in
  let mop =
    { Solvers.Ops.apply = (fun dest src -> Qdpjit.Engine.eval engine dest (apply_m src)); tag = "M" }
  in
  let b = Field.create shape geom in
  Field.fill_gaussian b rng;

  let residual op x =
    let tmp = Field.create shape geom in
    op.Solvers.Ops.apply tmp x;
    sqrt
      (Qdpjit.Engine.norm2 engine (Expr.sub (Expr.field tmp) (Expr.field b))
      /. Qdpjit.Engine.norm2 engine (Expr.field b))
  in

  let x = Field.create shape geom in
  let r = Solvers.Cg.solve ops nop ~b ~x ~tol:1e-10 () in
  Printf.printf "CG (MdagM)     : %4d iterations, true residual %.2e\n" r.Solvers.Cg.iterations
    (residual nop x);

  let x2 = Field.create shape geom in
  let r2 = Solvers.Bicgstab.solve ops mop ~b ~x:x2 ~tol:1e-10 () in
  Printf.printf "BiCGStab (M)   : %4d iterations, true residual %.2e\n"
    r2.Solvers.Bicgstab.iterations (residual mop x2);

  let x3 = Field.create shape geom in
  let r3 = Solvers.Gcr.solve ops mop ~b ~x:x3 ~tol:1e-10 ~restart:16 () in
  Printf.printf "GCR(16) (M)    : %4d iterations, true residual %.2e\n" r3.Solvers.Gcr.iterations
    (residual mop x3);

  (* Multi-shift CG: the RHMC workhorse — one Krylov space for all the
     partial-fraction poles of the rational approximation. *)
  let zolo = Numerics.Zolotarev.inv_sqrt ~degree:6 ~lo:0.1 ~hi:8.0 in
  let shifts = Array.map snd zolo.Numerics.Ratfun.terms in
  let xs = Array.init (Array.length shifts) (fun _ -> Field.create shape geom) in
  let rms = Solvers.Multishift_cg.solve ops nop ~b ~shifts ~xs ~tol:1e-10 () in
  Printf.printf "MultishiftCG   : %4d iterations for %d shifts (Zolotarev x^-1/2 poles)\n"
    rms.Solvers.Multishift_cg.iterations (Array.length shifts);
  Printf.printf "                 worst per-shift residual %.2e\n"
    (Array.fold_left max 0.0 rms.Solvers.Multishift_cg.residuals);

  (* Mixed precision (Ref. 2): SP inner solves, DP outer corrections. *)
  let u32 = Array.map (fun _ -> Field.create (Shape.lattice_color_matrix Shape.F32) geom) u in
  Array.iteri (fun mu d -> Qdpjit.Engine.eval engine d (Expr.field u.(mu))) u32;
  let ops32 = Solvers.Ops.jit engine (Shape.lattice_fermion Shape.F32) geom in
  let nop32 = Solvers.Ops.normal_op ops32 ~apply_m:(fun src -> Lqcd.Wilson.wilson_expr ~kappa u32 src) in
  let x4 = Field.create shape geom in
  let r4 = Solvers.Mixed.solve ops nop ops32 nop32 ~b ~x:x4 ~tol:1e-9 () in
  Printf.printf "Mixed SP/DP    : %4d outer, %d inner (f32) iterations, true residual %.2e\n\n"
    r4.Solvers.Mixed.outer_iterations r4.Solvers.Mixed.inner_iterations (residual nop x4);

  (* What all of that cost on the simulated device. *)
  let st = Gpusim.Device.stats (Qdpjit.Engine.device engine) in
  let mc = Memcache.stats (Qdpjit.Engine.memcache engine) in
  Printf.printf "engine: %d kernels compiled (modeled JIT %.1f s), %d launches, %.1f ms device time\n"
    (Qdpjit.Engine.kernels_built engine) (Qdpjit.Engine.jit_seconds engine)
    st.Gpusim.Device.launches
    (st.Gpusim.Device.kernel_ns /. 1e6);
  Printf.printf "cache : %d uploads, %d hits, %d pageouts, %d spills\n" mc.Memcache.uploads
    mc.Memcache.hits mc.Memcache.pageouts mc.Memcache.spills
