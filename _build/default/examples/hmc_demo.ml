(* Gauge-field generation: the full 2+1 flavor RHMC program (the workload
   of Figs. 7/8) on a small lattice.

   The Hamiltonian has three monomials, mirroring the production setup:
     - anisotropic Wilson gauge action,
     - two light Wilson flavors with Hasenbusch mass preconditioning
       (Ref. 13 of the paper),
     - one strange-like flavor via the rational approximation (Ref. 14):
       Zolotarev x^(-1/2) for action/force, quadrature x^(+1/4) heatbath,
       both applied through multi-shift CG.

   It runs a handful of Omelyan trajectories with Metropolis accept/reject
   and prints the ingredients of the Fig. 7 op trace (solver iterations and
   force evaluations per trajectory).

   Run:  dune exec examples/hmc_demo.exe            (CPU reference backend)
         dune exec examples/hmc_demo.exe -- jit     (simulated-GPU backend) *)

module Geometry = Layout.Geometry

let () =
  let use_jit = Array.length Sys.argv > 1 && Sys.argv.(1) = "jit" in
  let backend =
    if use_jit then Hmc.Context.jit_backend (Qdpjit.Engine.create ())
    else Hmc.Context.cpu_backend
  in
  Printf.printf "2+1 flavor RHMC on 2^4 (backend: %s)\n" backend.Hmc.Context.tag;
  Printf.printf "=====================================\n\n";
  let geom = Geometry.create [| 2; 2; 2; 2 |] in
  let ctx = Hmc.Context.create ~backend ~seed:42L geom in
  Lqcd.Gauge.random_gauge ~epsilon:0.25 ctx.Hmc.Context.u (Prng.create ~seed:17L);

  let gauge = Hmc.Gauge_monomial.create ctx ~beta:5.6 ~aniso:1.0 () in
  (* Light pair: Hasenbusch-split into a heavy preconditioner plus a ratio. *)
  let heavy = Hmc.Two_flavor.create ctx ~kappa:0.10 () in
  let ratio = Hmc.Two_flavor.create_ratio ctx ~kappa_light:0.115 ~kappa_heavy:0.10 () in
  (* Strange: one flavor by rational approximation. *)
  let approx = Hmc.Rhmc_monomial.make_approx ~degree:10 ~lo:0.05 ~hi:8.0 () in
  Printf.printf "rational approximations: x^-1/2 error %.1e (Zolotarev deg 10), x^+1/4 error %.1e\n"
    (Numerics.Ratfun.max_rel_error approx.Hmc.Rhmc_monomial.inv_sqrt ~exponent:(-0.5) ~lo:0.05
       ~hi:8.0 ~samples:400)
    (Numerics.Ratfun.max_rel_error approx.Hmc.Rhmc_monomial.fourth_root ~exponent:0.25 ~lo:0.05
       ~hi:8.0 ~samples:400);
  let lambda_max = Hmc.Rhmc_monomial.power_iteration_max ctx ~kappa:0.09 () in
  Printf.printf "estimated lambda_max(MdagM) = %.3f (approximation range [0.05, 8])\n\n" lambda_max;
  let strange = Hmc.Rhmc_monomial.create ctx ~kappa:0.09 ~approx () in

  let monomials = [ gauge; heavy; ratio; strange ] in
  let params = { Hmc.Driver.steps = 8; dt = 0.0625; scheme = Hmc.Integrator.Omelyan } in
  Printf.printf "trajectories: tau = %.3f, %d Omelyan steps of dt = %.4f\n\n"
    (float_of_int params.Hmc.Driver.steps *. params.Hmc.Driver.dt)
    params.Hmc.Driver.steps params.Hmc.Driver.dt;

  let n_traj = 4 in
  let accepted = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n_traj do
    let r = Hmc.Driver.run_trajectory ctx monomials params in
    if r.Hmc.Driver.accepted then incr accepted;
    Printf.printf "traj %d: dH = %+9.5f  %s  plaq = %.5f  solver iters = %d\n" i
      r.Hmc.Driver.delta_h
      (if r.Hmc.Driver.accepted then "ACCEPT" else "reject")
      r.Hmc.Driver.plaquette r.Hmc.Driver.solver_iterations
  done;
  Printf.printf "\nacceptance: %d/%d, wall time %.1f s\n" !accepted n_traj
    (Unix.gettimeofday () -. t0);
  Printf.printf "op trace for the Fig. 7 model: %d MD force evaluations, %d Krylov iterations\n"
    ctx.Hmc.Context.md_steps_taken ctx.Hmc.Context.solver_iterations;
  if use_jit then begin
    (* The numbers behind the paper's "~200 kernels, 10-30 s JIT" estimate. *)
    match backend.Hmc.Context.tag with
    | _ -> ()
  end
