examples/dslash_overlap.ml: Array Comms Gpusim Layout Lqcd Printf Prng Qdp Qdpjit
