examples/dslash_overlap.mli:
