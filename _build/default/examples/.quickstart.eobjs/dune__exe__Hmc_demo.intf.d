examples/hmc_demo.mli:
