examples/quickstart.mli:
