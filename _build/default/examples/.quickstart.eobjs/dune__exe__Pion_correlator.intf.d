examples/pion_correlator.mli:
