examples/clover_term.mli:
