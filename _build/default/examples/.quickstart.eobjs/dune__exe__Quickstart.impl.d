examples/quickstart.ml: Gpusim Layout Linalg List Memcache Printf Prng Ptx Qdp Qdpjit String
