examples/solver_comparison.ml: Array Gpusim Layout Lqcd Memcache Numerics Printf Prng Qdp Qdpjit Solvers
