examples/clover_term.ml: Layout Lqcd Printf Prng Ptx Qdp Qdpjit
