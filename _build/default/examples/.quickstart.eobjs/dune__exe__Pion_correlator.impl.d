examples/pion_correlator.ml: Array Filename Layout Lqcd Printf Prng Qdp Qdpjit Solvers Sys Unix
