examples/hmc_demo.ml: Array Hmc Layout Lqcd Numerics Printf Prng Qdpjit Sys Unix
