let check = Alcotest.check

let test_determinism () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    check (Alcotest.float 0.0) "same stream" (Prng.float01 a) (Prng.float01 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:43L in
  let xs = Array.init 16 (fun _ -> Prng.bits64 a) in
  let ys = Array.init 16 (fun _ -> Prng.bits64 b) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_float_range () =
  let g = Prng.create ~seed:1L in
  for _ = 1 to 10_000 do
    let x = Prng.float01 g in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float01 out of range: %g" x
  done

let test_uniform_moments () =
  let g = Prng.create ~seed:7L in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Prng.float01 g) in
  let mean = Numerics.Stats.mean xs in
  let var = Numerics.Stats.variance xs in
  check (Alcotest.float 0.01) "mean 1/2" 0.5 mean;
  check (Alcotest.float 0.01) "variance 1/12" (1.0 /. 12.0) var

let test_gaussian_moments () =
  let g = Prng.create ~seed:11L in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Prng.gaussian g) in
  let mean = Numerics.Stats.mean xs in
  let var = Numerics.Stats.variance xs in
  check (Alcotest.float 0.02) "mean 0" 0.0 mean;
  check (Alcotest.float 0.03) "variance 1" 1.0 var;
  (* third moment vanishes for a symmetric distribution *)
  let m3 = Array.fold_left (fun acc x -> acc +. (x *. x *. x)) 0.0 xs /. float_of_int n in
  check (Alcotest.float 0.05) "skewness 0" 0.0 m3

let test_gaussian_pair_independent_of_cache () =
  (* gaussian consumes the cached second variate; a fresh generator with the
     same seed must produce the same sequence through either API. *)
  let a = Prng.create ~seed:3L and b = Prng.create ~seed:3L in
  let x1 = Prng.gaussian a in
  let x2 = Prng.gaussian a in
  let y1, y2 = Prng.gaussian_pair b in
  check (Alcotest.float 0.0) "first" y1 x1;
  check (Alcotest.float 0.0) "second" y2 x2

let test_split_reproducible () =
  let g = Prng.create ~seed:5L in
  let a = Prng.split g ~index:17 in
  let b = Prng.split g ~index:17 in
  for _ = 1 to 50 do
    check (Alcotest.float 0.0) "same split stream" (Prng.float01 a) (Prng.float01 b)
  done

let test_split_decorrelated () =
  let g = Prng.create ~seed:5L in
  (* Adjacent split streams should have near-zero correlation. *)
  let n = 50_000 in
  let a = Prng.split g ~index:0 and b = Prng.split g ~index:1 in
  let xs = Array.init n (fun _ -> Prng.float01 a -. 0.5) in
  let ys = Array.init n (fun _ -> Prng.float01 b -. 0.5) in
  let corr = ref 0.0 in
  for i = 0 to n - 1 do
    corr := !corr +. (xs.(i) *. ys.(i))
  done;
  let corr = !corr /. float_of_int n /. (1.0 /. 12.0) in
  if abs_float corr > 0.02 then Alcotest.failf "split streams correlated: %g" corr

let test_split_does_not_disturb_parent () =
  let a = Prng.create ~seed:9L and b = Prng.create ~seed:9L in
  let _ = Prng.split a ~index:4 in
  check (Alcotest.float 0.0) "parent unchanged" (Prng.float01 b) (Prng.float01 a)

let test_jump_disjoint () =
  let a = Prng.create ~seed:13L in
  let b = Prng.copy a in
  Prng.jump b;
  let xs = Array.init 64 (fun _ -> Prng.bits64 a) in
  let ys = Array.init 64 (fun _ -> Prng.bits64 b) in
  Alcotest.(check bool) "jumped stream differs" true (xs <> ys)

let test_int_below () =
  let g = Prng.create ~seed:21L in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let k = Prng.int_below g 7 in
    if k < 0 || k >= 7 then Alcotest.failf "int_below out of range: %d" k;
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      if abs (c - 10_000) > 500 then Alcotest.failf "int_below biased: %d" c)
    counts;
  Alcotest.check_raises "rejects non-positive" (Invalid_argument "Prng.int_below: n must be positive")
    (fun () -> ignore (Prng.int_below g 0))

let () =
  Alcotest.run "prng"
    [
      ( "stream",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "float01 range" `Quick test_float_range;
          Alcotest.test_case "uniform moments" `Quick test_uniform_moments;
        ] );
      ( "gaussian",
        [
          Alcotest.test_case "moments" `Quick test_gaussian_moments;
          Alcotest.test_case "pair/cache consistency" `Quick test_gaussian_pair_independent_of_cache;
        ] );
      ( "split",
        [
          Alcotest.test_case "reproducible" `Quick test_split_reproducible;
          Alcotest.test_case "decorrelated" `Quick test_split_decorrelated;
          Alcotest.test_case "parent undisturbed" `Quick test_split_does_not_disturb_parent;
          Alcotest.test_case "jump disjoint" `Quick test_jump_disjoint;
        ] );
      ("int", [ Alcotest.test_case "int_below" `Quick test_int_below ]);
    ]
