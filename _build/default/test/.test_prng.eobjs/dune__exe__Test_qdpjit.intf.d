test/test_qdpjit.mli:
