test/test_lqcd.ml: Alcotest Array Filename Float Fun Layout Linalg Lqcd Prng Qdp Sys
