test/test_numerics.ml: Alcotest Array Complex Float List Numerics Prng
