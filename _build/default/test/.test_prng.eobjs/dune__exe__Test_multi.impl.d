test/test_multi.ml: Alcotest Array Comms Gpusim Layout Lqcd Printf Prng Qdp Qdpjit
