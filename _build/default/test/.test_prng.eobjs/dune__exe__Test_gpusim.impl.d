test/test_gpusim.ml: Alcotest Bigarray Gpusim List
