test/test_qdp.ml: Alcotest Array Layout Linalg List Prng Qdp
