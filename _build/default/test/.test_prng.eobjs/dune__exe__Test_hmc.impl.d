test/test_hmc.ml: Alcotest Array Float Hmc Layout Linalg Lqcd Numerics Printf Prng Qdp
