test/test_lqcd.mli:
