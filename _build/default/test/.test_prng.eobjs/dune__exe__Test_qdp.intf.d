test/test_qdp.mli:
