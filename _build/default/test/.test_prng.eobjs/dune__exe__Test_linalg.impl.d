test/test_linalg.ml: Alcotest Array Layout Linalg Prng
