test/test_perfmodel.ml: Alcotest List Perfmodel
