test/test_prng.ml: Alcotest Array Numerics Prng
