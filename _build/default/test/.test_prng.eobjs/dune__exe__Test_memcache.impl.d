test/test_memcache.ml: Alcotest Array Bigarray Gpusim Layout Memcache Printf Prng Qdp
