test/test_comms.mli:
