test/test_solvers.ml: Alcotest Array Layout Lqcd Printf Prng Qdp Qdpjit Solvers
