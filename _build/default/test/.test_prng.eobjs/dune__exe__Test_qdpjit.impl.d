test/test_qdpjit.ml: Alcotest Array Gpusim Int64 Layout Linalg List Lqcd Memcache Prng Ptx QCheck QCheck_alcotest Qdp Qdpjit
