test/test_perfmodel.mli:
