test/test_layout.ml: Alcotest Array Bigarray Gen Hashtbl Layout List QCheck QCheck_alcotest
