test/test_hmc.mli:
