test/test_comms.ml: Alcotest Array Comms Hashtbl Layout QCheck QCheck_alcotest
