test/test_ptx.ml: Alcotest Int64 Layout List Lqcd Ptx Qdp Qdpjit String
