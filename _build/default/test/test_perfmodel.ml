(* The Fig. 7/8 scaling model must reproduce the paper's anchor
   measurements and basic monotonicities. *)

module S = Perfmodel.Scaling
module W = Perfmodel.Workload
module N = Perfmodel.Nodes

let w = W.production ()
let bw = N.blue_waters_xk
let t config nodes = S.trajectory_time ~machine:bw ~config w ~nodes

let within name ~tol expected actual =
  if abs_float (actual -. expected) /. expected > tol then
    Alcotest.failf "%s: expected ~%g, got %g" name expected actual

let test_anchor_cpu_time () = within "CPU-only at 128" ~tol:0.05 16100.0 (t S.Cpu_only 128)

let test_anchor_speedups_128 () =
  within "CPU+QUDA speedup at 128" ~tol:0.07 2.2
    (S.speedup ~machine:bw w ~config:S.Cpu_quda ~nodes:128);
  within "QDP-JIT+QUDA speedup at 128" ~tol:0.05 11.0
    (S.speedup ~machine:bw w ~config:S.Qdpjit_quda ~nodes:128)

let test_anchor_speedup_800 () =
  within "QDP-JIT+QUDA speedup at 800" ~tol:0.05 3.7
    (S.speedup ~machine:bw w ~config:S.Qdpjit_quda ~nodes:800)

let test_node_hours () =
  let cq = S.node_hours ~machine:bw ~config:S.Cpu_quda w ~nodes:128 in
  let jq = S.node_hours ~machine:bw ~config:S.Qdpjit_quda w ~nodes:128 in
  within "CPU+QUDA node-hours" ~tol:0.05 258.0 cq;
  within "QDP-JIT node-hours" ~tol:0.05 52.0 jq;
  within "cost reduction ~5x" ~tol:0.1 5.0 (cq /. jq)

let test_config_ordering () =
  List.iter
    (fun n ->
      let cpu = t S.Cpu_only n and cq = t S.Cpu_quda n and jq = t S.Qdpjit_quda n in
      if not (jq < cq && cq < cpu) then
        Alcotest.failf "ordering broken at N=%d: %g %g %g" n cpu cq jq)
    [ 128; 256; 400; 512; 800; 1600 ]

let test_strong_scaling_monotone () =
  List.iter
    (fun config ->
      let prev = ref infinity in
      List.iter
        (fun n ->
          let time = t config n in
          if time > !prev then Alcotest.failf "time increased at N=%d" n;
          prev := time)
        [ 128; 256; 400; 512; 800; 1600 ])
    [ S.Cpu_only; S.Cpu_quda; S.Qdpjit_quda ]

let test_scaling_efficiency_decays () =
  (* Strong-scaling parallel efficiency of the JIT config must decay with
     node count (the 11x -> 3.7x story). *)
  let eff n = t S.Qdpjit_quda 128 *. 128.0 /. (t S.Qdpjit_quda n *. float_of_int n) in
  Alcotest.(check bool) "efficiency decays" true (eff 800 < eff 400 && eff 400 < eff 256)

let test_titan_close_to_blue_waters () =
  List.iter
    (fun n ->
      let bw_time = S.trajectory_time ~machine:N.blue_waters_xk ~config:S.Qdpjit_quda w ~nodes:n in
      let ti_time = S.trajectory_time ~machine:N.titan ~config:S.Qdpjit_quda w ~nodes:n in
      if abs_float (ti_time -. bw_time) /. bw_time > 0.05 then
        Alcotest.failf "Titan deviates at N=%d" n)
    [ 128; 256; 400; 512; 800 ]

let test_workload_trace_scaling () =
  let w2 = W.from_trace ~solver_iterations:200_000 ~solves:500 ~md_force_evals:120 in
  Alcotest.(check bool) "heavier trace, longer trajectory" true
    (S.trajectory_time ~machine:bw ~config:S.Qdpjit_quda w2 ~nodes:128 > t S.Qdpjit_quda 128)

let test_invalid_nodes () =
  Alcotest.check_raises "zero nodes"
    (Invalid_argument "Scaling.trajectory_time: nodes must be positive") (fun () ->
      ignore (t S.Cpu_only 0))

let () =
  Alcotest.run "perfmodel"
    [
      ( "anchors",
        [
          Alcotest.test_case "CPU time at 128" `Quick test_anchor_cpu_time;
          Alcotest.test_case "speedups at 128" `Quick test_anchor_speedups_128;
          Alcotest.test_case "speedup at 800" `Quick test_anchor_speedup_800;
          Alcotest.test_case "node-hours / 5x cost" `Quick test_node_hours;
        ] );
      ( "shape",
        [
          Alcotest.test_case "config ordering" `Quick test_config_ordering;
          Alcotest.test_case "monotone scaling" `Quick test_strong_scaling_monotone;
          Alcotest.test_case "efficiency decay" `Quick test_scaling_efficiency_decays;
          Alcotest.test_case "Titan ~ Blue Waters" `Quick test_titan_close_to_blue_waters;
        ] );
      ( "workload",
        [
          Alcotest.test_case "trace scaling" `Quick test_workload_trace_scaling;
          Alcotest.test_case "input validation" `Quick test_invalid_nodes;
        ] );
    ]
