(* Gauge generation: the finite-difference force checks are the decisive
   correctness tests (any sign or factor error in a force shows up
   immediately), backed by reversibility, integrator-order and
   full-trajectory checks. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Su3 = Linalg.Su3

let geom = Geometry.create [| 2; 2; 2; 2 |]

let fresh_ctx ?(seed = 5L) () =
  let ctx = Hmc.Context.create ~backend:Hmc.Context.cpu_backend ~seed geom in
  Lqcd.Gauge.random_gauge ~epsilon:0.4 ctx.Hmc.Context.u (Prng.create ~seed:3L);
  ctx

(* Re tr(a b) for 3x3 complex flats. *)
let re_tr_prod a b =
  let acc = ref 0.0 in
  for i = 0 to 2 do
    for j = 0 to 2 do
      let ar = a.(2 * ((3 * i) + j)) and ai = a.((2 * ((3 * i) + j)) + 1) in
      let br = b.(2 * ((3 * j) + i)) and bi = b.((2 * ((3 * j) + i)) + 1) in
      acc := !acc +. ((ar *. br) -. (ai *. bi))
    done
  done;
  !acc

(* dS/deps along a random Hermitian direction at one link, centered
   difference vs 2 Re tr(delta F). *)
let fd_force_check ?(tol = 2e-3) (ctx : Hmc.Context.t) (m : Hmc.Monomial.t) =
  let rng = Prng.create ~seed:99L in
  let mu = 1 and site = 7 in
  let delta = Su3.gaussian_hermitian rng in
  let u0 = Field.get_site ctx.Hmc.Context.u.(mu) ~site in
  let eps = 1e-5 in
  let perturb e =
    let rot = Su3.expm (Su3.scale ~re:0.0 ~im:e delta) in
    Field.set_site ctx.Hmc.Context.u.(mu) ~site (Su3.mul rot u0)
  in
  perturb eps;
  let sp = m.Hmc.Monomial.action () in
  perturb (-.eps);
  let sm = m.Hmc.Monomial.action () in
  Field.set_site ctx.Hmc.Context.u.(mu) ~site u0;
  let fd = (sp -. sm) /. (2.0 *. eps) in
  let forces = Hmc.Context.fresh_forces ctx in
  Hmc.Context.clear_forces ctx forces;
  m.Hmc.Monomial.add_force forces;
  let analytic = 2.0 *. re_tr_prod delta (Field.get_site forces.(mu) ~site) in
  let scale = Float.max (abs_float fd) 1e-8 in
  if abs_float (analytic -. fd) /. scale > tol then
    Alcotest.failf "%s force mismatch: FD %.8g vs analytic %.8g" m.Hmc.Monomial.name fd analytic

let test_gauge_force () =
  let ctx = fresh_ctx () in
  fd_force_check ctx (Hmc.Gauge_monomial.create ctx ~beta:5.5 ())

let test_gauge_force_anisotropic () =
  let ctx = fresh_ctx () in
  fd_force_check ctx (Hmc.Gauge_monomial.create ctx ~beta:5.5 ~aniso:2.5 ())

let test_two_flavor_force () =
  let ctx = fresh_ctx () in
  let m = Hmc.Two_flavor.create ctx ~kappa:0.11 () in
  m.Hmc.Monomial.refresh ();
  fd_force_check ctx m

let test_hasenbusch_force () =
  let ctx = fresh_ctx () in
  let m = Hmc.Two_flavor.create_ratio ctx ~kappa_light:0.115 ~kappa_heavy:0.10 () in
  m.Hmc.Monomial.refresh ();
  fd_force_check ~tol:5e-3 ctx m

let test_rhmc_force () =
  let ctx = fresh_ctx () in
  let approx = Hmc.Rhmc_monomial.make_approx ~lo:0.05 ~hi:8.0 () in
  let m = Hmc.Rhmc_monomial.create ctx ~kappa:0.10 ~approx () in
  m.Hmc.Monomial.refresh ();
  fd_force_check ctx m

let test_rational_approx_quality () =
  let approx = Hmc.Rhmc_monomial.make_approx ~lo:0.05 ~hi:8.0 () in
  let e1 =
    Numerics.Ratfun.max_rel_error approx.Hmc.Rhmc_monomial.inv_sqrt ~exponent:(-0.5) ~lo:0.05
      ~hi:8.0 ~samples:500
  in
  let e2 =
    Numerics.Ratfun.max_rel_error approx.Hmc.Rhmc_monomial.fourth_root ~exponent:0.25 ~lo:0.05
      ~hi:8.0 ~samples:500
  in
  Alcotest.(check bool) "inv sqrt tight" true (e1 < 1e-8);
  Alcotest.(check bool) "fourth root tight" true (e2 < 1e-7)

let test_spectral_bounds_inside_approx_range () =
  let ctx = fresh_ctx () in
  let lambda_max = Hmc.Rhmc_monomial.power_iteration_max ctx ~kappa:0.10 () in
  Alcotest.(check bool) "within [0.05, 8]" true (lambda_max > 0.05 && lambda_max < 8.0)

let test_momenta_stats () =
  let ctx = fresh_ctx () in
  Hmc.Context.refresh_momenta ctx;
  (* T = sum tr P^2 over 4*V links; each link contributes ~4 on average
     (8 generators * 1/2). *)
  let t = Hmc.Context.kinetic_energy ctx in
  let links = float_of_int (4 * Geometry.volume geom) in
  Alcotest.(check bool) "kinetic energy scale" true
    (t > 2.0 *. links && t < 6.0 *. links)

let test_link_update_stays_su3 () =
  let ctx = fresh_ctx () in
  Hmc.Context.refresh_momenta ctx;
  Hmc.Context.update_links ctx ~eps:0.1;
  Array.iter
    (fun uf ->
      for site = 0 to Geometry.volume geom - 1 do
        if not (Su3.is_special_unitary ~tol:1e-8 (Field.get_site uf ~site)) then
          Alcotest.fail "link left SU(3)"
      done)
    ctx.Hmc.Context.u

let test_reversibility () =
  let ctx = fresh_ctx () in
  let gm = Hmc.Gauge_monomial.create ctx ~beta:5.5 () in
  let p = { Hmc.Driver.steps = 8; dt = 0.05; scheme = Hmc.Integrator.Omelyan } in
  let drift = Hmc.Driver.reversibility_drift ctx [ gm ] p in
  Alcotest.(check bool) (Printf.sprintf "drift %.2e" drift) true (drift < 1e-10)

let test_dh_scaling_leapfrog () =
  (* Integrate the *same* trajectory (same links, same momentum draw via a
     fresh identically-seeded context) at dt and dt/2: |dH| must drop by
     ~4x for a second-order integrator. *)
  let dh steps dt =
    let ctx = fresh_ctx ~seed:5L () in
    let gm = Hmc.Gauge_monomial.create ctx ~beta:5.5 () in
    let r =
      Hmc.Driver.run_trajectory ~forced_accept:true ctx [ gm ]
        { Hmc.Driver.steps; dt; scheme = Hmc.Integrator.Leapfrog }
    in
    abs_float r.Hmc.Driver.delta_h
  in
  let coarse = dh 5 0.1 in
  let fine = dh 10 0.05 in
  let ratio = coarse /. fine in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f in [3, 5.5]" ratio) true
    (ratio > 3.0 && ratio < 5.5)

let test_omelyan_beats_leapfrog () =
  (* Same trajectory start for both schemes. *)
  let dh scheme =
    let ctx = fresh_ctx ~seed:5L () in
    let gm = Hmc.Gauge_monomial.create ctx ~beta:5.5 () in
    let r =
      Hmc.Driver.run_trajectory ~forced_accept:true ctx [ gm ]
        { Hmc.Driver.steps = 8; dt = 0.08; scheme }
    in
    abs_float r.Hmc.Driver.delta_h
  in
  let lf = dh Hmc.Integrator.Leapfrog and om = dh Hmc.Integrator.Omelyan in
  Alcotest.(check bool) (Printf.sprintf "omelyan %.2e < leapfrog %.2e" om lf) true (om < lf)

let test_pure_gauge_trajectories () =
  let ctx = fresh_ctx () in
  let gm = Hmc.Gauge_monomial.create ctx ~beta:5.5 () in
  let p = { Hmc.Driver.steps = 10; dt = 0.05; scheme = Hmc.Integrator.Omelyan } in
  let accepted = ref 0 in
  for _ = 1 to 5 do
    let r = Hmc.Driver.run_trajectory ctx [ gm ] p in
    if r.Hmc.Driver.accepted then incr accepted;
    Alcotest.(check bool) "dH small" true (abs_float r.Hmc.Driver.delta_h < 1.0);
    Alcotest.(check bool) "plaquette sane" true
      (r.Hmc.Driver.plaquette > 0.0 && r.Hmc.Driver.plaquette <= 1.0)
  done;
  Alcotest.(check bool) "acceptance healthy" true (!accepted >= 3)

let test_rejection_restores_links () =
  let ctx = fresh_ctx () in
  let gm = Hmc.Gauge_monomial.create ctx ~beta:5.5 () in
  (* A huge step size guarantees rejection. *)
  let p = { Hmc.Driver.steps = 3; dt = 2.0; scheme = Hmc.Integrator.Leapfrog } in
  let before = Array.map (fun uf -> Field.get_site uf ~site:5) ctx.Hmc.Context.u in
  let rec reject tries =
    if tries = 0 then Alcotest.fail "could not provoke a rejection"
    else begin
      let r = Hmc.Driver.run_trajectory ctx [ gm ] p in
      if r.Hmc.Driver.accepted then reject (tries - 1)
    end
  in
  reject 10;
  Array.iteri
    (fun mu uf ->
      if Field.get_site uf ~site:5 <> before.(mu) then Alcotest.fail "links not restored")
    ctx.Hmc.Context.u

let test_full_2p1_trajectory () =
  let ctx = fresh_ctx () in
  let gm = Hmc.Gauge_monomial.create ctx ~beta:5.5 () in
  let tf = Hmc.Two_flavor.create ctx ~kappa:0.10 () in
  let approx = Hmc.Rhmc_monomial.make_approx ~lo:0.05 ~hi:8.0 () in
  let rh = Hmc.Rhmc_monomial.create ctx ~kappa:0.09 ~approx () in
  let p = { Hmc.Driver.steps = 6; dt = 0.06; scheme = Hmc.Integrator.Omelyan } in
  let r = Hmc.Driver.run_trajectory ctx [ gm; tf; rh ] p in
  Alcotest.(check bool) (Printf.sprintf "dH = %.4f" r.Hmc.Driver.delta_h) true
    (abs_float r.Hmc.Driver.delta_h < 0.5);
  Alcotest.(check bool) "solver iterations recorded" true (r.Hmc.Driver.solver_iterations > 0)

let test_multiscale_trajectory () =
  (* Gauge on the fine scale, fermions on the coarse scale. *)
  let ctx = fresh_ctx () in
  let gm = Hmc.Gauge_monomial.create ctx ~beta:5.5 () in
  let tf = Hmc.Two_flavor.create ctx ~kappa:0.10 () in
  let levels =
    [ ([ (tf : Hmc.Monomial.t) ], 4, Hmc.Integrator.Omelyan); ([ gm ], 4, Hmc.Integrator.Omelyan) ]
  in
  let r = Hmc.Driver.run_trajectory_multiscale ~forced_accept:true ctx levels ~tau:0.5 in
  Alcotest.(check bool) (Printf.sprintf "dH = %.4f" r.Hmc.Driver.delta_h) true
    (abs_float r.Hmc.Driver.delta_h < 0.5)

let test_multiscale_matches_single_scale () =
  (* With one level the multiscale driver reduces to the plain one (same
     seed => same trajectory => same dH). *)
  let run f =
    let ctx = fresh_ctx ~seed:5L () in
    let gm = Hmc.Gauge_monomial.create ctx ~beta:5.5 () in
    f ctx gm
  in
  let r1 =
    run (fun ctx gm ->
        Hmc.Driver.run_trajectory ~forced_accept:true ctx [ gm ]
          { Hmc.Driver.steps = 6; dt = 0.5 /. 6.0; scheme = Hmc.Integrator.Omelyan })
  in
  let r2 =
    run (fun ctx gm ->
        Hmc.Driver.run_trajectory_multiscale ~forced_accept:true ctx
          [ ([ (gm : Hmc.Monomial.t) ], 6, Hmc.Integrator.Omelyan) ]
          ~tau:0.5)
  in
  Alcotest.(check (float 1e-10)) "same dH" r1.Hmc.Driver.delta_h r2.Hmc.Driver.delta_h

let test_multiscale_fewer_expensive_forces () =
  (* The outer level evaluates its force far less often than the inner. *)
  let ctx = fresh_ctx () in
  let outer_count = ref 0 and inner_count = ref 0 in
  let counting name counter =
    {
      Hmc.Monomial.name;
      refresh = (fun () -> ());
      action = (fun () -> 0.0);
      add_force = (fun _ -> incr counter);
    }
  in
  let levels =
    [
      ([ counting "outer" outer_count ], 2, Hmc.Integrator.Leapfrog);
      ([ counting "inner" inner_count ], 8, Hmc.Integrator.Leapfrog);
    ]
  in
  ignore (Hmc.Driver.run_trajectory_multiscale ~forced_accept:true ctx levels ~tau:0.2);
  Alcotest.(check bool)
    (Printf.sprintf "outer %d << inner %d" !outer_count !inner_count)
    true
    (!inner_count > 4 * !outer_count)

let test_op_trace_counters () =
  let ctx = fresh_ctx () in
  let gm = Hmc.Gauge_monomial.create ctx ~beta:5.5 () in
  let before = ctx.Hmc.Context.md_steps_taken in
  let p = { Hmc.Driver.steps = 4; dt = 0.05; scheme = Hmc.Integrator.Leapfrog } in
  ignore (Hmc.Driver.run_trajectory ctx [ gm ] p);
  (* leapfrog with 4 steps does 5 momentum updates *)
  Alcotest.(check int) "momentum updates traced" (before + 5) ctx.Hmc.Context.md_steps_taken

let () =
  Alcotest.run "hmc"
    [
      ( "forces (finite difference)",
        [
          Alcotest.test_case "gauge" `Quick test_gauge_force;
          Alcotest.test_case "gauge anisotropic" `Quick test_gauge_force_anisotropic;
          Alcotest.test_case "two flavor" `Quick test_two_flavor_force;
          Alcotest.test_case "hasenbusch ratio" `Quick test_hasenbusch_force;
          Alcotest.test_case "rhmc rational" `Quick test_rhmc_force;
        ] );
      ( "rational",
        [
          Alcotest.test_case "approximation quality" `Quick test_rational_approx_quality;
          Alcotest.test_case "spectral bounds" `Quick test_spectral_bounds_inside_approx_range;
        ] );
      ( "molecular dynamics",
        [
          Alcotest.test_case "momenta stats" `Quick test_momenta_stats;
          Alcotest.test_case "links stay SU(3)" `Quick test_link_update_stays_su3;
          Alcotest.test_case "reversibility" `Quick test_reversibility;
          Alcotest.test_case "dH ~ dt^2" `Quick test_dh_scaling_leapfrog;
          Alcotest.test_case "omelyan beats leapfrog" `Quick test_omelyan_beats_leapfrog;
        ] );
      ( "trajectories",
        [
          Alcotest.test_case "pure gauge" `Quick test_pure_gauge_trajectories;
          Alcotest.test_case "rejection restores" `Quick test_rejection_restores_links;
          Alcotest.test_case "2+1 flavors" `Slow test_full_2p1_trajectory;
          Alcotest.test_case "multiscale" `Quick test_multiscale_trajectory;
          Alcotest.test_case "multiscale = single at 1 level" `Quick
            test_multiscale_matches_single_scale;
          Alcotest.test_case "multiscale force counts" `Quick
            test_multiscale_fewer_expensive_forces;
          Alcotest.test_case "op trace" `Quick test_op_trace_counters;
        ] );
    ]
