module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Gamma = Lqcd.Gamma
module Gauge = Lqcd.Gauge
module Su3 = Linalg.Su3

let geom = Geometry.create [| 4; 4; 4; 4 |]
let rng = Prng.create ~seed:55L
let sum_cpu e = (Qdp.Eval_cpu.sum_components e).(0)

let warm_links () =
  let u = Gauge.create_links geom in
  Gauge.random_gauge ~epsilon:0.4 u rng;
  u

let fermion () =
  let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian f rng;
  f

(* ------------------------------ gamma -------------------------------- *)

let cmat_sub a b = Gamma.cmat_add a (Gamma.cmat_scale (-1.0) b)

let cmat_is_zero ?(tol = 1e-12) m =
  Array.for_all (Array.for_all (fun (re, im) -> abs_float re <= tol && abs_float im <= tol)) m

let test_clifford_algebra () =
  let g = Gamma.matrices () in
  for mu = 0 to 3 do
    for nu = 0 to 3 do
      let anti = Gamma.cmat_add (Gamma.cmat_mul g.(mu) g.(nu)) (Gamma.cmat_mul g.(nu) g.(mu)) in
      let expected = Gamma.cmat_scale (if mu = nu then 2.0 else 0.0) (Gamma.identity4 ()) in
      if not (cmat_is_zero (cmat_sub anti expected)) then
        Alcotest.failf "{g%d,g%d} != 2 delta" mu nu
    done
  done

let test_gamma_hermitian () =
  Array.iteri
    (fun mu gm ->
      let dag = Array.init 4 (fun i -> Array.init 4 (fun j -> let re, im = gm.(j).(i) in (re, -.im))) in
      if not (cmat_is_zero (cmat_sub gm dag)) then Alcotest.failf "gamma%d not hermitian" mu)
    (Gamma.matrices ())

let test_gamma5 () =
  let g5 = Gamma.gamma5_mat () in
  (* g5^2 = 1 *)
  if not (cmat_is_zero (cmat_sub (Gamma.cmat_mul g5 g5) (Gamma.identity4 ()))) then
    Alcotest.fail "g5^2 != 1";
  (* anticommutes with every gamma *)
  Array.iter
    (fun gm ->
      let anti = Gamma.cmat_add (Gamma.cmat_mul g5 gm) (Gamma.cmat_mul gm g5) in
      if not (cmat_is_zero anti) then Alcotest.fail "g5 does not anticommute")
    (Gamma.matrices ());
  (* chiral basis: diagonal +-1 *)
  if not (cmat_is_zero (cmat_sub g5 [|
    [| (1.,0.); (0.,0.); (0.,0.); (0.,0.) |];
    [| (0.,0.); (1.,0.); (0.,0.); (0.,0.) |];
    [| (0.,0.); (0.,0.); (-1.,0.); (0.,0.) |];
    [| (0.,0.); (0.,0.); (0.,0.); (-1.,0.) |] |]))
  then Alcotest.fail "g5 not diag(1,1,-1,-1) in this basis"

let test_sigma_block_diagonal () =
  (* sigma_munu commutes with gamma5: block diagonal in chirality, the
     property the packed clover layout relies on. *)
  let g5 = Gamma.gamma5_mat () in
  for mu = 0 to 3 do
    for nu = mu + 1 to 3 do
      let s = Gamma.sigma_mat mu nu in
      let comm = cmat_sub (Gamma.cmat_mul s g5) (Gamma.cmat_mul g5 s) in
      if not (cmat_is_zero comm) then Alcotest.failf "sigma%d%d not block diagonal" mu nu;
      (* off-chirality entries vanish *)
      for i = 0 to 1 do
        for j = 2 to 3 do
          let re, im = s.(i).(j) in
          if abs_float re +. abs_float im > 1e-12 then Alcotest.fail "cross-block entry"
        done
      done
    done
  done

let test_projectors () =
  (* (1 -+ gamma_mu) are (twice) projectors: P^2 = 2P. *)
  let g = Gamma.matrices () in
  Array.iter
    (fun gm ->
      let p = cmat_sub (Gamma.identity4 ()) gm in
      let p2 = Gamma.cmat_mul p p in
      if not (cmat_is_zero (cmat_sub p2 (Gamma.cmat_scale 2.0 p))) then
        Alcotest.fail "(1-g)^2 != 2(1-g)")
    g

(* ------------------------------ gauge -------------------------------- *)

let test_unit_gauge_plaquette () =
  let u = Gauge.create_links geom in
  Gauge.unit_gauge u;
  Alcotest.(check (float 1e-14)) "cold plaquette" 1.0 (Gauge.mean_plaquette ~sum_real:sum_cpu u)

let test_warm_plaquette_below_one () =
  let u = warm_links () in
  let p = Gauge.mean_plaquette ~sum_real:sum_cpu u in
  Alcotest.(check bool) "0 < p < 1" true (p > 0.0 && p < 1.0)

let test_plaquette_gauge_invariance () =
  (* U_mu(x) -> g(x) U_mu(x) g(x+mu)^dag leaves the plaquette invariant. *)
  let u = warm_links () in
  let before = Gauge.mean_plaquette ~sum_real:sum_cpu u in
  let gx = Array.init (Geometry.volume geom) (fun _ -> Su3.random_su3 rng) in
  Array.iteri
    (fun mu uf ->
      for site = 0 to Geometry.volume geom - 1 do
        let neighbor = Geometry.neighbor geom site ~dim:mu ~dir:1 in
        let m = Field.get_site uf ~site in
        Field.set_site uf ~site (Su3.mul gx.(site) (Su3.mul m (Su3.dagger gx.(neighbor))))
      done)
    u;
  let after = Gauge.mean_plaquette ~sum_real:sum_cpu u in
  Alcotest.(check (float 1e-10)) "gauge invariant" before after

let test_action_cold_zero () =
  let u = Gauge.create_links geom in
  Gauge.unit_gauge u;
  Alcotest.(check (float 1e-10)) "cold action" 0.0 (Gauge.action ~sum_real:sum_cpu ~beta:5.5 u)

let test_field_strength_antihermitian_parts () =
  (* F_munu is Hermitian and traceless up to O(a^2) exactness of the clover
     average: Hermiticity is exact by construction. *)
  let u = warm_links () in
  let f01 = Field.create (Shape.lattice_color_matrix Shape.F64) geom in
  Qdp.Eval_cpu.eval f01 (Gauge.field_strength_expr u ~mu:0 ~nu:1);
  for site = 0 to 20 do
    let m = Field.get_site f01 ~site in
    let d = Su3.frobenius_dist m (Su3.dagger m) in
    if d > 1e-12 then Alcotest.failf "F not hermitian at site %d: %g" site d
  done

let test_field_strength_antisymmetric () =
  let u = warm_links () in
  let a = Field.create (Shape.lattice_color_matrix Shape.F64) geom in
  let b = Field.create (Shape.lattice_color_matrix Shape.F64) geom in
  Qdp.Eval_cpu.eval a (Gauge.field_strength_expr u ~mu:1 ~nu:2);
  Qdp.Eval_cpu.eval b (Gauge.field_strength_expr u ~mu:2 ~nu:1);
  let d = Qdp.Eval_cpu.norm2 (Expr.add (Expr.field a) (Expr.field b)) in
  Alcotest.(check (float 1e-20)) "F_mn = -F_nm" 0.0 d

(* ------------------------------ wilson ------------------------------- *)

let test_dslash_gamma5_hermiticity () =
  let u = warm_links () in
  let psi = fermion () and chi = fermion () in
  (* <chi, D psi> = <g5 D g5 chi, psi> *)
  let lhs = Qdp.Eval_cpu.inner (Expr.field chi) (Lqcd.Wilson.hopping_expr u psi) in
  let g5chi = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Qdp.Eval_cpu.eval g5chi (Lqcd.Wilson.gamma5_expr (Expr.field chi));
  let dg5chi = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Qdp.Eval_cpu.eval dg5chi (Lqcd.Wilson.hopping_expr u g5chi);
  let rhs = Qdp.Eval_cpu.inner (Lqcd.Wilson.gamma5_expr (Expr.field dg5chi)) (Expr.field psi) in
  Alcotest.(check (float 1e-8)) "re" (fst lhs) (fst rhs);
  Alcotest.(check (float 1e-8)) "im" (snd lhs) (snd rhs)

let test_dslash_free_field_constant () =
  (* On a unit gauge field, a constant spinor is an eigenvector of the
     hopping term with eigenvalue 2*Nd (each direction contributes
     (1-g)+(1+g) = 2). *)
  let u = Gauge.create_links geom in
  Gauge.unit_gauge u;
  let psi = Field.create (Shape.lattice_fermion Shape.F64) geom in
  for site = 0 to Geometry.volume geom - 1 do
    Field.set psi ~site ~spin:0 ~color:0 ~reality:0 1.0
  done;
  let out = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Qdp.Eval_cpu.eval out (Lqcd.Wilson.hopping_expr u psi);
  (* (1-g)psi + (1+g)psi = 2 psi per direction; 4 directions -> 8 psi *)
  let diff =
    Qdp.Eval_cpu.norm2
      (Expr.sub (Expr.field out) (Expr.mul (Expr.const_real 8.0) (Expr.field psi)))
  in
  Alcotest.(check (float 1e-18)) "D const = 8 const" 0.0 diff

let test_wilson_kappa_relation () =
  let u = warm_links () in
  let psi = fermion () in
  let kappa = 0.11 in
  (* M psi = psi - kappa D psi, verified by assembling the parts. *)
  let m = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Qdp.Eval_cpu.eval m (Lqcd.Wilson.wilson_expr ~kappa u psi);
  let d = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Qdp.Eval_cpu.eval d (Lqcd.Wilson.hopping_expr u psi);
  let diff =
    Qdp.Eval_cpu.norm2
      (Expr.sub (Expr.field m)
         (Expr.sub (Expr.field psi) (Expr.mul (Expr.const_real kappa) (Expr.field d))))
  in
  Alcotest.(check (float 1e-20)) "kappa assembly" 0.0 diff

let test_anisotropic_coefficients () =
  let u = warm_links () in
  let psi = fermion () in
  (* zero temporal coefficient removes the t-direction hopping *)
  let coeffs = [| 1.0; 1.0; 1.0; 0.0 |] in
  let full = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Qdp.Eval_cpu.eval full (Lqcd.Wilson.hopping_expr ~coeffs u psi);
  (* compare against explicit sum over spatial dims only *)
  let spatial = Field.create (Shape.lattice_fermion Shape.F64) geom in
  let f = Expr.field in
  let term mu =
    Expr.add
      (Expr.mul (Gamma.proj_minus mu) (Expr.mul (f u.(mu)) (Expr.shift (f psi) ~dim:mu ~dir:1)))
      (Expr.mul (Gamma.proj_plus mu)
         (Expr.shift (Expr.mul (Expr.adj (f u.(mu))) (f psi)) ~dim:mu ~dir:(-1)))
  in
  Qdp.Eval_cpu.eval spatial (Expr.add (term 0) (Expr.add (term 1) (term 2)));
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field full) (Expr.field spatial)) in
  Alcotest.(check (float 1e-20)) "aniso coefficients" 0.0 d

(* ------------------------------ clover ------------------------------- *)

let eval_cpu dest e = Qdp.Eval_cpu.eval dest e

let test_clover_pack_vs_dense () =
  let u = warm_links () in
  let psi = fermion () in
  let cl = Lqcd.Clover.pack ~eval:eval_cpu ~csw:1.3 ~c_id:1.0 u in
  let packed = Field.create (Shape.lattice_fermion Shape.F64) geom in
  eval_cpu packed (Lqcd.Clover.apply_expr cl psi);
  let dense = Field.create (Shape.lattice_fermion Shape.F64) geom in
  eval_cpu dense (Lqcd.Clover.apply_dense_expr ~eval:eval_cpu ~csw:1.3 ~c_id:1.0 u psi);
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field packed) (Expr.field dense)) in
  if d > 1e-20 then Alcotest.failf "packed vs dense: %g" d

let test_clover_hermitian_operator () =
  let u = warm_links () in
  let a = fermion () and b = fermion () in
  let cl = Lqcd.Clover.pack ~eval:eval_cpu ~csw:1.3 ~c_id:0.5 u in
  let lhs = Qdp.Eval_cpu.inner (Expr.field a) (Lqcd.Clover.apply_expr cl b) in
  let rhs = Qdp.Eval_cpu.inner (Expr.field b) (Lqcd.Clover.apply_expr cl a) in
  Alcotest.(check (float 1e-8)) "re" (fst lhs) (fst rhs);
  Alcotest.(check (float 1e-8)) "im" (-.snd lhs) (snd rhs)

let test_clover_unit_gauge_is_identity_term () =
  (* On a unit gauge field F = 0, so A = c_id. *)
  let u = Gauge.create_links geom in
  Gauge.unit_gauge u;
  let psi = fermion () in
  let cl = Lqcd.Clover.pack ~eval:eval_cpu ~csw:1.3 ~c_id:0.75 u in
  let out = Field.create (Shape.lattice_fermion Shape.F64) geom in
  eval_cpu out (Lqcd.Clover.apply_expr cl psi);
  let d =
    Qdp.Eval_cpu.norm2
      (Expr.sub (Expr.field out) (Expr.mul (Expr.const_real 0.75) (Expr.field psi)))
  in
  Alcotest.(check (float 1e-20)) "A = c_id on cold gauge" 0.0 d

(* ---------------------------- observables ---------------------------- *)

let test_wilson_loop_1x1_is_plaquette () =
  let u = warm_links () in
  let w11 = Lqcd.Observables.wilson_loop ~sum_real:sum_cpu u ~mu:0 ~nu:1 ~r:1 ~t:1 in
  let plaq = sum_cpu (Gauge.plaquette_trace_expr u ~mu:0 ~nu:1) /. float_of_int (Geometry.volume geom) in
  Alcotest.(check (float 1e-12)) "W(1,1) = plaquette" plaq w11

let test_wilson_loop_cold () =
  let u = Gauge.create_links geom in
  Gauge.unit_gauge u;
  Alcotest.(check (float 1e-12)) "cold W(2,2) = 1" 1.0
    (Lqcd.Observables.wilson_loop ~sum_real:sum_cpu u ~mu:0 ~nu:2 ~r:2 ~t:2)

let test_wilson_loop_area_law_trend () =
  let u = warm_links () in
  let w r t = Lqcd.Observables.wilson_loop ~sum_real:sum_cpu u ~mu:0 ~nu:1 ~r ~t in
  (* On a rough configuration larger loops are smaller. *)
  Alcotest.(check bool) "W(1,1) > W(2,2)" true (abs_float (w 2 2) < w 1 1)

let test_polyakov_cold () =
  let u = Gauge.create_links geom in
  Gauge.unit_gauge u;
  let re, im = Lqcd.Observables.polyakov_loop ~sum_components:Qdp.Eval_cpu.sum_components u in
  Alcotest.(check (float 1e-12)) "re" 1.0 re;
  Alcotest.(check (float 1e-12)) "im" 0.0 im

let test_polyakov_center_symmetry () =
  (* Multiplying every temporal link on one timeslice by the center element
     z = exp(2 pi i /3) rotates the Polyakov loop by z and leaves the
     plaquette invariant. *)
  let u = warm_links () in
  let p_before = Gauge.mean_plaquette ~sum_real:sum_cpu u in
  let re0, im0 = Lqcd.Observables.polyakov_loop ~sum_components:Qdp.Eval_cpu.sum_components u in
  let angle = 2.0 *. Float.pi /. 3.0 in
  let nd = Geometry.nd geom in
  for site = 0 to Geometry.volume geom - 1 do
    if (Geometry.coord_of_site geom site).(nd - 1) = 0 then
      Field.set_site u.(nd - 1) ~site
        (Su3.scale ~re:(cos angle) ~im:(sin angle) (Field.get_site u.(nd - 1) ~site))
  done;
  let p_after = Gauge.mean_plaquette ~sum_real:sum_cpu u in
  let re1, im1 = Lqcd.Observables.polyakov_loop ~sum_components:Qdp.Eval_cpu.sum_components u in
  Alcotest.(check (float 1e-10)) "plaquette invariant" p_before p_after;
  Alcotest.(check (float 1e-10)) "loop rotated re" ((re0 *. cos angle) -. (im0 *. sin angle)) re1;
  Alcotest.(check (float 1e-10)) "loop rotated im" ((re0 *. sin angle) +. (im0 *. cos angle)) im1

let test_timeslice_subsets_partition () =
  let nd = Geometry.nd geom in
  let lt = (Geometry.dims geom).(nd - 1) in
  let total = ref 0 in
  for t = 0 to lt - 1 do
    match Lqcd.Observables.timeslice_subset geom ~t with
    | Qdp.Subset.Custom sites -> total := !total + Array.length sites
    | _ -> Alcotest.fail "expected custom subset"
  done;
  Alcotest.(check int) "timeslices partition the lattice" (Geometry.volume geom) !total

let test_pion_correlator_norm () =
  (* With M = identity (kappa -> 0 limit) the propagator is the source and
     the correlator is a delta at t = 0. *)
  let cols =
    Array.init 2 (fun i -> Lqcd.Observables.point_source geom ~spin:i ~color:0)
  in
  let norm2_subset subset e = Qdp.Eval_cpu.norm2 ~subset e in
  let c = Lqcd.Observables.pion_correlator ~norm2_subset cols in
  Alcotest.(check (float 1e-12)) "C(0)" 2.0 c.(0);
  for t = 1 to Array.length c - 1 do
    Alcotest.(check (float 0.0)) "C(t>0)" 0.0 c.(t)
  done

(* -------------------------------- io --------------------------------- *)

let test_gauge_io_roundtrip () =
  let u = warm_links () in
  let path = Filename.temp_file "gauge" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lqcd.Gauge_io.write ~path u;
      let v = Lqcd.Gauge_io.read ~path in
      Array.iteri
        (fun mu uf ->
          let d =
            Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field uf) (Expr.field v.(mu)))
          in
          Alcotest.(check (float 0.0)) "links identical" 0.0 d)
        u)

let test_gauge_io_detects_corruption () =
  let u = warm_links () in
  let path = Filename.temp_file "gauge" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lqcd.Gauge_io.write ~path u;
      (* Flip a high-order mantissa byte in the data section (the header is
         40 bytes; doubles are little-endian, so offset 40 + 8k + 6 lands in
         the top of a mantissa). *)
      let fd = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
      seek_out fd (40 + (8 * 20) + 6);
      output_char fd 'X';
      close_out fd;
      match Lqcd.Gauge_io.read ~path with
      | exception Lqcd.Gauge_io.Format_error _ -> ()
      | _ -> Alcotest.fail "corruption not detected")

let test_gauge_io_bad_magic () =
  let path = Filename.temp_file "gauge" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOTAGAUGEFILE....";
      close_out oc;
      match Lqcd.Gauge_io.read ~path with
      | exception Lqcd.Gauge_io.Format_error _ -> ()
      | _ -> Alcotest.fail "bad magic accepted")

let test_tri_index () =
  (* lower-triangle packing covers 0..14 exactly once *)
  let seen = Array.make 15 false in
  for i = 1 to 5 do
    for j = 0 to i - 1 do
      let k = Lqcd.Clover.tri_index i j in
      if seen.(k) then Alcotest.failf "tri index collision at %d" k;
      seen.(k) <- true
    done
  done;
  Alcotest.(check bool) "all covered" true (Array.for_all (fun x -> x) seen)

let () =
  Alcotest.run "lqcd"
    [
      ( "gamma",
        [
          Alcotest.test_case "clifford" `Quick test_clifford_algebra;
          Alcotest.test_case "hermitian" `Quick test_gamma_hermitian;
          Alcotest.test_case "gamma5" `Quick test_gamma5;
          Alcotest.test_case "sigma blocks" `Quick test_sigma_block_diagonal;
          Alcotest.test_case "projectors" `Quick test_projectors;
        ] );
      ( "gauge",
        [
          Alcotest.test_case "cold plaquette" `Quick test_unit_gauge_plaquette;
          Alcotest.test_case "warm plaquette" `Quick test_warm_plaquette_below_one;
          Alcotest.test_case "gauge invariance" `Quick test_plaquette_gauge_invariance;
          Alcotest.test_case "cold action" `Quick test_action_cold_zero;
          Alcotest.test_case "F hermitian" `Quick test_field_strength_antihermitian_parts;
          Alcotest.test_case "F antisymmetric" `Quick test_field_strength_antisymmetric;
        ] );
      ( "wilson",
        [
          Alcotest.test_case "gamma5 hermiticity" `Quick test_dslash_gamma5_hermiticity;
          Alcotest.test_case "free field" `Quick test_dslash_free_field_constant;
          Alcotest.test_case "kappa relation" `Quick test_wilson_kappa_relation;
          Alcotest.test_case "anisotropy" `Quick test_anisotropic_coefficients;
        ] );
      ( "observables",
        [
          Alcotest.test_case "W(1,1) = plaquette" `Quick test_wilson_loop_1x1_is_plaquette;
          Alcotest.test_case "cold Wilson loop" `Quick test_wilson_loop_cold;
          Alcotest.test_case "area-law trend" `Quick test_wilson_loop_area_law_trend;
          Alcotest.test_case "cold Polyakov" `Quick test_polyakov_cold;
          Alcotest.test_case "center symmetry" `Quick test_polyakov_center_symmetry;
          Alcotest.test_case "timeslice partition" `Quick test_timeslice_subsets_partition;
          Alcotest.test_case "pion delta source" `Quick test_pion_correlator_norm;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_gauge_io_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_gauge_io_detects_corruption;
          Alcotest.test_case "bad magic" `Quick test_gauge_io_bad_magic;
        ] );
      ( "clover",
        [
          Alcotest.test_case "packed vs dense" `Quick test_clover_pack_vs_dense;
          Alcotest.test_case "hermitian" `Quick test_clover_hermitian_operator;
          Alcotest.test_case "cold gauge" `Quick test_clover_unit_gauge_is_identity_term;
          Alcotest.test_case "tri index" `Quick test_tri_index;
        ] );
    ]
