module Grid = Comms.Grid
module Geometry = Layout.Geometry

let test_grid_divisibility () =
  Alcotest.check_raises "non-dividing ranks"
    (Invalid_argument "Grid.create: global extent 6 not divisible by 4 ranks in dim 0")
    (fun () -> ignore (Grid.create ~global_dims:[| 6; 4 |] ~rank_dims:[| 4; 1 |]))

let test_grid_geometry () =
  let g = Grid.create ~global_dims:[| 8; 4; 4; 4 |] ~rank_dims:[| 2; 1; 1; 2 |] in
  Alcotest.(check int) "nranks" 4 (Grid.nranks g);
  Alcotest.(check int) "local volume" (4 * 4 * 4 * 2) (Grid.local_volume g)

let test_owner_roundtrip () =
  let g = Grid.create ~global_dims:[| 8; 4; 4; 4 |] ~rank_dims:[| 2; 2; 1; 1 |] in
  let global = Geometry.create [| 8; 4; 4; 4 |] in
  for gs = 0 to Geometry.volume global - 1 do
    let coord = Geometry.coord_of_site global gs in
    let rank, local_site = Grid.owner g ~global_coord:coord in
    Alcotest.(check int) "owner inverse" gs (Grid.global_site g ~rank ~local_site)
  done

let test_global_sites_partition () =
  let g = Grid.create ~global_dims:[| 4; 4; 4; 4 |] ~rank_dims:[| 2; 2; 1; 1 |] in
  let seen = Hashtbl.create 256 in
  for rank = 0 to Grid.nranks g - 1 do
    for ls = 0 to Grid.local_volume g - 1 do
      let gs = Grid.global_site g ~rank ~local_site:ls in
      if Hashtbl.mem seen gs then Alcotest.failf "site %d owned twice" gs;
      Hashtbl.replace seen gs ()
    done
  done;
  Alcotest.(check int) "partition covers lattice" 256 (Hashtbl.length seen)

let test_neighbor_rank_wraps () =
  let g = Grid.create ~global_dims:[| 8; 4 |] ~rank_dims:[| 4; 1 |] in
  Alcotest.(check int) "forward" 1 (Grid.neighbor_rank g 0 ~dim:0 ~dir:1);
  Alcotest.(check int) "wrap" 0 (Grid.neighbor_rank g 3 ~dim:0 ~dir:1);
  Alcotest.(check int) "backward wrap" 3 (Grid.neighbor_rank g 0 ~dim:0 ~dir:(-1))

let test_network_message_time () =
  let n = Comms.Network.infiniband_qdr in
  let t0 = Comms.Network.message_time_ns n ~bytes:0 in
  Alcotest.(check (float 1e-9)) "latency floor" n.Comms.Network.latency_ns t0;
  let big = Comms.Network.message_time_ns n ~bytes:4_000_000 in
  Alcotest.(check bool) "bandwidth term" true (big > 1e6)

let test_fabric_accounting () =
  let f = Comms.Fabric.create ~network:Comms.Network.cray_gemini ~nranks:4 in
  let arrive = Comms.Fabric.transfer f ~src:0 ~dst:1 ~bytes:6000 ~post_ns:1000.0 in
  Alcotest.(check bool) "arrival after post + latency" true
    (arrive >= 1000.0 +. Comms.Network.cray_gemini.Comms.Network.latency_ns);
  let stats = Comms.Fabric.stats f in
  Alcotest.(check int) "messages" 1 stats.Comms.Fabric.messages;
  Alcotest.(check int) "bytes" 6000 stats.Comms.Fabric.bytes;
  Alcotest.check_raises "rank range" (Invalid_argument "Fabric.transfer: rank out of range")
    (fun () -> ignore (Comms.Fabric.transfer f ~src:0 ~dst:9 ~bytes:1 ~post_ns:0.0))

let qcheck_owner =
  QCheck.Test.make ~name:"owner is a bijection" ~count:100
    QCheck.(pair (int_bound 3) (int_bound 10_000))
    (fun (split, seed) ->
      let rank_dims = [| 1; 1; 1; 1 |] in
      rank_dims.(split) <- 2;
      let g = Grid.create ~global_dims:[| 4; 4; 4; 4 |] ~rank_dims in
      let gs = seed mod 256 in
      let coord = Geometry.coord_of_site (Geometry.create [| 4; 4; 4; 4 |]) gs in
      let rank, local_site = Grid.owner g ~global_coord:coord in
      Grid.global_site g ~rank ~local_site = gs)

let () =
  Alcotest.run "comms"
    [
      ( "grid",
        [
          Alcotest.test_case "divisibility" `Quick test_grid_divisibility;
          Alcotest.test_case "geometry" `Quick test_grid_geometry;
          Alcotest.test_case "owner roundtrip" `Quick test_owner_roundtrip;
          Alcotest.test_case "partition" `Quick test_global_sites_partition;
          Alcotest.test_case "neighbor ranks" `Quick test_neighbor_rank_wraps;
          QCheck_alcotest.to_alcotest qcheck_owner;
        ] );
      ( "network",
        [
          Alcotest.test_case "message time" `Quick test_network_message_time;
          Alcotest.test_case "fabric accounting" `Quick test_fabric_accounting;
        ] );
    ]
